module distreach

go 1.24
