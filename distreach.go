// Package distreach is a library for evaluating reachability queries on
// distributed graphs with performance guarantees, reproducing
//
//	Wenfei Fan, Xin Wang, Yinghui Wu.
//	"Performance Guarantees for Distributed Reachability Queries."
//	PVLDB 5(11), 2012.
//
// A graph is partitioned into fragments, each hosted by a site; queries are
// evaluated by partial evaluation: every site computes a partial answer on
// its fragment in parallel, as Boolean equations over variables that stand
// for the unknown answers at other sites, and a coordinator assembles and
// solves the resulting equation system. The evaluators guarantee that
//
//   - each site is visited exactly once per query,
//   - total network traffic depends only on the query and the
//     fragmentation (|Vf|), never on the size of the graph, and
//   - the response time is governed by the largest fragment, not by the
//     whole graph.
//
// Three query classes are supported: plain reachability (Reach), bounded
// reachability (ReachWithin), and regular reachability (ReachRegex), plus a
// MapReduce-style execution (ReachRegexMR).
//
// Quick start:
//
//	b := distreach.NewBuilder(3)
//	ann := b.AddNode("CTO")
//	walt := b.AddNode("HR")
//	mark := b.AddNode("FA")
//	b.AddEdge(ann, walt)
//	b.AddEdge(walt, mark)
//	g, _ := b.Build()
//	fr, _ := distreach.PartitionRandom(g, 2, 1)
//	cl := distreach.NewCluster(2, distreach.NetModel{})
//	res := distreach.Reach(cl, fr, ann, mark)
//	fmt.Println(res.Answer) // true
package distreach

import (
	"fmt"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/mapreduce"
	"distreach/internal/netsite"
	"distreach/internal/rx"
)

// NodeID identifies a node of a Graph.
type NodeID = graph.NodeID

// Graph is an immutable node-labeled directed graph.
type Graph = graph.Graph

// Builder incrementally constructs a Graph.
type Builder = graph.Builder

// NewBuilder returns a graph builder sized for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Fragmentation is a partition of a graph into fragments plus the fragment
// graph Gf of cross edges.
type Fragmentation = fragment.Fragmentation

// PartitionRandom partitions g into k balanced fragments uniformly at
// random (the paper's default fragmentation).
func PartitionRandom(g *Graph, k int, seed uint64) (*Fragmentation, error) {
	return fragment.Random(g, k, seed)
}

// PartitionHash partitions g into k fragments by node-ID hash.
func PartitionHash(g *Graph, k int) (*Fragmentation, error) { return fragment.Hash(g, k) }

// PartitionContiguous partitions g into k fragments of consecutive node IDs.
func PartitionContiguous(g *Graph, k int) (*Fragmentation, error) {
	return fragment.Contiguous(g, k)
}

// PartitionGreedy partitions g into k fragments grown by BFS from random
// seeds, reducing the number of cross edges relative to PartitionRandom.
func PartitionGreedy(g *Graph, k int, seed uint64) (*Fragmentation, error) {
	return fragment.Greedy(g, k, seed)
}

// PartitionEdgeCut partitions g into k fragments with the balance-aware
// greedy edge-cut (LDG) strategy: each node goes to the fragment holding
// most of its neighbors, discounted by how full that fragment is. It
// minimizes both |Fm| and |Vf| — the two parameters of the paper's
// guarantees — and is the strategy live rebalancing uses by default.
func PartitionEdgeCut(g *Graph, k int, seed uint64) (*Fragmentation, error) {
	return fragment.EdgeCut(g, k, seed)
}

// Partitioner chooses node-to-fragment assignments; see the fragment
// package for the built-in strategies and PartitionerByName.
type Partitioner = fragment.Partitioner

// PartitionerByName resolves a partitioner from its textual name
// ("random", "hash", "contiguous", "greedy", "edgecut").
func PartitionerByName(name string, seed uint64) (Partitioner, error) {
	return fragment.ByName(name, seed)
}

// PartitionBy fragments g with an explicit partitioner and attaches it to
// the result, so live node insertions and rebalances reuse the strategy.
func PartitionBy(g *Graph, p Partitioner, k int) (*Fragmentation, error) {
	return fragment.Partition(g, p, k)
}

// BalanceStats summarizes a fragmentation's health: largest/mean fragment
// size (local work), |Vf| and cross edges (network traffic), and the Skew
// that triggers rebalancing. Obtain it from Fragmentation.BalanceStats or
// from every live-update reply.
type BalanceStats = fragment.BalanceStats

// Op is one mutation of a transactional update batch: an edge insert or
// delete, a node insert, or a node delete.
type Op = fragment.Op

// The mutation kinds of Op.
const (
	OpInsertEdge = fragment.OpInsertEdge
	OpDeleteEdge = fragment.OpDeleteEdge
	OpInsertNode = fragment.OpInsertNode
	OpDeleteNode = fragment.OpDeleteNode
)

// PartitionWith builds a fragmentation from an explicit node-to-fragment
// assignment (assign[v] in [0, k) is the site storing node v). The paper
// places no constraints on fragmentations, so any assignment is legal.
func PartitionWith(g *Graph, assign []int, k int) (*Fragmentation, error) {
	return fragment.Build(g, assign, k)
}

// NetModel describes the simulated interconnect used for modeled network
// time: per-message latency plus bandwidth. The zero value models a free
// network (pure compute measurements).
type NetModel = cluster.NetModel

// Cluster describes a deployment of one site per fragment.
type Cluster = cluster.Cluster

// NewCluster returns a cluster of k sites with the given interconnect.
func NewCluster(k int, net NetModel) *Cluster { return cluster.New(k, net) }

// Report carries the per-query accounting: visits per site, bytes shipped,
// message and round counts, and response time.
type Report = cluster.Report

// Result is the outcome of a Boolean evaluation.
type Result = core.Result

// DistResult is the outcome of a bounded-reachability evaluation.
type DistResult = core.DistResult

// Automaton is a compiled query automaton Gq(R).
type Automaton = automaton.Automaton

// CompileRegex parses a regular expression (labels, concatenation by
// juxtaposition, '|', '*', '+', '?', '_' wildcard, '()' for ε) and builds
// its query automaton.
func CompileRegex(expr string) (*Automaton, error) {
	ast, err := rx.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("distreach: %w", err)
	}
	return automaton.FromRegex(ast), nil
}

// Reach evaluates the reachability query qr(s, t): can s reach t?
// It runs algorithm disReach: one visit per site, O(|Vf|²) traffic.
func Reach(cl *Cluster, fr *Fragmentation, s, t NodeID) Result {
	return core.DisReach(cl, fr, s, t, nil)
}

// Query is one (source, target) pair for batch evaluation.
type Query = core.Query

// BatchResult is the outcome of a batched evaluation.
type BatchResult = core.BatchResult

// ReachBatch evaluates many reachability queries in one round: the visit
// guarantee strengthens to one visit per site per batch, and queries that
// share a target share their per-site partial evaluation.
func ReachBatch(cl *Cluster, fr *Fragmentation, qs []Query) BatchResult {
	return core.DisReachBatch(cl, fr, qs)
}

// ReachWithin evaluates the bounded reachability query qbr(s, t, l): is
// dist(s, t) <= l? It runs algorithm disDist with the same guarantees as
// Reach.
func ReachWithin(cl *Cluster, fr *Fragmentation, s, t NodeID, l int) DistResult {
	return core.DisDist(cl, fr, s, t, l, nil)
}

// ReachRegex evaluates the regular reachability query qrr(s, t, R): is
// there a path from s to t whose label is in L(R)? It runs algorithm
// disRPQ: one visit per site, O(|R|²·|Vf|²) traffic.
func ReachRegex(cl *Cluster, fr *Fragmentation, s, t NodeID, a *Automaton) Result {
	return core.DisRPQ(cl, fr, s, t, a, nil)
}

// ReachRegexExpr is ReachRegex for a textual regular expression.
func ReachRegexExpr(cl *Cluster, fr *Fragmentation, s, t NodeID, expr string) (Result, error) {
	a, err := CompileRegex(expr)
	if err != nil {
		return Result{}, err
	}
	return ReachRegex(cl, fr, s, t, a), nil
}

// Session amortizes partial evaluation across queries that share a target:
// the first qr(s, t) for a target t visits every site once and caches the
// in-node equations (which are independent of s); later queries for the
// same t visit at most the source's site. Invalidate(fragmentID) drops a
// fragment's cached state after updates, and only that fragment is
// re-evaluated — the incremental direction sketched in the paper's
// conclusion.
type Session = core.Session

// NewSession creates an incremental evaluation session over a deployment.
func NewSession(cl *Cluster, fr *Fragmentation) *Session { return core.NewSession(cl, fr) }

// Coalesce places multiple fragments on fewer sites (placement[i] is the
// site of fragment i), merging co-located fragments: the paper's remark
// that "multiple fragments may reside in a single site". Cross edges
// between co-located fragments become internal, shrinking |Vf|.
func Coalesce(fr *Fragmentation, placement []int, sites int) (*Fragmentation, error) {
	return fragment.Coalesce(fr, placement, sites)
}

// MRStats is the MapReduce cost accounting (ECC per Afrati-Ullman).
type MRStats = mapreduce.Stats

// ReachMR evaluates qr(s, t) with the MapReduce adaptation of disReach.
func ReachMR(g *Graph, s, t NodeID, mappers int) (bool, MRStats, error) {
	return mapreduce.MRdReach(g, s, t, mappers)
}

// ReachWithinMR evaluates qbr(s, t, l) with the MapReduce adaptation of
// disDist; it returns the answer and the exact distance when within l.
func ReachWithinMR(g *Graph, s, t NodeID, l, mappers int) (bool, int64, MRStats, error) {
	return mapreduce.MRdDist(g, s, t, l, mappers)
}

// SiteServer serves one fragment over TCP (a real worker site).
type SiteServer = netsite.Site

// Coordinator evaluates queries against running TCP sites.
type Coordinator = netsite.Coordinator

// WireStats is the on-the-wire accounting of one TCP query round.
type WireStats = netsite.WireStats

// Serve starts one TCP site per fragment on loopback ports; callers must
// Close every returned site. Use ListenSite for explicit addresses.
func Serve(fr *Fragmentation) ([]*SiteServer, []string, error) {
	return netsite.ServeFragmentation(fr)
}

// ListenSite serves a single fragment on the given TCP address. Sites
// started this way have no fragmentation replica and reject edge-update
// frames; use ListenSiteFor for live deployments.
func ListenSite(addr string, f *fragment.Fragment) (*SiteServer, error) {
	return netsite.NewSite(addr, f)
}

// ListenSiteFor serves fragment fragID of fr on the given TCP address,
// keeping fr as the site's replica of the deployment so broadcast edge
// updates (Coordinator.Update) can be applied.
func ListenSiteFor(addr string, fr *Fragmentation, fragID int) (*SiteServer, error) {
	return netsite.NewSiteFor(addr, fr, fragID, netsite.SiteOptions{})
}

// DialSites connects a coordinator to running sites.
func DialSites(addrs []string, timeout time.Duration) (*Coordinator, error) {
	return netsite.Dial(addrs, timeout)
}

// UpdateOp selects the edge operation of a live update: UpdateInsert or
// UpdateDelete.
type UpdateOp = netsite.UpdateOp

// The two edge operations of Coordinator.Update.
const (
	UpdateInsert = netsite.UpdateInsert
	UpdateDelete = netsite.UpdateDelete
)

// UpdateResult reports the effect of one live update batch: whether the
// graph changed, which fragments were dirtied, the IDs of inserted nodes,
// and the post-update balance stats.
type UpdateResult = netsite.UpdateResult

// RebalanceResult reports the outcome of a live re-fragmentation
// (Coordinator.Rebalance): the epoch reached and the new balance.
type RebalanceResult = netsite.RebalanceResult

// ReachRegexMR evaluates qrr(s, t, R) with the MapReduce algorithm MRdRPQ:
// the graph is partitioned into `mappers` fragments, each mapper runs local
// evaluation, and a single reducer assembles the answer.
func ReachRegexMR(g *Graph, s, t NodeID, a *Automaton, mappers int) (bool, MRStats, error) {
	res, err := mapreduce.MRdRPQ(g, s, t, a, mappers)
	if err != nil {
		return false, MRStats{}, err
	}
	return res.Answer, res.Stats, nil
}
