# The same commands CI runs (.github/workflows/ci.yml), for humans.

GO ?= go

.PHONY: all build test race bench bench-smoke fuzz-smoke fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass (real measurements).
bench:
	$(GO) test -bench . -benchmem ./...

# One-iteration smoke run: proves every benchmark still compiles and runs,
# plus one short churn iteration of the load generator (live updates mixed
# into the query stream).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/bench -load -clients 2 -duration 1s -churn 5 -nodes 300 -edges 1200 -class mixed

# Short fuzzing pass over the wire codecs (one target per invocation: the
# Go fuzzer requires exactly one -fuzz match).
fuzz-smoke:
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzBatchPayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzUpdatePayload$$' -fuzztime 20s

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race bench-smoke fuzz-smoke
