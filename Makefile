# The same commands CI runs (.github/workflows/ci.yml), for humans.
# `make ci` is the single source of truth: every gate the workflow
# enforces is a target here, and the workflow only calls make.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-json bench-trajectory \
	cross-checks fuzz-smoke recovery-smoke obs-smoke govulncheck staticcheck \
	fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass (real measurements).
bench:
	$(GO) test -bench . -benchmem ./...

# One parameterized load-generator invocation shared by every smoke run
# (the flags were previously duplicated and drifting between lines).
BENCH_LOAD_FLAGS ?= -load -clients 2 -duration 1s -nodes 300 -edges 1200 -class mixed

# One-iteration smoke run: proves every benchmark still compiles and runs,
# plus short load-generator iterations — edge churn, node-op churn with a
# forced live rebalance (also exercising the JSON report path) — against
# an in-process deployment.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/bench $(BENCH_LOAD_FLAGS) -churn 5
	$(GO) run ./cmd/bench $(BENCH_LOAD_FLAGS) -churn 20 -nodechurn -rebalance 300ms -json /tmp/bench-smoke.json
	$(GO) run ./cmd/bench $(BENCH_LOAD_FLAGS) -churn 20 -index -json /tmp/bench-smoke-index.json
	$(GO) run ./cmd/bench $(BENCH_LOAD_FLAGS) -anytime -sitedelay 0,0,0,20ms -json /tmp/bench-smoke-anytime.json
	$(MAKE) obs-smoke

# Observability smoke: boot the built binaries (self-contained gateway,
# then k real cmd/site processes with -metrics), drive query and update
# load over HTTP, and fail on malformed Prometheus exposition, a missing
# trace tree, or any guarantee-auditor violation. See cmd/obscheck.
obs-smoke:
	$(GO) build -o /tmp/distreach-smoke-serve ./cmd/serve
	$(GO) build -o /tmp/distreach-smoke-site ./cmd/site
	$(GO) run ./cmd/obscheck -serve /tmp/distreach-smoke-serve -site /tmp/distreach-smoke-site

# The pinned bench-trajectory run: open loop on the checked-in SNAP sample
# at a fixed offered rate, seed and duration, with the reachability index
# enabled (and the anytime protocol, its default), emitting a
# schema-versioned report. This exact configuration produced the committed
# BENCH_PR9.json baseline; refresh it with
# `make bench-json BENCH_JSON_OUT=BENCH_PR9.json`.
BENCH_TRAJECTORY_FLAGS ?= -load -rate 200 -arrival poisson -duration 5s -clients 4 \
	-churn 10 -seed 6 -snap internal/graph/testdata/p2p-sample.txt -index
BENCH_JSON_OUT ?= BENCH.json

bench-json:
	$(GO) run ./cmd/bench $(BENCH_TRAJECTORY_FLAGS) -json $(BENCH_JSON_OUT)

# What CI's bench-trajectory job runs: measure, then gate against the
# committed baseline (>20% throughput drop or >50% p99 growth fails; see
# cmd/benchcheck for the override when a regression is intentional).
bench-trajectory:
	$(MAKE) bench-json BENCH_JSON_OUT=BENCH_PR.json
	$(GO) run ./cmd/benchcheck -baseline BENCH_PR9.json -current BENCH_PR.json

# Short fuzzing pass over the wire, durability and dataset codecs (one
# target per invocation: the Go fuzzer requires exactly one -fuzz match).
fuzz-smoke:
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzBatchPayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzAnytimePayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzUpdatePayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzRebalancePayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzSyncPayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzTracePayload$$' -fuzztime 20s
	$(GO) test ./internal/oplog -run '^$$' -fuzz '^FuzzOpsCodec$$' -fuzztime 20s
	$(GO) test ./internal/oplog -run '^$$' -fuzz '^FuzzSegmentScan$$' -fuzztime 20s
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzSNAPLoader$$' -fuzztime 20s
	$(GO) test ./internal/reachindex -run '^$$' -fuzz '^FuzzIndexLabels$$' -fuzztime 20s

# Crash-recovery acceptance pass (race-enabled): kill-and-restart catch-up
# over 50 randomized graphs, two concurrent gateways under one sequencer,
# snapshot-fallback catch-up, durable-sequencer restart resumption, and the
# gateway's WAL boot recovery.
recovery-smoke:
	$(GO) test -race -count 1 \
		-run 'TestSiteCatchUpAfterRestart|TestTwoGatewaysConverge|TestSyncSnapshotFallback' ./internal/netsite
	$(GO) test -race -count 1 \
		-run 'TestSequencerResumesAfterRestart|TestStoreRecover|TestLogTornTailTruncated' ./internal/oplog
	$(GO) test -race -count 1 \
		-run 'TestGatewayDurabilityStats|TestGatewayRecoversDeploymentFromWAL' ./cmd/serve

# The wire/simulation cross-checks CI pins with -count 1 (they are part of
# `make race` too; the explicit run guards against cached passes).
cross-checks:
	$(GO) test -race -run 'TestBatchWireCrossCheck|TestBatchLifecycleNoLeak' -count 1 ./internal/netsite
	$(GO) test -race -run 'TestAnytimeCrossCheck|TestAnytimePendingNoLeak' -count 1 ./internal/netsite
	$(GO) test -race -run 'TestUpdateWireCrossCheck|TestUpdateConcurrentWithQueries' -count 1 ./internal/netsite
	$(GO) test -race -run 'TestIndexChurnCrossCheck|TestFragmentIndexMatchesDirect' -count 1 ./internal/netsite ./internal/core
	$(GO) test -cpu 1,2,4 -count 1 ./internal/reachindex
	$(GO) test -race -run 'TestIndexAnswersUnderChurnAndRebalance' -count 1 ./internal/fragment
	$(GO) test -race -run 'TestGroupCommitCoalesces|TestSnapshotIndex|TestSnapshotRecoverWarm' -count 1 ./internal/oplog
	$(GO) test -race -run 'TestNodeOpsWireCrossCheck|TestNodeMutationCrossCheck|TestRebalanceEpochRace|TestRebalanceRestoresBalance' -count 1 ./internal/netsite ./internal/fragment
	$(GO) test -race -run 'TestTraceCrossCheck|TestWireAccounting' -count 1 ./internal/netsite

# Static analysis beyond go vet. Downloads the tool on first run.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

# Known-vulnerability scan against the Go vuln DB. Downloads the scanner
# on first run and needs network for the DB, so it is its own target (and
# CI job) rather than part of the offline-friendly gates.
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race cross-checks recovery-smoke bench-smoke staticcheck fuzz-smoke
