# The same commands CI runs (.github/workflows/ci.yml), for humans.

GO ?= go

.PHONY: all build test race bench bench-smoke fuzz-smoke recovery-smoke staticcheck fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass (real measurements).
bench:
	$(GO) test -bench . -benchmem ./...

# One-iteration smoke run: proves every benchmark still compiles and runs,
# plus short load-generator iterations — edge churn, node-op churn with a
# forced live rebalance — against an in-process deployment.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/bench -load -clients 2 -duration 1s -churn 5 -nodes 300 -edges 1200 -class mixed
	$(GO) run ./cmd/bench -load -clients 2 -duration 1s -churn 20 -nodechurn -rebalance 300ms -nodes 300 -edges 1200 -class mixed

# Short fuzzing pass over the wire and durability codecs (one target per
# invocation: the Go fuzzer requires exactly one -fuzz match).
fuzz-smoke:
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzBatchPayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzUpdatePayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzRebalancePayload$$' -fuzztime 20s
	$(GO) test ./internal/netsite -run '^$$' -fuzz '^FuzzSyncPayload$$' -fuzztime 20s
	$(GO) test ./internal/oplog -run '^$$' -fuzz '^FuzzOpsCodec$$' -fuzztime 20s
	$(GO) test ./internal/oplog -run '^$$' -fuzz '^FuzzSegmentScan$$' -fuzztime 20s

# Crash-recovery acceptance pass (race-enabled): kill-and-restart catch-up
# over 50 randomized graphs, two concurrent gateways under one sequencer,
# snapshot-fallback catch-up, durable-sequencer restart resumption, and the
# gateway's WAL boot recovery.
recovery-smoke:
	$(GO) test -race -count 1 \
		-run 'TestSiteCatchUpAfterRestart|TestTwoGatewaysConverge|TestSyncSnapshotFallback' ./internal/netsite
	$(GO) test -race -count 1 \
		-run 'TestSequencerResumesAfterRestart|TestStoreRecover|TestLogTornTailTruncated' ./internal/oplog
	$(GO) test -race -count 1 \
		-run 'TestGatewayDurabilityStats|TestGatewayRecoversDeploymentFromWAL' ./cmd/serve

# Static analysis beyond go vet. Downloads the tool on first run; CI has
# its own job for it.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race bench-smoke recovery-smoke fuzz-smoke
