// MapReduce: algorithm MRdRPQ end to end (Section 6). A citation-style
// labeled graph is partitioned by parG into one fragment per mapper; each
// mapper runs localEvalr as its Map function; a single reducer assembles
// the partial answers with evalDGr. The example sweeps the mapper count
// and prints the elapsed-communication-cost (ECC) accounting of Afrati and
// Ullman, showing that the mapper input (one fragment) shrinks with more
// mappers while the reducer input (the combined rvsets) stays bounded by
// O(|R|²·|Vf|²).
//
// Run with: go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"time"

	"distreach"
	"distreach/internal/gen"
)

func main() {
	g := gen.PowerLaw(gen.Config{
		Nodes:     30000,
		Edges:     90000,
		Labels:    gen.LabelAlphabet(10),
		LabelSkew: 1.0,
		Seed:      4096,
	})
	fmt.Printf("graph: %v\n\n", g)

	a, err := distreach.CompileRegex("L0 (L1|L2)* L3?")
	if err != nil {
		log.Fatal(err)
	}
	s, t := distreach.NodeID(0), distreach.NodeID(29999)

	fmt.Println("mappers  answer  ECC bytes   reducer-in  map wall    reduce wall")
	for _, mappers := range []int{2, 5, 10, 20, 30} {
		start := time.Now()
		ans, st, err := distreach.ReachRegexMR(g, s, t, a, mappers)
		if err != nil {
			log.Fatal(err)
		}
		_ = time.Since(start)
		reducerIn := int64(0)
		for _, b := range st.ReducerInBytes {
			reducerIn += b
		}
		fmt.Printf("%7d  %-6v  %-10d %-11d %-11v %v\n",
			mappers, ans, st.ECC, reducerIn,
			st.MapWall.Round(time.Microsecond), st.ReduceWall.Round(time.Microsecond))
	}

	fmt.Println("\nNote how the ECC drops as mappers are added: the dominant |Fm| term")
	fmt.Println("shrinks with the fragment size while the reducer input is governed by")
	fmt.Println("the query and the cut, not by the graph.")
}
