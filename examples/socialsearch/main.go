// Social search: regular reachability over a synthetic social network
// distributed across data centers, the workload the paper's introduction
// motivates ("social graphs of Twitter and Facebook are geo-distributed to
// different data centers").
//
// The scenario: a trust-aware recommendation engine needs to know whether
// an analyst can be reached from an executive through a chain of
// colleagues whose roles match a policy — e.g. through engineering
// management only, or through the sales organization — without copying any
// data center's subgraph elsewhere.
//
// Run with: go run ./examples/socialsearch
package main

import (
	"fmt"
	"log"
	"time"

	"distreach"
	"distreach/internal/gen"
)

func main() {
	// A 20k-person network with role labels, heavier on common roles.
	roles := []string{"eng", "mgr", "sales", "exec", "support", "legal", "hr", "ops"}
	g := gen.PowerLaw(gen.Config{
		Nodes:     20000,
		Edges:     120000,
		Labels:    roles,
		LabelSkew: 0.8,
		Seed:      2024,
	})

	// Geo-distribute over six data centers; the fragmentation is random —
	// the guarantees hold regardless of how the graph is partitioned.
	const sites = 6
	fr, err := distreach.PartitionRandom(g, sites, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v\ndeployment: %v\n\n", g, fr)

	// Model a realistic inter-DC link so that response times include
	// shipping costs.
	cl := distreach.NewCluster(sites, distreach.NetModel{
		Latency:        2 * time.Millisecond,
		BytesPerSecond: 50e6,
	})

	policies := []struct {
		name, expr string
	}{
		{"through engineering management", "mgr* eng*"},
		{"through the sales org", "sales+"},
		{"any chain of managers or execs", "(mgr|exec)*"},
		{"managers, then anyone", "mgr _*"},
		{"any chain of colleagues", "_*"},
	}
	// Pick a pair that is actually connected so the policies discriminate.
	src, dst := distreach.NodeID(11), distreach.NodeID(19990)
	for d := distreach.NodeID(g.NumNodes() - 1); d > 0; d-- {
		if d != src && g.Reachable(src, d) && g.Dist(src, d) >= 3 {
			dst = d
			break
		}
	}
	for _, p := range policies {
		res, err := distreach.ReachRegexExpr(cl, fr, src, dst, p.expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %-7v visits/site=%d traffic=%6.1fKB response=%v\n",
			p.name+":", res.Answer, res.Report.MaxVisits,
			float64(res.Report.Bytes)/1024, res.Report.Response.Round(time.Microsecond))
	}

	// The same question, answered with the MapReduce formulation.
	a, err := distreach.CompileRegex("(mgr|exec)*")
	if err != nil {
		log.Fatal(err)
	}
	ans, st, err := distreach.ReachRegexMR(g, src, dst, a, sites)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMRdRPQ agrees: %v (ECC=%d bytes over %d mappers)\n", ans, st.ECC, st.Mappers)
}
