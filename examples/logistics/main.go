// Logistics: bounded reachability as a delivery-hop SLA check. A parcel
// network (depots and sortation centers, edges are scheduled legs) is
// sharded by region across sites; the dispatcher asks whether a
// destination is reachable within l legs — qbr(s, t, l) — and gets the
// exact hop distance when it is.
//
// The example also demonstrates the third performance guarantee: response
// time tracks the largest fragment, so doubling the number of sites
// roughly halves the local-evaluation cost.
//
// Run with: go run ./examples/logistics
package main

import (
	"fmt"
	"log"
	"time"

	"distreach"
	"distreach/internal/gen"
)

func main() {
	// A layered network: parcels flow forward through 12 layers of 600
	// facilities; some long-haul legs skip layers.
	g := buildNetwork()
	fmt.Printf("parcel network: %v\n\n", g)

	src := distreach.NodeID(3)                // origin depot, layer 0
	dst := distreach.NodeID(g.NumNodes() - 7) // destination, last layer

	for _, regions := range []int{4, 8, 16} {
		fr, err := distreach.PartitionGreedy(g, regions, 99)
		if err != nil {
			log.Fatal(err)
		}
		cl := distreach.NewCluster(regions, distreach.NetModel{
			Latency: time.Millisecond, BytesPerSecond: 100e6,
		})
		start := time.Now()
		res := distreach.ReachWithin(cl, fr, src, dst, 14)
		wall := time.Since(start)
		fmt.Printf("regions=%2d  within 14 legs: %-5v dist=%-3d |Fm|=%-6d wall=%v\n",
			regions, res.Answer, res.Distance, fr.MaxFragmentSize(), wall.Round(time.Microsecond))
	}

	// Tighten the SLA until it fails, reporting the break-even bound.
	fr, err := distreach.PartitionRandom(g, 8, 5)
	if err != nil {
		log.Fatal(err)
	}
	cl := distreach.NewCluster(8, distreach.NetModel{})
	fmt.Println()
	for l := 14; l >= 8; l-- {
		res := distreach.ReachWithin(cl, fr, src, dst, l)
		fmt.Printf("SLA %2d legs: %v\n", l, res.Answer)
		if !res.Answer {
			fmt.Printf("tightest feasible SLA is %d legs\n", l+1)
			break
		}
	}
}

func buildNetwork() *distreach.Graph {
	rng := gen.NewRNG(314)
	const layers, width = 12, 600
	b := distreach.NewBuilder(layers * width)
	for i := 0; i < layers*width; i++ {
		b.AddNode("facility")
	}
	id := func(layer, i int) distreach.NodeID { return distreach.NodeID(layer*width + i) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			// Scheduled legs to a few facilities in the next layer.
			for d := 0; d < 3; d++ {
				b.AddEdge(id(l, i), id(l+1, rng.Intn(width)))
			}
			// Occasional long-haul leg skipping a layer.
			if l+2 < layers && rng.Intn(10) == 0 {
				b.AddEdge(id(l, i), id(l+2, rng.Intn(width)))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}
