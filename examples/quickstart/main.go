// Quickstart: the paper's running example (Fig. 1). A recommendation
// network is geo-distributed across three data centers; we ask the three
// query classes about it and print the answers together with the
// performance guarantees in action (each site visited exactly once,
// traffic independent of fragment interiors).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distreach"
)

func main() {
	// Build the graph of Fig. 1: people with job titles, edges are
	// recommendations.
	b := distreach.NewBuilder(11)
	type person struct {
		name, job string
		dc        int // which data center stores the node
	}
	people := []person{
		{"Ann", "CTO", 0}, {"Bill", "DB", 0}, {"Walt", "HR", 0}, {"Fred", "HR", 0},
		{"Mat", "HR", 1}, {"Emmy", "HR", 1}, {"Jack", "MK", 1},
		{"Pat", "SE", 2}, {"Ross", "HR", 2}, {"Tom", "AI", 2}, {"Mark", "FA", 2},
	}
	id := map[string]distreach.NodeID{}
	assign := make([]int, 0, len(people))
	for _, p := range people {
		id[p.name] = b.AddNode(p.job)
		assign = append(assign, p.dc)
	}
	for _, e := range [][2]string{
		{"Ann", "Bill"}, {"Ann", "Walt"}, {"Walt", "Mat"}, {"Bill", "Pat"},
		{"Fred", "Emmy"}, {"Mat", "Fred"}, {"Emmy", "Ross"}, {"Jack", "Emmy"},
		{"Mat", "Jack"}, {"Ross", "Mark"}, {"Pat", "Jack"}, {"Ross", "Tom"},
	} {
		b.AddEdge(id[e[0]], id[e[1]])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Fragment exactly as in the paper: F1 at DC1, F2 at DC2, F3 at DC3.
	fr, err := distreach.PartitionWith(g, assign, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\nfragmentation: %v\n\n", g, fr)

	cl := distreach.NewCluster(3, distreach.NetModel{})

	// Example 1: is there a recommendation chain from CTO Ann to financial
	// analyst Mark through a list of DB people or a list of HR people?
	res, err := distreach.ReachRegexExpr(cl, fr, id["Ann"], id["Mark"], "DB*|HR*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qrr(Ann, Mark, DB*|HR*) = %v   (via Ann→Walt→Mat→Fred→Emmy→Ross→Mark)\n", res.Answer)
	fmt.Printf("  visits per site: %v (each site visited exactly once)\n", res.Report.Visits)
	fmt.Printf("  traffic: %d bytes, %d messages\n\n", res.Report.Bytes, res.Report.Messages)

	// Plain reachability.
	r := distreach.Reach(cl, fr, id["Ann"], id["Mark"])
	fmt.Printf("qr(Ann, Mark) = %v\n", r.Answer)
	r = distreach.Reach(cl, fr, id["Mark"], id["Ann"])
	fmt.Printf("qr(Mark, Ann) = %v (recommendations flow one way)\n\n", r.Answer)

	// Example 5: bounded reachability — within six recommendation hops?
	d := distreach.ReachWithin(cl, fr, id["Ann"], id["Mark"], 6)
	fmt.Printf("qbr(Ann, Mark, 6) = %v, dist = %d\n", d.Answer, d.Distance)
	d = distreach.ReachWithin(cl, fr, id["Ann"], id["Mark"], 5)
	fmt.Printf("qbr(Ann, Mark, 5) = %v (the shortest chain needs 6 hops)\n", d.Answer)
}
