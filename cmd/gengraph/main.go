// Command gengraph produces synthetic labeled graphs in the text format of
// internal/graph, for feeding cmd/disreach or external tooling.
//
// Usage:
//
//	gengraph -nodes 10000 -edges 40000 -labels 8 -model powerlaw -seed 1 > g.txt
//	gengraph -dataset Youtube > youtube.txt
//	gengraph -snap p2p-Gnutella08.txt.gz -labels 4 > gnutella.txt
//
// -snap converts a SNAP edge-list file (plain or gzipped, IDs remapped
// deterministically; see internal/graph.ReadSNAP) into the labeled text
// format the rest of the tooling consumes.
package main

import (
	"flag"
	"fmt"
	"os"

	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 1000, "number of nodes")
		edges   = flag.Int("edges", 4000, "number of edges")
		labels  = flag.Int("labels", 0, "label alphabet size (0 = unlabeled)")
		skew    = flag.Float64("skew", 1.0, "Zipf exponent for label frequencies")
		model   = flag.String("model", "powerlaw", "generator: powerlaw | uniform | layered | cycle")
		seed    = flag.Uint64("seed", 1, "generator seed")
		dataset = flag.String("dataset", "", "generate a named dataset analogue instead (see DESIGN.md)")
		snap    = flag.String("snap", "", "convert a SNAP edge-list file (plain or gzip) instead of generating")
	)
	flag.Parse()

	var g *graph.Graph
	if *snap != "" {
		var alphabet []string
		if *labels > 0 {
			alphabet = gen.LabelAlphabet(*labels)
		}
		var err error
		if g, err = graph.OpenSNAP(*snap, alphabet); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
	} else if *dataset != "" {
		d, ok := workload.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "gengraph: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		g = d.Generate()
	} else {
		cfg := gen.Config{Nodes: *nodes, Edges: *edges, LabelSkew: *skew, Seed: *seed}
		if *labels > 0 {
			cfg.Labels = gen.LabelAlphabet(*labels)
		}
		switch *model {
		case "powerlaw":
			g = gen.PowerLaw(cfg)
		case "uniform":
			g = gen.Uniform(cfg)
		case "layered":
			g = gen.Layered(*nodes/100+2, 100, 0.05, cfg.Labels, *seed)
		case "cycle":
			g = gen.Cycle(*nodes, cfg.Labels, *seed)
		default:
			fmt.Fprintf(os.Stderr, "gengraph: unknown model %q\n", *model)
			os.Exit(2)
		}
	}
	if err := graph.Write(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %v\n", g)
}
