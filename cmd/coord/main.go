// Command coord is the coordinator of a real distributed deployment (see
// cmd/site). It has two modes:
//
//   - partitioning: -k N -writeassign a.txt computes a fragmentation of the
//     graph and writes the assignment file the sites load;
//   - querying: -sites addr1,addr2,... evaluates qr / qbr / qrr against
//     running sites and prints the answer with the wire accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distreach"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "graph file (format of cmd/gengraph)")
		k           = flag.Int("k", 4, "fragment count (partitioning mode)")
		seed        = flag.Uint64("seed", 1, "partitioner seed")
		partition   = flag.String("partition", "random", "partitioner: random | hash | contiguous | greedy")
		writeAssign = flag.String("writeassign", "", "write the assignment file and exit")
		sites       = flag.String("sites", "", "comma-separated site addresses (query mode)")
		s           = flag.Int("s", 0, "source node")
		t           = flag.Int("t", 1, "target node")
		l           = flag.Int("l", -1, "distance bound (>= 0 enables bounded reachability)")
		re          = flag.String("r", "", "regular expression (enables regular reachability)")
		timeout     = flag.Duration("timeout", 3*time.Second, "dial timeout")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "coord: -graph is required")
		os.Exit(2)
	}
	gf, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}

	if *writeAssign != "" {
		var fr *distreach.Fragmentation
		switch *partition {
		case "random":
			fr, err = distreach.PartitionRandom(g, *k, *seed)
		case "hash":
			fr, err = distreach.PartitionHash(g, *k)
		case "contiguous":
			fr, err = distreach.PartitionContiguous(g, *k)
		case "greedy":
			fr, err = distreach.PartitionGreedy(g, *k, *seed)
		default:
			err = fmt.Errorf("unknown partitioner %q", *partition)
		}
		if err != nil {
			fatal(err)
		}
		out, err := os.Create(*writeAssign)
		if err != nil {
			fatal(err)
		}
		if err := fragment.Write(out, fr); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("coord: wrote %v to %s\n", fr, *writeAssign)
		return
	}

	if *sites == "" {
		fmt.Fprintln(os.Stderr, "coord: need -sites (query mode) or -writeassign (partition mode)")
		os.Exit(2)
	}
	addrs := strings.Split(*sites, ",")
	co, err := netsite.Dial(addrs, *timeout)
	if err != nil {
		fatal(err)
	}
	defer co.Close()
	src, dst := graph.NodeID(*s), graph.NodeID(*t)

	switch {
	case *re != "":
		a, err := distreach.CompileRegex(*re)
		if err != nil {
			fatal(err)
		}
		ans, st, err := co.ReachRegex(src, dst, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("qrr(%d, %d, %s) = %v\n", src, dst, *re, ans)
		printStats(st, len(addrs))
	case *l >= 0:
		ans, dist, st, err := co.ReachWithin(src, dst, *l)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("qbr(%d, %d, %d) = %v", src, dst, *l, ans)
		if ans {
			fmt.Printf(" (dist = %d)", dist)
		}
		fmt.Println()
		printStats(st, len(addrs))
	default:
		ans, st, err := co.Reach(src, dst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("qr(%d, %d) = %v\n", src, dst, ans)
		printStats(st, len(addrs))
	}
}

func printStats(st netsite.WireStats, sites int) {
	fmt.Printf("  sites: %d (one visit each)  sent: %dB  received: %dB  round trip: %v\n",
		sites, st.BytesSent, st.BytesReceived, st.RoundTrip.Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "coord: %v\n", err)
	os.Exit(1)
}
