// Command obscheck is the observability smoke gate CI runs after the
// bench smoke: it boots a real deployment from the built binaries, drives
// query and update traffic over HTTP, then scrapes and validates every
// observability surface this repo promises —
//
//   - GET /metrics on the gateway AND on each cmd/site process must be
//     well-formed Prometheus text exposition (obs.ValidateExposition, the
//     checks a real scraper enforces), with the load visibly counted;
//   - GET /guarantees must report zero frames-per-site and zero
//     response-volume violations over the traffic just driven — the
//     paper's bounds, audited live, gate CI;
//   - a traced query's GET /trace/{id} must return the assembled tree,
//     site eval spans and reachindex outcomes included.
//
// Two legs: a self-contained gateway (serve -graph, loopback sites in
// process) and a real deployment (k cmd/site processes with -metrics,
// fronted by serve -sites). Usage:
//
//	go build -o /tmp/ds-serve ./cmd/serve
//	go build -o /tmp/ds-site  ./cmd/site
//	go run ./cmd/obscheck -serve /tmp/ds-serve -site /tmp/ds-site
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"distreach"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/obs"
)

const (
	nodes   = 300
	edges   = 1200
	k       = 3
	queries = 60
	updates = 5
	seed    = 17
)

var labels = []string{"A", "B", "C"}

func main() {
	var (
		serveBin = flag.String("serve", "", "path to the built cmd/serve binary (required)")
		siteBin  = flag.String("site", "", "path to the built cmd/site binary (empty = skip the real-sites leg)")
		timeout  = flag.Duration("timeout", 90*time.Second, "overall budget")
	)
	flag.Parse()
	if *serveBin == "" {
		fmt.Fprintln(os.Stderr, "obscheck: -serve is required")
		os.Exit(2)
	}
	deadline := time.Now().Add(*timeout)

	dir, err := os.MkdirTemp("", "obscheck")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	g := gen.Uniform(gen.Config{Nodes: nodes, Edges: edges, Labels: labels, Seed: seed})
	graphPath := filepath.Join(dir, "graph.txt")
	if err := writeGraph(graphPath, g); err != nil {
		fatal(err)
	}

	fmt.Println("obscheck: leg 1 — self-contained gateway")
	if err := gatewayLeg(*serveBin, graphPath, deadline,
		"-graph", graphPath, "-k", fmt.Sprint(k)); err != nil {
		fatal(err)
	}

	if *siteBin == "" {
		fmt.Println("obscheck: leg 2 skipped (-site not given)")
		fmt.Println("obscheck: PASS")
		return
	}
	fmt.Println("obscheck: leg 2 — real site processes")
	if err := sitesLeg(*serveBin, *siteBin, dir, graphPath, g, deadline); err != nil {
		fatal(err)
	}
	fmt.Println("obscheck: PASS")
}

// gatewayLeg boots one serve process (extra args select the deployment),
// drives traffic, and validates /metrics, /guarantees and /trace.
func gatewayLeg(serveBin, graphPath string, deadline time.Time, extra ...string) error {
	port, err := freePort()
	if err != nil {
		return err
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	args := append([]string{"-listen", fmt.Sprintf("127.0.0.1:%d", port), "-cache", "8"}, extra...)
	cmd := exec.Command(serveBin, args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start serve: %w", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	if err := waitHTTP(base+"/healthz", deadline); err != nil {
		return err
	}
	traceID, err := drive(base)
	if err != nil {
		return err
	}
	if err := checkTrace(base, traceID); err != nil {
		return err
	}
	samples, err := scrapeExposition(base + "/metrics")
	if err != nil {
		return err
	}
	if v := samples["gateway_queries_total"]; v < queries {
		return fmt.Errorf("gateway_queries_total = %v after %d queries", v, queries)
	}
	if v := samples["gateway_updates_total"]; v < updates {
		return fmt.Errorf("gateway_updates_total = %v after %d updates", v, updates)
	}
	if !anyPrefix(samples, "gateway_query_seconds_bucket") {
		return fmt.Errorf("no gateway_query_seconds histogram in the exposition")
	}
	return checkGuarantees(base)
}

// sitesLeg partitions the graph, writes the assignment, boots k cmd/site
// processes with -metrics, fronts them with serve -sites, drives traffic,
// and validates the gateway surfaces plus every site's exposition.
func sitesLeg(serveBin, siteBin, dir, graphPath string, g *graph.Graph, deadline time.Time) error {
	fr, err := distreach.PartitionEdgeCut(g, k, seed)
	if err != nil {
		return err
	}
	assignPath := filepath.Join(dir, "assign.txt")
	af, err := os.Create(assignPath)
	if err != nil {
		return err
	}
	if err := fragment.Write(af, fr); err != nil {
		af.Close()
		return err
	}
	if err := af.Close(); err != nil {
		return err
	}

	var siteAddrs, metricAddrs []string
	var sites []*exec.Cmd
	defer func() {
		for _, c := range sites {
			c.Process.Kill()
			c.Wait()
		}
	}()
	for i := 0; i < k; i++ {
		sp, err := freePort()
		if err != nil {
			return err
		}
		mp, err := freePort()
		if err != nil {
			return err
		}
		addr := fmt.Sprintf("127.0.0.1:%d", sp)
		maddr := fmt.Sprintf("127.0.0.1:%d", mp)
		cmd := exec.Command(siteBin,
			"-graph", graphPath, "-assign", assignPath,
			"-fragment", fmt.Sprint(i), "-listen", addr,
			"-metrics", maddr, "-pprof")
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start site %d: %w", i, err)
		}
		sites = append(sites, cmd)
		siteAddrs = append(siteAddrs, addr)
		metricAddrs = append(metricAddrs, maddr)
	}
	for _, m := range metricAddrs {
		if err := waitHTTP("http://"+m+"/metrics", deadline); err != nil {
			return err
		}
	}
	if err := gatewayLeg(serveBin, graphPath, deadline,
		"-sites", strings.Join(siteAddrs, ",")); err != nil {
		return err
	}
	for i, m := range metricAddrs {
		samples, err := scrapeExposition("http://" + m + "/metrics")
		if err != nil {
			return fmt.Errorf("site %d: %w", i, err)
		}
		if !anyPrefix(samples, "site_frames_total") {
			return fmt.Errorf("site %d served traffic but counted no frames", i)
		}
		if !anyPrefix(samples, "site_eval_seconds") {
			return fmt.Errorf("site %d exposition lacks the eval histogram", i)
		}
	}
	return nil
}

// drive fires the query and update mix and returns a trace ID captured
// from a wire round's response.
func drive(base string) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	traceID := ""
	for i := 0; i < queries; i++ {
		var u string
		switch i % 3 {
		case 0:
			u = fmt.Sprintf("%s/reach?s=%d&t=%d", base, rng.Intn(nodes), rng.Intn(nodes))
		case 1:
			u = fmt.Sprintf("%s/reachwithin?s=%d&t=%d&l=%d", base, rng.Intn(nodes), rng.Intn(nodes), 1+rng.Intn(8))
		case 2:
			u = fmt.Sprintf("%s/reachregex?s=%d&t=%d&r=%s", base, rng.Intn(nodes), rng.Intn(nodes), url.QueryEscape("A(B|C)*"))
		}
		body, err := get(u)
		if err != nil {
			return "", err
		}
		var resp struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return "", fmt.Errorf("%s: %v", u, err)
		}
		if resp.TraceID != "" {
			traceID = resp.TraceID
		}
	}
	if traceID == "" {
		return "", fmt.Errorf("no query response carried a trace_id — is tracing off?")
	}
	for i := 0; i < updates; i++ {
		payload := fmt.Sprintf(`{"op":"insert","u":%d,"v":%d}`, rng.Intn(nodes), rng.Intn(nodes))
		resp, err := http.Post(base+"/update", "application/json", bytes.NewReader([]byte(payload)))
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("POST /update: status %d", resp.StatusCode)
		}
	}
	return traceID, nil
}

// checkTrace fetches one assembled trace tree and requires the site spans
// the acceptance criteria name: per-site eval timing with the reachindex
// outcome attached.
func checkTrace(base, traceID string) error {
	body, err := get(base + "/trace/" + traceID)
	if err != nil {
		return err
	}
	var tree struct {
		Name     string `json:"name"`
		Children []json.RawMessage
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		return fmt.Errorf("/trace/%s: %v", traceID, err)
	}
	for _, want := range []string{`"eval"`, "reachindex_outcome"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/trace/%s: tree has no %s span data", traceID, want)
		}
	}
	return nil
}

// checkGuarantees decodes the auditor summary and fails on any violation:
// the paper's bounds, measured on the traffic just driven.
func checkGuarantees(base string) error {
	body, err := get(base + "/guarantees")
	if err != nil {
		return err
	}
	var s struct {
		Rounds          int64 `json:"rounds"`
		FrameViolations int64 `json:"frame_violations"`
		ByteViolations  int64 `json:"byte_violations"`
	}
	if err := json.Unmarshal(body, &s); err != nil {
		return fmt.Errorf("/guarantees: %v", err)
	}
	if s.Rounds == 0 {
		return fmt.Errorf("/guarantees: auditor observed no rounds")
	}
	if s.FrameViolations != 0 || s.ByteViolations != 0 {
		return fmt.Errorf("/guarantees: %d frame and %d byte violations over %d rounds: %s",
			s.FrameViolations, s.ByteViolations, s.Rounds, body)
	}
	fmt.Printf("obscheck: guarantees clean over %d audited rounds\n", s.Rounds)
	return nil
}

// scrapeExposition fetches a /metrics endpoint and validates it as
// Prometheus text exposition.
func scrapeExposition(url string) (map[string]float64, error) {
	body, err := get(url)
	if err != nil {
		return nil, err
	}
	samples, err := obs.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%s: malformed exposition: %w", url, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: empty exposition", url)
	}
	fmt.Printf("obscheck: %s: %d samples, well-formed\n", url, len(samples))
	return samples, nil
}

func anyPrefix(samples map[string]float64, prefix string) bool {
	for key := range samples {
		if strings.HasPrefix(key, prefix) {
			return true
		}
	}
	return false
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}

// waitHTTP polls a URL until it answers 200.
func waitHTTP(url string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", url)
}

// freePort grabs an ephemeral port and releases it for the child to bind.
// The tiny reuse race is acceptable in a smoke run.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
	os.Exit(1)
}
