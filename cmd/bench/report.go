package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Machine-checkable bench reports. A -json run writes one BENCH_*.json
// whose schema is versioned, so CI can compare runs across PRs (see
// cmd/benchcheck) without scraping the human-readable output. Schema v3
// (v2 plus the "meta" run-provenance section; everything v1 and v2
// carried is unchanged, so old baselines stay comparable):
//
//	{
//	  "schema": "distreach-bench/v3",
//	  "meta": { "git_commit":.., "go_version":.., "hostname":..,
//	            "gomaxprocs":.., "num_cpu":.. },  // which build, which box
//	  "mode": "open" | "closed",
//	  "config": { ... the knobs that shaped the run ... },
//	  "queries": N, "rounds": N, "errors": N, "elapsed_sec": S,
//	  "qps": Q,                          // achieved throughput
//	  "offered_qps": R,                  // open loop only: the schedule
//	  "latency_us":  {"mean":..,"p50":..,"p90":..,"p95":..,"p99":..,"max":..},
//	  "first_answer_us": {...},          // wire mode: per-round WireStats.FirstAnswer
//	  "lateness_us": {...},              // open loop only: start - scheduled
//	  "updates": N, "update_errors": N, "rebalances": N,
//	  "max_replica_lag_batches": N,      // wire mode with churn
//	  "bytes_per_query": B,              // wire mode: sent+received
//	  "rss_bytes": B,                    // generator process VmRSS
//	  "anytime": { ... protocol counters; wire mode ... }
//	}
//
// Latency percentiles are measured from the SCHEDULED arrival in open
// loop (so queue delay under overload is charged to the system, not
// silently dropped — no coordinated omission) and from issue time in
// closed loop. First-answer percentiles come from the coordinator's own
// clock (WireStats.FirstAnswer): the instant streamed partials proved the
// round, before the straggler sites' finals.
const benchSchema = "distreach-bench/v3"

// benchRunMeta records where a report came from, so a regression hunt can
// tell a code change from a machine change. Every field is best-effort:
// a missing git binary or a detached checkout leaves git_commit empty
// rather than failing the run.
type benchRunMeta struct {
	GitCommit  string `json:"git_commit,omitempty"`
	GoVersion  string `json:"go_version"`
	Hostname   string `json:"hostname,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// collectRunMeta samples the run's provenance. The commit comes from the
// build info stamped into the binary (vcs.revision) when present, falling
// back to asking git — `go run ./cmd/bench` builds without VCS stamping.
func collectRunMeta() *benchRunMeta {
	m := &benchRunMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if h, err := os.Hostname(); err == nil {
		m.Hostname = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.GitCommit = s.Value
			}
		}
	}
	if m.GitCommit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			m.GitCommit = strings.TrimSpace(string(out))
		}
	}
	return m
}

type latencySummary struct {
	MeanUS int64 `json:"mean"`
	P50US  int64 `json:"p50"`
	P90US  int64 `json:"p90"`
	P95US  int64 `json:"p95"`
	P99US  int64 `json:"p99"`
	MaxUS  int64 `json:"max"`
}

// summarize sorts lats in place and reduces it to microsecond percentiles.
func summarize(lats []time.Duration) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	pct := func(p float64) int64 {
		return lats[int(p*float64(len(lats)-1))].Microseconds()
	}
	return latencySummary{
		MeanUS: (sum / time.Duration(len(lats))).Microseconds(),
		P50US:  pct(0.50),
		P90US:  pct(0.90),
		P95US:  pct(0.95),
		P99US:  pct(0.99),
		MaxUS:  pct(1.0),
	}
}

type benchReportConfig struct {
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	Class       string  `json:"class"`
	Batch       int     `json:"batch"`
	ChurnPerSec float64 `json:"churn_per_sec"`
	NodeChurn   bool    `json:"node_churn"`
	RebalanceMS int64   `json:"rebalance_ms"`
	RatePerSec  float64 `json:"rate_per_sec"` // 0 = closed loop
	Arrival     string  `json:"arrival,omitempty"`
	Anytime     bool    `json:"anytime"`
	SiteDelay   string  `json:"site_delay,omitempty"` // comma-separated per-site service delays
	Snap        string  `json:"snap,omitempty"`
	URL         string  `json:"url,omitempty"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	K           int     `json:"k"`
	Seed        uint64  `json:"seed"`
}

type benchReport struct {
	Schema  string            `json:"schema"`
	Meta    *benchRunMeta     `json:"meta,omitempty"`
	Mode    string            `json:"mode"`
	Config  benchReportConfig `json:"config"`
	Queries int               `json:"queries"`
	Rounds  int               `json:"rounds"`
	Errors  int               `json:"errors"`

	ElapsedSec float64 `json:"elapsed_sec"`
	QPS        float64 `json:"qps"`
	OfferedQPS float64 `json:"offered_qps,omitempty"`

	Latency     latencySummary  `json:"latency_us"`
	FirstAnswer *latencySummary `json:"first_answer_us,omitempty"`
	Lateness    *latencySummary `json:"lateness_us,omitempty"`

	Updates      int    `json:"updates"`
	UpdateErrors int    `json:"update_errors"`
	Rebalances   int    `json:"rebalances"`
	MaxLag       uint64 `json:"max_replica_lag_batches"`

	BytesPerQuery float64 `json:"bytes_per_query"`
	RSSBytes      int64   `json:"rss_bytes"`

	ReachIndex *indexReport   `json:"reachindex,omitempty"`
	Anytime    *anytimeReport `json:"anytime,omitempty"`
}

// anytimeReport is the anytime-protocol section of a wire-mode report:
// the coordinator's counters after the load drained.
type anytimeReport struct {
	Enabled           bool    `json:"enabled"`
	EarlyTerminations int64   `json:"early_terminations"`
	EarlyTermRate     float64 `json:"early_term_rate"` // early terminations / rounds
	CancelsSent       int64   `json:"cancels_sent"`
	PartialFrames     int64   `json:"partial_frames"`
	Stragglers        []int64 `json:"stragglers"` // per site: rounds decided before its final
}

// indexReport is the -index section of the JSON report: the counters the
// serving traffic produced plus a post-run direct-vs-indexed local
// evaluation calibration on the final graph.
type indexReport struct {
	Enabled           bool    `json:"enabled"`
	BudgetBytes       int64   `json:"budget_bytes"`
	Policy            string  `json:"policy"`
	LabelBytes        int64   `json:"label_bytes"`
	Fragments         int     `json:"fragments_indexed"`
	Hits              int64   `json:"hits"`
	Fallbacks         int64   `json:"fallbacks"`
	HitRate           float64 `json:"hit_rate"`
	Rebuilds          int64   `json:"rebuilds"`
	LastRebuildUS     int64   `json:"last_rebuild_us"`
	TotalRebuildUS    int64   `json:"total_rebuild_us"`
	DirectUSPerQuery  float64 `json:"direct_us_per_query"`
	IndexedUSPerQuery float64 `json:"indexed_us_per_query"`
	LocalEvalSpeedup  float64 `json:"local_eval_speedup"`
	// Post-run build calibration on the final fragments: full index build
	// wall time single-threaded vs all cores (the async rebuild window
	// mutations and rebalances open).
	BuildSerialUS   float64 `json:"build_serial_us"`
	BuildParallelUS float64 `json:"build_parallel_us"`
	BuildSpeedup    float64 `json:"build_speedup"`
}

// writeReport serializes rep to path (pretty-printed, trailing newline,
// stable key order via struct fields — byte-reproducible for a pinned
// seed and deterministic counters).
func writeReport(path string, rep benchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// rssBytes reports the process's resident set (VmRSS) in bytes; 0 when
// /proc is unavailable (non-Linux).
func rssBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// fmtDurationUS renders a microsecond count the way the plain output
// formats durations.
func fmtDurationUS(us int64) string {
	return fmt.Sprint(time.Duration(us) * time.Microsecond)
}
