// Command bench regenerates the paper's evaluation: Table 2, every panel of
// Fig. 11, the in-text visit/traffic claims, and the DESIGN.md ablations.
// It doubles as a closed-loop load generator for the serving runtime.
//
// Usage:
//
//	bench -exp T2              # one experiment
//	bench -all                 # the whole suite
//	bench -all -md -out EXPERIMENTS.raw.md
//	bench -exp F11a -queries 100 -scale 1.0 -v
//
// Load generation. Closed loop (default): each client issues its next query
// as soon as the previous answers — measures peak sustainable throughput.
// Open loop (-rate): arrivals follow a fixed Poisson or uniform schedule
// independent of completions, latency is charged from the scheduled arrival
// (no coordinated omission), and dequeue delay is reported as lateness.
//
//	bench -load -clients 8 -duration 3s                   # in-process TCP deployment
//	bench -load -clients 16 -class mixed -nodes 5000
//	bench -load -url http://127.0.0.1:8080 -clients 32    # against a cmd/serve gateway
//	bench -load -batch 8 -class mixed                     # 8 queries per wire batch frame
//	bench -load -rate 500 -arrival poisson -duration 5s   # open loop at 500 q/s offered
//	bench -load -snap p2p-Gnutella08.txt.gz -rate 200     # drive a real SNAP graph
//	bench -load -rate 200 -json BENCH.json                # machine-checkable report
//
// Output rows mirror the series the paper plots; absolute numbers differ
// (simulated sites, scaled datasets) but the shapes — who wins, by what
// factor, where crossovers fall — are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distreach/internal/exp"
	"distreach/internal/reachindex"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment ID to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		queries = flag.Int("queries", 0, "queries per measurement point (0 = per-experiment default)")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = repo defaults, ~1/100 of the paper)")
		md      = flag.Bool("md", false, "emit GitHub-flavored markdown tables")
		out     = flag.String("out", "", "write output to a file instead of stdout")
		verbose = flag.Bool("v", false, "log progress to stderr")

		load      = flag.Bool("load", false, "run the load generator instead of experiments")
		clients   = flag.Int("clients", 8, "load: concurrent clients (closed loop) or workers (open loop)")
		duration  = flag.Duration("duration", 3*time.Second, "load: how long to drive traffic")
		class     = flag.String("class", "qr", "load: query class: qr | qbr | qrr | mixed")
		batch     = flag.Int("batch", 1, "load: queries per wire batch (1 = single-query API)")
		churn     = flag.Float64("churn", 0, "load: updates per second mixed into the query stream (0 = none)")
		nodechurn = flag.Bool("nodechurn", false, "load: mix node inserts/deletes into the churn stream")
		rebalance = flag.Duration("rebalance", 0, "load: force a live re-fragmentation at this interval (0 = never)")
		rate      = flag.Float64("rate", 0, "load: open-loop offered arrivals per second (0 = closed loop)")
		arrival   = flag.String("arrival", "poisson", "load: open-loop arrival schedule: poisson | uniform")
		jsonOut   = flag.String("json", "", "load: write a schema-versioned JSON report to this path")
		snap      = flag.String("snap", "", "load: build the in-process deployment from this SNAP edge-list file")
		sdelay    = flag.String("sitedelay", "0", "load: emulated per-frame site service time (in-process mode; the N3 workload uses 5ms). A comma-separated list assigns delays per site, cycling — e.g. 0,0,0,50ms puts one straggler in a 4-site deployment")
		anytime   = flag.Bool("anytime", true, "load: anytime answers — sites stream partial equations and reach rounds terminate the instant they are proven (in-process mode)")
		url       = flag.String("url", "", "load: drive a cmd/serve gateway at this base URL instead of an in-process deployment")
		index     = flag.Bool("index", false, "load: enable the per-fragment reachability index (in-process mode)")
		indexBgt  = flag.Int64("indexbudget", reachindex.DefaultBudget, "load: with -index, per-fragment label budget in bytes")
		indexPol  = flag.String("indexpolicy", "postorder", "load: with -index, budget policy: postorder | hits")
		nodes     = flag.Int("nodes", 2000, "load: graph nodes (in-process mode; node-ID range in -url mode)")
		edges     = flag.Int("edges", 8000, "load: graph edges (in-process mode)")
		k         = flag.Int("k", 4, "load: fragment count (in-process mode)")
		seed      = flag.Uint64("seed", 1, "load: workload seed")
	)
	flag.Parse()

	if *load {
		err := runLoad(loadConfig{
			clients:   *clients,
			duration:  *duration,
			class:     *class,
			batch:     *batch,
			churn:     *churn,
			nodechurn: *nodechurn,
			rebalance: *rebalance,
			rate:      *rate,
			arrival:   *arrival,
			jsonPath:  *jsonOut,
			snap:      *snap,
			siteDelay: *sdelay,
			anytime:   *anytime,
			index:     *index,
			indexBgt:  *indexBgt,
			indexPol:  *indexPol,
			url:       *url,
			nodes:     *nodes,
			edges:     *edges,
			k:         *k,
			seed:      *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	var ids []string
	switch {
	case *all:
		ids = exp.IDs()
	case *expID != "":
		ids = strings.Split(*expID, ",")
	default:
		fmt.Fprintln(os.Stderr, "bench: need -exp <id> or -all (use -list to see IDs)")
		os.Exit(2)
	}

	cfg := exp.Config{Queries: *queries, Scale: *scale}
	if *verbose {
		cfg.Log = os.Stderr
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	for _, id := range ids {
		start := time.Now()
		tab, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		if *md {
			renderMarkdown(w, tab, time.Since(start))
		} else {
			renderPlain(w, tab, time.Since(start))
		}
	}
}

func renderPlain(w *os.File, t exp.Table, took time.Duration) {
	fmt.Fprintf(w, "\n== %s — %s (ran in %v)\n", t.ID, t.Title, took.Round(time.Millisecond))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
}

func renderMarkdown(w *os.File, t exp.Table, took time.Duration) {
	fmt.Fprintf(w, "\n### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "\n*%s*\n", t.Notes)
	}
	fmt.Fprintf(w, "\n(ran in %v)\n", took.Round(time.Millisecond))
}
