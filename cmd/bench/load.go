package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	neturl "net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/reachindex"
)

// loadConfig drives the load generator: N concurrent clients against
// either an in-process TCP deployment (the default) or a running
// cmd/serve gateway (-url), in one of two loop disciplines:
//
//   - closed loop (rate == 0): each client issues its next query as soon
//     as the previous one answers. Measures peak sustainable throughput;
//     latency self-limits to the service time.
//   - open loop (-rate R): arrivals follow a fixed schedule (Poisson or
//     uniform gaps) independent of completions, the way real traffic
//     does. Latency is measured from the SCHEDULED arrival, so queue
//     delay under overload shows up instead of being coordinated away,
//     and the dequeue delay is reported separately as lateness.
type loadConfig struct {
	clients   int
	duration  time.Duration
	class     string        // qr | qbr | qrr | mixed
	url       string        // non-empty: drive an HTTP gateway instead
	batch     int           // queries per wire batch; 1 = single-query API
	churn     float64       // updates per second mixed into the stream; 0 = none
	nodechurn bool          // mix node inserts/deletes into the churn stream
	rebalance time.Duration // force a live re-fragmentation at this interval; 0 = never
	siteDelay string        // comma-separated per-site service delays, cycled over sites
	delays    []time.Duration
	anytime   bool    // anytime answers: streamed partials + early termination (wire mode)
	rate      float64 // offered arrivals per second; 0 = closed loop
	arrival   string  // open loop schedule: poisson | uniform
	jsonPath  string  // non-empty: write a schema-versioned report here
	snap      string  // non-empty: load the in-process graph from this SNAP file
	index     bool    // enable the per-fragment reachability index (in-process mode)
	indexBgt  int64   // with index: per-fragment label budget in bytes
	indexPol  string  // with index: budget policy, postorder | hits
	nodes     int
	edges     int
	k         int
	seed      uint64
}

// clientStats is one client's tally.
type clientStats struct {
	lats []time.Duration
	late []time.Duration // open loop: dequeue time - scheduled arrival
	errs int
}

// faRecorder accumulates per-round first-answer latencies
// (WireStats.FirstAnswer) across all clients of a wire-mode run.
type faRecorder struct {
	mu   sync.Mutex
	lats []time.Duration
}

func (r *faRecorder) add(d time.Duration) {
	if d <= 0 {
		return
	}
	r.mu.Lock()
	r.lats = append(r.lats, d)
	r.mu.Unlock()
}

// parseSiteDelays parses the -sitedelay value: one duration, or a
// comma-separated list assigned per site (cycling when the deployment has
// more sites than entries) to emulate delay skew — the straggler shape
// exp N10 measures the anytime protocol against.
func parseSiteDelays(s string) ([]time.Duration, error) {
	if strings.TrimSpace(s) == "" {
		return []time.Duration{0}, nil
	}
	parts := strings.Split(s, ",")
	ds := make([]time.Duration, len(parts))
	for i, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -sitedelay entry %q: %w", p, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("negative -sitedelay entry %q", p)
		}
		ds[i] = d
	}
	return ds, nil
}

func runLoad(cfg loadConfig) error {
	switch cfg.class {
	case "qr", "qbr", "qrr", "mixed":
	default:
		return fmt.Errorf("unknown query class %q (want qr, qbr, qrr or mixed)", cfg.class)
	}
	switch cfg.arrival {
	case "poisson", "uniform":
	default:
		return fmt.Errorf("unknown arrival schedule %q (want poisson or uniform)", cfg.arrival)
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	delays, err := parseSiteDelays(cfg.siteDelay)
	if err != nil {
		return err
	}
	cfg.delays = delays
	var issue, update func(rng *gen.RNG, q int) error
	var rebalance func(epoch uint64) error
	var idxRep func() *indexReport
	var anyRep func(rounds int) *anytimeReport
	var maxLag atomic.Uint64   // worst replica lag observed (wire mode; batches)
	var wireBytes atomic.Int64 // sent+received across all wire rounds
	var fa faRecorder          // wire mode: per-round first-answer latencies
	wireMode := cfg.url == ""
	target := cfg.url
	if cfg.url != "" {
		issue, update, rebalance = httpIssuer(cfg)
	} else {
		var cleanup func()
		var err error
		issue, update, rebalance, cleanup, idxRep, anyRep, err = wireIssuer(&cfg, &maxLag, &wireBytes, &fa)
		if err != nil {
			return err
		}
		defer cleanup()
		src := "synthetic"
		if cfg.snap != "" {
			src = cfg.snap
		}
		target = fmt.Sprintf("in-process deployment (%d sites, |V|=%d, |E|=%d, %s)", cfg.k, cfg.nodes, cfg.edges, src)
	}

	mode := "closed"
	if cfg.rate > 0 {
		mode = fmt.Sprintf("open %.0f/s %s", cfg.rate, cfg.arrival)
	}
	fmt.Fprintf(os.Stderr, "load: %d clients, %v, %s loop, class %s, batch %d, churn %.1f/s (node ops %v), rebalance %v, target %s\n",
		cfg.clients, cfg.duration, mode, cfg.class, cfg.batch, cfg.churn, cfg.nodechurn, cfg.rebalance, target)
	stats := make([]clientStats, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	if cfg.rate > 0 {
		driveOpen(cfg, &wg, stats, issue, start, deadline)
	} else {
		driveClosed(cfg, &wg, stats, issue, deadline)
	}
	// The churn loop: a dedicated updater mixing edge inserts/deletes into
	// the query stream at the requested rate, paced by a fixed interval.
	var updates, uerrs int
	if cfg.churn > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := gen.NewRNG(cfg.seed*31337 + 7)
			interval := time.Duration(float64(time.Second) / cfg.churn)
			for i := 0; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				if err := update(rng, i); err != nil {
					uerrs++
				} else {
					updates++
				}
				if d := interval - time.Since(t0); d > 0 {
					time.Sleep(d)
				}
			}
		}()
	}
	// Forced rebalances: a dedicated loop re-fragments the deployment at
	// the requested interval while queries and churn keep flowing — the
	// smoke form of the zero-downtime epoch switch.
	var rebalances, rerrs int
	if cfg.rebalance > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for epoch := uint64(1); time.Now().Before(deadline); epoch++ {
				time.Sleep(cfg.rebalance)
				if !time.Now().Before(deadline) {
					return
				}
				if err := rebalance(epoch); err != nil {
					rerrs++
				} else {
					rebalances++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, late []time.Duration
	errs := 0
	for _, s := range stats {
		all = append(all, s.lats...)
		late = append(late, s.late...)
		errs += s.errs
	}
	if len(all) == 0 {
		return fmt.Errorf("load: no queries completed (%d errors)", errs)
	}
	lat := summarize(all)
	// With -batch N every issue ships N queries in one wire round, so
	// throughput counts queries while the latency columns describe whole
	// batches (what one caller waits for).
	queries := len(all) * cfg.batch
	fmt.Printf("queries     %d in %d rounds (%d errors)\n", queries, len(all), errs)
	if cfg.churn > 0 {
		fmt.Printf("updates     %d applied (%d errors)\n", updates, uerrs)
		if wireMode {
			fmt.Printf("replica lag max %d batches behind the sequencer\n", maxLag.Load())
		}
	}
	if cfg.rebalance > 0 {
		fmt.Printf("rebalances  %d applied (%d errors)\n", rebalances, rerrs)
	}
	fmt.Printf("elapsed     %v\n", elapsed.Round(time.Millisecond))
	if cfg.rate > 0 {
		fmt.Printf("offered     %.0f q/s (%s arrivals)\n", cfg.rate, cfg.arrival)
	}
	fmt.Printf("throughput  %.0f q/s\n", float64(queries)/elapsed.Seconds())
	unit := "query"
	if cfg.batch > 1 {
		unit = fmt.Sprintf("batch of %d", cfg.batch)
	}
	fmt.Printf("latency     per %s: mean %s  p50 %s  p90 %s  p99 %s  max %s\n", unit,
		fmtDurationUS(lat.MeanUS), fmtDurationUS(lat.P50US), fmtDurationUS(lat.P90US),
		fmtDurationUS(lat.P99US), fmtDurationUS(lat.MaxUS))
	var firstAnswer *latencySummary
	if len(fa.lats) > 0 {
		f := summarize(fa.lats)
		firstAnswer = &f
		fmt.Printf("first ans   p50 %s  p90 %s  p99 %s  max %s\n",
			fmtDurationUS(f.P50US), fmtDurationUS(f.P90US), fmtDurationUS(f.P99US), fmtDurationUS(f.MaxUS))
	}
	var lateness *latencySummary
	if cfg.rate > 0 {
		l := summarize(late)
		lateness = &l
		fmt.Printf("lateness    dequeue - schedule: p50 %s  p99 %s  max %s\n",
			fmtDurationUS(l.P50US), fmtDurationUS(l.P99US), fmtDurationUS(l.MaxUS))
	}
	if wireMode {
		fmt.Printf("wire        %.0f bytes/query\n", float64(wireBytes.Load())/float64(queries))
	}
	var anyr *anytimeReport
	if anyRep != nil {
		anyr = anyRep(len(all))
		fmt.Printf("anytime     enabled %v: %d early terminations (%.0f%% of rounds), %d cancels, %d partial frames\n",
			anyr.Enabled, anyr.EarlyTerminations, 100*anyr.EarlyTermRate, anyr.CancelsSent, anyr.PartialFrames)
	}
	var idxr *indexReport
	if idxRep != nil {
		idxr = idxRep()
		fmt.Printf("reachindex  hit rate %.2f (%d hits, %d fallbacks), %d label bytes, %d rebuilds (%s policy, last %dus)\n",
			idxr.HitRate, idxr.Hits, idxr.Fallbacks, idxr.LabelBytes, idxr.Rebuilds, idxr.Policy, idxr.LastRebuildUS)
		fmt.Printf("local eval  direct %.0fus -> indexed %.0fus per query (%.1fx)\n",
			idxr.DirectUSPerQuery, idxr.IndexedUSPerQuery, idxr.LocalEvalSpeedup)
		fmt.Printf("index build serial %.0fus -> parallel %.0fus (%.1fx across %d cores)\n",
			idxr.BuildSerialUS, idxr.BuildParallelUS, idxr.BuildSpeedup, runtime.GOMAXPROCS(0))
	}

	if cfg.jsonPath != "" {
		rep := benchReport{
			Schema: benchSchema,
			Meta:   collectRunMeta(),
			Mode:   map[bool]string{true: "open", false: "closed"}[cfg.rate > 0],
			Config: benchReportConfig{
				Clients:     cfg.clients,
				DurationSec: cfg.duration.Seconds(),
				Class:       cfg.class,
				Batch:       cfg.batch,
				ChurnPerSec: cfg.churn,
				NodeChurn:   cfg.nodechurn,
				RebalanceMS: cfg.rebalance.Milliseconds(),
				RatePerSec:  cfg.rate,
				Arrival:     cfg.arrival,
				Anytime:     cfg.anytime,
				SiteDelay:   cfg.siteDelay,
				Snap:        cfg.snap,
				URL:         cfg.url,
				Nodes:       cfg.nodes,
				Edges:       cfg.edges,
				K:           cfg.k,
				Seed:        cfg.seed,
			},
			Queries:      queries,
			Rounds:       len(all),
			Errors:       errs,
			ElapsedSec:   elapsed.Seconds(),
			QPS:          float64(queries) / elapsed.Seconds(),
			Latency:      lat,
			FirstAnswer:  firstAnswer,
			Lateness:     lateness,
			Updates:      updates,
			UpdateErrors: uerrs,
			Rebalances:   rebalances,
			MaxLag:       maxLag.Load(),
			RSSBytes:     rssBytes(),
			ReachIndex:   idxr,
			Anytime:      anyr,
		}
		if cfg.rate > 0 {
			rep.OfferedQPS = cfg.rate
		}
		if wireMode {
			rep.BytesPerQuery = float64(wireBytes.Load()) / float64(queries)
		}
		if err := writeReport(cfg.jsonPath, rep); err != nil {
			return fmt.Errorf("load: writing %s: %w", cfg.jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "load: wrote %s\n", cfg.jsonPath)
	}
	if errs > 0 {
		return fmt.Errorf("load: %d queries failed", errs)
	}
	if uerrs > 0 {
		return fmt.Errorf("load: %d updates failed", uerrs)
	}
	if rerrs > 0 {
		return fmt.Errorf("load: %d rebalances failed", rerrs)
	}
	return nil
}

// driveClosed starts the closed-loop clients: each issues back-to-back.
func driveClosed(cfg loadConfig, wg *sync.WaitGroup, stats []clientStats, issue func(*gen.RNG, int) error, deadline time.Time) {
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := gen.NewRNG(cfg.seed + uint64(w)*7919)
			for q := 0; time.Now().Before(deadline); q++ {
				t0 := time.Now()
				if err := issue(rng, q); err != nil {
					stats[w].errs++ // failed queries don't count as served work
					continue
				}
				stats[w].lats = append(stats[w].lats, time.Since(t0))
			}
		}(w)
	}
}

// driveOpen starts the open-loop machinery: one generator emitting
// scheduled arrival times (Poisson or uniform gaps at cfg.rate), and
// cfg.clients workers draining them. Latency is charged from the
// scheduled arrival; the dequeue delay is tracked as lateness.
func driveOpen(cfg loadConfig, wg *sync.WaitGroup, stats []clientStats, issue func(*gen.RNG, int) error, start, deadline time.Time) {
	arrivals := make(chan time.Time, 1<<14)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(arrivals)
		rng := gen.NewRNG(cfg.seed ^ 0xA5A5A5A5)
		next := start
		for {
			gap := time.Duration(float64(time.Second) / cfg.rate)
			if cfg.arrival == "poisson" {
				// Exponential inter-arrival: -ln(1-U)/rate.
				gap = time.Duration(-math.Log(1-rng.Float64()) * float64(time.Second) / cfg.rate)
			}
			next = next.Add(gap)
			if next.After(deadline) {
				return
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			arrivals <- next
		}
	}()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := gen.NewRNG(cfg.seed + uint64(w)*7919)
			for q := 0; ; q++ {
				sched, ok := <-arrivals
				if !ok {
					return
				}
				stats[w].late = append(stats[w].late, time.Since(sched))
				if err := issue(rng, q); err != nil {
					stats[w].errs++
					continue
				}
				stats[w].lats = append(stats[w].lats, time.Since(sched))
			}
		}(w)
	}
}

var loadLabels = []string{"A", "B", "C"}

// pickQuery draws one query of the configured class mix.
func pickQuery(class string, rng *gen.RNG, q, n int) (cls string, s, t graph.NodeID, l int) {
	if class == "mixed" {
		cls = []string{"qr", "qbr", "qrr"}[q%3]
	} else {
		cls = class
	}
	s = graph.NodeID(rng.Intn(n))
	t = graph.NodeID(rng.Intn(n))
	l = 1 + rng.Intn(8)
	return cls, s, t, l
}

// wireIssuer deploys loopback sites in-process and drives them over the
// multiplexed TCP protocol through a single shared coordinator. The graph
// is synthetic by default, or loaded from cfg.snap (a SNAP edge list,
// plain or gzipped; cfg.nodes/cfg.edges are overwritten with the real
// counts). Sites get their service delays from cfg.delays, cycled — a
// multi-entry -sitedelay emulates per-site skew. Wire traffic accumulates
// into wireBytes; fa records each query round's first-answer latency;
// maxLag samples the worst replica lag observed — how many sequenced
// batches the slowest site trails the sequencer by.
func wireIssuer(cfg *loadConfig, maxLag *atomic.Uint64, wireBytes *atomic.Int64, fa *faRecorder) (func(*gen.RNG, int) error, func(*gen.RNG, int) error, func(uint64) error, func(), func() *indexReport, func(int) *anytimeReport, error) {
	var g *graph.Graph
	if cfg.snap != "" {
		var err error
		g, err = graph.OpenSNAP(cfg.snap, loadLabels)
		if err != nil {
			return nil, nil, nil, nil, nil, nil, err
		}
		cfg.nodes, cfg.edges = g.NumNodes(), g.NumEdges()
	} else {
		g = gen.PowerLaw(gen.Config{Nodes: cfg.nodes, Edges: cfg.edges, Labels: loadLabels, Seed: cfg.seed})
	}
	fr, err := fragment.Random(g, cfg.k, cfg.seed)
	if err != nil {
		return nil, nil, nil, nil, nil, nil, err
	}
	if cfg.index {
		if cfg.indexBgt <= 0 {
			cfg.indexBgt = reachindex.DefaultBudget
		}
		pol, err := reachindex.ParsePolicy(cfg.indexPol)
		if err != nil {
			return nil, nil, nil, nil, nil, nil, err
		}
		fr.SetReachIndexPolicy(pol)
		fr.EnableReachIndex(cfg.indexBgt)
	}
	rep := fragment.NewReplica(fr)
	sites := make([]*netsite.Site, 0, fr.Card())
	addrs := make([]string, 0, fr.Card())
	for i, f := range fr.Fragments() {
		s, err := netsite.NewSiteReplica("127.0.0.1:0", rep, f.ID, netsite.SiteOptions{Delay: cfg.delays[i%len(cfg.delays)]})
		if err != nil {
			for _, prev := range sites {
				prev.Close()
			}
			return nil, nil, nil, nil, nil, nil, err
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		for _, s := range sites {
			s.Close()
		}
		return nil, nil, nil, nil, nil, nil, err
	}
	co.SetAnytime(cfg.anytime)
	var idxRep func() *indexReport
	if cfg.index {
		// Invoked once after the load completes: snapshot the counters the
		// serving traffic produced, then calibrate direct vs indexed local
		// evaluation on the final graph for the apples-to-apples speedup.
		idxRep = func() *indexReport {
			cur, _ := rep.Current()
			cur.WaitReachIndexes()
			st := cur.ReachIndexStats()
			r := &indexReport{
				Enabled:        st.Enabled,
				BudgetBytes:    st.BudgetBytes,
				Policy:         st.Policy,
				LabelBytes:     st.LabelBytes,
				Fragments:      st.Fragments,
				Hits:           st.Hits,
				Fallbacks:      st.Fallbacks,
				HitRate:        st.HitRate(),
				Rebuilds:       st.Rebuilds,
				LastRebuildUS:  st.LastBuild.Microseconds(),
				TotalRebuildUS: st.TotalBuild.Microseconds(),
			}
			r.DirectUSPerQuery, r.IndexedUSPerQuery = calibrateLocalEval(cur, 200, cfg.seed)
			if r.IndexedUSPerQuery > 0 {
				r.LocalEvalSpeedup = r.DirectUSPerQuery / r.IndexedUSPerQuery
			}
			r.BuildSerialUS, r.BuildParallelUS = calibrateBuildTimes(cur, cfg.indexBgt)
			if r.BuildParallelUS > 0 {
				r.BuildSpeedup = r.BuildSerialUS / r.BuildParallelUS
			}
			return r
		}
	}
	cleanup := func() {
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
	account := func(st netsite.WireStats) {
		wireBytes.Add(st.BytesSent + st.BytesReceived)
	}
	nodes := cfg.nodes
	issue := func(rng *gen.RNG, q int) error {
		if cfg.batch > 1 {
			qs := make([]netsite.BatchQuery, cfg.batch)
			for i := range qs {
				qs[i] = pickBatchQuery(cfg.class, nodes, rng, q*cfg.batch+i)
			}
			_, st, err := co.Batch(qs)
			account(st)
			if err == nil {
				fa.add(st.FirstAnswer)
			}
			return err
		}
		cls, s, t, l := pickQuery(cfg.class, rng, q, nodes)
		var st netsite.WireStats
		var err error
		switch cls {
		case "qr":
			_, st, err = co.Reach(s, t)
		case "qbr":
			_, _, st, err = co.ReachWithin(s, t, l)
		case "qrr":
			a := automaton.Random(rng, 2+rng.Intn(4), 4+rng.Intn(8), loadLabels)
			_, st, err = co.ReachRegex(s, t, a)
		}
		account(st)
		if err == nil {
			fa.add(st.FirstAnswer)
		}
		return err
	}
	anyRep := func(rounds int) *anytimeReport {
		st := co.AnytimeStats()
		r := &anytimeReport{
			Enabled:           co.Anytime(),
			EarlyTerminations: st.EarlyTerminations,
			CancelsSent:       st.CancelsSent,
			PartialFrames:     st.PartialFrames,
			Stragglers:        st.Stragglers,
		}
		if rounds > 0 {
			r.EarlyTermRate = float64(st.EarlyTerminations) / float64(rounds)
		}
		return r
	}
	update := func(rng *gen.RNG, i int) error {
		_, st, err := co.Apply([]netsite.Op{pickUpdate(cfg.nodechurn, nodes, rng, i)})
		account(st)
		// Sample the worst replica lag: how far the slowest site trails the
		// sequencer's total order right now (CAS max — concurrent samplers
		// must not overwrite a larger observation).
		seq := co.Sequencer().LSN()
		for _, l := range co.ReplicaLSNs() {
			if l >= seq {
				continue
			}
			lag := seq - l
			for {
				cur := maxLag.Load()
				if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
					break
				}
			}
		}
		if err != nil && strings.Contains(err.Error(), "not a live node") {
			// Random churn aimed an edge op at a node a previous op
			// deleted; the deployment rightly rejected the batch. That is
			// organic no-op churn, not a serving failure.
			return nil
		}
		return err
	}
	rebalance := func(epoch uint64) error {
		_, st, err := co.Rebalance(epoch, "edgecut", cfg.seed+epoch)
		account(st)
		return err
	}
	return issue, update, rebalance, cleanup, idxRep, anyRep, nil
}

// calibrateLocalEval times the per-query site CPU — the summed local
// evaluation across every fragment, which is exactly the work the index
// replaces — over `rounds` random queries, once forced direct
// (NoFragmentIndex) and once through the installed index. The
// coordinator's equation solve is excluded: it is byte-identical on both
// paths, and including it would dilute the site-CPU ratio the index is
// judged on (exp N8 reports both views).
func calibrateLocalEval(fr *fragment.Fragmentation, rounds int, seed uint64) (directUS, indexedUS float64) {
	rng := gen.NewRNG(seed ^ 0xC0FFEE)
	n := fr.Graph().NumNodes()
	type pair struct{ s, t graph.NodeID }
	qs := make([]pair, rounds)
	for i := range qs {
		qs[i] = pair{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	run := func(opt *core.Options) float64 {
		t0 := time.Now()
		for _, q := range qs {
			for _, f := range fr.Fragments() {
				core.LocalEvalReach(f, q.s, q.t, opt)
			}
		}
		return float64(time.Since(t0).Microseconds()) / float64(len(qs))
	}
	directUS = run(&core.Options{NoFragmentIndex: true})
	indexedUS = run(nil)
	return directUS, indexedUS
}

// calibrateBuildTimes measures the full index build over every fragment
// of the final graph, single-threaded vs all cores — the async rebuild
// window a mutation or rebalance opens, which the parallel builder
// exists to shrink. A throwaway warm-up pass first populates the lazily
// cached AsGraph/LocalSCC views so both timed passes measure only the
// build itself.
func calibrateBuildTimes(fr *fragment.Fragmentation, budget int64) (serialUS, parallelUS float64) {
	run := func(workers int) float64 {
		fr.RLock()
		defer fr.RUnlock()
		t0 := time.Now()
		for _, f := range fr.Fragments() {
			comp := f.LocalSCC()
			nc := 0
			for _, c := range comp {
				if int(c)+1 > nc {
					nc = int(c) + 1
				}
			}
			reachindex.Build(reachindex.Spec{
				Graph:    f.AsGraph(),
				Comp:     comp,
				NC:       nc,
				Boundary: f.IsBoundary,
				Sources:  f.InNodes(),
				Budget:   budget,
				Workers:  workers,
			})
		}
		return float64(time.Since(t0).Microseconds())
	}
	run(1) // warm the cached views
	serialUS = run(1)
	parallelUS = run(0)
	return serialUS, parallelUS
}

// pickUpdate draws one mutation. Edge inserts and deletes alternate so the
// graph's size stays roughly stable under sustained churn; with -nodechurn
// every fourth op is a node insert or delete instead, exercising the
// live node set (deletes aim at random IDs, so some are no-ops — exactly
// the shape of organic churn).
func pickUpdate(nodechurn bool, nodes int, rng *gen.RNG, i int) netsite.Op {
	if nodechurn && i%4 == 3 {
		if i%8 == 3 {
			return netsite.Op{Kind: netsite.OpInsertNode, Label: loadLabels[rng.Intn(len(loadLabels))], Frag: -1}
		}
		return netsite.Op{Kind: netsite.OpDeleteNode, U: graph.NodeID(rng.Intn(nodes))}
	}
	kind := netsite.OpInsertEdge
	if i%2 == 1 {
		kind = netsite.OpDeleteEdge
	}
	return netsite.Op{Kind: kind, U: graph.NodeID(rng.Intn(nodes)), V: graph.NodeID(rng.Intn(nodes))}
}

// pickBatchQuery draws one wire batch query of the configured class mix.
func pickBatchQuery(class string, nodes int, rng *gen.RNG, q int) netsite.BatchQuery {
	cls, s, t, l := pickQuery(class, rng, q, nodes)
	switch cls {
	case "qbr":
		return netsite.BatchQuery{Class: netsite.ClassDist, S: s, T: t, L: l}
	case "qrr":
		a := automaton.Random(rng, 2+rng.Intn(4), 4+rng.Intn(8), loadLabels)
		return netsite.BatchQuery{Class: netsite.ClassRPQ, S: s, T: t, A: a}
	default:
		return netsite.BatchQuery{Class: netsite.ClassReach, S: s, T: t}
	}
}

// httpIssuer drives a running cmd/serve gateway. Node IDs are drawn from
// [0, nodes); point -nodes at the deployed graph's size. With -batch N the
// issuer posts N queries per POST /batch call instead of one GET each.
// The second function posts one POST /update per call (the -churn loop);
// the third posts POST /rebalance (the forced-rebalance loop).
func httpIssuer(cfg loadConfig) (func(*gen.RNG, int) error, func(*gen.RNG, int) error, func(uint64) error) {
	client := &http.Client{Timeout: 10 * time.Second}
	exprs := []string{"A(A|B)*", "(A|B|C)+", "AB*C?"}
	update := func(rng *gen.RNG, i int) error {
		op := pickUpdate(cfg.nodechurn, cfg.nodes, rng, i)
		m := map[string]any{}
		switch op.Kind {
		case netsite.OpInsertEdge:
			m = map[string]any{"op": "insert", "u": uint32(op.U), "v": uint32(op.V)}
		case netsite.OpDeleteEdge:
			m = map[string]any{"op": "delete", "u": uint32(op.U), "v": uint32(op.V)}
		case netsite.OpInsertNode:
			m = map[string]any{"op": "insertnode", "label": op.Label}
		case netsite.OpDeleteNode:
			m = map[string]any{"op": "deletenode", "u": uint32(op.U)}
		}
		body, err := json.Marshal(m)
		if err != nil {
			return err
		}
		resp, err := client.Post(cfg.url+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			if strings.Contains(string(msg), "not a live node") {
				return nil // churn aimed at a tombstone; expected no-op
			}
			return fmt.Errorf("POST /update: status %s", resp.Status)
		}
		return nil
	}
	rebalance := func(uint64) error {
		resp, err := client.Post(cfg.url+"/rebalance", "application/json", strings.NewReader("{}"))
		if err != nil {
			return err
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusConflict:
			return nil // a round is already in flight: the intent is served
		default:
			return fmt.Errorf("POST /rebalance: status %s", resp.Status)
		}
	}
	if cfg.batch > 1 {
		type batchQuery struct {
			Class string `json:"class"`
			S     uint32 `json:"s"`
			T     uint32 `json:"t"`
			L     *int   `json:"l,omitempty"`
			R     string `json:"r,omitempty"`
		}
		issue := func(rng *gen.RNG, q int) error {
			qs := make([]batchQuery, cfg.batch)
			for i := range qs {
				n := q*cfg.batch + i
				cls, s, t, l := pickQuery(cfg.class, rng, n, cfg.nodes)
				bq := batchQuery{S: uint32(s), T: uint32(t)}
				switch cls {
				case "qr":
					bq.Class = "reach"
				case "qbr":
					bq.Class = "reachwithin"
					bound := l
					bq.L = &bound
				case "qrr":
					bq.Class = "reachregex"
					bq.R = exprs[n%len(exprs)]
				}
				qs[i] = bq
			}
			body, err := json.Marshal(map[string]any{"queries": qs})
			if err != nil {
				return err
			}
			resp, err := client.Post(cfg.url+"/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("POST /batch: status %s", resp.Status)
			}
			return nil
		}
		return issue, update, rebalance
	}
	issue := func(rng *gen.RNG, q int) error {
		cls, s, t, l := pickQuery(cfg.class, rng, q, cfg.nodes)
		var url string
		switch cls {
		case "qr":
			url = fmt.Sprintf("%s/reach?s=%d&t=%d", cfg.url, s, t)
		case "qbr":
			url = fmt.Sprintf("%s/reachwithin?s=%d&t=%d&l=%d", cfg.url, s, t, l)
		case "qrr":
			url = fmt.Sprintf("%s/reachregex?s=%d&t=%d&r=%s",
				cfg.url, s, t, neturl.QueryEscape(exprs[q%len(exprs)]))
		}
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %s", url, resp.Status)
		}
		return nil
	}
	return issue, update, rebalance
}
