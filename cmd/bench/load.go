package main

import (
	"fmt"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"sync"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

// loadConfig is the closed-loop load generator: N concurrent clients, each
// issuing the next query as soon as the previous one answers, against
// either an in-process TCP deployment (the default) or a running cmd/serve
// gateway (-url).
type loadConfig struct {
	clients  int
	duration time.Duration
	class    string // qr | qbr | qrr | mixed
	url      string // non-empty: drive an HTTP gateway instead
	nodes    int
	edges    int
	k        int
	seed     uint64
}

// clientStats is one client's closed-loop tally.
type clientStats struct {
	lats []time.Duration
	errs int
}

func runLoad(cfg loadConfig) error {
	switch cfg.class {
	case "qr", "qbr", "qrr", "mixed":
	default:
		return fmt.Errorf("unknown query class %q (want qr, qbr, qrr or mixed)", cfg.class)
	}
	var issue func(rng *gen.RNG, q int) error
	target := cfg.url
	if cfg.url != "" {
		issue = httpIssuer(cfg)
	} else {
		var cleanup func()
		var err error
		issue, cleanup, err = wireIssuer(cfg)
		if err != nil {
			return err
		}
		defer cleanup()
		target = fmt.Sprintf("in-process deployment (%d sites, |V|=%d, |E|=%d)", cfg.k, cfg.nodes, cfg.edges)
	}

	fmt.Fprintf(os.Stderr, "load: %d clients, %v, class %s, target %s\n",
		cfg.clients, cfg.duration, cfg.class, target)
	stats := make([]clientStats, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := gen.NewRNG(cfg.seed + uint64(w)*7919)
			for q := 0; time.Now().Before(deadline); q++ {
				t0 := time.Now()
				if err := issue(rng, q); err != nil {
					stats[w].errs++ // failed queries don't count as served work
					continue
				}
				stats[w].lats = append(stats[w].lats, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, s := range stats {
		all = append(all, s.lats...)
		errs += s.errs
	}
	if len(all) == 0 {
		return fmt.Errorf("load: no queries completed (%d errors)", errs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i].Round(time.Microsecond)
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	fmt.Printf("queries     %d (%d errors)\n", len(all), errs)
	fmt.Printf("elapsed     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.0f q/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency     mean %v  p50 %v  p90 %v  p99 %v  max %v\n",
		(sum / time.Duration(len(all))).Round(time.Microsecond),
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	if errs > 0 {
		return fmt.Errorf("load: %d queries failed", errs)
	}
	return nil
}

var loadLabels = []string{"A", "B", "C"}

// pickQuery draws one query of the configured class mix.
func pickQuery(class string, rng *gen.RNG, q, n int) (cls string, s, t graph.NodeID, l int) {
	if class == "mixed" {
		cls = []string{"qr", "qbr", "qrr"}[q%3]
	} else {
		cls = class
	}
	s = graph.NodeID(rng.Intn(n))
	t = graph.NodeID(rng.Intn(n))
	l = 1 + rng.Intn(8)
	return cls, s, t, l
}

// wireIssuer deploys loopback sites in-process and drives them over the
// multiplexed TCP protocol through a single shared coordinator.
func wireIssuer(cfg loadConfig) (func(*gen.RNG, int) error, func(), error) {
	g := gen.PowerLaw(gen.Config{Nodes: cfg.nodes, Edges: cfg.edges, Labels: loadLabels, Seed: cfg.seed})
	fr, err := fragment.Random(g, cfg.k, cfg.seed)
	if err != nil {
		return nil, nil, err
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		return nil, nil, err
	}
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		for _, s := range sites {
			s.Close()
		}
		return nil, nil, err
	}
	cleanup := func() {
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
	issue := func(rng *gen.RNG, q int) error {
		cls, s, t, l := pickQuery(cfg.class, rng, q, cfg.nodes)
		var err error
		switch cls {
		case "qr":
			_, _, err = co.Reach(s, t)
		case "qbr":
			_, _, _, err = co.ReachWithin(s, t, l)
		case "qrr":
			a := automaton.Random(rng, 2+rng.Intn(4), 4+rng.Intn(8), loadLabels)
			_, _, err = co.ReachRegex(s, t, a)
		}
		return err
	}
	return issue, cleanup, nil
}

// httpIssuer drives a running cmd/serve gateway. Node IDs are drawn from
// [0, nodes); point -nodes at the deployed graph's size.
func httpIssuer(cfg loadConfig) func(*gen.RNG, int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	exprs := []string{"A(A|B)*", "(A|B|C)+", "AB*C?"}
	return func(rng *gen.RNG, q int) error {
		cls, s, t, l := pickQuery(cfg.class, rng, q, cfg.nodes)
		var url string
		switch cls {
		case "qr":
			url = fmt.Sprintf("%s/reach?s=%d&t=%d", cfg.url, s, t)
		case "qbr":
			url = fmt.Sprintf("%s/reachwithin?s=%d&t=%d&l=%d", cfg.url, s, t, l)
		case "qrr":
			url = fmt.Sprintf("%s/reachregex?s=%d&t=%d&r=%s",
				cfg.url, s, t, neturl.QueryEscape(exprs[q%len(exprs)]))
		}
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %s", url, resp.Status)
		}
		return nil
	}
}
