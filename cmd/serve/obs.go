package main

// Gateway observability: the metrics registry behind GET /metrics, the
// trace store behind GET /trace/<id>, and the guarantee auditor behind
// GET /guarantees. One registry is the single source of truth — the
// request counters /stats reports are the same obs.Counter instances the
// Prometheus exposition renders, and everything sampled (cache, oplog,
// anytime, balance, index) is bridged in as gauge functions rather than
// counted twice.

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/netsite"
	"distreach/internal/obs"
)

// traceRingCap bounds how many finished traces /trace and /traces can
// look up. Old traces fall out; the slow-query log keeps the outliers.
const traceRingCap = 512

// gwObs bundles the gateway's observability state.
type gwObs struct {
	reg     *obs.Registry
	traces  *obs.TraceStore
	auditor *obs.Auditor

	queryDur   *obs.HistogramVec // seconds per query, by class
	queryBytes *obs.HistogramVec // wire bytes per query, by class
}

// newGwObs builds the registry, counters and auditor for one gateway and
// attaches them to its coordinator. Tracing itself (the sink that makes
// queries travel in 'T' envelopes) is armed separately by armTracing —
// metrics and auditing work with tracing off, they just lose the
// site-measured eval times.
func newGwObs(co *netsite.Coordinator) *gwObs {
	reg := obs.NewRegistry()
	ob := &gwObs{
		reg:     reg,
		traces:  obs.NewTraceStore(traceRingCap),
		auditor: obs.NewAuditor(),
		queryDur: reg.HistogramVec("gateway_query_seconds",
			"End-to-end query latency by class (cache hits included).", "class", nil),
		queryBytes: reg.HistogramVec("gateway_query_wire_bytes",
			"Wire bytes (sent+received) per uncached query by class.", "class", obs.ByteBuckets),
	}
	ob.auditor.Register(reg)
	co.SetAuditor(ob.auditor)
	reg.GaugeFunc("gateway_wire_sent_bytes_total",
		"Bytes written to site connections since dial, frames and cancels included.",
		func() float64 { s, _ := co.WireTotals(); return float64(s) })
	reg.GaugeFunc("gateway_wire_received_bytes_total",
		"Bytes read from site connections since dial, late drained frames included.",
		func() float64 { _, r := co.WireTotals(); return float64(r) })
	reg.GaugeFunc("gateway_anytime_early_terminations_total",
		"Anytime rounds answered before every site finished.",
		func() float64 { return float64(co.AnytimeStats().EarlyTerminations) })
	reg.GaugeFunc("gateway_anytime_partial_frames_total",
		"Partial ('P') frames received across anytime rounds.",
		func() float64 { return float64(co.AnytimeStats().PartialFrames) })
	reg.GaugeFunc("gateway_anytime_cancels_total",
		"Cancel ('C') frames sent to straggler sites.",
		func() float64 { return float64(co.AnytimeStats().CancelsSent) })
	for i := 0; i < co.NumSites(); i++ {
		i := i
		reg.GaugeFuncVec("gateway_site_straggler_rounds",
			"Rounds decided before this site's final answer arrived — the per-site lag histogram.",
			"site", strconv.Itoa(i),
			func() float64 { return float64(co.AnytimeStats().Stragglers[i]) })
	}
	return ob
}

// bindGateway registers the gauge bridges that need the gateway itself
// (cache, backpressure, durability, coalescer, index); called once from
// newGateway after the struct exists.
func (ob *gwObs) bindGateway(g *gateway) {
	reg := ob.reg
	reg.GaugeFunc("gateway_epoch", "Highest deployment epoch observed.",
		func() float64 { return float64(g.epoch.Load()) })
	reg.GaugeFunc("gateway_inflight", "Query/update requests currently holding a backpressure slot.",
		func() float64 { return float64(len(g.sem)) })
	reg.GaugeFunc("gateway_cache_hits_total", "Answer-cache hits.",
		func() float64 { h, _ := g.cache.Stats(); return float64(h) })
	reg.GaugeFunc("gateway_cache_misses_total", "Answer-cache misses.",
		func() float64 { _, m := g.cache.Stats(); return float64(m) })
	reg.GaugeFunc("gateway_cache_entries", "Answer-cache resident entries.",
		func() float64 { return float64(g.cache.Len()) })
	reg.GaugeFunc("gateway_cache_evictions_total", "Answer-cache evictions (capacity and invalidation).",
		func() float64 { return float64(g.cache.Evictions()) })
	reg.GaugeFunc("gateway_oplog_lsn", "Update-log position of the gateway's sequencer.",
		func() float64 { return float64(g.co.Sequencer().LSN()) })
	reg.GaugeFunc("gateway_oplog_max_lag", "Largest LSN distance any replica trails the sequencer by.",
		func() float64 {
			lsn := g.co.Sequencer().LSN()
			var max uint64
			for _, l := range g.co.ReplicaLSNs() {
				if l < lsn && lsn-l > max {
					max = lsn - l
				}
			}
			return float64(max)
		})
	if g.coal != nil {
		reg.GaugeFunc("gateway_coalesce_fold_factor",
			"Queries per coalesced wire round: how many GET /reach misses shared one batch on average.",
			func() float64 {
				r := g.coal.rounds.Load()
				if r == 0 {
					return 0
				}
				return float64(g.coal.queries.Load()) / float64(r)
			})
	}
	if g.opts.idxStats != nil {
		reg.GaugeFunc("gateway_reachindex_hit_rate", "Fragment reachability-index hit rate.",
			func() float64 { return g.opts.idxStats().HitRate() })
		reg.GaugeFunc("gateway_reachindex_rebuilds_total", "Fragment reachability-index rebuilds.",
			func() float64 { return float64(g.opts.idxStats().Rebuilds) })
		reg.GaugeFunc("gateway_reachindex_last_rebuild_seconds", "Duration of the latest index rebuild.",
			func() float64 { return g.opts.idxStats().LastBuild.Seconds() })
		reg.GaugeFunc("gateway_reachindex_total_rebuild_seconds", "Cumulative index rebuild time.",
			func() float64 { return g.opts.idxStats().TotalBuild.Seconds() })
	}
}

// armTracing turns distributed tracing on: queries travel in 'T'
// envelopes, finished trace trees land in the ring buffer, and trees
// slower than slow (0 disables) are dumped to stderr in full.
func (ob *gwObs) armTracing(co *netsite.Coordinator, slow time.Duration) {
	if slow > 0 {
		ob.traces.SetSlow(slow, func(tr *obs.Trace) {
			fmt.Fprintf(os.Stderr, "serve: slow query\n%s", tr.Format())
		})
	}
	co.SetTraceSink(ob.traces.Put)
}

// setDeployment refreshes the auditor's size parameters from the latest
// balance stats: |Vf| scales the paper's response bound, and total graph
// size is the x-axis of the eval-time independence check.
func (ob *gwObs) setDeployment(bs fragment.BalanceStats) {
	if bs.Fragments == 0 {
		return
	}
	ob.auditor.SetDeployment(int64(bs.Vf), int64(bs.MeanSize()*float64(bs.Fragments)+0.5))
}

// observeQuery feeds one finished HTTP query into the latency and
// bytes-per-query histograms.
func (ob *gwObs) observeQuery(class string, start time.Time, cached bool, st netsite.WireStats) {
	ob.queryDur.With(class).Observe(time.Since(start).Seconds())
	if !cached {
		ob.queryBytes.With(class).Observe(float64(st.BytesSent + st.BytesReceived))
	}
}

// handleTrace serves GET /trace/{id}: the assembled trace tree of one
// recent query, JSON by default, indented text with ?format=text. IDs
// are the hex trace_id query responses carry.
func (g *gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := r.PathValue("id")
	id, err := strconv.ParseUint(idStr, 16, 64)
	if err != nil {
		if id, err = strconv.ParseUint(idStr, 10, 64); err != nil {
			badRequest(w, "trace: malformed ID "+strconv.Quote(idStr))
			return
		}
	}
	tr := g.ob.traces.Get(id)
	if tr == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace not found (evicted from the ring, or tracing is off)"})
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tr.Format())
		return
	}
	b, err := tr.Tree()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// traceSummaryJSON is one row of GET /traces.
type traceSummaryJSON struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	Start   string `json:"start"`
	DurUs   int64  `json:"dur_us"`
	Spans   int    `json:"spans"`
}

// handleTraces serves GET /traces: the most recent traced queries,
// newest first (?n= bounds the count, default 32).
func (g *gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			badRequest(w, "traces: n must be a positive integer")
			return
		}
		n = p
	}
	recent := g.ob.traces.Recent(n)
	out := make([]traceSummaryJSON, 0, len(recent))
	for _, tr := range recent {
		out = append(out, traceSummaryJSON{
			TraceID: strconv.FormatUint(tr.ID, 16),
			Name:    tr.Name,
			Start:   tr.Start.Format(time.RFC3339Nano),
			DurUs:   tr.Dur.Microseconds(),
			Spans:   len(tr.Spans),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleGuarantees serves GET /guarantees: the auditor's running verdict
// on the paper's performance guarantees — frames per site per round,
// response volume against the c·(|Vf|+1)² bound, and whether evaluation
// time correlates with graph size.
func (g *gateway) handleGuarantees(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.ob.auditor.Summary())
}
