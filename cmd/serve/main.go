// Command serve is the query gateway: an HTTP/JSON front end over a
// distributed deployment. It dials the worker sites once, multiplexes all
// HTTP traffic over those connections (many queries in flight at a time),
// and fronts the coordinator with an LRU answer cache so repeat queries
// never touch the wire.
//
// Two deployment modes:
//
//	serve -sites 10.0.0.1:7000,10.0.0.2:7000          # real sites (cmd/site)
//	serve -graph g.txt -k 4                           # self-contained: in-process loopback sites
//
// API:
//
//	GET  /reach?s=0&t=99           qr(s,t)
//	GET  /reachwithin?s=0&t=99&l=6 qbr(s,t,l)
//	GET  /reachregex?s=0&t=99&r=A(B|C)*  qrr(s,t,R) (URL-encode r)
//	POST /batch                    many queries, one wire frame per site
//	POST /update                   live mutations: {"op":"insert","u":0,"v":99}
//	                               or a transactional batch {"ops":[...]} of
//	                               insert|delete|insertnode|deletenode
//	POST /rebalance                live re-fragmentation (zero-downtime epoch switch)
//	GET  /stats                    queries served, cache hits/misses, balance, epoch
//	GET  /metrics                  Prometheus text exposition (same instruments as /stats)
//	GET  /trace/{id}               assembled trace tree of one recent query (?format=text)
//	GET  /traces                   recent traced queries, newest first (?n=)
//	GET  /guarantees               the live auditor's verdict on the paper's bounds
//	POST /flush                    invalidate the answer cache wholesale
//	GET  /healthz                  liveness
//
// The cache has no per-entry expiry. On a static fragmentation answers
// never go stale; under live updates (POST /update) the gateway evicts
// exactly the cached answers whose evaluation touched a dirtied fragment,
// so the rest keep serving hits. POST /flush (or redeploying) still
// invalidates wholesale when the graph is swapped entirely, and a
// rebalance flushes by generation (fragment IDs change meaning across
// epochs).
//
// -timeout applies a per-request deadline to the wire round trips: a
// stalled site turns into a prompt 504 instead of a hung client.
// -maxinflight bounds concurrent requests; excess traffic gets 429 +
// Retry-After instead of queueing. -skew S makes the gateway
// self-rebalancing: every update reply carries the deployment's balance
// stats, and when max/mean fragment size crosses S a background
// re-fragmentation (strategy: -rebalancepartition) restores it.
//
// -anytime (default on) enables anytime answers: sites stream partial
// boolean equations ahead of their final reply, the coordinator answers a
// reach query the instant the accumulated equations prove it, and the
// straggler sites are told to stop. -coalesce W is adaptive batching:
// concurrent GET /reach cache misses arriving within W share one wire
// batch (one frame per site for the whole group) instead of one round
// each; 0 disables.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"distreach"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/oplog"
	"distreach/internal/reachindex"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		sites     = flag.String("sites", "", "comma-separated site addresses (dial a running deployment)")
		graphPath = flag.String("graph", "", "graph file for self-contained mode (format of cmd/gengraph)")
		k         = flag.Int("k", 4, "fragment count (self-contained mode)")
		partition = flag.String("partition", "random", "partitioner: random | hash | contiguous | greedy | edgecut")
		seed      = flag.Uint64("seed", 1, "partitioner seed")
		cacheCap  = flag.Int("cache", 4096, "answer cache capacity (entries)")
		dialTO    = flag.Duration("dialtimeout", 3*time.Second, "site dial timeout")
		reqTO     = flag.Duration("timeout", 0, "per-request wire deadline (0 = none); expiry returns 504")
		inflight  = flag.Int("maxinflight", 0, "backpressure: max concurrent query/update requests (0 = default 1024); excess gets 429")
		skew      = flag.Float64("skew", 0, "auto-rebalance when max/mean fragment size crosses this (0 = manual /rebalance only; try 2.0)")
		anytime   = flag.Bool("anytime", true, "anytime answers: sites stream partial equations, the coordinator answers the moment they prove a reach query and cancels the stragglers")
		coalesce  = flag.Duration("coalesce", 200*time.Microsecond, "adaptive batching: concurrent GET /reach cache misses within this window share one wire batch (0 disables)")
		rebPart   = flag.String("rebalancepartition", "edgecut", "partitioner used by /rebalance and auto-rebalance")
		idxBudget = flag.Int64("reachindex-budget", reachindex.DefaultBudget, "self-contained mode: per-fragment reachability index label budget in bytes (0 disables the index)")
		idxPolicy = flag.String("reachindex-policy", "postorder", "self-contained mode: index budget policy, postorder | hits (hit-guided: labels concentrate on the SCCs queries touch)")
		wal       = flag.String("wal", "", "durability: write-ahead log directory; every update batch is sequenced and logged before broadcast, and a restarted gateway resumes the order and replays missed batches to the sites")
		snapEvery = flag.Int("snapshot-every", 256, "with -wal: checkpoint the deployment and truncate the log every N update batches (0 = never)")
		fsync     = flag.String("fsync", "always", "with -wal: fsync policy, always | never")
		trace     = flag.Bool("trace", true, "distributed tracing: queries travel in trace envelopes, sites report spans, trees land at GET /trace/{id} (turn off when some sites run a pre-tracing build)")
		slowQuery = flag.Duration("slowquery", 0, "with -trace: dump the full trace tree of queries slower than this to stderr (0 = off)")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the gateway listener")
	)
	flag.Parse()

	var (
		co    *netsite.Coordinator
		owned []*netsite.Site
		rep   *fragment.Replica
		err   error
	)
	switch {
	case *sites != "":
		co, err = netsite.Dial(strings.Split(*sites, ","), *dialTO)
		if err != nil {
			fatal(err)
		}
	case *graphPath != "":
		var addrs []string
		owned, addrs, rep, err = selfDeploy(*graphPath, *partition, *k, *seed, *idxBudget, *idxPolicy)
		if err != nil {
			fatal(err)
		}
		co, err = netsite.Dial(addrs, *dialTO)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serve: self-contained deployment, %d loopback sites\n", len(owned))
	default:
		fmt.Fprintln(os.Stderr, "serve: need -sites (running deployment) or -graph (self-contained)")
		os.Exit(2)
	}
	defer co.Close()
	defer func() {
		for _, s := range owned {
			s.Close()
		}
	}()
	co.SetAnytime(*anytime)

	var store *oplog.Store
	if *wal != "" {
		policy, err := oplog.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		store, err = oplog.OpenStore(*wal, oplog.LogOptions{Fsync: policy})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		fmt.Printf("serve: write-ahead log in %s (recovered LSN %d, snapshot LSN %d, fsync %s)\n",
			*wal, store.LastLSN(), store.SnapshotLSN(), *fsync)
	}

	opts := gwOptions{
		cacheCap:    *cacheCap,
		timeout:     *reqTO,
		maxInflight: *inflight,
		skew:        *skew,
		partitioner: *rebPart,
		seed:        *seed,
		store:       store,
		snapEvery:   *snapEvery,
		coalesce:    *coalesce,
		trace:       *trace,
		slowQuery:   *slowQuery,
	}
	if rep != nil {
		opts.idxStats = func() fragment.ReachIndexStats {
			cur, _ := rep.Current()
			return cur.ReachIndexStats()
		}
	}
	gw := newGateway(co, opts)
	if rep != nil {
		// Seed the guarantee auditor's |Vf| and |G| before the first update
		// reply refreshes them.
		if cur, _ := rep.Current(); cur != nil {
			gw.ob.setDeployment(cur.BalanceStats())
		}
	}
	if store != nil {
		// Boot-time recovery: the sites may be behind the write-ahead log
		// (a self-deployed gateway restarts its sites from the original
		// graph file; a batch may have been logged but never broadcast).
		// One catch-up round replays the delta before traffic lands on a
		// stale replica.
		go gw.heal()
	}
	mux := gw.routes()
	if *pprofOn {
		registerPprof(mux)
	}
	fmt.Printf("serve: gateway on http://%s (cache %d entries, request timeout %v, max in-flight %d, skew threshold %.1f)\n",
		*listen, *cacheCap, *reqTO, cap(gw.sem), *skew)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fatal(err)
	}
}

// registerPprof mounts the standard profiling endpoints on our own mux
// (the handlers net/http/pprof installs on http.DefaultServeMux, which
// the gateway does not serve).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// selfDeploy loads the graph, partitions it, enables the per-fragment
// reachability index (budget > 0), and serves every fragment on a loopback
// site inside this process. The returned replica is the handle whose
// current fragmentation /stats reads index counters from; live rebalances
// carry the index budget across the epoch swap.
func selfDeploy(graphPath, partition string, k int, seed uint64, idxBudget int64, idxPolicy string) ([]*netsite.Site, []string, *fragment.Replica, error) {
	f, err := os.Open(graphPath)
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	var fr *fragment.Fragmentation
	switch partition {
	case "random":
		fr, err = distreach.PartitionRandom(g, k, seed)
	case "hash":
		fr, err = distreach.PartitionHash(g, k)
	case "contiguous":
		fr, err = distreach.PartitionContiguous(g, k)
	case "greedy":
		fr, err = distreach.PartitionGreedy(g, k, seed)
	case "edgecut":
		fr, err = distreach.PartitionEdgeCut(g, k, seed)
	default:
		err = fmt.Errorf("unknown partitioner %q", partition)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if idxBudget > 0 {
		pol, err := reachindex.ParsePolicy(idxPolicy)
		if err != nil {
			return nil, nil, nil, err
		}
		fr.SetReachIndexPolicy(pol)
		fr.EnableReachIndex(idxBudget)
	}
	rep := fragment.NewReplica(fr)
	sites, addrs, err := netsite.ServeReplica(rep, netsite.SiteOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return sites, addrs, rep, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	os.Exit(1)
}
