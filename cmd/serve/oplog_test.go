package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/netsite"
	"distreach/internal/oplog"
)

// TestGatewayDurabilityStats: a -wal gateway write-ahead logs every update
// batch, reports the durability fields in /stats (current LSN, per-site
// replica LSNs, lag, segment accounting), and checkpoints + truncates in
// the background once -snapshot-every batches accumulate.
func TestGatewayDurabilityStats(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 160, Labels: []string{"A"}, Seed: 71})
	fr, err := fragment.Random(g, 2, 71)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	store, err := oplog.OpenStore(t.TempDir(), oplog.LogOptions{Fsync: oplog.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 64, store: store, snapEvery: 4})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
		store.Close()
	}()

	for i := 0; i < 6; i++ {
		postUpdate(t, srv.URL, `{"op":"insert","u":0,"v":39}`, 200)
		postUpdate(t, srv.URL, `{"op":"delete","u":0,"v":39}`, 200)
	}
	if got := store.Log().LastLSN(); got != 12 {
		t.Fatalf("write-ahead log at LSN %d after 12 updates, want 12", got)
	}
	m := getJSON(t, srv.URL+"/stats", 200)
	dur, ok := m["durability"].(map[string]any)
	if !ok {
		t.Fatalf("stats carry no durability section: %v", m)
	}
	if lsn := dur["lsn"].(float64); lsn != 12 {
		t.Fatalf("stats lsn = %v, want 12", lsn)
	}
	reps := dur["replica_lsns"].([]any)
	if len(reps) != 2 {
		t.Fatalf("stats report %d replica LSNs, want 2", len(reps))
	}
	for i, r := range reps {
		if r.(float64) != 12 {
			t.Fatalf("replica %d at LSN %v, want 12", i, r)
		}
	}
	if lag := dur["max_lag"].(float64); lag != 0 {
		t.Fatalf("max_lag = %v on a healthy deployment", lag)
	}
	wal, ok := dur["wal"].(map[string]any)
	if !ok {
		t.Fatal("stats carry no wal section despite -wal")
	}
	if wal["segments"].(float64) < 1 || wal["segment_bytes"].(float64) <= 0 {
		t.Fatalf("implausible wal accounting: %v", wal)
	}
	// The background checkpoint fires once snapEvery batches accumulate.
	deadline := time.Now().Add(5 * time.Second)
	for store.SnapshotLSN() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if store.SnapshotLSN() == 0 {
		t.Fatal("no snapshot was checkpointed after snapEvery batches")
	}
	snap, ok2, err := store.LoadSnapshot()
	if err != nil || !ok2 {
		t.Fatalf("stored snapshot unreadable: ok=%v err=%v", ok2, err)
	}
	if snap.Fingerprint == 0 {
		t.Fatal("stored snapshot carries no fingerprint")
	}
}

// TestGatewayRecoversDeploymentFromWAL: the boot-recovery path — a gateway
// whose write-ahead log is ahead of the sites (here: sites rebuilt from
// the original graph, the WAL holding churn they never saw) replays the
// delta on startup, so the deployment serves post-churn answers without
// any manual re-seed.
func TestGatewayRecoversDeploymentFromWAL(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 100, Labels: []string{"A"}, Seed: 73})
	assign := make([]int, 40)
	for v := range assign {
		assign[v] = v % 2
	}
	dir := t.TempDir()

	// First incarnation: durable gateway applies churn.
	fr1, err := fragment.Build(g.Clone(), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	sites1, addrs1, err := netsite.ServeFragmentation(fr1)
	if err != nil {
		t.Fatal(err)
	}
	co1, err := netsite.Dial(addrs1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	store1, err := oplog.OpenStore(dir, oplog.LogOptions{Fsync: oplog.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	gw1 := newGateway(co1, gwOptions{cacheCap: 64, store: store1})
	srv1 := httptest.NewServer(gw1.routes())
	// Make node 0 reach node 39 directly — not true in the seed graph for
	// this seed unless churned.
	postUpdate(t, srv1.URL, `{"op":"insert","u":0,"v":39}`, 200)
	srv1.Close()
	co1.Close()
	for _, s := range sites1 {
		s.Close()
	}
	store1.Close()

	// Second incarnation: sites restart from the ORIGINAL files (the churn
	// is only in the WAL). Boot recovery must replay it.
	fr2, err := fragment.Build(g.Clone(), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Graph().HasEdge(0, 39) {
		t.Fatal("test premise broken: seed graph already has (0,39)")
	}
	sites2, addrs2, err := netsite.ServeFragmentation(fr2)
	if err != nil {
		t.Fatal(err)
	}
	co2, err := netsite.Dial(addrs2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := oplog.OpenStore(dir, oplog.LogOptions{Fsync: oplog.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	gw2 := newGateway(co2, gwOptions{cacheCap: 64, store: store2})
	srv2 := httptest.NewServer(gw2.routes())
	defer func() {
		srv2.Close()
		co2.Close()
		for _, s := range sites2 {
			s.Close()
		}
		store2.Close()
	}()
	gw2.heal() // what main() launches on boot with -wal
	if !fr2.Graph().HasEdge(0, 39) {
		t.Fatal("boot recovery did not replay the WAL onto the sites")
	}
	m := getJSON(t, srv2.URL+"/reach?s=0&t=39", 200)
	if m["answer"] != true {
		t.Fatalf("post-recovery qr(0,39) = %v, want true (the churned edge)", m["answer"])
	}
}
