package main

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"distreach/internal/graph"
	"distreach/internal/netsite"
)

// maxCoalesce bounds one coalesced wire round: once this many reach
// queries have piled up inside the window, the round flushes immediately
// instead of waiting the timer out.
const maxCoalesce = 256

// coalescer implements the gateway's adaptive batching: concurrent GET
// /reach requests that miss the cache within one -coalesce window travel
// the wire as a SINGLE batch round (one frame per site for the whole
// group) instead of one round each. The first query to arrive arms the
// window timer; everything that lands before it fires shares the round.
// Under light traffic the window adds at most its own length of latency;
// under a multiplexed flood it collapses N concurrent rounds into one,
// which is exactly when the site connections are the bottleneck.
type coalescer struct {
	co     *netsite.Coordinator
	window time.Duration
	newCtx func() (context.Context, context.CancelFunc) // per-round wire deadline

	mu      sync.Mutex
	pending []coalesceWaiter

	// Telemetry for /stats: rounds flushed, queries that travelled through
	// the coalescer, queries that shared a round with at least one other,
	// the largest round, and a small round-size histogram.
	rounds    atomic.Int64
	queries   atomic.Int64
	coalesced atomic.Int64
	maxRound  atomic.Int64
	sizeHist  [4]atomic.Int64 // rounds of size 1, 2, 3-4, 5+
}

type coalesceWaiter struct {
	q    netsite.BatchQuery
	done chan coalesceResult // buffered: the flusher never blocks on a gone waiter
}

type coalesceResult struct {
	ans netsite.BatchAnswer
	st  netsite.WireStats
	err error
}

func newCoalescer(co *netsite.Coordinator, window, timeout time.Duration) *coalescer {
	return &coalescer{
		co:     co,
		window: window,
		newCtx: func() (context.Context, context.CancelFunc) {
			// The round outlives any single waiter's HTTP context (one
			// client hanging up must not cancel its round-mates), so it
			// runs under the gateway's wire deadline alone.
			if timeout <= 0 {
				return context.Background(), func() {}
			}
			return context.WithTimeout(context.Background(), timeout)
		},
	}
}

// reach enqueues one reach query and waits for its round to flush. The
// waiter's own context only abandons the wait — the shared round carries
// on for the other queries in it.
func (cl *coalescer) reach(ctx context.Context, s, t graph.NodeID) (netsite.BatchAnswer, netsite.WireStats, error) {
	w := coalesceWaiter{
		q:    netsite.BatchQuery{Class: netsite.ClassReach, S: s, T: t},
		done: make(chan coalesceResult, 1),
	}
	cl.queries.Add(1)
	cl.mu.Lock()
	cl.pending = append(cl.pending, w)
	first := len(cl.pending) == 1
	full := len(cl.pending) >= maxCoalesce
	cl.mu.Unlock()
	switch {
	case full:
		go cl.flush()
	case first:
		time.AfterFunc(cl.window, cl.flush)
	}
	select {
	case res := <-w.done:
		return res.ans, res.st, res.err
	case <-ctx.Done():
		return netsite.BatchAnswer{}, netsite.WireStats{}, ctx.Err()
	}
}

// flush ships whatever accumulated as one wire batch and fans the answers
// back out. A timer firing after a full-batch flush finds nothing pending
// and is a no-op.
func (cl *coalescer) flush() {
	cl.mu.Lock()
	batch := cl.pending
	cl.pending = nil
	cl.mu.Unlock()
	if len(batch) == 0 {
		return
	}

	n := int64(len(batch))
	cl.rounds.Add(1)
	if n > 1 {
		cl.coalesced.Add(n)
	}
	for cur := cl.maxRound.Load(); n > cur && !cl.maxRound.CompareAndSwap(cur, n); cur = cl.maxRound.Load() {
	}
	switch {
	case n == 1:
		cl.sizeHist[0].Add(1)
	case n == 2:
		cl.sizeHist[1].Add(1)
	case n <= 4:
		cl.sizeHist[2].Add(1)
	default:
		cl.sizeHist[3].Add(1)
	}

	qs := make([]netsite.BatchQuery, len(batch))
	for i, w := range batch {
		qs[i] = w.q
	}
	ctx, cancel := cl.newCtx()
	defer cancel()
	answers, st, err := cl.co.BatchContext(ctx, qs)
	for i, w := range batch {
		if err != nil {
			w.done <- coalesceResult{err: err}
			continue
		}
		w.done <- coalesceResult{ans: answers[i], st: st}
	}
}

// statsJSON is the /stats "coalesce" section.
func (cl *coalescer) statsJSON() map[string]any {
	return map[string]any{
		"window_us": cl.window.Microseconds(),
		"rounds":    cl.rounds.Load(),
		"queries":   cl.queries.Load(),
		"coalesced": cl.coalesced.Load(),
		"max_round": cl.maxRound.Load(),
		"round_sizes": map[string]int64{
			"1":      cl.sizeHist[0].Load(),
			"2":      cl.sizeHist[1].Load(),
			"3_4":    cl.sizeHist[2].Load(),
			"5_plus": cl.sizeHist[3].Load(),
		},
	}
}
