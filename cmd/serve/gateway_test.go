package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

func testGateway(t *testing.T) (*gateway, *graph.Graph, *httptest.Server) {
	t.Helper()
	return testGatewayOpts(t, netsite.SiteOptions{})
}

func testGatewayOpts(t *testing.T, o netsite.SiteOptions) (*gateway, *graph.Graph, *httptest.Server) {
	t.Helper()
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: labels, Seed: 61})
	fr, err := fragment.Random(g, 3, 61)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, o)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128})
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})
	return gw, g, srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGatewayReachMatchesOracle(t *testing.T) {
	_, g, srv := testGateway(t)
	rng := gen.NewRNG(62)
	for q := 0; q < 30; q++ {
		s := rng.Intn(80)
		tt := rng.Intn(80)
		m := getJSON(t, srv.URL+"/reach?s="+strconv.Itoa(s)+"&t="+strconv.Itoa(tt), 200)
		if got, want := m["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
			t.Fatalf("qr(%d,%d): http=%v oracle=%v", s, tt, got, want)
		}
	}
}

func TestGatewayCacheHitAndFlush(t *testing.T) {
	gw, _, srv := testGateway(t)
	url := srv.URL + "/reach?s=3&t=70"
	first := getJSON(t, url, 200)
	if first["cached"].(bool) {
		t.Fatal("first query must miss the cache")
	}
	if first["wire"] == nil {
		t.Fatal("uncached query must report wire stats")
	}
	second := getJSON(t, url, 200)
	if !second["cached"].(bool) {
		t.Fatal("repeat query must hit the cache")
	}
	if second["answer"] != first["answer"] {
		t.Fatal("cached answer differs from computed answer")
	}
	if second["wire"] != nil {
		t.Fatal("cached query must not report wire stats")
	}
	resp, err := http.Post(srv.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gw.cache.Len() != 0 {
		t.Fatal("flush must empty the cache")
	}
	third := getJSON(t, url, 200)
	if third["cached"].(bool) {
		t.Fatal("query after flush must miss the cache")
	}
}

func TestGatewayReachWithinAndRegex(t *testing.T) {
	_, g, srv := testGateway(t)
	m := getJSON(t, srv.URL+"/reachwithin?s=5&t=60&l=4", 200)
	d := g.Dist(5, 60)
	want := d >= 0 && d <= 4
	if m["answer"].(bool) != want {
		t.Fatalf("qbr(5,60,4): http=%v oracle dist=%d", m["answer"], d)
	}
	if want {
		if dist := int(m["dist"].(float64)); dist != d {
			t.Fatalf("dist %d, oracle %d", dist, d)
		}
	}
	// Regex answers travel URL-encoded.
	m = getJSON(t, srv.URL+"/reachregex?s=5&t=60&r=A%28A%7CB%29%2A", 200) // A(A|B)*
	if _, ok := m["answer"].(bool); !ok {
		t.Fatalf("qrr: malformed response %v", m)
	}
}

func TestGatewayRejectsBadParams(t *testing.T) {
	_, _, srv := testGateway(t)
	for _, path := range []string{
		"/reach?s=x&t=2",
		"/reach?t=2",
		"/reachwithin?s=1&t=2&l=-3",
		"/reachwithin?s=1&t=2",
		"/reachregex?s=1&t=2",
		"/reachregex?s=1&t=2&r=%28", // unbalanced paren
	} {
		m := getJSON(t, srv.URL+path, 400)
		if m["error"] == "" {
			t.Fatalf("%s: error body missing", path)
		}
	}
}

// postBatch posts a /batch request and decodes the response envelope.
func postBatch(t *testing.T, url string, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /batch: status %d, want %d", resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGatewayBatchMatchesOracle(t *testing.T) {
	_, g, srv := testGateway(t)
	m := postBatch(t, srv.URL, `{"queries":[
		{"class":"reach","s":3,"t":70},
		{"class":"reachwithin","s":5,"t":60,"l":4},
		{"class":"reachregex","s":7,"t":50,"r":"A(A|B)*"},
		{"class":"reach","s":9,"t":9}
	]}`, 200)
	answers := m["answers"].([]any)
	if len(answers) != 4 {
		t.Fatalf("4 queries, %d answers", len(answers))
	}
	a0 := answers[0].(map[string]any)
	if got, want := a0["answer"].(bool), g.Reachable(3, 70); got != want {
		t.Fatalf("qr(3,70): batch=%v oracle=%v", got, want)
	}
	a1 := answers[1].(map[string]any)
	d := g.Dist(5, 60)
	if got, want := a1["answer"].(bool), d >= 0 && d <= 4; got != want {
		t.Fatalf("qbr(5,60,4): batch=%v oracle dist=%d", got, d)
	}
	if !answers[3].(map[string]any)["answer"].(bool) {
		t.Fatal("qr(9,9) must be true")
	}
	// One wire round for the whole batch: frames == sites, misses == 4
	// (the s==t query still counts as a miss, answered locally for free).
	if misses := int(m["misses"].(float64)); misses != 4 {
		t.Fatalf("misses %d, want 4 on a cold cache", misses)
	}
	wire := m["wire"].(map[string]any)
	if fs := int(wire["frames_sent"].(float64)); fs != 3 {
		t.Fatalf("frames_sent %d, want 3 (one per site)", fs)
	}
}

// TestGatewayBatchStripsCachedQueries is the qcache satellite: a batch
// with half its keys already cached sends only the misses over the wire,
// and a fully cached batch sends no frames at all.
func TestGatewayBatchStripsCachedQueries(t *testing.T) {
	gw, _, srv := testGateway(t)
	const body = `{"queries":[
		{"class":"reach","s":1,"t":40},
		{"class":"reach","s":2,"t":41},
		{"class":"reachwithin","s":3,"t":42,"l":5},
		{"class":"reachwithin","s":4,"t":43,"l":5}
	]}`
	// Warm exactly half the keys through the single-query API.
	getJSON(t, srv.URL+"/reach?s=1&t=40", 200)
	getJSON(t, srv.URL+"/reachwithin?s=3&t=42&l=5", 200)
	hits0, _ := gw.cache.Stats()

	m := postBatch(t, srv.URL, body, 200)
	if misses := int(m["misses"].(float64)); misses != 2 {
		t.Fatalf("misses %d, want 2 (half the batch was cached)", misses)
	}
	hits1, _ := gw.cache.Stats()
	if hits1-hits0 != 2 {
		t.Fatalf("cache hits grew by %d, want 2", hits1-hits0)
	}
	answers := m["answers"].([]any)
	for i, cached := range []bool{true, false, true, false} {
		if got := answers[i].(map[string]any)["cached"].(bool); got != cached {
			t.Fatalf("answer %d cached=%v, want %v", i, got, cached)
		}
	}
	// Frames still one per site — batching the misses, not per query.
	if fs := int(m["wire"].(map[string]any)["frames_sent"].(float64)); fs != 3 {
		t.Fatalf("frames_sent %d, want 3", fs)
	}

	// Now everything is cached: the same batch must not touch the wire.
	m = postBatch(t, srv.URL, body, 200)
	if misses := int(m["misses"].(float64)); misses != 0 {
		t.Fatalf("fully cached batch missed %d times", misses)
	}
	if m["wire"] != nil {
		t.Fatalf("fully cached batch reported wire traffic: %v", m["wire"])
	}
}

// TestGatewayBatchDedupsDuplicateQueries: identical queries inside one
// batch travel the wire once and the answer fans out to every index.
func TestGatewayBatchDedupsDuplicateQueries(t *testing.T) {
	_, g, srv := testGateway(t)
	m := postBatch(t, srv.URL, `{"queries":[
		{"class":"reach","s":6,"t":55},
		{"class":"reach","s":6,"t":55},
		{"class":"reach","s":6,"t":55}
	]}`, 200)
	if misses := int(m["misses"].(float64)); misses != 1 {
		t.Fatalf("3 identical queries produced %d wire queries, want 1", misses)
	}
	want := g.Reachable(6, 55)
	for i, a := range m["answers"].([]any) {
		if got := a.(map[string]any)["answer"].(bool); got != want {
			t.Fatalf("answer %d: %v, oracle %v", i, got, want)
		}
	}
}

// TestGatewayBatchFlushRace flushes the cache while a batch is in flight
// over slow sites: the in-flight batch must not re-insert its pre-flush
// answers, so nothing stale can ever be served afterwards.
func TestGatewayBatchFlushRace(t *testing.T) {
	gw, _, srv := testGatewayOpts(t, netsite.SiteOptions{Delay: 500 * time.Millisecond})
	done := make(chan map[string]any, 1)
	go func() {
		done <- postBatch(t, srv.URL, `{"queries":[
			{"class":"reach","s":1,"t":40},
			{"class":"reach","s":2,"t":41}
		]}`, 200)
	}()
	// The handler bumps the query counter after snapshotting the flush
	// generation and before the wire round, so once the counter reads 2
	// the batch is committed to its pre-flush epoch and is stuck behind
	// the sites' service delay — the flush below is guaranteed to race it.
	for deadline := time.Now().Add(5 * time.Second); gw.queries.Value() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(srv.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := <-done
	if len(m["answers"].([]any)) != 2 {
		t.Fatalf("batch lost answers: %v", m)
	}
	// The flush raced the round trip: the batch's answers must NOT have
	// been re-inserted, whichever side won.
	if n := gw.cache.Len(); n != 0 {
		t.Fatalf("%d stale entries re-inserted after flush", n)
	}
	// And the next batch recomputes rather than serving anything stale.
	m = postBatch(t, srv.URL, `{"queries":[{"class":"reach","s":1,"t":40}]}`, 200)
	if misses := int(m["misses"].(float64)); misses != 1 {
		t.Fatalf("post-flush batch served from a cache that should be empty (misses=%d)", misses)
	}
}

func TestGatewayBatchRejectsBadRequests(t *testing.T) {
	gw, _, srv := testGateway(t)
	for name, body := range map[string]string{
		"malformed JSON": `{"queries":[`,
		"empty list":     `{"queries":[]}`,
		"missing s":      `{"queries":[{"class":"reach","t":2}]}`,
		"unknown class":  `{"queries":[{"class":"teleport","s":1,"t":2}]}`,
		"negative bound": `{"queries":[{"class":"reachwithin","s":1,"t":2,"l":-1}]}`,
		"missing regex":  `{"queries":[{"class":"reachregex","s":1,"t":2}]}`,
		"bad regex":      `{"queries":[{"class":"reachregex","s":1,"t":2,"r":"("}]}`,
		// Valid queries ahead of an invalid one: the whole batch must be
		// rejected before any serving state is touched.
		"tail invalid": `{"queries":[{"class":"reach","s":1,"t":2},{"class":"teleport","s":3,"t":4}]}`,
	} {
		if m := postBatch(t, srv.URL, body, 400); m["error"] == "" {
			t.Fatalf("%s: error body missing", name)
		}
	}
	// No rejected batch served anything: counters and cache untouched.
	if n := gw.queries.Value(); n != 0 {
		t.Fatalf("rejected batches bumped the query counter to %d", n)
	}
	if hits, misses := gw.cache.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("rejected batches touched the cache: hits=%d misses=%d", hits, misses)
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	_, g, srv := testGateway(t)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := gen.NewRNG(seed)
			for q := 0; q < 20; q++ {
				s := rng.Intn(80)
				tt := rng.Intn(80)
				resp, err := http.Get(srv.URL + "/reach?s=" + strconv.Itoa(s) + "&t=" + strconv.Itoa(tt))
				if err != nil {
					errs <- err.Error()
					return
				}
				var m map[string]any
				err = json.NewDecoder(resp.Body).Decode(&m)
				resp.Body.Close()
				if err != nil {
					errs <- err.Error()
					return
				}
				if got, want := m["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
					errs <- "wrong answer under concurrency"
					return
				}
			}
		}(uint64(70 + w))
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// precisionGateway deploys a hand-built graph whose components are
// fragment-aligned, so queries have disjoint touched-fragment sets:
//
//	component A: 0 -> 1 -> 2 -> 3   (nodes 0,1 in fragment 0; 2,3 in 1)
//	component B: 4 -> 5             (nodes 4,5 in fragment 2)
func precisionGateway(t *testing.T) (*gateway, *httptest.Server) {
	t.Helper()
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddNode("A")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // the only cross edge: fragment 0 -> fragment 1
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := b.MustBuild()
	fr, err := fragment.Build(g, []int{0, 0, 1, 1, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128})
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})
	return gw, srv
}

// postUpdate posts one edge operation and decodes the response.
func postUpdate(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /update: status %d, want %d", resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGatewayUpdateEvictionPrecision is the eviction-precision satellite:
// after an update dirtying fragment F, keys whose recorded fragment set
// excludes F must still be served from cache (hit counters prove no
// collateral eviction), while keys touching F are evicted and recompute
// the post-update answer.
func TestGatewayUpdateEvictionPrecision(t *testing.T) {
	gw, srv := precisionGateway(t)
	// Warm the cache: qr(0,3) touches fragments {0,1}; qr(4,5) touches {2}.
	if m := getJSON(t, srv.URL+"/reach?s=0&t=3", 200); m["answer"] != true {
		t.Fatalf("qr(0,3) = %v, want true", m["answer"])
	}
	if m := getJSON(t, srv.URL+"/reach?s=4&t=5", 200); m["answer"] != true {
		t.Fatalf("qr(4,5) = %v, want true", m["answer"])
	}

	// Insert 5->4, an internal edge of fragment 2.
	m := postUpdate(t, srv.URL, `{"op":"insert","u":5,"v":4}`, 200)
	if m["changed"] != true {
		t.Fatalf("insert reported changed=%v", m["changed"])
	}
	if d := m["dirty"].([]any); len(d) != 1 || int(d[0].(float64)) != 2 {
		t.Fatalf("insert into fragment 2 dirtied %v", d)
	}
	if ev := int(m["evicted"].(float64)); ev != 1 {
		t.Fatalf("evicted %d entries, want exactly 1 (qr(4,5))", ev)
	}

	// qr(0,3) avoided fragment 2: it must still hit.
	hits0, _ := gw.cache.Stats()
	if m := getJSON(t, srv.URL+"/reach?s=0&t=3", 200); m["cached"] != true {
		t.Fatal("qr(0,3) must survive an update to fragment 2")
	}
	hits1, _ := gw.cache.Stats()
	if hits1 != hits0+1 {
		t.Fatalf("hit counter grew by %d, want 1", hits1-hits0)
	}
	// qr(4,5) touched fragment 2: evicted, recomputed, still true.
	if m := getJSON(t, srv.URL+"/reach?s=4&t=5", 200); m["cached"] != false || m["answer"] != true {
		t.Fatalf("qr(4,5) after eviction: %v", m)
	}

	// Delete the 2->3 edge: fragment 1 dirtied, qr(0,3) flips to false.
	m = postUpdate(t, srv.URL, `{"op":"delete","u":2,"v":3}`, 200)
	if d := m["dirty"].([]any); len(d) != 1 || int(d[0].(float64)) != 1 {
		t.Fatalf("delete of internal edge of fragment 1 dirtied %v", d)
	}
	if ev := int(m["evicted"].(float64)); ev != 1 {
		t.Fatalf("evicted %d entries, want exactly 1 (qr(0,3))", ev)
	}
	if m := getJSON(t, srv.URL+"/reach?s=0&t=3", 200); m["cached"] != false || m["answer"] != false {
		t.Fatalf("qr(0,3) after deleting 2->3: %v", m)
	}
	// qr(4,5) was re-cached with tag {2} and must still be hitting.
	if m := getJSON(t, srv.URL+"/reach?s=4&t=5", 200); m["cached"] != true {
		t.Fatal("qr(4,5) must survive an update to fragment 1")
	}

	// A no-op update (deleting a missing edge) evicts nothing.
	m = postUpdate(t, srv.URL, `{"op":"delete","u":0,"v":5}`, 200)
	if m["changed"] != false || int(m["evicted"].(float64)) != 0 {
		t.Fatalf("no-op update: %v", m)
	}
}

// TestGatewayUpdateCrossEdge inserts a cross edge joining the two
// components: both side fragments are dirtied and the bridged answer
// appears.
func TestGatewayUpdateCrossEdge(t *testing.T) {
	_, srv := precisionGateway(t)
	if m := getJSON(t, srv.URL+"/reach?s=0&t=5", 200); m["answer"] != false {
		t.Fatalf("qr(0,5) before bridge: %v", m["answer"])
	}
	// 3 (fragment 1) -> 4 (fragment 2): dirties both sides.
	m := postUpdate(t, srv.URL, `{"op":"insert","u":3,"v":4}`, 200)
	d := m["dirty"].([]any)
	if len(d) != 2 || int(d[0].(float64)) != 1 || int(d[1].(float64)) != 2 {
		t.Fatalf("cross insert dirtied %v, want [1 2]", d)
	}
	if m := getJSON(t, srv.URL+"/reach?s=0&t=5", 200); m["answer"] != true {
		t.Fatalf("qr(0,5) after bridge: %v", m["answer"])
	}
}

func TestGatewayUpdateRejectsBadRequests(t *testing.T) {
	gw, srv := precisionGateway(t)
	for name, body := range map[string]string{
		"malformed JSON": `{"op":`,
		"unknown op":     `{"op":"teleport","u":1,"v":2}`,
		"missing u":      `{"op":"insert","v":2}`,
		"missing v":      `{"op":"insert","u":1}`,
	} {
		if m := postUpdate(t, srv.URL, body, 400); m["error"] == "" {
			t.Fatalf("%s: error body missing", name)
		}
	}
	if n := gw.updates.Value(); n != 0 {
		t.Fatalf("rejected updates bumped the counter to %d", n)
	}
	// Out-of-range endpoints are a site-side error: surfaced as 502.
	postUpdate(t, srv.URL, `{"op":"insert","u":1,"v":4096}`, 502)
}

// TestGatewayRequestTimeout is the deadline satellite: with a per-request
// timeout shorter than the sites' service time, queries and updates come
// back 504 promptly instead of hanging.
func TestGatewayRequestTimeout(t *testing.T) {
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 160, Labels: labels, Seed: 63})
	fr, err := fragment.Random(g, 2, 63)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, timeout: 50 * time.Millisecond})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}()
	start := time.Now()
	m := getJSON(t, srv.URL+"/reach?s=0&t=39", 504)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("504 took %v; the deadline must fire at ~50ms, not wait out the site", elapsed)
	}
	if m["error"] == "" {
		t.Fatal("504 body must carry an error")
	}
	// Batches and updates honor the same deadline.
	postBatch(t, srv.URL, `{"queries":[{"class":"reach","s":0,"t":39}]}`, 504)
	postUpdate(t, srv.URL, `{"op":"insert","u":0,"v":39}`, 504)
	// Nothing was cached from the timed-out rounds.
	if n := gw.cache.Len(); n != 0 {
		t.Fatalf("%d entries cached from timed-out rounds", n)
	}
}

// TestGatewayFailedUpdateFlushesCache: an update round that fails
// entirely (every site unreachable) may still be sequenced and logged, so
// the gateway must flush the cache conservatively rather than keep
// serving pre-update answers. A *partial* outage is not a failure
// anymore: the batch applies on the reachable replicas, the reply names
// the laggards, and catch-up replication owes them the delta.
func TestGatewayFailedUpdateFlushesCache(t *testing.T) {
	labels := []string{"A"}
	g := gen.Uniform(gen.Config{Nodes: 30, Edges: 120, Labels: labels, Seed: 65})
	fr, err := fragment.Random(g, 2, 65)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}()
	getJSON(t, srv.URL+"/reach?s=0&t=29", 200) // warm one key
	if gw.cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", gw.cache.Len())
	}
	// Half the deployment down: the update succeeds on the survivor and
	// reports the laggard. (The sites share one in-process replica, so the
	// mutation is logically everywhere; the laggard just never answered.)
	sites[1].Close()
	m := postUpdate(t, srv.URL, `{"op":"insert","u":0,"v":29}`, 200)
	missed, ok := m["missed"].([]any)
	if !ok || len(missed) != 1 || int(missed[0].(float64)) != 1 {
		t.Fatalf("partial update reported missed=%v, want [1]", m["missed"])
	}
	// The whole deployment down: the round fails and the cache is flushed
	// (the batch may have been logged and will eventually apply).
	getJSON(t, srv.URL+"/stats", 200) // exempt from backpressure; sanity
	sites[0].Close()
	postUpdate(t, srv.URL, `{"op":"insert","u":1,"v":29}`, 502)
	if n := gw.cache.Len(); n != 0 {
		t.Fatalf("failed update left %d cached entries; it may still apply later", n)
	}
}

// TestGatewayStatsReachIndex: a self-contained deployment with the index
// enabled must surface live index counters under /stats "reachindex", and
// serving queries must move the hit counter.
func TestGatewayStatsReachIndex(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: []string{"A"}, Seed: 63})
	fr, err := fragment.Random(g, 3, 63)
	if err != nil {
		t.Fatal(err)
	}
	fr.EnableReachIndex(1 << 20)
	rep := fragment.NewReplica(fr)
	sites, addrs, err := netsite.ServeReplica(rep, netsite.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, idxStats: func() fragment.ReachIndexStats {
		cur, _ := rep.Current()
		return cur.ReachIndexStats()
	}})
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})
	fr.WaitReachIndexes()
	rng := gen.NewRNG(64)
	for q := 0; q < 20; q++ {
		getJSON(t, srv.URL+"/reach?s="+strconv.Itoa(rng.Intn(80))+"&t="+strconv.Itoa(rng.Intn(80)), 200)
	}
	m := getJSON(t, srv.URL+"/stats", 200)
	ri, ok := m["reachindex"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing reachindex section: %v", m)
	}
	if ri["enabled"] != true {
		t.Fatalf("reachindex.enabled = %v", ri["enabled"])
	}
	if hits, _ := ri["hits"].(float64); hits == 0 {
		t.Fatalf("no index hits after 20 wire queries: %v", ri)
	}
	if lb, _ := ri["label_bytes"].(float64); lb == 0 {
		t.Fatalf("label_bytes = 0: %v", ri)
	}
}

// TestGatewayCoalesce is the adaptive-batching satellite: concurrent
// GET /reach cache misses landing inside one -coalesce window share a
// single wire batch, every answer still matches the oracle, cached hits
// bypass the coalescer entirely, and /stats surfaces the round sizes.
func TestGatewayCoalesce(t *testing.T) {
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: labels, Seed: 66})
	fr, err := fragment.Random(g, 3, 66)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, coalesce: 200 * time.Millisecond})
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, tt := i, 70-i
			resp, err := http.Get(srv.URL + "/reach?s=" + strconv.Itoa(s) + "&t=" + strconv.Itoa(tt))
			if err != nil {
				errs <- err.Error()
				return
			}
			var m map[string]any
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				errs <- err.Error()
				return
			}
			if got, want := m["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
				errs <- fmt.Sprintf("qr(%d,%d): coalesced=%v oracle=%v", s, tt, got, want)
				return
			}
			if m["wire"] == nil {
				errs <- fmt.Sprintf("qr(%d,%d): miss must report wire stats", s, tt)
			}
		}(i)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	if q := gw.coal.queries.Load(); q != n {
		t.Fatalf("%d queries through the coalescer, want %d", q, n)
	}
	rounds := gw.coal.rounds.Load()
	if rounds < 1 || rounds >= n {
		t.Fatalf("%d concurrent misses flushed as %d rounds; coalescing never happened", n, rounds)
	}
	if c := gw.coal.coalesced.Load(); c < 2 {
		t.Fatalf("coalesced counter %d, want >= 2", c)
	}

	// A repeat is served from the cache and never enters the coalescer.
	if m := getJSON(t, srv.URL+"/reach?s=0&t=70", 200); m["cached"] != true {
		t.Fatal("repeat query must hit the cache")
	}
	if q := gw.coal.queries.Load(); q != n {
		t.Fatalf("cached hit went through the coalescer (counter %d)", q)
	}

	// /stats mirrors the live counters.
	st := getJSON(t, srv.URL+"/stats", 200)
	cs, ok := st["coalesce"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing coalesce section: %v", st)
	}
	if int64(cs["queries"].(float64)) != n {
		t.Fatalf("coalesce.queries = %v, want %d", cs["queries"], n)
	}
	if int64(cs["rounds"].(float64)) != rounds {
		t.Fatalf("coalesce.rounds = %v, want %d", cs["rounds"], rounds)
	}
	if int64(cs["window_us"].(float64)) != 200000 {
		t.Fatalf("coalesce.window_us = %v", cs["window_us"])
	}
}

// TestGatewayAnytimeStats: the anytime protocol end to end through HTTP —
// a reach query whose certificate avoids the slow site answers well ahead
// of the straggler, the per-query wire JSON reports the early
// termination, and /stats aggregates the protocol counters including the
// per-site straggler histogram.
func TestGatewayAnytimeStats(t *testing.T) {
	const slow = 500 * time.Millisecond
	// Two components across three sites: an a-chain alternating fragments
	// 0/1 (fast) and a b-chain on fragment 2 (slow).
	b := graph.NewBuilder(16)
	a0 := b.AddNodes(12, "A")
	b0 := b.AddNodes(4, "B")
	for i := 0; i < 11; i++ {
		b.AddEdge(a0+graph.NodeID(i), a0+graph.NodeID(i+1))
	}
	for i := 0; i < 3; i++ {
		b.AddEdge(b0+graph.NodeID(i), b0+graph.NodeID(i+1))
	}
	g := b.MustBuild()
	assign := make([]int, 16)
	for i := 0; i < 12; i++ {
		assign[i] = i % 2
	}
	for i := 12; i < 16; i++ {
		assign[i] = 2
	}
	fr, err := fragment.Build(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := fragment.NewReplica(fr)
	delays := []time.Duration{0, 0, slow}
	var sites []*netsite.Site
	var addrs []string
	for i, f := range fr.Fragments() {
		s, err := netsite.NewSiteReplica("127.0.0.1:0", rep, f.ID, netsite.SiteOptions{Delay: delays[i]})
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128})
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})

	start := time.Now()
	m := getJSON(t, srv.URL+"/reach?s=0&t=11", 200)
	elapsed := time.Since(start)
	if m["answer"] != true {
		t.Fatalf("qr(0,11) = %v, want true", m["answer"])
	}
	if elapsed >= slow-100*time.Millisecond {
		t.Fatalf("anytime answer took %v; must beat the %v straggler", elapsed, slow)
	}
	wire := m["wire"].(map[string]any)
	if wire["early_terminated"] != true {
		t.Fatalf("wire JSON missing early_terminated: %v", wire)
	}
	if fa := time.Duration(wire["first_answer_us"].(float64)) * time.Microsecond; fa <= 0 || fa >= slow {
		t.Fatalf("first_answer_us = %v, want positive and ahead of the straggler", fa)
	}
	if int64(wire["cancel_frames"].(float64)) < 1 {
		t.Fatalf("wire JSON reports no cancel frames: %v", wire)
	}

	st := getJSON(t, srv.URL+"/stats", 200)
	at, ok := st["anytime"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing anytime section: %v", st)
	}
	if at["enabled"] != true {
		t.Fatalf("anytime.enabled = %v, want true", at["enabled"])
	}
	if n := int64(at["early_terminations"].(float64)); n < 1 {
		t.Fatalf("early_terminations = %d, want >= 1", n)
	}
	if n := int64(at["cancels_sent"].(float64)); n < 1 {
		t.Fatalf("cancels_sent = %d, want >= 1", n)
	}
	if n := int64(at["partial_frames"].(float64)); n < 1 {
		t.Fatalf("partial_frames = %d, want >= 1", n)
	}
	str, ok := at["stragglers"].([]any)
	if !ok || len(str) != 3 {
		t.Fatalf("stragglers = %v, want one counter per site", at["stragglers"])
	}
	if int64(str[2].(float64)) < 1 {
		t.Fatalf("slow site's straggler counter = %v, want >= 1", str[2])
	}
}
