package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

func testGateway(t *testing.T) (*gateway, *graph.Graph, *httptest.Server) {
	t.Helper()
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: labels, Seed: 61})
	fr, err := fragment.Random(g, 3, 61)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, 128)
	srv := httptest.NewServer(gw.routes())
	t.Cleanup(func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	})
	return gw, g, srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGatewayReachMatchesOracle(t *testing.T) {
	_, g, srv := testGateway(t)
	rng := gen.NewRNG(62)
	for q := 0; q < 30; q++ {
		s := rng.Intn(80)
		tt := rng.Intn(80)
		m := getJSON(t, srv.URL+"/reach?s="+strconv.Itoa(s)+"&t="+strconv.Itoa(tt), 200)
		if got, want := m["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
			t.Fatalf("qr(%d,%d): http=%v oracle=%v", s, tt, got, want)
		}
	}
}

func TestGatewayCacheHitAndFlush(t *testing.T) {
	gw, _, srv := testGateway(t)
	url := srv.URL + "/reach?s=3&t=70"
	first := getJSON(t, url, 200)
	if first["cached"].(bool) {
		t.Fatal("first query must miss the cache")
	}
	if first["wire"] == nil {
		t.Fatal("uncached query must report wire stats")
	}
	second := getJSON(t, url, 200)
	if !second["cached"].(bool) {
		t.Fatal("repeat query must hit the cache")
	}
	if second["answer"] != first["answer"] {
		t.Fatal("cached answer differs from computed answer")
	}
	if second["wire"] != nil {
		t.Fatal("cached query must not report wire stats")
	}
	resp, err := http.Post(srv.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gw.cache.Len() != 0 {
		t.Fatal("flush must empty the cache")
	}
	third := getJSON(t, url, 200)
	if third["cached"].(bool) {
		t.Fatal("query after flush must miss the cache")
	}
}

func TestGatewayReachWithinAndRegex(t *testing.T) {
	_, g, srv := testGateway(t)
	m := getJSON(t, srv.URL+"/reachwithin?s=5&t=60&l=4", 200)
	d := g.Dist(5, 60)
	want := d >= 0 && d <= 4
	if m["answer"].(bool) != want {
		t.Fatalf("qbr(5,60,4): http=%v oracle dist=%d", m["answer"], d)
	}
	if want {
		if dist := int(m["dist"].(float64)); dist != d {
			t.Fatalf("dist %d, oracle %d", dist, d)
		}
	}
	// Regex answers travel URL-encoded.
	m = getJSON(t, srv.URL+"/reachregex?s=5&t=60&r=A%28A%7CB%29%2A", 200) // A(A|B)*
	if _, ok := m["answer"].(bool); !ok {
		t.Fatalf("qrr: malformed response %v", m)
	}
}

func TestGatewayRejectsBadParams(t *testing.T) {
	_, _, srv := testGateway(t)
	for _, path := range []string{
		"/reach?s=x&t=2",
		"/reach?t=2",
		"/reachwithin?s=1&t=2&l=-3",
		"/reachwithin?s=1&t=2",
		"/reachregex?s=1&t=2",
		"/reachregex?s=1&t=2&r=%28", // unbalanced paren
	} {
		m := getJSON(t, srv.URL+path, 400)
		if m["error"] == "" {
			t.Fatalf("%s: error body missing", path)
		}
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	_, g, srv := testGateway(t)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := gen.NewRNG(seed)
			for q := 0; q < 20; q++ {
				s := rng.Intn(80)
				tt := rng.Intn(80)
				resp, err := http.Get(srv.URL + "/reach?s=" + strconv.Itoa(s) + "&t=" + strconv.Itoa(tt))
				if err != nil {
					errs <- err.Error()
					return
				}
				var m map[string]any
				err = json.NewDecoder(resp.Body).Decode(&m)
				resp.Body.Close()
				if err != nil {
					errs <- err.Error()
					return
				}
				if got, want := m["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
					errs <- "wrong answer under concurrency"
					return
				}
			}
		}(uint64(70 + w))
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}
