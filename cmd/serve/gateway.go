package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"distreach"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/qcache"
)

// cachedAnswer is the value stored per query key: the Boolean answer plus
// the exact distance for bounded queries.
type cachedAnswer struct {
	Answer  bool
	Dist    int64
	HasDist bool
}

// gateway serves the HTTP/JSON API over one multiplexing coordinator.
type gateway struct {
	co      *netsite.Coordinator
	cache   *qcache.Cache[cachedAnswer]
	queries atomic.Int64
	started time.Time
}

func newGateway(co *netsite.Coordinator, cacheCap int) *gateway {
	return &gateway{co: co, cache: qcache.New[cachedAnswer](cacheCap), started: time.Now()}
}

func (g *gateway) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /reach", g.handleReach)
	mux.HandleFunc("GET /reachwithin", g.handleReachWithin)
	mux.HandleFunc("GET /reachregex", g.handleReachRegex)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("POST /flush", g.handleFlush)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// wireJSON mirrors netsite.WireStats for responses served off the wire.
type wireJSON struct {
	BytesSent       int64 `json:"bytes_sent"`
	BytesReceived   int64 `json:"bytes_received"`
	RoundTripMicros int64 `json:"round_trip_us"`
}

type queryResponse struct {
	Query  string    `json:"query"`
	Answer bool      `json:"answer"`
	Dist   *int64    `json:"dist,omitempty"`
	Cached bool      `json:"cached"`
	Wire   *wireJSON `json:"wire,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// nodeParam parses one required node-ID query parameter.
func nodeParam(r *http.Request, name string) (graph.NodeID, bool) {
	v, err := strconv.ParseUint(r.URL.Query().Get(name), 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.NodeID(v), true
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func (g *gateway) respond(w http.ResponseWriter, query string, ans cachedAnswer, cached bool, st netsite.WireStats) {
	resp := queryResponse{Query: query, Answer: ans.Answer, Cached: cached}
	if ans.HasDist {
		resp.Dist = &ans.Dist
	}
	if !cached {
		resp.Wire = &wireJSON{
			BytesSent:       st.BytesSent,
			BytesReceived:   st.BytesReceived,
			RoundTripMicros: st.RoundTrip.Microseconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *gateway) handleReach(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	if !ok || !ok2 {
		badRequest(w, "reach needs numeric s and t")
		return
	}
	g.queries.Add(1)
	query := "qr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + ")"
	key := qcache.ReachKey(s, t)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	answer, st, err := g.co.Reach(s, t)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	ans := cachedAnswer{Answer: answer}
	g.cache.Put(key, ans)
	g.respond(w, query, ans, false, st)
}

func (g *gateway) handleReachWithin(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	l, err := strconv.Atoi(r.URL.Query().Get("l"))
	if !ok || !ok2 || err != nil || l < 0 {
		badRequest(w, "reachwithin needs numeric s, t and bound l >= 0")
		return
	}
	g.queries.Add(1)
	query := "qbr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + r.URL.Query().Get("l") + ")"
	key := qcache.DistKey(s, t, l)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	answer, dist, st, err := g.co.ReachWithin(s, t, l)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	// The distance is exact only when within the bound; otherwise it is the
	// solver's infinity sentinel, which callers should not see.
	ans := cachedAnswer{Answer: answer, Dist: dist, HasDist: answer}
	g.cache.Put(key, ans)
	g.respond(w, query, ans, false, st)
}

func (g *gateway) handleReachRegex(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	expr := r.URL.Query().Get("r")
	if !ok || !ok2 || expr == "" {
		badRequest(w, "reachregex needs numeric s, t and expression r")
		return
	}
	a, err := distreach.CompileRegex(expr)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	g.queries.Add(1)
	query := "qrr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + expr + ")"
	key := qcache.RPQKey(s, t, expr)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	answer, st, err := g.co.ReachRegex(s, t, a)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	ans := cachedAnswer{Answer: answer}
	g.cache.Put(key, ans)
	g.respond(w, query, ans, false, st)
}

func (g *gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := g.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":        g.queries.Load(),
		"uptime_seconds": int64(time.Since(g.started).Seconds()),
		"cache": map[string]any{
			"hits":    hits,
			"misses":  misses,
			"entries": g.cache.Len(),
		},
	})
}

func (g *gateway) handleFlush(w http.ResponseWriter, r *http.Request) {
	g.cache.Flush()
	writeJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}
