package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distreach"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/obs"
	"distreach/internal/oplog"
	"distreach/internal/qcache"
)

// cachedAnswer is the value stored per query key: the Boolean answer plus
// the exact distance for bounded queries.
type cachedAnswer struct {
	Answer  bool
	Dist    int64
	HasDist bool
}

// gwOptions configures a gateway beyond its coordinator.
type gwOptions struct {
	cacheCap    int
	timeout     time.Duration // per-request wire deadline; 0 = none
	maxInflight int           // backpressure: concurrent requests; 0 = default
	skew        float64       // auto-rebalance threshold; 0 = disabled
	partitioner string        // rebalance strategy (fragment.ByName)
	seed        uint64        // rebalance partitioner seed base
	store       *oplog.Store  // durable oplog (-wal); nil = in-memory order only
	snapEvery   int           // checkpoint + log-truncate cadence in batches; 0 = never
	coalesce    time.Duration // adaptive batching window for GET /reach; 0 = off
	trace       bool          // distributed tracing: 'T' envelopes + /trace endpoints
	slowQuery   time.Duration // dump traces slower than this to stderr; 0 = off

	// idxStats reads the reachability-index counters of the current
	// deployment; nil when the sites are remote (the gateway has no local
	// fragmentation handle, so /stats omits the section).
	idxStats func() fragment.ReachIndexStats
}

// defaultMaxInflight bounds concurrent query/update requests when the
// -maxinflight flag is left zero: enough for heavy multiplexed traffic,
// finite so a flood degrades into prompt 429s instead of collapse.
const defaultMaxInflight = 1024

// gateway serves the HTTP/JSON API over one multiplexing coordinator.
// The request counters live in the obs registry (ob.reg): /stats reads
// the same instruments GET /metrics renders.
type gateway struct {
	co      *netsite.Coordinator
	cache   *qcache.Cache[cachedAnswer]
	opts    gwOptions
	ob      *gwObs
	coal    *coalescer    // adaptive batching for GET /reach; nil = off
	sem     chan struct{} // in-flight request slots (backpressure)
	queries *obs.Counter
	updates *obs.Counter

	rejected    *obs.Counter  // requests turned away with 429
	epoch       atomic.Uint64 // highest deployment epoch observed
	rebalances  *obs.Counter  // successful rebalance rounds
	rebalancing atomic.Bool   // single-flight latch for auto-rebalance
	syncing     atomic.Bool   // single-flight latch for catch-up replication
	syncs       *obs.Counter  // successful catch-up rounds
	snapping    atomic.Bool   // single-flight latch for checkpointing

	statsMu   sync.Mutex
	lastStats fragment.BalanceStats // latest balance seen in an update reply

	started time.Time
}

func newGateway(co *netsite.Coordinator, o gwOptions) *gateway {
	if o.maxInflight <= 0 {
		o.maxInflight = defaultMaxInflight
	}
	if o.partitioner == "" {
		o.partitioner = "edgecut"
	}
	if o.store != nil {
		co.UseSequencer(oplog.NewDurableSequencer(o.store))
	}
	ob := newGwObs(co)
	g := &gateway{
		co:         co,
		cache:      qcache.New[cachedAnswer](o.cacheCap),
		opts:       o,
		ob:         ob,
		sem:        make(chan struct{}, o.maxInflight),
		queries:    ob.reg.Counter("gateway_queries_total", "Queries served (cache hits included)."),
		updates:    ob.reg.Counter("gateway_updates_total", "Update batches applied."),
		rejected:   ob.reg.Counter("gateway_rejected_total", "Requests turned away with 429 under backpressure."),
		rebalances: ob.reg.Counter("gateway_rebalances_total", "Successful rebalance rounds."),
		syncs:      ob.reg.Counter("gateway_syncs_total", "Successful catch-up replication rounds."),
		started:    time.Now(),
	}
	if o.coalesce > 0 {
		g.coal = newCoalescer(co, o.coalesce, o.timeout)
	}
	ob.bindGateway(g)
	if o.trace {
		ob.armTracing(co, o.slowQuery)
	}
	return g
}

func (g *gateway) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /reach", g.limit(g.handleReach))
	mux.HandleFunc("GET /reachwithin", g.limit(g.handleReachWithin))
	mux.HandleFunc("GET /reachregex", g.limit(g.handleReachRegex))
	mux.HandleFunc("POST /batch", g.limit(g.handleBatch))
	mux.HandleFunc("POST /update", g.limit(g.handleUpdate))
	mux.HandleFunc("POST /rebalance", g.handleRebalance)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.Handle("GET /metrics", g.ob.reg.Handler())
	mux.HandleFunc("GET /trace/{id}", g.handleTrace)
	mux.HandleFunc("GET /traces", g.handleTraces)
	mux.HandleFunc("GET /guarantees", g.handleGuarantees)
	mux.HandleFunc("POST /flush", g.handleFlush)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// limit is the backpressure middleware: each query or update occupies one
// in-flight slot for its duration; when every slot is taken the request is
// turned away immediately with 429 and a Retry-After hint, so a traffic
// flood degrades into cheap rejections instead of piling goroutines onto
// saturated site connections. /stats, /flush and /healthz stay exempt —
// an operator must be able to look at a saturated gateway.
func (g *gateway) limit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
			h(w, r)
		default:
			g.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "gateway saturated; retry later"})
		}
	}
}

// noteEpoch keeps the gateway's view of the deployment epoch fresh from
// whatever wire traffic happens to flow (queries and updates both carry
// it).
func (g *gateway) noteEpoch(epoch uint64) {
	for {
		cur := g.epoch.Load()
		if epoch <= cur || g.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// wireCtx derives the context for one request's wire round trips,
// applying the gateway's per-request deadline when configured.
func (g *gateway) wireCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if g.opts.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), g.opts.timeout)
}

// wireError maps a failed wire round to an HTTP status: 504 when the
// gateway's deadline expired (a stalled site must not hang the client),
// 503 + Retry-After for a state split (a replica serving a different
// epoch or update-log position — e.g. a site restarted from stale files;
// the gateway kicks off catch-up replication in the background, so
// retries succeed once every replica converges), 502 for everything else.
func (g *gateway) wireError(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, netsite.ErrEpochSplit):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		go g.heal()
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// heal is the self-repair path (single-flight): catch-up replication
// brings every replica to the same update-log position — streaming the
// write-ahead log's suffix, or a whole snapshot, to the ones that fell
// behind — then realigns epochs with a forced rebalance if they still
// diverge. Works without a -wal store too: the log suffix is then
// unavailable, but a snapshot fetched from the most advanced replica
// covers any gap.
func (g *gateway) heal() {
	if !g.syncing.CompareAndSwap(false, true) {
		return
	}
	defer g.syncing.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	o := netsite.SyncOptions{Partitioner: g.opts.partitioner, Seed: g.opts.seed}
	if g.opts.store != nil {
		o.Log = g.opts.store.Log()
		o.Snapshot = func() (*oplog.Snapshot, bool) {
			s, ok, err := g.opts.store.LoadSnapshot()
			return s, ok && err == nil
		}
	}
	rep, err := g.co.SyncReplicas(ctx, o)
	if err != nil {
		return // the next split re-triggers; a dead site heals when redialed
	}
	g.syncs.Add(1)
	if rep.Rebalanced {
		// Fragment IDs changed meaning across the epoch switch; cached
		// answers keyed on the old fragmentation must go.
		g.cache.Flush()
		g.rebalances.Add(1)
	}
	g.noteEpoch(rep.Epoch)
}

// maybeSnapshot checkpoints the deployment when the write-ahead log has
// grown -snapshot-every batches past the last snapshot: a verified
// snapshot is fetched from the most advanced replica, saved, and the log
// truncated behind it (single-flight, in the background).
func (g *gateway) maybeSnapshot() {
	st := g.opts.store
	if st == nil || g.opts.snapEvery <= 0 {
		return
	}
	if g.co.Sequencer().LSN() < st.SnapshotLSN()+uint64(g.opts.snapEvery) {
		return
	}
	if !g.snapping.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer g.snapping.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		snap, err := g.co.FetchSnapshot(ctx)
		if err != nil {
			return
		}
		if err := st.SaveSnapshot(snap); err != nil {
			fmt.Fprintf(os.Stderr, "serve: snapshot at LSN %d failed: %v\n", snap.LSN, err)
		}
	}()
}

// wireJSON mirrors netsite.WireStats for responses served off the wire.
type wireJSON struct {
	BytesSent         int64 `json:"bytes_sent"`
	BytesReceived     int64 `json:"bytes_received"`
	FramesSent        int64 `json:"frames_sent"`
	FramesReceived    int64 `json:"frames_received"`
	RoundTripMicros   int64 `json:"round_trip_us"`
	FirstAnswerMicros int64 `json:"first_answer_us"`
	PartialFrames     int64 `json:"partial_frames,omitempty"`
	CancelFrames      int64 `json:"cancel_frames,omitempty"`
	EarlyTerminated   bool  `json:"early_terminated,omitempty"`
}

func toWireJSON(st netsite.WireStats) *wireJSON {
	return &wireJSON{
		BytesSent:         st.BytesSent,
		BytesReceived:     st.BytesReceived,
		FramesSent:        st.FramesSent,
		FramesReceived:    st.FramesReceived,
		RoundTripMicros:   st.RoundTrip.Microseconds(),
		FirstAnswerMicros: st.FirstAnswer.Microseconds(),
		PartialFrames:     st.PartialFrames,
		CancelFrames:      st.CancelFrames,
		EarlyTerminated:   st.EarlyTerminated,
	}
}

type queryResponse struct {
	Query   string    `json:"query"`
	Answer  bool      `json:"answer"`
	Dist    *int64    `json:"dist,omitempty"`
	Cached  bool      `json:"cached"`
	TraceID string    `json:"trace_id,omitempty"` // hex; look up via GET /trace/{id}
	Wire    *wireJSON `json:"wire,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// nodeParam parses one required node-ID query parameter.
func nodeParam(r *http.Request, name string) (graph.NodeID, bool) {
	v, err := strconv.ParseUint(r.URL.Query().Get(name), 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.NodeID(v), true
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func (g *gateway) respond(w http.ResponseWriter, class, query string, start time.Time, ans cachedAnswer, cached bool, st netsite.WireStats) {
	g.ob.observeQuery(class, start, cached, st)
	resp := queryResponse{Query: query, Answer: ans.Answer, Cached: cached}
	if ans.HasDist {
		resp.Dist = &ans.Dist
	}
	if !cached {
		resp.Wire = toWireJSON(st)
		if st.TraceID != 0 {
			resp.TraceID = strconv.FormatUint(st.TraceID, 16)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *gateway) handleReach(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	if !ok || !ok2 {
		badRequest(w, "reach needs numeric s and t")
		return
	}
	g.queries.Add(1)
	start := time.Now()
	query := "qr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + ")"
	key := qcache.ReachKey(s, t)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, "reach", query, start, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	var (
		answer  bool
		touched []int
		st      netsite.WireStats
		err     error
	)
	if g.coal != nil {
		// Adaptive batching: concurrent misses inside the -coalesce window
		// share one wire round instead of posting one each.
		var ba netsite.BatchAnswer
		ba, st, err = g.coal.reach(ctx, s, t)
		answer, touched = ba.Answer, ba.Touched
	} else {
		answer, st, err = g.co.ReachContext(ctx, s, t)
		touched = st.Touched
	}
	if err != nil {
		g.wireError(w, err)
		return
	}
	g.noteEpoch(st.Epoch)
	ans := cachedAnswer{Answer: answer}
	g.cache.PutIfGeneration(key, ans, epoch, touched)
	g.respond(w, "reach", query, start, ans, false, st)
}

func (g *gateway) handleReachWithin(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	l, err := strconv.Atoi(r.URL.Query().Get("l"))
	if !ok || !ok2 || err != nil || l < 0 {
		badRequest(w, "reachwithin needs numeric s, t and bound l >= 0")
		return
	}
	g.queries.Add(1)
	start := time.Now()
	query := "qbr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + r.URL.Query().Get("l") + ")"
	key := qcache.DistKey(s, t, l)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, "reachwithin", query, start, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	answer, dist, st, err := g.co.ReachWithinContext(ctx, s, t, l)
	if err != nil {
		g.wireError(w, err)
		return
	}
	g.noteEpoch(st.Epoch)
	// The distance is exact only when within the bound; otherwise it is the
	// solver's infinity sentinel, which callers should not see.
	ans := cachedAnswer{Answer: answer, Dist: dist, HasDist: answer}
	g.cache.PutIfGeneration(key, ans, epoch, st.Touched)
	g.respond(w, "reachwithin", query, start, ans, false, st)
}

func (g *gateway) handleReachRegex(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	expr := r.URL.Query().Get("r")
	if !ok || !ok2 || expr == "" {
		badRequest(w, "reachregex needs numeric s, t and expression r")
		return
	}
	a, err := distreach.CompileRegex(expr)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	g.queries.Add(1)
	start := time.Now()
	query := "qrr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + expr + ")"
	key := qcache.RPQKey(s, t, expr)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, "reachregex", query, start, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	answer, st, err := g.co.ReachRegexContext(ctx, s, t, a)
	if err != nil {
		g.wireError(w, err)
		return
	}
	g.noteEpoch(st.Epoch)
	ans := cachedAnswer{Answer: answer}
	g.cache.PutIfGeneration(key, ans, epoch, st.Touched)
	g.respond(w, "reachregex", query, start, ans, false, st)
}

// maxBatchQueries bounds one POST /batch request; bigger workloads should
// split into several batches (each still one frame per site).
const maxBatchQueries = 4096

// maxBatchBody bounds the POST /batch request body, so a hostile client
// cannot make the JSON decoder allocate an unbounded query slice before
// the maxBatchQueries check even runs.
const maxBatchBody = 4 << 20

// batchQueryJSON is one query of a POST /batch request. Class selects the
// query class and which extra fields apply: "reach" (s, t), "reachwithin"
// (s, t, l) or "reachregex" (s, t, r).
type batchQueryJSON struct {
	Class string  `json:"class"`
	S     *uint32 `json:"s"`
	T     *uint32 `json:"t"`
	L     *int    `json:"l,omitempty"`
	R     string  `json:"r,omitempty"`
}

type batchRequestJSON struct {
	Queries []batchQueryJSON `json:"queries"`
}

// batchResponseJSON answers a whole batch: one entry per query in request
// order, plus the single wire round's stats. Misses counts the queries
// that actually went over the wire — cached answers are stripped from the
// wire batch before it is posted.
type batchResponseJSON struct {
	Answers []queryResponse `json:"answers"`
	Misses  int             `json:"misses"`
	TraceID string          `json:"trace_id,omitempty"` // hex; the one wire round's trace
	Wire    *wireJSON       `json:"wire,omitempty"`
}

// handleBatch serves POST /batch: it answers what it can from the cache,
// ships the misses as ONE wire batch (one frame per site however many
// queries missed), and demultiplexes the answers back into request order.
func (g *gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req batchRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		badRequest(w, "batch: malformed JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "batch: empty query list")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, fmt.Sprintf("batch: %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}

	// Phase 1: validate and compile the whole batch before touching any
	// serving state, so a rejected batch leaves /stats and the cache's
	// hit/miss counters exactly as they were.
	type parsedQuery struct {
		bq    netsite.BatchQuery
		key   string
		label string
		dist  bool // ClassDist: the answer carries a distance
	}
	parsed := make([]parsedQuery, len(req.Queries))
	for i, q := range req.Queries {
		if q.S == nil || q.T == nil {
			badRequest(w, fmt.Sprintf("batch query %d: needs numeric s and t", i))
			return
		}
		s, t := graph.NodeID(*q.S), graph.NodeID(*q.T)
		p := parsedQuery{}
		switch q.Class {
		case "reach":
			p.bq = netsite.BatchQuery{Class: netsite.ClassReach, S: s, T: t}
			p.key = qcache.ReachKey(s, t)
			p.label = fmt.Sprintf("qr(%d,%d)", s, t)
		case "reachwithin":
			if q.L == nil || *q.L < 0 {
				badRequest(w, fmt.Sprintf("batch query %d: reachwithin needs bound l >= 0", i))
				return
			}
			p.bq = netsite.BatchQuery{Class: netsite.ClassDist, S: s, T: t, L: *q.L}
			p.key = qcache.DistKey(s, t, *q.L)
			p.label = fmt.Sprintf("qbr(%d,%d,%d)", s, t, *q.L)
			p.dist = true
		case "reachregex":
			if q.R == "" {
				badRequest(w, fmt.Sprintf("batch query %d: reachregex needs expression r", i))
				return
			}
			a, err := distreach.CompileRegex(q.R)
			if err != nil {
				badRequest(w, fmt.Sprintf("batch query %d: %v", i, err))
				return
			}
			p.bq = netsite.BatchQuery{Class: netsite.ClassRPQ, S: s, T: t, A: a}
			p.key = qcache.RPQKey(s, t, q.R)
			p.label = fmt.Sprintf("qrr(%d,%d,%s)", s, t, q.R)
		default:
			badRequest(w, fmt.Sprintf("batch query %d: unknown class %q (want reach, reachwithin or reachregex)", i, q.Class))
			return
		}
		parsed[i] = p
	}

	// Phase 2: answer what the cache holds and strip it from the wire
	// batch. The flush generation is snapshotted first: if a POST /flush
	// races the round trip, the computed answers must not be re-inserted —
	// they may describe the deployment the flush just invalidated.
	type pendingQuery struct {
		idx  int
		slot int // index into wireQs; duplicates share one slot
		key  string
		dist bool
	}
	answers := make([]queryResponse, len(parsed))
	wireQs := make([]netsite.BatchQuery, 0, len(parsed))
	pend := make([]pendingQuery, 0, len(parsed))
	slotByKey := make(map[string]int)
	epoch := g.cache.Generation()
	for i, p := range parsed {
		g.queries.Add(1)
		answers[i].Query = p.label
		if ans, hit := g.cache.Get(p.key); hit {
			answers[i].Answer = ans.Answer
			answers[i].Cached = true
			if ans.HasDist {
				d := ans.Dist
				answers[i].Dist = &d
			}
			continue
		}
		// Duplicate keys within the batch travel (and evaluate) once; the
		// answer fans out to every index that asked.
		slot, dup := slotByKey[p.key]
		if !dup {
			slot = len(wireQs)
			slotByKey[p.key] = slot
			wireQs = append(wireQs, p.bq)
		}
		pend = append(pend, pendingQuery{idx: i, slot: slot, key: p.key, dist: p.dist})
	}

	// Phase 3: one wire round for all the misses, demultiplexed back into
	// request order.
	var wj *wireJSON
	var traceID string
	if len(wireQs) > 0 {
		ctx, cancel := g.wireCtx(r)
		defer cancel()
		res, st, err := g.co.BatchContext(ctx, wireQs)
		if err != nil {
			g.wireError(w, err)
			return
		}
		g.ob.observeQuery("batch", start, false, st)
		g.noteEpoch(st.Epoch)
		for _, p := range pend {
			ans := cachedAnswer{Answer: res[p.slot].Answer}
			if p.dist {
				ans.Dist = res[p.slot].Dist
				ans.HasDist = res[p.slot].Answer
			}
			g.cache.PutIfGeneration(p.key, ans, epoch, res[p.slot].Touched)
			answers[p.idx].Answer = ans.Answer
			if ans.HasDist {
				d := ans.Dist
				answers[p.idx].Dist = &d
			}
		}
		wj = toWireJSON(st)
		if st.TraceID != 0 {
			traceID = strconv.FormatUint(st.TraceID, 16)
		}
	} else {
		g.ob.observeQuery("batch", start, true, netsite.WireStats{})
	}
	writeJSON(w, http.StatusOK, batchResponseJSON{Answers: answers, Misses: len(wireQs), TraceID: traceID, Wire: wj})
}

// updateOpJSON is one mutation of a POST /update batch. Op selects the
// kind and which fields apply: "insert"/"delete" (edge: u, v),
// "insertnode" (label, optional frag) or "deletenode" (u).
type updateOpJSON struct {
	Op    string  `json:"op"`
	U     *uint32 `json:"u,omitempty"`
	V     *uint32 `json:"v,omitempty"`
	Label string  `json:"label,omitempty"`
	Frag  *int    `json:"frag,omitempty"`
}

// updateRequestJSON is the body of POST /update: either the legacy
// single-edge form (op/u/v at the top level) or a transactional batch in
// "ops" — one wire frame, one write lock, one unioned dirty set.
type updateRequestJSON struct {
	updateOpJSON
	Ops []updateOpJSON `json:"ops,omitempty"`
}

// maxUpdateOps bounds one POST /update batch.
const maxUpdateOps = 1024

// balanceJSON mirrors fragment.BalanceStats for /update, /rebalance and
// /stats responses.
type balanceJSON struct {
	Fragments  int     `json:"fragments"`
	MaxSize    int     `json:"max_size"`
	MinSize    int     `json:"min_size"`
	MeanSize   float64 `json:"mean_size"`
	Skew       float64 `json:"skew"`
	Vf         int     `json:"vf"`
	CrossEdges int     `json:"cross_edges"`
	Epoch      uint64  `json:"epoch"`
}

func toBalanceJSON(bs fragment.BalanceStats) *balanceJSON {
	return &balanceJSON{
		Fragments:  bs.Fragments,
		MaxSize:    bs.MaxSize,
		MinSize:    bs.MinSize,
		MeanSize:   bs.MeanSize(),
		Skew:       bs.Skew(),
		Vf:         bs.Vf,
		CrossEdges: bs.CrossEdges,
		Epoch:      bs.Epoch,
	}
}

// updateResponseJSON reports the effect of one update batch: whether the
// graph changed, which fragments were dirtied, the IDs handed to inserted
// nodes, how many cached answers were evicted (entries whose evaluation
// touched none of the dirtied fragments keep serving hits), and the
// post-update balance of the deployment.
type updateResponseJSON struct {
	Changed bool         `json:"changed"`
	Dirty   []int        `json:"dirty"`
	NewIDs  []uint32     `json:"new_ids,omitempty"`
	Evicted int          `json:"evicted"`
	LSN     uint64       `json:"lsn"`
	Missed  []int        `json:"missed,omitempty"`
	Balance *balanceJSON `json:"balance,omitempty"`
	Wire    *wireJSON    `json:"wire"`
}

// parseUpdateOps converts the JSON body into wire ops.
func parseUpdateOps(req updateRequestJSON) ([]netsite.Op, error) {
	raw := req.Ops
	if len(raw) == 0 {
		raw = []updateOpJSON{req.updateOpJSON}
	}
	if len(raw) > maxUpdateOps {
		return nil, fmt.Errorf("update: %d ops exceeds the limit of %d", len(raw), maxUpdateOps)
	}
	ops := make([]netsite.Op, 0, len(raw))
	for i, o := range raw {
		switch o.Op {
		case "insert", "delete":
			if o.U == nil || o.V == nil {
				return nil, fmt.Errorf("update op %d: %s needs numeric u and v", i, o.Op)
			}
			kind := netsite.OpInsertEdge
			if o.Op == "delete" {
				kind = netsite.OpDeleteEdge
			}
			ops = append(ops, netsite.Op{Kind: kind, U: graph.NodeID(*o.U), V: graph.NodeID(*o.V)})
		case "insertnode":
			frag := -1
			if o.Frag != nil {
				frag = *o.Frag
			}
			ops = append(ops, netsite.Op{Kind: netsite.OpInsertNode, Label: o.Label, Frag: frag})
		case "deletenode":
			if o.U == nil {
				return nil, fmt.Errorf("update op %d: deletenode needs numeric u", i)
			}
			ops = append(ops, netsite.Op{Kind: netsite.OpDeleteNode, U: graph.NodeID(*o.U)})
		default:
			return nil, fmt.Errorf("update op %d: unknown op %q (want insert, delete, insertnode or deletenode)", i, o.Op)
		}
	}
	return ops, nil
}

// handleUpdate serves POST /update: it routes the mutation batch to the
// sites as one transactional frame, evicts exactly the cached answers
// whose evaluation touched a dirtied fragment — the per-fragment
// invalidation that replaces a wholesale flush on live graphs — and, when
// the reply's balance stats cross the configured skew threshold, kicks
// off an automatic rebalance in the background.
func (g *gateway) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		badRequest(w, "update: malformed JSON: "+err.Error())
		return
	}
	ops, err := parseUpdateOps(req)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	g.updates.Add(1)
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	res, st, err := g.co.ApplyContext(ctx, ops)
	if err != nil {
		// The update frame may already have reached (some) sites before the
		// round failed or timed out, so the cache can no longer be trusted:
		// flush conservatively rather than serve pre-update answers forever.
		g.cache.Flush()
		g.wireError(w, err)
		return
	}
	g.noteEpoch(res.Epoch)
	g.statsMu.Lock()
	g.lastStats = res.Stats
	g.statsMu.Unlock()
	g.ob.setDeployment(res.Stats)
	evicted := 0
	if res.Changed {
		evicted = g.cache.EvictFragments(res.Dirty)
	}
	dirty := res.Dirty
	if dirty == nil {
		dirty = []int{}
	}
	newIDs := make([]uint32, 0, len(res.NewIDs))
	for _, id := range res.NewIDs {
		newIDs = append(newIDs, uint32(id))
	}
	writeJSON(w, http.StatusOK, updateResponseJSON{
		Changed: res.Changed,
		Dirty:   dirty,
		NewIDs:  newIDs,
		Evicted: evicted,
		LSN:     res.LSN,
		Missed:  res.Missed,
		Balance: toBalanceJSON(res.Stats),
		Wire:    toWireJSON(st),
	})
	// A laggard missed this (sequenced, logged) batch — catch it up in the
	// background so queries stop splitting as soon as possible.
	if len(res.Missed) > 0 {
		go g.heal()
	}
	g.maybeSnapshot()
	// Auto-rebalance: the update reply carried the deployment's balance
	// for free; if churn has skewed it past the threshold, restore the
	// paper's |Fm|/|Vf| parameters in the background (single-flight).
	if g.opts.skew > 0 && res.Stats.Skew() >= g.opts.skew {
		go g.rebalance()
	}
}

// rebalanceResponseJSON reports a rebalance round.
type rebalanceResponseJSON struct {
	Rebalanced bool         `json:"rebalanced"`
	Epoch      uint64       `json:"epoch"`
	Balance    *balanceJSON `json:"balance"`
}

// errRebalanceInFlight reports that another rebalance round is already
// running; the caller's intent is being served by it.
var errRebalanceInFlight = errors.New("rebalance already in flight")

// rebalance runs one re-fragmentation round (single-flight: concurrent
// triggers collapse into one) and flushes the answer cache — fragment IDs
// mean different things across epochs, so per-fragment eviction cannot
// carry over; the generation bump stops in-flight rounds from
// resurrecting pre-rebalance answers.
func (g *gateway) rebalance() (netsite.RebalanceResult, error) {
	if !g.rebalancing.CompareAndSwap(false, true) {
		return netsite.RebalanceResult{}, errRebalanceInFlight
	}
	defer g.rebalancing.Store(false)
	// A rebuild of a large deployment outlives any per-query deadline;
	// give the round its own generous budget.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var res netsite.RebalanceResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		epoch := g.epoch.Load() + 1
		res, _, err = g.co.RebalanceContext(ctx, epoch, g.opts.partitioner, g.opts.seed+epoch)
		if err != nil {
			if errors.Is(err, netsite.ErrReplicaDiverged) {
				// The epoch may not have been fresh for every replica (one
				// kept an older build instead of rebuilding). Sync to the
				// highest epoch the replies reported and force a strictly
				// higher one where everyone rebuilds: if the fingerprints
				// still differ then, the divergence is real — a replica's
				// graph state is stale and needs re-seeding.
				g.noteEpoch(epoch)
				g.noteEpoch(res.Epoch)
				continue
			}
			return res, err
		}
		g.noteEpoch(res.Epoch)
		if res.Applied {
			g.cache.Flush()
			g.rebalances.Add(1)
			g.statsMu.Lock()
			g.lastStats = res.Stats
			g.statsMu.Unlock()
			g.ob.setDeployment(res.Stats)
			return res, nil
		}
		// The deployment was already past the requested epoch (another
		// gateway rebalanced): sync and try once more.
	}
	return res, err
}

// handleRebalance serves POST /rebalance: the manual trigger for the same
// re-fragmentation the skew threshold fires automatically. Colliding with
// an in-flight round is not a failure — the deployment is rebalancing as
// asked — so that maps to 409 + Retry-After rather than a gateway error.
func (g *gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	res, err := g.rebalance()
	if errors.Is(err, errRebalanceInFlight) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	if err != nil {
		g.wireError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rebalanceResponseJSON{
		Rebalanced: res.Applied,
		Epoch:      res.Epoch,
		Balance:    toBalanceJSON(res.Stats),
	})
}

func (g *gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := g.cache.Stats()
	g.statsMu.Lock()
	last := g.lastStats
	g.statsMu.Unlock()
	var balance *balanceJSON
	if last.Fragments > 0 {
		balance = toBalanceJSON(last)
	}
	lsn := g.co.Sequencer().LSN()
	replicaLSNs := g.co.ReplicaLSNs()
	var maxLag uint64
	for _, l := range replicaLSNs {
		if l < lsn && lsn-l > maxLag {
			maxLag = lsn - l
		}
	}
	durability := map[string]any{
		"lsn":          lsn,
		"replica_lsns": replicaLSNs,
		"max_lag":      maxLag,
		"syncs":        g.syncs.Value(),
	}
	if st := g.opts.store; st != nil {
		segs, bytes := st.Log().Stats()
		durability["wal"] = map[string]any{
			"snapshot_lsn":  st.SnapshotLSN(),
			"segments":      segs,
			"segment_bytes": bytes,
			"fsyncs":        st.Log().SyncCount(),
		}
	}
	var reachIndex map[string]any
	if g.opts.idxStats != nil {
		st := g.opts.idxStats()
		reachIndex = map[string]any{
			"enabled":             st.Enabled,
			"budget_bytes":        st.BudgetBytes,
			"policy":              st.Policy,
			"label_bytes":         st.LabelBytes,
			"fragments_indexed":   st.Fragments,
			"hits":                st.Hits,
			"fallbacks":           st.Fallbacks,
			"hit_rate":            st.HitRate(),
			"rebuilds":            st.Rebuilds,
			"last_rebuild_us":     st.LastBuild.Microseconds(),
			"total_rebuild_us":    st.TotalBuild.Microseconds(),
			"per_policy_counters": st.PerPolicy,
		}
	}
	ast := g.co.AnytimeStats()
	anytime := map[string]any{
		"enabled":            g.co.Anytime(),
		"early_terminations": ast.EarlyTerminations,
		"cancels_sent":       ast.CancelsSent,
		"partial_frames":     ast.PartialFrames,
		// Per-site straggler histogram: rounds decided before that site's
		// final arrived. The site dominating it is the one slowing full
		// rounds down.
		"stragglers": ast.Stragglers,
	}
	var coalesce map[string]any
	if g.coal != nil {
		coalesce = g.coal.statsJSON()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":        g.queries.Value(),
		"updates":        g.updates.Value(),
		"epoch":          g.epoch.Load(),
		"rebalances":     g.rebalances.Value(),
		"uptime_seconds": int64(time.Since(g.started).Seconds()),
		"anytime":        anytime,
		"coalesce":       coalesce,
		"backpressure": map[string]any{
			"max_inflight": cap(g.sem),
			"inflight":     len(g.sem),
			"rejected":     g.rejected.Value(),
		},
		"durability": durability,
		"balance":    balance,
		"reachindex": reachIndex,
		"cache": map[string]any{
			"hits":      hits,
			"misses":    misses,
			"entries":   g.cache.Len(),
			"evictions": g.cache.Evictions(),
		},
	})
}

func (g *gateway) handleFlush(w http.ResponseWriter, r *http.Request) {
	g.cache.Flush()
	writeJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}
