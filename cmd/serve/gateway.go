package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"distreach"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/qcache"
)

// cachedAnswer is the value stored per query key: the Boolean answer plus
// the exact distance for bounded queries.
type cachedAnswer struct {
	Answer  bool
	Dist    int64
	HasDist bool
}

// gateway serves the HTTP/JSON API over one multiplexing coordinator.
type gateway struct {
	co      *netsite.Coordinator
	cache   *qcache.Cache[cachedAnswer]
	timeout time.Duration // per-request wire deadline; 0 = none
	queries atomic.Int64
	updates atomic.Int64
	started time.Time
}

func newGateway(co *netsite.Coordinator, cacheCap int, timeout time.Duration) *gateway {
	return &gateway{co: co, cache: qcache.New[cachedAnswer](cacheCap), timeout: timeout, started: time.Now()}
}

func (g *gateway) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /reach", g.handleReach)
	mux.HandleFunc("GET /reachwithin", g.handleReachWithin)
	mux.HandleFunc("GET /reachregex", g.handleReachRegex)
	mux.HandleFunc("POST /batch", g.handleBatch)
	mux.HandleFunc("POST /update", g.handleUpdate)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("POST /flush", g.handleFlush)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// wireCtx derives the context for one request's wire round trips,
// applying the gateway's per-request deadline when configured.
func (g *gateway) wireCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if g.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), g.timeout)
}

// wireError maps a failed wire round to an HTTP status: 504 when the
// gateway's deadline expired (a stalled site must not hang the client),
// 502 for everything else.
func wireError(w http.ResponseWriter, err error) {
	status := http.StatusBadGateway
	if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// wireJSON mirrors netsite.WireStats for responses served off the wire.
type wireJSON struct {
	BytesSent       int64 `json:"bytes_sent"`
	BytesReceived   int64 `json:"bytes_received"`
	FramesSent      int64 `json:"frames_sent"`
	FramesReceived  int64 `json:"frames_received"`
	RoundTripMicros int64 `json:"round_trip_us"`
}

func toWireJSON(st netsite.WireStats) *wireJSON {
	return &wireJSON{
		BytesSent:       st.BytesSent,
		BytesReceived:   st.BytesReceived,
		FramesSent:      st.FramesSent,
		FramesReceived:  st.FramesReceived,
		RoundTripMicros: st.RoundTrip.Microseconds(),
	}
}

type queryResponse struct {
	Query  string    `json:"query"`
	Answer bool      `json:"answer"`
	Dist   *int64    `json:"dist,omitempty"`
	Cached bool      `json:"cached"`
	Wire   *wireJSON `json:"wire,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// nodeParam parses one required node-ID query parameter.
func nodeParam(r *http.Request, name string) (graph.NodeID, bool) {
	v, err := strconv.ParseUint(r.URL.Query().Get(name), 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.NodeID(v), true
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func (g *gateway) respond(w http.ResponseWriter, query string, ans cachedAnswer, cached bool, st netsite.WireStats) {
	resp := queryResponse{Query: query, Answer: ans.Answer, Cached: cached}
	if ans.HasDist {
		resp.Dist = &ans.Dist
	}
	if !cached {
		resp.Wire = toWireJSON(st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *gateway) handleReach(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	if !ok || !ok2 {
		badRequest(w, "reach needs numeric s and t")
		return
	}
	g.queries.Add(1)
	query := "qr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + ")"
	key := qcache.ReachKey(s, t)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	answer, st, err := g.co.ReachContext(ctx, s, t)
	if err != nil {
		wireError(w, err)
		return
	}
	ans := cachedAnswer{Answer: answer}
	g.cache.PutIfGeneration(key, ans, epoch, st.Touched)
	g.respond(w, query, ans, false, st)
}

func (g *gateway) handleReachWithin(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	l, err := strconv.Atoi(r.URL.Query().Get("l"))
	if !ok || !ok2 || err != nil || l < 0 {
		badRequest(w, "reachwithin needs numeric s, t and bound l >= 0")
		return
	}
	g.queries.Add(1)
	query := "qbr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + r.URL.Query().Get("l") + ")"
	key := qcache.DistKey(s, t, l)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	answer, dist, st, err := g.co.ReachWithinContext(ctx, s, t, l)
	if err != nil {
		wireError(w, err)
		return
	}
	// The distance is exact only when within the bound; otherwise it is the
	// solver's infinity sentinel, which callers should not see.
	ans := cachedAnswer{Answer: answer, Dist: dist, HasDist: answer}
	g.cache.PutIfGeneration(key, ans, epoch, st.Touched)
	g.respond(w, query, ans, false, st)
}

func (g *gateway) handleReachRegex(w http.ResponseWriter, r *http.Request) {
	s, ok := nodeParam(r, "s")
	t, ok2 := nodeParam(r, "t")
	expr := r.URL.Query().Get("r")
	if !ok || !ok2 || expr == "" {
		badRequest(w, "reachregex needs numeric s, t and expression r")
		return
	}
	a, err := distreach.CompileRegex(expr)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	g.queries.Add(1)
	query := "qrr(" + r.URL.Query().Get("s") + "," + r.URL.Query().Get("t") + "," + expr + ")"
	key := qcache.RPQKey(s, t, expr)
	if ans, hit := g.cache.Get(key); hit {
		g.respond(w, query, ans, true, netsite.WireStats{})
		return
	}
	epoch := g.cache.Generation()
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	answer, st, err := g.co.ReachRegexContext(ctx, s, t, a)
	if err != nil {
		wireError(w, err)
		return
	}
	ans := cachedAnswer{Answer: answer}
	g.cache.PutIfGeneration(key, ans, epoch, st.Touched)
	g.respond(w, query, ans, false, st)
}

// maxBatchQueries bounds one POST /batch request; bigger workloads should
// split into several batches (each still one frame per site).
const maxBatchQueries = 4096

// maxBatchBody bounds the POST /batch request body, so a hostile client
// cannot make the JSON decoder allocate an unbounded query slice before
// the maxBatchQueries check even runs.
const maxBatchBody = 4 << 20

// batchQueryJSON is one query of a POST /batch request. Class selects the
// query class and which extra fields apply: "reach" (s, t), "reachwithin"
// (s, t, l) or "reachregex" (s, t, r).
type batchQueryJSON struct {
	Class string  `json:"class"`
	S     *uint32 `json:"s"`
	T     *uint32 `json:"t"`
	L     *int    `json:"l,omitempty"`
	R     string  `json:"r,omitempty"`
}

type batchRequestJSON struct {
	Queries []batchQueryJSON `json:"queries"`
}

// batchResponseJSON answers a whole batch: one entry per query in request
// order, plus the single wire round's stats. Misses counts the queries
// that actually went over the wire — cached answers are stripped from the
// wire batch before it is posted.
type batchResponseJSON struct {
	Answers []queryResponse `json:"answers"`
	Misses  int             `json:"misses"`
	Wire    *wireJSON       `json:"wire,omitempty"`
}

// handleBatch serves POST /batch: it answers what it can from the cache,
// ships the misses as ONE wire batch (one frame per site however many
// queries missed), and demultiplexes the answers back into request order.
func (g *gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		badRequest(w, "batch: malformed JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "batch: empty query list")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, fmt.Sprintf("batch: %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}

	// Phase 1: validate and compile the whole batch before touching any
	// serving state, so a rejected batch leaves /stats and the cache's
	// hit/miss counters exactly as they were.
	type parsedQuery struct {
		bq    netsite.BatchQuery
		key   string
		label string
		dist  bool // ClassDist: the answer carries a distance
	}
	parsed := make([]parsedQuery, len(req.Queries))
	for i, q := range req.Queries {
		if q.S == nil || q.T == nil {
			badRequest(w, fmt.Sprintf("batch query %d: needs numeric s and t", i))
			return
		}
		s, t := graph.NodeID(*q.S), graph.NodeID(*q.T)
		p := parsedQuery{}
		switch q.Class {
		case "reach":
			p.bq = netsite.BatchQuery{Class: netsite.ClassReach, S: s, T: t}
			p.key = qcache.ReachKey(s, t)
			p.label = fmt.Sprintf("qr(%d,%d)", s, t)
		case "reachwithin":
			if q.L == nil || *q.L < 0 {
				badRequest(w, fmt.Sprintf("batch query %d: reachwithin needs bound l >= 0", i))
				return
			}
			p.bq = netsite.BatchQuery{Class: netsite.ClassDist, S: s, T: t, L: *q.L}
			p.key = qcache.DistKey(s, t, *q.L)
			p.label = fmt.Sprintf("qbr(%d,%d,%d)", s, t, *q.L)
			p.dist = true
		case "reachregex":
			if q.R == "" {
				badRequest(w, fmt.Sprintf("batch query %d: reachregex needs expression r", i))
				return
			}
			a, err := distreach.CompileRegex(q.R)
			if err != nil {
				badRequest(w, fmt.Sprintf("batch query %d: %v", i, err))
				return
			}
			p.bq = netsite.BatchQuery{Class: netsite.ClassRPQ, S: s, T: t, A: a}
			p.key = qcache.RPQKey(s, t, q.R)
			p.label = fmt.Sprintf("qrr(%d,%d,%s)", s, t, q.R)
		default:
			badRequest(w, fmt.Sprintf("batch query %d: unknown class %q (want reach, reachwithin or reachregex)", i, q.Class))
			return
		}
		parsed[i] = p
	}

	// Phase 2: answer what the cache holds and strip it from the wire
	// batch. The flush generation is snapshotted first: if a POST /flush
	// races the round trip, the computed answers must not be re-inserted —
	// they may describe the deployment the flush just invalidated.
	type pendingQuery struct {
		idx  int
		slot int // index into wireQs; duplicates share one slot
		key  string
		dist bool
	}
	answers := make([]queryResponse, len(parsed))
	wireQs := make([]netsite.BatchQuery, 0, len(parsed))
	pend := make([]pendingQuery, 0, len(parsed))
	slotByKey := make(map[string]int)
	epoch := g.cache.Generation()
	for i, p := range parsed {
		g.queries.Add(1)
		answers[i].Query = p.label
		if ans, hit := g.cache.Get(p.key); hit {
			answers[i].Answer = ans.Answer
			answers[i].Cached = true
			if ans.HasDist {
				d := ans.Dist
				answers[i].Dist = &d
			}
			continue
		}
		// Duplicate keys within the batch travel (and evaluate) once; the
		// answer fans out to every index that asked.
		slot, dup := slotByKey[p.key]
		if !dup {
			slot = len(wireQs)
			slotByKey[p.key] = slot
			wireQs = append(wireQs, p.bq)
		}
		pend = append(pend, pendingQuery{idx: i, slot: slot, key: p.key, dist: p.dist})
	}

	// Phase 3: one wire round for all the misses, demultiplexed back into
	// request order.
	var wj *wireJSON
	if len(wireQs) > 0 {
		ctx, cancel := g.wireCtx(r)
		defer cancel()
		res, st, err := g.co.BatchContext(ctx, wireQs)
		if err != nil {
			wireError(w, err)
			return
		}
		for _, p := range pend {
			ans := cachedAnswer{Answer: res[p.slot].Answer}
			if p.dist {
				ans.Dist = res[p.slot].Dist
				ans.HasDist = res[p.slot].Answer
			}
			g.cache.PutIfGeneration(p.key, ans, epoch, res[p.slot].Touched)
			answers[p.idx].Answer = ans.Answer
			if ans.HasDist {
				d := ans.Dist
				answers[p.idx].Dist = &d
			}
		}
		wj = toWireJSON(st)
	}
	writeJSON(w, http.StatusOK, batchResponseJSON{Answers: answers, Misses: len(wireQs), Wire: wj})
}

// updateRequestJSON is the body of POST /update: one edge operation.
type updateRequestJSON struct {
	Op string  `json:"op"` // "insert" | "delete"
	U  *uint32 `json:"u"`
	V  *uint32 `json:"v"`
}

// updateResponseJSON reports the effect of one edge update: whether the
// graph changed, which fragments were dirtied, and how many cached
// answers that evicted (entries whose evaluation touched none of the
// dirtied fragments keep serving hits).
type updateResponseJSON struct {
	Changed bool      `json:"changed"`
	Dirty   []int     `json:"dirty"`
	Evicted int       `json:"evicted"`
	Wire    *wireJSON `json:"wire"`
}

// handleUpdate serves POST /update: it routes the edge operation to the
// sites, then evicts exactly the cached answers whose evaluation touched a
// dirtied fragment — the per-fragment invalidation that replaces a
// wholesale flush on live graphs.
func (g *gateway) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		badRequest(w, "update: malformed JSON: "+err.Error())
		return
	}
	var op netsite.UpdateOp
	switch req.Op {
	case "insert":
		op = netsite.UpdateInsert
	case "delete":
		op = netsite.UpdateDelete
	default:
		badRequest(w, fmt.Sprintf("update: unknown op %q (want insert or delete)", req.Op))
		return
	}
	if req.U == nil || req.V == nil {
		badRequest(w, "update: needs numeric u and v")
		return
	}
	g.updates.Add(1)
	ctx, cancel := g.wireCtx(r)
	defer cancel()
	res, st, err := g.co.UpdateContext(ctx, op, graph.NodeID(*req.U), graph.NodeID(*req.V))
	if err != nil {
		// The update frame may already have reached (some) sites before the
		// round failed or timed out, so the cache can no longer be trusted:
		// flush conservatively rather than serve pre-update answers forever.
		g.cache.Flush()
		wireError(w, err)
		return
	}
	evicted := 0
	if res.Changed {
		evicted = g.cache.EvictFragments(res.Dirty)
	}
	dirty := res.Dirty
	if dirty == nil {
		dirty = []int{}
	}
	writeJSON(w, http.StatusOK, updateResponseJSON{
		Changed: res.Changed,
		Dirty:   dirty,
		Evicted: evicted,
		Wire:    toWireJSON(st),
	})
}

func (g *gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := g.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":        g.queries.Load(),
		"updates":        g.updates.Load(),
		"uptime_seconds": int64(time.Since(g.started).Seconds()),
		"cache": map[string]any{
			"hits":      hits,
			"misses":    misses,
			"entries":   g.cache.Len(),
			"evictions": g.cache.Evictions(),
		},
	})
}

func (g *gateway) handleFlush(w http.ResponseWriter, r *http.Request) {
	g.cache.Flush()
	writeJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}
