package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGatewayMultiOpUpdate: a transactional batch in one POST /update body
// — insert a node, then wire it up in a second batch — and the response
// carries new IDs and balance stats.
func TestGatewayMultiOpUpdate(t *testing.T) {
	_, g, srv := testGateway(t)
	m := postJSON(t, srv.URL+"/update", map[string]any{
		"ops": []map[string]any{
			{"op": "insertnode", "label": "A"},
			{"op": "insert", "u": 0, "v": 42},
		},
	}, 200)
	if m["changed"] != true {
		t.Fatalf("batch reported no change: %v", m)
	}
	ids, ok := m["new_ids"].([]any)
	if !ok || len(ids) != 1 {
		t.Fatalf("new_ids = %v, want one ID", m["new_ids"])
	}
	id := int(ids[0].(float64))
	if id != g.NumNodes()-1 {
		t.Fatalf("new node ID %d, want %d", id, g.NumNodes()-1)
	}
	bal, ok := m["balance"].(map[string]any)
	if !ok || bal["fragments"].(float64) != 3 {
		t.Fatalf("balance stats missing or wrong: %v", m["balance"])
	}
	// Wire the new node in and query through it.
	postJSON(t, srv.URL+"/update", map[string]any{
		"ops": []map[string]any{
			{"op": "insert", "u": 5, "v": id},
			{"op": "insert", "u": id, "v": 7},
		},
	}, 200)
	qm := getJSON(t, srv.URL+"/reach?s=5&t="+strconv.Itoa(id), 200)
	if qm["answer"] != true {
		t.Fatalf("edge to inserted node not visible: %v", qm)
	}
	// A batch with an invalid op is rejected wholesale with 400.
	em := postJSON(t, srv.URL+"/update", map[string]any{
		"ops": []map[string]any{
			{"op": "insert", "u": 0, "v": 1},
			{"op": "teleport", "u": 1},
		},
	}, 400)
	if em["error"] == "" {
		t.Fatal("rejected batch should explain itself")
	}
	// Legacy single-edge body still works.
	lm := postJSON(t, srv.URL+"/update", map[string]any{"op": "delete", "u": 5, "v": float64(id)}, 200)
	if lm["changed"] != true {
		t.Fatalf("legacy single-edge update failed: %v", lm)
	}
}

// TestGatewayRebalanceEndpoint: POST /rebalance re-fragments the
// deployment, bumps the epoch, flushes the cache generation, and /stats
// reflects it all.
func TestGatewayRebalanceEndpoint(t *testing.T) {
	gw, g, srv := testGateway(t)
	// Warm the cache with one query.
	getJSON(t, srv.URL+"/reach?s=1&t=2", 200)
	if gw.cache.Len() == 0 {
		t.Fatal("cache did not warm")
	}
	m := postJSON(t, srv.URL+"/rebalance", map[string]any{}, 200)
	if m["rebalanced"] != true {
		t.Fatalf("rebalance did not apply: %v", m)
	}
	if m["epoch"].(float64) != 1 {
		t.Fatalf("epoch = %v, want 1", m["epoch"])
	}
	if gw.cache.Len() != 0 {
		t.Fatal("rebalance must flush the answer cache")
	}
	// Answers stay correct on the new fragmentation.
	for q := 0; q < 20; q++ {
		s, tt := q%80, (q*17)%80
		qm := getJSON(t, srv.URL+"/reach?s="+strconv.Itoa(s)+"&t="+strconv.Itoa(tt), 200)
		if got, want := qm["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
			t.Fatalf("qr(%d,%d) after rebalance: http=%v oracle=%v", s, tt, got, want)
		}
	}
	sm := getJSON(t, srv.URL+"/stats", 200)
	if sm["epoch"].(float64) != 1 || sm["rebalances"].(float64) != 1 {
		t.Fatalf("stats out of date after rebalance: epoch=%v rebalances=%v", sm["epoch"], sm["rebalances"])
	}
}

// TestGatewayAutoRebalanceOnSkew: with a skew threshold configured,
// sustained skewed churn through POST /update triggers a rebalance with
// no manual call.
func TestGatewayAutoRebalanceOnSkew(t *testing.T) {
	const blocks, size = 4, 40
	g := gen.Communities(gen.CommunitiesConfig{Communities: blocks, Size: size, InDegree: 4, Seed: 67})
	fr, err := fragment.Contiguous(g, blocks)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, skew: 1.5, partitioner: "edgecut", seed: 68})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}()
	// Hammer block 0 with internal edges until fragment 0 bloats past the
	// threshold; every update reply re-checks the skew.
	rng := gen.NewRNG(69)
	for i := 0; i < 400 && gw.rebalances.Value() == 0; i++ {
		u, v := rng.Intn(size), rng.Intn(size)
		postJSON(t, srv.URL+"/update", map[string]any{"op": "insert", "u": u, "v": v}, 200)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.rebalances.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if gw.rebalances.Value() == 0 {
		t.Fatal("skewed churn never triggered an automatic rebalance")
	}
	sm := getJSON(t, srv.URL+"/stats", 200)
	if sm["epoch"].(float64) < 1 {
		t.Fatalf("epoch did not advance: %v", sm["epoch"])
	}
	// The post-rebalance deployment still answers correctly.
	for q := 0; q < 10; q++ {
		s, tt := rng.Intn(g.NumNodes()), rng.Intn(g.NumNodes())
		qm := getJSON(t, srv.URL+"/reach?s="+strconv.Itoa(s)+"&t="+strconv.Itoa(tt), 200)
		if got, want := qm["answer"].(bool), g.Reachable(graph.NodeID(s), graph.NodeID(tt)); got != want {
			t.Fatalf("qr(%d,%d) after auto-rebalance: http=%v oracle=%v", s, tt, got, want)
		}
	}
}

// TestGatewayBackpressure: when every in-flight slot is taken, further
// queries get 429 + Retry-After immediately, /stats counts the
// rejections, and the gateway recovers once load drains.
func TestGatewayBackpressure(t *testing.T) {
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 160, Labels: labels, Seed: 63})
	fr, err := fragment.Random(g, 2, 63)
	if err != nil {
		t.Fatal(err)
	}
	// Slow sites hold queries in flight long enough to fill the slots.
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, maxInflight: 2})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}()

	var wg sync.WaitGroup
	saw429 := make(chan http.Header, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/reach?s=" + strconv.Itoa(w) + "&t=" + strconv.Itoa(39-w))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				select {
				case saw429 <- resp.Header:
				default:
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(w)
	}
	wg.Wait()
	select {
	case h := <-saw429:
		if h.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	default:
		t.Fatal("8 concurrent queries against 2 slots produced no 429")
	}
	if gw.rejected.Value() == 0 {
		t.Fatal("rejection counter did not move")
	}
	// /stats stays reachable under saturation and reports the counters.
	sm := getJSON(t, srv.URL+"/stats", 200)
	bp := sm["backpressure"].(map[string]any)
	if bp["max_inflight"].(float64) != 2 || bp["rejected"].(float64) == 0 {
		t.Fatalf("backpressure stats wrong: %v", bp)
	}
	// Load drained: queries flow again.
	getJSON(t, srv.URL+"/reach?s=0&t=39", 200)
}

// TestGatewayHealsEpochSplit: a replica that fell behind on epochs (a
// site restarted from its original files after the deployment had
// rebalanced) makes query rounds fail with an epoch split. The gateway
// must answer 503 + Retry-After, kick off a re-sync rebalance in the
// background, and serve correct answers again once every replica reaches
// the fresh epoch.
func TestGatewayHealsEpochSplit(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 240, Labels: []string{"A", "B"}, Seed: 91})
	assign := make([]int, 60)
	for v := range assign {
		assign[v] = v % 2
	}
	// Two sites with independent replicas over identical graph state — the
	// separate-process deployment shape.
	frA, err := fragment.Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	frB, err := fragment.Build(g.Clone(), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := fragment.NewReplica(frA), fragment.NewReplica(frB)
	siteA, err := netsite.NewSiteReplica("127.0.0.1:0", repA, 0, netsite.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := netsite.NewSiteReplica("127.0.0.1:0", repB, 1, netsite.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial([]string{siteA.Addr(), siteB.Addr()}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, partitioner: "edgecut", seed: 92})
	srv := httptest.NewServer(gw.routes())
	defer func() {
		srv.Close()
		co.Close()
		siteA.Close()
		siteB.Close()
	}()

	// Site A rebalances to epoch 1 behind the gateway's back (with a
	// strategy the gateway would not pick, so the epoch-1 builds genuinely
	// differ); site B stays at 0 — the restarted-stale-site shape.
	if _, err := repA.Rebalance(1, fragment.ContiguousPartitioner{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/reach?s=0&t=59")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("split-epoch query got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The background re-sync realigns both replicas at a fresh epoch; the
	// retried query must succeed and be correct.
	deadline := time.Now().Add(5 * time.Second)
	healed := false
	for time.Now().Before(deadline) {
		r2, err := http.Get(srv.URL + "/reach?s=0&t=59")
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode == http.StatusOK {
			var m map[string]any
			if err := json.NewDecoder(r2.Body).Decode(&m); err != nil {
				t.Fatal(err)
			}
			r2.Body.Close()
			if got, want := m["answer"].(bool), g.Reachable(0, 59); got != want {
				t.Fatalf("post-heal qr(0,59) = %v, oracle %v", got, want)
			}
			healed = true
			break
		}
		r2.Body.Close()
		time.Sleep(20 * time.Millisecond)
	}
	if !healed {
		t.Fatal("gateway never healed the epoch split")
	}
	if _, eA := repA.Current(); eA < 2 {
		t.Fatalf("replica A epoch %d, want >= 2 after re-sync", eA)
	}
	if _, eB := repB.Current(); eB < 2 {
		t.Fatalf("replica B epoch %d, want >= 2 after re-sync", eB)
	}
}

// TestGatewayHealsHighEpochSplit: a freshly started gateway (epoch view
// 0) fronting a deployment far ahead — with one straggler replica — must
// learn the real epoch from the rebalance replies and force a strictly
// fresher rebuild, instead of retrying at epochs the up-to-date replicas
// ignore.
func TestGatewayHealsHighEpochSplit(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 50, Edges: 200, Labels: []string{"A", "B"}, Seed: 95})
	assign := make([]int, 50)
	for v := range assign {
		assign[v] = v % 2
	}
	frA, err := fragment.Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	frB, err := fragment.Build(g.Clone(), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := fragment.NewReplica(frA), fragment.NewReplica(frB)
	// Replica A is far ahead; B is the straggler at epoch 0.
	if _, err := repA.Rebalance(50, fragment.ContiguousPartitioner{}); err != nil {
		t.Fatal(err)
	}
	siteA, err := netsite.NewSiteReplica("127.0.0.1:0", repA, 0, netsite.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := netsite.NewSiteReplica("127.0.0.1:0", repB, 1, netsite.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := netsite.Dial([]string{siteA.Addr(), siteB.Addr()}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := newGateway(co, gwOptions{cacheCap: 128, partitioner: "edgecut", seed: 96})
	defer func() {
		co.Close()
		siteA.Close()
		siteB.Close()
	}()

	res, err := gw.rebalance()
	if err != nil {
		t.Fatalf("rebalance did not settle the high-epoch split: %v", err)
	}
	if res.Epoch <= 50 {
		t.Fatalf("healed at epoch %d, want > 50 (a forced fresh rebuild)", res.Epoch)
	}
	_, eA := repA.Current()
	_, eB := repB.Current()
	if eA != eB || eA != res.Epoch {
		t.Fatalf("replicas at epochs %d/%d, want both at %d", eA, eB, res.Epoch)
	}
}
