package main

import (
	"strings"
	"testing"
)

func TestParseReportRejectsCorruptBaselines(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the expected error, "" = must succeed
	}{
		{"good v1", `{"schema":"distreach-bench/v1","mode":"open","qps":1200.5,"latency_us":{"p50":90,"p99":400}}`, ""},
		{"good v2", `{"schema":"distreach-bench/v2","mode":"open","qps":1200.5,"latency_us":{"p50":90,"p99":400},"first_answer_us":{"p50":40,"p99":150}}`, ""},
		{"v2 without first answer", `{"schema":"distreach-bench/v2","mode":"open","qps":1200,"latency_us":{"p50":90,"p99":400}}`, ""},
		{"good v3", `{"schema":"distreach-bench/v3","meta":{"go_version":"go1.24"},"mode":"open","qps":1200,"latency_us":{"p50":90,"p99":400},"bytes_per_query":512}`, ""},
		{"zero qps", `{"schema":"distreach-bench/v1","mode":"open","qps":0,"latency_us":{"p50":90,"p99":400}}`, "corrupt or truncated"},
		{"zero p99", `{"schema":"distreach-bench/v1","mode":"open","qps":1200,"latency_us":{"p50":90,"p99":0}}`, "corrupt or truncated"},
		{"zero first-answer p99", `{"schema":"distreach-bench/v2","mode":"open","qps":1200,"latency_us":{"p50":90,"p99":400},"first_answer_us":{"p50":0,"p99":0}}`, "corrupt or truncated"},
		{"negative qps", `{"schema":"distreach-bench/v1","mode":"open","qps":-3,"latency_us":{"p99":400}}`, "corrupt or truncated"},
		{"empty object", `{}`, "unknown schema"},
		{"truncated json", `{"schema":"distreach-bench/v1","qps":12`, "unexpected end"},
		{"wrong schema", `{"schema":"distreach-bench/v9","qps":12,"latency_us":{"p99":4}}`, "unknown schema"},
	}
	for _, tc := range cases {
		_, err := parseReport("BENCH_X.json", []byte(tc.body))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: corrupt report accepted silently", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGate(t *testing.T) {
	base := report{QPS: 1000}
	base.Latency.P99 = 1000
	mk := func(qps float64, p99 int64, errs int) report {
		r := report{QPS: qps, Errors: errs}
		r.Latency.P99 = p99
		return r
	}
	if fails := gate(base, mk(950, 1100, 0), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("within-budget run failed the gate: %v", fails)
	}
	if fails := gate(base, mk(700, 1000, 0), 0.20, 0.50, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "throughput dropped") {
		t.Fatalf("30%% qps drop not caught: %v", fails)
	}
	if fails := gate(base, mk(1000, 1600, 0), 0.20, 0.50, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "p99 latency grew") {
		t.Fatalf("60%% p99 growth not caught: %v", fails)
	}
	if fails := gate(base, mk(1000, 1000, 3), 0.20, 0.50, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "query errors") {
		t.Fatalf("query errors not caught: %v", fails)
	}
	if fails := gate(base, mk(500, 2000, 1), 0.20, 0.50, 0.50); len(fails) != 3 {
		t.Fatalf("want all three gates to fire, got %v", fails)
	}
}

func TestGateFirstAnswer(t *testing.T) {
	type fa = struct {
		P50 int64 `json:"p50"`
		P99 int64 `json:"p99"`
	}
	mk := func(faP99 int64) report {
		r := report{QPS: 1000}
		r.Latency.P99 = 1000
		if faP99 > 0 {
			r.FirstAnswer = &fa{P50: faP99 / 2, P99: faP99}
		}
		return r
	}
	// Within budget: 40% growth under a 50% budget.
	if fails := gate(mk(100), mk(140), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("within-budget first-answer growth failed the gate: %v", fails)
	}
	// Erosion of the early-termination win: 3x growth must fail.
	fails := gate(mk(100), mk(300), 0.20, 0.50, 0.50)
	if len(fails) != 1 || !strings.Contains(fails[0], "first-answer p99 grew") {
		t.Fatalf("3x first-answer p99 growth not caught: %v", fails)
	}
	// A v1 baseline (no section) never trips the gate against a v2 run.
	if fails := gate(mk(0), mk(300), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("first-answer gate fired without a baseline measurement: %v", fails)
	}
	if fails := gate(mk(100), mk(0), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("first-answer gate fired without a current measurement: %v", fails)
	}
}

func TestGateBytesPerQuery(t *testing.T) {
	mk := func(bytes float64) report {
		r := report{QPS: 1000, BytesPerQuery: bytes}
		r.Latency.P99 = 1000
		return r
	}
	// 40% growth under a 50% budget passes.
	if fails := gate(mk(1000), mk(1400), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("within-budget bytes growth failed the gate: %v", fails)
	}
	// Doubling the wire cost per query must fail: the paper's bounded
	// response volume is the point of the system.
	fails := gate(mk(1000), mk(2000), 0.20, 0.50, 0.50)
	if len(fails) != 1 || !strings.Contains(fails[0], "bytes per query grew") {
		t.Fatalf("2x bytes/query growth not caught: %v", fails)
	}
	// In-process runs leave the measurement zero; the gate stays silent.
	if fails := gate(mk(0), mk(2000), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("bytes gate fired without a baseline measurement: %v", fails)
	}
	if fails := gate(mk(1000), mk(0), 0.20, 0.50, 0.50); len(fails) != 0 {
		t.Fatalf("bytes gate fired without a current measurement: %v", fails)
	}
}
