package main

import (
	"strings"
	"testing"
)

func TestParseReportRejectsCorruptBaselines(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the expected error, "" = must succeed
	}{
		{"good", `{"schema":"distreach-bench/v1","mode":"open","qps":1200.5,"latency_us":{"p50":90,"p99":400}}`, ""},
		{"zero qps", `{"schema":"distreach-bench/v1","mode":"open","qps":0,"latency_us":{"p50":90,"p99":400}}`, "corrupt or truncated"},
		{"zero p99", `{"schema":"distreach-bench/v1","mode":"open","qps":1200,"latency_us":{"p50":90,"p99":0}}`, "corrupt or truncated"},
		{"negative qps", `{"schema":"distreach-bench/v1","mode":"open","qps":-3,"latency_us":{"p99":400}}`, "corrupt or truncated"},
		{"empty object", `{}`, "unknown schema"},
		{"truncated json", `{"schema":"distreach-bench/v1","qps":12`, "unexpected end"},
		{"wrong schema", `{"schema":"distreach-bench/v2","qps":12,"latency_us":{"p99":4}}`, "unknown schema"},
	}
	for _, tc := range cases {
		_, err := parseReport("BENCH_X.json", []byte(tc.body))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: corrupt report accepted silently", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGate(t *testing.T) {
	base := report{QPS: 1000}
	base.Latency.P99 = 1000
	mk := func(qps float64, p99 int64, errs int) report {
		r := report{QPS: qps, Errors: errs}
		r.Latency.P99 = p99
		return r
	}
	if fails := gate(base, mk(950, 1100, 0), 0.20, 0.50); len(fails) != 0 {
		t.Fatalf("within-budget run failed the gate: %v", fails)
	}
	if fails := gate(base, mk(700, 1000, 0), 0.20, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "throughput dropped") {
		t.Fatalf("30%% qps drop not caught: %v", fails)
	}
	if fails := gate(base, mk(1000, 1600, 0), 0.20, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "p99 latency grew") {
		t.Fatalf("60%% p99 growth not caught: %v", fails)
	}
	if fails := gate(base, mk(1000, 1000, 3), 0.20, 0.50); len(fails) != 1 || !strings.Contains(fails[0], "query errors") {
		t.Fatalf("query errors not caught: %v", fails)
	}
	if fails := gate(base, mk(500, 2000, 1), 0.20, 0.50); len(fails) != 3 {
		t.Fatalf("want all three gates to fire, got %v", fails)
	}
}
