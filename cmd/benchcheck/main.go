// Command benchcheck compares a fresh bench report (cmd/bench -json)
// against a committed baseline and fails when the performance trajectory
// regresses. CI runs it after the bench-trajectory smoke:
//
//	go run ./cmd/bench -load -rate ... -json BENCH_PR.json
//	go run ./cmd/benchcheck -baseline BENCH_PR6.json -current BENCH_PR.json
//
// A regression is a throughput drop beyond -max-qps-drop (default 20%),
// a p99 latency growth beyond -max-p99-growth (default 50%), a
// first-answer p99 growth beyond the same -max-p99-growth budget when
// both reports carry that section (the anytime protocol's
// early-termination win must not silently erode), or — when both reports
// measured wire traffic — a bytes-per-query growth beyond
// -max-bytes-growth (default 50%: the paper's bounded-response-volume
// guarantee must not silently bloat). The gates are deliberately loose:
// CI runners are noisy, and the job exists to catch collapses (an
// accidental O(n) in the hot path), not 3% wiggles.
//
// Override: when a PR knowingly trades throughput away (say, for
// correctness or durability), pass -allow-regression or set
// BENCHCHECK_ALLOW=1 — the comparison still prints, but the exit code is
// 0. Commit a refreshed baseline in the same PR so the next change is
// measured against reality, not history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the subset of cmd/bench's schema that the gates read.
// Schemas v1 through v3 are all accepted: each version only added
// sections (v2 first-answer and anytime, v3 run metadata), so a newer
// run remains comparable against an older baseline (a gate whose section
// one side lacks simply stays silent).
type report struct {
	Schema  string  `json:"schema"`
	Mode    string  `json:"mode"`
	Errors  int     `json:"errors"`
	QPS     float64 `json:"qps"`
	Latency struct {
		P50 int64 `json:"p50"`
		P99 int64 `json:"p99"`
	} `json:"latency_us"`
	FirstAnswer *struct {
		P50 int64 `json:"p50"`
		P99 int64 `json:"p99"`
	} `json:"first_answer_us"`
	BytesPerQuery float64 `json:"bytes_per_query"`
}

// benchSchemas lists the report schemas this checker understands.
var benchSchemas = map[string]bool{
	"distreach-bench/v1": true,
	"distreach-bench/v2": true,
	"distreach-bench/v3": true,
}

func load(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	return parseReport(path, b)
}

// parseReport decodes and validates one report. A zero qps or zero p99 is
// never a real measurement — it is a corrupt or truncated file (a killed
// bench run, a bad merge of a BENCH_*.json) — and comparing against such a
// baseline makes every gate vacuously pass. Fail loudly instead.
func parseReport(path string, b []byte) (report, error) {
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if !benchSchemas[r.Schema] {
		return r, fmt.Errorf("%s: unknown schema %q (want distreach-bench/v1, v2 or v3)", path, r.Schema)
	}
	if r.QPS <= 0 {
		return r, fmt.Errorf("%s: corrupt or truncated report: qps = %v", path, r.QPS)
	}
	if r.Latency.P99 <= 0 {
		return r, fmt.Errorf("%s: corrupt or truncated report: p99 = %dus", path, r.Latency.P99)
	}
	if r.FirstAnswer != nil && r.FirstAnswer.P99 <= 0 {
		return r, fmt.Errorf("%s: corrupt or truncated report: first-answer p99 = %dus", path, r.FirstAnswer.P99)
	}
	return r, nil
}

// gate applies the regression gates and returns one message per failure.
// parseReport guarantees base.QPS and base.Latency.P99 are positive, so the
// ratios below are always meaningful.
func gate(base, cur report, qpsDrop, p99Grow, bytesGrow float64) []string {
	var fails []string
	if cur.Errors > 0 {
		fails = append(fails, fmt.Sprintf("current run had %d query errors", cur.Errors))
	}
	if cur.QPS < base.QPS*(1-qpsDrop) {
		fails = append(fails, fmt.Sprintf("throughput dropped %.0f%% (budget %.0f%%)",
			100*(base.QPS-cur.QPS)/base.QPS, 100*qpsDrop))
	}
	if float64(cur.Latency.P99) > float64(base.Latency.P99)*(1+p99Grow) {
		fails = append(fails, fmt.Sprintf("p99 latency grew %.0f%% (budget %.0f%%)",
			100*float64(cur.Latency.P99-base.Latency.P99)/float64(base.Latency.P99), 100*p99Grow))
	}
	// The first-answer gate only fires when both reports measured it (v2
	// wire-mode runs); parseReport guarantees a present section is positive.
	if base.FirstAnswer != nil && cur.FirstAnswer != nil &&
		float64(cur.FirstAnswer.P99) > float64(base.FirstAnswer.P99)*(1+p99Grow) {
		fails = append(fails, fmt.Sprintf("first-answer p99 grew %.0f%% (budget %.0f%%)",
			100*float64(cur.FirstAnswer.P99-base.FirstAnswer.P99)/float64(base.FirstAnswer.P99), 100*p99Grow))
	}
	// The bytes gate only fires when both runs measured wire traffic
	// (loopback in-process runs leave it zero).
	if base.BytesPerQuery > 0 && cur.BytesPerQuery > 0 &&
		cur.BytesPerQuery > base.BytesPerQuery*(1+bytesGrow) {
		fails = append(fails, fmt.Sprintf("bytes per query grew %.0f%% (budget %.0f%%)",
			100*(cur.BytesPerQuery-base.BytesPerQuery)/base.BytesPerQuery, 100*bytesGrow))
	}
	return fails
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline report (required)")
		current   = flag.String("current", "", "freshly measured report (required)")
		qpsDrop   = flag.Float64("max-qps-drop", 0.20, "fail when throughput drops more than this fraction")
		p99Grow   = flag.Float64("max-p99-growth", 0.50, "fail when p99 latency grows more than this fraction")
		bytesGrow = flag.Float64("max-bytes-growth", 0.50, "fail when wire bytes per query grow more than this fraction (both reports must measure it)")
		allow     = flag.Bool("allow-regression", false, "report but do not fail (also BENCHCHECK_ALLOW=1)")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: need -baseline and -current")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if base.Mode != cur.Mode {
		fmt.Fprintf(os.Stderr, "benchcheck: comparing a %s-loop run against a %s-loop baseline\n", cur.Mode, base.Mode)
		os.Exit(2)
	}

	ratio := func(cur, base float64) string {
		if base == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
	}
	fmt.Printf("benchcheck: %s vs %s (%s loop)\n", *current, *baseline, cur.Mode)
	fmt.Printf("  qps         %8.0f -> %8.0f  (%s)\n", base.QPS, cur.QPS, ratio(cur.QPS, base.QPS))
	fmt.Printf("  p50 latency %7dus -> %7dus  (%s)\n", base.Latency.P50, cur.Latency.P50, ratio(float64(cur.Latency.P50), float64(base.Latency.P50)))
	fmt.Printf("  p99 latency %7dus -> %7dus  (%s)\n", base.Latency.P99, cur.Latency.P99, ratio(float64(cur.Latency.P99), float64(base.Latency.P99)))
	if base.FirstAnswer != nil && cur.FirstAnswer != nil {
		fmt.Printf("  first-ans p99 %5dus -> %7dus  (%s)\n", base.FirstAnswer.P99, cur.FirstAnswer.P99, ratio(float64(cur.FirstAnswer.P99), float64(base.FirstAnswer.P99)))
	}
	if base.BytesPerQuery > 0 && cur.BytesPerQuery > 0 {
		fmt.Printf("  bytes/query %8.0f -> %8.0f  (%s)\n", base.BytesPerQuery, cur.BytesPerQuery, ratio(cur.BytesPerQuery, base.BytesPerQuery))
	}

	fails := gate(base, cur, *qpsDrop, *p99Grow, *bytesGrow)
	if len(fails) == 0 {
		fmt.Println("benchcheck: within budget")
		return
	}
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: %s\n", f)
	}
	if *allow || os.Getenv("BENCHCHECK_ALLOW") == "1" {
		fmt.Fprintln(os.Stderr, "benchcheck: regression allowed by override — refresh the committed baseline in this PR")
		return
	}
	os.Exit(1)
}
