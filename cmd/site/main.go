// Command site runs one worker site of a real distributed deployment: it
// loads a graph and a fragmentation assignment, takes ownership of one
// fragment, and serves partial-evaluation requests over TCP. Pair it with
// cmd/coord:
//
//	gengraph -dataset Youtube > g.txt
//	# partition once, shared by all sites
//	coord -graph g.txt -k 3 -writeassign a.txt
//	site -graph g.txt -assign a.txt -fragment 0 -listen 127.0.0.1:7000 &
//	site -graph g.txt -assign a.txt -fragment 1 -listen 127.0.0.1:7001 &
//	site -graph g.txt -assign a.txt -fragment 2 -listen 127.0.0.1:7002 &
//	coord -graph g.txt -sites 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -s 0 -t 99
//
// With -wal DIR the site is durable: every applied update batch is
// appended to a segmented CRC-framed log, a checkpoint is written every
// -snapshot-every batches (truncating the log behind it), and a restarted
// site recovers from snapshot+log instead of the original files — it
// rejoins the deployment trailing only what it missed while down, which
// the gateway's catch-up replication streams over automatically.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"

	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/obs"
	"distreach/internal/oplog"
	"distreach/internal/reachindex"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file (format of cmd/gengraph)")
		assignPath = flag.String("assign", "", "fragmentation assignment file (written by coord -writeassign)")
		fragID     = flag.Int("fragment", 0, "index of the fragment this site owns")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		wal        = flag.String("wal", "", "durability: log/snapshot directory; applied batches are logged and a restart recovers from snapshot+log")
		snapEvery  = flag.Int("snapshot-every", 256, "with -wal: checkpoint and truncate the log every N applied batches (0 = never)")
		fsync      = flag.String("fsync", "always", "with -wal: fsync policy, always | never")
		idxBudget  = flag.Int64("reachindex-budget", 0, "per-fragment reachability index label budget in bytes (0 disables the index)")
		idxPolicy  = flag.String("reachindex-policy", "postorder", "index budget policy, postorder | hits")
		metrics    = flag.String("metrics", "", "HTTP listen address for GET /metrics (Prometheus text exposition); empty = off")
		pprofOn    = flag.Bool("pprof", false, "with -metrics: also serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *graphPath == "" || *assignPath == "" {
		fmt.Fprintln(os.Stderr, "site: -graph and -assign are required")
		os.Exit(2)
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	af, err := os.Open(*assignPath)
	if err != nil {
		fatal(err)
	}
	fr, err := fragment.Read(af, g)
	af.Close()
	if err != nil {
		fatal(err)
	}
	if *fragID < 0 || *fragID >= fr.Card() {
		fatal(fmt.Errorf("fragment %d out of range [0,%d)", *fragID, fr.Card()))
	}

	// The site keeps the whole fragmentation as its replica of the
	// deployment (it loaded the full graph and assignment anyway), which
	// lets it apply broadcast update frames and report which fragments
	// they dirtied. With -wal, the replica recovers from the store — the
	// newest snapshot plus the log suffix — rather than serving the
	// original (possibly stale) files.
	rep := fragment.NewReplica(fr)
	opts := netsite.SiteOptions{}
	if *metrics != "" {
		reg := obs.NewRegistry()
		opts.Metrics = reg
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintf(os.Stderr, "site: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("site: metrics on http://%s/metrics\n", *metrics)
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "site: -pprof needs -metrics for the HTTP listener")
		os.Exit(2)
	}
	if *wal != "" {
		policy, err := oplog.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		store, err := oplog.OpenStore(*wal, oplog.LogOptions{Fsync: policy})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		rep, err = oplog.Recover(store, fr)
		if err != nil {
			fatal(err)
		}
		opts.Store = store
		opts.SnapshotEvery = *snapEvery
		_, epoch, lsn := rep.State()
		fmt.Printf("site: recovered from %s at LSN %d, epoch %d (snapshot LSN %d)\n",
			*wal, lsn, epoch, store.SnapshotLSN())
	}
	cur, _, _ := rep.State()
	if *fragID >= cur.Card() {
		fatal(fmt.Errorf("fragment %d out of range [0,%d) after recovery", *fragID, cur.Card()))
	}
	if *idxBudget > 0 {
		pol, err := reachindex.ParsePolicy(*idxPolicy)
		if err != nil {
			fatal(err)
		}
		// A snapshot recovered above may have adopted ready indexes into
		// the fragmentation (oplog snapshot v2): record the flag-chosen
		// configuration and backfill only the fragments without one, so
		// the site serves indexed answers from its first round instead of
		// rebuilding what the checkpoint already carried.
		warm := cur.ReachIndexStats().Fragments
		cur.ConfigureReachIndex(*idxBudget, pol)
		cur.KickReachIndexRebuilds()
		fmt.Printf("site: reachability index on (budget %d, policy %s, %d fragments warm from snapshot)\n",
			*idxBudget, pol, warm)
	}
	f := cur.Fragments()[*fragID]
	s, err := netsite.NewSiteReplica(*listen, rep, *fragID, opts)
	if err != nil {
		fatal(err)
	}
	s.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "site: "+format+"\n", args...)
	}
	fmt.Printf("site: serving fragment %d (|V|=%d, |O|=%d, |I|=%d) on %s\n",
		*fragID, f.NumLocal(), f.NumVirtual(), len(f.InNodes()), s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("site: shutting down")
	s.Close()
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "site: %v\n", err)
	os.Exit(1)
}
