// Command disreach evaluates (bounded, regular) reachability queries on a
// graph file, simulating a distributed deployment: the graph is partitioned
// into fragments, one site per fragment, and the query is evaluated by
// partial evaluation with the paper's performance guarantees. It prints the
// answer together with the accounting (visits per site, traffic, response
// time) and, for comparison, can run the message-passing and ship-all
// baselines.
//
// Usage:
//
//	gengraph -dataset Youtube > g.txt
//	disreach -graph g.txt -k 8 -s 0 -t 99                 # reachability
//	disreach -graph g.txt -k 8 -s 0 -t 99 -l 6            # bounded
//	disreach -graph g.txt -k 8 -s 0 -t 99 -r "L0 (L1|L2)*" # regular
//	disreach -graph g.txt -k 8 -s 0 -t 99 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distreach"
	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/graph"
	"distreach/internal/stats"
)

func main() {
	var (
		path      = flag.String("graph", "", "graph file (format of cmd/gengraph)")
		k         = flag.Int("k", 4, "number of fragments / sites")
		s         = flag.Int("s", 0, "source node")
		t         = flag.Int("t", 1, "target node")
		l         = flag.Int("l", -1, "distance bound (>= 0 enables bounded reachability)")
		re        = flag.String("r", "", "regular expression (enables regular reachability)")
		partition = flag.String("partition", "random", "partitioner: random | hash | contiguous | greedy")
		seed      = flag.Uint64("seed", 1, "partitioner seed")
		compare   = flag.Bool("compare", false, "also run the baseline algorithms")
		latency   = flag.Duration("latency", 500*time.Microsecond, "modeled per-message latency")
		bandwidth = flag.Float64("bandwidth", 125e6, "modeled link bandwidth in bytes/s (0 = infinite)")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "disreach: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *s < 0 || *s >= g.NumNodes() || *t < 0 || *t >= g.NumNodes() {
		fatal(fmt.Errorf("endpoints (%d,%d) out of range [0,%d)", *s, *t, g.NumNodes()))
	}

	var fr *distreach.Fragmentation
	switch *partition {
	case "random":
		fr, err = distreach.PartitionRandom(g, *k, *seed)
	case "hash":
		fr, err = distreach.PartitionHash(g, *k)
	case "contiguous":
		fr, err = distreach.PartitionContiguous(g, *k)
	case "greedy":
		fr, err = distreach.PartitionGreedy(g, *k, *seed)
	default:
		err = fmt.Errorf("unknown partitioner %q", *partition)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v\nfragmentation: %v\n", g, fr)

	net := cluster.NetModel{Latency: *latency, BytesPerSecond: *bandwidth}
	cl := distreach.NewCluster(*k, net)
	src, dst := graph.NodeID(*s), graph.NodeID(*t)

	switch {
	case *re != "":
		a, err := distreach.CompileRegex(*re)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: qrr(%d, %d, %s)  (|Vq|=%d, |Eq|=%d)\n", src, dst, *re, a.NumStates(), a.NumTransitions())
		res := distreach.ReachRegex(cl, fr, src, dst, a)
		printReport("disRPQ", res.Answer, res.Report)
		if *compare {
			r := baseline.DisRPQD(cl, fr, src, dst, a)
			printReport("disRPQd", r.Answer, r.Report)
			r = baseline.DisRPQN(cl, fr, src, dst, a)
			printReport("disRPQn", r.Answer, r.Report)
		}
	case *l >= 0:
		fmt.Printf("query: qbr(%d, %d, %d)\n", src, dst, *l)
		res := distreach.ReachWithin(cl, fr, src, dst, *l)
		printReport("disDist", res.Answer, res.Report)
		if res.Answer {
			fmt.Printf("  dist(s,t) = %d\n", res.Distance)
		}
		if *compare {
			r := baseline.DisDistN(cl, fr, src, dst, *l)
			printReport("disDistn", r.Answer, r.Report)
		}
	default:
		fmt.Printf("query: qr(%d, %d)\n", src, dst)
		res := distreach.Reach(cl, fr, src, dst)
		printReport("disReach", res.Answer, res.Report)
		if *compare {
			r := baseline.DisReachN(cl, fr, src, dst)
			printReport("disReachn", r.Answer, r.Report)
			r2 := baseline.DisReachM(cl, fr, src, dst)
			printReport("disReachm", r2.Answer, r2.Report)
		}
	}
}

func printReport(name string, answer bool, rep distreach.Report) {
	fmt.Printf("%-9s answer=%-5v visits=%d (max/site %d)  traffic=%s  msgs=%d  response=%v\n",
		name, answer, rep.TotalVisits, rep.MaxVisits, stats.Bytes(rep.Bytes), rep.Messages,
		rep.Response.Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "disreach: %v\n", err)
	os.Exit(1)
}
