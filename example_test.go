package distreach_test

import (
	"fmt"

	"distreach"
)

// buildFig1 assembles the paper's Fig. 1 recommendation network with its
// three-fragment placement.
func buildFig1() (*distreach.Graph, *distreach.Fragmentation) {
	b := distreach.NewBuilder(11)
	names := []struct {
		label string
		dc    int
	}{
		{"CTO", 0}, {"DB", 0}, {"HR", 0}, {"HR", 0}, // Ann Bill Walt Fred
		{"HR", 1}, {"HR", 1}, {"MK", 1}, // Mat Emmy Jack
		{"SE", 2}, {"HR", 2}, {"AI", 2}, {"FA", 2}, // Pat Ross Tom Mark
	}
	assign := make([]int, 0, len(names))
	for _, n := range names {
		b.AddNode(n.label)
		assign = append(assign, n.dc)
	}
	const (
		ann, bill, walt, fred = 0, 1, 2, 3
		mat, emmy, jack       = 4, 5, 6
		pat, ross, tom, mark  = 7, 8, 9, 10
	)
	for _, e := range [][2]distreach.NodeID{
		{ann, bill}, {ann, walt}, {walt, mat}, {bill, pat}, {fred, emmy},
		{mat, fred}, {emmy, ross}, {jack, emmy}, {mat, jack},
		{ross, mark}, {pat, jack}, {ross, tom},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fr, err := distreach.PartitionWith(g, assign, 3)
	if err != nil {
		panic(err)
	}
	return g, fr
}

func ExampleReach() {
	_, fr := buildFig1()
	cl := distreach.NewCluster(3, distreach.NetModel{})
	res := distreach.Reach(cl, fr, 0, 10) // Ann -> Mark
	fmt.Println(res.Answer, res.Report.Visits)
	// Output: true [1 1 1]
}

func ExampleReachWithin() {
	_, fr := buildFig1()
	cl := distreach.NewCluster(3, distreach.NetModel{})
	res := distreach.ReachWithin(cl, fr, 0, 10, 6) // qbr(Ann, Mark, 6)
	fmt.Println(res.Answer, res.Distance)
	res = distreach.ReachWithin(cl, fr, 0, 10, 5)
	fmt.Println(res.Answer)
	// Output:
	// true 6
	// false
}

func ExampleReachRegexExpr() {
	_, fr := buildFig1()
	cl := distreach.NewCluster(3, distreach.NetModel{})
	res, err := distreach.ReachRegexExpr(cl, fr, 0, 10, "DB*|HR*")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Answer)
	res, err = distreach.ReachRegexExpr(cl, fr, 0, 10, "DB*")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Answer)
	// Output:
	// true
	// false
}

func ExampleCompileRegex() {
	a, err := distreach.CompileRegex("HR+ FA?")
	if err != nil {
		panic(err)
	}
	fmt.Println(a.AcceptsLabels([]string{"HR", "HR", "FA"}))
	fmt.Println(a.AcceptsLabels([]string{"FA"}))
	// Output:
	// true
	// false
}

func ExampleNewSession() {
	_, fr := buildFig1()
	cl := distreach.NewCluster(3, distreach.NetModel{})
	se := distreach.NewSession(cl, fr)
	cold := se.Reach(0, 10) // first query for target Mark: full round
	warm := se.Reach(2, 10) // Walt -> Mark: only Walt's site is visited
	fmt.Println(cold.Answer, warm.Answer, warm.Report.TotalVisits <= 1)
	// Output: true true true
}
