package distreach_test

import (
	"time"

	"testing"

	"distreach"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// buildSample returns a labeled three-fragment sample deployment.
func buildSample(t testing.TB) (*distreach.Graph, *distreach.Fragmentation, *distreach.Cluster) {
	g := gen.PowerLaw(gen.Config{
		Nodes: 400, Edges: 1600, Labels: gen.LabelAlphabet(4), LabelSkew: 1, Seed: 12,
	})
	fr, err := distreach.PartitionRandom(g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g, fr, distreach.NewCluster(3, distreach.NetModel{})
}

func TestFacadeReach(t *testing.T) {
	g, fr, cl := buildSample(t)
	for v := distreach.NodeID(1); v < 50; v++ {
		res := distreach.Reach(cl, fr, 0, v)
		if want := g.Reachable(0, v); res.Answer != want {
			t.Fatalf("Reach(0,%d) = %v, want %v", v, res.Answer, want)
		}
		if res.Report.MaxVisits > 1 {
			t.Fatalf("visit guarantee violated: %v", res.Report.Visits)
		}
	}
}

func TestFacadeReachWithin(t *testing.T) {
	g, fr, cl := buildSample(t)
	for v := distreach.NodeID(1); v < 30; v++ {
		res := distreach.ReachWithin(cl, fr, 0, v, 4)
		d := g.Dist(0, v)
		if want := d >= 0 && d <= 4; res.Answer != want {
			t.Fatalf("ReachWithin(0,%d,4) = %v, oracle dist %d", v, res.Answer, d)
		}
	}
}

func TestFacadeRegex(t *testing.T) {
	_, fr, cl := buildSample(t)
	res, err := distreach.ReachRegexExpr(cl, fr, 0, 399, "_*")
	if err != nil {
		t.Fatal(err)
	}
	plain := distreach.Reach(cl, fr, 0, 399)
	if res.Answer != plain.Answer {
		t.Fatalf("wildcard-star regex (%v) must agree with plain reachability (%v)",
			res.Answer, plain.Answer)
	}
	if _, err := distreach.ReachRegexExpr(cl, fr, 0, 1, "(((oops"); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestFacadeCompileRegex(t *testing.T) {
	a, err := distreach.CompileRegex("A (B|C)* D?")
	if err != nil {
		t.Fatal(err)
	}
	if !a.AcceptsLabels([]string{"A", "B", "C", "D"}) {
		t.Fatal("compiled automaton rejects a member word")
	}
	if a.AcceptsLabels([]string{"B"}) {
		t.Fatal("compiled automaton accepts a non-member word")
	}
}

func TestFacadeMapReduce(t *testing.T) {
	g, _, _ := buildSample(t)
	a, err := distreach.CompileRegex("_*")
	if err != nil {
		t.Fatal(err)
	}
	ans, st, err := distreach.ReachRegexMR(g, 0, 399, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Reachable(0, 399); ans != want {
		t.Fatalf("MRdRPQ wildcard-star = %v, reachability oracle = %v", ans, want)
	}
	if st.ECC <= 0 {
		t.Fatal("ECC not accounted")
	}
}

func TestFacadePartitioners(t *testing.T) {
	g, _, _ := buildSample(t)
	assign := make([]int, g.NumNodes())
	for v := range assign {
		assign[v] = v % 5
	}
	for name, fr := range map[string]func() (*distreach.Fragmentation, error){
		"random":     func() (*distreach.Fragmentation, error) { return distreach.PartitionRandom(g, 5, 1) },
		"hash":       func() (*distreach.Fragmentation, error) { return distreach.PartitionHash(g, 5) },
		"contiguous": func() (*distreach.Fragmentation, error) { return distreach.PartitionContiguous(g, 5) },
		"greedy":     func() (*distreach.Fragmentation, error) { return distreach.PartitionGreedy(g, 5, 1) },
		"explicit":   func() (*distreach.Fragmentation, error) { return distreach.PartitionWith(g, assign, 5) },
	} {
		f, err := fr()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Card() != 5 {
			t.Fatalf("%s: card %d", name, f.Card())
		}
		// The answer must not depend on the partitioning.
		cl := distreach.NewCluster(5, distreach.NetModel{})
		if got, want := distreach.Reach(cl, f, 0, 399).Answer, g.Reachable(0, 399); got != want {
			t.Fatalf("%s: answer %v, want %v", name, got, want)
		}
	}
}

func TestFacadeSessionAndCoalesce(t *testing.T) {
	g, fr, cl := buildSample(t)
	se := distreach.NewSession(cl, fr)
	for s := distreach.NodeID(0); s < 20; s++ {
		if got, want := se.Reach(s, 399).Answer, g.Reachable(s, 399); got != want {
			t.Fatalf("session Reach(%d,399)=%v want %v", s, got, want)
		}
	}
	co, err := distreach.Coalesce(fr, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := distreach.NewCluster(2, distreach.NetModel{})
	if got, want := distreach.Reach(cl2, co, 0, 399).Answer, g.Reachable(0, 399); got != want {
		t.Fatalf("coalesced Reach=%v want %v", got, want)
	}
}

func TestFacadeMapReduceVariants(t *testing.T) {
	g, _, _ := buildSample(t)
	ans, _, err := distreach.ReachMR(g, 0, 399, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Reachable(0, 399); ans != want {
		t.Fatalf("ReachMR=%v want %v", ans, want)
	}
	bans, dist, _, err := distreach.ReachWithinMR(g, 0, 399, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dist(0, 399)
	if want := d >= 0 && d <= 6; bans != want {
		t.Fatalf("ReachWithinMR=%v oracle dist=%d", bans, d)
	}
	if bans && dist != int64(d) {
		t.Fatalf("distance %d, oracle %d", dist, d)
	}
}

func TestFacadeTCPDeployment(t *testing.T) {
	g, fr, _ := buildSample(t)
	sites, addrs, err := distreach.Serve(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := distreach.DialSites(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ans, st, err := co.Reach(0, 399)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Reachable(0, 399); ans != want {
		t.Fatalf("tcp Reach = %v, want %v", ans, want)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("no wire accounting: %+v", st)
	}
	a, err := distreach.CompileRegex("_*")
	if err != nil {
		t.Fatal(err)
	}
	rans, _, err := co.ReachRegex(0, 399, a)
	if err != nil {
		t.Fatal(err)
	}
	if rans != ans {
		t.Fatalf("wildcard regex over TCP (%v) disagrees with Reach (%v)", rans, ans)
	}
}

func TestFacadeBuilderErrors(t *testing.T) {
	b := distreach.NewBuilder(1)
	b.AddNode("x")
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid edge accepted")
	}
	_ = graph.None
}

func TestFacadeReachBatch(t *testing.T) {
	g, fr, cl := buildSample(t)
	qs := make([]distreach.Query, 0, 30)
	for s := distreach.NodeID(0); s < 15; s++ {
		qs = append(qs, distreach.Query{S: s, T: 399}, distreach.Query{S: s, T: 0})
	}
	res := distreach.ReachBatch(cl, fr, qs)
	for i, q := range qs {
		if want := g.Reachable(q.S, q.T); res.Answers[i] != want {
			t.Fatalf("batch query %d: %v want %v", i, res.Answers[i], want)
		}
	}
	if res.Report.MaxVisits != 1 {
		t.Fatalf("batch visit guarantee violated: %v", res.Report.Visits)
	}
}
