package bes

import (
	"testing"
	"testing/quick"
)

func TestSolveExample3(t *testing.T) {
	// The equation system of Example 3 / Fig. 5(a):
	// xAnn = xPat ∨ xMat;  xFred = xEmmy;  xMat = xFred;  xJack = xFred;
	// xEmmy = xFred ∨ xRoss;  xRoss = true;  xPat = xJack.
	s := New[string]()
	s.Add("Ann", false, "Pat", "Mat")
	s.Add("Fred", false, "Emmy")
	s.Add("Mat", false, "Fred")
	s.Add("Jack", false, "Fred")
	s.Add("Emmy", false, "Fred", "Ross")
	s.Add("Ross", true)
	s.Add("Pat", false, "Jack")
	sol := s.Solve()
	for _, v := range []string{"Ann", "Fred", "Mat", "Jack", "Emmy", "Ross", "Pat"} {
		if !sol[v] {
			t.Errorf("%s should be true", v)
		}
	}
}

func TestSolveRecursiveFalse(t *testing.T) {
	// A pure cycle with no true constant stays false (least solution).
	s := New[int]()
	s.Add(1, false, 2)
	s.Add(2, false, 3)
	s.Add(3, false, 1)
	sol := s.Solve()
	if len(sol) != 0 {
		t.Fatalf("cycle solved true: %v", sol)
	}
}

func TestSolveCycleWithExit(t *testing.T) {
	s := New[int]()
	s.Add(1, false, 2)
	s.Add(2, false, 1, 3)
	s.Add(3, true)
	sol := s.Solve()
	if !sol[1] || !sol[2] || !sol[3] {
		t.Fatalf("cycle with true exit: %v", sol)
	}
}

func TestUnknownVariablesAreFalse(t *testing.T) {
	s := New[int]()
	s.Add(1, false, 99) // 99 has no equation
	sol := s.Solve()
	if sol[1] || sol[99] {
		t.Fatalf("unknown var leaked true: %v", sol)
	}
}

func TestAddMergesEquations(t *testing.T) {
	s := New[int]()
	s.Add(1, false, 2)
	s.Add(1, false, 3)
	s.Add(3, true)
	if sol := s.Solve(); !sol[1] {
		t.Fatal("merged disjuncts lost")
	}
}

// TestSolveMatchesFixpoint cross-checks the dependency-graph solver against
// the naive Kleene iteration on random systems.
func TestSolveMatchesFixpoint(t *testing.T) {
	check := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(uint64(rng)>>33) % n
			return v
		}
		s := New[int]()
		nvars := 2 + next(20)
		for v := 0; v < nvars; v++ {
			deps := make([]int, next(4))
			for i := range deps {
				deps[i] = next(nvars)
			}
			s.Add(v, next(10) == 0, deps...)
		}
		a := s.Solve()
		b := s.SolveFixpoint()
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecideIncremental feeds random equations one at a time and checks
// after every Add that the incrementally maintained solution matches the
// Kleene-iteration oracle on the prefix added so far, and that true
// verdicts are monotone (never retracted by later equations).
func TestDecideIncremental(t *testing.T) {
	check := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(uint64(rng)>>33) % n
		}
		s := New[int]()
		oracle := New[int]()
		nvars := 2 + next(24)
		wasTrue := make(map[int]bool)
		for step := 0; step < nvars; step++ {
			v := next(nvars)
			deps := make([]int, next(4))
			for i := range deps {
				deps[i] = next(nvars)
			}
			ct := next(6) == 0
			s.Add(v, ct, deps...)
			oracle.Add(v, ct, deps...)
			want := oracle.SolveFixpoint()
			for x := 0; x < nvars; x++ {
				if s.Decide(x) != want[x] {
					return false
				}
				if wasTrue[x] && !s.Decide(x) {
					return false // true retracted
				}
				if s.Decide(x) {
					wasTrue[x] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecideUnknownVariable(t *testing.T) {
	s := New[int]()
	s.Add(1, false, 2)
	if s.Decide(1) || s.Decide(2) || s.Decide(99) {
		t.Fatal("nothing should be provable yet")
	}
	s.Add(2, true)
	if !s.Decide(1) || !s.Decide(2) {
		t.Fatal("truth did not propagate to dependents")
	}
	if s.Decide(99) {
		t.Fatal("never-mentioned variable decided true")
	}
}

func TestWeightedExample5(t *testing.T) {
	// Fig. 5(b): the weighted dependency graph of qbr(Ann, Mark, 6).
	s := NewWeighted[string]()
	s.AddTerm("Ann", "Pat", 2)
	s.AddTerm("Ann", "Mat", 2)
	s.AddTerm("Fred", "Emmy", 1)
	s.AddTerm("Mat", "Fred", 1)
	s.AddTerm("Jack", "Fred", 3)
	s.AddTerm("Emmy", "Fred", 3)
	s.AddTerm("Emmy", "Ross", 1)
	s.AddConst("Ross", 1) // Ross reaches Mark at distance 1
	s.AddTerm("Pat", "Jack", 1)
	if d := s.Solve("Ann"); d != 6 {
		t.Fatalf("dist(Ann) = %d, want 6 (Ann->Mat->Fred->Emmy->Ross->Mark)", d)
	}
	if d := s.Solve("Ross"); d != 1 {
		t.Fatalf("dist(Ross) = %d, want 1", d)
	}
}

func TestWeightedUnreachable(t *testing.T) {
	s := NewWeighted[int]()
	s.AddTerm(1, 2, 5)
	if d := s.Solve(1); d != Inf {
		t.Fatalf("unreachable var solved to %d", d)
	}
	if d := s.Solve(42); d != Inf {
		t.Fatalf("unknown var solved to %d", d)
	}
}

func TestWeightedChoosesMin(t *testing.T) {
	s := NewWeighted[int]()
	s.AddTerm(1, 2, 10)
	s.AddTerm(1, 3, 1)
	s.AddConst(2, 0)
	s.AddConst(3, 5)
	if d := s.Solve(1); d != 6 {
		t.Fatalf("min path = %d, want 6", d)
	}
	// A tighter constant on the same variable wins.
	s.AddConst(3, 1)
	if d := s.Solve(1); d != 2 {
		t.Fatalf("after tightening, min = %d, want 2", d)
	}
}

func TestWeightedCycleDoesNotLoop(t *testing.T) {
	s := NewWeighted[int]()
	s.AddTerm(1, 2, 1)
	s.AddTerm(2, 1, 1)
	s.AddTerm(2, 3, 1)
	s.AddConst(3, 0)
	if d := s.Solve(1); d != 2 {
		t.Fatalf("cycle dist = %d, want 2", d)
	}
}

func TestSystemCounters(t *testing.T) {
	s := New[int]()
	s.Add(1, false, 2, 3)
	s.Add(2, true)
	if s.NumVars() != 3 || s.NumEdges() != 2 {
		t.Fatalf("|Vd|=%d |Ed|=%d, want 3/2", s.NumVars(), s.NumEdges())
	}
	w := NewWeighted[int]()
	w.AddTerm(1, 2, 1)
	w.AddConst(2, 0)
	if w.NumVars() != 2 || w.NumEdges() != 1 {
		t.Fatalf("weighted counters wrong")
	}
}
