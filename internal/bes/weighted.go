package bes

import "container/heap"

// Weighted is the arithmetic counterpart of System used by disDist
// (Section 4): equations of the form
//
//	Xv = min( Xv1 + w1, Xv2 + w2, ..., [c] )
//
// where the optional constant c arises when the target t is reachable
// within the fragment at distance c. Variables with no equation and no
// constant have value +infinity (unreachable). The coordinator solves the
// system by running Dijkstra over the weighted dependency graph Gd, exactly
// as procedure evalDGd prescribes.
type Weighted[K comparable] struct {
	idx   map[K]int
	vars  []K
	cons  []int64 // constant term, or Inf
	deps  [][]warc
	edges int
}

type warc struct {
	to int
	w  int64
}

// Inf is the distance of unreachable variables.
const Inf = int64(1) << 62

// NewWeighted returns an empty weighted system.
func NewWeighted[K comparable]() *Weighted[K] {
	return &Weighted[K]{idx: make(map[K]int)}
}

func (s *Weighted[K]) intern(x K) int {
	if i, ok := s.idx[x]; ok {
		return i
	}
	i := len(s.vars)
	s.idx[x] = i
	s.vars = append(s.vars, x)
	s.cons = append(s.cons, Inf)
	s.deps = append(s.deps, nil)
	return i
}

// AddConst records the constant term c as a candidate for min(x): x <= c.
func (s *Weighted[K]) AddConst(x K, c int64) {
	i := s.intern(x)
	if c < s.cons[i] {
		s.cons[i] = c
	}
}

// AddTerm records the term (v + w) as a candidate for min(x): x <= v + w.
func (s *Weighted[K]) AddTerm(x K, v K, w int64) {
	i := s.intern(x)
	j := s.intern(v)
	s.deps[i] = append(s.deps[i], warc{to: j, w: w})
	s.edges++
}

// NumVars reports the number of distinct variables mentioned.
func (s *Weighted[K]) NumVars() int { return len(s.vars) }

// NumEdges reports the number of weighted dependency edges.
func (s *Weighted[K]) NumEdges() int { return s.edges }

// Solve returns the value of variable x in the least solution, or Inf if x
// is unbounded (unreachable). It runs Dijkstra from x over the dependency
// graph: the value of x is the minimum over dependency paths x ~> y of
// (path weight + constant at y). Time O(|Ed| + |Vd| log |Vd|).
func (s *Weighted[K]) Solve(x K) int64 {
	src, ok := s.idx[x]
	if !ok {
		return Inf
	}
	dist := make([]int64, len(s.vars))
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	pq := &heap64{{0, src}}
	best := Inf
	for pq.Len() > 0 {
		it := heap.Pop(pq).(item64)
		if it.d > dist[it.v] {
			continue
		}
		if s.cons[it.v] != Inf && it.d+s.cons[it.v] < best {
			best = it.d + s.cons[it.v]
		}
		for _, a := range s.deps[it.v] {
			if nd := it.d + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				heap.Push(pq, item64{nd, a.to})
			}
		}
	}
	return best
}

type item64 struct {
	d int64
	v int
}

type heap64 []item64

func (h heap64) Len() int            { return len(h) }
func (h heap64) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h heap64) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *heap64) Push(x interface{}) { *h = append(*h, x.(item64)) }
func (h *heap64) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
