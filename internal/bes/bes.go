// Package bes implements the (disjunctive) Boolean equation systems [14]
// assembled by the coordinator site, and their weighted counterpart used for
// bounded reachability.
//
// A system holds equations of the form
//
//	X = true | false | Xv1 ∨ Xv2 ∨ ... ∨ Xvn
//
// possibly recursively defined (graphs may be cyclic). Variables without an
// equation are false: they stand for virtual nodes whose owner fragment
// found no path onward. Solving is by the paper's evalDG strategy: build the
// dependency graph Gd, merge the true constants into a single node, and
// decide reachability; a variable is true iff it can reach a true constant.
package bes

import "fmt"

// System is a disjunctive Boolean equation system over variables of
// comparable type K. The zero value is not usable; call New.
//
// The system is solved incrementally: every Add maintains the least
// solution of the equations seen so far, so Decide is O(1) at any point
// while the total propagation work over any Add sequence is O(|Vd|+|Ed|)
// — the same bound as one batch Solve. This is what lets the coordinator
// answer a reach query the instant streamed partials close a certificate.
type System[K comparable] struct {
	idx   map[K]int // variable -> dense index
	vars  []K
	truth []bool    // equation has a `true` disjunct
	deps  [][]int   // equation -> variable indices on its right-hand side
	rev   [][]int32 // reverse dependency edges, maintained by Add
	val   []bool    // least solution of the equations added so far
	edges int
}

// New returns an empty system.
func New[K comparable]() *System[K] {
	return &System[K]{idx: make(map[K]int)}
}

func (s *System[K]) intern(x K) int {
	if i, ok := s.idx[x]; ok {
		return i
	}
	i := len(s.vars)
	s.idx[x] = i
	s.vars = append(s.vars, x)
	s.truth = append(s.truth, false)
	s.deps = append(s.deps, nil)
	s.rev = append(s.rev, nil)
	s.val = append(s.val, false)
	return i
}

// propagate marks i true and floods truth along the reverse dependency
// edges accumulated so far. Each variable is enqueued at most once over
// the lifetime of the system (val is monotone), so the aggregate cost of
// all propagations is linear in the dependency graph.
func (s *System[K]) propagate(i int) {
	s.val[i] = true
	queue := []int32{int32(i)}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		for _, x := range s.rev[y] {
			if !s.val[x] {
				s.val[x] = true
				queue = append(queue, x)
			}
		}
	}
}

// Add records the equation x = constTrue ∨ (∨ vars). Adding x twice merges
// the right-hand sides (disjunction is idempotent and commutative). The
// least solution is updated in place: after Add returns, Decide reflects
// every equation added so far.
func (s *System[K]) Add(x K, constTrue bool, vars ...K) {
	i := s.intern(x)
	if constTrue {
		s.truth[i] = true
		if !s.val[i] {
			s.propagate(i)
		}
	}
	for _, v := range vars {
		j := s.intern(v)
		s.deps[i] = append(s.deps[i], j)
		s.rev[j] = append(s.rev[j], int32(i))
		s.edges++
		if s.val[j] && !s.val[i] {
			s.propagate(i)
		}
	}
}

// Decide reports whether x is true under the least solution of the
// equations added so far. The solution is monotone in the equation set:
// a true verdict is definitive no matter what is added later (each
// equation is a sound implication), while false only becomes definitive
// once every contributing site's equations have been added — exactly the
// anytime-answer contract used by the coordinator.
func (s *System[K]) Decide(x K) bool {
	i, ok := s.idx[x]
	return ok && s.val[i]
}

// NumVars reports the number of distinct variables mentioned.
func (s *System[K]) NumVars() int { return len(s.vars) }

// NumEdges reports the number of dependency edges (|Ed| of Gd).
func (s *System[K]) NumEdges() int { return s.edges }

// Solve returns the set of true variables under the least solution. It is
// the paper's evalDG: reverse reachability from the merged true node over
// the dependency graph. The reachability itself is maintained by Add, so
// Solve only materializes the answer map; total cost over the system's
// lifetime stays O(|Vd| + |Ed|).
func (s *System[K]) Solve() map[K]bool {
	out := make(map[K]bool)
	for i, v := range s.val {
		if v {
			out[s.vars[i]] = true
		}
	}
	return out
}

// SolveFixpoint computes the same least solution by naive Kleene iteration
// (repeatedly re-evaluating every equation until no change). It exists as
// the ablation baseline A2 of DESIGN.md and as an oracle for tests; it runs
// in O(|Vd| · |Ed|) in the worst case.
func (s *System[K]) SolveFixpoint() map[K]bool {
	val := make([]bool, len(s.vars))
	copy(val, s.truth)
	for changed := true; changed; {
		changed = false
		for x, ds := range s.deps {
			if val[x] {
				continue
			}
			for _, y := range ds {
				if val[y] {
					val[x] = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[K]bool)
	for i, v := range val {
		if v {
			out[s.vars[i]] = true
		}
	}
	return out
}

// Value reports the solved value of x given a solution map from Solve.
func Value[K comparable](sol map[K]bool, x K) bool { return sol[x] }

// String summarizes the system.
func (s *System[K]) String() string {
	return fmt.Sprintf("bes{|Vd|=%d, |Ed|=%d}", s.NumVars(), s.NumEdges())
}
