// Package bes implements the (disjunctive) Boolean equation systems [14]
// assembled by the coordinator site, and their weighted counterpart used for
// bounded reachability.
//
// A system holds equations of the form
//
//	X = true | false | Xv1 ∨ Xv2 ∨ ... ∨ Xvn
//
// possibly recursively defined (graphs may be cyclic). Variables without an
// equation are false: they stand for virtual nodes whose owner fragment
// found no path onward. Solving is by the paper's evalDG strategy: build the
// dependency graph Gd, merge the true constants into a single node, and
// decide reachability; a variable is true iff it can reach a true constant.
package bes

import "fmt"

// System is a disjunctive Boolean equation system over variables of
// comparable type K. The zero value is not usable; call New.
type System[K comparable] struct {
	idx   map[K]int // variable -> dense index
	vars  []K
	truth []bool  // equation has a `true` disjunct
	deps  [][]int // equation -> variable indices on its right-hand side
	edges int
}

// New returns an empty system.
func New[K comparable]() *System[K] {
	return &System[K]{idx: make(map[K]int)}
}

func (s *System[K]) intern(x K) int {
	if i, ok := s.idx[x]; ok {
		return i
	}
	i := len(s.vars)
	s.idx[x] = i
	s.vars = append(s.vars, x)
	s.truth = append(s.truth, false)
	s.deps = append(s.deps, nil)
	return i
}

// Add records the equation x = constTrue ∨ (∨ vars). Adding x twice merges
// the right-hand sides (disjunction is idempotent and commutative).
func (s *System[K]) Add(x K, constTrue bool, vars ...K) {
	i := s.intern(x)
	if constTrue {
		s.truth[i] = true
	}
	for _, v := range vars {
		s.deps[i] = append(s.deps[i], s.intern(v))
		s.edges++
	}
}

// NumVars reports the number of distinct variables mentioned.
func (s *System[K]) NumVars() int { return len(s.vars) }

// NumEdges reports the number of dependency edges (|Ed| of Gd).
func (s *System[K]) NumEdges() int { return s.edges }

// Solve computes the least solution and returns the set of true variables.
// It is the paper's evalDG: reverse reachability from the merged true node
// over the dependency graph. Runs in O(|Vd| + |Ed|).
func (s *System[K]) Solve() map[K]bool {
	// Build reverse adjacency: an equation X = ... ∨ Y ∨ ... contributes
	// edge X -> Y in Gd; X is true iff X reaches a true node, i.e. in the
	// reverse graph true nodes reach X.
	rev := make([][]int32, len(s.vars))
	for x, ds := range s.deps {
		for _, y := range ds {
			rev[y] = append(rev[y], int32(x))
		}
	}
	val := make([]bool, len(s.vars))
	var queue []int32
	for i, t := range s.truth {
		if t {
			val[i] = true
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		for _, x := range rev[y] {
			if !val[x] {
				val[x] = true
				queue = append(queue, x)
			}
		}
	}
	out := make(map[K]bool)
	for i, v := range val {
		if v {
			out[s.vars[i]] = true
		}
	}
	return out
}

// SolveFixpoint computes the same least solution by naive Kleene iteration
// (repeatedly re-evaluating every equation until no change). It exists as
// the ablation baseline A2 of DESIGN.md and as an oracle for tests; it runs
// in O(|Vd| · |Ed|) in the worst case.
func (s *System[K]) SolveFixpoint() map[K]bool {
	val := make([]bool, len(s.vars))
	copy(val, s.truth)
	for changed := true; changed; {
		changed = false
		for x, ds := range s.deps {
			if val[x] {
				continue
			}
			for _, y := range ds {
				if val[y] {
					val[x] = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[K]bool)
	for i, v := range val {
		if v {
			out[s.vars[i]] = true
		}
	}
	return out
}

// Value reports the solved value of x given a solution map from Solve.
func Value[K comparable](sol map[K]bool, x K) bool { return sol[x] }

// String summarizes the system.
func (s *System[K]) String() string {
	return fmt.Sprintf("bes{|Vd|=%d, |Ed|=%d}", s.NumVars(), s.NumEdges())
}
