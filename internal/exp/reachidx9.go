package exp

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"time"

	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/oplog"
	"distreach/internal/reachindex"
	"distreach/internal/workload"
)

func init() {
	register("N9", reachIndexBuildRecovery)
}

// reachIndexBuildRecovery charts the two things PR 8 buys the index:
//
//   - build time vs worker count, on the checked-in SNAP sample and a
//     larger synthetic (LiveJournal analogue) — the async rebuild window
//     that mutations, rebalances and snapshot installs open. Every
//     parallel build is checked byte-identical to the serial one (the
//     property that keeps replicas in agreement).
//   - warm vs cold recovery: a site restarted from a snapshot whose v2
//     index section carries the built indexes serves indexed answers on
//     its first query round (hit rate > 0 before any rebuild runs, zero
//     wrong answers); a cold restart pays the full rebuild before its
//     index answers anything.
func reachIndexBuildRecovery(cfg Config) (Table, error) {
	t := Table{
		ID:     "N9",
		Title:  "Reach index N9: parallel build scaling and warm-vs-cold recovery",
		Header: []string{"case", "workers", "build/recover ms", "speedup", "identical", "first-round hits", "wrong"},
		Notes: fmt.Sprintf("Ran with GOMAXPROCS=%d — parallel speedup needs real cores. ", runtime.GOMAXPROCS(0)) +
			"Build rows: summed per-fragment index build wall time (k=4, edgecut, default budget) at 1/2/4 workers; " +
			"'identical' checks the parallel output byte-for-byte against the serial build. Recovery rows: a replica " +
			"restored from a snapshot; 'warm' carries the v2 index section and answers its first query round from the " +
			"index with no rebuild, 'cold' (no section) rebuilds first. 'first-round hits' is the index hit rate of the " +
			"first post-recovery round before any rebuild completes; 'wrong' counts disagreements with direct evaluation.",
	}
	snapG, err := graph.SampleSNAP([]string{"A", "B", "C"})
	if err != nil {
		return t, err
	}
	lj := workload.ReachDatasets[0] // LiveJournal analogue
	lj.V, lj.E = cfg.scale(lj.V), cfg.scale(lj.E)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"SNAP sample", snapG},
		{lj.Name, lj.Generate()},
	}
	const k = 4
	for _, gc := range graphs {
		fr, err := fragment.Partition(gc.g, fragment.EdgeCutPartitioner{Seed: 1}, k)
		if err != nil {
			return t, err
		}
		serial, serialMS, err := timedBuild(fr, 1)
		if err != nil {
			return t, err
		}
		for _, workers := range []int{1, 2, 4} {
			ms, identical := serialMS, true
			if workers > 1 {
				var par [][]byte
				par, ms, err = timedBuild(fr, workers)
				if err != nil {
					return t, err
				}
				for i := range par {
					if !bytes.Equal(par[i], serial[i]) {
						identical = false
					}
				}
			}
			cfg.logf("N9 %s: %d workers, %.1fms", gc.name, workers, ms)
			t.Rows = append(t.Rows, []string{
				gc.name + " build", fmt.Sprint(workers), fmt.Sprintf("%.1f", ms),
				fmt.Sprintf("%.1fx", serialMS/ms), fmt.Sprint(identical), "-", "-",
			})
		}
	}

	for _, warm := range []bool{true, false} {
		ms, hitRate, wrong, idxFrags, err := recoverOnce(snapG, k, warm, cfg)
		if err != nil {
			return t, err
		}
		name := "recovery cold"
		if warm {
			name = "recovery warm"
		}
		cfg.logf("N9 %s: %d index frags in snapshot, %.1fms to indexed, first-round hit rate %.2f, %d wrong",
			name, idxFrags, ms, hitRate, wrong)
		t.Rows = append(t.Rows, []string{
			name, "-", fmt.Sprintf("%.1f", ms), "-", "-",
			fmt.Sprintf("%.2f", hitRate), fmt.Sprint(wrong),
		})
	}
	return t, nil
}

// timedBuild builds every fragment's index at the given worker count and
// returns the marshaled indexes plus the summed wall time in ms.
func timedBuild(fr *fragment.Fragmentation, workers int) ([][]byte, float64, error) {
	var out [][]byte
	var total time.Duration
	fr.RLock()
	defer fr.RUnlock()
	for _, f := range fr.Fragments() {
		comp := f.LocalSCC()
		nc := 0
		for _, c := range comp {
			if int(c)+1 > nc {
				nc = int(c) + 1
			}
		}
		t0 := time.Now()
		idx := reachindex.Build(reachindex.Spec{
			Graph:    f.AsGraph(),
			Comp:     comp,
			NC:       nc,
			Boundary: f.IsBoundary,
			Sources:  f.InNodes(),
			Budget:   reachindex.DefaultBudget,
			Workers:  workers,
		})
		total += time.Since(t0)
		b, err := idx.MarshalBinary()
		if err != nil {
			return nil, 0, err
		}
		out = append(out, b)
	}
	return out, float64(total.Microseconds()) / 1000, nil
}

// recoverOnce snapshots an indexed deployment into a temp store, restores
// it, and measures the restored replica's first query round. warm keeps
// the snapshot's v2 index section; cold simulates the pre-v2 world by
// snapshotting with indexing disabled, then enabling it after recovery
// (the measured time then includes the full rebuild wait).
func recoverOnce(g *graph.Graph, k int, warm bool, cfg Config) (ms float64, hitRate float64, wrong, idxFrags int, err error) {
	fr, err := fragment.Partition(g, fragment.EdgeCutPartitioner{Seed: 1}, k)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	rep := fragment.NewReplica(fr)
	// Advance past LSN 0 (an LSN-0 snapshot is "empty store" to recovery),
	// then compact so every fragment is overlay-free and capture-eligible.
	if _, _, err := rep.ApplyLSN(1, 0, []fragment.Op{{Kind: fragment.OpInsertEdge, U: 0, V: 1}}); err != nil {
		return 0, 0, 0, 0, err
	}
	fr.Compact()
	if warm {
		fr.EnableReachIndex(reachindex.DefaultBudget)
		fr.WaitReachIndexes()
	}
	snap, err := oplog.TakeSnapshot(rep)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	dir, err := os.MkdirTemp("", "n9-*")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	st, err := oplog.OpenStore(dir, oplog.LogOptions{Fsync: oplog.SyncNever})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer st.Close()
	if err := st.SaveSnapshot(snap); err != nil {
		return 0, 0, 0, 0, err
	}
	idxFrags = snap.IndexFrags

	t0 := time.Now()
	rep2, err := oplog.Recover(st, fr)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fr2, _ := rep2.Current()
	if !warm {
		// The cold path pays the rebuild before its index answers anything.
		fr2.EnableReachIndex(reachindex.DefaultBudget)
		fr2.WaitReachIndexes()
	}
	ms = float64(time.Since(t0).Microseconds()) / 1000

	// First post-recovery query round: warm must answer from the adopted
	// indexes (hit rate > 0, nothing rebuilt yet), and must never disagree
	// with direct evaluation.
	rng := gen.NewRNG(31)
	n := g.NumNodes()
	rounds := cfg.queries(100)
	for i := 0; i < rounds; i++ {
		s, tt := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		indexed := solveRound(fr2, s, tt, nil)
		direct := solveRound(fr2, s, tt, &core.Options{NoFragmentIndex: true})
		if indexed != direct {
			wrong++
		}
	}
	stx := fr2.ReachIndexStats()
	hitRate = stx.HitRate()
	if warm && stx.Rebuilds > 0 {
		return 0, 0, 0, 0, fmt.Errorf("N9: warm recovery rebuilt %d indexes before the first round", stx.Rebuilds)
	}
	return ms, hitRate, wrong, idxFrags, nil
}

// solveRound evaluates one reach query the distributed way: every
// fragment's local evaluation plus the coordinator solve.
func solveRound(fr *fragment.Fragmentation, s, t graph.NodeID, opt *core.Options) bool {
	partials := make([]*core.ReachPartial, 0, fr.Card())
	for _, f := range fr.Fragments() {
		partials = append(partials, core.LocalEvalReach(f, s, t, opt))
	}
	return core.SolveReach(partials, s)
}
