package exp

import (
	"testing"

	"distreach/internal/cluster"
)

// fastCfg shrinks every experiment to smoke-test size: the suite must run
// end to end in seconds while still exercising every code path.
var fastCfg = Config{Queries: 2, Scale: 0.02, Net: &cluster.NetModel{}}

func TestEveryExperimentRuns(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, fastCfg)
			if err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			if tab.ID != id {
				t.Errorf("table ID %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("experiment %s produced no rows", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("experiment %s: row width %d, header width %d", id, len(row), len(tab.Header))
				}
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("NOPE", fastCfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	want := map[string]bool{
		"T2": true, "F11a": true, "F11b": true, "F11c": true, "F11d": true,
		"F11e": true, "F11f": true, "F11g": true, "F11h": true, "F11i": true,
		"F11j": true, "F11k": true, "F11l": true, "X1": true, "X2": true,
		"A1": true, "A2": true, "CHK": true, "E1": true, "E2": true, "N1": true,
		"N2": true, "N3": true, "N4": true, "N5": true, "N6": true, "N7": true,
		"N8": true, "N9": true, "N10": true, "N11": true,
	}
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments (%v), want %d", len(ids), ids, len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected experiment %s", id)
		}
	}
}
