// Package exp implements the experiment harness of Section 7: one
// regenerator per table and figure in the paper's evaluation (Table 2,
// Fig. 11(a)-(l), plus the in-text visit and traffic claims and the
// DESIGN.md ablations). Each experiment returns a Table whose rows mirror
// the series the paper plots; cmd/bench renders them and EXPERIMENTS.md
// records paper-vs-measured.
package exp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"distreach/internal/cluster"
)

// Table is the output of one experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Config tunes experiment execution. The zero value is usable: paper-shaped
// defaults at reproduction scale.
type Config struct {
	// Queries per measurement point (the paper uses 100 for reachability,
	// 30-40 for regular queries). Default 10 to keep full-suite runs short;
	// raise with -queries for paper-strength averaging.
	Queries int
	// Scale multiplies dataset sizes (1.0 = the repo's ~1/100-of-paper
	// defaults). Use small values for smoke tests.
	Scale float64
	// Net is the modeled interconnect. The default models a modest data
	// center link so that shipping costs are visible in response times.
	Net *cluster.NetModel
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) queries(def int) int {
	if c.Queries > 0 {
		return c.Queries
	}
	return def
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1.0
	}
	v := int(float64(n) * s)
	if v < 2 {
		v = 2
	}
	return v
}

func (c Config) net() cluster.NetModel {
	if c.Net != nil {
		return *c.Net
	}
	// 0.5 ms per message; bandwidth scaled to the data: the paper ships
	// full-size graphs over ~1 Gb/s EC2 links, so our ~1/100-scale graphs
	// see a 1/100-scale link (1.25 MB/s) to keep shipping costs the same
	// *relative to the data* as in the original deployment.
	return cluster.NetModel{Latency: 500 * time.Microsecond, BytesPerSecond: 1.25e6}
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Runner executes one experiment.
type Runner func(Config) (Table, error)

var registry = map[string]Runner{}
var order []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment " + id)
	}
	registry[id] = r
	order = append(order, id)
}

// IDs lists all experiment IDs in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// fmtMS renders a duration in milliseconds with two decimals.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// fmtMB renders bytes as megabytes with three decimals.
func fmtMB(b int64) string {
	return fmt.Sprintf("%.3f", float64(b)/(1<<20))
}
