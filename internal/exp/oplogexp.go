package exp

import (
	"context"
	"fmt"
	"os"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/oplog"
)

func init() {
	register("N6", durableRecovery)
}

// durableRecovery charts the durability layer's two costs:
//
//  1. Recovery: a replica that missed D update batches while down rejoins
//     by catch-up replication. With the write-ahead log intact the missed
//     delta replays (cost grows with D); "full re-seed" ships a whole
//     snapshot instead (cost flat in D, proportional to graph size) — the
//     crossover is the case for snapshots bounding the log.
//  2. Sequencer overhead: sequencing every batch through one total order
//     (and write-ahead logging it) taxes update throughput; the fsync
//     policy sets the price.
func durableRecovery(cfg Config) (Table, error) {
	t := Table{
		ID:     "N6",
		Title:  "Durability N6: recovery time vs missed updates, and sequencer overhead",
		Header: []string{"scenario", "missed", "recovery", "replayed", "snapshots", "sync KB", "upd/s"},
		Notes: "Recovery rows: a 3-site deployment (independent replicas) keeps accepting sequenced writes while one site is down; " +
			"the site restarts from its pre-crash files and rejoins via catch-up replication — log replay when the write-ahead log " +
			"reaches back (cost ~ missed batches), whole-snapshot transfer when it does not (full re-seed; cost ~ graph size, flat in " +
			"missed count). Throughput rows: closed-loop single-op update batches through the sequencer; the durable rows write-ahead " +
			"log every batch under the named fsync policy.",
	}
	size := cfg.scale(400)
	for _, missed := range []int{16, 64, 256} {
		for _, reseed := range []bool{false, true} {
			row, err := recoveryRow(size, missed, reseed)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	batches := cfg.scale(300)
	for _, mode := range []string{"in-memory", "wal fsync=never", "wal fsync=always"} {
		row, err := throughputRow(mode, size, batches)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// recoveryRow measures one catch-up: a site misses `missed` batches, then
// rejoins by replay (write-ahead log available) or by full re-seed
// (snapshot transfer only).
func recoveryRow(size, missed int, reseed bool) ([]string, error) {
	g := gen.PowerLaw(gen.Config{Nodes: size, Edges: 4 * size, Labels: []string{"A", "B"}, Seed: 51})
	const k = 3
	assign := make([]int, g.NumNodes())
	for v := range assign {
		assign[v] = v % k
	}
	reps := make([]*fragment.Replica, k)
	sites := make([]*netsite.Site, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		fr, err := fragment.Build(g.Clone(), assign, k)
		if err != nil {
			return nil, err
		}
		reps[i] = fragment.NewReplica(fr)
		sites[i], err = netsite.NewSiteReplica("127.0.0.1:0", reps[i], i, netsite.SiteOptions{})
		if err != nil {
			return nil, err
		}
		addrs[i] = sites[i].Addr()
	}
	defer func() {
		for _, s := range sites {
			if s != nil {
				s.Close()
			}
		}
	}()
	dir, err := os.MkdirTemp("", "distreach-n6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := oplog.OpenStore(dir, oplog.LogOptions{Fsync: oplog.SyncNever})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	seq := oplog.NewDurableSequencer(store)
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return nil, err
	}
	co.UseSequencer(seq)

	// The victim goes down; the deployment keeps writing.
	victim := k - 1
	sites[victim].Close()
	sites[victim] = nil
	rng := gen.NewRNG(52)
	for i := 0; i < missed; i++ {
		u, v := graph.NodeID(rng.Intn(size)), graph.NodeID(rng.Intn(size))
		if _, _, err := co.Apply([]netsite.Op{{Kind: netsite.OpInsertEdge, U: u, V: v}}); err != nil {
			return nil, err
		}
	}

	// Restart the victim from its pre-crash files (LSN 0 here: it never
	// persisted) and rejoin.
	fr, err := fragment.Build(g.Clone(), assign, k)
	if err != nil {
		return nil, err
	}
	reps[victim] = fragment.NewReplica(fr)
	sites[victim], err = netsite.NewSiteReplica("127.0.0.1:0", reps[victim], victim, netsite.SiteOptions{})
	if err != nil {
		return nil, err
	}
	addrs[victim] = sites[victim].Addr()
	co.Close()
	co2, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return nil, err
	}
	defer co2.Close()
	co2.UseSequencer(seq)

	o := netsite.SyncOptions{Seed: 53}
	scenario := "full re-seed (snapshot)"
	if !reseed {
		o.Log = store.Log()
		scenario = "catch-up (log replay)"
	}
	start := time.Now()
	rep, err := co2.SyncReplicas(context.Background(), o)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return []string{
		scenario, fmt.Sprint(missed), fmt.Sprint(elapsed.Round(10 * time.Microsecond)),
		fmt.Sprint(rep.Replayed), fmt.Sprint(rep.Snapshots),
		fmt.Sprintf("%.1f", float64(rep.Bytes)/1024), "-",
	}, nil
}

// throughputRow measures sequenced update throughput under one durability
// mode.
func throughputRow(mode string, size, batches int) ([]string, error) {
	g := gen.PowerLaw(gen.Config{Nodes: size, Edges: 4 * size, Labels: []string{"A", "B"}, Seed: 54})
	fr, err := fragment.Random(g, 3, 54)
	if err != nil {
		return nil, err
	}
	sites, addrs, err := netsite.ServeFragmentation(fr)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	switch mode {
	case "in-memory":
		// Dial's default sequencer.
	default:
		policy := oplog.SyncNever
		if mode == "wal fsync=always" {
			policy = oplog.SyncAlways
		}
		dir, err := os.MkdirTemp("", "distreach-n6-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := oplog.OpenStore(dir, oplog.LogOptions{Fsync: policy})
		if err != nil {
			return nil, err
		}
		defer store.Close()
		co.UseSequencer(oplog.NewDurableSequencer(store))
	}
	rng := gen.NewRNG(55)
	start := time.Now()
	for i := 0; i < batches; i++ {
		u, v := graph.NodeID(rng.Intn(size)), graph.NodeID(rng.Intn(size))
		kind := netsite.OpInsertEdge
		if i%2 == 1 {
			kind = netsite.OpDeleteEdge
		}
		if _, _, err := co.Apply([]netsite.Op{{Kind: kind, U: u, V: v}}); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	return []string{
		"update throughput (" + mode + ")", "-", "-", "-", "-", "-",
		fmt.Sprintf("%.0f", float64(batches)/elapsed.Seconds()),
	}, nil
}
