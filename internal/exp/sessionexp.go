package exp

import (
	"fmt"

	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/workload"
)

func init() {
	register("E1", sessionAmortization)
	register("E2", coalescePlacement)
}

// sessionAmortization measures the incremental Session extension (the
// conclusion's "combine partial evaluation and incremental computation"):
// repeated queries against a fixed target amortize the one-visit-per-site
// round down to at most one visit per query.
func sessionAmortization(cfg Config) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "Extension E1: session amortization for a fixed target",
		Header: []string{"mode", "queries", "total visits", "visits/query", "bytes/query"},
		Notes:  "The cold query pays the full round; warm queries visit at most the source's site.",
	}
	d := workload.ReachDatasets[1] // WikiTalk analogue
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, 8, d.Seed)
	if err != nil {
		return t, err
	}
	cl := cluster.New(8, cfg.net())
	rng := gen.NewRNG(91)
	nq := cfg.queries(50)
	target := graph.NodeID(1)
	sources := make([]graph.NodeID, nq)
	for i := range sources {
		sources[i] = graph.NodeID(rng.Intn(g.NumNodes()))
	}

	// Baseline: independent disReach per query.
	var base cluster.Report
	for _, s := range sources {
		base.Merge(core.DisReach(cl, fr, s, target, nil).Report)
	}
	// Session: shared rvset cache for the target.
	se := core.NewSession(cl, fr)
	var sess cluster.Report
	for i, s := range sources {
		rep := se.Reach(s, target).Report
		sess.Merge(rep)
		if got, want := rep.TotalVisits <= 8+1, true; i > 0 && got != want {
			return t, fmt.Errorf("exp: warm session query visited %d sites", rep.TotalVisits)
		}
	}
	row := func(name string, rep cluster.Report) []string {
		return []string{
			name, fmt.Sprint(nq), fmt.Sprint(rep.TotalVisits),
			fmt.Sprintf("%.2f", float64(rep.TotalVisits)/float64(nq)),
			fmt.Sprint(rep.Bytes / int64(nq)),
		}
	}
	t.Rows = append(t.Rows, row("disReach per query", base), row("session", sess))
	return t, nil
}

// coalescePlacement measures the multiple-fragments-per-site adaptation:
// co-locating fragments internalizes cross edges, shrinking |Vf| and the
// traffic with it.
func coalescePlacement(cfg Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Extension E2: co-locating fragments (multiple fragments per site)",
		Header: []string{"placement", "sites", "|Vf|", "bytes/query"},
		Notes:  "Edges between co-located fragments become internal; the guarantees are preserved with fewer visits.",
	}
	g := gen.Communities(gen.CommunitiesConfig{
		Communities: 8, Size: cfg.scale(800), InDegree: 6, OutDegree: 1, Seed: 77,
	})
	fr, err := fragment.Contiguous(g, 8) // one fragment per community
	if err != nil {
		return t, err
	}
	qs := workload.ReachQueries(g, cfg.queries(10), 0.3, 78)
	measure := func(name string, f *fragment.Fragmentation) error {
		cl := cluster.New(f.Card(), cfg.net())
		var rep cluster.Report
		for _, q := range qs {
			rep.Merge(core.DisReach(cl, f, q.S, q.T, nil).Report)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(f.Card()), fmt.Sprint(f.Vf()),
			fmt.Sprint(rep.Bytes / int64(len(qs))),
		})
		return nil
	}
	if err := measure("one fragment per site", fr); err != nil {
		return t, err
	}
	for _, sites := range []int{4, 2} {
		placement := make([]int, 8)
		for i := range placement {
			placement[i] = i * sites / 8
		}
		co, err := fragment.Coalesce(fr, placement, sites)
		if err != nil {
			return t, err
		}
		if err := measure(fmt.Sprintf("%d fragments per site", 8/sites), co); err != nil {
			return t, err
		}
	}
	return t, nil
}
