package exp

import (
	"fmt"
	"time"

	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/workload"
)

func init() {
	register("T2", table2)
	register("F11a", fig11a)
	register("F11b", fig11b)
	register("F11c", fig11c)
	register("X1", visitCount)
	register("X2", trafficRatio)
}

// reachAlgos runs the three reachability algorithms over a query set and
// returns per-algorithm aggregate reports.
type agg struct {
	resp  time.Duration
	bytes int64
	rep   cluster.Report
	n     int
}

func (a *agg) add(r cluster.Report) {
	a.rep.Merge(r)
	a.resp += r.Response
	a.bytes += r.Bytes
	a.n++
}

func (a *agg) meanResp() time.Duration {
	if a.n == 0 {
		return 0
	}
	return a.resp / time.Duration(a.n)
}

func runReachSet(fr *fragment.Fragmentation, net cluster.NetModel, qs []workload.Query) (pe, naive, mp agg) {
	cl := cluster.New(fr.Card(), net)
	for _, q := range qs {
		pe.add(core.DisReach(cl, fr, q.S, q.T, nil).Report)
		naive.add(baseline.DisReachN(cl, fr, q.S, q.T).Report)
		mp.add(baseline.DisReachM(cl, fr, q.S, q.T).Report)
	}
	return pe, naive, mp
}

// table2 regenerates Table 2: time and data shipment of disReach,
// disReachn, disReachm over the five real-life dataset analogues with
// card(F) = 4.
func table2(cfg Config) (Table, error) {
	t := Table{
		ID:     "T2",
		Title:  "Table 2: efficiency and data shipment, reachability queries (card(F)=4)",
		Header: []string{"dataset", "disReach ms", "disReachn ms", "disReachm ms", "disReach MB", "disReachn MB", "disReachm MB"},
		Notes:  "Paper shape: disReach fastest (20% of disReachn, 6% of disReachm on Amazon); disReachm ships least but runs slowest.",
	}
	nq := cfg.queries(10)
	for _, d := range workload.ReachDatasets {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		qs := workload.ReachQueries(g, nq, 0.3, d.Seed+7)
		cfg.logf("T2 %s: %v", d.Name, fr)
		pe, naive, mp := runReachSet(fr, cfg.net(), qs)
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmtMS(pe.meanResp()), fmtMS(naive.meanResp()), fmtMS(mp.meanResp()),
			fmtMB(pe.bytes), fmtMB(naive.bytes), fmtMB(mp.bytes),
		})
	}
	return t, nil
}

// fig11a regenerates Fig. 11(a): response time vs card(F) on the
// LiveJournal analogue, card(F) = 2..20.
func fig11a(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11a",
		Title:  "Fig 11(a): varying fragment number, LiveJournal analogue",
		Header: []string{"card(F)", "disReach ms", "disReachn ms", "disReachm ms"},
		Notes:  "Paper shape: disReach and disReachn drop as card(F) grows; disReachm grows.",
	}
	d := workload.ReachDatasets[0] // LiveJournal
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	qs := workload.ReachQueries(g, cfg.queries(10), 0.3, 77)
	for k := 2; k <= 20; k += 2 {
		fr, err := fragment.Random(g, k, uint64(k))
		if err != nil {
			return t, err
		}
		cfg.logf("F11a card=%d: %v", k, fr)
		pe, naive, mp := runReachSet(fr, cfg.net(), qs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmtMS(pe.meanResp()), fmtMS(naive.meanResp()), fmtMS(mp.meanResp()),
		})
	}
	return t, nil
}

// fig11b regenerates Fig. 11(b): response time vs fragment size at
// card(F) = 8 on densification-law synthetic graphs.
func fig11b(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11b",
		Title:  "Fig 11(b): varying fragment size, synthetic graphs (card(F)=8)",
		Header: []string{"size(F)", "disReach ms", "disReachn ms", "disReachm ms"},
		Notes:  "Paper shape: all grow with size(F); disReach grows slowest.",
	}
	const k = 8
	for _, sizeF := range []int{3500, 7500, 11500, 15500, 19500, 23500, 27500, 31500} {
		total := cfg.scale(sizeF * k) // nodes+edges across the graph
		v := total / 4
		e := total - v
		g := workload.Synthetic(v, e, 0, uint64(sizeF))
		fr, err := fragment.Random(g, k, uint64(sizeF))
		if err != nil {
			return t, err
		}
		qs := workload.ReachQueries(g, cfg.queries(10), 0.3, uint64(sizeF)+1)
		cfg.logf("F11b size(F)=%d: %v", sizeF, fr)
		pe, naive, mp := runReachSet(fr, cfg.net(), qs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(sizeF), fmtMS(pe.meanResp()), fmtMS(naive.meanResp()), fmtMS(mp.meanResp()),
		})
	}
	return t, nil
}

// fig11c regenerates Fig. 11(c): disReach vs disReachm on the large
// synthetic graph (paper: 36M nodes / 360M edges; analogue at 1/300),
// card(F) = 10..20.
func fig11c(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11c",
		Title:  "Fig 11(c): varying fragment number, large synthetic graph",
		Header: []string{"card(F)", "disReach ms", "disReachm ms"},
		Notes:  "Paper shape: disReach drops with card(F); disReachm grows.",
	}
	v := cfg.scale(120000)
	e := cfg.scale(1200000)
	g := workload.Synthetic(v, e, 0, 33)
	qs := workload.ReachQueries(g, cfg.queries(3), 0.3, 34)
	for k := 10; k <= 20; k += 2 {
		fr, err := fragment.Random(g, k, uint64(k)*3)
		if err != nil {
			return t, err
		}
		cl := cluster.New(k, cfg.net())
		var pe, mp agg
		for _, q := range qs {
			pe.add(core.DisReach(cl, fr, q.S, q.T, nil).Report)
			mp.add(baseline.DisReachM(cl, fr, q.S, q.T).Report)
		}
		cfg.logf("F11c card=%d: %v", k, fr)
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmtMS(pe.meanResp()), fmtMS(mp.meanResp())})
	}
	return t, nil
}

// visitCount regenerates the in-text claim of Exp-1: disReach visits each
// site exactly once per query while disReachm visits sites hundreds of
// times over a query set (the paper reports ~2500 total visits over the
// Amazon dataset with card(F) = 4, i.e. ~625 per site).
func visitCount(cfg Config) (Table, error) {
	t := Table{
		ID:     "X1",
		Title:  "Exp-1 text: site visits, Amazon analogue (card(F)=4)",
		Header: []string{"algorithm", "total visits", "visits/site/query", "max visits one site"},
		Notes:  "Paper: disReach visits each site once; disReachm visited the four sites ~2500 times in total.",
	}
	d := workload.ReachDatasets[4] // Amazon
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		return t, err
	}
	nq := cfg.queries(10)
	qs := workload.ReachQueries(g, nq, 0.3, 55)
	pe, _, mp := runReachSet(fr, cfg.net(), qs)
	perSite := func(a agg) string {
		return fmt.Sprintf("%.1f", float64(a.rep.TotalVisits)/float64(fr.Card())/float64(nq))
	}
	t.Rows = append(t.Rows,
		[]string{"disReach", fmt.Sprint(pe.rep.TotalVisits), perSite(pe), fmt.Sprint(pe.rep.MaxVisits)},
		[]string{"disReachm", fmt.Sprint(mp.rep.TotalVisits), perSite(mp), fmt.Sprint(mp.rep.MaxVisits)},
	)
	return t, nil
}

// trafficRatio regenerates the summary claim: the partial-evaluation
// algorithms ship no more than ~11% of the graph on average.
func trafficRatio(cfg Config) (Table, error) {
	t := Table{
		ID:     "X2",
		Title:  "Summary: disReach traffic as a fraction of graph size",
		Header: []string{"dataset", "graph bytes", "disReach bytes/query", "ratio"},
		Notes:  "Paper: data shipped is no more than 11% of the graphs on average.",
	}
	nq := cfg.queries(10)
	for _, d := range workload.ReachDatasets {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		qs := workload.ReachQueries(g, nq, 0.3, d.Seed+9)
		cl := cluster.New(fr.Card(), cfg.net())
		var pe agg
		for _, q := range qs {
			pe.add(core.DisReach(cl, fr, q.S, q.T, nil).Report)
		}
		gb := int64(graph.EncodedSize(g))
		per := pe.bytes / int64(nq)
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprint(gb), fmt.Sprint(per),
			fmt.Sprintf("%.1f%%", 100*float64(per)/float64(gb)),
		})
	}
	return t, nil
}
