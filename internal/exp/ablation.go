package exp

import (
	"fmt"
	"time"

	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/reach"
	"distreach/internal/workload"
)

func init() {
	register("A1", ablationIndex)
	register("A2", ablationBES)
}

// ablationIndex compares the pluggable local reachability engines inside
// disReach's localEval (DESIGN.md ablation 1; the paper's remark that "any
// indexing techniques ... can be applied here, which will lead to lower
// computational cost"). Index build time is paid once per fragment and
// amortized over the query set.
func ablationIndex(cfg Config) (Table, error) {
	t := Table{
		ID:     "A1",
		Title:  "Ablation A1: local reachability engine inside localEval",
		Header: []string{"engine", "build ms", "mean query ms"},
		Notes: "BFS pays nothing upfront and everything per query; the indexes flip that trade. " +
			"Index-backed localEval probes |I|x|O| pairs, so it only pays off with O(1) lookups (tc-bitset); " +
			"the fallback-based indexes lose to the frontier-cut BFS default.",
	}
	// The smallest dataset analogue: index-backed local evaluation is
	// quadratic in the boundary and would swamp the suite on larger ones.
	d := workload.ReachDatasets[4] // Amazon analogue
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		return t, err
	}
	qs := workload.ReachQueries(g, cfg.queries(5), 0.3, 71)
	cl := cluster.New(fr.Card(), cluster.NetModel{})
	// interval and landmark are excluded here: their negative probes fall
	// back to BFS, which the |I|x|O| probing pattern turns quadratic; see
	// BenchmarkAblationIndex for their microbenchmarks.
	engines := []struct {
		name string
		kind reach.Kind
	}{
		{"bfs (default)", reach.KindBFS},
		{"tc-bitset", reach.KindTC},
	}
	for _, e := range engines {
		var opt *core.Options
		var build time.Duration
		if e.kind != reach.KindBFS {
			idx := core.IndexCache(e.kind)
			start := time.Now()
			for _, f := range fr.Fragments() {
				idx(f) // force construction
			}
			build = time.Since(start)
			opt = &core.Options{LocalIndex: idx}
		}
		var total time.Duration
		for _, q := range qs {
			start := time.Now()
			core.DisReach(cl, fr, q.S, q.T, opt)
			total += time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			e.name, fmtMS(build), fmtMS(total / time.Duration(len(qs))),
		})
		cfg.logf("A1 %s done", e.name)
	}
	return t, nil
}

// ablationBES compares the dependency-graph solver (the paper's evalDG)
// with naive Kleene iteration on synthetic equation systems of growing
// |Vf| (DESIGN.md ablation 2).
func ablationBES(cfg Config) (Table, error) {
	t := Table{
		ID:     "A2",
		Title:  "Ablation A2: Boolean equation system solving strategy",
		Header: []string{"|Vd|", "evalDG ms", "fixpoint ms"},
		Notes:  "evalDG is linear in |Gd|; Kleene iteration degrades on deep dependency chains.",
	}
	for _, n := range []int{1000, 4000, 16000} {
		n = cfg.scale(n)
		build := func() *bes.System[int] {
			s := bes.New[int]()
			// A pure dependency chain whose truth flows against the scan
			// order: Kleene iteration needs O(|Vd|) passes while the
			// dependency-graph solver does one reverse BFS.
			for v := 0; v < n-1; v++ {
				s.Add(v, false, v+1)
			}
			s.Add(n-1, true)
			return s
		}
		s := build()
		start := time.Now()
		a := s.Solve()
		dg := time.Since(start)
		start = time.Now()
		b := s.SolveFixpoint()
		fp := time.Since(start)
		if len(a) != len(b) {
			return t, fmt.Errorf("exp: solvers disagree: %d vs %d true vars", len(a), len(b))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmtMS(dg), fmtMS(fp)})
		cfg.logf("A2 n=%d done", n)
	}
	return t, nil
}
