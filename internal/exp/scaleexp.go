package exp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

func init() {
	register("N7", realGraphScale)
}

// realGraphScale charts the real-graph-scale work from two angles.
//
// Load: open-loop latency vs offered load over the TCP runtime, on the
// checked-in SNAP sample (a real Gnutella-shaped edge list through the
// loader's remap) and a synthetic power-law graph of matching size.
// Arrivals follow a Poisson schedule independent of completions and
// latency is charged from the scheduled arrival, so the curve shows the
// classic open-loop knee: flat while the deployment keeps up, queueing
// blow-up past saturation — which a closed-loop measurement structurally
// cannot show.
//
// Memory: bytes per node of the CSR fragment layout versus the
// map-per-node layout it replaced, both heap-measured on the same
// fragmentation. The legacy layout is reconstructed field-for-field
// (localOf map, per-node adjacency slices, per-node label strings) so the
// comparison is against what the code actually shipped, not a strawman.
func realGraphScale(cfg Config) (Table, error) {
	t := Table{
		ID:     "N7",
		Title:  "Scale N7: open-loop latency vs offered load, and CSR vs map-per-node fragment memory",
		Header: []string{"graph", "offered q/s", "arrivals", "qps", "p50", "p99", "late p99", "CSR B/node", "map B/node", "reduction"},
		Notes: "Open loop: Poisson arrivals at the offered rate, 8 workers, latency charged from the scheduled arrival " +
			"(no coordinated omission; 'late p99' is dequeue delay — how far behind schedule the system ran). " +
			"Memory rows heap-measure (runtime.ReadMemStats around a fresh build) the CSR fragment storage against a " +
			"field-for-field reconstruction of the pre-CSR map-per-node layout over the same fragmentation.",
	}
	const k = 4
	type dataset struct {
		name string
		g    *graph.Graph
	}
	sample, err := graph.SampleSNAP([]string{"A", "B", "C"})
	if err != nil {
		return t, err
	}
	synth := gen.PowerLaw(gen.Config{
		Nodes:  cfg.scale(sample.NumNodes()),
		Edges:  cfg.scale(sample.NumEdges()),
		Labels: []string{"A", "B", "C"},
		Seed:   7,
	})
	datasets := []dataset{
		{fmt.Sprintf("p2p-sample (SNAP, |V|=%d)", sample.NumNodes()), sample},
		{fmt.Sprintf("powerlaw (synthetic, |V|=%d)", synth.NumNodes()), synth},
	}
	arrivals := cfg.queries(30) * 8
	for _, d := range datasets {
		fr, err := fragment.Random(d.g, k, 17)
		if err != nil {
			return t, err
		}
		sites, addrs, err := netsite.ServeFragmentation(fr)
		if err != nil {
			return t, err
		}
		co, err := netsite.Dial(addrs, 3*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			return t, err
		}
		for _, rate := range []float64{200, 600, 1800} {
			cfg.logf("N7: %s at %.0f q/s offered", d.name, rate)
			qps, p50, p99, latep99, err := openLoopPoint(co, d.g.NumNodes(), rate, arrivals, 19+uint64(rate))
			if err != nil {
				co.Close()
				for _, s := range sites {
					s.Close()
				}
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				d.name, fmt.Sprintf("%.0f", rate), fmt.Sprint(arrivals),
				fmt.Sprintf("%.0f", qps),
				p50.Round(10 * time.Microsecond).String(),
				p99.Round(10 * time.Microsecond).String(),
				latep99.Round(10 * time.Microsecond).String(),
				"-", "-", "-",
			})
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}

		// Memory row: heap-measure a fresh CSR build and a legacy-layout
		// reconstruction over the same graph and assignment.
		csrBytes, mapBytes, err := measureStorage(d.g, fr, k)
		if err != nil {
			return t, err
		}
		n := float64(d.g.NumNodes())
		t.Rows = append(t.Rows, []string{
			d.name, "-", "-", "-", "-", "-", "-",
			fmt.Sprintf("%.0f", float64(csrBytes)/n),
			fmt.Sprintf("%.0f", float64(mapBytes)/n),
			fmt.Sprintf("%.1fx", float64(mapBytes)/float64(csrBytes)),
		})
	}
	return t, nil
}

// openLoopPoint drives one measurement point: `arrivals` queries on a
// Poisson schedule at `rate` per second against co, 8 workers, latency
// charged from each query's scheduled arrival.
func openLoopPoint(co *netsite.Coordinator, n int, rate float64, arrivals int, seed uint64) (qps float64, p50, p99, latep99 time.Duration, err error) {
	const workers = 8
	type job struct{ sched time.Time }
	jobs := make(chan job, arrivals)
	lats := make([][]time.Duration, workers)
	lates := make([][]time.Duration, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := gen.NewRNG(seed + uint64(w)*104729)
			for j := range jobs {
				lates[w] = append(lates[w], time.Since(j.sched))
				s := graph.NodeID(rng.Intn(n))
				tt := graph.NodeID(rng.Intn(n))
				if _, _, e := co.Reach(s, tt); e != nil {
					errs[w] = e
					return
				}
				lats[w] = append(lats[w], time.Since(j.sched))
			}
		}(w)
	}
	rng := gen.NewRNG(seed ^ 0x5DEECE66D)
	next := start
	for i := 0; i < arrivals; i++ {
		next = next.Add(time.Duration(-math.Log(1-rng.Float64()) * float64(time.Second) / rate))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		jobs <- job{sched: next}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, 0, e
		}
	}
	var all, late []time.Duration
	for w := 0; w < workers; w++ {
		all = append(all, lats[w]...)
		late = append(late, lates[w]...)
	}
	if len(all) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("exp: N7: no queries completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(late, func(i, j int) bool { return late[i] < late[j] })
	pct := func(s []time.Duration, p float64) time.Duration { return s[int(p*float64(len(s)-1))] }
	return float64(len(all)) / elapsed.Seconds(),
		pct(all, 0.50), pct(all, 0.99), pct(late, 0.99), nil
}

// legacyFragment is the pre-CSR per-fragment storage, reconstructed
// field-for-field for the memory comparison: a map entry per node for the
// global-to-local index, a separately allocated adjacency slice per node,
// a Go string per node label.
type legacyFragment struct {
	localOf map[graph.NodeID]int32
	globals []graph.NodeID
	adj     [][]int32
	labels  []string
	isIn    []bool
	inNodes []int32
}

// measureStorage heap-measures (HeapAlloc delta across forced GCs) a fresh
// CSR fragmentation build and a legacy-layout reconstruction of the same
// fragmentation. Both measurements include everything each layout would
// retain; the shared input graph is excluded from both.
func measureStorage(g *graph.Graph, fr *fragment.Fragmentation, k int) (csrBytes, mapBytes int64, err error) {
	assign := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		assign[v] = fr.Owner(graph.NodeID(v))
	}
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	before := heap()
	fr2, err := fragment.Build(g, assign, k)
	if err != nil {
		return 0, 0, err
	}
	csrBytes = int64(heap() - before)

	before = heap()
	legacy := make([]*legacyFragment, 0, len(fr2.Fragments()))
	for _, f := range fr2.Fragments() {
		total := f.NumTotal()
		lf := &legacyFragment{
			localOf: make(map[graph.NodeID]int32, total),
			globals: make([]graph.NodeID, total),
			adj:     make([][]int32, total),
			labels:  make([]string, total),
			isIn:    make([]bool, total),
			inNodes: append([]int32(nil), f.InNodes()...),
		}
		for l := int32(0); l < int32(total); l++ {
			v := f.Global(l)
			lf.localOf[v] = l
			lf.globals[l] = v
			if row := f.Out(l); len(row) > 0 {
				lf.adj[l] = append([]int32(nil), row...)
			}
			// The legacy layout stored one string per node; cloning the
			// bytes reproduces its per-node backing allocations.
			lf.labels[l] = string(append([]byte(nil), f.Label(l)...))
		}
		legacy = append(legacy, lf)
	}
	mapBytes = int64(heap() - before)
	runtime.KeepAlive(fr2)
	runtime.KeepAlive(legacy)
	return csrBytes, mapBytes, nil
}
