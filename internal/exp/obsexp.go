package exp

import (
	"fmt"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/obs"
)

func init() {
	register("N11", guaranteeAudit)
}

// guaranteeAudit charts the paper's performance guarantees as live-audited
// invariants across a sweep of graph sizes. Each size is served over real
// TCP with tracing and the guarantee auditor armed, exactly as a
// production gateway runs them; the auditor checks every settled round
// while the queries execute, and the table reports what it measured
// against what the theory bounds:
//
//   - frames per site per round must never exceed 1 ("visit each site
//     once" — the number of visits is independent of the query);
//   - per-site response data must stay under c·(|Vf|+1)² bytes (response
//     volume depends on the fragment graph, not |G|);
//   - mean local evaluation time should not grow with |G| when fragment
//     size is held constant (local work is bounded by the fragment) —
//     the sweep scales the site count with the graph so |Fm| stays flat,
//     and the auditor's Pearson r over the (|G|, mean eval) points is
//     reported in the notes.
//
// Any frame or byte violation fails the experiment.
func guaranteeAudit(cfg Config) (Table, error) {
	t := Table{
		ID:     "N11",
		Title:  "Serving N11: the paper's guarantees audited live across graph sizes",
		Header: []string{"|G| nodes", "sites", "|Vf|", "byte bound", "max resp bytes", "mean eval ms", "frame viol", "byte viol"},
		Notes: "One TCP deployment per size, tracing and auditor armed as in production. Fragment size is held roughly constant " +
			"(site count scales with |G|), so the paper predicts flat per-site response volume relative to its c·(|Vf|+1)² bound, " +
			"exactly one frame per site per round, and eval time independent of |G|. \"max resp bytes\" is the auditor's running " +
			"maximum across the sweep so far.",
	}
	aud := obs.NewAuditor()
	var prev obs.AuditSummary
	var firstEval, lastEval time.Duration
	for _, base := range []int{300, 600, 1200, 2400} {
		n := cfg.scale(base)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: 4 * n, Labels: []string{"A", "B", "C"}, Seed: uint64(11 * base)})
		k := n / 75
		if k < 2 {
			k = 2
		}
		if k > 32 {
			k = 32
		}
		fr, err := fragment.Random(g, k, 7)
		if err != nil {
			return t, err
		}
		sites, addrs, err := netsite.ServeFragmentation(fr)
		if err != nil {
			return t, err
		}
		closeSites := func() {
			for _, s := range sites {
				s.Close()
			}
		}
		co, err := netsite.Dial(addrs, 3*time.Second)
		if err != nil {
			closeSites()
			return t, err
		}
		// Arm tracing so replies carry site eval spans (the auditor's
		// response-time samples come from them); the trees themselves are
		// mined for the per-size mean and dropped.
		var evals []time.Duration
		co.SetTraceSink(func(tr *obs.Trace) {
			for i := range tr.Spans {
				if tr.Spans[i].Name == "eval" {
					evals = append(evals, tr.Spans[i].Dur)
				}
			}
		})
		co.SetAuditor(aud)
		bs := fr.BalanceStats()
		aud.SetDeployment(int64(bs.Vf), int64(n))

		nq := cfg.queries(30)
		cfg.logf("N11: |G|=%d, %d sites, |Vf|=%d, %d queries", n, k, bs.Vf, nq)
		rng := gen.NewRNG(uint64(base))
		for i := 0; i < nq; i++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			if _, _, err := co.Reach(s, d); err != nil {
				co.Close()
				closeSites()
				return t, fmt.Errorf("exp: N11 reach(%d,%d) at |G|=%d: %w", s, d, n, err)
			}
		}
		co.Close()
		closeSites()

		sum := aud.Summary() // ByteBound/Vf still describe this size's deployment
		meanEval := "-"
		if len(evals) > 0 {
			var total time.Duration
			for _, d := range evals {
				total += d
			}
			mean := total / time.Duration(len(evals))
			meanEval = fmtMS(mean)
			if firstEval == 0 {
				firstEval = mean
			}
			lastEval = mean
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(bs.Vf),
			fmt.Sprint(sum.ByteBound), fmt.Sprint(sum.MaxRespBytes), meanEval,
			fmt.Sprint(sum.FrameViolations - prev.FrameViolations),
			fmt.Sprint(sum.ByteViolations - prev.ByteViolations),
		})
		prev = sum
	}

	final := aud.Summary()
	if final.SizePoints >= 2 && final.EvalSizeCorr != nil {
		t.Notes += fmt.Sprintf(" Measured Pearson r(|G|, mean eval) = %+.2f over %d size points (eval %s -> %sms).",
			*final.EvalSizeCorr, final.SizePoints, fmtMS(firstEval), fmtMS(lastEval))
	}
	if final.FrameViolations+final.ByteViolations > 0 {
		return t, fmt.Errorf("exp: N11 guarantee violations: %d frame, %d byte over %d rounds",
			final.FrameViolations, final.ByteViolations, final.Rounds)
	}
	return t, nil
}
