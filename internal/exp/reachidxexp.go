package exp

import (
	"fmt"
	"time"

	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

func init() {
	register("N8", reachIndexSweep)
}

// reachIndexSweep charts what the per-fragment reachability index buys as
// a function of its byte budget, on the checked-in SNAP sample: per-query
// site CPU (every fragment's local evaluation plus the coordinator solve,
// in-process so no wire noise), the q/s one evaluator core sustains, the
// index hit rate, and the label bytes actually spent. Budget 0 is the
// direct frontier-cut BFS baseline. A starved budget must degrade toward
// the baseline — never below it by more than the lookup overhead, and
// never wrong (the cross-check tests pin correctness; this experiment
// pins the performance shape).
func reachIndexSweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "N8",
		Title:  "Reach index N8: site CPU and q/s vs label budget (SNAP sample)",
		Header: []string{"budget", "site us/q", "site speedup", "e2e us/q", "e2e q/s (1 core)", "hit rate", "label bytes", "fragments"},
		Notes: "Edgecut partitioning, k=4. 'site us/q' is the summed per-fragment local evaluation time — the CPU the " +
			"sites burn per query, which is what the index attacks; 'e2e' adds the coordinator's equation solve " +
			"(identical on both paths). Budget 0 forces direct evaluation. A starved budget keeps the labels but " +
			"has no room for frontier lists, so it degrades gracefully toward the baseline instead of below it.",
	}
	g, err := graph.SampleSNAP([]string{"A", "B", "C"})
	if err != nil {
		return t, err
	}
	const k = 4
	rounds := cfg.queries(200)
	budgets := []int64{0, 4 << 10, 64 << 10, reachindex.DefaultBudget}
	var baseSiteUS float64
	for _, budget := range budgets {
		fr, err := fragment.Partition(g, fragment.EdgeCutPartitioner{Seed: 1}, k)
		if err != nil {
			return t, err
		}
		if budget > 0 {
			fr.EnableReachIndex(budget)
			fr.WaitReachIndexes()
		}
		cfg.logf("N8: budget %d, %d queries", budget, rounds)
		rng := gen.NewRNG(23)
		n := g.NumNodes()
		var opt *core.Options
		if budget == 0 {
			opt = &core.Options{NoFragmentIndex: true}
		}
		var siteTime, total time.Duration
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			s, tt := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			l0 := time.Now()
			partials := make([]*core.ReachPartial, 0, fr.Card())
			for _, f := range fr.Fragments() {
				partials = append(partials, core.LocalEvalReach(f, s, tt, opt))
			}
			siteTime += time.Since(l0)
			core.SolveReach(partials, s)
		}
		total = time.Since(t0)
		siteUS := float64(siteTime.Microseconds()) / float64(rounds)
		e2eUS := float64(total.Microseconds()) / float64(rounds)
		if budget == 0 {
			baseSiteUS = siteUS
		}
		st := fr.ReachIndexStats()
		label := fmt.Sprint(budget)
		if budget == 0 {
			label = "0 (direct)"
		} else if budget == reachindex.DefaultBudget {
			label = fmt.Sprintf("%d (default)", budget)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f", siteUS),
			fmt.Sprintf("%.1fx", baseSiteUS/siteUS),
			fmt.Sprintf("%.0f", e2eUS),
			fmt.Sprintf("%.0f", 1e6/e2eUS),
			fmt.Sprintf("%.2f", st.HitRate()),
			fmt.Sprint(st.LabelBytes),
			fmt.Sprint(st.Fragments),
		})
	}
	return t, nil
}
