package exp

import (
	"fmt"

	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/workload"
)

func init() {
	register("F11d", fig11d)
}

// fig11d regenerates Fig. 11(d) (Exp-2): disDist vs disDistn on the
// WikiTalk analogue, varying card(F) = 2..20, bounded reachability with
// l = 10.
func fig11d(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11d",
		Title:  "Fig 11(d): bounded reachability (l=10), WikiTalk analogue",
		Header: []string{"card(F)", "disDist ms", "disDistn ms"},
		Notes:  "Paper shape: disDist outperforms disDistn by ~62.5% on average; both drop as card(F) grows.",
	}
	d := workload.ReachDatasets[1] // WikiTalk
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	qs := workload.ReachQueries(g, cfg.queries(10), 0.3, 21)
	const l = 10
	for k := 2; k <= 20; k += 2 {
		fr, err := fragment.Random(g, k, uint64(k)*5)
		if err != nil {
			return t, err
		}
		cl := cluster.New(k, cfg.net())
		var pe, naive agg
		for _, q := range qs {
			pe.add(core.DisDist(cl, fr, q.S, q.T, l, nil).Report)
			naive.add(baseline.DisDistN(cl, fr, q.S, q.T, l).Report)
		}
		cfg.logf("F11d card=%d: %v", k, fr)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmtMS(pe.meanResp()), fmtMS(naive.meanResp()),
		})
	}
	return t, nil
}

// init registers the consistency check used by the harness to assert that
// algorithms agree while measuring (a safety net for the experiment code
// itself, not part of the paper's figures).
func init() { register("CHK", consistency) }

func consistency(cfg Config) (Table, error) {
	t := Table{
		ID:     "CHK",
		Title:  "Cross-algorithm agreement (sanity check)",
		Header: []string{"dataset", "queries", "agreements"},
	}
	for _, d := range workload.ReachDatasets[2:] {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		cl := cluster.New(fr.Card(), cfg.net())
		qs := workload.ReachQueries(g, cfg.queries(10), 0.3, d.Seed+3)
		agree := 0
		for _, q := range qs {
			a := core.DisReach(cl, fr, q.S, q.T, nil).Answer
			b := baseline.DisReachN(cl, fr, q.S, q.T).Answer
			c := baseline.DisReachM(cl, fr, q.S, q.T).Answer
			if a == b && b == c {
				agree++
			}
		}
		if agree != len(qs) {
			return t, fmt.Errorf("exp: algorithms disagree on %s (%d/%d)", d.Name, agree, len(qs))
		}
		t.Rows = append(t.Rows, []string{d.Name, fmt.Sprint(len(qs)), fmt.Sprint(agree)})
	}
	return t, nil
}
