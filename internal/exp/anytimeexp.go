package exp

import (
	"fmt"
	"sort"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
)

func init() {
	register("N10", anytimeFirstAnswer)
}

// anytimeFirstAnswer charts the anytime protocol's tentpole claim: when one
// site is an order of magnitude slower than the rest, a reach query whose
// certificate lives on the fast sites should answer at fast-site latency
// instead of waiting the straggler out. The deployment is the two-component
// skew topology the protocol is designed for — a chain alternating between
// two fast fragments and an isolated chain owned entirely by the straggler —
// so every reachable pair in the fast chain can be proven from streamed
// partials alone. The same workload runs twice, with anytime off (full
// strict rounds) and on, and the table compares first-answer percentiles.
// Both passes must agree with the constructed ground truth on every query;
// the anytime pass must cut first-answer p99 by at least 2x.
func anytimeFirstAnswer(cfg Config) (Table, error) {
	t := Table{
		ID:     "N10",
		Title:  "Serving N10: first-answer latency under a straggler site — anytime vs full rounds",
		Header: []string{"mode", "true queries", "early terminated", "first-ans p50", "first-ans p99", "p99 speedup", "mismatches"},
		Notes: "Two-component topology: a chain alternating between two fast sites (4ms service time) and an isolated chain owned by " +
			"one straggler site (80ms, a 20x skew). Reachable pairs inside the fast chain have their whole certificate on the fast " +
			"sites; with anytime on, streamed partials prove them and the round cancels the straggler, so first answer lands at " +
			"fast-site latency. False cross-component pairs need every site's finals in both modes and serve as the mismatch " +
			"cross-check (percentiles cover the true pairs only). The acceptance bound is a ≥2x first-answer p99 cut.",
	}
	const (
		fast = 4 * time.Millisecond
		slow = 80 * time.Millisecond // 20x skew: the straggler site
	)
	na := cfg.scale(40)
	nb := cfg.scale(12)
	b := graph.NewBuilder(na + nb)
	a0 := b.AddNodes(na, "A")
	b0 := b.AddNodes(nb, "B")
	for i := 0; i < na-1; i++ {
		b.AddEdge(a0+graph.NodeID(i), a0+graph.NodeID(i+1))
	}
	for i := 0; i < nb-1; i++ {
		b.AddEdge(b0+graph.NodeID(i), b0+graph.NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		return t, err
	}
	assign := make([]int, na+nb)
	for i := 0; i < na; i++ {
		assign[int(a0)+i] = i % 2
	}
	for i := 0; i < nb; i++ {
		assign[int(b0)+i] = 2
	}
	fr, err := fragment.Build(g, assign, 3)
	if err != nil {
		return t, err
	}
	delays := []time.Duration{fast, fast, slow}
	rep := fragment.NewReplica(fr)
	var sites []*netsite.Site
	var addrs []string
	closeSites := func() {
		for _, s := range sites {
			s.Close()
		}
	}
	for i, f := range fr.Fragments() {
		s, err := netsite.NewSiteReplica("127.0.0.1:0", rep, f.ID, netsite.SiteOptions{Delay: delays[i]})
		if err != nil {
			closeSites()
			return t, err
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	defer closeSites()
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return t, err
	}
	defer co.Close()

	// Workload: reachable pairs inside the fast chain (measured), plus a few
	// cross-component pairs that are false by construction (mismatch check).
	type query struct {
		s, t graph.NodeID
		want bool
	}
	rng := gen.NewRNG(97)
	nTrue := cfg.queries(20)
	nFalse := nTrue / 4
	if nFalse < 2 {
		nFalse = 2
	}
	qs := make([]query, 0, nTrue+nFalse)
	for i := 0; i < nTrue; i++ {
		x := rng.Intn(na - 1)
		y := x + 1 + rng.Intn(na-1-x)
		qs = append(qs, query{a0 + graph.NodeID(x), a0 + graph.NodeID(y), true})
	}
	for i := 0; i < nFalse; i++ {
		qs = append(qs, query{a0 + graph.NodeID(rng.Intn(na)), b0 + graph.NodeID(rng.Intn(nb)), false})
	}

	pct := func(lats []time.Duration, p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}
	type pass struct {
		mode       string
		early      int
		mismatches int
		p50, p99   time.Duration
	}
	var passes []pass
	for _, mode := range []string{"full", "anytime"} {
		co.SetAnytime(mode == "anytime")
		cfg.logf("N10: %s pass over %d queries", mode, len(qs))
		var lats []time.Duration
		ps := pass{mode: mode}
		for _, q := range qs {
			got, st, err := co.Reach(q.s, q.t)
			if err != nil {
				return t, err
			}
			if got != q.want {
				ps.mismatches++
			}
			if st.EarlyTerminated {
				ps.early++
			}
			if q.want {
				lats = append(lats, st.FirstAnswer)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ps.p50 = pct(lats, 0.50)
		ps.p99 = pct(lats, 0.99)
		passes = append(passes, ps)
	}

	full, any := passes[0], passes[1]
	speedup := func(p pass) string {
		if p.p99 == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(full.p99)/float64(p.p99))
	}
	for _, p := range []pass{full, any} {
		t.Rows = append(t.Rows, []string{
			p.mode, fmt.Sprint(nTrue), fmt.Sprint(p.early),
			fmtMS(p.p50) + "ms", fmtMS(p.p99) + "ms",
			speedup(p), fmt.Sprintf("%d/%d", p.mismatches, len(qs)),
		})
	}
	if full.mismatches+any.mismatches > 0 {
		return t, fmt.Errorf("exp: N10 answers disagree with ground truth (full %d, anytime %d of %d queries)",
			full.mismatches, any.mismatches, len(qs))
	}
	if any.early == 0 {
		return t, fmt.Errorf("exp: N10 anytime pass never early-terminated (%d true queries)", nTrue)
	}
	if full.p99 < 2*any.p99 {
		return t, fmt.Errorf("exp: N10 first-answer p99 win is %.1fx (full %v vs anytime %v), want >= 2x",
			float64(full.p99)/float64(any.p99), full.p99, any.p99)
	}
	return t, nil
}
