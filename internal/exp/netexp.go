package exp

import (
	"fmt"
	"sync"
	"time"

	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/netsite"
	"distreach/internal/qcache"
	"distreach/internal/workload"
)

func init() {
	register("N1", tcpCrossCheck)
	register("N2", tcpConcurrency)
	register("N3", tcpBatching)
	register("N4", churnEviction)
	register("N5", skewRebalance)
}

// tcpCrossCheck validates the in-process simulation against the real TCP
// runtime: the same fragmentation is served by actual socket servers, the
// same queries are evaluated both ways, answers must agree on every query,
// and the measured on-the-wire reply bytes are compared with the
// simulation's accounted reply bytes.
func tcpCrossCheck(cfg Config) (Table, error) {
	t := Table{
		ID:     "N1",
		Title:  "Validation N1: in-process simulation vs real TCP runtime",
		Header: []string{"dataset", "queries", "agreements", "sim reply B/query", "wire recv B/query", "tcp round trip"},
		Notes:  "Answers must agree on every query; wire bytes track the simulation's accounting (framing and equation headers add a small constant factor).",
	}
	for _, d := range []workload.Dataset{workload.ReachDatasets[4], workload.ReachDatasets[3]} {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		sites, addrs, err := netsite.ServeFragmentation(fr)
		if err != nil {
			return t, err
		}
		co, err := netsite.Dial(addrs, 3*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			return t, err
		}
		qs := workload.ReachQueries(g, cfg.queries(10), 0.3, d.Seed+31)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		agree := 0
		var simBytes, wireBytes int64
		var rt time.Duration
		for _, q := range qs {
			sim := core.DisReach(cl, fr, q.S, q.T, nil)
			got, st, err := co.Reach(q.S, q.T)
			if err != nil {
				co.Close()
				for _, s := range sites {
					s.Close()
				}
				return t, err
			}
			if got == sim.Answer {
				agree++
			}
			simBytes += sim.Report.BytesCoord
			wireBytes += st.BytesReceived
			rt += st.RoundTrip
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}
		if agree != len(qs) {
			return t, fmt.Errorf("exp: TCP and simulation disagree on %s (%d/%d)", d.Name, agree, len(qs))
		}
		n := int64(len(qs))
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprint(len(qs)), fmt.Sprint(agree),
			fmt.Sprint(simBytes / n), fmt.Sprint(wireBytes / n),
			fmt.Sprint(rt / time.Duration(n)),
		})
	}
	return t, nil
}

// tcpConcurrency measures multiplexed serving: the same TCP deployment is
// driven by 1, 2, 4 and 8 closed-loop clients sharing one coordinator's
// connections, and the table reports throughput and the speedup over the
// serialized (1-client) baseline. Before multiplexing, the coordinator
// pinned every query round behind one mutex, so this column was flat at
// 1.0x by construction.
func tcpConcurrency(cfg Config) (Table, error) {
	t := Table{
		ID:     "N2",
		Title:  "Serving N2: query throughput vs concurrent in-flight queries",
		Header: []string{"dataset", "clients", "queries", "throughput q/s", "speedup"},
		Notes: "Closed-loop clients share one coordinator and its site connections; frames are multiplexed by request ID. " +
			"Sites emulate a 10ms service time (a loaded or remote site): on loopback every site time-shares this " +
			"machine's cores, so without emulated latency a single query round already saturates local compute.",
	}
	d := workload.ReachDatasets[4]
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		return t, err
	}
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 10 * time.Millisecond})
	if err != nil {
		return t, err
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return t, err
	}
	defer co.Close()
	qs := workload.ReachQueries(g, cfg.queries(25)*8, 0.3, d.Seed+37)
	var base float64
	for _, clients := range []int{1, 2, 4, 8} {
		cfg.logf("N2: %s with %d clients", d.Name, clients)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(qs); i += clients {
					if _, _, err := co.Reach(qs[i].S, qs[i].T); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return t, err
			}
		}
		qps := float64(len(qs)) / elapsed.Seconds()
		if clients == 1 {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprint(clients), fmt.Sprint(len(qs)),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.1fx", qps/base),
		})
	}
	return t, nil
}

// tcpBatching measures wire-level batching: a fixed query budget is
// answered in batches of growing size over the same deployment, and the
// table shows frames per query shrinking as 2·sites/batch while
// throughput climbs — the per-batch form of the paper's one-visit bound,
// measured on real connections.
func tcpBatching(cfg Config) (Table, error) {
	t := Table{
		ID:     "N3",
		Title:  "Serving N3: frames and throughput vs wire batch size",
		Header: []string{"dataset", "batch", "queries", "frames/query", "wire B/query", "throughput q/s", "speedup"},
		Notes: "One serial client issues the same mixed qr/qbr workload in batches of growing size; every batch costs " +
			"one request and one response frame per site regardless of its size, so frames per query fall as 2·sites/batch. " +
			"Sites emulate a 5ms per-frame service time (a loaded or remote site), which batching amortizes across the batch.",
	}
	d := workload.ReachDatasets[4]
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		return t, err
	}
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 5 * time.Millisecond})
	if err != nil {
		return t, err
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return t, err
	}
	defer co.Close()
	n := g.NumNodes()
	budget := cfg.queries(16) * 8
	qs := make([]netsite.BatchQuery, budget)
	rqs := workload.ReachQueries(g, budget, 0.3, d.Seed+41)
	for i, q := range rqs {
		if i%2 == 0 {
			qs[i] = netsite.BatchQuery{Class: netsite.ClassReach, S: q.S, T: q.T}
		} else {
			qs[i] = netsite.BatchQuery{Class: netsite.ClassDist, S: q.S, T: q.T, L: 1 + i%8}
		}
		if qs[i].S == qs[i].T { // keep every query on the wire
			qs[i].T = (qs[i].T + 1) % graph.NodeID(n)
		}
	}
	var base float64
	for _, bsz := range []int{1, 2, 4, 8, 16} {
		cfg.logf("N3: %s with batch size %d", d.Name, bsz)
		var frames, bytes int64
		start := time.Now()
		for i := 0; i < len(qs); i += bsz {
			end := i + bsz
			if end > len(qs) {
				end = len(qs)
			}
			_, st, err := co.Batch(qs[i:end])
			if err != nil {
				return t, err
			}
			frames += st.FramesSent + st.FramesReceived
			bytes += st.BytesSent + st.BytesReceived
		}
		elapsed := time.Since(start)
		qps := float64(len(qs)) / elapsed.Seconds()
		if bsz == 1 {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprint(bsz), fmt.Sprint(len(qs)),
			fmt.Sprintf("%.2f", float64(frames)/float64(len(qs))),
			fmt.Sprint(bytes / int64(len(qs))),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.1fx", qps/base),
		})
	}
	return t, nil
}

// churnEviction measures live updates against the answer cache: a
// repeat-heavy query stream (the shape the cache exists for) is mixed with
// edge updates at growing churn rates, once with the per-fragment
// invalidation (evict only the keys whose evaluation touched a dirtied
// fragment) and once with the wholesale flush that predated it. The table
// reports cache hit rate and throughput: per-fragment eviction holds both
// up under churn, while flushing pays a full re-warm per update.
func churnEviction(cfg Config) (Table, error) {
	t := Table{
		ID:     "N4",
		Title:  "Serving N4: cache hit rate and throughput vs churn — per-fragment eviction vs wholesale flush",
		Header: []string{"dataset", "invalidation", "updates/1k queries", "queries", "updates", "hit rate", "throughput q/s"},
		Notes: "One serial client replays a repeat-heavy reach workload (128-query pool) through the answer cache while an " +
			"updater mixes in block-local edge inserts/deletes; every update invalidates either per-fragment (dirty set from the " +
			"sites, evicting only answers whose evaluation touched a dirtied fragment) or by flushing the whole cache. The " +
			"graph is a community SBM partitioned one block per fragment, so a query's touched set is its own block and an " +
			"update's dirty set misses the other fragments' answers. Sites emulate a 2ms per-frame service time, so every " +
			"avoided re-computation is visible in throughput.",
	}
	const blocks = 8
	size := cfg.scale(400)
	name := fmt.Sprintf("SBM %dx%d", blocks, size)
	budget := cfg.queries(25) * 40
	const seed = 11
	for _, mode := range []string{"per-fragment", "flush"} {
		for _, churn := range []int{0, 10, 50} { // updates per 1000 queries
			cfg.logf("N4: %s at churn %d/1k", mode, churn)
			// Fresh deployment per cell: updates mutate the graph, and both
			// modes must start from the same state to compare fairly. The
			// graph has planted communities and the partition recovers them
			// (one block per fragment), the regime per-fragment eviction is
			// designed for: queries and updates are block-local, so an
			// update's dirty set misses most cached answers.
			g := gen.Communities(gen.CommunitiesConfig{
				Communities: blocks, Size: size, InDegree: 4, Seed: seed,
			})
			fr, err := fragment.Contiguous(g, blocks)
			if err != nil {
				return t, err
			}
			sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 2 * time.Millisecond})
			if err != nil {
				return t, err
			}
			co, err := netsite.Dial(addrs, 3*time.Second)
			if err != nil {
				for _, s := range sites {
					s.Close()
				}
				return t, err
			}
			rng := gen.NewRNG(seed + 53)
			inBlock := func() (graph.NodeID, graph.NodeID) {
				base := rng.Intn(blocks) * size
				return graph.NodeID(base + rng.Intn(size)), graph.NodeID(base + rng.Intn(size))
			}
			pool := make([]core.Query, 128)
			for i := range pool {
				s, t := inBlock()
				pool[i] = core.Query{S: s, T: t}
			}
			cache := qcache.New[bool](4096)
			var hits, updates int
			every := 0
			if churn > 0 {
				every = 1000 / churn
			}
			start := time.Now()
			var failure error
			for q := 0; q < budget && failure == nil; q++ {
				if every > 0 && q%every == 0 && q > 0 {
					op := netsite.UpdateInsert
					if updates%2 == 1 {
						op = netsite.UpdateDelete
					}
					uu, uv := inBlock()
					res, _, err := co.Update(op, uu, uv)
					if err != nil {
						failure = err
						break
					}
					updates++
					if res.Changed {
						if mode == "flush" {
							cache.Flush()
						} else {
							cache.EvictFragments(res.Dirty)
						}
					}
				}
				qu := pool[rng.Intn(len(pool))]
				key := qcache.ReachKey(qu.S, qu.T)
				if _, ok := cache.Get(key); ok {
					hits++
					continue
				}
				epoch := cache.Generation()
				ans, st, err := co.Reach(qu.S, qu.T)
				if err != nil {
					failure = err
					break
				}
				cache.PutIfGeneration(key, ans, epoch, st.Touched)
			}
			elapsed := time.Since(start)
			co.Close()
			for _, s := range sites {
				s.Close()
			}
			if failure != nil {
				return t, failure
			}
			t.Rows = append(t.Rows, []string{
				name, mode, fmt.Sprint(churn), fmt.Sprint(budget), fmt.Sprint(updates),
				fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(budget)),
				fmt.Sprintf("%.0f", float64(budget)/elapsed.Seconds()),
			})
		}
	}
	return t, nil
}

// skewRebalance charts the tentpole of the online-rebalancing work: a
// community graph starts well partitioned, sustained skewed churn (hot-
// block edge inserts plus node inserts that attach to the hot block)
// degrades the fragmentation parameters the paper's guarantees depend on
// — |Fm| bloats, |Vf| and cross edges multiply — and per-query wire cost
// degrades with them. One live rebalance (epoch switch under traffic,
// balance-aware edge-cut partitioner) snaps both the parameters and the
// query cost back to within a fresh build's ballpark.
func skewRebalance(cfg Config) (Table, error) {
	t := Table{
		ID:     "N5",
		Title:  "Serving N5: query cost under skewed churn, before and after live rebalance",
		Header: []string{"phase", "|Fm|", "skew", "|Vf|", "cross edges", "wire B/query", "frames/query", "round trip/query"},
		Notes: "SBM community graph served over TCP (2ms emulated site service time), partitioned with the same edgecut strategy a real deployment would use. " +
			"The churn phase inserts hot-block edges and new nodes wired into the hot block; every query phase replays the same " +
			"mixed workload. The rebalance is the live epoch switch (queries keep flowing) with the edgecut (LDG) partitioner; " +
			"the last row rebuilds from scratch over the same mutated graph as the reference the 1.5x acceptance bound compares against.",
	}
	const blocks = 6
	size := cfg.scale(250)
	g := gen.Communities(gen.CommunitiesConfig{Communities: blocks, Size: size, InDegree: 4, Seed: 21})
	fr, err := fragment.EdgeCut(g, blocks, 21)
	if err != nil {
		return t, err
	}
	sites, addrs, err := netsite.ServeFragmentationOpts(fr, netsite.SiteOptions{Delay: 2 * time.Millisecond})
	if err != nil {
		return t, err
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := netsite.Dial(addrs, 3*time.Second)
	if err != nil {
		return t, err
	}
	defer co.Close()

	queries := cfg.queries(25) * 4
	rng := gen.NewRNG(22)
	qs := make([]core.Query, queries)
	n := g.NumNodes()
	for i := range qs {
		qs[i] = core.Query{S: graph.NodeID(rng.Intn(n)), T: graph.NodeID(rng.Intn(n))}
		if qs[i].S == qs[i].T {
			qs[i].T = (qs[i].T + 1) % graph.NodeID(n)
		}
	}
	measure := func(phase string, bs fragment.BalanceStats) error {
		var bytes, frames int64
		var rt time.Duration
		for _, q := range qs {
			_, st, err := co.Reach(q.S, q.T)
			if err != nil {
				return err
			}
			bytes += st.BytesSent + st.BytesReceived
			frames += st.FramesSent + st.FramesReceived
			rt += st.RoundTrip
		}
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprint(bs.MaxSize), fmt.Sprintf("%.2f", bs.Skew()),
			fmt.Sprint(bs.Vf), fmt.Sprint(bs.CrossEdges),
			fmt.Sprint(bytes / int64(len(qs))),
			fmt.Sprintf("%.1f", float64(frames)/float64(len(qs))),
			fmt.Sprint((rt / time.Duration(len(qs))).Round(time.Microsecond)),
		})
		return nil
	}

	if err := measure("fresh", fr.BalanceStats()); err != nil {
		return t, err
	}

	// Skewed churn: every round adds hot-block edges and one new node
	// wired into the hot block (its balance-aware placement lands it on a
	// cold fragment, so each attachment is a cross edge).
	cfg.logf("N5: skewed churn")
	churnRounds := cfg.scale(150)
	var churned fragment.BalanceStats
	crng := gen.NewRNG(23)
	hot := func() graph.NodeID { return graph.NodeID(crng.Intn(size)) }
	for i := 0; i < churnRounds; i++ {
		res, _, err := co.Apply([]netsite.Op{
			{Kind: netsite.OpInsertEdge, U: hot(), V: hot()},
			{Kind: netsite.OpInsertEdge, U: hot(), V: hot()},
			{Kind: netsite.OpInsertNode, Label: "A", Frag: -1},
		})
		if err != nil {
			return t, err
		}
		if _, _, err := co.Apply([]netsite.Op{
			{Kind: netsite.OpInsertEdge, U: hot(), V: res.NewIDs[0]},
			{Kind: netsite.OpInsertEdge, U: res.NewIDs[0], V: hot()},
		}); err != nil {
			return t, err
		}
		churned = res.Stats
	}
	if err := measure("after skewed churn", churned); err != nil {
		return t, err
	}

	// Live rebalance: the epoch switch happens under whatever traffic is
	// flowing; here the measurement traffic follows it immediately.
	cfg.logf("N5: rebalancing")
	reb, _, err := co.Rebalance(1, "edgecut", 24)
	if err != nil {
		return t, err
	}
	if err := measure("after rebalance", reb.Stats); err != nil {
		return t, err
	}

	// Reference: a from-scratch edge-cut build over the same mutated graph.
	ref, err := fragment.EdgeCut(g, blocks, 25)
	if err != nil {
		return t, err
	}
	rs := ref.BalanceStats()
	t.Rows = append(t.Rows, []string{
		"fresh rebuild (reference)", fmt.Sprint(rs.MaxSize), fmt.Sprintf("%.2f", rs.Skew()),
		fmt.Sprint(rs.Vf), fmt.Sprint(rs.CrossEdges), "-", "-", "-",
	})
	return t, nil
}
