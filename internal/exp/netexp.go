package exp

import (
	"fmt"
	"time"

	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/netsite"
	"distreach/internal/workload"
)

func init() {
	register("N1", tcpCrossCheck)
}

// tcpCrossCheck validates the in-process simulation against the real TCP
// runtime: the same fragmentation is served by actual socket servers, the
// same queries are evaluated both ways, answers must agree on every query,
// and the measured on-the-wire reply bytes are compared with the
// simulation's accounted reply bytes.
func tcpCrossCheck(cfg Config) (Table, error) {
	t := Table{
		ID:     "N1",
		Title:  "Validation N1: in-process simulation vs real TCP runtime",
		Header: []string{"dataset", "queries", "agreements", "sim reply B/query", "wire recv B/query", "tcp round trip"},
		Notes:  "Answers must agree on every query; wire bytes track the simulation's accounting (framing and equation headers add a small constant factor).",
	}
	for _, d := range []workload.Dataset{workload.ReachDatasets[4], workload.ReachDatasets[3]} {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		sites, addrs, err := netsite.ServeFragmentation(fr)
		if err != nil {
			return t, err
		}
		co, err := netsite.Dial(addrs, 3*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			return t, err
		}
		qs := workload.ReachQueries(g, cfg.queries(10), 0.3, d.Seed+31)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		agree := 0
		var simBytes, wireBytes int64
		var rt time.Duration
		for _, q := range qs {
			sim := core.DisReach(cl, fr, q.S, q.T, nil)
			got, st, err := co.Reach(q.S, q.T)
			if err != nil {
				co.Close()
				for _, s := range sites {
					s.Close()
				}
				return t, err
			}
			if got == sim.Answer {
				agree++
			}
			simBytes += sim.Report.BytesCoord
			wireBytes += st.BytesReceived
			rt += st.RoundTrip
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}
		if agree != len(qs) {
			return t, fmt.Errorf("exp: TCP and simulation disagree on %s (%d/%d)", d.Name, agree, len(qs))
		}
		n := int64(len(qs))
		t.Rows = append(t.Rows, []string{
			d.Name, fmt.Sprint(len(qs)), fmt.Sprint(agree),
			fmt.Sprint(simBytes / n), fmt.Sprint(wireBytes / n),
			fmt.Sprint(rt / time.Duration(n)),
		})
	}
	return t, nil
}
