package exp

import (
	"fmt"

	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/workload"
)

func init() {
	register("F11e", fig11e)
	register("F11f", fig11f)
	register("F11g", fig11g)
	register("F11h", fig11h)
	register("F11i", fig11i)
	register("F11j", fig11j)
}

// defaultComplexity is the paper's Exp-3 default: (|Vq|,|Eq|,|Lq|)=(8,16,8).
var defaultComplexity = workload.Complexity{States: 8, Transitions: 16, Labels: 8}

func runRPQSet(fr *fragment.Fragmentation, net cluster.NetModel, qs []workload.RPQQuery, withNaive bool) (pe, dd, naive agg) {
	cl := cluster.New(fr.Card(), net)
	for _, q := range qs {
		pe.add(core.DisRPQ(cl, fr, q.S, q.T, q.A, nil).Report)
		dd.add(baseline.DisRPQD(cl, fr, q.S, q.T, q.A).Report)
		if withNaive {
			naive.add(baseline.DisRPQN(cl, fr, q.S, q.T, q.A).Report)
		}
	}
	return
}

// fig11e regenerates Fig. 11(e): response time of disRPQ, disRPQd, disRPQn
// on the four labeled dataset analogues.
func fig11e(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11e",
		Title:  "Fig 11(e): regular reachability on labeled datasets",
		Header: []string{"dataset", "disRPQ ms", "disRPQd ms", "disRPQn ms"},
		Notes:  "Paper shape: disRPQ fastest (57-88% of disRPQd's time depending on dataset).",
	}
	nq := cfg.queries(10)
	for _, d := range workload.LabeledDatasets {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		qs := workload.RPQQueries(g, nq, defaultComplexity, d.Seed+11)
		cfg.logf("F11e %s: %v", d.Name, fr)
		pe, dd, naive := runRPQSet(fr, cfg.net(), qs, true)
		t.Rows = append(t.Rows, []string{
			d.Name, fmtMS(pe.meanResp()), fmtMS(dd.meanResp()), fmtMS(naive.meanResp()),
		})
	}
	return t, nil
}

// fig11f regenerates Fig. 11(f): network traffic for the same runs.
func fig11f(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11f",
		Title:  "Fig 11(f): network traffic, regular reachability",
		Header: []string{"dataset", "disRPQ MB", "disRPQd MB", "disRPQn MB"},
		Notes:  "Paper shape: disRPQ ships at most 25% of disRPQd and ~3% of disRPQn.",
	}
	nq := cfg.queries(10)
	for _, d := range workload.LabeledDatasets {
		d.V = cfg.scale(d.V)
		d.E = cfg.scale(d.E)
		g := d.Generate()
		fr, err := fragment.Random(g, d.CardF, d.Seed)
		if err != nil {
			return t, err
		}
		qs := workload.RPQQueries(g, nq, defaultComplexity, d.Seed+11)
		pe, dd, naive := runRPQSet(fr, cfg.net(), qs, true)
		t.Rows = append(t.Rows, []string{
			d.Name, fmtMB(pe.bytes), fmtMB(dd.bytes), fmtMB(naive.bytes),
		})
	}
	return t, nil
}

// fig11g regenerates Fig. 11(g): response time vs query complexity
// (|Vq|, |Eq|) from (4,8) to (18,36) with |Lq| = 8, Youtube analogue.
func fig11g(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11g",
		Title:  "Fig 11(g): varying query complexity, Youtube analogue",
		Header: []string{"(|Vq|,|Eq|)", "disRPQ ms", "disRPQd ms", "disRPQn ms"},
		Notes:  "Paper shape: all grow with query size; disRPQ and disRPQd less sensitive than disRPQn.",
	}
	d := workload.LabeledDatasets[2] // Youtube
	d.V = cfg.scale(d.V)
	d.E = cfg.scale(d.E)
	g := d.Generate()
	fr, err := fragment.Random(g, d.CardF, d.Seed)
	if err != nil {
		return t, err
	}
	nq := cfg.queries(10)
	for vq := 4; vq <= 18; vq += 2 {
		c := workload.Complexity{States: vq, Transitions: 2 * vq, Labels: 8}
		qs := workload.RPQQueries(g, nq, c, uint64(vq)*13)
		cfg.logf("F11g (%d,%d)", vq, 2*vq)
		pe, dd, naive := runRPQSet(fr, cfg.net(), qs, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("(%d,%d)", vq, 2*vq),
			fmtMS(pe.meanResp()), fmtMS(dd.meanResp()), fmtMS(naive.meanResp()),
		})
	}
	return t, nil
}

// fig11h regenerates Fig. 11(h): response time vs fragment size, synthetic
// labeled graphs with card(F) = 10.
func fig11h(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11h",
		Title:  "Fig 11(h): varying fragment size, synthetic labeled graphs (card(F)=10)",
		Header: []string{"size(F)", "disRPQ ms", "disRPQd ms", "disRPQn ms"},
		Notes:  "Paper shape: all grow; disRPQ scales best (16 s at 1.5M nodes in the paper's setup).",
	}
	const k = 10
	nq := cfg.queries(10)
	for _, sizeF := range []int{3500, 7500, 11500, 15500, 19500, 23500, 27500, 31500} {
		total := cfg.scale(sizeF * k)
		v := total / 4
		e := total - v
		g := workload.Synthetic(v, e, 50, uint64(sizeF)+100)
		fr, err := fragment.Random(g, k, uint64(sizeF))
		if err != nil {
			return t, err
		}
		qs := workload.RPQQueries(g, nq, defaultComplexity, uint64(sizeF)+5)
		cfg.logf("F11h size(F)=%d: %v", sizeF, fr)
		pe, dd, naive := runRPQSet(fr, cfg.net(), qs, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(sizeF), fmtMS(pe.meanResp()), fmtMS(dd.meanResp()), fmtMS(naive.meanResp()),
		})
	}
	return t, nil
}

// fig11i regenerates Fig. 11(i): response time vs card(F) = 6..20 on a
// synthetic labeled graph (paper: 1.2M nodes / 4.8M edges; 1/10 analogue).
func fig11i(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11i",
		Title:  "Fig 11(i): varying fragment number, synthetic labeled graph",
		Header: []string{"card(F)", "disRPQ ms", "disRPQd ms", "disRPQn ms"},
		Notes:  "Paper shape: disRPQ's time at card(F)=6 is cut ~75% by card(F)=20.",
	}
	v := cfg.scale(120000)
	e := cfg.scale(480000)
	g := workload.Synthetic(v, e, 50, 41)
	qs := workload.RPQQueries(g, cfg.queries(5), defaultComplexity, 42)
	for k := 6; k <= 20; k += 2 {
		fr, err := fragment.Random(g, k, uint64(k)*7)
		if err != nil {
			return t, err
		}
		cfg.logf("F11i card=%d: %v", k, fr)
		pe, dd, naive := runRPQSet(fr, cfg.net(), qs, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmtMS(pe.meanResp()), fmtMS(dd.meanResp()), fmtMS(naive.meanResp()),
		})
	}
	return t, nil
}

// fig11j regenerates Fig. 11(j): disRPQ vs disRPQd on the large synthetic
// labeled graph (paper: 36M/360M/|L|=50; 1/300 analogue), card(F)=10..20.
func fig11j(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11j",
		Title:  "Fig 11(j): varying fragment number, large synthetic labeled graph",
		Header: []string{"card(F)", "disRPQ ms", "disRPQd ms"},
		Notes:  "Paper shape: both drop with card(F); disRPQ consistently ahead.",
	}
	v := cfg.scale(120000)
	e := cfg.scale(1200000)
	g := workload.Synthetic(v, e, 50, 51)
	qs := workload.RPQQueries(g, cfg.queries(3), defaultComplexity, 52)
	for k := 10; k <= 20; k += 2 {
		fr, err := fragment.Random(g, k, uint64(k)*9)
		if err != nil {
			return t, err
		}
		cfg.logf("F11j card=%d: %v", k, fr)
		pe, dd, _ := runRPQSet(fr, cfg.net(), qs, false)
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmtMS(pe.meanResp()), fmtMS(dd.meanResp())})
	}
	return t, nil
}
