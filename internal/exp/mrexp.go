package exp

import (
	"fmt"
	"time"

	"distreach/internal/graph"
	"distreach/internal/mapreduce"
	"distreach/internal/workload"
)

func init() {
	register("F11k", fig11k)
	register("F11l", fig11l)
}

// q1to4 are the four query complexities of Exp-4:
// (4,6,8), (6,8,8), (10,12,8), (12,14,8).
var q1to4 = []workload.Complexity{
	{States: 4, Transitions: 6, Labels: 8},
	{States: 6, Transitions: 8, Labels: 8},
	{States: 10, Transitions: 12, Labels: 8},
	{States: 12, Transitions: 14, Labels: 8},
}

// fig11k regenerates Fig. 11(k): MRdRPQ response time vs graph size with 10
// mappers, for query sets Q1..Q4.
func fig11k(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11k",
		Title:  "Fig 11(k): MRdRPQ varying graph size (10 mappers)",
		Header: []string{"size(F)", "Q1 ms", "Q2 ms", "Q3 ms", "Q4 ms"},
		Notes:  "Paper shape: time grows with size(F) and with query complexity.",
	}
	const mappers = 10
	nq := cfg.queries(5)
	for _, sizeF := range []int{3500, 7500, 11500, 15500, 19500, 23500, 27500, 31500} {
		total := cfg.scale(sizeF * mappers)
		v := total / 4
		e := total - v
		g := workload.Synthetic(v, e, 12, uint64(sizeF)+200)
		row := []string{fmt.Sprint(sizeF)}
		for qi, c := range q1to4 {
			qs := workload.RPQQueries(g, nq, c, uint64(sizeF+qi)*17)
			d, err := runMR(cfg, g, qs, mappers)
			if err != nil {
				return t, err
			}
			row = append(row, fmtMS(d))
		}
		cfg.logf("F11k size(F)=%d done", sizeF)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runMR evaluates a query set with MRdRPQ and returns the mean response
// time per query: measured map+reduce wall time plus the modeled shipping
// time of the elapsed communication cost (the paper's ECC measure [1])
// over the configured link.
func runMR(cfg Config, g *graph.Graph, qs []workload.RPQQuery, mappers int) (time.Duration, error) {
	net := cfg.net()
	var sum time.Duration
	for _, q := range qs {
		res, err := mapreduce.MRdRPQ(g, q.S, q.T, q.A, mappers)
		if err != nil {
			return 0, err
		}
		sum += res.Stats.MapWall + res.Stats.ReduceWall + res.PreWall
		sum += net.Cost(int(res.Stats.ECC))
	}
	return sum / time.Duration(len(qs)), nil
}

// fig11l regenerates Fig. 11(l): MRdRPQ response time vs mapper count
// 5..30, Youtube-analogue graph, query sets Q1..Q4.
func fig11l(cfg Config) (Table, error) {
	t := Table{
		ID:     "F11l",
		Title:  "Fig 11(l): MRdRPQ varying mapper number",
		Header: []string{"mappers", "Q1 ms", "Q2 ms", "Q3 ms", "Q4 ms"},
		Notes:  "Paper shape: more mappers, less time (Q1 halves from 5 to 30 mappers).",
	}
	v := cfg.scale(40000)
	e := cfg.scale(120000)
	g := workload.Synthetic(v, e, 12, 61)
	nq := cfg.queries(5)
	for _, mappers := range []int{5, 10, 15, 20, 25, 30} {
		row := []string{fmt.Sprint(mappers)}
		for qi, c := range q1to4 {
			qs := workload.RPQQueries(g, nq, c, uint64(qi)*19+100)
			d, err := runMR(cfg, g, qs, mappers)
			if err != nil {
				return t, err
			}
			row = append(row, fmtMS(d))
		}
		cfg.logf("F11l mappers=%d done", mappers)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
