// Package pregel is a small vertex-centric bulk-synchronous-parallel
// substrate in the style of Malewicz et al.'s Pregel [21], which the paper
// uses as its message-passing comparison point (algorithm disReachm in
// Section 7). One worker (site) hosts each fragment; computation proceeds
// in supersteps; vertices exchange messages, vote to halt, and are
// reactivated by incoming messages. Messages between vertices in different
// fragments are delivered through the master and are accounted as visits to
// the destination site, matching the paper's visit metric for
// message-passing algorithms.
package pregel

import (
	"sync"
	"sync/atomic"

	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Context is handed to a vertex's Compute function for one superstep.
type Context[M any] struct {
	w         *worker[M]
	v         graph.NodeID
	halted    bool
	Superstep int
}

// Send delivers a message to vertex dst at the beginning of the next
// superstep.
func (c *Context[M]) Send(dst graph.NodeID, m M) { c.w.send(c.v, dst, m) }

// SendToNeighbors delivers a message to every out-neighbor of the current
// vertex.
func (c *Context[M]) SendToNeighbors(m M) {
	for _, w := range c.w.g.Out(c.v) {
		c.w.send(c.v, w, m)
	}
}

// VoteToHalt deactivates the vertex; it is reactivated by the next message
// it receives.
func (c *Context[M]) VoteToHalt() { c.halted = true }

// Signal raises the global stop flag: the engine finishes the current
// superstep and terminates. It backs early termination such as "the target
// has been reached".
func (c *Context[M]) Signal() { c.w.sig.Store(true) }

// Config describes one Pregel computation.
type Config[V, M any] struct {
	// Init returns the initial value of a vertex.
	Init func(v graph.NodeID) V
	// InitialActive lists the vertices active in superstep 0. Nil means all
	// vertices start active (standard Pregel); BFS-style programs activate
	// only the source.
	InitialActive []graph.NodeID
	// Compute processes one vertex for one superstep.
	Compute func(ctx *Context[M], v graph.NodeID, val *V, msgs []M)
	// MsgBytes accounts the wire size of one message; 0 means a flat 12
	// bytes (vertex ID + small payload).
	MsgBytes func(m M) int
	// MaxSupersteps caps execution; 0 means no cap.
	MaxSupersteps int
	// DeliverOnce makes the master drop cross-fragment messages to
	// vertices that have already received one earlier in the run. This is
	// the filter of the paper's disReachm description — the master
	// "redirects the message to workers Sj where the fragment Fj has
	// inactive in-node v" — and is only sound for programs whose first
	// message carries all the information (BFS activation). Local
	// (intra-fragment) messages are not filtered.
	DeliverOnce bool
}

// Engine runs Pregel computations over a fixed fragmentation.
type Engine[V, M any] struct {
	fr    *fragment.Fragmentation
	g     *graph.Graph
	cfg   Config[V, M]
	stop  atomic.Bool
	run   *cluster.Run
	sites []*worker[M]
	value []V
	halt  []bool
}

type worker[M any] struct {
	site int
	mu   sync.Mutex
	// outbox for the next superstep, keyed by destination site.
	local  map[graph.NodeID][]M
	remote map[int]map[graph.NodeID][]M
	// vertices that computed this superstep without voting to halt.
	keepActive []graph.NodeID
	g          *graph.Graph
	owner      func(graph.NodeID) int
	msgSz      func(M) int
	sig        *atomic.Bool
}

func (w *worker[M]) send(src, dst graph.NodeID, m M) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.owner(dst) == w.site {
		w.local[dst] = append(w.local[dst], m)
		return
	}
	site := w.owner(dst)
	if w.remote[site] == nil {
		w.remote[site] = make(map[graph.NodeID][]M)
	}
	w.remote[site][dst] = append(w.remote[site][dst], m)
}

// Result reports the outcome of a Pregel run.
type Result[V any] struct {
	Supersteps int
	Values     []V // indexed by NodeID
	Signalled  bool
}

// Run executes the computation, charging all accounting to run.
func Run[V, M any](run *cluster.Run, fr *fragment.Fragmentation, cfg Config[V, M]) Result[V] {
	g := fr.Graph()
	n := g.NumNodes()
	if cfg.MsgBytes == nil {
		cfg.MsgBytes = func(M) int { return 12 }
	}
	eng := &Engine[V, M]{fr: fr, g: g, cfg: cfg, run: run}
	eng.value = make([]V, n)
	eng.halt = make([]bool, n)
	if cfg.Init != nil {
		for v := 0; v < n; v++ {
			eng.value[v] = cfg.Init(graph.NodeID(v))
		}
	}
	k := fr.Card()
	workers := make([]*worker[M], k)
	for i := 0; i < k; i++ {
		workers[i] = &worker[M]{
			site:   i,
			local:  make(map[graph.NodeID][]M),
			remote: make(map[int]map[graph.NodeID][]M),
			g:      g,
			owner:  fr.Owner,
			msgSz:  cfg.MsgBytes,
			sig:    &eng.stop,
		}
	}

	// Cross-delivery dedup state for DeliverOnce.
	var delivered []bool
	if cfg.DeliverOnce {
		delivered = make([]bool, n)
	}

	// Current-superstep inboxes, per vertex.
	inbox := make([]map[graph.NodeID][]M, k)
	for i := range inbox {
		inbox[i] = make(map[graph.NodeID][]M)
	}
	if cfg.InitialActive == nil {
		for v := 0; v < n; v++ {
			site := fr.Owner(graph.NodeID(v))
			inbox[site][graph.NodeID(v)] = nil
		}
	} else {
		for _, v := range cfg.InitialActive {
			inbox[fr.Owner(v)][v] = nil
		}
	}

	supersteps := 0
	for {
		if cfg.MaxSupersteps > 0 && supersteps >= cfg.MaxSupersteps {
			break
		}
		anyActive := false
		for i := range inbox {
			if len(inbox[i]) > 0 {
				anyActive = true
				break
			}
		}
		if !anyActive || eng.stop.Load() {
			break
		}
		supersteps++
		run.AddRound()
		run.Parallel(func(site int) {
			w := workers[site]
			w.keepActive = w.keepActive[:0]
			for v, msgs := range inbox[site] {
				if eng.halt[v] && len(msgs) == 0 {
					continue
				}
				eng.halt[v] = false
				ctx := &Context[M]{w: w, v: v, Superstep: supersteps - 1}
				cfg.Compute(ctx, v, &eng.value[v], msgs)
				if ctx.halted {
					eng.halt[v] = true
				} else {
					w.keepActive = append(w.keepActive, v)
				}
			}
		})
		// Message exchange: local messages stay at the site; cross messages
		// travel through the master, which relays them one by one. We
		// follow the paper's visit metric and count one visit per cross
		// message delivered to a site; the master relay serializes, which
		// is exactly the cost the paper ascribes to message passing
		// ("may serialize operations that can be conducted in parallel").
		crossBytes, crossMsgs := 0, 0
		for i := range inbox {
			inbox[i] = make(map[graph.NodeID][]M)
		}
		for _, w := range workers {
			w.mu.Lock()
			for v, msgs := range w.local {
				inbox[w.site][v] = append(inbox[w.site][v], msgs...)
			}
			w.local = make(map[graph.NodeID][]M)
			for site, byDst := range w.remote {
				// The master bundles all of a worker's messages for one
				// destination site into a single delivery (one visit), but
				// handles each vertex message individually (serial relay
				// cost below).
				batchBytes := 0
				for v, msgs := range byDst {
					if cfg.DeliverOnce {
						if delivered[v] {
							continue
						}
						delivered[v] = true
						msgs = msgs[:1]
					}
					for _, m := range msgs {
						batchBytes += cfg.MsgBytes(m)
					}
					inbox[site][v] = append(inbox[site][v], msgs...)
					crossMsgs += len(msgs)
				}
				if batchBytes > 0 {
					run.Route(w.site, site, batchBytes)
					crossBytes += batchBytes
				}
			}
			w.remote = make(map[int]map[graph.NodeID][]M)
			// Vertices that did not vote to halt stay active even without
			// incoming messages.
			for _, v := range w.keepActive {
				if _, ok := inbox[w.site][v]; !ok {
					inbox[w.site][v] = nil
				}
			}
			w.mu.Unlock()
		}
		if crossMsgs > 0 {
			run.NetSerial(crossBytes, crossMsgs)
		}
	}
	return Result[V]{Supersteps: supersteps, Values: eng.value, Signalled: eng.stop.Load()}
}
