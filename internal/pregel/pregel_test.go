package pregel

import (
	"testing"

	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func setup(t *testing.T, n, m, k int, seed uint64) (*graph.Graph, *fragment.Fragmentation, *cluster.Run) {
	t.Helper()
	g := gen.Uniform(gen.Config{Nodes: n, Edges: m, Seed: seed})
	fr, err := fragment.Random(g, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(k, cluster.NetModel{})
	return g, fr, cl.NewRun()
}

// TestBFSDistances runs the canonical Pregel program (single-source
// distances) and compares with the centralized oracle.
func TestBFSDistances(t *testing.T) {
	g, fr, run := setup(t, 60, 240, 4, 1)
	const inf = int32(1) << 30
	src := graph.NodeID(0)
	res := Run[int32, int32](run, fr, Config[int32, int32]{
		Init:          func(v graph.NodeID) int32 { return inf },
		InitialActive: []graph.NodeID{src},
		Compute: func(ctx *Context[int32], v graph.NodeID, val *int32, msgs []int32) {
			defer ctx.VoteToHalt()
			best := inf
			if v == src && ctx.Superstep == 0 {
				best = 0
			}
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < *val {
				*val = best
				ctx.SendToNeighbors(best + 1)
			}
		},
	})
	want := g.DistancesFrom(src, -1)
	for v := 0; v < g.NumNodes(); v++ {
		got := res.Values[v]
		if want[v] < 0 {
			if got != inf {
				t.Fatalf("node %d: got %d, want unreachable", v, got)
			}
			continue
		}
		if got != want[v] {
			t.Fatalf("node %d: got %d, want %d", v, got, want[v])
		}
	}
}

func TestSignalStopsEarly(t *testing.T) {
	_, fr, run := setup(t, 50, 200, 3, 2)
	res := Run[bool, struct{}](run, fr, Config[bool, struct{}]{
		Compute: func(ctx *Context[struct{}], v graph.NodeID, val *bool, msgs []struct{}) {
			ctx.Signal()
			ctx.VoteToHalt()
		},
	})
	if !res.Signalled {
		t.Fatal("signal lost")
	}
	if res.Supersteps != 1 {
		t.Fatalf("ran %d supersteps after signal", res.Supersteps)
	}
}

func TestMaxSuperstepsCap(t *testing.T) {
	_, fr, run := setup(t, 20, 80, 2, 3)
	res := Run[int, int](run, fr, Config[int, int]{
		MaxSupersteps: 3,
		Compute: func(ctx *Context[int], v graph.NodeID, val *int, msgs []int) {
			// Never halt: always message self to stay alive.
			ctx.Send(v, 1)
		},
	})
	if res.Supersteps != 3 {
		t.Fatalf("supersteps = %d, want cap 3", res.Supersteps)
	}
}

func TestNonHaltedVertexStaysActive(t *testing.T) {
	_, fr, run := setup(t, 10, 0, 2, 4)
	steps := 0
	Run[int, int](run, fr, Config[int, int]{
		InitialActive: []graph.NodeID{0},
		MaxSupersteps: 5,
		Compute: func(ctx *Context[int], v graph.NodeID, val *int, msgs []int) {
			steps++
			if steps >= 3 {
				ctx.VoteToHalt()
			}
			// Not voting to halt: must be re-invoked next superstep even
			// without messages.
		},
	})
	if steps != 3 {
		t.Fatalf("vertex computed %d times, want 3", steps)
	}
}

func TestCrossFragmentMessagesAreAccounted(t *testing.T) {
	// A two-node chain split across two fragments forces one cross message.
	b := graph.NewBuilder(2)
	b.AddNode("")
	b.AddNode("")
	b.AddEdge(0, 1)
	g := b.MustBuild()
	fr, err := fragment.Build(g, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(2, cluster.NetModel{})
	run := cl.NewRun()
	Run[bool, struct{}](run, fr, Config[bool, struct{}]{
		InitialActive: []graph.NodeID{0},
		Compute: func(ctx *Context[struct{}], v graph.NodeID, val *bool, msgs []struct{}) {
			defer ctx.VoteToHalt()
			if !*val {
				*val = true
				ctx.SendToNeighbors(struct{}{})
			}
		},
	})
	rep := run.Finish()
	if rep.Visits[1] != 1 {
		t.Fatalf("cross message not accounted as a visit: %v", rep.Visits)
	}
	if rep.Bytes == 0 {
		t.Fatal("cross message bytes not accounted")
	}
}

// TestLabelPropagation runs a second vertex program — weakly-connected
// component labeling by min-ID propagation over both edge directions — to
// show the substrate is not BFS-specific.
func TestLabelPropagation(t *testing.T) {
	// Two disjoint cycles: components {0..4} and {5..9}.
	b := graph.NewBuilder(10)
	for i := 0; i < 10; i++ {
		b.AddNode("")
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%5))
		b.AddEdge(graph.NodeID(5+i), graph.NodeID(5+(i+1)%5))
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(2, cluster.NetModel{})
	run := cl.NewRun()
	res := Run[int32, int32](run, fr, Config[int32, int32]{
		Init: func(v graph.NodeID) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.NodeID, val *int32, msgs []int32) {
			defer ctx.VoteToHalt()
			best := *val
			if ctx.Superstep == 0 {
				best = int32(v)
			}
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < *val || ctx.Superstep == 0 {
				*val = best
				// Propagate along both directions to label weak components.
				for _, w := range g.Out(v) {
					ctx.Send(w, best)
				}
				for _, w := range g.In(v) {
					ctx.Send(w, best)
				}
			}
		},
	})
	for v := 0; v < 5; v++ {
		if res.Values[v] != 0 {
			t.Fatalf("node %d labeled %d, want 0", v, res.Values[v])
		}
	}
	for v := 5; v < 10; v++ {
		if res.Values[v] != 5 {
			t.Fatalf("node %d labeled %d, want 5", v, res.Values[v])
		}
	}
}
