// Package bitset provides the fixed-size bit sets used to encode partial
// answers compactly. The paper's traffic accounting assumes each Boolean
// equation is shipped as |Fi.O| bits (Section 3, "each of |Fi.O| bits
// indicating the presence or absence of variables in the Boolean formula");
// bitsets make that encoding literal.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The capacity is fixed at creation; index
// arguments must be within it.
type Set []uint64

// New returns a set with capacity for n bits, all clear.
func New(n int) Set { return make(Set, (n+63)/64) }

// Set sets bit i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (s Set) Get(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Or sets s to the union s ∪ t; t must have the same capacity. It reports
// whether s changed.
func (s Set) Or(t Set) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// Count reports the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	t := make(Set, len(s))
	copy(t, s)
	return t
}

// Reset clears all bits.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// ForEach calls fn for every set bit index in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Bytes reports the number of bytes this set occupies on the wire.
func (s Set) Bytes() int { return 8 * len(s) }
