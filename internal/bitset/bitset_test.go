package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	if s.Any() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Get(0) || !s.Get(64) || !s.Get(129) || s.Get(1) {
		t.Fatal("get/set wrong across word boundaries")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 2 {
		t.Fatal("clear failed")
	}
}

func TestOrReportsChange(t *testing.T) {
	a := New(100)
	b := New(100)
	b.Set(42)
	if !a.Or(b) {
		t.Fatal("Or should report change")
	}
	if a.Or(b) {
		t.Fatal("second Or should be a no-op")
	}
	if !a.Get(42) {
		t.Fatal("Or lost bit")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v", got)
		}
	}
}

func TestCloneAndReset(t *testing.T) {
	s := New(70)
	s.Set(69)
	c := s.Clone()
	s.Reset()
	if s.Any() {
		t.Fatal("reset failed")
	}
	if !c.Get(69) {
		t.Fatal("clone shares storage")
	}
}

func TestSetGetProperty(t *testing.T) {
	check := func(idxs []uint8) bool {
		s := New(256)
		ref := map[int]bool{}
		for _, i := range idxs {
			s.Set(int(i))
			ref[int(i)] = true
		}
		for i := 0; i < 256; i++ {
			if s.Get(i) != ref[i] {
				return false
			}
		}
		return s.Count() == len(ref)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	if New(1).Bytes() != 8 || New(64).Bytes() != 8 || New(65).Bytes() != 16 {
		t.Fatal("wire size accounting wrong")
	}
}
