package reach

import (
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

func randomGraph(seed uint64, n, m int) *graph.Graph {
	return gen.Uniform(gen.Config{Nodes: n, Edges: m, Seed: seed})
}

// TestAllIndexesMatchBFS is the central property: every index kind answers
// exactly like plain BFS on arbitrary graphs, including cyclic ones.
func TestAllIndexesMatchBFS(t *testing.T) {
	kinds := []Kind{KindTC, KindInterval, KindLandmark}
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 30, int(seed*7)%120)
		oracle := BFS{G: g}
		for _, k := range kinds {
			idx := Build(k, g)
			for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
				for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
					if got, want := idx.Reaches(u, v), oracle.Reaches(u, v); got != want {
						t.Fatalf("%v seed %d: Reaches(%d,%d)=%v, BFS=%v", k, seed, u, v, got, want)
					}
				}
			}
		}
	}
}

func TestTCOnCycle(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddNode("")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	tc := NewTC(g)
	for u := graph.NodeID(0); u < 3; u++ {
		for v := graph.NodeID(0); v < 4; v++ {
			if !tc.Reaches(u, v) {
				t.Fatalf("cycle member %d should reach %d", u, v)
			}
		}
	}
	if tc.Reaches(3, 0) {
		t.Fatal("sink reaches cycle")
	}
}

func TestIntervalTreePath(t *testing.T) {
	// A path graph: intervals alone certify all reachability.
	b := graph.NewBuilder(10)
	for i := 0; i < 10; i++ {
		b.AddNode("")
	}
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.MustBuild()
	ix := NewInterval(g)
	if !ix.Reaches(0, 9) || ix.Reaches(9, 0) {
		t.Fatal("interval index wrong on path")
	}
}

func TestLandmarkEdgeCases(t *testing.T) {
	// Graph smaller than the landmark budget.
	g := randomGraph(3, 5, 10)
	lm := NewLandmark(g, 100)
	for u := graph.NodeID(0); int(u) < 5; u++ {
		for v := graph.NodeID(0); int(v) < 5; v++ {
			if lm.Reaches(u, v) != g.Reachable(u, v) {
				t.Fatalf("landmark wrong on (%d,%d)", u, v)
			}
		}
	}
	// Zero landmarks degrade to plain BFS.
	lm0 := NewLandmark(g, 0)
	if lm0.Reaches(0, 0) != true {
		t.Fatal("self reachability")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBFS: "bfs", KindTC: "tc-bitset", KindInterval: "interval", KindLandmark: "landmark",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBuildDispatch(t *testing.T) {
	g := randomGraph(1, 10, 20)
	for _, k := range []Kind{KindBFS, KindTC, KindInterval, KindLandmark} {
		if Build(k, g) == nil {
			t.Fatalf("Build(%v) returned nil", k)
		}
	}
}
