// Package reach provides centralized reachability indexes. The paper's
// localEval checks "v' ∈ des(v, Fi)" with "any available centralized
// algorithm for reachability queries [31]" and notes that indexing
// techniques (reachability matrix, 2-hop labels [5]) can replace plain
// DFS/BFS to lower the local-evaluation cost. This package supplies those
// options behind one interface so that the ablation experiment A1 of
// DESIGN.md can compare them inside the distributed algorithms.
package reach

import (
	"fmt"

	"distreach/internal/bitset"
	"distreach/internal/graph"
)

// Index answers reachability queries on a fixed graph. Implementations are
// immutable after construction and safe for concurrent use.
type Index interface {
	// Reaches reports whether v is reachable from u (u reaches itself).
	Reaches(u, v graph.NodeID) bool
}

// Kind selects an Index implementation.
type Kind int

// Available index kinds.
const (
	KindBFS      Kind = iota // no precomputation; BFS per query
	KindTC                   // SCC condensation + bitset transitive closure
	KindInterval             // DFS-forest interval labels with pruned-BFS fallback
	KindLandmark             // degree-ranked landmarks with pruned-BFS fallback
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBFS:
		return "bfs"
	case KindTC:
		return "tc-bitset"
	case KindInterval:
		return "interval"
	case KindLandmark:
		return "landmark"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Build constructs an index of the given kind over g.
func Build(k Kind, g *graph.Graph) Index {
	switch k {
	case KindBFS:
		return BFS{G: g}
	case KindTC:
		return NewTC(g)
	case KindInterval:
		return NewInterval(g)
	case KindLandmark:
		return NewLandmark(g, defaultLandmarks(g))
	}
	panic("reach: unknown index kind " + k.String())
}

func defaultLandmarks(g *graph.Graph) int {
	n := g.NumNodes()
	switch {
	case n <= 64:
		return n / 4
	case n <= 4096:
		return 32
	default:
		return 64
	}
}

// BFS is the index-free strategy: each query is answered by a fresh BFS.
type BFS struct{ G *graph.Graph }

// Reaches implements Index.
func (b BFS) Reaches(u, v graph.NodeID) bool { return b.G.Reachable(u, v) }

// TC is a transitive-closure index: reachability between strongly connected
// components is materialized as bitsets, so queries are O(1). Construction
// is O((|V|+|E|) · nc/64) time and O(nc²/64) space for nc components; use it
// for fragments, not for billion-edge graphs.
type TC struct {
	comp []int32
	desc []bitset.Set // per component: reachable components (including self)
}

// NewTC builds the transitive closure of g.
func NewTC(g *graph.Graph) *TC {
	comp, dag := g.Condensation()
	nc := dag.NumNodes()
	desc := make([]bitset.Set, nc)
	// Component IDs are topologically ordered (edges go from smaller to
	// larger IDs), so a reverse sweep sees all successors first.
	for c := nc - 1; c >= 0; c-- {
		s := bitset.New(nc)
		s.Set(c)
		for _, d := range dag.Out(graph.NodeID(c)) {
			s.Or(desc[d])
		}
		desc[c] = s
	}
	return &TC{comp: comp, desc: desc}
}

// Reaches implements Index.
func (t *TC) Reaches(u, v graph.NodeID) bool {
	return t.desc[t.comp[u]].Get(int(t.comp[v]))
}

// Interval is a tree-cover index: a DFS spanning forest assigns each node a
// [pre, post) interval; containment certifies reachability along tree edges
// in O(1). Non-tree reachability falls back to BFS, pruned by the intervals
// (whenever the BFS visits a node whose interval contains the target, it
// answers true immediately).
type Interval struct {
	g         *graph.Graph
	pre, post []int32
}

// NewInterval builds the interval labels over a deterministic DFS forest.
func NewInterval(g *graph.Graph) *Interval {
	n := g.NumNodes()
	ix := &Interval{g: g, pre: make([]int32, n), post: make([]int32, n)}
	for i := range ix.pre {
		ix.pre[i] = -1
	}
	var clock int32
	type frame struct {
		v graph.NodeID
		i int
	}
	var stack []frame
	for root := graph.NodeID(0); int(root) < n; root++ {
		if ix.pre[root] >= 0 {
			continue
		}
		ix.pre[root] = clock
		clock++
		stack = append(stack, frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(g.Out(f.v)) {
				w := g.Out(f.v)[f.i]
				f.i++
				if ix.pre[w] < 0 {
					ix.pre[w] = clock
					clock++
					stack = append(stack, frame{w, 0})
				}
				continue
			}
			ix.post[f.v] = clock
			clock++
			stack = stack[:len(stack)-1]
		}
	}
	return ix
}

// covers reports whether u's DFS-tree subtree contains v.
func (ix *Interval) covers(u, v graph.NodeID) bool {
	return ix.pre[u] <= ix.pre[v] && ix.post[v] <= ix.post[u]
}

// Reaches implements Index.
func (ix *Interval) Reaches(u, v graph.NodeID) bool {
	if u == v || ix.covers(u, v) {
		return true
	}
	seen := make([]bool, ix.g.NumNodes())
	seen[u] = true
	queue := []graph.NodeID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range ix.g.Out(x) {
			if seen[w] {
				continue
			}
			if w == v || ix.covers(w, v) {
				return true
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	return false
}

// Landmark is a pruned-landmark index in the spirit of 2-hop labels [5]:
// for each of the L highest-degree nodes h we store anc(h) (nodes that
// reach h) and desc(h) (nodes h reaches) as bitsets. A query (u, v) is true
// if some landmark h has u ∈ anc(h) and v ∈ desc(h). Otherwise every u~>v
// path avoids all landmarks, so a fallback BFS that never expands landmarks
// decides the query exactly.
type Landmark struct {
	g        *graph.Graph
	isLand   []bool
	anc      []bitset.Set
	desc     []bitset.Set
	landmark []graph.NodeID
}

// NewLandmark builds an index with l landmarks chosen by total degree.
func NewLandmark(g *graph.Graph, l int) *Landmark {
	n := g.NumNodes()
	if l > n {
		l = n
	}
	// Select the l nodes with the largest in+out degree.
	type dn struct {
		d int
		v graph.NodeID
	}
	best := make([]dn, 0, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		best = append(best, dn{g.OutDegree(v) + g.InDegree(v), v})
	}
	// Partial selection sort of the top l (l is small).
	for i := 0; i < l; i++ {
		maxJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].d > best[maxJ].d {
				maxJ = j
			}
		}
		best[i], best[maxJ] = best[maxJ], best[i]
	}
	lm := &Landmark{g: g, isLand: make([]bool, n)}
	rg := g.Reverse()
	for i := 0; i < l; i++ {
		h := best[i].v
		lm.landmark = append(lm.landmark, h)
		lm.isLand[h] = true
		lm.desc = append(lm.desc, reachSet(g, h))
		lm.anc = append(lm.anc, reachSet(rg, h))
	}
	return lm
}

func reachSet(g *graph.Graph, s graph.NodeID) bitset.Set {
	set := bitset.New(g.NumNodes())
	set.Set(int(s))
	stack := []graph.NodeID{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out(v) {
			if !set.Get(int(w)) {
				set.Set(int(w))
				stack = append(stack, w)
			}
		}
	}
	return set
}

// Reaches implements Index.
func (lm *Landmark) Reaches(u, v graph.NodeID) bool {
	if u == v {
		return true
	}
	for i := range lm.landmark {
		if lm.anc[i].Get(int(u)) && lm.desc[i].Get(int(v)) {
			return true
		}
	}
	// No path through a landmark exists; search the landmark-free graph.
	seen := make([]bool, lm.g.NumNodes())
	seen[u] = true
	queue := []graph.NodeID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range lm.g.Out(x) {
			if w == v {
				return true
			}
			if !seen[w] && !lm.isLand[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}
