package netsite

import (
	"sync"
	"testing"

	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// evalInProc runs one full in-process reach evaluation against the
// fragmentation under the read lock (the same discipline the wire sites
// use), with the given options.
func evalInProc(fr *fragment.Fragmentation, s, t graph.NodeID, opt *core.Options) bool {
	if s == t {
		return true
	}
	fr.RLock()
	partials := make([]*core.ReachPartial, 0, fr.Card())
	for _, f := range fr.Fragments() {
		partials = append(partials, core.LocalEvalReach(f, s, t, opt))
	}
	fr.RUnlock()
	return core.SolveReach(partials, s)
}

// pickLive returns a random live (non-tombstoned) node.
func pickLive(rng *gen.RNG, g *graph.Graph) graph.NodeID {
	for {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !g.Deleted(v) {
			return v
		}
	}
}

// TestIndexChurnCrossCheck is the reachability-index acceptance check: 50
// random fragmented graphs with the per-fragment index enabled (budgets
// rotating from starved to ample), each driven through mixed edge/node
// update batches and a mid-run live rebalance. After every step — both
// while rebuilds are still in flight (exercising the stale-label fallback)
// and after they land (exercising the indexed path) — indexed local
// evaluation, direct local evaluation and the internal/baseline oracle
// must agree on every query. A final phase runs queries concurrently with
// updates to prove the lifecycle race-clean.
func TestIndexChurnCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(91)
	budgets := []int64{256, 1 << 14, 1 << 20}
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(90)
		e := n + rng.Intn(4*n)
		seed := uint64(7000 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(8), 0.3, labels, seed)
		}
		k := 1 + rng.Intn(5)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		fr.EnableReachIndex(budgets[trial%len(budgets)])
		fr.SetOverlayLimit(128) // exercise mid-batch fold-back too
		rep := fragment.NewReplica(fr)
		epoch := uint64(0)
		for step := 0; step < 6; step++ {
			cur, _ := rep.Current()
			cg := cur.Graph()
			ops := make([]fragment.Op, 1+rng.Intn(4))
			for i := range ops {
				switch rng.Intn(8) {
				case 0, 1, 2, 3:
					ops[i] = fragment.Op{Kind: fragment.OpInsertEdge, U: pickLive(rng, cg), V: pickLive(rng, cg)}
				case 4, 5:
					ops[i] = fragment.Op{Kind: fragment.OpDeleteEdge, U: pickLive(rng, cg), V: pickLive(rng, cg)}
				case 6:
					ops[i] = fragment.Op{Kind: fragment.OpInsertNode, Label: "A", Frag: -1}
				case 7:
					ops[i] = fragment.Op{Kind: fragment.OpDeleteNode, U: pickLive(rng, cg)}
				}
			}
			if _, _, err := rep.ApplyLSN(0, 0, ops); err != nil {
				continue // tombstone race within the batch: rejected atomically
			}
			if step == 3 {
				epoch++
				if _, err := rep.Rebalance(epoch, fragment.EdgeCutPartitioner{Seed: seed}); err != nil {
					t.Fatalf("trial %d: rebalance: %v", trial, err)
				}
			}
			cur, _ = rep.Current()
			cg = cur.Graph()
			// Phase 0 queries race in-flight rebuilds (fallback path);
			// phase 1 waits so the indexed path is actually exercised.
			for phase := 0; phase < 2; phase++ {
				if phase == 1 {
					cur.WaitReachIndexes()
				}
				for q := 0; q < 6; q++ {
					s, tt := pickLive(rng, cg), pickLive(rng, cg)
					indexed := evalInProc(cur, s, tt, nil)
					direct := evalInProc(cur, s, tt, &core.Options{NoFragmentIndex: true})
					cl := cluster.New(cur.Card(), cluster.NetModel{})
					want := baseline.DisReachN(cl, cur, s, tt).Answer
					if indexed != want || direct != want {
						t.Fatalf("trial %d step %d phase %d q(%d,%d): indexed=%v direct=%v baseline=%v",
							trial, step, phase, s, tt, indexed, direct, want)
					}
				}
			}
		}
		if st := fr.ReachIndexStats(); st.Hits+st.Fallbacks == 0 {
			t.Fatalf("trial %d: no indexed evaluations recorded at all", trial)
		}
	}

	// Concurrent phase: queries (indexed and direct under one lock hold)
	// racing live updates and rebuilds. Answers must agree pairwise; the
	// race detector guards the lifecycle.
	g := gen.PowerLaw(gen.Config{Nodes: 200, Edges: 800, Labels: labels, Seed: 99})
	fr, err := fragment.Random(g, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	fr.EnableReachIndex(1 << 20)
	rep := fragment.NewReplica(fr)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := gen.NewRNG(uint64(100 + w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur, _ := rep.Current()
				cg := cur.Graph()
				cur.RLock()
				s, tt := pickLive(qrng, cg), pickLive(qrng, cg)
				var indexed, direct []*core.ReachPartial
				for _, f := range cur.Fragments() {
					indexed = append(indexed, core.LocalEvalReach(f, s, tt, nil))
					direct = append(direct, core.LocalEvalReach(f, s, tt, &core.Options{NoFragmentIndex: true}))
				}
				cur.RUnlock()
				a, b := core.SolveReach(indexed, s), core.SolveReach(direct, s)
				if s != tt && a != b {
					t.Errorf("concurrent q(%d,%d): indexed=%v direct=%v", s, tt, a, b)
					return
				}
			}
		}(w)
	}
	urng := gen.NewRNG(123)
	for i := 0; i < 200; i++ {
		cur, _ := rep.Current()
		cg := cur.Graph()
		op := fragment.Op{Kind: fragment.OpInsertEdge, U: pickLive(urng, cg), V: pickLive(urng, cg)}
		if i%3 == 0 {
			op.Kind = fragment.OpDeleteEdge
		}
		_, _, _ = rep.ApplyLSN(0, 0, []fragment.Op{op})
		if i == 100 {
			if _, err := rep.Rebalance(1, fragment.EdgeCutPartitioner{Seed: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	cur, _ := rep.Current()
	cur.WaitReachIndexes()
}
