package netsite

import (
	"bytes"
	"context"
	"testing"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/obs"
	"distreach/internal/reachindex"
)

// FuzzTracePayload throws arbitrary bytes at the trace envelope and
// traced-answer codecs. Whatever decodes must re-encode byte-identically
// (the envelope) or semantically (the span section); the rest must error,
// never panic. Nested envelopes must always be rejected.
func FuzzTracePayload(f *testing.F) {
	f.Add(encodeTraced(0xDEADBEEF, 2, kindReach, encodeReachRequest(3, 9, false)))
	f.Add(encodeTraced(1, 1, kindBatch, nil))
	f.Add(encodeTraced(7, 3, kindTraced, []byte{1})) // nested envelope
	f.Add(encodeTraced(7, 3, kindUpdate, nil))       // untraceable kind
	f.Add(encodeTraced(5, 5, kindReach, nil)[:tracedHeader-1])

	rec := obs.NewRecorder(time.Now())
	t0 := time.Now()
	rec.Span(-1, "queue", t0, t0.Add(time.Millisecond))
	rec.Span(-1, "eval", t0, t0.Add(2*time.Millisecond),
		obs.Attr{Key: "reachindex_outcome", Val: "hit"})
	f.Add(encodeTracedAnswer(nil, rec.Wire(), []byte{1, 0, 4}))
	f.Add(obs.AppendWireSpans(nil, nil))
	f.Add([]byte{0xFF, 0xFF}) // hostile span count

	f.Fuzz(func(t *testing.T, data []byte) {
		if traceID, parent, inner, payload, err := decodeTraced(data); err == nil {
			if !tracedKind(inner) {
				t.Fatalf("decoded envelope with untraceable inner kind %q", inner)
			}
			re := encodeTraced(traceID, parent, inner, payload)
			if !bytes.Equal(re, data) {
				t.Fatalf("traced envelope round trip drifted: %d then %d bytes", len(data), len(re))
			}
		}
		if spans, body, err := decodeTracedAnswer(data); err == nil {
			re := encodeTracedAnswer(nil, obs.AppendWireSpans(nil, spans), body)
			spans2, body2, err := decodeTracedAnswer(re)
			if err != nil {
				t.Fatalf("decode of a re-encoded span section failed: %v", err)
			}
			if len(spans2) != len(spans) || !bytes.Equal(body2, body) {
				t.Fatalf("traced answer drifted: %d spans/%d body bytes then %d/%d",
					len(spans), len(body), len(spans2), len(body2))
			}
			for i := range spans {
				if spans2[i].Name != spans[i].Name || spans2[i].Parent != spans[i].Parent ||
					spans2[i].DurNs != spans[i].DurNs || len(spans2[i].Attrs) != len(spans[i].Attrs) {
					t.Fatalf("span %d drifted: %+v -> %+v", i, spans[i], spans2[i])
				}
			}
		}
	})
}

// TestTraceCrossCheck runs ~50 random fragmented graphs with two
// coordinators on the same deployment — one with tracing armed, one
// without — and requires identical answers and identical frame accounting
// from both: the 'T' envelope must be an observability layer, never a
// semantic one. Along the way it pins the acceptance shape of a trace
// (every contacted site reports spans, including a timed eval span with
// the reachindex outcome) and that the guarantee auditor sees zero
// frames-per-site violations with tracing on.
func TestTraceCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(97)
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(110)
		e := n + rng.Intn(4*n)
		seed := uint64(4000 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(8), 0.3, labels, seed)
		}
		nn := g.NumNodes()
		k := 1 + rng.Intn(5)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			fr.EnableReachIndex(reachindex.DefaultBudget)
		}
		sites, addrs, err := ServeFragmentation(fr)
		if err != nil {
			t.Fatal(err)
		}
		coT, err := Dial(addrs, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		coU, err := Dial(addrs, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Anytime rounds terminate early nondeterministically; frame-count
		// equality is only meaningful for full rounds. A third of the
		// trials keep anytime on and compare answers only.
		anytime := trial%3 == 2
		coT.SetAnytime(anytime)
		coU.SetAnytime(anytime)

		var traces []*obs.Trace
		coT.SetTraceSink(func(tr *obs.Trace) { traces = append(traces, tr) })
		aud := obs.NewAuditor()
		coT.SetAuditor(aud)

		for q := 0; q < 6; q++ {
			s := graph.NodeID(rng.Intn(nn))
			tt := graph.NodeID(rng.Intn(nn))
			var ansT, ansU bool
			var stT, stU WireStats
			var errT, errU error
			switch q % 3 {
			case 0:
				ansT, stT, errT = coT.Reach(s, tt)
				ansU, stU, errU = coU.Reach(s, tt)
			case 1:
				l := rng.Intn(9)
				var dT, dU int64
				ansT, dT, stT, errT = coT.ReachWithin(s, tt, l)
				ansU, dU, stU, errU = coU.ReachWithin(s, tt, l)
				if errT == nil && errU == nil && ansT && dT != dU {
					t.Fatalf("trial %d query %d: traced dist %d, untraced %d", trial, q, dT, dU)
				}
			case 2:
				a := automaton.Random(rng, 2+rng.Intn(3), 3+rng.Intn(6), labels)
				ansT, stT, errT = coT.ReachRegex(s, tt, a)
				ansU, stU, errU = coU.ReachRegex(s, tt, a)
			}
			if (errT == nil) != (errU == nil) {
				t.Fatalf("trial %d query %d: traced err=%v, untraced err=%v", trial, q, errT, errU)
			}
			if errT != nil {
				continue
			}
			if ansT != ansU {
				t.Fatalf("trial %d query %d (%d->%d): traced=%v untraced=%v", trial, q, s, tt, ansT, ansU)
			}
			if !anytime && (stT.FramesSent != stU.FramesSent || stT.FramesReceived != stU.FramesReceived) {
				t.Fatalf("trial %d query %d: traced %d/%d frames, untraced %d/%d — the envelope changed the round shape",
					trial, q, stT.FramesSent, stT.FramesReceived, stU.FramesSent, stU.FramesReceived)
			}
			if stT.FramesSent > 0 && stT.TraceID == 0 {
				t.Fatalf("trial %d query %d: wire round but no trace ID", trial, q)
			}
			if stU.TraceID != 0 {
				t.Fatalf("trial %d query %d: untraced coordinator reported trace %x", trial, q, stU.TraceID)
			}

			// Acceptance shape: the full-round trace carries ≥1 span from
			// every contacted site, including a timed eval span with the
			// reachindex outcome.
			if !anytime && stT.FramesSent == int64(k) {
				if len(traces) == 0 {
					t.Fatalf("trial %d query %d: no trace collected", trial, q)
				}
				tr := traces[len(traces)-1]
				if tr.ID != stT.TraceID {
					t.Fatalf("trial %d query %d: trace %x collected, stats say %x", trial, q, tr.ID, stT.TraceID)
				}
				evals := make([]bool, k)
				siteSpans := make([]int, k)
				for _, sp := range tr.Spans {
					if sp.Site >= 0 && sp.Site < k {
						siteSpans[sp.Site]++
						if sp.Name == "eval" {
							outcome := false
							for _, at := range sp.Attrs {
								if at.Key == "reachindex_outcome" {
									outcome = true
								}
							}
							if !outcome {
								t.Fatalf("trial %d query %d site %d: eval span without reachindex_outcome: %+v",
									trial, q, sp.Site, sp.Attrs)
							}
							evals[sp.Site] = true
						}
					}
				}
				for i := 0; i < k; i++ {
					if siteSpans[i] == 0 {
						t.Fatalf("trial %d query %d: contacted site %d reported no spans", trial, q, i)
					}
					if !evals[i] {
						t.Fatalf("trial %d query %d: site %d reported no eval span", trial, q, i)
					}
				}
			}
		}

		if v := aud.Violations(); v != 0 {
			t.Fatalf("trial %d: auditor counted %d guarantee violations: %+v", trial, v, aud.Summary())
		}
		if s := aud.Summary(); s.Rounds == 0 {
			t.Fatalf("trial %d: auditor observed no rounds with tracing on", trial)
		}

		coT.Close()
		coU.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// TestWireAccounting pins the satellite accounting invariant: the sum of
// per-operation WireStats across queries, batches, updates and a
// replication round equals exactly what crossed the wire, as counted at
// the connections (WireTotals). The one legal divergence is anytime early
// termination, where straggler finals land after the round returned —
// there the connection totals may only exceed the per-round sums, never
// trail them.
func TestWireAccounting(t *testing.T) {
	labels := []string{"A", "B"}
	rng := gen.NewRNG(11)
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 420, Labels: labels, Seed: 5})
	fr, err := fragment.Random(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	co.SetAnytime(false)

	// Warm up the sequencer adoption hello (deliberately outside any
	// update's per-round stats) before the baseline snapshot.
	if _, _, err := co.Apply([]Op{{Kind: OpInsertEdge, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	sent0, recv0 := co.WireTotals()

	var sumSent, sumRecv int64
	acc := func(st WireStats) {
		sumSent += st.BytesSent
		sumRecv += st.BytesReceived
	}

	nn := g.NumNodes()
	for i := 0; i < 8; i++ {
		s, tt := graph.NodeID(rng.Intn(nn)), graph.NodeID(rng.Intn(nn))
		switch i % 3 {
		case 0:
			_, st, err := co.Reach(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			acc(st)
		case 1:
			_, _, st, err := co.ReachWithin(s, tt, 4)
			if err != nil {
				t.Fatal(err)
			}
			acc(st)
		case 2:
			a := automaton.Random(rng, 3, 5, labels)
			_, st, err := co.ReachRegex(s, tt, a)
			if err != nil {
				t.Fatal(err)
			}
			acc(st)
		}
	}
	_, st, err := co.Batch([]BatchQuery{
		{Class: ClassReach, S: 1, T: 40},
		{Class: ClassDist, S: 2, T: 50, L: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc(st)
	if _, st, err := co.Apply([]Op{
		{Kind: OpInsertEdge, U: 3, V: 77},
		{Kind: OpDeleteEdge, U: 0, V: 1},
	}); err != nil {
		t.Fatal(err)
	} else {
		acc(st)
	}
	// Sync traffic ('S' hellos and any replay) flows outside query rounds;
	// the report's WireSent/WireReceived must close that gap.
	rep, err := co.SyncReplicas(context.Background(), SyncOptions{Partitioner: "edgecut"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WireSent == 0 || rep.WireReceived == 0 {
		t.Fatalf("sync reported no wire traffic: %+v", rep)
	}
	sumSent += rep.WireSent
	sumRecv += rep.WireReceived

	sent1, recv1 := co.WireTotals()
	if got, want := sent1-sent0, sumSent; got != want {
		t.Fatalf("sent bytes: connections counted %d, per-round stats sum to %d", got, want)
	}
	if got, want := recv1-recv0, sumRecv; got != want {
		t.Fatalf("received bytes: connections counted %d, per-round stats sum to %d", got, want)
	}

	// Anytime leg: cancel frames are accounted synchronously (sent-side
	// equality must hold); straggler finals may drain after the round
	// (received-side is a lower bound).
	co.SetAnytime(true)
	sent0, recv0 = co.WireTotals()
	sumSent, sumRecv = 0, 0
	for i := 0; i < 10; i++ {
		s, tt := graph.NodeID(rng.Intn(nn)), graph.NodeID(rng.Intn(nn))
		_, st, err := co.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		acc(st)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		sent1, recv1 = co.WireTotals()
		if sent1-sent0 == sumSent || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sent1 - sent0; got != sumSent {
		t.Fatalf("anytime sent bytes: connections counted %d, per-round stats sum to %d", got, sumSent)
	}
	if got := recv1 - recv0; got < sumRecv {
		t.Fatalf("anytime received bytes: connections counted %d, per-round stats claim %d", got, sumRecv)
	}
}
