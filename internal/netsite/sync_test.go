package netsite

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/oplog"
)

// distDeployment is the separate-process deployment shape: every site owns
// an independent Replica over its own clone of the graph, so nothing is
// shared behind the wire's back — exactly what cmd/site processes look
// like.
type distDeployment struct {
	reps  []*fragment.Replica
	sites []*Site
	addrs []string
}

func deployIndependent(t *testing.T, g *graph.Graph, assign []int, k int, opts func(i int) SiteOptions) *distDeployment {
	t.Helper()
	d := &distDeployment{}
	for i := 0; i < k; i++ {
		fr, err := fragment.Build(g.Clone(), assign, k)
		if err != nil {
			t.Fatal(err)
		}
		rep := fragment.NewReplica(fr)
		o := SiteOptions{}
		if opts != nil {
			o = opts(i)
		}
		site, err := NewSiteReplica("127.0.0.1:0", rep, i, o)
		if err != nil {
			t.Fatal(err)
		}
		d.reps = append(d.reps, rep)
		d.sites = append(d.sites, site)
		d.addrs = append(d.addrs, site.Addr())
	}
	t.Cleanup(func() {
		for _, s := range d.sites {
			s.Close()
		}
	})
	return d
}

func (d *distDeployment) fingerprints() []uint64 {
	fps := make([]uint64, len(d.reps))
	for i, r := range d.reps {
		fr, _, _ := r.State()
		fps[i] = fr.Fingerprint()
	}
	return fps
}

// TestSiteCatchUpAfterRestart is the acceptance check for the durable
// oplog subsystem, randomized over ~50 graphs: a durable site is killed
// mid-churn, updates keep applying to the surviving replicas (the batch is
// sequenced and write-ahead logged, the dead site is reported as a
// laggard), the site restarts from its own snapshot+log — NOT from the
// current deployment state — and catch-up replication streams exactly the
// missed delta. Queries racing the recovery may fail (the LSN tag splits
// the round) but must never return a wrong answer; after the sync every
// replica reports the same fingerprint and every answer matches the BFS
// oracle on the churned graph.
func TestSiteCatchUpAfterRestart(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(411)
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(60)
		e := n + rng.Intn(3*n)
		seed := uint64(7000 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(6), 0.3, labels, seed)
		}
		nn := g.NumNodes()
		k := 2 + rng.Intn(3)
		frTmp, err := fragment.Random(g.Clone(), k, seed)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]int, nn)
		for v := range assign {
			assign[v] = frTmp.Owner(graph.NodeID(v))
		}
		victim := k - 1
		victimDir := t.TempDir()
		victimStore, err := oplog.OpenStore(victimDir, oplog.LogOptions{Fsync: oplog.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		d := deployIndependent(t, g, assign, k, func(i int) SiteOptions {
			if i == victim {
				return SiteOptions{Store: victimStore, SnapshotEvery: 3}
			}
			return SiteOptions{}
		})
		// The gateway side: a durable sequencer whose write-ahead log is the
		// replay source.
		gwStore, err := oplog.OpenStore(t.TempDir(), oplog.LogOptions{Fsync: oplog.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		seq := oplog.NewDurableSequencer(gwStore)
		co, err := Dial(d.addrs, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		co.UseSequencer(seq)

		mirror := g.Clone() // the always-up oracle, fed the same mutations
		churn := func(steps int, expectMissed bool) {
			for s := 0; s < steps; s++ {
				var op Op
				if rng.Intn(4) == 0 {
					op = Op{Kind: OpDeleteEdge, U: graph.NodeID(rng.Intn(nn)), V: graph.NodeID(rng.Intn(nn))}
				} else {
					op = Op{Kind: OpInsertEdge, U: graph.NodeID(rng.Intn(nn)), V: graph.NodeID(rng.Intn(nn))}
				}
				res, _, err := co.Apply([]Op{op})
				if err != nil {
					t.Fatalf("trial %d churn: %v", trial, err)
				}
				if expectMissed && len(res.Missed) != 1 {
					t.Fatalf("trial %d: update with a dead site reported missed=%v, want [%d]", trial, res.Missed, victim)
				}
				if op.Kind == OpInsertEdge {
					mirror.InsertEdge(op.U, op.V)
				} else {
					mirror.DeleteEdge(op.U, op.V)
				}
			}
		}
		churn(6, false)
		preKill := seq.LSN()
		d.sites[victim].Close() // crash: in-memory state gone
		churn(6, true)          // the deployment keeps accepting writes

		// Restart from durable state: the base files are the ORIGINAL graph
		// and assignment (what a site loads from disk); snapshot+log bring it
		// to where it crashed, not further.
		baseFr, err := fragment.Build(g.Clone(), assign, k)
		if err != nil {
			t.Fatal(err)
		}
		recovered, err := oplog.Recover(victimStore, baseFr)
		if err != nil {
			t.Fatalf("trial %d: recovery: %v", trial, err)
		}
		if got := recovered.LSN(); got != preKill {
			t.Fatalf("trial %d: recovered at LSN %d, want %d (crash point)", trial, got, preKill)
		}
		site2, err := NewSiteReplica("127.0.0.1:0", recovered, victim, SiteOptions{Store: victimStore, SnapshotEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		d.sites[victim] = site2
		d.reps[victim] = recovered
		addrs2 := append([]string(nil), d.addrs...)
		addrs2[victim] = site2.Addr()
		co.Close()
		co2, err := Dial(addrs2, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		co2.UseSequencer(seq)

		// Queries race the recovery: failures are allowed (the round's LSN
		// tag refuses to mix stale and fresh partials), wrong answers are
		// not.
		var wrong atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				qrng := gen.NewRNG(seed)
				for {
					select {
					case <-stop:
						return
					default:
					}
					s, tt := graph.NodeID(qrng.Intn(nn)), graph.NodeID(qrng.Intn(nn))
					got, _, err := co2.Reach(s, tt)
					if err != nil {
						continue // unavailability during recovery is legal
					}
					if got != mirror.Reachable(s, tt) {
						wrong.Add(1)
						return
					}
				}
			}(uint64(500 + trial*2 + w))
		}

		rep, err := co2.SyncReplicas(context.Background(), SyncOptions{
			Log: gwStore.Log(),
			Snapshot: func() (*oplog.Snapshot, bool) {
				s, ok, err := gwStore.LoadSnapshot()
				return s, ok && err == nil
			},
			Seed: seed,
		})
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatalf("trial %d: sync: %v", trial, err)
		}
		if wrong.Load() != 0 {
			t.Fatalf("trial %d: %d wrong answers served during recovery", trial, wrong.Load())
		}
		if rep.LSN != seq.LSN() {
			t.Fatalf("trial %d: sync ended at LSN %d, sequencer at %d", trial, rep.LSN, seq.LSN())
		}
		if rep.Replayed == 0 {
			t.Fatalf("trial %d: catch-up replayed nothing for a site %d batches behind", trial, seq.LSN()-preKill)
		}
		fps := d.fingerprints()
		for i, fp := range fps {
			if fp != fps[0] {
				t.Fatalf("trial %d: replica %d fingerprint differs after catch-up (%x vs %x)", trial, i, fp, fps[0])
			}
		}
		// Quiescent: every answer matches the oracle on the churned graph.
		for q := 0; q < 8; q++ {
			s, tt := graph.NodeID(rng.Intn(nn)), graph.NodeID(rng.Intn(nn))
			got, st, err := co2.Reach(s, tt)
			if err != nil {
				t.Fatalf("trial %d post-sync: %v", trial, err)
			}
			if want := mirror.Reachable(s, tt); got != want {
				t.Fatalf("trial %d post-sync: qr(%d,%d) = %v, oracle %v", trial, s, tt, got, want)
			}
			if s != tt && st.LSN != rep.LSN {
				t.Fatalf("trial %d post-sync: answer from LSN %d, want %d", trial, st.LSN, rep.LSN)
			}
		}
		co2.Close()
		victimStore.Close()
		gwStore.Close()
	}
}

// TestTwoGatewaysConverge: two gateways (coordinators) submit interleaved
// update batches concurrently through ONE shared sequencer — the
// configuration the sequencer exists for. Every replica (independent per
// site) must converge to the identical fingerprint, the LSN must account
// for every batch exactly once, and both writers' node inserts must land.
func TestTwoGatewaysConverge(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: []string{"A", "B"}, Seed: 421})
	assign := make([]int, 80)
	for v := range assign {
		assign[v] = v % 3
	}
	d := deployIndependent(t, g, assign, 3, nil)
	seq := oplog.NewSequencer(0)
	coA, err := Dial(d.addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coA.Close()
	coB, err := Dial(d.addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coB.Close()
	coA.UseSequencer(seq)
	coB.UseSequencer(seq)

	const perWriter = 30
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for w, co := range []*Coordinator{coA, coB} {
		wg.Add(1)
		go func(w int, co *Coordinator) {
			defer wg.Done()
			rng := gen.NewRNG(uint64(600 + w))
			for i := 0; i < perWriter; i++ {
				var ops []Op
				switch i % 3 {
				case 0:
					ops = []Op{{Kind: OpInsertEdge, U: graph.NodeID(rng.Intn(80)), V: graph.NodeID(rng.Intn(80))}}
				case 1:
					ops = []Op{{Kind: OpInsertNode, Label: fmt.Sprintf("W%d", w), Frag: -1}}
				case 2:
					ops = []Op{
						{Kind: OpDeleteEdge, U: graph.NodeID(rng.Intn(80)), V: graph.NodeID(rng.Intn(80))},
						{Kind: OpInsertEdge, U: graph.NodeID(rng.Intn(80)), V: graph.NodeID(rng.Intn(80))},
					}
				}
				if _, _, err := co.Apply(ops); err != nil {
					errc <- fmt.Errorf("writer %d batch %d: %w", w, i, err)
					return
				}
			}
		}(w, co)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := seq.LSN(); got != 2*perWriter {
		t.Fatalf("sequencer at %d after %d batches", got, 2*perWriter)
	}
	fps := d.fingerprints()
	for i, fp := range fps {
		if fp != fps[0] {
			t.Fatalf("replica %d diverged under concurrent writers (%x vs %x)", i, fp, fps[0])
		}
	}
	for i, rep := range d.reps {
		if got := rep.LSN(); got != 2*perWriter {
			t.Fatalf("replica %d at LSN %d, want %d", i, got, 2*perWriter)
		}
	}
	// Both writers' node inserts landed: 80 originals + 2*perWriter/3-ish
	// inserts, identical on every replica.
	fr0, _, _ := d.reps[0].State()
	want := fr0.Graph().NumLive()
	if want <= 80 {
		t.Fatalf("no node inserts landed (%d live nodes)", want)
	}
	for i := 1; i < len(d.reps); i++ {
		fri, _, _ := d.reps[i].State()
		if got := fri.Graph().NumLive(); got != want {
			t.Fatalf("replica %d has %d live nodes, replica 0 has %d", i, got, want)
		}
	}
}

// TestSyncSnapshotFallback: when the write-ahead log has been truncated
// behind a checkpoint, a replica that restarted from scratch cannot be
// replayed — catch-up must fall back to snapshot transfer (here: fetched
// from the most advanced peer) and then stream the remaining log suffix.
func TestSyncSnapshotFallback(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 50, Edges: 200, Labels: []string{"A"}, Seed: 431})
	assign := make([]int, 50)
	for v := range assign {
		assign[v] = v % 2
	}
	d := deployIndependent(t, g, assign, 2, nil)
	// Tiny segments: every record rotates into its own file, so the
	// checkpoint's truncation genuinely drops the replay prefix.
	gwStore, err := oplog.OpenStore(t.TempDir(), oplog.LogOptions{Fsync: oplog.SyncNever, SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer gwStore.Close()
	seq := oplog.NewDurableSequencer(gwStore)
	co, err := Dial(d.addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	co.UseSequencer(seq)

	rng := gen.NewRNG(432)
	mirror := g.Clone()
	for i := 0; i < 12; i++ {
		u, v := graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50))
		if _, _, err := co.Apply([]Op{{Kind: OpInsertEdge, U: u, V: v}}); err != nil {
			t.Fatal(err)
		}
		mirror.InsertEdge(u, v)
	}
	// Checkpoint at LSN 12 and truncate the log behind it.
	snap, err := co.FetchSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.LSN != 12 {
		t.Fatalf("fetched snapshot at LSN %d, want 12", snap.LSN)
	}
	if err := gwStore.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		u, v := graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50))
		if _, _, err := co.Apply([]Op{{Kind: OpInsertEdge, U: u, V: v}}); err != nil {
			t.Fatal(err)
		}
		mirror.InsertEdge(u, v)
	}

	// Site 1 "loses its disk": restarted from the original files, LSN 0.
	d.sites[1].Close()
	freshFr, err := fragment.Build(g.Clone(), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh := fragment.NewReplica(freshFr)
	site2, err := NewSiteReplica("127.0.0.1:0", fresh, 1, SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.sites[1] = site2
	d.reps[1] = fresh
	addrs2 := []string{d.addrs[0], site2.Addr()}
	co.Close()
	co2, err := Dial(addrs2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	co2.UseSequencer(seq)

	rep, err := co2.SyncReplicas(context.Background(), SyncOptions{
		Log: gwStore.Log(),
		Snapshot: func() (*oplog.Snapshot, bool) {
			s, ok, err := gwStore.LoadSnapshot()
			return s, ok && err == nil
		},
		Seed: 433,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshots == 0 {
		t.Fatal("truncated log: catch-up must have installed a snapshot")
	}
	if rep.Replayed == 0 {
		t.Fatal("the post-snapshot log suffix must have been replayed")
	}
	if rep.LSN != 16 {
		t.Fatalf("sync ended at LSN %d, want 16", rep.LSN)
	}
	fps := d.fingerprints()
	if fps[0] != fps[1] {
		t.Fatalf("fingerprints differ after snapshot fallback: %x vs %x", fps[0], fps[1])
	}
	for q := 0; q < 20; q++ {
		s, tt := graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50))
		got, _, err := co2.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := mirror.Reachable(s, tt); got != want {
			t.Fatalf("qr(%d,%d) = %v after snapshot fallback, oracle %v", s, tt, got, want)
		}
	}
}
