package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/graph"
	"distreach/internal/obs"
)

// Anytime answers (coordinator side). A reach query — or an all-reach
// batch — is posted with its stream flag set; sites then emit 'P' frames
// carrying equation chunks ahead of their final answer. The coordinator
// feeds every frame into an incremental equation system (bes.Add keeps
// the dependency-graph reachability up to date, bes.Decide is O(1)) and
// resolves the query the instant the accumulated partials prove it true —
// a positive certificate is a closed chain of equations, each a sound
// implication at the round's (epoch, LSN), so no absent site can retract
// it. Proving false still requires every site's complete equations, i.e.
// all final frames. On an early decision the coordinator cancels the
// stragglers with 'C' frames and returns.
//
// Strict-round discipline is preserved: the first frame of a round pins
// its (epoch, LSN); any frame from a different state aborts the round
// (cancelling all sites) and retries with backoff, exactly like the
// classic queryRound. Equations therefore only ever accumulate from one
// consistent deployment state.

// reachFlagStream in a reach request payload's flags byte asks the site to
// stream partial frames. An 8-byte payload (no flags) means the classic
// single-answer protocol — old payloads stay valid.
const reachFlagStream = 1

// encodeReachRequest packs qr(s,t): s u32 | t u32 [| flags u8].
func encodeReachRequest(s, t graph.NodeID, stream bool) []byte {
	b := make([]byte, 8, 9)
	binary.LittleEndian.PutUint32(b, uint32(s))
	binary.LittleEndian.PutUint32(b[4:], uint32(t))
	if stream {
		b = append(b, reachFlagStream)
	}
	return b
}

// decodeReachRequest is the inverse of encodeReachRequest. Unknown flag
// bits and oversized payloads are rejected so the codec stays an identity
// under fuzzing.
func decodeReachRequest(p []byte) (s, t graph.NodeID, stream bool, err error) {
	if len(p) < 8 {
		return 0, 0, false, fmt.Errorf("short qr payload")
	}
	if len(p) > 9 {
		return 0, 0, false, fmt.Errorf("qr payload of %d bytes", len(p))
	}
	s = graph.NodeID(binary.LittleEndian.Uint32(p))
	t = graph.NodeID(binary.LittleEndian.Uint32(p[4:]))
	if len(p) == 9 {
		if p[8]&^byte(reachFlagStream) != 0 {
			return 0, 0, false, fmt.Errorf("unknown qr flags %#x", p[8])
		}
		stream = p[8]&reachFlagStream != 0
	}
	return s, t, stream, nil
}

// encodeBatchChunk packs one streamed batch partial: the target the chunk's
// equations answer for, then the marshaled equation chunk.
//
//	t u32 | ReachPartial bytes
func encodeBatchChunk(t graph.NodeID, rv []byte) []byte {
	b := make([]byte, 4, 4+len(rv))
	binary.LittleEndian.PutUint32(b, uint32(t))
	return append(b, rv...)
}

// decodeBatchChunk is the inverse of encodeBatchChunk.
func decodeBatchChunk(p []byte) (graph.NodeID, *core.ReachPartial, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("short batch chunk")
	}
	t := graph.NodeID(binary.LittleEndian.Uint32(p))
	rv := new(core.ReachPartial)
	if err := rv.UnmarshalBinary(p[4:]); err != nil {
		return 0, nil, err
	}
	return t, rv, nil
}

// streamEvent is one forwarded response frame (or connection loss) in a
// streaming round.
type streamEvent struct {
	site  int
	r     wireReply
	ok    bool // false: the connection was lost before a final arrived
	final bool
}

// streamOutcome is the bookkeeping of one streaming round attempt.
type streamOutcome struct {
	st     WireStats
	finals []bool // per site: its final frame arrived
	early  bool   // decided before every final arrived; stragglers cancelled
	split  bool   // a frame carried a different (epoch, LSN); retry
}

// forwardReplies pumps one site's partial and final frames into the
// round's shared event channel. When the final arrives, already-buffered
// partials are drained first (the site wrote them first; the read loop
// preserved that order), so accounting sees every frame. The done channel
// bounds the goroutine's lifetime: once the round returns, forwarders
// exit on their next operation — no pending-table or goroutine leak.
func forwardReplies(site int, pr *pendingReq, events chan<- streamEvent, done <-chan struct{}) {
	push := func(ev streamEvent) bool {
		select {
		case events <- ev:
			return true
		case <-done:
			return false
		}
	}
	for {
		select {
		case r := <-pr.parts:
			if !push(streamEvent{site: site, r: r, ok: true}) {
				return
			}
		case r, ok := <-pr.final:
			for drained := false; !drained; {
				select {
				case p := <-pr.parts:
					if !push(streamEvent{site: site, r: p, ok: true}) {
						return
					}
				default:
					drained = true
				}
			}
			push(streamEvent{site: site, r: r, ok: ok, final: true})
			return
		case <-done:
			return
		}
	}
}

// streamRound posts one streaming request to every site and delivers every
// response frame, in arrival order, to sink. sink returns decided=true
// when the accumulated frames determine the answer: the round then cancels
// every site whose final has not arrived and returns early. A frame from a
// mismatched (epoch, LSN) aborts the round with outcome.split set (the
// caller retries); site errors, connection losses and context cancellation
// abort it with an error. Whatever the exit, no pending-table entry
// outlives the round: every path drops (and usually cancels) the
// stragglers, and late frames are drained by the read loop.
func (c *Coordinator) streamRound(ctx context.Context, kind byte, payload []byte, sink func(site int, body []byte, final bool) (bool, error), qt *qtrace) (streamOutcome, error) {
	id := c.nextID.Add(1)
	start := time.Now()
	out := streamOutcome{finals: make([]bool, len(c.conns))}
	st := &out.st
	if qt != nil && !tracedKind(kind) {
		qt = nil
	}
	// Per-site audit/trace bookkeeping: the rpc span each envelope named,
	// its post instant (the anchor remote spans attach under), and the
	// response volume and site-measured eval time the auditor checks.
	var rpcIDs []uint64
	var anchors []time.Time
	respBytes := make([]int64, len(c.conns))
	evalNs := make([]int64, len(c.conns))
	if qt != nil {
		rpcIDs = make([]uint64, len(c.conns))
		anchors = make([]time.Time, len(c.conns))
	}

	done := make(chan struct{})
	defer close(done)
	// Sized so forwarders can buffer every frame a round can legally carry:
	// sends never block once the main loop stops reading.
	events := make(chan streamEvent, len(c.conns)*(maxPartialBuffer+1))

	cancelStragglers := func(early bool) {
		for i, sc := range c.conns {
			if out.finals[i] {
				continue
			}
			if qt != nil {
				qt.b.End(rpcIDs[i], obs.Attr{Key: "cancelled", Val: "true"})
			}
			if n := sc.cancel(id); n > 0 {
				st.BytesSent += int64(n)
				st.CancelFrames++
				c.any.cancels.Add(1)
			}
			if early {
				c.any.stragglers[i].Add(1)
			}
		}
	}
	finish := func() {
		st.RoundTrip = time.Since(start)
	}
	fail := func(err error) (streamOutcome, error) {
		cancelStragglers(false)
		finish()
		return out, err
	}

	for i, sc := range c.conns {
		wireKind, wirePayload := kind, payload
		if qt != nil {
			rpcIDs[i] = qt.b.StartSpan(qt.par, "rpc", obs.Attr{Key: "site", Val: strconv.Itoa(i)})
			wireKind = kindTraced
			wirePayload = encodeTraced(qt.id, rpcIDs[i], kind, payload)
			anchors[i] = time.Now()
		}
		pr, n, err := sc.postReq(id, wireKind, wirePayload, true)
		if err != nil {
			// Posted sites would evaluate for nobody: cancel them. Their
			// forwarders were never started, so only the table needs care.
			for j := 0; j < i; j++ {
				if n := c.conns[j].cancel(id); n > 0 {
					st.BytesSent += int64(n)
					st.CancelFrames++
					c.any.cancels.Add(1)
				}
			}
			finish()
			return out, fmt.Errorf("site %d: %w", i, err)
		}
		st.BytesSent += int64(n)
		st.FramesSent++
		go forwardReplies(i, pr, events, done)
	}

	var (
		epoch, lsn uint64
		stateSet   bool
		nFinal     int
	)
	for {
		var ev streamEvent
		select {
		case <-ctx.Done():
			return fail(fmt.Errorf("netsite: %w", ctx.Err()))
		case ev = <-events:
		}
		if !ev.ok {
			err := c.conns[ev.site].lastErr()
			if err == nil {
				err = fmt.Errorf("connection closed")
			}
			return fail(fmt.Errorf("site %d: %w", ev.site, err))
		}
		r := ev.r
		if ev.final && r.kind == kindError {
			return fail(fmt.Errorf("site %d: %s", ev.site, r.payload))
		}
		if (ev.final && r.kind != kindAnswer && r.kind != kindTracedAnswer) || (!ev.final && r.kind != kindPartial) {
			return fail(fmt.Errorf("site %d: unexpected frame kind %q", ev.site, r.kind))
		}
		if len(r.payload) < answerPrefix {
			return fail(fmt.Errorf("site %d: frame of %d bytes lacks the state tag", ev.site, len(r.payload)))
		}
		e := binary.LittleEndian.Uint64(r.payload)
		l := binary.LittleEndian.Uint64(r.payload[8:])
		if !stateSet {
			epoch, lsn, stateSet = e, l, true
			st.Epoch, st.LSN = epoch, lsn
		} else if e != epoch || l != lsn {
			// Strict rounds: composing equations across deployment states
			// is meaningless. Abort (cancelling every site still working)
			// and let the caller retry against the settled state.
			out.split = true
			cancelStragglers(false)
			finish()
			return out, nil
		}
		st.BytesReceived += int64(r.n)
		body := r.payload[answerPrefix:]
		if ev.final {
			if r.kind == kindTracedAnswer {
				spans, rest, derr := decodeTracedAnswer(body)
				if derr != nil {
					return fail(fmt.Errorf("site %d: %w", ev.site, derr))
				}
				if qt != nil {
					qt.b.AttachRemote(rpcIDs[ev.site], ev.site, anchors[ev.site], spans)
					qt.b.End(rpcIDs[ev.site])
				}
				evalNs[ev.site] = evalDurNs(spans)
				body = rest
			} else if qt != nil {
				qt.b.End(rpcIDs[ev.site])
			}
			st.FramesReceived++
			out.finals[ev.site] = true
			nFinal++
			c.noteSiteLSN(ev.site, l)
		} else {
			st.PartialFrames++
			c.any.partials.Add(1)
		}
		respBytes[ev.site] += int64(len(body))
		decided, err := sink(ev.site, body, ev.final)
		if err != nil {
			return fail(err)
		}
		if decided && nFinal < len(c.conns) {
			out.early = true
			st.EarlyTerminated = true
			st.FirstAnswer = time.Since(start)
			cancelStragglers(true)
			finish()
			c.auditStream(kind, respBytes, evalNs)
			return out, nil
		}
		if nFinal == len(c.conns) {
			finish()
			st.FirstAnswer = st.RoundTrip
			c.auditStream(kind, respBytes, evalNs)
			return out, nil
		}
	}
}

// auditStream reports one settled streaming attempt to the auditor: each
// site still received exactly one request frame (the posted query — the
// invariant the paper's 1-visit guarantee is about; cancel frames are
// control traffic), and RespBytes sums every partial and final body the
// site emitted before the round settled.
func (c *Coordinator) auditStream(kind byte, respBytes, evalNs []int64) {
	a := c.getAuditor()
	if a == nil || !tracedKind(kind) {
		return
	}
	frames := make([]int64, len(respBytes))
	for i := range frames {
		frames[i] = 1
	}
	a.Observe(obs.AuditRound{
		Query:     kindLabel(kind),
		Frames:    frames,
		RespBytes: respBytes,
		EvalNs:    evalNs,
	})
}

// reachAnytime is the anytime form of a qr(s,t) round: stream partials
// from every site, decide incrementally, answer true the moment a
// certificate closes (cancelling the stragglers) or false once every
// site's equations are in. Epoch-split rounds retry with the same policy
// as queryRound.
func (c *Coordinator) reachAnytime(ctx context.Context, s, t graph.NodeID, qt *qtrace) (bool, WireStats, error) {
	payload := encodeReachRequest(s, t, true)
	var total WireStats
	backoff := epochRetryBackoff
	for attempt := 0; ; attempt++ {
		rqt := qt
		if qt != nil {
			roundID := qt.b.StartSpan(qt.par, "round", obs.Attr{Key: "attempt", Val: strconv.Itoa(attempt)})
			rqt = qt.child(roundID)
		}
		sys := bes.New[graph.NodeID]()
		acc := make([]*core.ReachPartial, len(c.conns))
		sink := func(site int, body []byte, final bool) (bool, error) {
			chunk := new(core.ReachPartial)
			if err := chunk.UnmarshalBinary(body); err != nil {
				return false, fmt.Errorf("netsite: site %d reply: %w", site, err)
			}
			chunk.AddToSystem(sys)
			if acc[site] == nil {
				acc[site] = new(core.ReachPartial)
			}
			acc[site].Merge(chunk)
			return sys.Decide(s), nil
		}
		out, err := c.streamRound(ctx, kindReach, payload, sink, rqt)
		if qt != nil {
			qt.b.End(rqt.par)
		}
		total.add(out.st)
		if err != nil {
			return false, total, err
		}
		if !out.split {
			if out.early {
				c.any.earlyTerms.Add(1)
			}
			// Touched stays sound for an early true: flipping the answer to
			// false requires breaking every path, in particular the
			// certificate chain inside the accumulated equations — whose
			// fragments are exactly the dependency closure computed here.
			total.Touched = core.TouchedReach(acc, s)
			return sys.Decide(s), total, nil
		}
		if attempt+1 >= epochRetries {
			return false, total, fmt.Errorf("%w (after %d attempts)", ErrEpochSplit, attempt+1)
		}
		select {
		case <-ctx.Done():
			return false, total, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// batchAnytime is the anytime form of an all-reach batch round: sites
// stream per-target equation chunks, the coordinator maintains one
// incremental system per distinct target, and the round ends early iff
// every query in the batch is proved true before the last final arrives
// (false verdicts need every site's complete equations, so a batch with
// any undecided query waits them out — and then composes answers exactly
// like the classic path).
func (c *Coordinator) batchAnytime(ctx context.Context, wire []BatchQuery, widx []int, answers []BatchAnswer, qt *qtrace) (WireStats, error) {
	payload, err := encodeBatchRequest(wire, batchFlagStream)
	if err != nil {
		return WireStats{}, err
	}
	var total WireStats
	backoff := epochRetryBackoff
	for attempt := 0; ; attempt++ {
		rqt := qt
		if qt != nil {
			roundID := qt.b.StartSpan(qt.par, "round", obs.Attr{Key: "attempt", Val: strconv.Itoa(attempt)})
			rqt = qt.child(roundID)
		}
		sysOf := make(map[graph.NodeID]*bes.System[graph.NodeID])
		accOf := make(map[graph.NodeID][]*core.ReachPartial)
		for _, q := range wire {
			if _, ok := sysOf[q.T]; !ok {
				sysOf[q.T] = bes.New[graph.NodeID]()
				accOf[q.T] = make([]*core.ReachPartial, len(c.conns))
			}
		}
		merge := func(t graph.NodeID, site int, rv *core.ReachPartial) {
			rv.AddToSystem(sysOf[t])
			acc := accOf[t]
			if acc[site] == nil {
				acc[site] = new(core.ReachPartial)
			}
			acc[site].Merge(rv)
		}
		undecided := len(wire)
		decided := make([]bool, len(wire))
		finals := make([][]byte, len(c.conns))
		sink := func(site int, body []byte, final bool) (bool, error) {
			if !final {
				t, chunk, err := decodeBatchChunk(body)
				if err != nil {
					return false, fmt.Errorf("netsite: site %d partial: %w", site, err)
				}
				if _, ok := sysOf[t]; !ok {
					return false, nil // chunk for a target we never asked about
				}
				merge(t, site, chunk)
			} else {
				finals[site] = body
				shared, refs, parts, err := decodeBatchReply(body)
				if err != nil {
					return false, fmt.Errorf("netsite: site %d reply: %w", site, err)
				}
				if len(parts) != len(wire) {
					return false, fmt.Errorf("netsite: site %d answered %d of %d batch queries", site, len(parts), len(wire))
				}
				// Each shared section belongs to exactly one target; feed it
				// once however many queries reference it.
				fed := make(map[uint32]bool, len(shared))
				for j, q := range wire {
					if ref := refs[j]; ref > 0 && !fed[ref] {
						fed[ref] = true
						rv := new(core.ReachPartial)
						if err := rv.UnmarshalBinary(shared[ref-1]); err != nil {
							return false, fmt.Errorf("netsite: site %d shared section %d: %w", site, ref-1, err)
						}
						merge(q.T, site, rv)
					}
					if len(parts[j]) > 0 {
						rv := new(core.ReachPartial)
						if err := rv.UnmarshalBinary(parts[j]); err != nil {
							return false, fmt.Errorf("netsite: site %d batch query %d: %w", site, widx[j], err)
						}
						merge(q.T, site, rv)
					}
				}
			}
			for j, q := range wire {
				if !decided[j] && sysOf[q.T].Decide(q.S) {
					decided[j] = true
					undecided--
				}
			}
			return undecided == 0, nil
		}
		out, err := c.streamRound(ctx, kindBatch, payload, sink, rqt)
		if qt != nil {
			qt.b.End(rqt.par)
		}
		total.add(out.st)
		if err != nil {
			return total, err
		}
		if out.split {
			if attempt+1 >= epochRetries {
				return total, fmt.Errorf("%w (after %d attempts)", ErrEpochSplit, attempt+1)
			}
			select {
			case <-ctx.Done():
				return total, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			continue
		}
		if out.early {
			// Every query proved true from the accumulated equations; the
			// per-query Touched is the dependency closure over them (sound
			// for positive answers, see reachAnytime).
			c.any.earlyTerms.Add(1)
			for j, q := range wire {
				answers[widx[j]] = BatchAnswer{Answer: true, Touched: core.TouchedReach(accOf[q.T], q.S)}
			}
			return total, nil
		}
		// Full round: compose from the final replies exactly like the
		// classic batch path (answers and Touched are then byte-for-byte
		// those of a non-anytime round).
		if err := composeBatchAnswers(finals, wire, widx, answers); err != nil {
			return total, err
		}
		return total, nil
	}
}
