package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"distreach/internal/graph"
)

// Live graph updates over the wire. An update frame ('U') carries one edge
// insertion or deletion. The coordinator broadcasts it to every site; each
// site holds a replica of the whole fragmentation (cmd/site loads the full
// graph and assignment anyway, and in-process deployments share one), so
// each site applies the update to the fragment(s) it affects and replies
// with what changed from its replica's point of view. Application is
// idempotent — re-inserting an existing edge or re-deleting a missing one
// is a no-op — so sites sharing one in-process fragmentation apply it once
// and the rest observe a no-op; the coordinator unions the replies into
// the definitive dirty set.
//
// Update request payload (little-endian):
//
//	op u8 ('i' insert | 'd' delete) | u u32 | v u32
//
// Update response payload:
//
//	changed u8 | count u32 | dirty fragment IDs u32 each
//
// Consistency: one coordinator serializes its updates (they run one round
// at a time), and each site orders an update against its own in-flight
// queries with a write lock, but a multi-site round is not atomic — a
// query racing an update may combine pre- and post-update partials. The
// system is eventually consistent: once an update round returns, every
// subsequent query sees it.

// UpdateOp selects the edge operation of an update frame.
type UpdateOp byte

// The two edge operations.
const (
	UpdateInsert UpdateOp = 'i'
	UpdateDelete UpdateOp = 'd'
)

// UpdateResult reports the effect of one edge update on the deployment.
type UpdateResult struct {
	// Changed is false when the update was a no-op (inserting an existing
	// edge, deleting a missing one).
	Changed bool
	// Dirty lists the fragments whose partial answers may have changed,
	// sorted ascending. Empty when Changed is false.
	Dirty []int
}

// encodeUpdateRequest packs one edge update.
func encodeUpdateRequest(op UpdateOp, u, v graph.NodeID) []byte {
	b := []byte{byte(op)}
	b = binary.LittleEndian.AppendUint32(b, uint32(u))
	b = binary.LittleEndian.AppendUint32(b, uint32(v))
	return b
}

// decodeUpdateRequest is the inverse of encodeUpdateRequest, hardened
// against hostile payloads.
func decodeUpdateRequest(p []byte) (UpdateOp, graph.NodeID, graph.NodeID, error) {
	if len(p) != 9 {
		return 0, 0, 0, fmt.Errorf("netsite: update payload is %d bytes, want 9", len(p))
	}
	op := UpdateOp(p[0])
	if op != UpdateInsert && op != UpdateDelete {
		return 0, 0, 0, fmt.Errorf("netsite: unknown update op %q", p[0])
	}
	u := graph.NodeID(binary.LittleEndian.Uint32(p[1:]))
	v := graph.NodeID(binary.LittleEndian.Uint32(p[5:]))
	return op, u, v, nil
}

// encodeUpdateReply packs one site's view of an applied update.
func encodeUpdateReply(changed bool, dirty []int) []byte {
	b := []byte{0}
	if changed {
		b[0] = 1
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dirty)))
	for _, d := range dirty {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	return b
}

// decodeUpdateReply is the inverse of encodeUpdateReply, hardened against
// hostile payloads: the declared count is bounds-checked against the
// buffer and trailing bytes are rejected.
func decodeUpdateReply(p []byte) (changed bool, dirty []int, err error) {
	if len(p) < 5 {
		return false, nil, fmt.Errorf("netsite: update reply is %d bytes, want >= 5", len(p))
	}
	if p[0] > 1 {
		return false, nil, fmt.Errorf("netsite: update reply changed flag %d", p[0])
	}
	n := binary.LittleEndian.Uint32(p[1:])
	if uint64(n)*4 != uint64(len(p)-5) {
		return false, nil, fmt.Errorf("netsite: update reply claims %d fragment IDs in %d bytes", n, len(p)-5)
	}
	dirty = make([]int, 0, n)
	for i := 0; i < int(n); i++ {
		dirty = append(dirty, int(binary.LittleEndian.Uint32(p[5+4*i:])))
	}
	return p[0] == 1, dirty, nil
}

// Update applies one edge insertion or deletion to the deployment: the
// update frame is broadcast to every site, each applies it to its replica
// of the fragmentation, and the replies are unioned into the definitive
// changed flag and dirty fragment set. Updates from one coordinator are
// serialized (one round in flight at a time) so every site applies them in
// the same order.
func (c *Coordinator) Update(op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	return c.UpdateContext(context.Background(), op, u, v)
}

// UpdateContext is Update honoring a context deadline or cancellation.
func (c *Coordinator) UpdateContext(ctx context.Context, op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	if op != UpdateInsert && op != UpdateDelete {
		return UpdateResult{}, WireStats{}, fmt.Errorf("netsite: unknown update op %q", byte(op))
	}
	c.updMu.Lock()
	defer c.updMu.Unlock()
	replies, st, err := c.roundtrip(ctx, kindUpdate, encodeUpdateRequest(op, u, v))
	if err != nil {
		return UpdateResult{}, st, err
	}
	var res UpdateResult
	seen := map[int]bool{}
	for i, resp := range replies {
		changed, dirty, err := decodeUpdateReply(resp)
		if err != nil {
			return UpdateResult{}, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
		res.Changed = res.Changed || changed
		for _, d := range dirty {
			if !seen[d] {
				seen[d] = true
				res.Dirty = append(res.Dirty, d)
			}
		}
	}
	sort.Ints(res.Dirty)
	return res, st, nil
}
