package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/oplog"
)

// Live graph updates over the wire. An update frame ('U') carries one
// sequenced transactional batch of mutations — edge inserts/deletes and
// node inserts/deletes. The coordinator draws the batch's LSN from the
// deployment's sequencer (write-ahead logging it first when the sequencer
// is durable) and broadcasts the frame to every site; each site holds a
// replica of the whole fragmentation, applies the batch atomically under
// the fragmentation write lock in LSN order, and replies with what changed
// from its replica's point of view. Re-delivered frames (sites sharing one
// in-process replica, retries) replay the recorded result — node
// insertion, unlike edge ops, is not idempotent — and the coordinator
// unions the replies into the definitive dirty set.
//
// Update request payload (little-endian):
//
//	ver u8 (3) | lsn u64 | nonce u64 | count u32 | per op:
//	  kind u8 ('i' insert edge | 'd' delete edge | 'n' insert node |
//	           'r' delete node)
//	  'i'/'d' add: u u32 | v u32
//	  'n'     adds: frag i32 (-1 = partitioner places) | llen u16 | label
//	  'r'     adds: v u32
//
// The nonce identifies the submitter: a replica that sees a *different*
// writer's batch at an LSN it already applied errors loudly (two gateways
// forked the order by not sharing a sequencer) instead of silently
// swallowing the batch.
//
// Update response payload:
//
//	ver u8 (3) | changed u8 | ndirty u32 | dirty u32 each
//	          | nnew u32 | new node IDs u32 each
//	          | balance stats: k u32 | maxSize u32 | minSize u32 |
//	            totalSize u64 | vf u32 | crossEdges u32
//
// Every reply rides inside the (epoch, lsn)-prefixed answer frame, and the
// reply carries the post-update BalanceStats so the gateway can watch skew
// drift without extra traffic and trigger a rebalance.
//
// Consistency: the sequencer serializes update rounds across every writer
// of the deployment, and replicas enforce LSN order, so all replicas apply
// all batches in one total order. A site that is unreachable (or behind)
// during a round is skipped — the write-ahead log re-delivers to it via
// catch-up replication (see sync.go), and query rounds refuse to combine
// its stale partials with fresh ones in the meantime (the LSN tag on every
// answer), so convergence is eventual but never silently wrong.

// Op is one mutation of a wire update batch (alias of fragment.Op).
type Op = fragment.Op

// The four mutation kinds, re-exported for wire callers.
const (
	OpInsertEdge = fragment.OpInsertEdge
	OpDeleteEdge = fragment.OpDeleteEdge
	OpInsertNode = fragment.OpInsertNode
	OpDeleteNode = fragment.OpDeleteNode
)

// UpdateOp selects the edge operation of the single-edge Update
// convenience wrapper.
type UpdateOp byte

// The two edge operations.
const (
	UpdateInsert UpdateOp = 'i'
	UpdateDelete UpdateOp = 'd'
)

// UpdateResult reports the effect of one update batch on the deployment.
type UpdateResult struct {
	// Changed is false when the whole batch was a no-op (inserting
	// existing edges, deleting missing ones, re-deleting nodes).
	Changed bool
	// Dirty lists the fragments whose partial answers may have changed,
	// sorted ascending. Empty when Changed is false.
	Dirty []int
	// NewIDs holds the node ID assigned to each OpInsertNode, in op order.
	NewIDs []graph.NodeID
	// Epoch is the deployment epoch the batch applied under, and LSN the
	// position it holds in the update log's total order.
	Epoch uint64
	LSN   uint64
	// Missed lists the sites that did not apply the batch this round —
	// unreachable, or behind on the log. The batch is durably sequenced,
	// so catch-up replication delivers it to them; callers should trigger
	// a sync when Missed is non-empty.
	Missed []int
	// Stats is the post-update balance of the fragmentation; the gateway
	// watches its Skew to trigger automatic rebalancing.
	Stats fragment.BalanceStats
}

// updateVersion versions the update payload codecs.
const updateVersion = 3

// encodeUpdateRequest packs one sequenced transactional mutation batch.
func encodeUpdateRequest(lsn, nonce uint64, ops []Op) ([]byte, error) {
	b := []byte{updateVersion}
	b = binary.LittleEndian.AppendUint64(b, lsn)
	b = binary.LittleEndian.AppendUint64(b, nonce)
	return oplog.AppendOps(b, ops)
}

// decodeUpdateRequest is the inverse of encodeUpdateRequest, hardened
// against hostile payloads: every count and length is bounds-checked and
// trailing bytes are rejected.
func decodeUpdateRequest(p []byte) (lsn, nonce uint64, ops []Op, err error) {
	r := oplog.NewCursor(p)
	v, err := r.U8()
	if err != nil {
		return 0, 0, nil, err
	}
	if v != updateVersion {
		return 0, 0, nil, fmt.Errorf("netsite: unsupported update version %d", v)
	}
	if lsn, err = r.U64(); err != nil {
		return 0, 0, nil, err
	}
	if nonce, err = r.U64(); err != nil {
		return 0, 0, nil, err
	}
	if ops, err = oplog.ReadOps(r); err != nil {
		return 0, 0, nil, err
	}
	if err := r.Done(); err != nil {
		return 0, 0, nil, err
	}
	return lsn, nonce, ops, nil
}

// encodeUpdateReply packs one site's view of an applied update batch plus
// the post-update balance stats.
func encodeUpdateReply(changed bool, dirty []int, newIDs []graph.NodeID, bs fragment.BalanceStats) []byte {
	b := []byte{updateVersion, 0}
	if changed {
		b[1] = 1
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dirty)))
	for _, d := range dirty {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(newIDs)))
	for _, id := range newIDs {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	b = appendBalanceStats(b, bs)
	return b
}

// decodeUpdateReply is the inverse of encodeUpdateReply, hardened against
// hostile payloads.
func decodeUpdateReply(p []byte) (changed bool, dirty []int, newIDs []graph.NodeID, bs fragment.BalanceStats, err error) {
	r := &batchReader{b: p}
	v, err := r.u8()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if v != updateVersion {
		return false, nil, nil, bs, fmt.Errorf("netsite: unsupported update reply version %d", v)
	}
	ch, err := r.u8()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if ch > 1 {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply changed flag %d", ch)
	}
	nd, err := r.u32()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if uint64(nd)*4 > uint64(len(r.b)-r.off) {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply claims %d fragment IDs in %d bytes", nd, len(r.b)-r.off)
	}
	dirty = make([]int, 0, nd)
	for i := 0; i < int(nd); i++ {
		d, err := r.u32()
		if err != nil {
			return false, nil, nil, bs, err
		}
		dirty = append(dirty, int(d))
	}
	nn, err := r.u32()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if uint64(nn)*4 > uint64(len(r.b)-r.off) {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply claims %d new IDs in %d bytes", nn, len(r.b)-r.off)
	}
	newIDs = make([]graph.NodeID, 0, nn)
	for i := 0; i < int(nn); i++ {
		id, err := r.u32()
		if err != nil {
			return false, nil, nil, bs, err
		}
		newIDs = append(newIDs, graph.NodeID(id))
	}
	bs, err = readBalanceStats(r)
	if err != nil {
		return false, nil, nil, bs, err
	}
	if err := r.done(); err != nil {
		return false, nil, nil, bs, err
	}
	return ch == 1, dirty, newIDs, bs, nil
}

// appendBalanceStats packs the balance summary every update and rebalance
// reply carries.
func appendBalanceStats(b []byte, bs fragment.BalanceStats) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.Fragments))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.MaxSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.MinSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(bs.TotalSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.Vf))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.CrossEdges))
	return b
}

// readBalanceStats is the inverse of appendBalanceStats.
func readBalanceStats(r *batchReader) (fragment.BalanceStats, error) {
	var bs fragment.BalanceStats
	k, err := r.u32()
	if err != nil {
		return bs, err
	}
	maxs, err := r.u32()
	if err != nil {
		return bs, err
	}
	mins, err := r.u32()
	if err != nil {
		return bs, err
	}
	total, err := r.u64()
	if err != nil {
		return bs, err
	}
	vf, err := r.u32()
	if err != nil {
		return bs, err
	}
	cross, err := r.u32()
	if err != nil {
		return bs, err
	}
	bs.Fragments = int(k)
	bs.MaxSize = int(maxs)
	bs.MinSize = int(mins)
	bs.TotalSize = int64(total)
	bs.Vf = int(vf)
	bs.CrossEdges = int(cross)
	return bs, nil
}

// Update applies one edge insertion or deletion to the deployment — the
// single-edge convenience form of Apply.
func (c *Coordinator) Update(op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	return c.UpdateContext(context.Background(), op, u, v)
}

// UpdateContext is Update honoring a context deadline or cancellation.
func (c *Coordinator) UpdateContext(ctx context.Context, op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	var kind fragment.OpKind
	switch op {
	case UpdateInsert:
		kind = OpInsertEdge
	case UpdateDelete:
		kind = OpDeleteEdge
	default:
		return UpdateResult{}, WireStats{}, fmt.Errorf("netsite: unknown update op %q", byte(op))
	}
	return c.ApplyContext(ctx, []Op{{Kind: kind, U: u, V: v}})
}

// InsertNode adds a node carrying label to the deployment; the replicas'
// partitioner places it. The assigned ID is UpdateResult.NewIDs[0].
func (c *Coordinator) InsertNode(label string) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), []Op{{Kind: OpInsertNode, Label: label, Frag: -1}})
}

// DeleteNode removes node v from the deployment, cascading to its
// incident edges.
func (c *Coordinator) DeleteNode(v graph.NodeID) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), []Op{{Kind: OpDeleteNode, U: v}})
}

// Apply runs one transactional mutation batch against the deployment: the
// batch draws an LSN from the sequencer (write-ahead logged first when
// durable), travels in a single update frame to every site, each replica
// applies it atomically under its fragmentation write lock, and the
// replies are unioned into the definitive changed flag, dirty fragment
// set and new node IDs. The sequencer serializes batches across every
// writer, so all replicas apply them in the same order.
func (c *Coordinator) Apply(ops []Op) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), ops)
}

// ensureSeqInit adopts the deployment's current LSN into a sequencer that
// has not submitted through this coordinator yet: a hello round asks every
// reachable site where the log stands, so a freshly dialed coordinator
// (or a gateway whose write-ahead log is younger than the deployment)
// extends the existing order instead of forking it. Bare-fragment sites
// reject the hello with an error *reply*; that still proves the site is
// reachable (and has no LSN), so it counts as an answer. Only a round in
// which NO site answered at all fails — latching "initialized" on silence
// would adopt LSN 0 and fork a deployment that is really further along.
func (c *Coordinator) ensureSeqInit(ctx context.Context, seq *oplog.Sequencer) error {
	c.seqMu.Lock()
	done := c.seqInit
	c.seqMu.Unlock()
	if done {
		return nil
	}
	// The adoption hello is deliberately NOT folded into any update's
	// WireStats: those keep their one-frame-per-site-per-round meaning.
	// The connection-level WireTotals still count it.
	results, _ := c.roundtripAll(ctx, kindSync, []byte{syncHello}, nil)
	var max uint64
	answered := false
	var firstErr error
	for _, r := range results {
		switch {
		case r.err == nil:
			answered = true
			if r.lsn > max {
				max = r.lsn
			}
		case r.appErr:
			answered = true // reachable, just not a replica-backed site
		case firstErr == nil:
			firstErr = r.err
		}
	}
	if !answered {
		if firstErr == nil {
			firstErr = fmt.Errorf("netsite: no sites connected")
		}
		return fmt.Errorf("netsite: cannot adopt the deployment's LSN: %w", firstErr)
	}
	if err := seq.Advance(max); err != nil {
		return err
	}
	c.seqMu.Lock()
	c.seqInit = true
	c.seqMu.Unlock()
	return nil
}

// isBehindError reports whether a site's error reply marks a replica that
// missed earlier batches (fragment.ErrReplicaBehind, flattened to text by
// the wire's error frame).
func isBehindError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "replica is behind the update log")
}

// ApplyContext is Apply honoring a context deadline or cancellation.
func (c *Coordinator) ApplyContext(ctx context.Context, ops []Op) (UpdateResult, WireStats, error) {
	if len(ops) == 0 {
		return UpdateResult{}, WireStats{}, fmt.Errorf("netsite: empty update batch")
	}
	c.updMu.Lock()
	defer c.updMu.Unlock()
	seq := c.Sequencer()
	if err := c.ensureSeqInit(ctx, seq); err != nil {
		return UpdateResult{}, WireStats{}, err
	}
	var res UpdateResult
	var st WireStats
	nonce := rand.Uint64() | 1 // nonzero: 0 means "replay, match anything"
	_, err := seq.Submit(ops, func(lsn uint64) error {
		payload, err := encodeUpdateRequest(lsn, nonce, ops)
		if err != nil {
			return err
		}
		results, rst := c.roundtripAll(ctx, kindUpdate, payload, nil)
		st = rst
		st.LSN = lsn
		// A site that is unreachable or behind on the log is a laggard,
		// not a failure: the batch is sequenced (and, with a durable
		// sequencer, logged), so catch-up replication re-delivers it. Any
		// other site error — validation, codec, bare fragment — is
		// deterministic across replicas and fails the round.
		applied, behind := 0, false
		for i, r := range results {
			if r.err != nil {
				if !r.appErr || isBehindError(r.err) {
					behind = behind || isBehindError(r.err)
					res.Missed = append(res.Missed, i)
					continue
				}
				return r.err
			}
			applied++
		}
		if applied == 0 {
			// The batch reached no replica. Every replica being behind the
			// sequenced log is a state split the caller can heal (catch-up
			// replication re-delivers from the log); either way the batch
			// was not delivered, which lets an in-memory sequencer reclaim
			// the LSN instead of leaving a hole.
			var cause error
			for _, r := range results {
				if r.err != nil {
					cause = r.err
					break
				}
			}
			if cause == nil {
				cause = fmt.Errorf("netsite: no sites connected")
			}
			if behind {
				return fmt.Errorf("%w: %w (replicas trail the sequenced log; catch-up needed): %v", oplog.ErrNotDelivered, ErrEpochSplit, cause)
			}
			return fmt.Errorf("%w: %v", oplog.ErrNotDelivered, cause)
		}
		seen := map[int]bool{}
		first := true
		for i, r := range results {
			if r.err != nil {
				continue
			}
			changed, dirty, newIDs, bs, err := decodeUpdateReply(r.payload)
			if err != nil {
				return fmt.Errorf("netsite: site %d reply: %w", i, err)
			}
			res.Changed = res.Changed || changed
			for _, d := range dirty {
				if !seen[d] {
					seen[d] = true
					res.Dirty = append(res.Dirty, d)
				}
			}
			if first {
				first = false
				res.NewIDs, res.Stats, res.Epoch = newIDs, bs, r.epoch
			} else if r.epoch != res.Epoch {
				// An update must apply on one epoch everywhere; a split means a
				// replica is out of sync (or a rebalance raced this round from
				// another coordinator).
				return fmt.Errorf("%w (update applied across epochs %d and %d)", ErrEpochSplit, res.Epoch, r.epoch)
			}
			for j, id := range newIDs {
				if j < len(res.NewIDs) && res.NewIDs[j] != id {
					return fmt.Errorf("netsite: sites disagree on new node IDs (%d vs %d)", res.NewIDs[j], id)
				}
			}
		}
		res.LSN = lsn
		return nil
	})
	if err != nil {
		return UpdateResult{}, st, err
	}
	sort.Ints(res.Dirty)
	res.Stats.Epoch = res.Epoch
	st.Epoch = res.Epoch
	return res, st, nil
}
