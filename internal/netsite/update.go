package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Live graph updates over the wire. An update frame ('U') carries one
// transactional batch of mutations — edge inserts/deletes and node
// inserts/deletes. The coordinator broadcasts it to every site; each site
// holds a replica of the whole fragmentation, applies the batch atomically
// under the fragmentation write lock, and replies with what changed from
// its replica's point of view. Broadcast delivery is deduplicated by the
// batch's sequence number (sites sharing one in-process replica apply it
// once and the rest replay the recorded result — node insertion, unlike
// edge ops, is not idempotent), and the coordinator unions the replies
// into the definitive dirty set.
//
// Update request payload (little-endian):
//
//	ver u8 (2) | seq u64 | count u32 | per op:
//	  kind u8 ('i' insert edge | 'd' delete edge | 'n' insert node |
//	           'r' delete node)
//	  'i'/'d' add: u u32 | v u32
//	  'n'     adds: frag i32 (-1 = partitioner places) | llen u16 | label
//	  'r'     adds: v u32
//
// Update response payload:
//
//	ver u8 (2) | changed u8 | ndirty u32 | dirty u32 each
//	          | nnew u32 | new node IDs u32 each
//	          | balance stats: k u32 | maxSize u32 | minSize u32 |
//	            totalSize u64 | vf u32 | crossEdges u32
//
// Every reply rides inside the epoch-prefixed answer frame, and the reply
// carries the post-update BalanceStats so the gateway can watch skew drift
// without extra traffic and trigger a rebalance.
//
// Consistency: one coordinator serializes its update and rebalance rounds
// (they run one at a time), and each site orders a batch against its own
// in-flight queries with the write lock, but a multi-site round is not
// atomic — a query racing an update may combine pre- and post-update
// partials. The system is eventually consistent: once an update round
// returns, every subsequent query sees it.

// Op is one mutation of a wire update batch (alias of fragment.Op).
type Op = fragment.Op

// The four mutation kinds, re-exported for wire callers.
const (
	OpInsertEdge = fragment.OpInsertEdge
	OpDeleteEdge = fragment.OpDeleteEdge
	OpInsertNode = fragment.OpInsertNode
	OpDeleteNode = fragment.OpDeleteNode
)

// UpdateOp selects the edge operation of the single-edge Update
// convenience wrapper.
type UpdateOp byte

// The two edge operations.
const (
	UpdateInsert UpdateOp = 'i'
	UpdateDelete UpdateOp = 'd'
)

// UpdateResult reports the effect of one update batch on the deployment.
type UpdateResult struct {
	// Changed is false when the whole batch was a no-op (inserting
	// existing edges, deleting missing ones, re-deleting nodes).
	Changed bool
	// Dirty lists the fragments whose partial answers may have changed,
	// sorted ascending. Empty when Changed is false.
	Dirty []int
	// NewIDs holds the node ID assigned to each OpInsertNode, in op order.
	NewIDs []graph.NodeID
	// Epoch is the deployment epoch the batch applied under.
	Epoch uint64
	// Stats is the post-update balance of the fragmentation; the gateway
	// watches its Skew to trigger automatic rebalancing.
	Stats fragment.BalanceStats
}

// updateVersion versions the update payload codecs.
const updateVersion = 2

// maxOps bounds the declared op count of one update frame against hostile
// length prefixes; it comfortably exceeds any real transactional batch.
const maxOps = 1 << 16

// encodeUpdateRequest packs one transactional mutation batch.
func encodeUpdateRequest(seq uint64, ops []Op) ([]byte, error) {
	b := []byte{updateVersion}
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for i, op := range ops {
		b = append(b, byte(op.Kind))
		switch op.Kind {
		case OpInsertEdge, OpDeleteEdge:
			b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
			b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
		case OpInsertNode:
			if len(op.Label) > 0xFFFF {
				return nil, fmt.Errorf("netsite: op %d: label of %d bytes exceeds the wire limit", i, len(op.Label))
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(int32(op.Frag)))
			b = binary.LittleEndian.AppendUint16(b, uint16(len(op.Label)))
			b = append(b, op.Label...)
		case OpDeleteNode:
			b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		default:
			return nil, fmt.Errorf("netsite: op %d: unknown kind %q", i, byte(op.Kind))
		}
	}
	return b, nil
}

// decodeUpdateRequest is the inverse of encodeUpdateRequest, hardened
// against hostile payloads: every count and length is bounds-checked and
// trailing bytes are rejected.
func decodeUpdateRequest(p []byte) (seq uint64, ops []Op, err error) {
	r := &batchReader{b: p}
	v, err := r.u8()
	if err != nil {
		return 0, nil, err
	}
	if v != updateVersion {
		return 0, nil, fmt.Errorf("netsite: unsupported update version %d", v)
	}
	seq, err = r.u64()
	if err != nil {
		return 0, nil, err
	}
	n, err := r.u32()
	if err != nil {
		return 0, nil, err
	}
	if n > maxOps || uint64(n) > uint64(len(r.b)-r.off) { // each op is >= 1 byte
		return 0, nil, fmt.Errorf("netsite: implausible update op count %d", n)
	}
	ops = make([]Op, 0, n)
	for i := 0; i < int(n); i++ {
		kind, err := r.u8()
		if err != nil {
			return 0, nil, err
		}
		op := Op{Kind: fragment.OpKind(kind)}
		switch op.Kind {
		case OpInsertEdge, OpDeleteEdge:
			u, err := r.u32()
			if err != nil {
				return 0, nil, err
			}
			v, err := r.u32()
			if err != nil {
				return 0, nil, err
			}
			op.U, op.V = graph.NodeID(u), graph.NodeID(v)
		case OpInsertNode:
			f, err := r.u32()
			if err != nil {
				return 0, nil, err
			}
			llen, err := r.u16()
			if err != nil {
				return 0, nil, err
			}
			lb, err := r.bytes(uint32(llen))
			if err != nil {
				return 0, nil, err
			}
			op.Frag = int(int32(f))
			op.Label = string(lb)
		case OpDeleteNode:
			u, err := r.u32()
			if err != nil {
				return 0, nil, err
			}
			op.U = graph.NodeID(u)
		default:
			return 0, nil, fmt.Errorf("netsite: update op %d: unknown kind %q", i, kind)
		}
		ops = append(ops, op)
	}
	if err := r.done(); err != nil {
		return 0, nil, err
	}
	return seq, ops, nil
}

// encodeUpdateReply packs one site's view of an applied update batch plus
// the post-update balance stats.
func encodeUpdateReply(changed bool, dirty []int, newIDs []graph.NodeID, bs fragment.BalanceStats) []byte {
	b := []byte{updateVersion, 0}
	if changed {
		b[1] = 1
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dirty)))
	for _, d := range dirty {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(newIDs)))
	for _, id := range newIDs {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	b = appendBalanceStats(b, bs)
	return b
}

// decodeUpdateReply is the inverse of encodeUpdateReply, hardened against
// hostile payloads.
func decodeUpdateReply(p []byte) (changed bool, dirty []int, newIDs []graph.NodeID, bs fragment.BalanceStats, err error) {
	r := &batchReader{b: p}
	v, err := r.u8()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if v != updateVersion {
		return false, nil, nil, bs, fmt.Errorf("netsite: unsupported update reply version %d", v)
	}
	ch, err := r.u8()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if ch > 1 {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply changed flag %d", ch)
	}
	nd, err := r.u32()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if uint64(nd)*4 > uint64(len(r.b)-r.off) {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply claims %d fragment IDs in %d bytes", nd, len(r.b)-r.off)
	}
	dirty = make([]int, 0, nd)
	for i := 0; i < int(nd); i++ {
		d, err := r.u32()
		if err != nil {
			return false, nil, nil, bs, err
		}
		dirty = append(dirty, int(d))
	}
	nn, err := r.u32()
	if err != nil {
		return false, nil, nil, bs, err
	}
	if uint64(nn)*4 > uint64(len(r.b)-r.off) {
		return false, nil, nil, bs, fmt.Errorf("netsite: update reply claims %d new IDs in %d bytes", nn, len(r.b)-r.off)
	}
	newIDs = make([]graph.NodeID, 0, nn)
	for i := 0; i < int(nn); i++ {
		id, err := r.u32()
		if err != nil {
			return false, nil, nil, bs, err
		}
		newIDs = append(newIDs, graph.NodeID(id))
	}
	bs, err = readBalanceStats(r)
	if err != nil {
		return false, nil, nil, bs, err
	}
	if err := r.done(); err != nil {
		return false, nil, nil, bs, err
	}
	return ch == 1, dirty, newIDs, bs, nil
}

// appendBalanceStats packs the balance summary every update and rebalance
// reply carries.
func appendBalanceStats(b []byte, bs fragment.BalanceStats) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.Fragments))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.MaxSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.MinSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(bs.TotalSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.Vf))
	b = binary.LittleEndian.AppendUint32(b, uint32(bs.CrossEdges))
	return b
}

// readBalanceStats is the inverse of appendBalanceStats.
func readBalanceStats(r *batchReader) (fragment.BalanceStats, error) {
	var bs fragment.BalanceStats
	k, err := r.u32()
	if err != nil {
		return bs, err
	}
	maxs, err := r.u32()
	if err != nil {
		return bs, err
	}
	mins, err := r.u32()
	if err != nil {
		return bs, err
	}
	total, err := r.u64()
	if err != nil {
		return bs, err
	}
	vf, err := r.u32()
	if err != nil {
		return bs, err
	}
	cross, err := r.u32()
	if err != nil {
		return bs, err
	}
	bs.Fragments = int(k)
	bs.MaxSize = int(maxs)
	bs.MinSize = int(mins)
	bs.TotalSize = int64(total)
	bs.Vf = int(vf)
	bs.CrossEdges = int(cross)
	return bs, nil
}

// Update applies one edge insertion or deletion to the deployment — the
// single-edge convenience form of Apply.
func (c *Coordinator) Update(op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	return c.UpdateContext(context.Background(), op, u, v)
}

// UpdateContext is Update honoring a context deadline or cancellation.
func (c *Coordinator) UpdateContext(ctx context.Context, op UpdateOp, u, v graph.NodeID) (UpdateResult, WireStats, error) {
	var kind fragment.OpKind
	switch op {
	case UpdateInsert:
		kind = OpInsertEdge
	case UpdateDelete:
		kind = OpDeleteEdge
	default:
		return UpdateResult{}, WireStats{}, fmt.Errorf("netsite: unknown update op %q", byte(op))
	}
	return c.ApplyContext(ctx, []Op{{Kind: kind, U: u, V: v}})
}

// InsertNode adds a node carrying label to the deployment; the replicas'
// partitioner places it. The assigned ID is UpdateResult.NewIDs[0].
func (c *Coordinator) InsertNode(label string) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), []Op{{Kind: OpInsertNode, Label: label, Frag: -1}})
}

// DeleteNode removes node v from the deployment, cascading to its
// incident edges.
func (c *Coordinator) DeleteNode(v graph.NodeID) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), []Op{{Kind: OpDeleteNode, U: v}})
}

// Apply runs one transactional mutation batch against the deployment: the
// batch travels in a single update frame to every site, each replica
// applies it atomically under its fragmentation write lock, and the
// replies are unioned into the definitive changed flag, dirty fragment
// set and new node IDs. Batches from one coordinator are serialized (one
// round in flight at a time) so every site applies them in the same
// order.
func (c *Coordinator) Apply(ops []Op) (UpdateResult, WireStats, error) {
	return c.ApplyContext(context.Background(), ops)
}

// ApplyContext is Apply honoring a context deadline or cancellation.
func (c *Coordinator) ApplyContext(ctx context.Context, ops []Op) (UpdateResult, WireStats, error) {
	if len(ops) == 0 {
		return UpdateResult{}, WireStats{}, fmt.Errorf("netsite: empty update batch")
	}
	c.updMu.Lock()
	defer c.updMu.Unlock()
	seq := c.nextSeq.Add(1)
	if seq == 0 { // the random base wrapped; 0 means "no dedupe" on the wire
		seq = c.nextSeq.Add(1)
	}
	payload, err := encodeUpdateRequest(seq, ops)
	if err != nil {
		return UpdateResult{}, WireStats{}, err
	}
	replies, epochs, st, err := c.roundtrip(ctx, kindUpdate, payload)
	if err != nil {
		return UpdateResult{}, st, err
	}
	var res UpdateResult
	seen := map[int]bool{}
	for i, resp := range replies {
		changed, dirty, newIDs, bs, err := decodeUpdateReply(resp)
		if err != nil {
			return UpdateResult{}, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
		res.Changed = res.Changed || changed
		for _, d := range dirty {
			if !seen[d] {
				seen[d] = true
				res.Dirty = append(res.Dirty, d)
			}
		}
		if i == 0 {
			res.NewIDs, res.Stats, res.Epoch = newIDs, bs, epochs[0]
		} else if epochs[i] != res.Epoch {
			// An update must apply on one epoch everywhere; a split means a
			// replica is out of sync (or a rebalance raced this round from
			// another coordinator).
			return UpdateResult{}, st, fmt.Errorf("%w (update applied across epochs %d and %d)", ErrEpochSplit, res.Epoch, epochs[i])
		}
		for j, id := range newIDs {
			if j < len(res.NewIDs) && res.NewIDs[j] != id {
				return UpdateResult{}, st, fmt.Errorf("netsite: sites disagree on new node IDs (%d vs %d)", res.NewIDs[j], id)
			}
		}
	}
	sort.Ints(res.Dirty)
	res.Stats.Epoch = res.Epoch
	st.Epoch = res.Epoch
	return res, st, nil
}
