package netsite

import (
	"bytes"
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/gen"
)

// FuzzDecodeFrame throws arbitrary byte streams at the frame decoder: it
// must either error or produce a frame that re-encodes to exactly the
// bytes it consumed. Seeds come from the edge cases the handwritten tests
// pin down.
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames of each request kind, plus the codified edge cases.
	for _, payload := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xAB}, 256)} {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, 42, kindReach, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(rawHeader(0))                                           // zero length
	f.Add(append(rawHeader(3), 1, 2, 3))                          // shorter than id+kind
	f.Add(rawHeader(maxFrame + 1))                                // oversized length
	f.Add(append(rawHeader(100), bytes.Repeat([]byte{7}, 10)...)) // truncated payload
	f.Add([]byte{1, 0})                                           // truncated header
	// Update frames, request and reply.
	var upd bytes.Buffer
	if _, err := writeFrame(&upd, 7, kindUpdate, encodeUpdateRequest(UpdateInsert, 3, 4)); err != nil {
		f.Fatal(err)
	}
	if _, err := writeFrame(&upd, 7, kindAnswer, encodeUpdateReply(true, []int{0, 2})); err != nil {
		f.Fatal(err)
	}
	f.Add(upd.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		id, kind, payload, n, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is always legal; not panicking is the property
		}
		if n < 4+minFrame || n > len(data) {
			t.Fatalf("readFrame consumed %d of %d bytes", n, len(data))
		}
		var buf bytes.Buffer
		wn, err := writeFrame(&buf, id, kind, payload)
		if err != nil {
			t.Fatalf("re-encode of a decoded frame failed: %v", err)
		}
		if wn != n || !bytes.Equal(buf.Bytes(), data[:n]) {
			t.Fatalf("frame round trip drifted: read %d bytes, wrote %d", n, wn)
		}
	})
}

// FuzzBatchPayload throws arbitrary bytes at both batch payload decoders.
// Whatever decodes must re-encode and decode back to the same thing; the
// rest must be rejected with an error, never a panic or an implausible
// allocation. The automaton codec nested inside RPQ batch entries gets
// fuzzed along the way.
func FuzzBatchPayload(f *testing.F) {
	rng := gen.NewRNG(7)
	a := automaton.Random(rng, 3, 5, []string{"A", "B"})
	seed, err := encodeBatchRequest([]BatchQuery{
		{Class: ClassReach, S: 1, T: 2},
		{Class: ClassDist, S: 3, T: 4, L: 6},
		{Class: ClassRPQ, S: 5, T: 6, A: a},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := encodeBatchRequest(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(encodeBatchReply([][]byte{{9, 8}}, []uint32{1, 0, 1}, [][]byte{{1, 2, 3}, nil, {0xFF}}))
	f.Add([]byte{batchVersion, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile count
	f.Add(seed[:len(seed)-3])                           // truncated query

	f.Fuzz(func(t *testing.T, data []byte) {
		if qs, err := decodeBatchRequest(data); err == nil {
			re, err := encodeBatchRequest(qs)
			if err != nil {
				t.Fatalf("re-encode of a decoded batch failed: %v", err)
			}
			qs2, err := decodeBatchRequest(re)
			if err != nil {
				t.Fatalf("decode of a re-encoded batch failed: %v", err)
			}
			if len(qs2) != len(qs) {
				t.Fatalf("batch round trip drifted: %d then %d queries", len(qs), len(qs2))
			}
			for i := range qs {
				if qs2[i].Class != qs[i].Class || qs2[i].S != qs[i].S ||
					qs2[i].T != qs[i].T || qs2[i].L != qs[i].L {
					t.Fatalf("query %d drifted: %+v -> %+v", i, qs[i], qs2[i])
				}
			}
		}
		if shared, refs, parts, err := decodeBatchReply(data); err == nil {
			shared2, refs2, parts2, err := decodeBatchReply(encodeBatchReply(shared, refs, parts))
			if err != nil {
				t.Fatalf("reply re-encode round trip failed: %v", err)
			}
			if len(shared2) != len(shared) || len(parts2) != len(parts) {
				t.Fatalf("reply round trip drifted: %d/%d then %d/%d sections/parts",
					len(shared), len(parts), len(shared2), len(parts2))
			}
			for i := range shared {
				if !bytes.Equal(shared[i], shared2[i]) {
					t.Fatalf("reply section %d drifted", i)
				}
			}
			for i := range parts {
				if refs[i] != refs2[i] || !bytes.Equal(parts[i], parts2[i]) {
					t.Fatalf("reply part %d drifted", i)
				}
			}
		}
	})
}

// FuzzUpdatePayload throws arbitrary bytes at the update frame codecs:
// whatever decodes must survive a re-encode round trip; the rest must be
// rejected with an error, never a panic or an implausible allocation.
func FuzzUpdatePayload(f *testing.F) {
	f.Add(encodeUpdateRequest(UpdateInsert, 1, 2))
	f.Add(encodeUpdateRequest(UpdateDelete, 0xFFFFFFF, 0))
	f.Add(encodeUpdateReply(true, []int{0, 1, 5}))
	f.Add(encodeUpdateReply(false, nil))
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0x7F}) // hostile dirty count
	f.Fuzz(func(t *testing.T, data []byte) {
		if op, u, v, err := decodeUpdateRequest(data); err == nil {
			if !bytes.Equal(encodeUpdateRequest(op, u, v), data) {
				t.Fatalf("update request round trip drifted")
			}
		}
		if changed, dirty, err := decodeUpdateReply(data); err == nil {
			if !bytes.Equal(encodeUpdateReply(changed, dirty), data) {
				t.Fatalf("update reply round trip drifted")
			}
		}
	})
}
