package netsite

import (
	"bytes"
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/oplog"
)

// FuzzDecodeFrame throws arbitrary byte streams at the frame decoder: it
// must either error or produce a frame that re-encodes to exactly the
// bytes it consumed. Seeds come from the edge cases the handwritten tests
// pin down.
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames of each request kind, plus the codified edge cases.
	for _, payload := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xAB}, 256)} {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, 42, kindReach, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(rawHeader(0))                                           // zero length
	f.Add(append(rawHeader(3), 1, 2, 3))                          // shorter than id+kind
	f.Add(rawHeader(maxFrame + 1))                                // oversized length
	f.Add(append(rawHeader(100), bytes.Repeat([]byte{7}, 10)...)) // truncated payload
	f.Add([]byte{1, 0})                                           // truncated header
	// Update and rebalance frames, request and reply.
	var upd bytes.Buffer
	ureq, err := encodeUpdateRequest(9, 77, []Op{{Kind: OpInsertEdge, U: 3, V: 4}})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := writeFrame(&upd, 7, kindUpdate, ureq); err != nil {
		f.Fatal(err)
	}
	if _, err := writeFrame(&upd, 7, kindAnswer, encodeUpdateReply(true, []int{0, 2}, nil, fragment.BalanceStats{})); err != nil {
		f.Fatal(err)
	}
	rreq, err := encodeRebalanceRequest(3, 4, 11, "edgecut")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := writeFrame(&upd, 8, kindRebalance, rreq); err != nil {
		f.Fatal(err)
	}
	f.Add(upd.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		id, kind, payload, n, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejecting is always legal; not panicking is the property
		}
		if n < 4+minFrame || n > len(data) {
			t.Fatalf("readFrame consumed %d of %d bytes", n, len(data))
		}
		var buf bytes.Buffer
		wn, err := writeFrame(&buf, id, kind, payload)
		if err != nil {
			t.Fatalf("re-encode of a decoded frame failed: %v", err)
		}
		if wn != n || !bytes.Equal(buf.Bytes(), data[:n]) {
			t.Fatalf("frame round trip drifted: read %d bytes, wrote %d", n, wn)
		}
	})
}

// FuzzBatchPayload throws arbitrary bytes at both batch payload decoders.
// Whatever decodes must re-encode and decode back to the same thing; the
// rest must be rejected with an error, never a panic or an implausible
// allocation. The automaton codec nested inside RPQ batch entries gets
// fuzzed along the way.
func FuzzBatchPayload(f *testing.F) {
	rng := gen.NewRNG(7)
	a := automaton.Random(rng, 3, 5, []string{"A", "B"})
	seed, err := encodeBatchRequest([]BatchQuery{
		{Class: ClassReach, S: 1, T: 2},
		{Class: ClassDist, S: 3, T: 4, L: 6},
		{Class: ClassRPQ, S: 5, T: 6, A: a},
	}, batchFlagStream)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := encodeBatchRequest(nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(encodeBatchReply([][]byte{{9, 8}}, []uint32{1, 0, 1}, [][]byte{{1, 2, 3}, nil, {0xFF}}))
	f.Add([]byte{batchVersion, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile count
	f.Add([]byte{batchVersion, 0xFF, 0, 0, 0, 0})          // unknown flags
	f.Add(seed[:len(seed)-3])                              // truncated query

	f.Fuzz(func(t *testing.T, data []byte) {
		if qs, flags, err := decodeBatchRequest(data); err == nil {
			re, err := encodeBatchRequest(qs, flags)
			if err != nil {
				t.Fatalf("re-encode of a decoded batch failed: %v", err)
			}
			qs2, flags2, err := decodeBatchRequest(re)
			if err != nil {
				t.Fatalf("decode of a re-encoded batch failed: %v", err)
			}
			if flags2 != flags {
				t.Fatalf("batch flags drifted: %#x then %#x", flags, flags2)
			}
			if len(qs2) != len(qs) {
				t.Fatalf("batch round trip drifted: %d then %d queries", len(qs), len(qs2))
			}
			for i := range qs {
				if qs2[i].Class != qs[i].Class || qs2[i].S != qs[i].S ||
					qs2[i].T != qs[i].T || qs2[i].L != qs[i].L {
					t.Fatalf("query %d drifted: %+v -> %+v", i, qs[i], qs2[i])
				}
			}
		}
		if shared, refs, parts, err := decodeBatchReply(data); err == nil {
			shared2, refs2, parts2, err := decodeBatchReply(encodeBatchReply(shared, refs, parts))
			if err != nil {
				t.Fatalf("reply re-encode round trip failed: %v", err)
			}
			if len(shared2) != len(shared) || len(parts2) != len(parts) {
				t.Fatalf("reply round trip drifted: %d/%d then %d/%d sections/parts",
					len(shared), len(parts), len(shared2), len(parts2))
			}
			for i := range shared {
				if !bytes.Equal(shared[i], shared2[i]) {
					t.Fatalf("reply section %d drifted", i)
				}
			}
			for i := range parts {
				if refs[i] != refs2[i] || !bytes.Equal(parts[i], parts2[i]) {
					t.Fatalf("reply part %d drifted", i)
				}
			}
		}
	})
}

// FuzzAnytimePayload throws arbitrary bytes at the anytime codecs: the
// streaming reach request (flags byte) and the batch partial chunk
// (target + nested equation chunk). Whatever decodes must survive a
// re-encode round trip semantically; the rest must error, never panic.
func FuzzAnytimePayload(f *testing.F) {
	f.Add(encodeReachRequest(1, 2, false))
	f.Add(encodeReachRequest(3, 4, true))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF}) // unknown flag bits
	// A real equation chunk: evaluate a tiny fragment and wrap its partial.
	g := gen.Uniform(gen.Config{Nodes: 10, Edges: 25, Labels: []string{"A"}, Seed: 5})
	fr, err := fragment.Random(g, 2, 5)
	if err != nil {
		f.Fatal(err)
	}
	rv := core.LocalEvalReach(fr.Fragments()[0], 0, 7, nil)
	rb, err := rv.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeBatchChunk(7, rb))
	f.Add(encodeBatchChunk(7, rb)[:3]) // truncated target
	f.Add(encodeBatchChunk(7, nil))    // empty chunk body

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, tt, stream, err := decodeReachRequest(data); err == nil {
			s2, t2, stream2, err := decodeReachRequest(encodeReachRequest(s, tt, stream))
			if err != nil || s2 != s || t2 != tt || stream2 != stream {
				t.Fatalf("reach request round trip drifted: (%d,%d,%v) -> (%d,%d,%v), %v",
					s, tt, stream, s2, t2, stream2, err)
			}
		}
		if tgt, chunk, err := decodeBatchChunk(data); err == nil {
			cb, err := chunk.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of a decoded chunk failed: %v", err)
			}
			tgt2, chunk2, err := decodeBatchChunk(encodeBatchChunk(tgt, cb))
			if err != nil || tgt2 != tgt {
				t.Fatalf("batch chunk round trip drifted: target %d -> %d, %v", tgt, tgt2, err)
			}
			cb2, err := chunk2.MarshalBinary()
			if err != nil || !bytes.Equal(cb2, cb) {
				t.Fatalf("batch chunk equations drifted on round trip: %v", err)
			}
		}
	})
}

// FuzzUpdatePayload throws arbitrary bytes at the multi-op update frame
// codecs: whatever decodes must survive a re-encode round trip; the rest
// must be rejected with an error, never a panic or an implausible
// allocation.
func FuzzUpdatePayload(f *testing.F) {
	mixed, err := encodeUpdateRequest(17, 23, []Op{
		{Kind: OpInsertEdge, U: 1, V: 2},
		{Kind: OpDeleteEdge, U: 0xFFFFFF, V: 0},
		{Kind: OpInsertNode, Label: "A", Frag: -1},
		{Kind: OpInsertNode, Label: "long-label", Frag: 3},
		{Kind: OpDeleteNode, U: 7},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mixed)
	single, err := encodeUpdateRequest(0, 0, []Op{{Kind: OpDeleteEdge, U: 5, V: 6}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(single)
	bs := fragment.BalanceStats{Fragments: 3, MaxSize: 40, MinSize: 10, TotalSize: 90, Vf: 12, CrossEdges: 30}
	f.Add(encodeUpdateReply(true, []int{0, 1, 5}, []graph.NodeID{9}, bs))
	f.Add(encodeUpdateReply(false, nil, nil, fragment.BalanceStats{}))
	f.Add([]byte{updateVersion, 0xFF, 0xFF, 0xFF, 0x7F})                        // hostile op count
	f.Add([]byte{updateVersion, 1, 0xFF, 0xFF, 0xFF, 0x7F})                     // hostile dirty count
	f.Add(append(mixed[:len(mixed)-2], 0xFF))                                   // truncated op
	f.Add([]byte{'i', 1, 0, 0, 0, 2, 0, 0, 0})                                  // legacy v1 single-edge frame
	f.Add([]byte{2, 9, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 'i'})                   // legacy v2 frame
	f.Add([]byte{updateVersion, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 'n', 0xFF}) // truncated node op
	f.Fuzz(func(t *testing.T, data []byte) {
		if lsn, nonce, ops, err := decodeUpdateRequest(data); err == nil {
			re, err := encodeUpdateRequest(lsn, nonce, ops)
			if err != nil {
				t.Fatalf("re-encode of a decoded update failed: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("update request round trip drifted")
			}
		}
		if changed, dirty, ids, bs, err := decodeUpdateReply(data); err == nil {
			if !bytes.Equal(encodeUpdateReply(changed, dirty, ids, bs), data) {
				t.Fatalf("update reply round trip drifted")
			}
		}
	})
}

// FuzzSyncPayload throws arbitrary bytes at the catch-up replication
// ('S') frame codecs: the replay record list must survive a re-encode
// round trip, and the snapshot decoder — which nests the graph and
// assignment text codecs plus a fingerprint check — must reject hostile
// input with an error, never a panic or an implausible allocation.
func FuzzSyncPayload(f *testing.F) {
	rep, err := encodeSyncReplay([]oplog.Record{
		{LSN: 5, Ops: []Op{{Kind: OpInsertEdge, U: 1, V: 2}}},
		{LSN: 6, Ops: []Op{{Kind: OpInsertNode, Label: "A", Frag: -1}, {Kind: OpDeleteNode, U: 3}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rep)
	empty, err := encodeSyncReplay(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{syncHello})
	f.Add([]byte{syncFetch})
	f.Add([]byte{syncReplay, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile record count
	f.Add(rep[:len(rep)-3])                           // truncated record
	// A real snapshot seed, plus mutilations of it.
	g := gen.Uniform(gen.Config{Nodes: 12, Edges: 30, Labels: []string{"A", "B"}, Seed: 11})
	fr, err := fragment.Random(g, 2, 11)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := oplog.TakeSnapshot(fragment.NewReplicaAt(fr, 3, 9))
	if err != nil {
		f.Fatal(err)
	}
	sb, err := oplog.EncodeSnapshot(snap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte{syncSnapshot}, sb...))
	f.Add(append([]byte{syncSnapshot}, sb[:len(sb)/2]...))
	mut := append([]byte{syncSnapshot}, sb...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		switch data[0] {
		case syncReplay:
			if recs, err := decodeSyncReplay(data[1:]); err == nil {
				re, err := encodeSyncReplay(recs)
				if err != nil {
					t.Fatalf("re-encode of a decoded replay failed: %v", err)
				}
				if !bytes.Equal(re, data) {
					t.Fatalf("replay round trip drifted")
				}
			}
		case syncSnapshot:
			if snap, err := oplog.DecodeSnapshot(data[1:]); err == nil {
				// Whatever decodes (and passes the fingerprint check) must
				// re-encode to a decodable snapshot with the same identity.
				re, err := oplog.EncodeSnapshot(snap)
				if err != nil {
					t.Fatalf("re-encode of a decoded snapshot failed: %v", err)
				}
				snap2, err := oplog.DecodeSnapshot(re)
				if err != nil {
					t.Fatalf("decode of a re-encoded snapshot failed: %v", err)
				}
				if snap2.LSN != snap.LSN || snap2.Epoch != snap.Epoch || snap2.Fingerprint != snap.Fingerprint {
					t.Fatalf("snapshot identity drifted: %+v vs %+v", snap, snap2)
				}
			}
		}
	})
}

// FuzzRebalancePayload throws arbitrary bytes at the rebalance frame
// codecs with the same round-trip-or-reject property.
func FuzzRebalancePayload(f *testing.F) {
	for _, name := range []string{"edgecut", "random", "x"} {
		req, err := encodeRebalanceRequest(5, 4, 99, name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(req)
	}
	bs := fragment.BalanceStats{Fragments: 4, MaxSize: 25, MinSize: 20, TotalSize: 88, Vf: 9, CrossEdges: 14}
	f.Add(encodeRebalanceReply(6, true, 0xDEADBEEF, bs))
	f.Add(encodeRebalanceReply(0, false, 0, fragment.BalanceStats{}))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0}) // truncated request
	f.Add(bytes.Repeat([]byte{0xFF}, 22))             // hostile name length
	f.Fuzz(func(t *testing.T, data []byte) {
		if epoch, k, seed, name, err := decodeRebalanceRequest(data); err == nil {
			re, err := encodeRebalanceRequest(epoch, k, seed, name)
			if err != nil {
				t.Fatalf("re-encode of a decoded rebalance request failed: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("rebalance request round trip drifted")
			}
		}
		if epoch, applied, fp, bs, err := decodeRebalanceReply(data); err == nil {
			if !bytes.Equal(encodeRebalanceReply(epoch, applied, fp, bs), data) {
				t.Fatalf("rebalance reply round trip drifted")
			}
		}
	})
}
