// Package netsite runs the partial-evaluation algorithms over real TCP
// connections: each fragment is served by a Site (a TCP server owning one
// fragment), and a Coordinator dials all sites, posts queries, gathers the
// partial answers, and assembles them. It is the wire-level counterpart of
// the in-process simulation in internal/cluster — answers are identical,
// but here the bytes actually cross a socket, each site really is visited
// exactly once per query, and the reply sizes can be measured on the wire.
//
// The protocol is length-prefixed binary frames:
//
//	frame  := length u32 (of the rest) | kind u8 | payload
//	request kinds: 'r' qr(s,t), 'b' qbr(s,t,l), 'q' qrr(s,t,Gq)
//	response kind: 'R' partial answer (codec per query class), 'E' error
package netsite

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds.
const (
	kindReach  = 'r'
	kindDist   = 'b'
	kindRPQ    = 'q'
	kindAnswer = 'R'
	kindError  = 'E'
)

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 28

// writeFrame sends one frame and reports the bytes written.
func writeFrame(w io.Writer, kind byte, payload []byte) (int, error) {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return 5 + len(payload), nil
}

// readFrame receives one frame and reports the bytes read.
func readFrame(r io.Reader) (kind byte, payload []byte, n int, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, 0, err
	}
	size := binary.LittleEndian.Uint32(hdr)
	if size == 0 || size > maxFrame {
		return 0, nil, 0, fmt.Errorf("netsite: implausible frame size %d", size)
	}
	payload = make([]byte, size-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, err
	}
	return hdr[4], payload, 5 + int(size-1), nil
}
