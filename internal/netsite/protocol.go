// Package netsite runs the partial-evaluation algorithms over real TCP
// connections: each fragment is served by a Site (a TCP server owning one
// fragment), and a Coordinator dials all sites, posts queries, gathers the
// partial answers, and assembles them. It is the wire-level counterpart of
// the in-process simulation in internal/cluster — answers are identical,
// but here the bytes actually cross a socket, each site really is visited
// exactly once per query, and the reply sizes can be measured on the wire.
//
// The protocol is length-prefixed binary frames, multiplexed: every frame
// carries a request ID, so many queries can be in flight on one connection
// at once. Sites may answer out of order; the coordinator demultiplexes
// replies back to their queries by ID.
//
//	frame  := length u32 (of the rest) | id u32 | kind u8 | payload
//	request kinds: 'r' qr(s,t), 'b' qbr(s,t,l), 'q' qrr(s,t,Gq),
//	               'B' batch (many mixed-class queries in one payload),
//	               'U' update (a sequenced transactional batch of edge and
//	               node mutations), 'R' rebalance (re-fragment the
//	               deployment at a new epoch), 'S' sync (catch-up
//	               replication: hello / replay / snapshot / fetch),
//	               'C' cancel (abandon the in-flight request whose ID the
//	               frame echoes; no response is owed for either frame),
//	               'T' traced query (additive envelope: trace ID u64 |
//	               parent span ID u64 | inner query kind u8 | inner
//	               payload; only the query kinds 'r','b','q','B' may be
//	               wrapped — a site that predates tracing rejects the
//	               unknown kind with 'E' and the coordinator falls back
//	               to the bare query)
//	response kinds: 'R' answer: epoch u64 | lsn u64 | body (body codec per
//	               request kind; for 'B', one partial per batched query;
//	               for 'U', the changed flag, dirtied fragment IDs, new
//	               node IDs and balance stats), 'E' error,
//	               'P' partial: epoch u64 | lsn u64 | a chunk of boolean
//	               equations streamed ahead of the final answer frame,
//	               't' traced answer: epoch u64 | lsn u64 | spans | body —
//	               the site's recorded spans (queue wait, lock wait, local
//	               eval with its reachindex outcome, partial emissions)
//	               piggybacked between the state tag and the normal answer
//	               body, so tracing adds zero extra frames
//
// Anytime answers: a query or batch posted with its stream flag set (see
// encodeReachRequest and the batch request flags byte) invites the site to
// emit up to core.MaxStreamChunks 'P' frames per request while local
// evaluation runs, each carrying the equations produced since the last.
// The final 'R' frame still carries the complete partial — chunks are a
// redundant prefix, sound to re-add because disjunctive equation systems
// are idempotent — so a dropped or unsupported partial never affects the
// answer. The coordinator feeds chunks into an incremental equation system
// and, the moment they prove the query true, broadcasts 'C' frames so the
// remaining sites abandon their evaluation (cooperatively: mid-BFS
// checkpoints, and a cancelled request owes no response at all).
//
// A response frame echoes the ID of the request it answers, and every
// answer is prefixed with the epoch of the fragmentation that produced it
// plus the LSN of the last update batch it reflects: the coordinator
// rejects (and retries) a query round whose sites answered from different
// (epoch, LSN) states, so a query racing a live rebalance or update never
// combines partial answers across fragmentations or update positions — a
// persistent LSN split marks a replica that missed updates and triggers
// catch-up replication. The byte 'R' names both the rebalance request and
// the answer response; direction disambiguates (coordinators send
// requests, sites send responses).
//
// A batch frame is the wire form of the paper's per-batch visit guarantee:
// one request frame per site carries the whole batch, and one response
// frame per site carries every partial answer, so k queries cost the same
// number of frames as one.
package netsite

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds. kindRebalance shares the byte 'R' with kindAnswer: request
// and response kinds never travel in the same direction, so the site
// reads it as "rebalance" and the coordinator as "answer".
const (
	kindReach     = 'r'
	kindDist      = 'b'
	kindRPQ       = 'q'
	kindBatch     = 'B'
	kindUpdate    = 'U'
	kindRebalance = 'R'
	kindSync      = 'S'
	kindCancel    = 'C'
	kindTraced    = 'T'
	kindAnswer    = 'R'
	kindError     = 'E'
	kindPartial   = 'P'
	// kindTracedAnswer mirrors kindAnswer with the site's recorded spans
	// spliced in after the (epoch, lsn) tag: the first answerPrefix bytes
	// stay identical to an 'R' frame so state-tag parsing is uniform.
	kindTracedAnswer = 't'
)

// answerPrefix is the length of the state tag every answer frame carries:
// epoch u64 | lsn u64.
const answerPrefix = 16

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 28

// minFrame is the smallest legal length value: id u32 + kind u8, no payload.
const minFrame = 5

// writeFrame sends one frame and reports the bytes written. The frame is
// assembled into one buffer so a single Write hits the socket: concurrent
// senders serialized by a mutex then interleave whole frames, never bytes.
func writeFrame(w io.Writer, id uint32, kind byte, payload []byte) (int, error) {
	buf := make([]byte, 4+minFrame+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(minFrame+len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], id)
	buf[8] = kind
	copy(buf[9:], payload)
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// readFrame receives one frame and reports the bytes read.
func readFrame(r io.Reader) (id uint32, kind byte, payload []byte, n int, err error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, 0, err
	}
	size := binary.LittleEndian.Uint32(hdr)
	if size < minFrame || size > maxFrame {
		return 0, 0, nil, 0, fmt.Errorf("netsite: implausible frame size %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, 0, err
	}
	return binary.LittleEndian.Uint32(body), body[4], body[5:], 4 + int(size), nil
}
