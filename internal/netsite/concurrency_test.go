package netsite

import (
	"sync"
	"testing"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// wireQuery is one query of any of the three classes, with the simulation
// oracle's answer attached.
type wireQuery struct {
	class byte // kindReach, kindDist, kindRPQ
	s, t  graph.NodeID
	l     int
	a     *automaton.Automaton
	want  bool
}

// mixedWorkload builds n queries cycling through qr/qbr/qrr and answers
// each with the in-process cluster simulation, so the wire runtime can be
// cross-checked query by query.
func mixedWorkload(t *testing.T, g *graph.Graph, fr *fragment.Fragmentation, labels []string, n int, seed uint64) []wireQuery {
	t.Helper()
	cl := cluster.New(fr.Card(), cluster.NetModel{})
	rng := gen.NewRNG(seed)
	nn := g.NumNodes()
	qs := make([]wireQuery, 0, n)
	for len(qs) < n {
		s := graph.NodeID(rng.Intn(nn))
		tt := graph.NodeID(rng.Intn(nn))
		if s == tt {
			continue // s==t short-circuits before the wire; keep traffic real
		}
		q := wireQuery{s: s, t: tt}
		switch len(qs) % 3 {
		case 0:
			q.class = kindReach
			q.want = core.DisReach(cl, fr, s, tt, nil).Answer
		case 1:
			q.class = kindDist
			q.l = 1 + rng.Intn(8)
			q.want = core.DisDist(cl, fr, s, tt, q.l, nil).Answer
		case 2:
			q.class = kindRPQ
			q.a = automaton.Random(rng, 2+rng.Intn(2), 3+rng.Intn(4), labels)
			q.want = core.DisRPQ(cl, fr, s, tt, q.a, nil).Answer
		}
		qs = append(qs, q)
	}
	return qs
}

// run evaluates one query over the wire and checks it against the oracle.
func (q wireQuery) run(t *testing.T, co *Coordinator) {
	var got bool
	var err error
	switch q.class {
	case kindReach:
		got, _, err = co.Reach(q.s, q.t)
	case kindDist:
		got, _, _, err = co.ReachWithin(q.s, q.t, q.l)
	case kindRPQ:
		got, _, err = co.ReachRegex(q.s, q.t, q.a)
	}
	if err != nil {
		t.Error(err)
		return
	}
	if got != q.want {
		t.Errorf("class %q s=%d t=%d: wire=%v sim=%v", q.class, q.s, q.t, got, q.want)
	}
}

// TestConcurrentThroughputSpeedup is the acceptance check for multiplexed
// serving: with a deterministic 10ms per-request service time at each site
// (emulating remote machines — on loopback all sites time-share this host's
// cores, so raw compute cannot parallelize), 8 concurrent in-flight
// queries must push at least 4x the throughput of the serialized baseline
// on the same deployment — and every answer, for all three query classes,
// must match the in-process cluster simulation.
func TestConcurrentThroughputSpeedup(t *testing.T) {
	labels := []string{"A", "B", "C"}
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 480, Labels: labels, Seed: 51})
	fr, err := fragment.Random(g, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentationOpts(fr, SiteOptions{Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	const nq = 48
	qs := mixedWorkload(t, g, fr, labels, nq, 52)

	// Serialized baseline: one query at a time, the pre-multiplexing mode.
	start := time.Now()
	for _, q := range qs {
		q.run(t, co)
	}
	serial := time.Since(start)

	// 8 closed-loop clients sharing the same coordinator and connections.
	const clients = 8
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nq; i += clients {
				qs[i].run(t, co)
			}
		}(w)
	}
	wg.Wait()
	concurrent := time.Since(start)
	if t.Failed() {
		return
	}

	speedup := float64(serial) / float64(concurrent)
	t.Logf("serial %v, concurrent(%d) %v — %.1fx", serial, clients, concurrent, speedup)
	if speedup < 4 {
		t.Fatalf("throughput speedup %.2fx < 4x (serial %v, concurrent %v)", speedup, serial, concurrent)
	}
}

// TestSiteDropMidFlightFailsQueries kills a site while 8 queries are in
// flight on its connection: every query must come back with an error —
// promptly, not by hanging the demultiplexer.
func TestSiteDropMidFlightFailsQueries(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 240, Seed: 53})
	fr, err := fragment.Random(g, 2, 53)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentationOpts(fr, SiteOptions{Delay: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	const inflight = 8
	errc := make(chan error, inflight)
	rng := gen.NewRNG(54)
	for i := 0; i < inflight; i++ {
		s := graph.NodeID(rng.Intn(60))
		tt := graph.NodeID((int(s) + 1 + rng.Intn(59)) % 60) // s != t
		go func(s, tt graph.NodeID) {
			_, _, err := co.Reach(s, tt)
			errc <- err
		}(s, tt)
	}
	time.Sleep(50 * time.Millisecond) // let the frames reach the site
	sites[1].Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errc:
			if err == nil {
				t.Fatal("query served by a dropped site must fail, not answer")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight query hung after its site dropped the connection")
		}
	}
	// The surviving connection keeps multiplexing for a fresh coordinator.
	co2, err := Dial(addrs[:1], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
}

// benchDeploy stands up a loopback deployment for benchmarking.
func benchDeploy(b *testing.B) (*Coordinator, []graph.NodeID, func()) {
	b.Helper()
	g := gen.PowerLaw(gen.Config{Nodes: 1000, Edges: 4000, Seed: 55})
	fr, err := fragment.Random(g, 4, 55)
	if err != nil {
		b.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		b.Fatal(err)
	}
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	rng := gen.NewRNG(56)
	pairs := make([]graph.NodeID, 256)
	for i := range pairs {
		pairs[i] = graph.NodeID(rng.Intn(1000))
	}
	return co, pairs, func() {
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// BenchmarkWireReachSerial measures one-at-a-time wire queries: the
// serialized baseline.
func BenchmarkWireReachSerial(b *testing.B) {
	co, pairs, done := benchDeploy(b)
	defer done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := pairs[(2*i)%len(pairs)]
		t := pairs[(2*i+1)%len(pairs)]
		if s == t {
			t = (t + 1) % 1000
		}
		if _, _, err := co.Reach(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireReachConcurrent measures multiplexed wire queries: 8
// closed-loop clients sharing one coordinator's connections.
func BenchmarkWireReachConcurrent(b *testing.B) {
	co, pairs, done := benchDeploy(b)
	defer done()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s := pairs[(2*i)%len(pairs)]
			t := pairs[(2*i+1)%len(pairs)]
			if s == t {
				t = (t + 1) % 1000
			}
			if _, _, err := co.Reach(s, t); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
