package netsite

import (
	"testing"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/baseline"
	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestBatchWireCrossCheck is the randomized cross-check of the wire batch
// path: ~50 random fragmented graphs of varying shape, each hit with a
// mixed Reach/ReachWithin/ReachRegex batch over real TCP. Every answer
// must be identical to (a) the naive single-query baselines of
// internal/baseline — which ship whole fragments and solve centrally, a
// maximally different code path — and (b) for the reach queries, to
// core.DisReachBatch, the in-process one-visit-per-batch algorithm the
// wire protocol mirrors. The frames-per-site bound is asserted on every
// trial along the way.
func TestBatchWireCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(71)
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(110)
		e := n + rng.Intn(4*n)
		seed := uint64(1000 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(8), 0.3, labels, seed)
		}
		nn := g.NumNodes()
		k := 1 + rng.Intn(5)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		sites, addrs, err := ServeFragmentation(fr)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Dial(addrs, 2*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			t.Fatal(err)
		}
		// Full rounds: this test pins the classic per-batch frame guarantee
		// (anytime early termination may retire an all-reach batch with
		// fewer finals; TestAnytimeCrossCheck covers that protocol).
		co.SetAnytime(false)

		m := 1 + rng.Intn(16)
		qs := make([]BatchQuery, 0, m)
		var reachQs []core.Query // the reach subset, for DisReachBatch
		var reachIdx []int
		anyWire := false
		for i := 0; i < m; i++ {
			q := BatchQuery{
				S: graph.NodeID(rng.Intn(nn)),
				T: graph.NodeID(rng.Intn(nn)),
			}
			switch i % 3 {
			case 0:
				q.Class = ClassReach
				reachQs = append(reachQs, core.Query{S: q.S, T: q.T})
				reachIdx = append(reachIdx, i)
				anyWire = anyWire || q.S != q.T
			case 1:
				q.Class = ClassDist
				q.L = rng.Intn(9)
				anyWire = anyWire || (q.S != q.T && q.L > 0)
			case 2:
				q.Class = ClassRPQ
				q.A = automaton.Random(rng, 2+rng.Intn(3), 3+rng.Intn(6), labels)
				anyWire = anyWire || q.S != q.T || !q.A.AcceptsLabels(nil)
			}
			qs = append(qs, q)
		}

		answers, st, err := co.Batch(qs)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d m=%d): %v", trial, nn, k, m, err)
		}
		wantFrames := int64(0)
		if anyWire {
			wantFrames = int64(k)
		}
		if st.FramesSent != wantFrames || st.FramesReceived != wantFrames {
			t.Fatalf("trial %d: %d/%d frames for %d queries over %d sites, want %d",
				trial, st.FramesSent, st.FramesReceived, m, k, wantFrames)
		}

		// (a) Per-query naive baselines: fragments shipped whole, solved
		// centrally — no shared code with the batch path past the graph.
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		for i, q := range qs {
			var want bool
			switch q.Class {
			case ClassReach:
				want = baseline.DisReachN(cl, fr, q.S, q.T).Answer
			case ClassDist:
				res := baseline.DisDistN(cl, fr, q.S, q.T, q.L)
				want = res.Answer
				// The baseline's BFS knows the exact distance even beyond
				// the bound; the wire path prunes at l, so its distance is
				// exact only within the bound and > l otherwise.
				if res.Answer && answers[i].Dist != res.Distance {
					t.Fatalf("trial %d query %d: qbr(%d,%d,%d) wire dist %d, baseline %d",
						trial, i, q.S, q.T, q.L, answers[i].Dist, res.Distance)
				}
				if !res.Answer && answers[i].Dist <= int64(q.L) {
					t.Fatalf("trial %d query %d: qbr(%d,%d,%d) unreachable within bound but wire dist %d",
						trial, i, q.S, q.T, q.L, answers[i].Dist)
				}
			case ClassRPQ:
				want = baseline.DisRPQN(cl, fr, q.S, q.T, q.A).Answer
			}
			if answers[i].Answer != want {
				t.Fatalf("trial %d query %d: class %q (%d->%d) wire=%v baseline=%v",
					trial, i, byte(q.Class), q.S, q.T, answers[i].Answer, want)
			}
		}

		// (b) The reach subset against the in-process batch algorithm.
		if len(reachQs) > 0 {
			res := core.DisReachBatch(cl, fr, reachQs)
			for j, i := range reachIdx {
				if answers[i].Answer != res.Answers[j] {
					t.Fatalf("trial %d query %d: qr(%d,%d) wire=%v DisReachBatch=%v",
						trial, i, qs[i].S, qs[i].T, answers[i].Answer, res.Answers[j])
				}
			}
		}

		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}
