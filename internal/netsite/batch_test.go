package netsite

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// batchWorkload builds n mixed-class batch queries with oracle answers
// computed on the unfragmented graph.
func batchWorkload(g *graph.Graph, labels []string, n int, seed uint64) ([]BatchQuery, []bool) {
	rng := gen.NewRNG(seed)
	nn := g.NumNodes()
	qs := make([]BatchQuery, 0, n)
	want := make([]bool, 0, n)
	for len(qs) < n {
		s := graph.NodeID(rng.Intn(nn))
		t := graph.NodeID(rng.Intn(nn))
		q := BatchQuery{S: s, T: t}
		switch len(qs) % 3 {
		case 0:
			q.Class = ClassReach
			want = append(want, g.Reachable(s, t))
		case 1:
			q.Class = ClassDist
			q.L = 1 + rng.Intn(8)
			d := g.Dist(s, t)
			want = append(want, d >= 0 && d <= q.L)
		case 2:
			q.Class = ClassRPQ
			q.A = automaton.Random(rng, 2+rng.Intn(2), 3+rng.Intn(5), labels)
			want = append(want, automaton.Eval(g, s, t, q.A))
		}
		qs = append(qs, q)
	}
	return qs, want
}

// TestBatchOneFramePerSite is the acceptance check for wire batching: a
// batch of k mixed-class queries over n sites costs exactly n request
// frames and n response frames — independent of k. Answers must match the
// centralized oracle for every query.
func TestBatchOneFramePerSite(t *testing.T) {
	labels := []string{"A", "B", "C"}
	g := gen.PowerLaw(gen.Config{Nodes: 200, Edges: 800, Labels: labels, Seed: 81})
	const nSites = 4
	co, done := deploy(t, g, nSites, 81)
	defer done()
	for _, k := range []int{1, 5, 17, 48} {
		qs, want := batchWorkload(g, labels, k, 82+uint64(k))
		answers, st, err := co.Batch(qs)
		if err != nil {
			t.Fatal(err)
		}
		if st.FramesSent != nSites || st.FramesReceived != nSites {
			t.Fatalf("batch of %d: %d frames sent, %d received; want %d each (one per site)",
				k, st.FramesSent, st.FramesReceived, nSites)
		}
		if st.BytesSent == 0 || st.BytesReceived == 0 {
			t.Fatalf("batch of %d: no wire traffic recorded: %+v", k, st)
		}
		for i, a := range answers {
			if a.Answer != want[i] {
				t.Fatalf("batch of %d, query %d (class %q %d->%d): wire=%v oracle=%v",
					k, i, byte(qs[i].Class), qs[i].S, qs[i].T, a.Answer, want[i])
			}
		}
	}

	// Reply deduplication: reach queries sharing a target reference one
	// shared in-node-equation section instead of repeating it, so the
	// reply for k same-target queries must grow far slower than k times
	// the single-query reply.
	const fan = 32
	single, st1, err := co.Batch([]BatchQuery{{Class: ClassReach, S: 0, T: 199}})
	if err != nil {
		t.Fatal(err)
	}
	many := make([]BatchQuery, fan)
	for i := range many {
		many[i] = BatchQuery{Class: ClassReach, S: graph.NodeID(i), T: 199}
	}
	answers, stn, err := co.Batch(many)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range answers {
		if want := g.Reachable(graph.NodeID(i), 199); a.Answer != want {
			t.Fatalf("dedup batch query %d: wire=%v oracle=%v", i, a.Answer, want)
		}
	}
	if single[0].Answer != answers[0].Answer {
		t.Fatal("single and fanned batch disagree on qr(0,199)")
	}
	if stn.BytesReceived >= fan*st1.BytesReceived/2 {
		t.Fatalf("deduplicated reply did not shrink: %d queries cost %dB, single costs %dB (want < %d)",
			fan, stn.BytesReceived, st1.BytesReceived, fan*st1.BytesReceived/2)
	}
}

// TestBatchMatchesSingleQueryAPI runs the same queries through Batch and
// through the single-query methods: answers and distances must agree.
func TestBatchMatchesSingleQueryAPI(t *testing.T) {
	labels := []string{"A", "B"}
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 500, Labels: labels, Seed: 83})
	co, done := deploy(t, g, 3, 83)
	defer done()
	qs, _ := batchWorkload(g, labels, 24, 84)
	answers, _, err := co.Batch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		switch q.Class {
		case ClassReach:
			single, _, err := co.Reach(q.S, q.T)
			if err != nil {
				t.Fatal(err)
			}
			if answers[i].Answer != single {
				t.Fatalf("query %d: batch=%v single=%v", i, answers[i].Answer, single)
			}
		case ClassDist:
			single, dist, _, err := co.ReachWithin(q.S, q.T, q.L)
			if err != nil {
				t.Fatal(err)
			}
			if answers[i].Answer != single || answers[i].Dist != dist {
				t.Fatalf("query %d: batch=(%v,%d) single=(%v,%d)",
					i, answers[i].Answer, answers[i].Dist, single, dist)
			}
		case ClassRPQ:
			single, _, err := co.ReachRegex(q.S, q.T, q.A)
			if err != nil {
				t.Fatal(err)
			}
			if answers[i].Answer != single {
				t.Fatalf("query %d: batch=%v single=%v", i, answers[i].Answer, single)
			}
		}
	}
}

// TestBatchShortCircuits checks the local fast paths: s==t and degenerate
// bounds answer without any frames, and an all-local batch sends nothing.
func TestBatchShortCircuits(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 160, Labels: []string{"A"}, Seed: 85})
	co, done := deploy(t, g, 2, 85)
	defer done()
	qs := []BatchQuery{
		{Class: ClassReach, S: 7, T: 7},
		{Class: ClassDist, S: 3, T: 3, L: 5},
		{Class: ClassDist, S: 1, T: 2, L: 0},
	}
	answers, st, err := co.Batch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesSent != 0 || st.BytesSent != 0 {
		t.Fatalf("all-local batch touched the wire: %+v", st)
	}
	if !answers[0].Answer || !answers[1].Answer || answers[1].Dist != 0 {
		t.Fatalf("s==t short circuits wrong: %+v", answers[:2])
	}
	if answers[2].Answer || answers[2].Dist != bes.Inf {
		t.Fatalf("l<=0 short circuit wrong: %+v", answers[2])
	}
	// A mix of local and wire queries still costs one frame per site.
	qs = append(qs, BatchQuery{Class: ClassReach, S: 0, T: 39})
	if _, st, err = co.Batch(qs); err != nil {
		t.Fatal(err)
	}
	if st.FramesSent != 2 {
		t.Fatalf("mixed batch sent %d frames, want 2 (one per site)", st.FramesSent)
	}
	// Empty batches are legal and free.
	if answers, st, err = co.Batch(nil); err != nil || len(answers) != 0 || st.FramesSent != 0 {
		t.Fatalf("empty batch: answers=%v st=%+v err=%v", answers, st, err)
	}
}

// TestBatchCodecRejectsHostilePayloads exercises the decoder guards the
// fuzzers also probe: corrupt counts, truncations, and trailing bytes must
// come back as errors, never panics or giant allocations.
func TestBatchCodecRejectsHostilePayloads(t *testing.T) {
	valid, err := encodeBatchRequest([]BatchQuery{{Class: ClassReach, S: 1, T: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string][]byte{
		"empty":           {},
		"bad version":     {9, 0, 1, 0, 0, 0},
		"unknown flags":   {batchVersion, 0xF0, 1, 0, 0, 0},
		"huge count":      {batchVersion, 0, 0xFF, 0xFF, 0xFF, 0xFF},
		"truncated query": valid[:len(valid)-2],
		"trailing bytes":  append(append([]byte{}, valid...), 0xAA),
		"unknown class":   {batchVersion, 0, 1, 0, 0, 0, 'z', 0, 0, 0, 0, 0, 0, 0, 0},
	} {
		if _, _, err := decodeBatchRequest(p); err == nil {
			t.Errorf("decodeBatchRequest accepted %s payload", name)
		}
	}
	reply := encodeBatchReply([][]byte{{9, 9}}, []uint32{1, 0}, [][]byte{{1, 2, 3}, nil})
	for name, p := range map[string][]byte{
		"bad version":        {7, 0, 0, 0, 0},
		"huge section count": {batchVersion, 0xFF, 0xFF, 0xFF, 0x7F},
		"huge query count":   append([]byte{batchVersion, 0, 0, 0, 0}, 0xFF, 0xFF, 0xFF, 0x7F),
		"dangling sref":      encodeBatchReply(nil, []uint32{3}, [][]byte{{1}}),
		"truncated part":     reply[:len(reply)-1],
		"trailing bytes":     append(append([]byte{}, reply...), 1),
	} {
		if _, _, _, err := decodeBatchReply(p); err == nil {
			t.Errorf("decodeBatchReply accepted %s payload", name)
		}
	}
	// Round trips survive intact, including empty batches and empty parts.
	qs := []BatchQuery{{Class: ClassDist, S: 5, T: 9, L: 3}, {Class: ClassReach, S: 0, T: 1}}
	enc, err := encodeBatchRequest(qs, batchFlagStream)
	if err != nil {
		t.Fatal(err)
	}
	dec, flags, err := decodeBatchRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if flags != batchFlagStream {
		t.Fatalf("request round trip flags: %#x", flags)
	}
	if len(dec) != 2 || dec[0] != qs[0] || dec[1] != qs[1] {
		t.Fatalf("request round trip: %+v", dec)
	}
	shared, refs, parts, err := decodeBatchReply(encodeBatchReply([][]byte{{5}}, []uint32{0, 1}, [][]byte{nil, {7}}))
	if err != nil || len(shared) != 1 || len(parts) != 2 || refs[0] != 0 || refs[1] != 1 ||
		len(parts[0]) != 0 || len(parts[1]) != 1 {
		t.Fatalf("reply round trip: %v %v %v %v", shared, refs, parts, err)
	}
}

// countGoroutines polls until the count settles at or below want, tolerating
// runtime bookkeeping goroutines that exit asynchronously.
func countGoroutines(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestBatchLifecycleNoLeak drives concurrent batches while a site drops
// and while the coordinator closes: every pending batch must fail promptly
// and no goroutine may leak once everything is shut down.
func TestBatchLifecycleNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 240, Labels: []string{"A"}, Seed: 87})
	fr, err := fragment.Random(g, 3, 87)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentationOpts(fr, SiteOptions{Delay: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	mkBatch := func(seed uint64) []BatchQuery {
		qs, _ := batchWorkload(g, []string{"A"}, 6, seed)
		return qs
	}

	// Phase 1: batches in flight while a site drops — all must error.
	const inflight = 5
	errc := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(seed uint64) {
			_, _, err := co.Batch(mkBatch(seed))
			errc <- err
		}(uint64(90 + i))
	}
	time.Sleep(50 * time.Millisecond) // let the frames reach the sites
	sites[2].Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errc:
			if err == nil {
				t.Fatal("batch served by a dropped site must fail, not answer")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight batch hung after its site dropped")
		}
	}

	// Phase 2: fresh coordinator on the survivors, batches in flight while
	// Close is called — all must error promptly, none may hang.
	co2, err := Dial(addrs[:2], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc2 := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			_, _, err := co2.Batch(mkBatch(seed))
			errc2 <- err
		}(uint64(110 + i))
	}
	time.Sleep(50 * time.Millisecond)
	co2.Close()
	wg.Wait()
	close(errc2)
	for err := range errc2 {
		if err == nil {
			t.Fatal("batch in flight across Coordinator.Close must fail")
		}
	}

	// Teardown: everything closed, goroutine count back to the baseline.
	co.Close()
	for _, s := range sites {
		s.Close()
	}
	if n := countGoroutines(t, before); n > before {
		t.Fatalf("goroutine leak: %d before, %d after shutdown", before, n)
	}
}
