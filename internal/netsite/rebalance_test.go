package netsite

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

func deployFr(t *testing.T, fr *fragment.Fragmentation) (*Coordinator, func()) {
	t.Helper()
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		for _, s := range sites {
			s.Close()
		}
		t.Fatal(err)
	}
	return co, func() {
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// TestRebalanceBasics: a rebalance round advances the epoch exactly once
// however many sites share the replica, is idempotent on re-delivery,
// reports coherent balance stats, and answers afterwards still match the
// BFS oracle.
func TestRebalanceBasics(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 320, Labels: []string{"A", "B"}, Seed: 71})
	fr, err := fragment.Random(g, 4, 71)
	if err != nil {
		t.Fatal(err)
	}
	co, cleanup := deployFr(t, fr)
	defer cleanup()

	res, st, err := co.Rebalance(1, "edgecut", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied || res.Epoch != 1 {
		t.Fatalf("rebalance: applied=%v epoch=%d, want true/1", res.Applied, res.Epoch)
	}
	if st.Epoch != 1 {
		t.Fatalf("wire stats epoch = %d, want 1", st.Epoch)
	}
	if res.Stats.Fragments != 4 || res.Stats.TotalSize == 0 {
		t.Fatalf("implausible balance stats: %+v", res.Stats)
	}
	// Re-delivery of the same epoch is a no-op.
	res2, _, err := co.Rebalance(1, "edgecut", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied || res2.Epoch != 1 {
		t.Fatalf("duplicate rebalance: applied=%v epoch=%d, want false/1", res2.Applied, res2.Epoch)
	}
	// Queries answer from the new epoch and stay correct.
	for q := 0; q < 40; q++ {
		s, tt := graph.NodeID(q%80), graph.NodeID((q*13)%80)
		got, st, err := co.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Reachable(s, tt); got != want {
			t.Fatalf("qr(%d,%d) after rebalance = %v, oracle %v", s, tt, got, want)
		}
		if s != tt && st.Epoch != 1 {
			t.Fatalf("query answered from epoch %d, want 1", st.Epoch)
		}
	}
	// Updates still apply on the new fragmentation.
	ur, _, err := co.Update(UpdateInsert, 0, 79)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 {
		t.Fatalf("update applied at epoch %d, want 1", ur.Epoch)
	}
}

// TestRebalanceEpochRace floods the deployment with queries from many
// goroutines while the coordinator rebalances repeatedly. The graph never
// changes, so every answer must equal the precomputed oracle — a query
// combining partial answers across two fragmentations would get Boolean
// equations over mismatched boundary sets and wrong answers — and no
// query may fail: the epoch switch is zero-downtime by assertion.
func TestRebalanceEpochRace(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 150, Edges: 600, Labels: []string{"A", "B"}, Seed: 73})
	fr, err := fragment.Random(g, 3, 73)
	if err != nil {
		t.Fatal(err)
	}
	co, cleanup := deployFr(t, fr)
	defer cleanup()

	type qa struct {
		s, t graph.NodeID
		want bool
	}
	rng := gen.NewRNG(74)
	oracle := make([]qa, 256)
	for i := range oracle {
		s, tt := graph.NodeID(rng.Intn(150)), graph.NodeID(rng.Intn(150))
		oracle[i] = qa{s, tt, g.Reachable(s, tt)}
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := gen.NewRNG(uint64(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := oracle[rng.Intn(len(oracle))]
				got, _, err := co.Reach(q.s, q.t)
				if err != nil {
					errc <- fmt.Errorf("qr(%d,%d) failed during rebalance: %w", q.s, q.t, err)
					return
				}
				if got != q.want {
					errc <- fmt.Errorf("qr(%d,%d) = %v during rebalance, oracle %v (mixed-epoch partials?)", q.s, q.t, got, q.want)
					return
				}
			}
		}(300 + w)
	}
	// Alternate partitioners so every switch really changes the node
	// assignment under the in-flight queries.
	parts := []string{"edgecut", "random", "greedy", "hash", "contiguous"}
	for epoch := uint64(1); epoch <= 8; epoch++ {
		res, _, err := co.Rebalance(epoch, parts[int(epoch)%len(parts)], 100+epoch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != epoch {
			t.Fatalf("rebalance %d landed at epoch %d", epoch, res.Epoch)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// skewChurn drives a skewed mutation stream into the deployment: edges
// concentrated inside the first block plus new nodes that attach to
// block-0 nodes (placed least-loaded, i.e. elsewhere — every attachment
// becomes a cross edge). It returns the last update's balance stats.
func skewChurn(t *testing.T, co *Coordinator, blockSize, rounds int, seed uint64) fragment.BalanceStats {
	t.Helper()
	rng := gen.NewRNG(seed)
	var last fragment.BalanceStats
	for i := 0; i < rounds; i++ {
		inBlock := func() graph.NodeID { return graph.NodeID(rng.Intn(blockSize)) }
		ops := []Op{
			{Kind: OpInsertEdge, U: inBlock(), V: inBlock()},
			{Kind: OpInsertNode, Label: "A", Frag: -1},
		}
		res, _, err := co.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.NewIDs) != 1 {
			t.Fatalf("churn round %d: %d new IDs, want 1", i, len(res.NewIDs))
		}
		// Attach the new node to the hot block: a cross edge unless the
		// partitioner happened to place it on fragment 0.
		if _, _, err := co.Apply([]Op{
			{Kind: OpInsertEdge, U: inBlock(), V: res.NewIDs[0]},
			{Kind: OpInsertEdge, U: res.NewIDs[0], V: inBlock()},
		}); err != nil {
			t.Fatal(err)
		}
		r, _, err := co.Apply([]Op{{Kind: OpInsertEdge, U: inBlock(), V: inBlock()}})
		if err != nil {
			t.Fatal(err)
		}
		last = r.Stats
	}
	return last
}

// TestRebalanceRestoresBalance is the acceptance check for the ISSUE's
// tentpole: sustained skewed churn (hot-block edges plus node inserts)
// degrades |Fm| and |Vf|; a rebalance with the balance-aware edge-cut
// partitioner must bring both back to within 1.5x of a fresh build over
// the same mutated graph, with zero failed queries along the way.
func TestRebalanceRestoresBalance(t *testing.T) {
	const blocks, size = 6, 60
	g := gen.Communities(gen.CommunitiesConfig{Communities: blocks, Size: size, InDegree: 4, Seed: 77})
	fr, err := fragment.Contiguous(g, blocks)
	if err != nil {
		t.Fatal(err)
	}
	co, cleanup := deployFr(t, fr)
	defer cleanup()

	fresh0 := fr.BalanceStats()
	churned := skewChurn(t, co, size, 60, 78)
	if churned.MaxSize <= fresh0.MaxSize {
		t.Fatalf("skewed churn did not bloat the hot fragment: %d -> %d", fresh0.MaxSize, churned.MaxSize)
	}
	if churned.Skew() <= fresh0.Skew() {
		t.Fatalf("skewed churn did not raise skew: %.2f -> %.2f", fresh0.Skew(), churned.Skew())
	}

	res, _, err := co.Rebalance(1, "edgecut", 79)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal("rebalance did not apply")
	}

	// Reference: a from-scratch edge-cut build over the same mutated graph
	// (different seed, so this is a genuinely independent fragmentation).
	p := fragment.EdgeCutPartitioner{Seed: 911}
	ref, err := fragment.Partition(g, p, blocks)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.BalanceStats()
	if limit := refStats.MaxSize * 3 / 2; res.Stats.MaxSize > limit {
		t.Fatalf("post-rebalance |Fm| = %d exceeds 1.5x fresh build's %d", res.Stats.MaxSize, refStats.MaxSize)
	}
	if limit := refStats.Vf * 3 / 2; res.Stats.Vf > limit {
		t.Fatalf("post-rebalance |Vf| = %d exceeds 1.5x fresh build's %d", res.Stats.Vf, refStats.Vf)
	}
	if res.Stats.MaxSize >= churned.MaxSize {
		t.Fatalf("rebalance did not shrink |Fm|: %d -> %d", churned.MaxSize, res.Stats.MaxSize)
	}

	// The deployment still answers correctly after the whole episode.
	rng := gen.NewRNG(80)
	n := g.NumNodes()
	for q := 0; q < 30; q++ {
		s, tt := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if g.Deleted(s) || g.Deleted(tt) {
			continue
		}
		got, _, err := co.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Reachable(s, tt); got != want {
			t.Fatalf("qr(%d,%d) after rebalance = %v, oracle %v", s, tt, got, want)
		}
	}
}
