package netsite

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// defaultWorkers bounds the per-connection worker pool when SiteOptions
// leaves Workers zero: enough to keep a multiplexing coordinator busy
// without letting one connection monopolize the site.
const defaultWorkers = 8

// SiteOptions tunes a Site at construction time.
type SiteOptions struct {
	// Workers bounds the per-connection worker pool: how many frames from
	// one coordinator connection evaluate concurrently. 0 means the
	// default (8).
	Workers int
	// Delay adds an artificial pause before each local evaluation. It
	// emulates slower sites (WAN deployments, loaded machines) and gives
	// tests a deterministic per-query service time; 0 disables it.
	Delay time.Duration
}

// Site serves one fragment over TCP. Create with NewSiteFor (or NewSite
// for a bare fragment without update support), then Addr gives the dial
// address for the coordinator; Close shuts the listener down. Frames
// arriving on one connection are evaluated concurrently by a bounded
// worker pool, so a coordinator multiplexing many queries over the
// connection is served in parallel, not one frame at a time.
//
// A site built with NewSiteFor holds a replica of the whole fragmentation
// and accepts update frames: queries evaluate under the fragmentation's
// read lock and updates apply exclusively, so a mutation never tears a
// fragment mid-evaluation. In-process sites created by ServeFragmentation
// share one fragmentation, which makes the broadcast update idempotent
// across them (the first frame applies it, the rest observe a no-op).
type Site struct {
	frag    *fragment.Fragment
	frtn    *fragment.Fragmentation // nil: bare fragment, updates rejected
	ln      net.Listener
	workers int
	delay   time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Logf, if set, receives connection-level errors (default: dropped).
	// Set it before the first coordinator connects.
	Logf func(format string, args ...any)
}

// NewSite starts serving f on addr ("127.0.0.1:0" picks a free port) with
// default options. The site has no fragmentation replica, so it rejects
// update frames; prefer NewSiteFor for live deployments.
func NewSite(addr string, f *fragment.Fragment) (*Site, error) {
	return NewSiteOpts(addr, f, SiteOptions{})
}

// NewSiteOpts starts serving f on addr with explicit options and no update
// support (see NewSite).
func NewSiteOpts(addr string, f *fragment.Fragment, o SiteOptions) (*Site, error) {
	return newSite(addr, f, nil, o)
}

// NewSiteFor starts serving fragment fragID of fr on addr. The site keeps
// fr as its replica of the deployment, which enables edge-update frames.
func NewSiteFor(addr string, fr *fragment.Fragmentation, fragID int, o SiteOptions) (*Site, error) {
	if fragID < 0 || fragID >= fr.Card() {
		return nil, fmt.Errorf("netsite: fragment %d out of range [0,%d)", fragID, fr.Card())
	}
	return newSite(addr, fr.Fragments()[fragID], fr, o)
}

func newSite(addr string, f *fragment.Fragment, fr *fragment.Fragmentation, o SiteOptions) (*Site, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsite: %w", err)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	s := &Site{
		frag:    f,
		frtn:    fr,
		ln:      ln,
		workers: workers,
		delay:   o.Delay,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the address the site listens on.
func (s *Site) Addr() string { return s.ln.Addr().String() }

// Close stops the site and its connections.
func (s *Site) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Site) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Site) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			if err := s.serveConn(conn); err != nil {
				s.logf("netsite: connection ended: %v", err)
			}
		}()
	}
}

// frameJob is one request frame awaiting evaluation.
type frameJob struct {
	id      uint32
	kind    byte
	payload []byte
}

// serveConn handles one coordinator connection: a reader feeds request
// frames to a bounded pool of workers, each answering with a response
// frame that echoes the request ID. Responses go out in completion order;
// the coordinator's demultiplexer reorders by ID.
func (s *Site) serveConn(conn net.Conn) error {
	jobs := make(chan frameJob)
	var (
		wmu    sync.Mutex  // serializes whole response frames
		broken atomic.Bool // a response write failed; drain without writing
		wg     sync.WaitGroup
	)
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if broken.Load() {
					continue // connection died; don't evaluate dead work
				}
				resp, err := s.handle(j.kind, j.payload)
				kind := byte(kindAnswer)
				if err != nil {
					kind, resp = kindError, []byte(err.Error())
				}
				wmu.Lock()
				_, werr := writeFrame(conn, j.id, kind, resp)
				wmu.Unlock()
				if werr != nil {
					// Poison the connection: the reader unblocks with an
					// error, and remaining jobs drain without writing.
					broken.Store(true)
					conn.Close()
				}
			}
		}()
	}
	var err error
	for {
		id, kind, payload, _, rerr := readFrame(conn)
		if rerr != nil {
			err = rerr // includes clean EOF on coordinator close
			break
		}
		jobs <- frameJob{id: id, kind: kind, payload: payload}
	}
	close(jobs)
	wg.Wait()
	return err
}

func (s *Site) handle(kind byte, payload []byte) ([]byte, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if kind == kindUpdate {
		return s.handleUpdate(payload)
	}
	// Queries read the fragment under the fragmentation's read lock so a
	// concurrent update never mutates it mid-evaluation. Bare-fragment
	// sites have no update path, hence nothing to lock against.
	if s.frtn != nil {
		s.frtn.RLock()
		defer s.frtn.RUnlock()
	}
	switch kind {
	case kindReach:
		if len(payload) < 8 {
			return nil, fmt.Errorf("short qr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		rv := core.LocalEvalReach(s.frag, src, dst)
		return rv.MarshalBinary()
	case kindDist:
		if len(payload) < 12 {
			return nil, fmt.Errorf("short qbr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		l := int(binary.LittleEndian.Uint32(payload[8:]))
		rv := core.LocalEvalDist(s.frag, src, dst, l)
		return rv.MarshalBinary()
	case kindRPQ:
		if len(payload) < 8 {
			return nil, fmt.Errorf("short qrr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		var a automaton.Automaton
		if err := a.UnmarshalBinary(payload[8:]); err != nil {
			return nil, err
		}
		rv := core.LocalEvalRPQ(s.frag, src, dst, &a)
		return rv.MarshalBinary()
	case kindBatch:
		return s.handleBatch(payload)
	default:
		return nil, fmt.Errorf("unknown request kind %q", kind)
	}
}

// handleUpdate applies one edge update to the site's fragmentation replica
// and reports what changed from its point of view. The mutation locks out
// query evaluation internally (writers exclude the read lock handle takes
// for queries).
func (s *Site) handleUpdate(payload []byte) ([]byte, error) {
	if s.frtn == nil {
		return nil, fmt.Errorf("site serves a bare fragment; updates unsupported")
	}
	op, u, v, err := decodeUpdateRequest(payload)
	if err != nil {
		return nil, err
	}
	var dirty []int
	var changed bool
	switch op {
	case UpdateInsert:
		dirty, changed, err = s.frtn.InsertEdge(u, v)
	case UpdateDelete:
		dirty, changed, err = s.frtn.DeleteEdge(u, v)
	}
	if err != nil {
		return nil, err
	}
	return encodeUpdateReply(changed, dirty), nil
}

// handleBatch evaluates a whole batch frame against the fragment in one
// pass and returns one partial answer per query. Reach queries sharing a
// target share their in-node equations (those are source-independent): the
// per-target local evaluation runs once however many sources ask for it,
// AND its result ships once, as a shared reply section the queries
// reference — each query's own slot carries only its source equation.
// Distance and regex queries evaluate individually. The frame's service
// delay (Site.delay) is paid once per batch, not once per query — the
// amortization the batch protocol exists to deliver.
func (s *Site) handleBatch(payload []byte) ([]byte, error) {
	qs, err := decodeBatchRequest(payload)
	if err != nil {
		return nil, err
	}
	parts := make([][]byte, len(qs))
	refs := make([]uint32, len(qs))
	var shared [][]byte
	sectionOf := make(map[graph.NodeID]uint32) // target -> 1+section index
	for i, q := range qs {
		switch q.Class {
		case ClassReach:
			ref, ok := sectionOf[q.T]
			if !ok {
				base := core.LocalEvalReach(s.frag, graph.None, q.T)
				sb, err := base.MarshalBinary()
				if err != nil {
					return nil, err
				}
				shared = append(shared, sb)
				ref = uint32(len(shared))
				sectionOf[q.T] = ref
			}
			refs[i] = ref
			if own := core.SourceOnlyReach(s.frag, q.S, q.T); own != nil {
				if parts[i], err = own.MarshalBinary(); err != nil {
					return nil, err
				}
			}
		case ClassDist:
			rv := core.LocalEvalDist(s.frag, q.S, q.T, q.L)
			if parts[i], err = rv.MarshalBinary(); err != nil {
				return nil, err
			}
		case ClassRPQ:
			rv := core.LocalEvalRPQ(s.frag, q.S, q.T, q.A)
			if parts[i], err = rv.MarshalBinary(); err != nil {
				return nil, err
			}
		default:
			// Unreachable: decodeBatchRequest rejects unknown classes.
			return nil, fmt.Errorf("unknown batch query class %q", byte(q.Class))
		}
	}
	return encodeBatchReply(shared, refs, parts), nil
}

// ServeFragmentation is a convenience that starts one Site per fragment on
// loopback ports and returns the sites plus their addresses. Callers must
// Close every site.
func ServeFragmentation(fr *fragment.Fragmentation) ([]*Site, []string, error) {
	return ServeFragmentationOpts(fr, SiteOptions{})
}

// ServeFragmentationOpts is ServeFragmentation with explicit site options.
func ServeFragmentationOpts(fr *fragment.Fragmentation, o SiteOptions) ([]*Site, []string, error) {
	sites := make([]*Site, 0, fr.Card())
	addrs := make([]string, 0, fr.Card())
	for _, f := range fr.Fragments() {
		s, err := NewSiteFor("127.0.0.1:0", fr, f.ID, o)
		if err != nil {
			for _, prev := range sites {
				prev.Close()
			}
			return nil, nil, err
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	return sites, addrs, nil
}
