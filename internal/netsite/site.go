package netsite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
	"distreach/internal/obs"
	"distreach/internal/oplog"
)

// errCancelled marks a request abandoned after a 'C' frame: a cancelled
// request owes no response at all, so the worker writes nothing.
var errCancelled = errors.New("netsite: request cancelled")

// defaultWorkers bounds the per-connection worker pool when SiteOptions
// leaves Workers zero: enough to keep a multiplexing coordinator busy
// without letting one connection monopolize the site.
const defaultWorkers = 8

// SiteOptions tunes a Site at construction time.
type SiteOptions struct {
	// Workers bounds the per-connection worker pool: how many frames from
	// one coordinator connection evaluate concurrently. 0 means the
	// default (8).
	Workers int
	// Delay adds an artificial pause before each local evaluation. It
	// emulates slower sites (WAN deployments, loaded machines) and gives
	// tests a deterministic per-query service time; 0 disables it.
	Delay time.Duration
	// Store, if set, makes the site durable: every applied update batch
	// (live or replayed) is appended to the store's log, and snapshots are
	// written every SnapshotEvery batches (truncating the log behind
	// them). A restarted site recovers from the store (oplog.Recover) and
	// catch-up replication streams only what it missed while down.
	Store *oplog.Store
	// SnapshotEvery is the local checkpoint cadence in applied batches;
	// 0 disables periodic snapshots (the log grows until truncated by an
	// installed snapshot).
	SnapshotEvery int
	// Metrics, if set, receives the site's own request telemetry (frame
	// counts by kind, queue-wait and evaluation histograms) — what a
	// standalone cmd/site process serves at its /metrics endpoint. Sites
	// may share one registry; the families are registered idempotently.
	Metrics *obs.Registry
}

// siteMetrics is the per-site instrument set, non-nil only when
// SiteOptions.Metrics was given.
type siteMetrics struct {
	frames *obs.CounterVec // by request kind
	errs   *obs.Counter
	queue  *obs.Histogram    // seconds a frame waited for a worker
	eval   *obs.HistogramVec // seconds one local evaluation took, by kind
}

func newSiteMetrics(r *obs.Registry) *siteMetrics {
	return &siteMetrics{
		frames: r.CounterVec("site_frames_total", "Request frames served, by kind.", "kind"),
		errs:   r.Counter("site_frame_errors_total", "Request frames answered with an error frame."),
		queue:  r.Histogram("site_queue_wait_seconds", "Seconds a frame waited for a worker.", nil),
		eval:   r.HistogramVec("site_eval_seconds", "Seconds one local evaluation took, by kind.", "kind", nil),
	}
}

// Site serves one fragment index over TCP. Create with NewSiteFor (or
// NewSite for a bare fragment without update support), then Addr gives the
// dial address for the coordinator; Close shuts the listener down. Frames
// arriving on one connection are evaluated concurrently by a bounded
// worker pool, so a coordinator multiplexing many queries over the
// connection is served in parallel, not one frame at a time.
//
// A site built with NewSiteFor (or NewSiteReplica) holds a Replica of the
// whole fragmentation and accepts update, rebalance and sync frames:
// queries snapshot the replica's current state, evaluate under its read
// lock (so a mutation never tears a fragment mid-evaluation), and stamp
// their answer with the epoch and update-log LSN they evaluated at; a
// rebalance builds the next fragmentation while queries keep flowing and
// swaps it in atomically; sync frames stream the update-log suffix (or a
// whole snapshot) into a replica that fell behind. In-process sites
// created by ServeFragmentation share one Replica, which makes broadcast
// updates and rebalances idempotent across them.
type Site struct {
	rep     *fragment.Replica  // nil: bare fragment, updates rejected
	bare    *fragment.Fragment // set iff rep is nil
	fragID  int
	ln      net.Listener
	workers int
	delay   time.Duration

	store     *oplog.Store
	snapEvery int
	persistMu sync.Mutex // orders replica apply + log append across workers
	met       *siteMetrics

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Logf, if set, receives connection-level errors (default: dropped).
	// Set it before the first coordinator connects.
	Logf func(format string, args ...any)
}

// NewSite starts serving f on addr ("127.0.0.1:0" picks a free port) with
// default options. The site has no fragmentation replica, so it rejects
// update and rebalance frames; prefer NewSiteFor for live deployments.
func NewSite(addr string, f *fragment.Fragment) (*Site, error) {
	return NewSiteOpts(addr, f, SiteOptions{})
}

// NewSiteOpts starts serving f on addr with explicit options and no update
// support (see NewSite).
func NewSiteOpts(addr string, f *fragment.Fragment, o SiteOptions) (*Site, error) {
	return newSite(addr, nil, f, f.ID, o)
}

// NewSiteFor starts serving fragment fragID of fr on addr. The site wraps
// fr in its own Replica of the deployment, which enables update and
// rebalance frames.
func NewSiteFor(addr string, fr *fragment.Fragmentation, fragID int, o SiteOptions) (*Site, error) {
	if fragID < 0 || fragID >= fr.Card() {
		return nil, fmt.Errorf("netsite: fragment %d out of range [0,%d)", fragID, fr.Card())
	}
	return newSite(addr, fragment.NewReplica(fr), nil, fragID, o)
}

// NewSiteReplica starts serving fragment fragID of the given shared
// replica on addr. Sites sharing one Replica (the in-process deployment
// of ServeFragmentation) apply broadcast updates and rebalances once
// between them.
func NewSiteReplica(addr string, rep *fragment.Replica, fragID int, o SiteOptions) (*Site, error) {
	fr, _ := rep.Current()
	if fragID < 0 || fragID >= fr.Card() {
		return nil, fmt.Errorf("netsite: fragment %d out of range [0,%d)", fragID, fr.Card())
	}
	return newSite(addr, rep, nil, fragID, o)
}

func newSite(addr string, rep *fragment.Replica, bare *fragment.Fragment, fragID int, o SiteOptions) (*Site, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsite: %w", err)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	s := &Site{
		rep:       rep,
		bare:      bare,
		fragID:    fragID,
		ln:        ln,
		workers:   workers,
		delay:     o.Delay,
		store:     o.Store,
		snapEvery: o.SnapshotEvery,
		conns:     make(map[net.Conn]struct{}),
	}
	if o.Metrics != nil {
		s.met = newSiteMetrics(o.Metrics)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the address the site listens on.
func (s *Site) Addr() string { return s.ln.Addr().String() }

// Close stops the site and its connections.
func (s *Site) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Site) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Site) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			if err := s.serveConn(conn); err != nil {
				s.logf("netsite: connection ended: %v", err)
			}
		}()
	}
}

// frameJob is one request frame awaiting evaluation. cancel, non-nil for
// query kinds, is the flag a later 'C' frame flips; the evaluator polls it
// at cooperative checkpoints. A frame that arrived inside a 'T' envelope
// has traced set (kind/payload are the unwrapped inner query) and carries
// a span recorder anchored at recv, the frame-receipt instant.
type frameJob struct {
	id      uint32
	kind    byte
	payload []byte
	cancel  *atomic.Bool
	traced  bool
	recv    time.Time
	rec     *obs.Recorder
}

// connCancels is one connection's registry of in-flight cancellable
// requests. The reader registers query frames before queueing them and
// fires 'C' frames inline — a cancel thus overtakes queued work even when
// every worker is busy. Workers remove entries when their job finishes
// (or was skipped); a 'C' for a finished request finds no entry and is a
// no-op, as the protocol requires.
type connCancels struct {
	mu sync.Mutex
	m  map[uint32]*atomic.Bool
}

func (c *connCancels) register(id uint32) *atomic.Bool {
	flag := new(atomic.Bool)
	c.mu.Lock()
	c.m[id] = flag
	c.mu.Unlock()
	return flag
}

func (c *connCancels) fire(id uint32) {
	c.mu.Lock()
	if flag, ok := c.m[id]; ok {
		flag.Store(true)
	}
	c.mu.Unlock()
}

func (c *connCancels) remove(id uint32) {
	c.mu.Lock()
	delete(c.m, id)
	c.mu.Unlock()
}

// serveConn handles one coordinator connection: a reader feeds request
// frames to a bounded pool of workers, each answering with a response
// frame that echoes the request ID and carries the epoch and update-log
// LSN the frame was served at. Responses go out in completion order; the
// coordinator's demultiplexer reorders by ID. Cancel frames are handled by
// the reader itself (never queued), and streaming queries may emit 'P'
// frames ahead of their final answer through the same write mutex.
func (s *Site) serveConn(conn net.Conn) error {
	jobs := make(chan frameJob)
	cancels := connCancels{m: make(map[uint32]*atomic.Bool)}
	var (
		wmu    sync.Mutex  // serializes whole response frames
		broken atomic.Bool // a response write failed; drain without writing
		wg     sync.WaitGroup
	)
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if j.cancel != nil && j.cancel.Load() {
					cancels.remove(j.id)
					continue // cancelled while queued; no response owed
				}
				if broken.Load() {
					if j.cancel != nil {
						cancels.remove(j.id)
					}
					continue // connection died; don't evaluate dead work
				}
				j := j
				if j.traced {
					j.rec = obs.NewRecorder(j.recv)
					j.rec.Span(-1, "queue", j.recv, time.Now())
				}
				if s.met != nil {
					s.met.frames.With(kindLabel(j.kind)).Inc()
					s.met.queue.Observe(time.Since(j.recv).Seconds())
				}
				emit := func(epoch, lsn uint64, body []byte) bool {
					if broken.Load() || (j.cancel != nil && j.cancel.Load()) {
						return false
					}
					tagged := make([]byte, answerPrefix, answerPrefix+len(body))
					binary.LittleEndian.PutUint64(tagged, epoch)
					binary.LittleEndian.PutUint64(tagged[8:], lsn)
					tagged = append(tagged, body...)
					wstart := time.Now()
					wmu.Lock()
					_, werr := writeFrame(conn, j.id, kindPartial, tagged)
					wmu.Unlock()
					if werr != nil {
						broken.Store(true)
						conn.Close()
						return false
					}
					if j.rec != nil {
						j.rec.Span(-1, "partial", wstart, time.Now(),
							obs.Attr{Key: "bytes", Val: strconv.Itoa(len(body))})
					}
					return true
				}
				epoch, lsn, resp, err := s.handle(j, emit)
				if j.cancel != nil {
					cancels.remove(j.id)
				}
				if errors.Is(err, errCancelled) {
					continue // a cancelled request owes no response
				}
				kind := byte(kindAnswer)
				if err != nil {
					kind, resp = kindError, []byte(err.Error())
					if s.met != nil {
						s.met.errs.Inc()
					}
				} else {
					tagged := make([]byte, answerPrefix, answerPrefix+len(resp))
					binary.LittleEndian.PutUint64(tagged, epoch)
					binary.LittleEndian.PutUint64(tagged[8:], lsn)
					if j.rec != nil {
						// Piggyback the recorded spans on the final answer:
						// tag | spans | body, under the 't' kind so the
						// coordinator knows to split them back out. Errors
						// stay plain 'E' frames — untraced, like before.
						kind = kindTracedAnswer
						resp = encodeTracedAnswer(tagged, j.rec.Wire(), resp)
					} else {
						resp = append(tagged, resp...)
					}
				}
				wmu.Lock()
				_, werr := writeFrame(conn, j.id, kind, resp)
				wmu.Unlock()
				if werr != nil {
					// Poison the connection: the reader unblocks with an
					// error, and remaining jobs drain without writing.
					broken.Store(true)
					conn.Close()
				}
			}
		}()
	}
	var err error
	for {
		id, kind, payload, _, rerr := readFrame(conn)
		if rerr != nil {
			err = rerr // includes clean EOF on coordinator close
			break
		}
		recv := time.Now()
		if kind == kindCancel {
			cancels.fire(id)
			continue
		}
		traced := false
		if kind == kindTraced {
			// Unwrap the trace envelope here so cancellation registers under
			// the inner query kind; a malformed envelope keeps kind = 'T'
			// and the worker answers 'E' for it. The envelope's trace and
			// parent-span IDs never leave the coordinator — sites record
			// spans relative to the rpc span implicitly (parent index -1).
			if _, _, inner, innerPayload, derr := decodeTraced(payload); derr == nil {
				kind, payload, traced = inner, innerPayload, true
			}
		}
		var flag *atomic.Bool
		switch kind {
		case kindReach, kindDist, kindRPQ, kindBatch:
			flag = cancels.register(id)
		}
		jobs <- frameJob{id: id, kind: kind, payload: payload, cancel: flag, traced: traced, recv: recv}
	}
	close(jobs)
	wg.Wait()
	return err
}

// pause sleeps the site's artificial service delay in short slices so a
// cancel frame cuts the wait short; it reports false when cancelled.
func (s *Site) pause(cancel *atomic.Bool) bool {
	if s.delay <= 0 {
		return true
	}
	if cancel == nil {
		time.Sleep(s.delay)
		return true
	}
	deadline := time.Now().Add(s.delay)
	for {
		if cancel.Load() {
			return false
		}
		left := time.Until(deadline)
		if left <= 0 {
			return true
		}
		if left > time.Millisecond {
			left = time.Millisecond
		}
		time.Sleep(left)
	}
}

// snapshot resolves the fragmentation and fragment this frame evaluates
// against, plus the epoch and LSN to stamp the answer with. Bare sites
// have no replica: epoch 0, LSN 0, no fragmentation lock to take.
func (s *Site) snapshot() (*fragment.Fragment, *fragment.Fragmentation, uint64, uint64) {
	if s.rep == nil {
		return s.bare, nil, 0, 0
	}
	fr, epoch, lsn := s.rep.State()
	return fr.Fragments()[s.fragID], fr, epoch, lsn
}

// handle evaluates one request frame. emit, when non-nil, writes a 'P'
// frame carrying body under the given state tag; streaming queries use it
// to surface equation chunks ahead of the final answer. A request whose
// cancel flag fires mid-evaluation returns errCancelled: no response frame
// is written for it.
func (s *Site) handle(j frameJob, emit func(epoch, lsn uint64, body []byte) bool) (uint64, uint64, []byte, error) {
	kind, payload := j.kind, j.payload
	if !s.pause(j.cancel) {
		return 0, 0, nil, errCancelled
	}
	switch kind {
	case kindUpdate:
		return s.handleUpdate(payload)
	case kindRebalance:
		return s.handleRebalance(payload)
	case kindSync:
		return s.handleSync(payload)
	case kindTraced:
		// The reader failed to unwrap this envelope; reject it like any
		// malformed payload.
		return 0, 0, nil, errTracedPayload
	}
	// Queries snapshot the current fragmentation and read their fragment
	// under its lock, so a concurrent update never mutates it
	// mid-evaluation and a concurrent rebalance swap leaves this
	// evaluation draining consistently against the old epoch.
	f, fr, epoch, lsn := s.snapshot()
	if fr != nil {
		lockStart := time.Now()
		fr.RLock()
		defer fr.RUnlock()
		if j.rec != nil {
			j.rec.Span(-1, "lock", lockStart, time.Now())
		}
	}
	var opt *core.Options
	if j.cancel != nil || j.rec != nil {
		opt = &core.Options{}
		if j.cancel != nil {
			opt.Cancel = j.cancel.Load
		}
	}
	var met *core.EvalMetrics
	if j.rec != nil {
		met = &core.EvalMetrics{}
		opt.Metrics = met
	}
	if j.rec != nil || s.met != nil {
		evalStart := time.Now()
		defer func() {
			end := time.Now()
			if j.rec != nil {
				j.rec.Span(-1, "eval", evalStart, end, evalAttrs(met)...)
			}
			if s.met != nil {
				s.met.eval.With(kindLabel(kind)).Observe(end.Sub(evalStart).Seconds())
			}
		}()
	}
	switch kind {
	case kindReach:
		src, dst, stream, err := decodeReachRequest(payload)
		if err != nil {
			return 0, 0, nil, err
		}
		var sink func(chunk *core.ReachPartial) bool
		if stream && emit != nil {
			sink = func(chunk *core.ReachPartial) bool {
				b, err := chunk.MarshalBinary()
				if err != nil {
					return true // skip the advisory chunk; the final is complete
				}
				return emit(epoch, lsn, b)
			}
		}
		rv, ok := core.LocalEvalReachStream(f, src, dst, opt, sink)
		if !ok {
			// Cancelled mid-evaluation — or the emit failed, which only
			// happens on a dead connection, where no response lands anyway.
			return 0, 0, nil, errCancelled
		}
		b, err := rv.MarshalBinary()
		return epoch, lsn, b, err
	case kindDist:
		if len(payload) < 12 {
			return 0, 0, nil, fmt.Errorf("short qbr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		l := int(binary.LittleEndian.Uint32(payload[8:]))
		rv := core.LocalEvalDist(f, src, dst, l)
		b, err := rv.MarshalBinary()
		return epoch, lsn, b, err
	case kindRPQ:
		if len(payload) < 8 {
			return 0, 0, nil, fmt.Errorf("short qrr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		var a automaton.Automaton
		if err := a.UnmarshalBinary(payload[8:]); err != nil {
			return 0, 0, nil, err
		}
		rv := core.LocalEvalRPQ(f, src, dst, &a)
		b, err := rv.MarshalBinary()
		return epoch, lsn, b, err
	case kindBatch:
		b, err := s.handleBatch(f, payload, epoch, lsn, opt, j.cancel, emit)
		return epoch, lsn, b, err
	default:
		return 0, 0, nil, fmt.Errorf("unknown request kind %q", kind)
	}
}

// evalAttrs renders one evaluation's equation counters as eval-span
// attributes, headed by the overall reachability-index outcome: hit
// (every index consult answered), fallback (every consult fell back to
// BFS — stale entry or over-budget component), mixed, or off (no
// equation consulted an index at all).
func evalAttrs(met *core.EvalMetrics) []obs.Attr {
	fell := met.StaleEqs + met.OverBudgetEqs
	outcome := "off"
	switch {
	case met.IndexedEqs > 0 && fell == 0:
		outcome = "hit"
	case met.IndexedEqs > 0:
		outcome = "mixed"
	case fell > 0:
		outcome = "fallback"
	}
	return []obs.Attr{
		{Key: "reachindex_outcome", Val: outcome},
		{Key: "eqs_indexed", Val: strconv.FormatInt(met.IndexedEqs, 10)},
		{Key: "eqs_bfs", Val: strconv.FormatInt(met.BFSEqs, 10)},
		{Key: "eqs_alias", Val: strconv.FormatInt(met.AliasEqs, 10)},
		{Key: "eqs_const", Val: strconv.FormatInt(met.ConstEqs, 10)},
		{Key: "eqs_stale", Val: strconv.FormatInt(met.StaleEqs, 10)},
		{Key: "eqs_overbudget", Val: strconv.FormatInt(met.OverBudgetEqs, 10)},
	}
}

// applyPersisted runs one sequenced batch through the replica and, when
// the site is durable, logs the slot (applied or deterministically
// rejected — both advance the order) and takes a periodic checkpoint. The
// persist mutex keeps the log's LSN sequence aligned with the replica's
// when a live update and a catch-up replay interleave.
func (s *Site) applyPersisted(lsn, nonce uint64, ops []Op) (fragment.ApplyResult, bool, error) {
	if s.store != nil {
		s.persistMu.Lock()
		defer s.persistMu.Unlock()
	}
	res, advanced, err := s.rep.ApplyLSN(lsn, nonce, ops)
	if advanced && s.store != nil {
		if perr := s.store.Log().Append(oplog.Record{LSN: lsn, Ops: ops}); perr != nil {
			s.logf("netsite: oplog append of batch %d failed: %v", lsn, perr)
		} else if s.snapEvery > 0 && lsn >= s.store.SnapshotLSN()+uint64(s.snapEvery) {
			// The periodic checkpoint is a designated compaction point:
			// fold the accumulated mutation overlays back into the flat
			// CSR bases before freezing the state. Compaction renumbers
			// slots and retires the reachability indexes, so when they are
			// enabled, wait out the rebuilds — a checkpoint that carries
			// the index section hands a restarted site warm indexes.
			if fr, _ := s.rep.Current(); fr != nil {
				fr.Compact()
				if fr.ReachIndexBudget() > 0 {
					fr.WaitReachIndexes()
				}
			}
			if snap, serr := oplog.TakeSnapshot(s.rep); serr != nil {
				s.logf("netsite: snapshot at batch %d failed: %v", lsn, serr)
			} else if serr := s.store.SaveSnapshot(snap); serr != nil {
				s.logf("netsite: snapshot at batch %d failed: %v", lsn, serr)
			}
		}
	}
	return res, advanced, err
}

// handleUpdate applies one sequenced mutation batch to the site's replica
// and reports what changed from its point of view, including the
// post-update balance stats. The mutation locks out query evaluation
// internally (writers exclude the read lock queries take), the LSN orders
// the batch against every other writer's, and re-delivered frames replay
// the recorded outcome.
func (s *Site) handleUpdate(payload []byte) (uint64, uint64, []byte, error) {
	if s.rep == nil {
		return 0, 0, nil, fmt.Errorf("site serves a bare fragment; updates unsupported")
	}
	lsn, nonce, ops, err := decodeUpdateRequest(payload)
	if err != nil {
		return 0, 0, nil, err
	}
	res, _, err := s.applyPersisted(lsn, nonce, ops)
	if err != nil {
		return 0, 0, nil, err
	}
	fr, epoch, at := s.rep.State()
	return epoch, at, encodeUpdateReply(res.Changed, res.Dirty, res.NewIDs, fr.BalanceStats()), nil
}

// handleRebalance re-fragments the site's replica at the requested epoch.
// The rebuild happens under the old fragmentation's read lock — queries
// keep flowing the whole time — and the swap is atomic; replicas already
// at (or past) the epoch no-op, which makes the broadcast idempotent both
// for co-located sites sharing a replica and for re-delivered frames.
func (s *Site) handleRebalance(payload []byte) (uint64, uint64, []byte, error) {
	if s.rep == nil {
		return 0, 0, nil, fmt.Errorf("site serves a bare fragment; rebalance unsupported")
	}
	epoch, k, seed, name, err := decodeRebalanceRequest(payload)
	if err != nil {
		return 0, 0, nil, err
	}
	p, err := fragment.ByName(name, seed)
	if err != nil {
		return 0, 0, nil, err
	}
	cur, _ := s.rep.Current()
	if k != cur.Card() {
		return 0, 0, nil, fmt.Errorf("rebalance wants %d fragments, deployment has %d sites", k, cur.Card())
	}
	applied, err := s.rep.Rebalance(epoch, p)
	if err != nil {
		return 0, 0, nil, err
	}
	fr, at, lsn := s.rep.State()
	return at, lsn, encodeRebalanceReply(at, applied, fr.Fingerprint(), fr.BalanceStats()), nil
}

// handleBatch evaluates a whole batch frame against the fragment in one
// pass and returns one partial answer per query. Reach queries sharing a
// target share their in-node equations (those are source-independent): the
// per-target local evaluation runs once however many queries ask for it,
// AND its result ships once, as a shared reply section the queries
// reference — each query's own slot carries only its source equation.
// Distance and regex queries evaluate individually. The frame's service
// delay (Site.delay) is paid once per batch, not once per query — the
// amortization the batch protocol exists to deliver.
//
// A streaming batch (batchFlagStream set) additionally emits up to
// core.MaxStreamChunks 'P' frames, one per reach query as it completes:
// the query's shared section (the first time its target is seen) merged
// with its source equation, tagged with the target it answers for. The
// cancel flag is polled between queries and inside the local evaluations.
func (s *Site) handleBatch(frag *fragment.Fragment, payload []byte, epoch, lsn uint64, opt *core.Options, cancel *atomic.Bool, emit func(epoch, lsn uint64, body []byte) bool) ([]byte, error) {
	qs, flags, err := decodeBatchRequest(payload)
	if err != nil {
		return nil, err
	}
	cancelled := func() bool { return cancel != nil && cancel.Load() }
	stream := flags&batchFlagStream != 0 && emit != nil
	emitted := 0
	emitChunk := func(t graph.NodeID, rv *core.ReachPartial) {
		if !stream || emitted >= core.MaxStreamChunks || rv.NumEqs() == 0 {
			return
		}
		b, err := rv.MarshalBinary()
		if err != nil {
			return // skip the advisory chunk; the final reply is complete
		}
		if emit(epoch, lsn, encodeBatchChunk(t, b)) {
			emitted++
		} else {
			stream = false
		}
	}
	parts := make([][]byte, len(qs))
	refs := make([]uint32, len(qs))
	var shared [][]byte
	sectionOf := make(map[graph.NodeID]uint32) // target -> 1+section index
	for i, q := range qs {
		if cancelled() {
			return nil, errCancelled
		}
		switch q.Class {
		case ClassReach:
			var base *core.ReachPartial
			ref, ok := sectionOf[q.T]
			if !ok {
				base = core.LocalEvalReach(frag, graph.None, q.T, opt)
				if base == nil {
					return nil, errCancelled
				}
				sb, err := base.MarshalBinary()
				if err != nil {
					return nil, err
				}
				shared = append(shared, sb)
				ref = uint32(len(shared))
				sectionOf[q.T] = ref
			}
			refs[i] = ref
			own := core.SourceOnlyReach(frag, q.S, q.T, opt)
			if own == nil && cancelled() {
				return nil, errCancelled
			}
			if own != nil {
				if parts[i], err = own.MarshalBinary(); err != nil {
					return nil, err
				}
			}
			if stream {
				chunk := new(core.ReachPartial)
				if base != nil {
					chunk.Merge(base)
				}
				if own != nil {
					chunk.Merge(own)
				}
				emitChunk(q.T, chunk)
			}
		case ClassDist:
			rv := core.LocalEvalDist(frag, q.S, q.T, q.L)
			if parts[i], err = rv.MarshalBinary(); err != nil {
				return nil, err
			}
		case ClassRPQ:
			rv := core.LocalEvalRPQ(frag, q.S, q.T, q.A)
			if parts[i], err = rv.MarshalBinary(); err != nil {
				return nil, err
			}
		default:
			// Unreachable: decodeBatchRequest rejects unknown classes.
			return nil, fmt.Errorf("unknown batch query class %q", byte(q.Class))
		}
	}
	return encodeBatchReply(shared, refs, parts), nil
}

// ServeFragmentation is a convenience that starts one Site per fragment on
// loopback ports and returns the sites plus their addresses. The sites
// share one Replica, so broadcast updates and rebalances apply once.
// Callers must Close every site.
func ServeFragmentation(fr *fragment.Fragmentation) ([]*Site, []string, error) {
	return ServeFragmentationOpts(fr, SiteOptions{})
}

// ServeFragmentationOpts is ServeFragmentation with explicit site options.
func ServeFragmentationOpts(fr *fragment.Fragmentation, o SiteOptions) ([]*Site, []string, error) {
	rep := fragment.NewReplica(fr)
	return ServeReplica(rep, o)
}

// ServeReplica starts one Site per fragment of the given shared replica on
// loopback ports — ServeFragmentation for a replica recovered from a
// store (oplog.Recover) rather than built fresh.
func ServeReplica(rep *fragment.Replica, o SiteOptions) ([]*Site, []string, error) {
	fr, _ := rep.Current()
	sites := make([]*Site, 0, fr.Card())
	addrs := make([]string, 0, fr.Card())
	for _, f := range fr.Fragments() {
		s, err := NewSiteReplica("127.0.0.1:0", rep, f.ID, o)
		if err != nil {
			for _, prev := range sites {
				prev.Close()
			}
			return nil, nil, err
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	return sites, addrs, nil
}
