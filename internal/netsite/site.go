package netsite

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"distreach/internal/automaton"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Site serves one fragment over TCP. Create with NewSite, then Addr gives
// the dial address for the coordinator; Close shuts the listener down.
type Site struct {
	frag *fragment.Fragment
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Logf, if set, receives connection-level errors (default: dropped).
	Logf func(format string, args ...any)
}

// NewSite starts serving f on addr ("127.0.0.1:0" picks a free port).
func NewSite(addr string, f *fragment.Fragment) (*Site, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsite: %w", err)
	}
	s := &Site{frag: f, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the address the site listens on.
func (s *Site) Addr() string { return s.ln.Addr().String() }

// Close stops the site and its connections.
func (s *Site) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Site) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Site) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			if err := s.serveConn(conn); err != nil {
				s.logf("netsite: connection ended: %v", err)
			}
		}()
	}
}

// serveConn handles one coordinator connection: a sequence of query frames,
// each answered with one partial-answer frame.
func (s *Site) serveConn(conn net.Conn) error {
	for {
		kind, payload, _, err := readFrame(conn)
		if err != nil {
			return err // includes clean EOF on coordinator close
		}
		resp, err := s.handle(kind, payload)
		if err != nil {
			if _, werr := writeFrame(conn, kindError, []byte(err.Error())); werr != nil {
				return werr
			}
			continue
		}
		if _, err := writeFrame(conn, kindAnswer, resp); err != nil {
			return err
		}
	}
}

func (s *Site) handle(kind byte, payload []byte) ([]byte, error) {
	switch kind {
	case kindReach:
		if len(payload) < 8 {
			return nil, fmt.Errorf("short qr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		rv := core.LocalEvalReach(s.frag, src, dst)
		return rv.MarshalBinary()
	case kindDist:
		if len(payload) < 12 {
			return nil, fmt.Errorf("short qbr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		l := int(binary.LittleEndian.Uint32(payload[8:]))
		rv := core.LocalEvalDist(s.frag, src, dst, l)
		return rv.MarshalBinary()
	case kindRPQ:
		if len(payload) < 8 {
			return nil, fmt.Errorf("short qrr payload")
		}
		src := graph.NodeID(binary.LittleEndian.Uint32(payload))
		dst := graph.NodeID(binary.LittleEndian.Uint32(payload[4:]))
		var a automaton.Automaton
		if err := a.UnmarshalBinary(payload[8:]); err != nil {
			return nil, err
		}
		rv := core.LocalEvalRPQ(s.frag, src, dst, &a)
		return rv.MarshalBinary()
	default:
		return nil, fmt.Errorf("unknown request kind %q", kind)
	}
}

// ServeFragmentation is a convenience that starts one Site per fragment on
// loopback ports and returns the sites plus their addresses. Callers must
// Close every site.
func ServeFragmentation(fr *fragment.Fragmentation) ([]*Site, []string, error) {
	sites := make([]*Site, 0, fr.Card())
	addrs := make([]string, 0, fr.Card())
	for _, f := range fr.Fragments() {
		s, err := NewSite("127.0.0.1:0", f)
		if err != nil {
			for _, prev := range sites {
				prev.Close()
			}
			return nil, nil, err
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	return sites, addrs, nil
}
