package netsite

import (
	"encoding/binary"
	"errors"

	"distreach/internal/obs"
)

// Traced-query envelope ('T' request frames) and traced-answer framing
// ('t' response frames). The envelope is additive: a coordinator that
// wants a trace wraps the ordinary query payload; everything about the
// inner query — codec, cancellation, partial streaming, (epoch, LSN)
// strict rounds — is untouched. Sites that don't know 'T' answer 'E'
// for the unknown kind, and the round degrades to untraced.

// tracedHeader is trace ID u64 | parent span ID u64 | inner kind u8.
const tracedHeader = 17

var errTracedPayload = errors.New("netsite: malformed traced envelope")

// tracedKind reports whether k is a query kind eligible for wrapping.
// Updates, rebalances and sync traffic stay untraced: their frames are
// not rounds the paper's guarantees speak about, and keeping the
// envelope query-only means the auditor can treat every 'T' as a round.
func tracedKind(k byte) bool {
	return k == kindReach || k == kindDist || k == kindRPQ || k == kindBatch
}

// encodeTraced wraps a query payload in a trace envelope.
func encodeTraced(traceID, parentSpan uint64, inner byte, payload []byte) []byte {
	p := make([]byte, 0, tracedHeader+len(payload))
	p = binary.BigEndian.AppendUint64(p, traceID)
	p = binary.BigEndian.AppendUint64(p, parentSpan)
	p = append(p, inner)
	return append(p, payload...)
}

// decodeTraced unwraps a 'T' payload. Nested envelopes are rejected —
// one trace context per frame.
func decodeTraced(p []byte) (traceID, parentSpan uint64, inner byte, payload []byte, err error) {
	if len(p) < tracedHeader {
		return 0, 0, 0, nil, errTracedPayload
	}
	inner = p[16]
	if !tracedKind(inner) {
		return 0, 0, 0, nil, errTracedPayload
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint64(p[8:]), inner, p[tracedHeader:], nil
}

// encodeTracedAnswer builds a 't' payload: the (epoch, lsn)-tagged body
// tag stays in front (first answerPrefix bytes identical to an 'R'
// frame), the span section follows, then the answer body.
func encodeTracedAnswer(tag []byte, spans []byte, body []byte) []byte {
	p := make([]byte, 0, len(tag)+len(spans)+len(body))
	p = append(p, tag...)
	p = append(p, spans...)
	return append(p, body...)
}

// decodeTracedAnswer splits a 't' payload (after the answerPrefix tag)
// into the site's spans and the ordinary answer body.
func decodeTracedAnswer(afterTag []byte) (spans []obs.WireSpan, body []byte, err error) {
	spans, body, err = obs.DecodeWireSpans(afterTag)
	if err != nil {
		return nil, nil, errTracedPayload
	}
	return spans, body, nil
}
