package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/graph"
)

// Wire batching: a batch frame ('B') carries many mixed-class queries in
// one payload, and each site answers with a single frame carrying one
// partial answer per query. The per-query visit guarantee thus becomes a
// per-batch guarantee over real connections: k queries over n sites cost
// 2n frames, independent of k.
//
// Batch request payload (little-endian):
//
//	version u8 | flags u8 | count u32 | per query:
//	  class u8 ('r'|'b'|'q') | s u32 | t u32
//	  class 'b' adds: l u32
//	  class 'q' adds: alen u32 | automaton bytes
//
// The flags byte carries batchFlagStream: the coordinator invites the site
// to emit 'P' frames — per-target equation chunks (see encodeBatchChunk) —
// ahead of the final reply, enabling anytime early termination.
//
// Batch response payload:
//
//	version u8 | nshared u32 | per section: slen u32 | bytes
//	           | count u32 | per query: sref u32 | plen u32 | partial bytes
//
// The shared sections deduplicate the reply: reach queries sharing a
// target share their in-node equations (they are independent of the
// source), so the site ships that rvset once as a section and each query
// references it by sref (1+index; 0 means no section) alongside its own
// source equation. However many sources ask about one target, the shared
// equations cross the wire once — mirroring the site already computing
// them once.
//
// Both codecs are hardened against hostile input (fuzzed): every count and
// length is bounds-checked against the remaining buffer and trailing bytes
// are rejected, so a corrupt or adversarial payload yields an error, never
// a panic or an over-allocation.

// QueryClass tags one query in a wire batch with its query class.
type QueryClass byte

// The three query classes of the paper, reusing the single-query frame
// kinds as class tags.
const (
	ClassReach QueryClass = kindReach // qr(s,t)
	ClassDist  QueryClass = kindDist  // qbr(s,t,l)
	ClassRPQ   QueryClass = kindRPQ   // qrr(s,t,R)
)

// BatchQuery is one query in a wire batch.
type BatchQuery struct {
	Class QueryClass
	S, T  graph.NodeID
	L     int                  // distance bound; ClassDist only
	A     *automaton.Automaton // query automaton; ClassRPQ only
}

// BatchAnswer is one query's answer within a batch. Dist is meaningful for
// ClassDist only: the exact distance when Answer is true, bes.Inf
// otherwise (mirroring Coordinator.ReachWithin). Touched mirrors
// WireStats.Touched per query: the sites whose partials the answer
// depends on (nil for locally short-circuited queries).
type BatchAnswer struct {
	Answer  bool
	Dist    int64
	Touched []int
}

// batchVersion versions the batch payload codecs independently of the
// frame layout. Version 2 added the shared per-target sections to the
// reply; version 3 added the request flags byte.
const batchVersion = 3

// batchFlagStream, in a batch request's flags byte, asks the site to
// stream per-query equation chunks as 'P' frames ahead of the final reply.
const batchFlagStream = 1

// maxBatch bounds the declared per-payload query count against hostile
// length prefixes; real batches are orders of magnitude smaller.
const maxBatch = 1 << 20

// batchReader is a bounds-checked cursor over a batch payload.
type batchReader struct {
	b   []byte
	off int
}

func (r *batchReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("netsite: truncated batch payload at offset %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *batchReader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("netsite: truncated batch payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *batchReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("netsite: truncated batch payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *batchReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("netsite: truncated batch payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *batchReader) bytes(n uint32) ([]byte, error) {
	if uint64(n) > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("netsite: batch payload claims %d bytes, %d remain", n, len(r.b)-r.off)
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

// version checks the leading version byte.
func (r *batchReader) version() error {
	v, err := r.u8()
	if err != nil {
		return err
	}
	if v != batchVersion {
		return fmt.Errorf("netsite: unsupported batch version %d", v)
	}
	return nil
}

// count decodes an item count, guarding it: each item occupies at least
// min bytes of the remaining buffer.
func (r *batchReader) count(min int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if n > maxBatch || uint64(n)*uint64(min) > uint64(len(r.b)-r.off) {
		return 0, fmt.Errorf("netsite: implausible batch count %d", n)
	}
	return int(n), nil
}

// header decodes the version byte and the item count shared by both batch
// payloads, guarding the count: each item occupies at least min bytes.
func (r *batchReader) header(min int) (int, error) {
	if err := r.version(); err != nil {
		return 0, err
	}
	return r.count(min)
}

// done rejects trailing bytes, so that decode∘encode is the identity and a
// frame cannot smuggle data past the codec.
func (r *batchReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("netsite: %d trailing bytes after batch payload", len(r.b)-r.off)
	}
	return nil
}

// encodeBatchRequest packs a mixed-class query batch into one payload.
func encodeBatchRequest(qs []BatchQuery, flags byte) ([]byte, error) {
	b := []byte{batchVersion, flags}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(qs)))
	for i, q := range qs {
		b = append(b, byte(q.Class))
		b = binary.LittleEndian.AppendUint32(b, uint32(q.S))
		b = binary.LittleEndian.AppendUint32(b, uint32(q.T))
		switch q.Class {
		case ClassReach:
		case ClassDist:
			b = binary.LittleEndian.AppendUint32(b, uint32(q.L))
		case ClassRPQ:
			if q.A == nil {
				return nil, fmt.Errorf("netsite: batch query %d: nil automaton", i)
			}
			ab, err := q.A.MarshalBinary()
			if err != nil {
				return nil, err
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(len(ab)))
			b = append(b, ab...)
		default:
			return nil, fmt.Errorf("netsite: batch query %d: unknown class %q", i, byte(q.Class))
		}
	}
	return b, nil
}

// decodeBatchRequest is the inverse of encodeBatchRequest. Unknown flag
// bits are rejected so the codec stays an identity under fuzzing.
func decodeBatchRequest(p []byte) ([]BatchQuery, byte, error) {
	r := &batchReader{b: p}
	if err := r.version(); err != nil {
		return nil, 0, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, 0, err
	}
	if flags&^byte(batchFlagStream) != 0 {
		return nil, 0, fmt.Errorf("netsite: unknown batch flags %#x", flags)
	}
	n, err := r.count(9) // class + s + t at minimum
	if err != nil {
		return nil, 0, err
	}
	qs := make([]BatchQuery, 0, n)
	for i := 0; i < n; i++ {
		cls, err := r.u8()
		if err != nil {
			return nil, 0, err
		}
		s, err := r.u32()
		if err != nil {
			return nil, 0, err
		}
		t, err := r.u32()
		if err != nil {
			return nil, 0, err
		}
		q := BatchQuery{Class: QueryClass(cls), S: graph.NodeID(s), T: graph.NodeID(t)}
		switch q.Class {
		case ClassReach:
		case ClassDist:
			l, err := r.u32()
			if err != nil {
				return nil, 0, err
			}
			q.L = int(l)
		case ClassRPQ:
			alen, err := r.u32()
			if err != nil {
				return nil, 0, err
			}
			ab, err := r.bytes(alen)
			if err != nil {
				return nil, 0, err
			}
			q.A = new(automaton.Automaton)
			if err := q.A.UnmarshalBinary(ab); err != nil {
				return nil, 0, fmt.Errorf("netsite: batch query %d: %w", i, err)
			}
		default:
			return nil, 0, fmt.Errorf("netsite: batch query %d: unknown class %q", i, cls)
		}
		qs = append(qs, q)
	}
	if err := r.done(); err != nil {
		return nil, 0, err
	}
	return qs, flags, nil
}

// encodeBatchReply packs the shared per-target sections plus, per batched
// query, a section reference (0 = none, else 1+index) and the query's own
// marshaled partial (empty when the shared section says it all).
func encodeBatchReply(shared [][]byte, refs []uint32, parts [][]byte) []byte {
	b := []byte{batchVersion}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(shared)))
	for _, s := range shared {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(parts)))
	for i, p := range parts {
		b = binary.LittleEndian.AppendUint32(b, refs[i])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = append(b, p...)
	}
	return b
}

// decodeBatchReply is the inverse of encodeBatchReply. Every count, length
// and section reference is validated.
func decodeBatchReply(p []byte) (shared [][]byte, refs []uint32, parts [][]byte, err error) {
	r := &batchReader{b: p}
	ns, err := r.header(4) // a length prefix per section at minimum
	if err != nil {
		return nil, nil, nil, err
	}
	shared = make([][]byte, 0, ns)
	for i := 0; i < ns; i++ {
		slen, err := r.u32()
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := r.bytes(slen)
		if err != nil {
			return nil, nil, nil, err
		}
		shared = append(shared, s)
	}
	n, err := r.u32()
	if err != nil {
		return nil, nil, nil, err
	}
	if n > maxBatch || uint64(n)*8 > uint64(len(r.b)-r.off) {
		return nil, nil, nil, fmt.Errorf("netsite: implausible batch reply count %d", n)
	}
	refs = make([]uint32, 0, n)
	parts = make([][]byte, 0, n)
	for i := 0; i < int(n); i++ {
		ref, err := r.u32()
		if err != nil {
			return nil, nil, nil, err
		}
		if ref > uint32(len(shared)) {
			return nil, nil, nil, fmt.Errorf("netsite: batch reply query %d references section %d of %d", i, ref, len(shared))
		}
		plen, err := r.u32()
		if err != nil {
			return nil, nil, nil, err
		}
		part, err := r.bytes(plen)
		if err != nil {
			return nil, nil, nil, err
		}
		refs = append(refs, ref)
		parts = append(parts, part)
	}
	if err := r.done(); err != nil {
		return nil, nil, nil, err
	}
	return shared, refs, parts, nil
}

// Batch evaluates a mixed-class query batch in one wire round: exactly one
// request frame per site carries the whole batch, each site evaluates it
// against its fragment in one pass and answers with one frame carrying a
// partial per query, and the coordinator demultiplexes and solves each
// query from its partials. The returned WireStats covers the whole batch:
// FramesSent (and FramesReceived) equal the site count — independent of
// len(qs) — which is the per-batch form of the paper's visit bound.
//
// Queries that short-circuit locally (s == t, or a non-positive distance
// bound) are answered without touching the wire; a batch of only such
// queries sends zero frames. Concurrent batches multiplex over the same
// connections like single queries do.
func (c *Coordinator) Batch(qs []BatchQuery) ([]BatchAnswer, WireStats, error) {
	return c.BatchContext(context.Background(), qs)
}

// BatchContext is Batch honoring a context deadline or cancellation.
func (c *Coordinator) BatchContext(ctx context.Context, qs []BatchQuery) ([]BatchAnswer, WireStats, error) {
	answers := make([]BatchAnswer, len(qs))
	wire := make([]BatchQuery, 0, len(qs))
	widx := make([]int, 0, len(qs))
	for i, q := range qs {
		switch q.Class {
		case ClassReach:
			if q.S == q.T {
				answers[i] = BatchAnswer{Answer: true}
				continue
			}
		case ClassDist:
			if q.S == q.T {
				answers[i] = BatchAnswer{Answer: q.L >= 0, Dist: 0}
				continue
			}
			if q.L <= 0 {
				answers[i] = BatchAnswer{Answer: false, Dist: bes.Inf}
				continue
			}
		case ClassRPQ:
			if q.A == nil {
				return nil, WireStats{}, fmt.Errorf("netsite: batch query %d: nil automaton", i)
			}
			if q.S == q.T && q.A.AcceptsLabels(nil) {
				answers[i] = BatchAnswer{Answer: true}
				continue
			}
		default:
			return nil, WireStats{}, fmt.Errorf("netsite: batch query %d: unknown class %q", i, byte(q.Class))
		}
		wire = append(wire, q)
		widx = append(widx, i)
	}
	if len(wire) == 0 {
		return answers, WireStats{}, nil
	}
	qt := c.newQueryTrace("batch")
	if c.anytime.Load() {
		allReach := true
		for _, q := range wire {
			if q.Class != ClassReach {
				allReach = false
				break
			}
		}
		// Anytime streaming covers reach-only batches (distance and regex
		// partials have no incremental solver); mixed batches take the
		// classic full round.
		if allReach {
			st, err := c.batchAnytime(ctx, wire, widx, answers, qt)
			c.finishTrace(qt, &st, err)
			if err != nil {
				return nil, st, err
			}
			return answers, st, nil
		}
	}
	payload, err := encodeBatchRequest(wire, 0)
	if err != nil {
		c.finishTrace(qt, &WireStats{}, err)
		return nil, WireStats{}, err
	}
	replies, st, err := c.queryRound(ctx, kindBatch, payload, qt)
	if err != nil {
		c.finishTrace(qt, &st, err)
		return nil, st, err
	}
	solveStart := time.Now()
	if err := composeBatchAnswers(replies, wire, widx, answers); err != nil {
		c.finishTrace(qt, &st, err)
		return nil, st, err
	}
	if qt != nil {
		qt.b.AddSpan(qt.b.Root(), "solve", solveStart, time.Since(solveStart))
	}
	st.FirstAnswer = st.RoundTrip
	c.finishTrace(qt, &st, nil)
	return answers, st, nil
}

// composeBatchAnswers decodes every site's final batch reply and solves
// each wire query into its answer slot — the compose step shared by the
// classic full round and an anytime round that ran to completion (their
// answers are thus byte-for-byte identical).
func composeBatchAnswers(replies [][]byte, wire []BatchQuery, widx []int, answers []BatchAnswer) error {
	// Per site: the decoded shared sections (reach rvsets, unmarshaled
	// once however many queries reference them), plus per-query refs and
	// own partial bytes.
	type siteReply struct {
		shared []*core.ReachPartial
		refs   []uint32
		parts  [][]byte
	}
	srs := make([]siteReply, len(replies))
	for site, resp := range replies {
		shared, refs, parts, err := decodeBatchReply(resp)
		if err != nil {
			return fmt.Errorf("netsite: site %d reply: %w", site, err)
		}
		if len(parts) != len(wire) {
			return fmt.Errorf("netsite: site %d answered %d of %d batch queries",
				site, len(parts), len(wire))
		}
		sr := siteReply{refs: refs, parts: parts, shared: make([]*core.ReachPartial, len(shared))}
		for k, sb := range shared {
			sr.shared[k] = new(core.ReachPartial)
			if err := sr.shared[k].UnmarshalBinary(sb); err != nil {
				return fmt.Errorf("netsite: site %d shared section %d: %w", site, k, err)
			}
		}
		srs[site] = sr
	}
	// siteOf maps a 2-per-site partial layout (shared, own) back to sites.
	siteOf := func(idx []int) []int {
		out := make([]int, 0, len(idx))
		last := -1
		for _, x := range idx { // idx is sorted; x/2 is nondecreasing
			if s := x / 2; s != last {
				out = append(out, s)
				last = s
			}
		}
		return out
	}
	for j, q := range wire {
		i := widx[j]
		switch q.Class {
		case ClassReach:
			// Two partials per site: the shared per-target rvset and the
			// query's own source equation. SolveReach composes them.
			partials := make([]*core.ReachPartial, 2*len(srs))
			for site, sr := range srs {
				if ref := sr.refs[j]; ref > 0 {
					partials[2*site] = sr.shared[ref-1]
				}
				if own := sr.parts[j]; len(own) > 0 {
					partials[2*site+1] = new(core.ReachPartial)
					if err := partials[2*site+1].UnmarshalBinary(own); err != nil {
						return fmt.Errorf("netsite: site %d batch query %d: %w", site, i, err)
					}
				}
			}
			answers[i].Answer = core.SolveReach(partials, q.S)
			answers[i].Touched = siteOf(core.TouchedReach(partials, q.S))
		case ClassDist:
			partials := make([]*core.DistPartial, len(srs))
			for site, sr := range srs {
				partials[site] = new(core.DistPartial)
				if err := partials[site].UnmarshalBinary(sr.parts[j]); err != nil {
					return fmt.Errorf("netsite: site %d batch query %d: %w", site, i, err)
				}
			}
			d := core.SolveDist(partials, q.S)
			answers[i] = BatchAnswer{Answer: d <= int64(q.L), Dist: d, Touched: core.TouchedDist(partials, q.S)}
		case ClassRPQ:
			partials := make([]*core.RPQPartial, len(srs))
			for site, sr := range srs {
				partials[site] = new(core.RPQPartial)
				if err := partials[site].UnmarshalBinary(sr.parts[j]); err != nil {
					return fmt.Errorf("netsite: site %d batch query %d: %w", site, i, err)
				}
			}
			answers[i].Answer = core.SolveRPQ(partials, q.S, q.A)
			answers[i].Touched = core.TouchedRPQ(partials, q.S, q.A.NumStates())
		}
	}
	return nil
}
