package netsite

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"distreach/internal/fragment"
	"distreach/internal/oplog"
)

// Catch-up replication over the wire. A sync frame ('S') carries one of
// four sub-requests, selected by the first payload byte:
//
//	'h' hello:    (empty) — where does the replica stand?
//	'r' replay:   count u32 | per record: lsn u64 | ops (oplog codec) —
//	              apply this update-log suffix in order
//	's' snapshot: snapshot bytes (oplog codec) — install this checkpoint
//	'f' fetch:    (empty) — encode your current state as a snapshot
//
// Replies ride inside the (epoch, lsn)-prefixed answer frame:
//
//	'h': fingerprint u64
//	'r': applied u32 | fingerprint u64
//	's': installed u8 | fingerprint u64
//	'f': snapshot bytes
//
// The coordinator drives the protocol (SyncReplicas): it asks every site
// where it stands, streams the update-log delta to the ones that fell
// behind — or pushes a whole snapshot when the log no longer reaches back
// far enough, fetching one from an up-to-date replica if it has none —
// realigns epochs with a forced rebalance when they diverge, and verifies
// that every replica ends at the same (LSN, epoch, fingerprint). This is
// what replaces "re-seed the stale site by hand": a site restarted from
// old files rejoins the deployment automatically and no query ever
// combines its stale partials with fresh ones in the meantime (the LSN
// tag on every answer guards that).

// Sync sub-request kinds (first payload byte of an 'S' frame).
const (
	syncHello    = 'h'
	syncReplay   = 'r'
	syncSnapshot = 's'
	syncFetch    = 'f'
)

// maxSyncRecords bounds one replay frame's declared record count.
const maxSyncRecords = 1 << 16

// replayChunk is how many records one replay frame carries at most; a
// long catch-up streams several frames.
const replayChunk = 512

// encodeSyncReplay packs a contiguous run of log records.
func encodeSyncReplay(recs []oplog.Record) ([]byte, error) {
	b := []byte{syncReplay}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(recs)))
	var err error
	for _, rec := range recs {
		b = binary.LittleEndian.AppendUint64(b, rec.LSN)
		if b, err = oplog.AppendOps(b, rec.Ops); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeSyncReplay is the inverse of encodeSyncReplay (after the sub-kind
// byte), hardened against hostile payloads.
func decodeSyncReplay(p []byte) ([]oplog.Record, error) {
	r := oplog.NewCursor(p)
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if n > maxSyncRecords || uint64(n)*12 > uint64(r.Remaining()+12) {
		return nil, fmt.Errorf("netsite: implausible replay record count %d", n)
	}
	recs := make([]oplog.Record, 0, n)
	for i := 0; i < int(n); i++ {
		lsn, err := r.U64()
		if err != nil {
			return nil, err
		}
		ops, err := oplog.ReadOps(r)
		if err != nil {
			return nil, err
		}
		recs = append(recs, oplog.Record{LSN: lsn, Ops: ops})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return recs, nil
}

// handleSync serves one 'S' frame against the site's replica.
func (s *Site) handleSync(payload []byte) (uint64, uint64, []byte, error) {
	if s.rep == nil {
		return 0, 0, nil, fmt.Errorf("site serves a bare fragment; sync unsupported")
	}
	if len(payload) < 1 {
		return 0, 0, nil, fmt.Errorf("empty sync payload")
	}
	sub, body := payload[0], payload[1:]
	switch sub {
	case syncHello:
		if len(body) != 0 {
			return 0, 0, nil, fmt.Errorf("sync hello carries %d unexpected bytes", len(body))
		}
		fr, epoch, lsn := s.rep.State()
		return epoch, lsn, binary.LittleEndian.AppendUint64(nil, fr.Fingerprint()), nil
	case syncReplay:
		recs, err := decodeSyncReplay(body)
		if err != nil {
			return 0, 0, nil, err
		}
		applied := 0
		for _, rec := range recs {
			_, advanced, err := s.applyPersisted(rec.LSN, 0, rec.Ops)
			if advanced {
				applied++
				continue
			}
			if err != nil {
				if errors.Is(err, fragment.ErrReplicaBehind) {
					return 0, 0, nil, fmt.Errorf("replay gap: %w", err)
				}
				// A stale record (already applied, outside the window) is
				// redundant re-delivery, not a failure.
				continue
			}
		}
		fr, epoch, lsn := s.rep.State()
		resp := binary.LittleEndian.AppendUint32(nil, uint32(applied))
		resp = binary.LittleEndian.AppendUint64(resp, fr.Fingerprint())
		return epoch, lsn, resp, nil
	case syncSnapshot:
		snap, err := oplog.DecodeSnapshot(body)
		if err != nil {
			return 0, 0, nil, err
		}
		if snap.Fr.Card() != s.currentCard() {
			return 0, 0, nil, fmt.Errorf("snapshot has %d fragments, deployment has %d", snap.Fr.Card(), s.currentCard())
		}
		installed := s.rep.Install(snap.Fr, snap.Epoch, snap.LSN)
		if installed && s.store != nil {
			s.persistMu.Lock()
			if err := s.store.SaveSnapshot(snap); err != nil {
				s.logf("netsite: persisting installed snapshot failed: %v", err)
			}
			s.persistMu.Unlock()
		}
		fr, epoch, lsn := s.rep.State()
		resp := []byte{0}
		if installed {
			resp[0] = 1
		}
		resp = binary.LittleEndian.AppendUint64(resp, fr.Fingerprint())
		return epoch, lsn, resp, nil
	case syncFetch:
		if len(body) != 0 {
			return 0, 0, nil, fmt.Errorf("sync fetch carries %d unexpected bytes", len(body))
		}
		// Serving a snapshot (gateway checkpoint or a peer catching up) is
		// a compaction point too: the encode walks the whole state anyway.
		// With indexing on, wait out the rebuilds compaction just kicked so
		// the snapshot's index section covers every fragment — the receiver
		// then serves indexed answers from its first round instead of
		// rebuilding what we already built (the parallel builder keeps this
		// wait short).
		if fr, _ := s.rep.Current(); fr != nil {
			fr.Compact()
			if fr.ReachIndexBudget() > 0 {
				fr.WaitReachIndexes()
			}
		}
		snap, err := oplog.TakeSnapshot(s.rep)
		if err != nil {
			return 0, 0, nil, err
		}
		b, err := oplog.EncodeSnapshot(snap)
		if err != nil {
			return 0, 0, nil, err
		}
		return snap.Epoch, snap.LSN, b, nil
	default:
		return 0, 0, nil, fmt.Errorf("unknown sync sub-request %q", sub)
	}
}

func (s *Site) currentCard() int {
	fr, _ := s.rep.Current()
	return fr.Card()
}

// replicaState is one site's position as reported by a sync hello.
type replicaState struct {
	LSN         uint64
	Epoch       uint64
	Fingerprint uint64
}

// helloAll asks every site where it stands. A non-nil wire accumulates
// the hello round's frame and byte counts — sync traffic used to vanish
// from the accounting entirely.
func (c *Coordinator) helloAll(ctx context.Context, wire *WireStats) ([]replicaState, error) {
	states := make([]replicaState, len(c.conns))
	results, hst := c.roundtripAll(ctx, kindSync, []byte{syncHello}, nil)
	if wire != nil {
		wire.add(hst)
	}
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if len(r.payload) != 8 {
			return nil, fmt.Errorf("netsite: site %d hello reply of %d bytes", i, len(r.payload))
		}
		states[i] = replicaState{LSN: r.lsn, Epoch: r.epoch, Fingerprint: binary.LittleEndian.Uint64(r.payload)}
	}
	return states, nil
}

// SyncOptions configures one catch-up round.
type SyncOptions struct {
	// Log is the deployment's write-ahead log: the replay source. nil
	// means no replay is possible — laggards are caught up by snapshot
	// transfer only.
	Log *oplog.Log
	// Snapshot, if set, supplies a locally stored checkpoint (the
	// gateway's snapshot file). When a laggard is too far behind for the
	// log, this is tried before fetching a snapshot from a peer replica.
	Snapshot func() (*oplog.Snapshot, bool)
	// Partitioner and Seed drive the forced rebalance that realigns
	// epochs when replicas report different ones after catch-up. Empty
	// partitioner defaults to "edgecut".
	Partitioner string
	Seed        uint64
}

// SyncReport summarizes one catch-up round.
type SyncReport struct {
	LSN         uint64 // deployment LSN every replica ended at
	Epoch       uint64 // deployment epoch every replica ended at
	Fingerprint uint64
	Laggards    int   // sites that needed catch-up
	Replayed    int   // log records streamed
	Snapshots   int   // snapshot installs
	Bytes       int64 // payload bytes shipped to catch laggards up
	Rebalanced  bool

	// WireSent and WireReceived are the full wire cost of the round —
	// every hello, replay, snapshot and realign frame, with framing
	// overhead — as opposed to Bytes, which counts only catch-up
	// payloads. They close the 'S'-traffic gap in the accounting: the
	// gateway folds them into its transferred-bytes totals.
	WireSent     int64
	WireReceived int64
}

// syncAttempts bounds how many hello→catch-up passes one SyncReplicas call
// makes: under live churn a pass can complete with a site one batch
// behind again, so the loop re-checks until the deployment holds still.
const syncAttempts = 5

// SyncReplicas brings every replica to the same state: update-log position
// (streaming the missed suffix from o.Log, or a whole snapshot when the
// log has been truncated past a laggard — from o.Snapshot or fetched off
// the most advanced replica), epoch (a forced rebalance realigns
// divergent epochs), and finally fingerprint. A fingerprint mismatch that
// survives all of that is genuine divergence and fails with
// ErrReplicaDiverged. Serialized against this coordinator's update and
// rebalance rounds.
func (c *Coordinator) SyncReplicas(ctx context.Context, o SyncOptions) (rep SyncReport, err error) {
	if o.Partitioner == "" {
		o.Partitioner = "edgecut"
	}
	c.updMu.Lock()
	defer c.updMu.Unlock()
	var wire WireStats
	defer func() { rep.WireSent, rep.WireReceived = wire.BytesSent, wire.BytesReceived }()
	for attempt := 0; attempt < syncAttempts; attempt++ {
		states, err := c.helloAll(ctx, &wire)
		if err != nil {
			return rep, err
		}
		target := uint64(0)
		for _, st := range states {
			if st.LSN > target {
				target = st.LSN
			}
		}
		if o.Log != nil && o.Log.LastLSN() > target {
			// The write-ahead log is ahead of every replica: a batch was
			// logged but its broadcast failed. Re-deliver it.
			target = o.Log.LastLSN()
		}
		// Adopt the deployment's position so this coordinator's next update
		// extends the order (and a durable sequencer fast-forwards its log).
		if err := c.Sequencer().Advance(target); err != nil {
			return rep, err
		}
		behind := make([]int, 0)
		for i, st := range states {
			if st.LSN < target {
				behind = append(behind, i)
			}
		}
		if attempt == 0 {
			rep.Laggards = len(behind)
		}
		// One snapshot serves every laggard of this pass: fetching (and
		// encoding) a graph-sized checkpoint per site would be k-1 times
		// redundant.
		var fetched *oplog.Snapshot
		for _, i := range behind {
			n, snaps, bytes, err := c.catchUp(ctx, i, states[i].LSN, target, o, states, &fetched, &wire)
			if err != nil {
				return rep, err
			}
			rep.Replayed += n
			rep.Snapshots += snaps
			rep.Bytes += bytes
		}
		// Re-check: everyone at one LSN now?
		states, err = c.helloAll(ctx, &wire)
		if err != nil {
			return rep, err
		}
		split := false
		for _, st := range states[1:] {
			if st.LSN != states[0].LSN {
				split = true
				break
			}
		}
		if split {
			continue // live churn moved the target; take another pass
		}
		// Epoch realign: a replica that missed rebalances while down sits at
		// an older epoch with an older assignment. One forced rebalance at a
		// strictly fresh epoch makes every replica rebuild deterministically
		// over graphs that now agree; its fingerprint cross-check settles
		// whether they truly converged.
		maxEpoch, epochSplit, fpSplit := states[0].Epoch, false, false
		for _, st := range states[1:] {
			if st.Epoch != states[0].Epoch {
				epochSplit = true
			}
			if st.Fingerprint != states[0].Fingerprint {
				fpSplit = true
			}
			if st.Epoch > maxEpoch {
				maxEpoch = st.Epoch
			}
		}
		if epochSplit || fpSplit {
			if _, rst, err := c.rebalanceLocked(ctx, maxEpoch+1, o.Partitioner, o.Seed+maxEpoch+1); err != nil {
				return rep, err
			} else {
				wire.add(rst)
			}
			rep.Rebalanced = true
			states, err = c.helloAll(ctx, &wire)
			if err != nil {
				return rep, err
			}
			ok := true
			for _, st := range states[1:] {
				if st != states[0] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		rep.LSN, rep.Epoch, rep.Fingerprint = states[0].LSN, states[0].Epoch, states[0].Fingerprint
		return rep, nil
	}
	return rep, fmt.Errorf("%w (replicas did not settle after %d catch-up passes)", ErrReplicaDiverged, syncAttempts)
}

// catchUp brings one site from lsn up to target: by log replay when the
// log reaches back far enough, otherwise by snapshot (local checkpoint,
// the pass's already-fetched one, or one fetched from the most advanced
// peer — cached into *fetched for the pass's other laggards) plus the log
// suffix after it.
func (c *Coordinator) catchUp(ctx context.Context, site int, lsn, target uint64, o SyncOptions, states []replicaState, fetched **oplog.Snapshot, wire *WireStats) (replayed, snapshots int, bytes int64, err error) {
	// Fast path: the log covers everything the site missed.
	if o.Log != nil {
		recs, ok, err := o.Log.ReadFrom(lsn + 1)
		if err != nil {
			return 0, 0, 0, err
		}
		if ok {
			n, b, err := c.replayTo(ctx, site, recs, wire)
			return n, 0, b, err
		}
	}
	// Snapshot path: a local checkpoint, or one fetched from the most
	// advanced replica.
	var snap *oplog.Snapshot
	if o.Snapshot != nil {
		if s, ok := o.Snapshot(); ok && s.LSN > lsn {
			snap = s
		}
	}
	if f := *fetched; snap == nil || !c.logReaches(o.Log, snap.LSN+1, target) {
		if f != nil && f.LSN > lsn {
			snap = f
		} else {
			best, bestLSN := -1, lsn
			for i, st := range states {
				if i != site && st.LSN > bestLSN {
					best, bestLSN = i, st.LSN
				}
			}
			if best < 0 {
				return 0, 0, 0, fmt.Errorf("netsite: site %d is at LSN %d and no log, snapshot or peer reaches %d", site, lsn, target)
			}
			body, _, _, err := c.postOne(ctx, best, kindSync, []byte{syncFetch}, wire)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("netsite: fetching snapshot from site %d: %w", best, err)
			}
			bytes += int64(len(body))
			if snap, err = oplog.DecodeSnapshot(body); err != nil {
				return 0, 0, bytes, fmt.Errorf("netsite: snapshot from site %d: %w", best, err)
			}
			*fetched = snap
		}
	}
	sb, err := oplog.EncodeSnapshot(snap)
	if err != nil {
		return 0, 0, bytes, err
	}
	payload := append([]byte{syncSnapshot}, sb...)
	if _, _, _, err := c.postOne(ctx, site, kindSync, payload, wire); err != nil {
		return 0, 0, bytes, fmt.Errorf("netsite: installing snapshot on site %d: %w", site, err)
	}
	snapshots = 1
	bytes += int64(len(payload))
	// Stream whatever the log holds past the snapshot.
	if o.Log != nil {
		if recs, ok, err := o.Log.ReadFrom(snap.LSN + 1); err != nil {
			return 0, snapshots, bytes, err
		} else if ok && len(recs) > 0 {
			n, b, err := c.replayTo(ctx, site, recs, wire)
			return n, snapshots, bytes + b, err
		}
	}
	return 0, snapshots, bytes, nil
}

// logReaches reports whether l holds every record in (from-1, to].
func (c *Coordinator) logReaches(l *oplog.Log, from, to uint64) bool {
	if from > to {
		return true
	}
	if l == nil {
		return false
	}
	_, ok, err := l.ReadFrom(from)
	return ok && err == nil && l.LastLSN() >= to
}

// replayTo streams records to one site in bounded chunks.
func (c *Coordinator) replayTo(ctx context.Context, site int, recs []oplog.Record, wire *WireStats) (int, int64, error) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	sent, bytes := 0, int64(0)
	for len(recs) > 0 {
		chunk := recs
		if len(chunk) > replayChunk {
			chunk = chunk[:replayChunk]
		}
		recs = recs[len(chunk):]
		payload, err := encodeSyncReplay(chunk)
		if err != nil {
			return sent, bytes, err
		}
		if _, _, _, err := c.postOne(ctx, site, kindSync, payload, wire); err != nil {
			return sent, bytes, fmt.Errorf("netsite: replaying %d records to site %d: %w", len(chunk), site, err)
		}
		sent += len(chunk)
		bytes += int64(len(payload))
	}
	return sent, bytes, nil
}

// FetchSnapshot pulls a verified snapshot of the current deployment state
// from the most advanced replica — what the gateway checkpoints to its
// store so the write-ahead log can be truncated.
func (c *Coordinator) FetchSnapshot(ctx context.Context) (*oplog.Snapshot, error) {
	states, err := c.helloAll(ctx, nil)
	if err != nil {
		return nil, err
	}
	best := 0
	for i, st := range states {
		if st.LSN > states[best].LSN {
			best = i
		}
	}
	body, _, _, err := c.postOne(ctx, best, kindSync, []byte{syncFetch}, nil)
	if err != nil {
		return nil, err
	}
	return oplog.DecodeSnapshot(body)
}
