package netsite

import (
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestReconnectAfterSiteRestart: dropping a site fails queries promptly,
// but the coordinator heals itself — once the site is back on the same
// address, queries succeed again without redialing or restarting anything.
func TestReconnectAfterSiteRestart(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 240, Labels: []string{"A", "B"}, Seed: 601})
	fr, err := fragment.Random(g, 2, 601)
	if err != nil {
		t.Fatal(err)
	}
	rep := fragment.NewReplica(fr)
	var sites []*Site
	var addrs []string
	for i := 0; i < fr.Card(); i++ {
		s, err := NewSiteReplica("127.0.0.1:0", rep, i, SiteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	defer func() {
		for _, s := range sites {
			if s != nil {
				s.Close()
			}
		}
	}()
	co, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	if _, _, err := co.Reach(0, 59); err != nil {
		t.Fatal(err)
	}
	// Kill site 1: queries must fail fast, not hang.
	sites[1].Close()
	sites[1] = nil
	failed := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := co.Reach(0, 59); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("queries kept succeeding with a dead site")
	}
	// Restart on the same address; the redial loop should pick it up.
	restarted, err := NewSiteReplica(addrs[1], rep, 1, SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sites[1] = restarted
	recovered := false
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got, _, err := co.Reach(0, 59); err == nil {
			if want := g.Reachable(0, 59); got != want {
				t.Fatalf("post-reconnect qr(0,59) = %v, oracle %v", got, want)
			}
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("coordinator never reconnected to the restarted site")
	}
	// The healed connection carries updates too.
	if _, _, err := co.Update(UpdateInsert, 0, graph.NodeID(59)); err != nil {
		t.Fatalf("update after reconnect: %v", err)
	}
}

// TestReconnectStopsOnClose: closing the coordinator while a site is down
// must stop the redial loop (no goroutine keeps dialing a dead address).
func TestReconnectStopsOnClose(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 20, Edges: 40, Labels: []string{"A"}, Seed: 602})
	fr, err := fragment.Random(g, 1, 602)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(addrs, time.Second)
	if err != nil {
		for _, s := range sites {
			s.Close()
		}
		t.Fatal(err)
	}
	for _, s := range sites {
		s.Close() // site gone; redial loop starts
	}
	time.Sleep(50 * time.Millisecond)
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	// Posting after close fails immediately with the closed error.
	if _, _, err := co.Reach(0, 1); err == nil {
		t.Fatal("query after Close must fail")
	}
}

// TestCoordinatorCloseTwice: Close must stay idempotent (a defer plus an
// explicit shutdown path, or two goroutines racing shutdown, must not
// panic on a double channel close).
func TestCoordinatorCloseTwice(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 10, Edges: 20, Labels: []string{"A"}, Seed: 603})
	fr, err := fragment.Random(g, 1, 603)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil { // must not panic
		t.Fatal(err)
	}
}

// TestTwoCoordinatorsNoSeqCollision: two coordinators updating the same
// deployment must not have their batches swallowed by the broadcast
// dedupe window — each coordinator's node insert must really land. With
// the sequenced log, the second coordinator adopts the deployment's LSN
// before its first submit (a hello round), so its batch extends the total
// order instead of colliding at LSN 1; concurrent writers share one
// sequencer outright (TestTwoGatewaysConverge).
func TestTwoCoordinatorsNoSeqCollision(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 20, Edges: 40, Labels: []string{"A"}, Seed: 604})
	fr, err := fragment.Random(g, 2, 604)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	coA, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coA.Close()
	coB, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coB.Close()

	resA, _, err := coA.InsertNode("A")
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := coB.InsertNode("B")
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.NewIDs) != 1 || len(resB.NewIDs) != 1 {
		t.Fatalf("inserts reported %d/%d IDs, want 1 each", len(resA.NewIDs), len(resB.NewIDs))
	}
	if resA.NewIDs[0] == resB.NewIDs[0] {
		t.Fatalf("both coordinators got node %d: the second batch was deduped away", resA.NewIDs[0])
	}
	if live := fr.Graph().NumLive(); live != 22 {
		t.Fatalf("deployment has %d live nodes, want 22 (both inserts applied)", live)
	}
}
