package netsite

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"distreach/internal/fragment"
)

// Live re-fragmentation over the wire. A rebalance frame ('R', request
// direction) tells every site to re-fragment the deployment at a new
// epoch: each replica re-runs the named partitioner over its current graph
// — deterministically, so independent replicas arrive at the same
// fragmentation — and atomically swaps it in. Queries in flight keep
// draining against the fragmentation they started with; the epoch tag on
// every answer frame lets the coordinator detect (and retry) the rare
// round that straddled the swap, so no query ever combines partial answers
// from two epochs. The fragment count is preserved: sites keep serving
// their fragment index, just with a new node assignment behind it.
//
// Rebalance request payload (little-endian):
//
//	epoch u64 | k u32 | seed u64 | nlen u8 | partitioner name
//
// Rebalance response payload:
//
//	epoch u64 (the replica's epoch after handling the frame) |
//	applied u8 (1 when this site performed the rebuild) |
//	fingerprint u64 (digest of graph + assignment; see
//	fragment.Fingerprint) | balance stats (as in the update reply)

// ErrReplicaDiverged reports that sites ended a rebalance round at the
// same epoch but with different fragmentation fingerprints. When the
// requested epoch was not fresh (some replica no-opped with an older
// build), a retry at a higher epoch forces every replica to rebuild and
// settles the question; a divergence that survives a forced rebuild means
// a replica's graph state genuinely differs (it restarted from stale
// files and missed updates) and needs re-seeding.
var ErrReplicaDiverged = errors.New("netsite: replica state diverged")

// RebalanceResult reports the outcome of a rebalance round.
type RebalanceResult struct {
	// Epoch is the deployment epoch after the round.
	Epoch uint64
	// Applied is false when no site rebuilt — the deployment had already
	// reached (or passed) the requested epoch.
	Applied bool
	// Stats is the balance of the post-rebalance fragmentation.
	Stats fragment.BalanceStats
}

// encodeRebalanceRequest packs one rebalance command.
func encodeRebalanceRequest(epoch uint64, k int, seed uint64, name string) ([]byte, error) {
	if len(name) == 0 || len(name) > 0xFF {
		return nil, fmt.Errorf("netsite: partitioner name of %d bytes out of range [1,255]", len(name))
	}
	b := binary.LittleEndian.AppendUint64(nil, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(k))
	b = binary.LittleEndian.AppendUint64(b, seed)
	b = append(b, byte(len(name)))
	b = append(b, name...)
	return b, nil
}

// decodeRebalanceRequest is the inverse of encodeRebalanceRequest,
// hardened against hostile payloads.
func decodeRebalanceRequest(p []byte) (epoch uint64, k int, seed uint64, name string, err error) {
	r := &batchReader{b: p}
	if epoch, err = r.u64(); err != nil {
		return 0, 0, 0, "", err
	}
	ku, err := r.u32()
	if err != nil {
		return 0, 0, 0, "", err
	}
	if seed, err = r.u64(); err != nil {
		return 0, 0, 0, "", err
	}
	nlen, err := r.u8()
	if err != nil {
		return 0, 0, 0, "", err
	}
	if nlen == 0 {
		return 0, 0, 0, "", fmt.Errorf("netsite: rebalance frame with empty partitioner name")
	}
	nb, err := r.bytes(uint32(nlen))
	if err != nil {
		return 0, 0, 0, "", err
	}
	if err := r.done(); err != nil {
		return 0, 0, 0, "", err
	}
	return epoch, int(ku), seed, string(nb), nil
}

// encodeRebalanceReply packs one site's view of a handled rebalance.
func encodeRebalanceReply(epoch uint64, applied bool, fp uint64, bs fragment.BalanceStats) []byte {
	b := binary.LittleEndian.AppendUint64(nil, epoch)
	if applied {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, fp)
	return appendBalanceStats(b, bs)
}

// decodeRebalanceReply is the inverse of encodeRebalanceReply.
func decodeRebalanceReply(p []byte) (epoch uint64, applied bool, fp uint64, bs fragment.BalanceStats, err error) {
	r := &batchReader{b: p}
	if epoch, err = r.u64(); err != nil {
		return 0, false, 0, bs, err
	}
	ap, err := r.u8()
	if err != nil {
		return 0, false, 0, bs, err
	}
	if ap > 1 {
		return 0, false, 0, bs, fmt.Errorf("netsite: rebalance reply applied flag %d", ap)
	}
	if fp, err = r.u64(); err != nil {
		return 0, false, 0, bs, err
	}
	if bs, err = readBalanceStats(r); err != nil {
		return 0, false, 0, bs, err
	}
	if err := r.done(); err != nil {
		return 0, false, 0, bs, err
	}
	return epoch, ap == 1, fp, bs, nil
}

// Rebalance re-fragments the deployment at the given epoch using the
// named partitioner (see fragment.ByName) parameterized by seed. The
// round is serialized against update rounds, so no mutation batch ever
// straddles the epoch switch from this coordinator. Sites that already
// reached the epoch no-op (idempotent broadcast); if every site had
// already passed it, Applied is false and Epoch reports where the
// deployment actually is — callers retry with a higher epoch.
func (c *Coordinator) Rebalance(epoch uint64, partitioner string, seed uint64) (RebalanceResult, WireStats, error) {
	return c.RebalanceContext(context.Background(), epoch, partitioner, seed)
}

// RebalanceContext is Rebalance honoring a context deadline or
// cancellation. Prefer a generous deadline: the sites rebuild the whole
// fragmentation before answering.
func (c *Coordinator) RebalanceContext(ctx context.Context, epoch uint64, partitioner string, seed uint64) (RebalanceResult, WireStats, error) {
	c.updMu.Lock()
	defer c.updMu.Unlock()
	return c.rebalanceLocked(ctx, epoch, partitioner, seed)
}

// rebalanceLocked is RebalanceContext with the round lock already held
// (SyncReplicas realigns epochs mid-sync through it).
func (c *Coordinator) rebalanceLocked(ctx context.Context, epoch uint64, partitioner string, seed uint64) (RebalanceResult, WireStats, error) {
	if _, err := fragment.ByName(partitioner, seed); err != nil {
		return RebalanceResult{}, WireStats{}, err
	}
	payload, err := encodeRebalanceRequest(epoch, len(c.conns), seed, partitioner)
	if err != nil {
		return RebalanceResult{}, WireStats{}, err
	}
	replies, _, _, st, err := c.roundtrip(ctx, kindRebalance, payload, nil)
	if err != nil {
		return RebalanceResult{}, st, err
	}
	var res RebalanceResult
	var fp0, maxEpoch uint64
	split, diverged := false, -1
	for i, resp := range replies {
		e, applied, fp, bs, err := decodeRebalanceReply(resp)
		if err != nil {
			return RebalanceResult{}, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
		if e > maxEpoch {
			maxEpoch = e
		}
		if i == 0 {
			res.Epoch, res.Stats, fp0 = e, bs, fp
		} else if e != res.Epoch {
			split = true
		} else if fp != fp0 && diverged < 0 {
			diverged = i
		}
		res.Applied = res.Applied || applied
	}
	// Either mismatch means the replicas are not serving one coherent
	// fragmentation. Both report the highest epoch observed so the caller
	// can retry at a strictly fresher epoch, forcing every replica to
	// rebuild: a retry settles a stale-epoch straggler, while a mismatch
	// that survives a forced rebuild is genuine graph divergence (a
	// replica restarted from stale files) that needs re-seeding.
	if split {
		return RebalanceResult{Epoch: maxEpoch}, st, fmt.Errorf("%w (sites ended rebalance at different epochs, max %d)", ErrReplicaDiverged, maxEpoch)
	}
	if diverged >= 0 {
		return RebalanceResult{Epoch: maxEpoch}, st, fmt.Errorf("%w (site %d fingerprint differs at epoch %d)", ErrReplicaDiverged, diverged, res.Epoch)
	}
	res.Stats.Epoch = res.Epoch
	st.Epoch = res.Epoch
	return res, st, nil
}
