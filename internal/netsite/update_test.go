package netsite

import (
	"sync"
	"testing"
	"time"

	"distreach/internal/cluster"
	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// pickEdge returns a random existing edge of g.
func pickEdge(g *graph.Graph, rng *gen.RNG) (graph.NodeID, graph.NodeID) {
	var edges [][2]graph.NodeID
	g.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, [2]graph.NodeID{u, v})
		return true
	})
	e := edges[rng.Intn(len(edges))]
	return e[0], e[1]
}

// TestUpdateWireCrossCheck is the randomized acceptance check for live
// updates: ~50 random fragmented graphs, each hit with a sequence of
// random edge inserts and deletes over real TCP. After every applied
// update,
//
//   - the wire result (changed flag + dirty set) must equal what an
//     independent replica fragmentation computes for the same op,
//   - the sites' (shared) fragmentation must still validate,
//   - wire query answers must equal a from-scratch DisReach on a
//     fragmentation rebuilt from the mutated graph, and the plain BFS
//     oracle on that graph.
//
// CI runs it under the race detector: the update path excludes concurrent
// query evaluation via the fragmentation lock.
func TestUpdateWireCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(91)
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(80)
		e := n + rng.Intn(3*n)
		seed := uint64(3000 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(6), 0.3, labels, seed)
		}
		nn := g.NumNodes()
		k := 1 + rng.Intn(5)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]int, nn)
		for v := range assign {
			assign[v] = fr.Owner(graph.NodeID(v))
		}
		// Independent replica: the separate-process form of a site, fed the
		// same updates locally. Its results must match the wire's exactly.
		mirror := g.Clone()
		rep, err := fragment.Build(mirror, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		sites, addrs, err := ServeFragmentation(fr)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Dial(addrs, 2*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			t.Fatal(err)
		}

		cl := cluster.New(k, cluster.NetModel{})
		for step := 0; step < 8; step++ {
			var u, v graph.NodeID
			op := UpdateInsert
			if rng.Intn(2) == 0 && mirror.NumEdges() > 0 {
				op = UpdateDelete
				u, v = pickEdge(mirror, rng)
			} else {
				u = graph.NodeID(rng.Intn(nn))
				v = graph.NodeID(rng.Intn(nn))
			}
			res, st, err := co.Update(op, u, v)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if st.FramesSent != int64(k) || st.FramesReceived != int64(k) {
				t.Fatalf("trial %d step %d: update round cost %d/%d frames, want %d each",
					trial, step, st.FramesSent, st.FramesReceived, k)
			}
			var repDirty []int
			var repChanged bool
			if op == UpdateInsert {
				repDirty, repChanged, err = rep.InsertEdge(u, v)
			} else {
				repDirty, repChanged, err = rep.DeleteEdge(u, v)
			}
			if err != nil {
				t.Fatalf("trial %d step %d: replica: %v", trial, step, err)
			}
			if res.Changed != repChanged {
				t.Fatalf("trial %d step %d: wire changed=%v replica=%v (%c %d->%d)",
					trial, step, res.Changed, repChanged, op, u, v)
			}
			if len(res.Dirty) != len(repDirty) {
				t.Fatalf("trial %d step %d: wire dirty %v, replica %v", trial, step, res.Dirty, repDirty)
			}
			for i := range res.Dirty {
				if res.Dirty[i] != repDirty[i] {
					t.Fatalf("trial %d step %d: wire dirty %v, replica %v", trial, step, res.Dirty, repDirty)
				}
			}
			if err := fr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: shared fragmentation invalid: %v", trial, step, err)
			}
			// From-scratch rebuild on the mutated graph: the wire answers
			// must match its DisReach and the plain BFS oracle.
			scratch, err := fragment.Build(mirror, assign, k)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 5; q++ {
				s := graph.NodeID(rng.Intn(nn))
				tt := graph.NodeID(rng.Intn(nn))
				got, _, err := co.Reach(s, tt)
				if err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				if want := core.DisReach(cl, scratch, s, tt, nil).Answer; got != want {
					t.Fatalf("trial %d step %d: qr(%d,%d) wire=%v from-scratch DisReach=%v",
						trial, step, s, tt, got, want)
				}
				if want := mirror.Reachable(s, tt); got != want {
					t.Fatalf("trial %d step %d: qr(%d,%d) wire=%v BFS oracle=%v",
						trial, step, s, tt, got, want)
				}
			}
			// One bounded query per step keeps the dist path honest too.
			s := graph.NodeID(rng.Intn(nn))
			tt := graph.NodeID(rng.Intn(nn))
			l := 1 + rng.Intn(6)
			got, _, _, err := co.ReachWithin(s, tt, l)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			d := mirror.Dist(s, tt)
			if want := d >= 0 && d <= l; got != want {
				t.Fatalf("trial %d step %d: qbr(%d,%d,%d) wire=%v oracle dist=%d",
					trial, step, s, tt, l, got, d)
			}
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// TestUpdateConcurrentWithQueries floods a deployment with queries while
// an updater mutates edges: no call may error or race (CI runs -race), and
// once the churn stops, answers must match a from-scratch oracle on the
// final graph.
func TestUpdateConcurrentWithQueries(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 480, Labels: []string{"A", "B"}, Seed: 95})
	fr, err := fragment.Random(g, 3, 95)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 5)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := gen.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := co.Reach(graph.NodeID(rng.Intn(120)), graph.NodeID(rng.Intn(120))); err != nil {
					errc <- err
					return
				}
			}
		}(uint64(200 + w))
	}
	rng := gen.NewRNG(96)
	for i := 0; i < 60; i++ {
		op := UpdateInsert
		if i%2 == 1 {
			op = UpdateDelete
		}
		if _, _, err := co.Update(op, graph.NodeID(rng.Intn(120)), graph.NodeID(rng.Intn(120))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Quiescent again: answers equal the oracle on the mutated graph.
	for q := 0; q < 30; q++ {
		s := graph.NodeID(rng.Intn(120))
		tt := graph.NodeID(rng.Intn(120))
		got, _, err := co.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := fr.Graph().Reachable(s, tt); got != want {
			t.Fatalf("after churn: qr(%d,%d) wire=%v oracle=%v", s, tt, got, want)
		}
	}
}

// TestUpdateOnBareFragmentSiteFails: a site built without a fragmentation
// replica must reject update frames with an error, not apply half of one.
func TestUpdateOnBareFragmentSiteFails(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 20, Edges: 60, Seed: 97})
	fr, err := fragment.Random(g, 2, 97)
	if err != nil {
		t.Fatal(err)
	}
	var sites []*Site
	var addrs []string
	for _, f := range fr.Fragments() {
		s, err := NewSite("127.0.0.1:0", f)
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, _, err := co.Update(UpdateInsert, 0, 1); err == nil {
		t.Fatal("update against bare-fragment sites must fail")
	}
	// Queries still work.
	if _, _, err := co.Reach(0, 19); err != nil {
		t.Fatal(err)
	}
}
