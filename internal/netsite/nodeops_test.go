package netsite

import (
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestNodeOpsWireCrossCheck drives random mixed mutation batches — edge
// inserts/deletes, node inserts/deletes — over the wire against 50 random
// deployments. After every batch, the wire result must equal what an
// independent replica computes for the same ops, the shared fragmentation
// must validate, and answers must match the BFS oracle on the mirror.
func TestNodeOpsWireCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(501)
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(50)
		e := n + rng.Intn(2*n)
		seed := uint64(6000 + trial)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		k := 1 + rng.Intn(4)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Independent replica: the separate-process form of a site, fed the
		// same batches locally. Placement must agree because both replicas
		// run the same deterministic partitioner over the same state.
		mirror := g.Clone()
		assign := make([]int, n)
		for v := range assign {
			assign[v] = fr.Owner(graph.NodeID(v))
		}
		rep, err := fragment.Build(mirror, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		sites, addrs, err := ServeFragmentation(fr)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Dial(addrs, 2*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			t.Fatal(err)
		}

		for step := 0; step < 6; step++ {
			nn := mirror.NumNodes()
			pick := func() graph.NodeID { return graph.NodeID(rng.Intn(nn)) }
			ops := make([]Op, 1+rng.Intn(3))
			for i := range ops {
				switch rng.Intn(6) {
				case 0, 1:
					ops[i] = Op{Kind: OpInsertEdge, U: pick(), V: pick()}
				case 2:
					ops[i] = Op{Kind: OpDeleteEdge, U: pick(), V: pick()}
				case 3, 4:
					ops[i] = Op{Kind: OpInsertNode, Label: labels[rng.Intn(3)], Frag: -1}
				case 5:
					ops[i] = Op{Kind: OpDeleteNode, U: pick()}
				}
			}
			res, st, err := co.Apply(ops)
			repRes, repErr := rep.Apply(ops)
			if (err == nil) != (repErr == nil) {
				t.Fatalf("trial %d step %d: wire err=%v, replica err=%v", trial, step, err, repErr)
			}
			if err != nil {
				continue // both rejected the batch: atomicity on both sides
			}
			if st.FramesSent != int64(k) || st.FramesReceived != int64(k) {
				t.Fatalf("trial %d step %d: update round cost %d/%d frames, want %d each",
					trial, step, st.FramesSent, st.FramesReceived, k)
			}
			if res.Changed != repRes.Changed {
				t.Fatalf("trial %d step %d: wire changed=%v replica=%v", trial, step, res.Changed, repRes.Changed)
			}
			if len(res.Dirty) != len(repRes.Dirty) {
				t.Fatalf("trial %d step %d: wire dirty %v, replica %v", trial, step, res.Dirty, repRes.Dirty)
			}
			for i := range res.Dirty {
				if res.Dirty[i] != repRes.Dirty[i] {
					t.Fatalf("trial %d step %d: wire dirty %v, replica %v", trial, step, res.Dirty, repRes.Dirty)
				}
			}
			if len(res.NewIDs) != len(repRes.NewIDs) {
				t.Fatalf("trial %d step %d: wire new IDs %v, replica %v", trial, step, res.NewIDs, repRes.NewIDs)
			}
			for i := range res.NewIDs {
				if res.NewIDs[i] != repRes.NewIDs[i] {
					t.Fatalf("trial %d step %d: wire new IDs %v, replica %v", trial, step, res.NewIDs, repRes.NewIDs)
				}
			}
			if err := fr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: shared fragmentation invalid: %v", trial, step, err)
			}
			if err := rep.Validate(); err != nil {
				t.Fatalf("trial %d step %d: replica invalid: %v", trial, step, err)
			}
			// Balance stats ride the reply and must match the replica's view.
			if want := rep.BalanceStats(); res.Stats.MaxSize != want.MaxSize || res.Stats.Vf != want.Vf ||
				res.Stats.CrossEdges != want.CrossEdges || res.Stats.TotalSize != want.TotalSize {
				t.Fatalf("trial %d step %d: wire stats %+v, replica %+v", trial, step, res.Stats, want)
			}
			for q := 0; q < 4; q++ {
				s := graph.NodeID(rng.Intn(mirror.NumNodes()))
				tt := graph.NodeID(rng.Intn(mirror.NumNodes()))
				if mirror.Deleted(s) || mirror.Deleted(tt) {
					continue
				}
				got, _, err := co.Reach(s, tt)
				if err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				if want := mirror.Reachable(s, tt); got != want {
					t.Fatalf("trial %d step %d: qr(%d,%d) wire=%v BFS oracle=%v",
						trial, step, s, tt, got, want)
				}
			}
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// TestApplyTransactional: one multi-op frame applies atomically — a batch
// whose last op is invalid changes nothing on any site.
func TestApplyTransactional(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 30, Edges: 90, Labels: []string{"A"}, Seed: 503})
	fr, err := fragment.Random(g, 3, 503)
	if err != nil {
		t.Fatal(err)
	}
	co, cleanup := deployFr(t, fr)
	defer cleanup()

	edges := g.NumEdges()
	_, _, err = co.Apply([]Op{
		{Kind: OpInsertEdge, U: 0, V: 29},
		{Kind: OpInsertEdge, U: 1, V: 999}, // out of range: whole batch rejected
	})
	if err == nil {
		t.Fatal("invalid batch must be rejected")
	}
	if g.NumEdges() != edges {
		t.Fatalf("rejected batch mutated the deployment: %d edges, want %d", g.NumEdges(), edges)
	}
	// A valid batch inserting and wiring a node applies as one unit.
	res, _, err := co.Apply([]Op{{Kind: OpInsertNode, Label: "B", Frag: -1}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.NewIDs[0]
	res2, _, err := co.Apply([]Op{
		{Kind: OpInsertEdge, U: 0, V: id},
		{Kind: OpInsertEdge, U: id, V: 29},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Changed {
		t.Fatal("wiring batch reported no change")
	}
	got, _, err := co.Reach(0, 29)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("path through the inserted node not found")
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteNodeWire: deleting a cut node over the wire severs
// reachability and cascades its incident edges everywhere.
func TestDeleteNodeWire(t *testing.T) {
	// 0 -> 1 -> 2: node 1 is the cut.
	b := graph.NewBuilder(3)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("C")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	fr, err := fragment.Contiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	co, cleanup := deployFr(t, fr)
	defer cleanup()

	if got, _, err := co.Reach(0, 2); err != nil || !got {
		t.Fatalf("precondition qr(0,2): %v %v", got, err)
	}
	res, _, err := co.DeleteNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed {
		t.Fatal("DeleteNode reported no change")
	}
	if got, _, err := co.Reach(0, 2); err != nil || got {
		t.Fatalf("qr(0,2) after cut deletion = %v (err %v), want false", got, err)
	}
	// Idempotent on re-delivery semantics: a second delete is a no-op.
	res2, _, err := co.DeleteNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Changed {
		t.Fatal("double delete reported a change")
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}
