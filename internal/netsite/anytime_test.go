package netsite

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// stragglerDeployment builds the two-component skew topology the anytime
// protocol is designed for: a chain a0→…→a(na-1) alternating between
// fragments 0 and 1 (fast sites), and an isolated chain b0→…→b(nb-1)
// owned entirely by fragment 2 (the straggler). Reachability inside the
// a-chain has its whole certificate on the fast sites, so an anytime round
// can answer without ever hearing from the straggler.
func stragglerDeployment(t *testing.T, na, nb int) (*fragment.Fragmentation, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(na + nb)
	a0 := b.AddNodes(na, "A")
	b0 := b.AddNodes(nb, "B")
	for i := 0; i < na-1; i++ {
		b.AddEdge(a0+graph.NodeID(i), a0+graph.NodeID(i+1))
	}
	for i := 0; i < nb-1; i++ {
		b.AddEdge(b0+graph.NodeID(i), b0+graph.NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, na+nb)
	for i := 0; i < na; i++ {
		assign[int(a0)+i] = i % 2
	}
	for i := 0; i < nb; i++ {
		assign[int(b0)+i] = 2
	}
	fr, err := fragment.Build(g, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	return fr, a0, b0
}

// serveSkewed starts one site per fragment with per-site service delays.
func serveSkewed(t *testing.T, fr *fragment.Fragmentation, delays []time.Duration) ([]*Site, []string) {
	t.Helper()
	rep := fragment.NewReplica(fr)
	sites := make([]*Site, 0, fr.Card())
	addrs := make([]string, 0, fr.Card())
	for i, f := range fr.Fragments() {
		s, err := NewSiteReplica("127.0.0.1:0", rep, f.ID, SiteOptions{Delay: delays[i]})
		if err != nil {
			for _, prev := range sites {
				prev.Close()
			}
			t.Fatal(err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	return sites, addrs
}

// TestAnytimeEarlyTermination pins the protocol's point: with one site at
// a 10x+ service delay, a reach query whose certificate avoids that site
// answers at fast-site latency (EarlyTerminated, cancel broadcast,
// straggler histogram bumped), while a false answer — which needs every
// site's complete equations — still waits the straggler out.
func TestAnytimeEarlyTermination(t *testing.T) {
	const slow = 250 * time.Millisecond
	fr, a0, b0 := stragglerDeployment(t, 12, 4)
	sites, addrs := serveSkewed(t, fr, []time.Duration{0, 0, slow})
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if !co.Anytime() {
		t.Fatal("anytime must be on by default")
	}

	// True inside the fast chain: decided before the straggler answers.
	ok, st, err := co.Reach(a0, a0+11)
	if err != nil || !ok {
		t.Fatalf("reach(a0,a11) = %v, %v; want true", ok, err)
	}
	if !st.EarlyTerminated {
		t.Fatalf("true answer with a certificate on fast sites must early-terminate: %+v", st)
	}
	if st.FirstAnswer >= slow-50*time.Millisecond {
		t.Fatalf("first answer took %v, straggler delay is %v — no early win", st.FirstAnswer, slow)
	}
	if st.PartialFrames < 1 {
		t.Fatalf("no partial frames on an early-terminated round: %+v", st)
	}
	if st.CancelFrames < 1 {
		t.Fatalf("early termination must cancel the straggler: %+v", st)
	}

	// False across components: every site's equations are needed, so the
	// full round — straggler included — is waited out.
	ok, st, err = co.Reach(a0+11, a0)
	if err != nil || ok {
		t.Fatalf("reach(a11,a0) = %v, %v; want false", ok, err)
	}
	if st.EarlyTerminated {
		t.Fatalf("a false answer can never early-terminate: %+v", st)
	}
	if st.RoundTrip < slow-50*time.Millisecond {
		t.Fatalf("false answer finished in %v, before the straggler (%v) could answer", st.RoundTrip, slow)
	}

	// All-true reach batch: early, at fast-site latency.
	answers, st, err := co.Batch([]BatchQuery{
		{Class: ClassReach, S: a0, T: a0 + 5},
		{Class: ClassReach, S: a0 + 1, T: a0 + 7},
	})
	if err != nil || !answers[0].Answer || !answers[1].Answer {
		t.Fatalf("all-true batch: %+v, %v", answers, err)
	}
	if !st.EarlyTerminated || st.FirstAnswer >= slow-50*time.Millisecond {
		t.Fatalf("all-true batch must early-terminate fast: %+v", st)
	}

	// A batch with one false query waits the full round.
	answers, st, err = co.Batch([]BatchQuery{
		{Class: ClassReach, S: a0, T: a0 + 5},
		{Class: ClassReach, S: a0, T: b0},
	})
	if err != nil || !answers[0].Answer || answers[1].Answer {
		t.Fatalf("mixed-truth batch: %+v, %v", answers, err)
	}
	if st.EarlyTerminated || st.RoundTrip < slow-50*time.Millisecond {
		t.Fatalf("a batch with a false member cannot early-terminate: %+v", st)
	}

	as := co.AnytimeStats()
	if as.EarlyTerminations < 2 || as.CancelsSent < 1 || as.PartialFrames < 1 {
		t.Fatalf("anytime counters not accumulating: %+v", as)
	}
	if len(as.Stragglers) != 3 || as.Stragglers[2] < 1 {
		t.Fatalf("straggler histogram must blame site 2: %+v", as.Stragglers)
	}
	if as.Stragglers[2] <= as.Stragglers[0] && as.Stragglers[2] <= as.Stragglers[1] {
		t.Fatalf("site 2 must dominate the straggler histogram: %+v", as.Stragglers)
	}

	// Off means off: the same query pays the full round again.
	co.SetAnytime(false)
	ok, st, err = co.Reach(a0, a0+11)
	if err != nil || !ok || st.EarlyTerminated {
		t.Fatalf("full round: %v %+v %v", ok, st, err)
	}
	if st.RoundTrip < slow-50*time.Millisecond {
		t.Fatalf("full round finished in %v, before the straggler (%v)", st.RoundTrip, slow)
	}
	if st.FirstAnswer != st.RoundTrip {
		t.Fatalf("full rounds define FirstAnswer = RoundTrip: %+v", st)
	}
}

// TestAnytimeCrossCheck is the anytime acceptance check: 50 random
// fragmented graphs — alternating indexed and direct evaluation — each
// driven through wire edge churn and a live rebalance, with every query
// evaluated both anytime and full-round and both compared to the local
// oracle. A sprinkling of context-cancelled queries exercises mid-query
// cancellation under the same churn. Zero mismatches tolerated.
func TestAnytimeCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(411)
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(70)
		e := n + rng.Intn(3*n)
		seed := uint64(9100 + trial)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 1:
			g = gen.PowerLaw(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		case 2:
			g = gen.Layered(2+rng.Intn(4), 3+rng.Intn(8), 0.3, labels, seed)
		}
		nn := g.NumNodes()
		k := 1 + rng.Intn(4)
		fr, err := fragment.Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 1 {
			fr.EnableReachIndex(1 << 20) // indexed trials; even trials run direct
		}
		mirror := g.Clone()
		sites, addrs, err := ServeFragmentation(fr)
		if err != nil {
			t.Fatal(err)
		}
		co, err := Dial(addrs, 2*time.Second)
		if err != nil {
			for _, s := range sites {
				s.Close()
			}
			t.Fatal(err)
		}

		epoch := uint64(0)
		for step := 0; step < 4; step++ {
			// Wire edge churn, mirrored locally for the oracle.
			for i := 0; i < 1+rng.Intn(3); i++ {
				u := graph.NodeID(rng.Intn(nn))
				v := graph.NodeID(rng.Intn(nn))
				if rng.Intn(3) == 0 {
					if _, _, err := co.Update(UpdateDelete, u, v); err != nil {
						t.Fatalf("trial %d: delete(%d,%d): %v", trial, u, v, err)
					}
					mirror.DeleteEdge(u, v)
				} else {
					if _, _, err := co.Update(UpdateInsert, u, v); err != nil {
						t.Fatalf("trial %d: insert(%d,%d): %v", trial, u, v, err)
					}
					mirror.InsertEdge(u, v)
				}
			}
			if step == 2 {
				epoch++
				if _, _, err := co.Rebalance(epoch, "edgecut", seed); err != nil {
					t.Fatalf("trial %d: rebalance: %v", trial, err)
				}
			}
			for q := 0; q < 5; q++ {
				s := graph.NodeID(rng.Intn(nn))
				tt := graph.NodeID(rng.Intn(nn))
				want := mirror.Reachable(s, tt)
				co.SetAnytime(true)
				anyAns, ast, err := co.Reach(s, tt)
				if err != nil {
					t.Fatalf("trial %d step %d: anytime reach(%d,%d): %v", trial, step, s, tt, err)
				}
				co.SetAnytime(false)
				fullAns, _, err := co.Reach(s, tt)
				if err != nil {
					t.Fatalf("trial %d step %d: full reach(%d,%d): %v", trial, step, s, tt, err)
				}
				if anyAns != want || fullAns != want {
					t.Fatalf("trial %d step %d: reach(%d,%d) anytime=%v full=%v oracle=%v (early=%v)",
						trial, step, s, tt, anyAns, fullAns, want, ast.EarlyTerminated)
				}
			}
			// All-reach batch, anytime vs full-round vs oracle.
			qs := make([]BatchQuery, 4)
			for i := range qs {
				qs[i] = BatchQuery{Class: ClassReach, S: graph.NodeID(rng.Intn(nn)), T: graph.NodeID(rng.Intn(nn))}
			}
			co.SetAnytime(true)
			anyAns, _, err := co.Batch(qs)
			if err != nil {
				t.Fatalf("trial %d step %d: anytime batch: %v", trial, step, err)
			}
			co.SetAnytime(false)
			fullAns, _, err := co.Batch(qs)
			if err != nil {
				t.Fatalf("trial %d step %d: full batch: %v", trial, step, err)
			}
			for i, q := range qs {
				want := mirror.Reachable(q.S, q.T)
				if anyAns[i].Answer != want || fullAns[i].Answer != want {
					t.Fatalf("trial %d step %d: batch q%d (%d,%d) anytime=%v full=%v oracle=%v",
						trial, step, i, q.S, q.T, anyAns[i].Answer, fullAns[i].Answer, want)
				}
			}
			// Mid-query cancellation under churn: a context cancelled while
			// the round is in flight must yield either the right answer or a
			// context error — never a wrong answer — and leave no pending
			// entries behind.
			co.SetAnytime(true)
			ctx, cancel := context.WithCancel(context.Background())
			s := graph.NodeID(rng.Intn(nn))
			tt := graph.NodeID(rng.Intn(nn))
			done := make(chan struct{})
			var gotAns bool
			var gotErr error
			go func() {
				gotAns, _, gotErr = co.ReachContext(ctx, s, tt)
				close(done)
			}()
			if rng.Intn(2) == 0 {
				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
			}
			cancel()
			<-done
			if gotErr == nil && gotAns != mirror.Reachable(s, tt) {
				t.Fatalf("trial %d step %d: cancelled reach(%d,%d) answered wrongly %v", trial, step, s, tt, gotAns)
			}
			if gotErr != nil && !errors.Is(gotErr, context.Canceled) {
				t.Fatalf("trial %d step %d: cancelled reach(%d,%d): %v", trial, step, s, tt, gotErr)
			}
		}
		if n := co.pendingTotal(); n != 0 {
			t.Fatalf("trial %d: %d pending entries leaked", trial, n)
		}
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

// waitPendingDrained polls until the coordinator's pending tables are
// empty, failing after a deadline.
func waitPendingDrained(t *testing.T, co *Coordinator) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for co.pendingTotal() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d pending entries never drained", co.pendingTotal())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnytimePendingNoLeak drives anytime rounds through the three ways a
// query can die mid-stream — context timeout, context cancellation, and a
// site dropping — and checks that the pending tables drain, late frames
// are discarded, and no goroutine outlives the shutdown.
func TestAnytimePendingNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	fr, a0, _ := stragglerDeployment(t, 10, 4)
	sites, addrs := serveSkewed(t, fr, []time.Duration{200 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond})
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: timeouts mid-stream. The unreachable pair needs every final,
	// so the 30ms deadline always fires first.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, _, err := co.ReachContext(ctx, a0+9, a0); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("timed-out query returned %v, want deadline exceeded", err)
			}
		}()
	}
	wg.Wait()
	waitPendingDrained(t, co)

	// Phase 2: explicit cancellation mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := co.ReachContext(ctx, a0+9, a0)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	waitPendingDrained(t, co)

	// Phase 3: a site drops mid-stream. In-flight rounds must fail
	// promptly, not hang on the dead connection.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := co.Reach(a0+9, a0)
			done <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // frames are at the sites, mid-delay
	sites[2].Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("a query spanning a dropped site cannot answer false without it")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("query hung after its site dropped")
		}
	}
	waitPendingDrained(t, co)

	co.Close()
	for _, s := range sites {
		s.Close()
	}
	if n := countGoroutines(t, before+2); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, n)
	}
}
