package netsite

import (
	"net"
	"testing"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/rx"
)

func deploy(t *testing.T, g *graph.Graph, k int, seed uint64) (*Coordinator, func()) {
	t.Helper()
	fr, err := fragment.Random(g, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return co, func() {
		co.Close()
		for _, s := range sites {
			s.Close()
		}
	}
}

func TestTCPReachMatchesOracle(t *testing.T) {
	g := gen.PowerLaw(gen.Config{Nodes: 300, Edges: 1200, Seed: 41})
	co, done := deploy(t, g, 4, 41)
	defer done()
	rng := gen.NewRNG(42)
	for q := 0; q < 60; q++ {
		s := graph.NodeID(rng.Intn(300))
		tt := graph.NodeID(rng.Intn(300))
		got, st, err := co.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := g.Reachable(s, tt); got != want {
			t.Fatalf("query %d: tcp=%v oracle=%v (s=%d t=%d)", q, got, want, s, tt)
		}
		if s != tt && (st.BytesSent == 0 || st.BytesReceived == 0) {
			t.Fatalf("no wire traffic recorded: %+v", st)
		}
	}
}

func TestTCPDistMatchesOracle(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 150, Edges: 450, Seed: 43})
	co, done := deploy(t, g, 3, 43)
	defer done()
	rng := gen.NewRNG(44)
	for q := 0; q < 60; q++ {
		s := graph.NodeID(rng.Intn(150))
		tt := graph.NodeID(rng.Intn(150))
		l := rng.Intn(10)
		got, dist, _, err := co.ReachWithin(s, tt, l)
		if err != nil {
			t.Fatal(err)
		}
		d := g.Dist(s, tt)
		want := d >= 0 && d <= l
		if got != want {
			t.Fatalf("query %d: tcp=%v oracle dist=%d l=%d", q, got, d, l)
		}
		if want && dist != int64(d) {
			t.Fatalf("query %d: distance %d, oracle %d", q, dist, d)
		}
		if !want && dist != bes.Inf && dist <= int64(l) {
			t.Fatalf("query %d: inconsistent distance %d", q, dist)
		}
	}
}

func TestTCPRegexMatchesOracle(t *testing.T) {
	labels := []string{"A", "B", "C"}
	g := gen.Uniform(gen.Config{Nodes: 120, Edges: 480, Labels: labels, Seed: 45})
	co, done := deploy(t, g, 5, 45)
	defer done()
	rng := gen.NewRNG(46)
	for q := 0; q < 40; q++ {
		s := graph.NodeID(rng.Intn(120))
		tt := graph.NodeID(rng.Intn(120))
		a := automaton.Random(rng, 2+rng.Intn(6), 4+rng.Intn(10), labels)
		got, _, err := co.ReachRegex(s, tt, a)
		if err != nil {
			t.Fatal(err)
		}
		if want := automaton.Eval(g, s, tt, a); got != want {
			t.Fatalf("query %d: tcp=%v oracle=%v", q, got, want)
		}
	}
	// A parsed expression travels the same path.
	a := automaton.FromRegex(rx.MustParse("A (B|C)*"))
	if _, _, err := co.ReachRegex(0, 119, a); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConcurrentCoordinators(t *testing.T) {
	g := gen.PowerLaw(gen.Config{Nodes: 200, Edges: 800, Seed: 47})
	fr, err := fragment.Random(g, 3, 47)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	// Several coordinators sharing the sites, issuing queries concurrently.
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed uint64) {
			co, err := Dial(addrs, 2*time.Second)
			if err != nil {
				errc <- err
				return
			}
			defer co.Close()
			rng := gen.NewRNG(seed)
			for q := 0; q < 25; q++ {
				s := graph.NodeID(rng.Intn(200))
				tt := graph.NodeID(rng.Intn(200))
				got, _, err := co.Reach(s, tt)
				if err != nil {
					errc <- err
					return
				}
				if got != g.Reachable(s, tt) {
					errc <- err
					return
				}
			}
			errc <- nil
		}(uint64(w + 100))
	}
	for w := 0; w < 4; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 10, Edges: 20, Seed: 48})
	fr, err := fragment.Random(g, 2, 48)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	// Hand-roll a malformed frame on a raw connection: an unknown kind must
	// come back as an error frame echoing the request ID, and the
	// connection must survive for a coordinator dialing afterwards.
	raw, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := writeFrame(raw, 77, 'z', []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	id, kind, payload, _, err := readFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if kind != kindError || len(payload) == 0 {
		t.Fatalf("expected error frame, got kind %q", kind)
	}
	if id != 77 {
		t.Fatalf("error frame echoes id %d, want 77", id)
	}
	co, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if got, _, err := co.Reach(0, 9); err != nil {
		t.Fatal(err)
	} else if want := g.Reachable(0, 9); got != want {
		t.Fatalf("after error frame: %v want %v", got, want)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial([]string{"127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestSiteCrashSurfacesError(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 30, Edges: 90, Seed: 49})
	fr, err := fragment.Random(g, 2, 49)
	if err != nil {
		t.Fatal(err)
	}
	sites, addrs, err := ServeFragmentation(fr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, _, err := co.Reach(0, 29); err != nil {
		t.Fatalf("healthy round failed: %v", err)
	}
	// Kill one site: the next query must fail loudly, not hang or lie.
	sites[1].Close()
	if _, _, err := co.Reach(0, 29); err == nil {
		t.Fatal("query against a dead site must return an error")
	}
	sites[0].Close()
}
