package netsite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)} {
		var buf bytes.Buffer
		n, err := writeFrame(&buf, 42, kindReach, payload)
		if err != nil {
			t.Fatal(err)
		}
		if n != buf.Len() {
			t.Fatalf("writeFrame reported %d bytes, wrote %d", n, buf.Len())
		}
		id, kind, got, rn, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if id != 42 || kind != kindReach || !bytes.Equal(got, payload) || rn != n {
			t.Fatalf("round trip: id=%d kind=%q len=%d n=%d", id, kind, len(got), rn)
		}
	}
}

// rawHeader builds just a length prefix, for malformed-frame tests.
func rawHeader(size uint32) []byte {
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, size)
	return hdr
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	_, _, _, _, err := readFrame(bytes.NewReader(rawHeader(0)))
	if err == nil {
		t.Fatal("zero-length frame must be rejected")
	}
}

func TestReadFrameRejectsShortFrame(t *testing.T) {
	// Shorter than id+kind: legal frames carry at least 5 bytes after the
	// length prefix.
	in := append(rawHeader(3), 1, 2, 3)
	_, _, _, _, err := readFrame(bytes.NewReader(in))
	if err == nil {
		t.Fatal("frame shorter than header must be rejected")
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	_, _, _, _, err := readFrame(bytes.NewReader(rawHeader(maxFrame + 1)))
	if err == nil {
		t.Fatal("oversized length prefix must be rejected")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	// Header promises 100 bytes, the stream ends after 10: the reader must
	// fail with an unexpected-EOF class error, not block or fabricate.
	in := append(rawHeader(100), bytes.Repeat([]byte{7}, 10)...)
	_, _, _, _, err := readFrame(bytes.NewReader(in))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	_, _, _, _, err := readFrame(bytes.NewReader([]byte{1, 0}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}
