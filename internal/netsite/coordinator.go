package netsite

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/graph"
)

// Coordinator is the site Sc: it holds one TCP connection per worker site
// and evaluates queries by posting them to every site in parallel and
// assembling the returned partial answers. It is safe for concurrent use,
// and concurrent queries are multiplexed over the same connections: each
// query round is tagged with a request ID, sites answer in whatever order
// they finish, and a per-connection reader demultiplexes replies back to
// the waiting queries. Many queries can be in flight at once.
type Coordinator struct {
	conns  []*siteConn
	nextID atomic.Uint32
	updMu  sync.Mutex // serializes update rounds; see Coordinator.Update
}

// wireReply is one demultiplexed response frame.
type wireReply struct {
	kind    byte
	payload []byte
	n       int // bytes read off the wire for this frame
}

// siteConn is one multiplexed connection to a worker site: a write mutex
// serializes outgoing frames, a reader goroutine routes response frames to
// the pending query that posted the matching request ID. When the reader
// stops (connection dropped, site closed, corrupt frame) every pending
// query fails promptly with the cause — in-flight queries never hang.
type siteConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes whole-frame writes

	mu      sync.Mutex
	pending map[uint32]chan wireReply
	err     error // sticky; set once when the reader loop exits
}

func newSiteConn(conn net.Conn) *siteConn {
	sc := &siteConn{conn: conn, pending: make(map[uint32]chan wireReply)}
	go sc.readLoop()
	return sc
}

func (sc *siteConn) readLoop() {
	for {
		id, kind, payload, n, err := readFrame(sc.conn)
		if err != nil {
			sc.fail(err)
			return
		}
		sc.mu.Lock()
		ch, ok := sc.pending[id]
		if ok {
			delete(sc.pending, id)
		}
		sc.mu.Unlock()
		if ok {
			ch <- wireReply{kind: kind, payload: payload, n: n}
		}
		// A reply with no pending query is dropped: its query already
		// failed on another site's error and gave up on this one.
	}
}

// fail records the terminal error and wakes every pending query: a closed
// reply channel tells the waiter to read sc.err.
func (sc *siteConn) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	pend := sc.pending
	sc.pending = make(map[uint32]chan wireReply)
	sc.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// post registers id in the pending table and sends the request frame. The
// registration happens before the write so a fast reply can never race
// past its waiter.
func (sc *siteConn) post(id uint32, kind byte, payload []byte) (chan wireReply, int, error) {
	ch := make(chan wireReply, 1)
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return nil, 0, err
	}
	sc.pending[id] = ch
	sc.mu.Unlock()
	sc.wmu.Lock()
	n, err := writeFrame(sc.conn, id, kind, payload)
	sc.wmu.Unlock()
	if err != nil {
		// A failed write may have flushed part of the frame, desyncing the
		// length-prefixed stream: poison the whole connection rather than
		// let later queries parse garbage.
		sc.conn.Close()
		sc.fail(err)
		return nil, 0, err
	}
	return ch, n, nil
}

// drop abandons a pending request (context deadline or cancellation): the
// reply, if it ever arrives, is discarded by the read loop.
func (sc *siteConn) drop(id uint32) {
	sc.mu.Lock()
	delete(sc.pending, id)
	sc.mu.Unlock()
}

// lastErr reports the sticky reader error, if any.
func (sc *siteConn) lastErr() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.err
}

// Dial connects to the given site addresses.
func Dial(addrs []string, timeout time.Duration) (*Coordinator, error) {
	c := &Coordinator{}
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netsite: dial %s: %w", a, err)
		}
		c.conns = append(c.conns, newSiteConn(conn))
	}
	return c, nil
}

// Close shuts down all site connections; in-flight queries fail.
func (c *Coordinator) Close() error {
	var first error
	for _, sc := range c.conns {
		if sc != nil {
			if err := sc.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// WireStats is the on-the-wire accounting of one query round (or one
// whole batch round; see Coordinator.Batch).
type WireStats struct {
	BytesSent      int64         // query frames to all sites
	BytesReceived  int64         // partial-answer frames
	FramesSent     int64         // request frames; one per site per round
	FramesReceived int64         // response frames; one per site per round
	RoundTrip      time.Duration // slowest site's post+reply wall time

	// Touched lists, sorted, the sites (== fragment indices) whose partial
	// answers the query's solution actually depends on — the dependency
	// closure of the source variable (see core.TouchedReach). An answer
	// cache keyed on it can evict precisely when a fragment changes. Nil
	// for rounds without that notion (batches report it per query, updates
	// report a dirty set instead).
	Touched []int
}

// roundtrip posts one frame to every site in parallel and collects one
// response frame from each. Concurrent rounds interleave freely: each
// draws a fresh request ID and waits only on its own replies. A context
// deadline or cancellation abandons the round promptly: pending requests
// are dropped and late replies are discarded.
func (c *Coordinator) roundtrip(ctx context.Context, kind byte, payload []byte) ([][]byte, WireStats, error) {
	id := c.nextID.Add(1)
	start := time.Now()
	replies := make([][]byte, len(c.conns))
	errs := make([]error, len(c.conns))
	var sent, recv, fsent, frecv atomic.Int64
	var wg sync.WaitGroup
	for i, sc := range c.conns {
		wg.Add(1)
		go func(i int, sc *siteConn) {
			defer wg.Done()
			ch, n, err := sc.post(id, kind, payload)
			if err != nil {
				errs[i] = fmt.Errorf("site %d: %w", i, err)
				return
			}
			sent.Add(int64(n))
			fsent.Add(1)
			var r wireReply
			var ok bool
			select {
			case r, ok = <-ch:
			case <-ctx.Done():
				sc.drop(id)
				errs[i] = fmt.Errorf("site %d: %w", i, ctx.Err())
				return
			}
			if !ok {
				err := sc.lastErr()
				if err == nil {
					err = fmt.Errorf("connection closed")
				}
				errs[i] = fmt.Errorf("site %d: %w", i, err)
				return
			}
			switch r.kind {
			case kindAnswer:
				recv.Add(int64(r.n))
				frecv.Add(1)
				replies[i] = r.payload
			case kindError:
				errs[i] = fmt.Errorf("site %d: %s", i, r.payload)
			default:
				errs[i] = fmt.Errorf("site %d: unexpected frame kind %q", i, r.kind)
			}
		}(i, sc)
	}
	wg.Wait()
	st := WireStats{
		BytesSent:      sent.Load(),
		BytesReceived:  recv.Load(),
		FramesSent:     fsent.Load(),
		FramesReceived: frecv.Load(),
		RoundTrip:      time.Since(start),
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return replies, st, nil
}

// Reach evaluates qr(s, t) over the connected sites.
func (c *Coordinator) Reach(s, t graph.NodeID) (bool, WireStats, error) {
	return c.ReachContext(context.Background(), s, t)
}

// ReachContext is Reach honoring a context deadline or cancellation.
func (c *Coordinator) ReachContext(ctx context.Context, s, t graph.NodeID) (bool, WireStats, error) {
	if s == t {
		return true, WireStats{}, nil
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	replies, st, err := c.roundtrip(ctx, kindReach, payload)
	if err != nil {
		return false, st, err
	}
	partials := make([]*core.ReachPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.ReachPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	st.Touched = core.TouchedReach(partials, s)
	return core.SolveReach(partials, s), st, nil
}

// ReachWithin evaluates qbr(s, t, l); it returns the answer and the exact
// distance when within l (bes.Inf otherwise).
func (c *Coordinator) ReachWithin(s, t graph.NodeID, l int) (bool, int64, WireStats, error) {
	return c.ReachWithinContext(context.Background(), s, t, l)
}

// ReachWithinContext is ReachWithin honoring a context deadline or
// cancellation.
func (c *Coordinator) ReachWithinContext(ctx context.Context, s, t graph.NodeID, l int) (bool, int64, WireStats, error) {
	if s == t {
		return l >= 0, 0, WireStats{}, nil
	}
	if l <= 0 {
		return false, bes.Inf, WireStats{}, nil
	}
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	binary.LittleEndian.PutUint32(payload[8:], uint32(l))
	replies, st, err := c.roundtrip(ctx, kindDist, payload)
	if err != nil {
		return false, bes.Inf, st, err
	}
	partials := make([]*core.DistPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.DistPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, bes.Inf, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	st.Touched = core.TouchedDist(partials, s)
	d := core.SolveDist(partials, s)
	return d <= int64(l), d, st, nil
}

// ReachRegex evaluates qrr(s, t, R) for the query automaton a.
func (c *Coordinator) ReachRegex(s, t graph.NodeID, a *automaton.Automaton) (bool, WireStats, error) {
	return c.ReachRegexContext(context.Background(), s, t, a)
}

// ReachRegexContext is ReachRegex honoring a context deadline or
// cancellation.
func (c *Coordinator) ReachRegexContext(ctx context.Context, s, t graph.NodeID, a *automaton.Automaton) (bool, WireStats, error) {
	if s == t && a.AcceptsLabels(nil) {
		return true, WireStats{}, nil
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		return false, WireStats{}, err
	}
	payload := make([]byte, 8, 8+len(ab))
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	payload = append(payload, ab...)
	replies, st, err := c.roundtrip(ctx, kindRPQ, payload)
	if err != nil {
		return false, st, err
	}
	partials := make([]*core.RPQPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.RPQPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	st.Touched = core.TouchedRPQ(partials, s, a.NumStates())
	return core.SolveRPQ(partials, s, a), st, nil
}
