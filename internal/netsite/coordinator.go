package netsite

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/graph"
)

// Coordinator is the site Sc: it holds one TCP connection per worker site
// and evaluates queries by posting them to every site in parallel and
// assembling the returned partial answers. It is safe for concurrent use;
// concurrent queries serialize per connection.
type Coordinator struct {
	mu    sync.Mutex // serializes query rounds (one in-flight frame per conn)
	conns []net.Conn
}

// Dial connects to the given site addresses.
func Dial(addrs []string, timeout time.Duration) (*Coordinator, error) {
	c := &Coordinator{}
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netsite: dial %s: %w", a, err)
		}
		c.conns = append(c.conns, conn)
	}
	return c, nil
}

// Close shuts down all site connections.
func (c *Coordinator) Close() error {
	var first error
	for _, conn := range c.conns {
		if conn != nil {
			if err := conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// WireStats is the on-the-wire accounting of one query round.
type WireStats struct {
	BytesSent     int64         // query frames to all sites
	BytesReceived int64         // partial-answer frames
	RoundTrip     time.Duration // slowest site's post+reply wall time
}

// roundtrip posts one frame to every site in parallel and collects one
// response frame from each.
func (c *Coordinator) roundtrip(kind byte, payload []byte) ([][]byte, WireStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var st WireStats
	replies := make([][]byte, len(c.conns))
	errs := make([]error, len(c.conns))
	var sent, recv int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i, conn := range c.conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			n, err := writeFrame(conn, kind, payload)
			if err != nil {
				errs[i] = err
				return
			}
			k, resp, rn, err := readFrame(conn)
			if err != nil {
				errs[i] = err
				return
			}
			if k == kindError {
				errs[i] = fmt.Errorf("site %d: %s", i, resp)
				return
			}
			if k != kindAnswer {
				errs[i] = fmt.Errorf("site %d: unexpected frame kind %q", i, k)
				return
			}
			replies[i] = resp
			mu.Lock()
			sent += int64(n)
			recv += int64(rn)
			mu.Unlock()
		}(i, conn)
	}
	wg.Wait()
	st.RoundTrip = time.Since(start)
	st.BytesSent, st.BytesReceived = sent, recv
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	return replies, st, nil
}

// Reach evaluates qr(s, t) over the connected sites.
func (c *Coordinator) Reach(s, t graph.NodeID) (bool, WireStats, error) {
	if s == t {
		return true, WireStats{}, nil
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	replies, st, err := c.roundtrip(kindReach, payload)
	if err != nil {
		return false, st, err
	}
	partials := make([]*core.ReachPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.ReachPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	return core.SolveReach(partials, s), st, nil
}

// ReachWithin evaluates qbr(s, t, l); it returns the answer and the exact
// distance when within l (bes.Inf otherwise).
func (c *Coordinator) ReachWithin(s, t graph.NodeID, l int) (bool, int64, WireStats, error) {
	if s == t {
		return l >= 0, 0, WireStats{}, nil
	}
	if l <= 0 {
		return false, bes.Inf, WireStats{}, nil
	}
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	binary.LittleEndian.PutUint32(payload[8:], uint32(l))
	replies, st, err := c.roundtrip(kindDist, payload)
	if err != nil {
		return false, bes.Inf, st, err
	}
	partials := make([]*core.DistPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.DistPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, bes.Inf, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	d := core.SolveDist(partials, s)
	return d <= int64(l), d, st, nil
}

// ReachRegex evaluates qrr(s, t, R) for the query automaton a.
func (c *Coordinator) ReachRegex(s, t graph.NodeID, a *automaton.Automaton) (bool, WireStats, error) {
	if s == t && a.AcceptsLabels(nil) {
		return true, WireStats{}, nil
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		return false, WireStats{}, err
	}
	payload := make([]byte, 8, 8+len(ab))
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	payload = append(payload, ab...)
	replies, st, err := c.roundtrip(kindRPQ, payload)
	if err != nil {
		return false, st, err
	}
	partials := make([]*core.RPQPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.RPQPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			return false, st, fmt.Errorf("netsite: site %d reply: %w", i, err)
		}
	}
	return core.SolveRPQ(partials, s, a), st, nil
}
