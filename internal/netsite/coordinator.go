package netsite

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"strconv"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/core"
	"distreach/internal/graph"
	"distreach/internal/obs"
	"distreach/internal/oplog"
)

// ErrEpochSplit reports that the sites are serving from different
// deployment states — epochs or update-log positions (LSNs) — and the
// round could not be completed consistently. Transient splits (a query
// racing a rebalance swap or an update broadcast) are retried away
// internally; a persistent split means some replica is out of sync — a
// site restarted from stale files, say — and catch-up replication
// (Coordinator.SyncReplicas, run automatically by the gateway) repairs it.
var ErrEpochSplit = errors.New("netsite: sites answered from different states")

// Coordinator is the site Sc: it holds one TCP connection per worker site
// and evaluates queries by posting them to every site in parallel and
// assembling the returned partial answers. It is safe for concurrent use,
// and concurrent queries are multiplexed over the same connections: each
// query round is tagged with a request ID, sites answer in whatever order
// they finish, and a per-connection reader demultiplexes replies back to
// the waiting queries. Many queries can be in flight at once.
//
// Updates are sequenced: every batch draws a monotonic LSN from the
// coordinator's sequencer (an in-memory one by default; UseSequencer
// attaches a shared or durable one) and replicas apply batches in LSN
// order. Every coordinator and gateway writing to one deployment must
// share one sequencer — that is what gives interleaved writers a single
// total order.
//
// A dropped site connection fails its in-flight queries promptly, then
// heals itself: the coordinator redials in the background with bounded
// exponential backoff, so queries succeed again as soon as the site is
// back — no restart required.
type Coordinator struct {
	conns  []*siteConn
	nextID atomic.Uint32
	updMu  sync.Mutex // serializes update and rebalance rounds locally

	seqMu   sync.Mutex
	seq     *oplog.Sequencer
	seqInit bool // the sequencer has adopted the deployment's LSN

	// siteLSNs tracks the newest LSN each site has answered from — the
	// replica-lag signal /stats and bench report.
	siteLSNs []atomic.Uint64

	// anytime enables streaming partial replies and early termination for
	// reach queries and all-reach batches (default on; see SetAnytime).
	anytime atomic.Bool
	any     anytimeCounters

	// Tracing and guarantee auditing (see SetTraceSink, SetAuditor). A nil
	// sink means queries run untraced — the zero-cost default.
	traceMu   sync.Mutex
	traceSink func(*obs.Trace)
	auditor   *obs.Auditor
	traceSeq  atomic.Uint64
}

// SetTraceSink arms distributed tracing: every subsequent query round is
// posted inside a 'T' trace envelope, sites piggyback their recorded
// spans on the reply frames, and the assembled trace tree is delivered to
// fn when the query finishes. fn must be safe for concurrent use (queries
// finish concurrently); nil disarms tracing.
func (c *Coordinator) SetTraceSink(fn func(*obs.Trace)) {
	c.traceMu.Lock()
	c.traceSink = fn
	c.traceMu.Unlock()
}

// SetAuditor attaches a guarantee auditor: every query round reports its
// per-site frame counts, response volumes, and site-measured evaluation
// times to it (see obs.Auditor). nil detaches.
func (c *Coordinator) SetAuditor(a *obs.Auditor) {
	c.traceMu.Lock()
	c.auditor = a
	c.traceMu.Unlock()
}

func (c *Coordinator) getAuditor() *obs.Auditor {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.auditor
}

// qtrace threads one query's trace through the round machinery: the
// shared builder, the trace ID the envelope carries, and the span the
// current level parents its children under. A nil *qtrace everywhere
// means "untraced".
type qtrace struct {
	b   *obs.Builder
	id  uint64
	par uint64
}

// child scopes the trace to a new parent span (e.g. one round attempt).
func (qt *qtrace) child(par uint64) *qtrace {
	return &qtrace{b: qt.b, id: qt.id, par: par}
}

// newQueryTrace starts a trace for one query when a sink is armed. Trace
// IDs are a wall-clock-seeded counter: unique across coordinator
// restarts without coordination, cheap to allocate per query.
func (c *Coordinator) newQueryTrace(name string) *qtrace {
	c.traceMu.Lock()
	armed := c.traceSink != nil
	c.traceMu.Unlock()
	if !armed {
		return nil
	}
	for c.traceSeq.Load() == 0 {
		c.traceSeq.CompareAndSwap(0, uint64(time.Now().UnixNano())<<16)
	}
	id := c.traceSeq.Add(1)
	b := obs.NewBuilder(id, name)
	return &qtrace{b: b, id: id, par: b.Root()}
}

// finishTrace completes a query's trace, stamps the trace ID into the
// query's WireStats, and delivers the tree to the sink.
func (c *Coordinator) finishTrace(qt *qtrace, st *WireStats, err error) {
	if qt == nil {
		return
	}
	if err != nil {
		qt.b.AddSpan(qt.b.Root(), "error", time.Now(), 0, obs.Attr{Key: "error", Val: err.Error()})
	}
	tr := qt.b.Finish()
	st.TraceID = tr.ID
	c.traceMu.Lock()
	sink := c.traceSink
	c.traceMu.Unlock()
	if sink != nil {
		sink(tr)
	}
}

// anytimeCounters accumulates the anytime-protocol telemetry /stats and
// bench report; see AnytimeStats.
type anytimeCounters struct {
	earlyTerms atomic.Int64
	cancels    atomic.Int64
	partials   atomic.Int64
	stragglers []atomic.Int64
}

// AnytimeStats is a snapshot of the anytime-protocol counters since the
// coordinator was dialed.
type AnytimeStats struct {
	// EarlyTerminations counts rounds answered before every site's final
	// frame arrived.
	EarlyTerminations int64
	// CancelsSent counts 'C' frames written (early terminations, aborted
	// split rounds, and context cancellations all cancel their stragglers).
	CancelsSent int64
	// PartialFrames counts 'P' frames received and fed to the incremental
	// solver.
	PartialFrames int64
	// Stragglers counts, per site, the rounds decided before that site's
	// final arrived — a per-site straggler histogram: a site that dominates
	// it is the one slowing full rounds down.
	Stragglers []int64
}

// AnytimeStats reports the anytime-protocol counters.
func (c *Coordinator) AnytimeStats() AnytimeStats {
	st := AnytimeStats{
		EarlyTerminations: c.any.earlyTerms.Load(),
		CancelsSent:       c.any.cancels.Load(),
		PartialFrames:     c.any.partials.Load(),
		Stragglers:        make([]int64, len(c.any.stragglers)),
	}
	for i := range c.any.stragglers {
		st.Stragglers[i] = c.any.stragglers[i].Load()
	}
	return st
}

// SetAnytime toggles anytime answers: streaming partial replies, early
// termination the moment accumulated equations prove a reach query true,
// and cross-site cancellation of the remaining evaluation. On by default.
// Off, every query waits out the full strict round — byte-accounting tests
// and latency baselines use that mode.
func (c *Coordinator) SetAnytime(on bool) { c.anytime.Store(on) }

// Anytime reports whether anytime answers are enabled.
func (c *Coordinator) Anytime() bool { return c.anytime.Load() }

// pendingTotal sums the pending-table sizes across site connections
// (leak tests).
func (c *Coordinator) pendingTotal() int {
	n := 0
	for _, sc := range c.conns {
		n += sc.pendingCount()
	}
	return n
}

// Reconnect backoff bounds: the first redial happens almost immediately,
// later ones back off exponentially up to the cap.
const (
	redialMin = 25 * time.Millisecond
	redialMax = 2 * time.Second
)

// wireReply is one demultiplexed response frame.
type wireReply struct {
	kind    byte
	payload []byte
	n       int // bytes read off the wire for this frame
}

// maxPartialBuffer sizes the per-request partial-frame buffer. Sites bound
// themselves to core.MaxStreamChunks 'P' frames per request; the slack
// absorbs a misbehaving site without ever blocking the demultiplexer —
// overflowing partials are dropped, which is always sound (the final
// answer frame carries the complete partial).
const maxPartialBuffer = 2 * core.MaxStreamChunks

// pendingReq is one in-flight request in a connection's pending table. The
// final channel (capacity 1) receives the single 'R' or 'E' frame — or is
// closed when the connection is lost. parts, non-nil only for streaming
// requests, receives 'P' frames; the read loop never blocks on it (see
// maxPartialBuffer).
type pendingReq struct {
	final chan wireReply
	parts chan wireReply
}

// siteConn is one multiplexed connection to a worker site: a write mutex
// serializes outgoing frames, a reader goroutine routes response frames to
// the pending query that posted the matching request ID. When the reader
// stops (connection dropped, site closed, corrupt frame) every pending
// query fails promptly with the cause — in-flight queries never hang —
// and a background redial loop reconnects with bounded exponential
// backoff; queries posted while the link is down fail fast with the last
// error.
type siteConn struct {
	addr    string
	timeout time.Duration // dial timeout, initial and redial
	done    chan struct{} // closed by Coordinator.Close; stops redialing

	// Lifetime wire totals for this connection (across redials): every
	// frame written (queries, updates, sync, cancels) and every frame read
	// — including late replies the demultiplexer drains after a round
	// already ended, which per-round WireStats can never see. The pair is
	// the ground truth the accounting cross-check sums against.
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64

	wmu sync.Mutex // serializes whole-frame writes

	mu        sync.Mutex
	conn      net.Conn // nil while the link is down
	pending   map[uint32]*pendingReq
	err       error // last failure; nil while connected
	closed    bool
	redialing bool
}

func newSiteConn(addr string, conn net.Conn, timeout time.Duration) *siteConn {
	sc := &siteConn{
		addr:    addr,
		timeout: timeout,
		done:    make(chan struct{}),
		conn:    conn,
		pending: make(map[uint32]*pendingReq),
	}
	go sc.readLoop(conn)
	return sc
}

func (sc *siteConn) readLoop(conn net.Conn) {
	for {
		id, kind, payload, n, err := readFrame(conn)
		if err != nil {
			sc.lost(conn, err)
			return
		}
		sc.bytesReceived.Add(int64(n))
		sc.mu.Lock()
		pr, ok := sc.pending[id]
		if ok && kind != kindPartial {
			// Only the final frame retires the entry: a streaming request
			// stays pending across its 'P' frames.
			delete(sc.pending, id)
		}
		sc.mu.Unlock()
		if !ok {
			// A reply with no pending query is dropped: its query already
			// failed on another site's error, timed out, or was cancelled
			// after an early decision — late frames drain here.
			continue
		}
		if kind == kindPartial {
			if pr.parts != nil {
				// Never block the demultiplexer on a slow waiter: partials
				// are advisory (the final frame is complete), so overflow
				// drops are sound.
				select {
				case pr.parts <- wireReply{kind: kind, payload: payload, n: n}:
				default:
				}
			}
			continue
		}
		// The final channel has capacity 1 and the entry was just deleted,
		// so this send can never block: at most one final frame is ever
		// routed to a request.
		pr.final <- wireReply{kind: kind, payload: payload, n: n}
	}
}

// lost records a connection failure, wakes every pending query (a closed
// reply channel tells the waiter to read sc.err), and starts the redial
// loop. Stale incarnations (a write error racing the reader's own
// failure) are ignored.
func (sc *siteConn) lost(conn net.Conn, err error) {
	conn.Close()
	sc.mu.Lock()
	if sc.conn != conn {
		sc.mu.Unlock()
		return // already failed over from this incarnation
	}
	sc.conn = nil
	sc.err = err
	pend := sc.pending
	sc.pending = make(map[uint32]*pendingReq)
	redial := !sc.closed && !sc.redialing
	if redial {
		sc.redialing = true
	}
	sc.mu.Unlock()
	for _, pr := range pend {
		close(pr.final)
	}
	if redial {
		go sc.redial()
	}
}

// redial reconnects with bounded exponential backoff until it succeeds or
// the coordinator closes.
func (sc *siteConn) redial() {
	backoff := redialMin
	for {
		select {
		case <-sc.done:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", sc.addr, sc.timeout)
		if err == nil {
			sc.mu.Lock()
			if sc.closed {
				sc.mu.Unlock()
				conn.Close()
				return
			}
			sc.conn = conn
			sc.err = nil
			sc.redialing = false
			sc.mu.Unlock()
			go sc.readLoop(conn)
			return
		}
		sc.mu.Lock()
		sc.err = fmt.Errorf("redial %s: %w", sc.addr, err)
		sc.mu.Unlock()
		select {
		case <-sc.done:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > redialMax {
			backoff = redialMax
		}
	}
}

// post registers id in the pending table and sends the request frame. The
// registration happens before the write so a fast reply can never race
// past its waiter. A streaming post additionally allocates the partial
// buffer, inviting the site to emit 'P' frames ahead of the final answer.
func (sc *siteConn) post(id uint32, kind byte, payload []byte) (chan wireReply, int, error) {
	pr, n, err := sc.postReq(id, kind, payload, false)
	if err != nil {
		return nil, 0, err
	}
	return pr.final, n, nil
}

func (sc *siteConn) postReq(id uint32, kind byte, payload []byte, stream bool) (*pendingReq, int, error) {
	pr := &pendingReq{final: make(chan wireReply, 1)}
	if stream {
		pr.parts = make(chan wireReply, maxPartialBuffer)
	}
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, 0, fmt.Errorf("coordinator closed")
	}
	if sc.conn == nil {
		err := sc.err
		sc.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("connection down")
		}
		return nil, 0, err
	}
	conn := sc.conn
	sc.pending[id] = pr
	sc.mu.Unlock()
	sc.wmu.Lock()
	n, err := writeFrame(conn, id, kind, payload)
	sc.wmu.Unlock()
	if err != nil {
		// A failed write may have flushed part of the frame, desyncing the
		// length-prefixed stream: poison this incarnation rather than let
		// later queries parse garbage. The redial loop takes it from here.
		sc.lost(conn, err)
		return nil, 0, err
	}
	sc.bytesSent.Add(int64(n))
	return pr, n, nil
}

// drop abandons a pending request (context deadline, cancellation, or an
// early anytime decision): the reply, if it ever arrives, is discarded by
// the read loop.
func (sc *siteConn) drop(id uint32) {
	sc.mu.Lock()
	delete(sc.pending, id)
	sc.mu.Unlock()
}

// cancel drops a pending request and sends the site a best-effort 'C'
// frame so it abandons the evaluation; it reports the bytes written. A
// write failure poisons the connection exactly like a failed post (the
// stream may be desynced).
func (sc *siteConn) cancel(id uint32) int {
	sc.drop(id)
	sc.mu.Lock()
	conn := sc.conn
	sc.mu.Unlock()
	if conn == nil {
		return 0
	}
	sc.wmu.Lock()
	n, err := writeFrame(conn, id, kindCancel, nil)
	sc.wmu.Unlock()
	if err != nil {
		sc.lost(conn, err)
		return 0
	}
	sc.bytesSent.Add(int64(n))
	return n
}

// pendingCount reports the number of in-flight entries (leak tests).
func (sc *siteConn) pendingCount() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.pending)
}

// lastErr reports the current failure, if the link is down.
func (sc *siteConn) lastErr() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.err
}

// close tears the connection down for good: no redial, pending queries
// fail. Safe to call more than once.
func (sc *siteConn) close() error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil
	}
	close(sc.done)
	sc.closed = true
	conn := sc.conn
	sc.conn = nil
	if sc.err == nil {
		sc.err = fmt.Errorf("coordinator closed")
	}
	pend := sc.pending
	sc.pending = make(map[uint32]*pendingReq)
	sc.mu.Unlock()
	for _, pr := range pend {
		close(pr.final)
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Dial connects to the given site addresses. The coordinator starts with
// a fresh in-memory sequencer; before its first update it adopts the
// deployment's current LSN (a hello round), so it extends the existing
// order. Multiple coordinators writing to one deployment must share a
// sequencer via UseSequencer.
func Dial(addrs []string, timeout time.Duration) (*Coordinator, error) {
	c := &Coordinator{seq: oplog.NewSequencer(0)}
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netsite: dial %s: %w", a, err)
		}
		c.conns = append(c.conns, newSiteConn(a, conn, timeout))
	}
	c.siteLSNs = make([]atomic.Uint64, len(c.conns))
	c.any.stragglers = make([]atomic.Int64, len(c.conns))
	c.anytime.Store(true)
	return c, nil
}

// NumSites reports how many worker sites the coordinator is connected to.
func (c *Coordinator) NumSites() int { return len(c.conns) }

// UseSequencer attaches the sequencer update batches draw their LSNs
// from: the shared (often durable, write-ahead logging) sequencer of the
// deployment. It replaces the private in-memory one Dial installs.
func (c *Coordinator) UseSequencer(s *oplog.Sequencer) {
	c.seqMu.Lock()
	c.seq = s
	c.seqInit = false
	c.seqMu.Unlock()
}

// Sequencer reports the coordinator's current sequencer.
func (c *Coordinator) Sequencer() *oplog.Sequencer {
	c.seqMu.Lock()
	defer c.seqMu.Unlock()
	return c.seq
}

// ReplicaLSNs reports the newest LSN each site has answered from — a lag
// of s.Sequencer().LSN()-min(ReplicaLSNs()) batches means some replica
// has not yet caught up.
func (c *Coordinator) ReplicaLSNs() []uint64 {
	out := make([]uint64, len(c.siteLSNs))
	for i := range c.siteLSNs {
		out[i] = c.siteLSNs[i].Load()
	}
	return out
}

// noteSiteLSN records the newest LSN observed from site i.
func (c *Coordinator) noteSiteLSN(i int, lsn uint64) {
	for {
		cur := c.siteLSNs[i].Load()
		if lsn <= cur || c.siteLSNs[i].CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// WireTotals reports the coordinator's lifetime wire traffic across all
// site connections: every byte written and read since Dial, including
// control frames (cancels, sync catch-up) and late replies drained after
// their round ended. Per-round WireStats necessarily undercounts the
// latter; this pair is what the accounting cross-check and the gateway's
// wire gauges sum against.
func (c *Coordinator) WireTotals() (sent, received int64) {
	for _, sc := range c.conns {
		sent += sc.bytesSent.Load()
		received += sc.bytesReceived.Load()
	}
	return sent, received
}

// Close shuts down all site connections; in-flight queries fail and no
// reconnection is attempted.
func (c *Coordinator) Close() error {
	var first error
	for _, sc := range c.conns {
		if sc != nil {
			if err := sc.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// WireStats is the on-the-wire accounting of one query round (or one
// whole batch round; see Coordinator.Batch).
type WireStats struct {
	BytesSent      int64         // query frames to all sites (cancel frames included)
	BytesReceived  int64         // partial-answer frames ('P' frames included)
	FramesSent     int64         // request frames; one per site per round
	FramesReceived int64         // final response frames; at most one per site per round
	RoundTrip      time.Duration // slowest site's post+reply wall time

	// PartialFrames counts streamed 'P' frames received (anytime rounds
	// only); CancelFrames counts 'C' frames sent. Neither is included in
	// FramesSent/FramesReceived, which keep their one-per-site-per-round
	// meaning.
	PartialFrames int64
	CancelFrames  int64

	// FirstAnswer is the elapsed time until the answer was determined: for
	// an anytime round, the instant accumulated partials proved it (before
	// the stragglers' finals); otherwise it equals RoundTrip. Across
	// retried rounds it accumulates like RoundTrip.
	FirstAnswer time.Duration

	// EarlyTerminated reports that the round was answered before every
	// site's final frame arrived (the remaining sites were cancelled).
	EarlyTerminated bool

	// Epoch is the deployment epoch every site answered from, and LSN the
	// update-log position. Query rounds enforce agreement on both
	// (retrying the rare round that straddles a live rebalance or update
	// broadcast), so one answer never mixes fragmentation epochs or
	// update states.
	Epoch uint64
	LSN   uint64

	// Touched lists, sorted, the sites (== fragment indices) whose partial
	// answers the query's solution actually depends on — the dependency
	// closure of the source variable (see core.TouchedReach). An answer
	// cache keyed on it can evict precisely when a fragment changes. Nil
	// for rounds without that notion (batches report it per query, updates
	// report a dirty set instead).
	Touched []int

	// TraceID identifies the distributed trace recorded for this query,
	// when tracing was armed (SetTraceSink); 0 otherwise. The gateway
	// returns it to clients so a slow request can be looked up under
	// /trace/<id>.
	TraceID uint64
}

// add accumulates another round's accounting (used when an epoch-split
// round retries: the retried frames and bytes are real traffic).
func (st *WireStats) add(o WireStats) {
	st.BytesSent += o.BytesSent
	st.BytesReceived += o.BytesReceived
	st.FramesSent += o.FramesSent
	st.FramesReceived += o.FramesReceived
	st.RoundTrip += o.RoundTrip
	st.PartialFrames += o.PartialFrames
	st.CancelFrames += o.CancelFrames
	st.FirstAnswer += o.FirstAnswer
	st.EarlyTerminated = o.EarlyTerminated
	st.Epoch = o.Epoch
	st.LSN = o.LSN
}

// siteResult is one site's outcome in a round: either a decoded answer
// (payload + the state tag it carried) or an error. appErr distinguishes
// an error *reply* from the site (the frame arrived, the site refused)
// from a connection-level failure (the site never saw or never answered
// the frame). evalNs is the site-reported local evaluation time parsed
// from a traced reply's spans (0 when untraced), feeding the guarantee
// auditor's response-time invariant.
type siteResult struct {
	payload []byte
	epoch   uint64
	lsn     uint64
	err     error
	appErr  bool
	evalNs  int64
}

// kindLabel names a query kind for audit rounds and metric labels.
func kindLabel(kind byte) string {
	switch kind {
	case kindReach:
		return "reach"
	case kindDist:
		return "dist"
	case kindRPQ:
		return "rpq"
	case kindBatch:
		return "batch"
	default:
		return string(rune(kind))
	}
}

// evalDurNs extracts the site's "eval" span duration from a traced reply.
func evalDurNs(spans []obs.WireSpan) int64 {
	for i := range spans {
		if spans[i].Name == "eval" {
			return int64(spans[i].DurNs)
		}
	}
	return 0
}

// auditRound reports one settled attempt's per-site observations to the
// auditor, when one is attached and the round is a query round (the only
// rounds the paper's guarantees speak about). results carry the answer
// body lengths — the response data volume the c·(|Vf|+1)² bound is about,
// excluding frame headers and piggybacked span sections.
func (c *Coordinator) auditRound(kind byte, results []siteResult) {
	a := c.getAuditor()
	if a == nil || !tracedKind(kind) {
		return
	}
	r := obs.AuditRound{
		Query:     kindLabel(kind),
		Frames:    make([]int64, len(results)),
		RespBytes: make([]int64, len(results)),
		EvalNs:    make([]int64, len(results)),
	}
	for i := range results {
		if results[i].err == nil {
			r.Frames[i] = 1
			r.RespBytes[i] = int64(len(results[i].payload))
			r.EvalNs[i] = results[i].evalNs
		}
	}
	a.Observe(r)
}

// roundtripAll posts one frame to every site in parallel and collects one
// response from each, reporting per-site outcomes: callers that can
// tolerate individual failures (sequenced updates, whose log re-delivers
// to laggards) inspect the slice; roundtrip wraps it for all-or-nothing
// callers. Concurrent rounds interleave freely: each draws a fresh
// request ID and waits only on its own replies. A context deadline or
// cancellation abandons the round promptly.
//
// With qt non-nil (and kind a query kind), the frame ships inside a 'T'
// trace envelope naming a per-site rpc span, sites answer 't' frames
// carrying their recorded spans, and the spans are grafted into qt's
// trace anchored at this coordinator's post instant — no site wall clock
// is ever trusted. Settled query rounds are also reported to the
// guarantee auditor when one is attached.
func (c *Coordinator) roundtripAll(ctx context.Context, kind byte, payload []byte, qt *qtrace) ([]siteResult, WireStats) {
	id := c.nextID.Add(1)
	start := time.Now()
	results := make([]siteResult, len(c.conns))
	var sent, recv, fsent, frecv atomic.Int64
	if qt != nil && !tracedKind(kind) {
		qt = nil
	}
	var wg sync.WaitGroup
	for i, sc := range c.conns {
		wg.Add(1)
		go func(i int, sc *siteConn) {
			defer wg.Done()
			res := &results[i]
			wireKind, wirePayload := kind, payload
			var rpcID uint64
			if qt != nil {
				rpcID = qt.b.StartSpan(qt.par, "rpc", obs.Attr{Key: "site", Val: strconv.Itoa(i)})
				wireKind = kindTraced
				wirePayload = encodeTraced(qt.id, rpcID, kind, payload)
				defer qt.b.End(rpcID)
			}
			anchor := time.Now()
			ch, n, err := sc.post(id, wireKind, wirePayload)
			if err != nil {
				res.err = fmt.Errorf("site %d: %w", i, err)
				return
			}
			sent.Add(int64(n))
			fsent.Add(1)
			var r wireReply
			var ok bool
			select {
			case r, ok = <-ch:
			case <-ctx.Done():
				sc.drop(id)
				res.err = fmt.Errorf("site %d: %w", i, ctx.Err())
				return
			}
			if !ok {
				err := sc.lastErr()
				if err == nil {
					err = fmt.Errorf("connection closed")
				}
				res.err = fmt.Errorf("site %d: %w", i, err)
				return
			}
			switch r.kind {
			case kindAnswer, kindTracedAnswer:
				if len(r.payload) < answerPrefix {
					res.err = fmt.Errorf("site %d: answer of %d bytes lacks the state tag", i, len(r.payload))
					res.appErr = true
					return
				}
				body := r.payload[answerPrefix:]
				if r.kind == kindTracedAnswer {
					spans, rest, derr := decodeTracedAnswer(body)
					if derr != nil {
						res.err = fmt.Errorf("site %d: %w", i, derr)
						res.appErr = true
						return
					}
					if qt != nil {
						qt.b.AttachRemote(rpcID, i, anchor, spans)
					}
					res.evalNs = evalDurNs(spans)
					body = rest
				}
				recv.Add(int64(r.n))
				frecv.Add(1)
				res.epoch = binary.LittleEndian.Uint64(r.payload)
				res.lsn = binary.LittleEndian.Uint64(r.payload[8:])
				res.payload = body
				c.noteSiteLSN(i, res.lsn)
			case kindError:
				res.err = fmt.Errorf("site %d: %s", i, r.payload)
				res.appErr = true
			default:
				res.err = fmt.Errorf("site %d: unexpected frame kind %q", i, r.kind)
				res.appErr = true
			}
		}(i, sc)
	}
	wg.Wait()
	st := WireStats{
		BytesSent:      sent.Load(),
		BytesReceived:  recv.Load(),
		FramesSent:     fsent.Load(),
		FramesReceived: frecv.Load(),
		RoundTrip:      time.Since(start),
	}
	c.auditRound(kind, results)
	return results, st
}

// roundtrip is roundtripAll for all-or-nothing callers: the first site
// error fails the round.
func (c *Coordinator) roundtrip(ctx context.Context, kind byte, payload []byte, qt *qtrace) ([][]byte, []uint64, []uint64, WireStats, error) {
	results, st := c.roundtripAll(ctx, kind, payload, qt)
	replies := make([][]byte, len(results))
	epochs := make([]uint64, len(results))
	lsns := make([]uint64, len(results))
	for i, r := range results {
		if r.err != nil {
			return nil, nil, nil, st, r.err
		}
		replies[i], epochs[i], lsns[i] = r.payload, r.epoch, r.lsn
	}
	return replies, epochs, lsns, st, nil
}

// postOne posts one frame to a single site and waits for its response —
// the per-site form of roundtripAll used by catch-up replication, whose
// replay payloads differ per site.
func (c *Coordinator) postOne(ctx context.Context, site int, kind byte, payload []byte, st *WireStats) (body []byte, epoch, lsn uint64, err error) {
	if site < 0 || site >= len(c.conns) {
		return nil, 0, 0, fmt.Errorf("netsite: site %d out of range [0,%d)", site, len(c.conns))
	}
	sc := c.conns[site]
	id := c.nextID.Add(1)
	ch, n, err := sc.post(id, kind, payload)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("site %d: %w", site, err)
	}
	if st != nil {
		st.BytesSent += int64(n)
		st.FramesSent++
	}
	var r wireReply
	var ok bool
	select {
	case r, ok = <-ch:
	case <-ctx.Done():
		sc.drop(id)
		return nil, 0, 0, fmt.Errorf("site %d: %w", site, ctx.Err())
	}
	if !ok {
		err := sc.lastErr()
		if err == nil {
			err = fmt.Errorf("connection closed")
		}
		return nil, 0, 0, fmt.Errorf("site %d: %w", site, err)
	}
	switch r.kind {
	case kindAnswer:
		if len(r.payload) < answerPrefix {
			return nil, 0, 0, fmt.Errorf("site %d: answer of %d bytes lacks the state tag", site, len(r.payload))
		}
		if st != nil {
			st.BytesReceived += int64(r.n)
			st.FramesReceived++
		}
		epoch = binary.LittleEndian.Uint64(r.payload)
		lsn = binary.LittleEndian.Uint64(r.payload[8:])
		c.noteSiteLSN(site, lsn)
		return r.payload[answerPrefix:], epoch, lsn, nil
	case kindError:
		return nil, 0, 0, fmt.Errorf("site %d: %s", site, r.payload)
	default:
		return nil, 0, 0, fmt.Errorf("site %d: unexpected frame kind %q", site, r.kind)
	}
}

// Epoch-split retry tuning: how often a query round is retried when its
// sites answered from different states, and the backoff between attempts.
// The backoff matters: an immediate retry lands inside the same rebalance
// or update burst that split the round, while a short exponential pause
// lets the new state finish propagating to every site's worker.
const (
	epochRetries      = 8
	epochRetryBackoff = time.Millisecond
)

// queryRound is roundtrip for query kinds: it additionally enforces that
// every site answered from the same deployment state — epoch and
// update-log LSN — retrying the round otherwise. Partial answers are
// Boolean equations over the fragmentation and graph the site evaluated
// on; composing them across two fragmentations (or across an update that
// landed on only some replicas) would be meaningless, so a round that
// straddles a live rebalance or update broadcast is thrown away and
// re-posted against the settled deployment.
func (c *Coordinator) queryRound(ctx context.Context, kind byte, payload []byte, qt *qtrace) ([][]byte, WireStats, error) {
	var total WireStats
	backoff := epochRetryBackoff
	for attempt := 0; ; attempt++ {
		rqt := qt
		if qt != nil {
			roundID := qt.b.StartSpan(qt.par, "round", obs.Attr{Key: "attempt", Val: strconv.Itoa(attempt)})
			rqt = qt.child(roundID)
		}
		replies, epochs, lsns, st, err := c.roundtrip(ctx, kind, payload, rqt)
		if qt != nil {
			qt.b.End(rqt.par)
		}
		total.add(st)
		if err != nil {
			return nil, total, err
		}
		split := false
		for i := 1; i < len(epochs); i++ {
			if epochs[i] != epochs[0] || lsns[i] != lsns[0] {
				split = true
				break
			}
		}
		if !split {
			total.Epoch, total.LSN = 0, 0
			if len(epochs) > 0 {
				total.Epoch, total.LSN = epochs[0], lsns[0]
			}
			return replies, total, nil
		}
		if attempt+1 >= epochRetries {
			return nil, total, fmt.Errorf("%w (epochs %v, lsns %v after %d attempts)", ErrEpochSplit, epochs, lsns, attempt+1)
		}
		select {
		case <-ctx.Done():
			return nil, total, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// Reach evaluates qr(s, t) over the connected sites.
func (c *Coordinator) Reach(s, t graph.NodeID) (bool, WireStats, error) {
	return c.ReachContext(context.Background(), s, t)
}

// ReachContext is Reach honoring a context deadline or cancellation. With
// anytime enabled (the default) the round streams partial replies and may
// return the moment they prove the answer true, cancelling the remaining
// sites; see SetAnytime.
func (c *Coordinator) ReachContext(ctx context.Context, s, t graph.NodeID) (bool, WireStats, error) {
	if s == t {
		return true, WireStats{}, nil
	}
	qt := c.newQueryTrace("reach")
	if c.anytime.Load() {
		ok, st, err := c.reachAnytime(ctx, s, t, qt)
		c.finishTrace(qt, &st, err)
		return ok, st, err
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	replies, st, err := c.queryRound(ctx, kindReach, payload, qt)
	if err != nil {
		c.finishTrace(qt, &st, err)
		return false, st, err
	}
	solveStart := time.Now()
	partials := make([]*core.ReachPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.ReachPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			err = fmt.Errorf("netsite: site %d reply: %w", i, err)
			c.finishTrace(qt, &st, err)
			return false, st, err
		}
	}
	st.FirstAnswer = st.RoundTrip
	st.Touched = core.TouchedReach(partials, s)
	ok := core.SolveReach(partials, s)
	if qt != nil {
		qt.b.AddSpan(qt.b.Root(), "solve", solveStart, time.Since(solveStart),
			obs.Attr{Key: "answer", Val: strconv.FormatBool(ok)})
	}
	c.finishTrace(qt, &st, nil)
	return ok, st, nil
}

// ReachWithin evaluates qbr(s, t, l); it returns the answer and the exact
// distance when within l (bes.Inf otherwise).
func (c *Coordinator) ReachWithin(s, t graph.NodeID, l int) (bool, int64, WireStats, error) {
	return c.ReachWithinContext(context.Background(), s, t, l)
}

// ReachWithinContext is ReachWithin honoring a context deadline or
// cancellation.
func (c *Coordinator) ReachWithinContext(ctx context.Context, s, t graph.NodeID, l int) (bool, int64, WireStats, error) {
	if s == t {
		return l >= 0, 0, WireStats{}, nil
	}
	if l <= 0 {
		return false, bes.Inf, WireStats{}, nil
	}
	qt := c.newQueryTrace("dist")
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	binary.LittleEndian.PutUint32(payload[8:], uint32(l))
	replies, st, err := c.queryRound(ctx, kindDist, payload, qt)
	if err != nil {
		c.finishTrace(qt, &st, err)
		return false, bes.Inf, st, err
	}
	solveStart := time.Now()
	partials := make([]*core.DistPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.DistPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			err = fmt.Errorf("netsite: site %d reply: %w", i, err)
			c.finishTrace(qt, &st, err)
			return false, bes.Inf, st, err
		}
	}
	st.FirstAnswer = st.RoundTrip
	st.Touched = core.TouchedDist(partials, s)
	d := core.SolveDist(partials, s)
	if qt != nil {
		qt.b.AddSpan(qt.b.Root(), "solve", solveStart, time.Since(solveStart),
			obs.Attr{Key: "answer", Val: strconv.FormatBool(d <= int64(l))})
	}
	c.finishTrace(qt, &st, nil)
	return d <= int64(l), d, st, nil
}

// ReachRegex evaluates qrr(s, t, R) for the query automaton a.
func (c *Coordinator) ReachRegex(s, t graph.NodeID, a *automaton.Automaton) (bool, WireStats, error) {
	return c.ReachRegexContext(context.Background(), s, t, a)
}

// ReachRegexContext is ReachRegex honoring a context deadline or
// cancellation.
func (c *Coordinator) ReachRegexContext(ctx context.Context, s, t graph.NodeID, a *automaton.Automaton) (bool, WireStats, error) {
	if s == t && a.AcceptsLabels(nil) {
		return true, WireStats{}, nil
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		return false, WireStats{}, err
	}
	qt := c.newQueryTrace("rpq")
	payload := make([]byte, 8, 8+len(ab))
	binary.LittleEndian.PutUint32(payload, uint32(s))
	binary.LittleEndian.PutUint32(payload[4:], uint32(t))
	payload = append(payload, ab...)
	replies, st, err := c.queryRound(ctx, kindRPQ, payload, qt)
	if err != nil {
		c.finishTrace(qt, &st, err)
		return false, st, err
	}
	solveStart := time.Now()
	partials := make([]*core.RPQPartial, len(replies))
	for i, resp := range replies {
		partials[i] = new(core.RPQPartial)
		if err := partials[i].UnmarshalBinary(resp); err != nil {
			err = fmt.Errorf("netsite: site %d reply: %w", i, err)
			c.finishTrace(qt, &st, err)
			return false, st, err
		}
	}
	st.FirstAnswer = st.RoundTrip
	st.Touched = core.TouchedRPQ(partials, s, a.NumStates())
	ok := core.SolveRPQ(partials, s, a)
	if qt != nil {
		qt.b.AddSpan(qt.b.Root(), "solve", solveStart, time.Since(solveStart),
			obs.Attr{Key: "answer", Val: strconv.FormatBool(ok)})
	}
	c.finishTrace(qt, &st, nil)
	return ok, st, nil
}
