package rx

import (
	"testing"

	"distreach/internal/gen"
)

func TestMatchBasics(t *testing.T) {
	cases := []struct {
		expr string
		seq  []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", nil, false},
		{"", nil, true},
		{"a*", nil, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a*", []string{"a", "b"}, false},
		{"a b", []string{"a", "b"}, true},
		{"a b", []string{"b", "a"}, false},
		{"a|b", []string{"b"}, true},
		{"a+", nil, false},
		{"a?", nil, true},
		{"_ _", []string{"x", "y"}, true},
		{"_ _", []string{"x"}, false},
		{"a (b|c)* a", []string{"a", "b", "c", "b", "a"}, true},
		{"a (b|c)* a", []string{"a", "a", "a"}, false},
	}
	for _, c := range cases {
		if got := MustParse(c.expr).Match(c.seq); got != c.want {
			t.Errorf("Match(%q, %v) = %v, want %v", c.expr, c.seq, got, c.want)
		}
	}
}

func TestDerivativeAlgebra(t *testing.T) {
	// d_a(a b) = b
	d := MustParse("a b").Derivative("a")
	if !d.Match([]string{"b"}) || d.Match(nil) {
		t.Fatalf("d_a(a b) = %v", d)
	}
	// d_b(a b) = ∅
	if d := MustParse("a b").Derivative("b"); !isVoid(d) {
		t.Fatalf("d_b(a b) = %v, want void", d)
	}
	// d_a(a*) = a*
	d = MustParse("a*").Derivative("a")
	if !d.Nullable() || !d.Match([]string{"a", "a"}) {
		t.Fatalf("d_a(a*) = %v", d)
	}
}

func TestMatchAcceptsOwnSamples(t *testing.T) {
	rng := gen.NewRNG(21)
	labels := []string{"a", "b", "c"}
	var rand func(depth int) *Node
	rand = func(depth int) *Node {
		if depth == 0 || rng.Intn(3) == 0 {
			return Lbl(labels[rng.Intn(3)])
		}
		switch rng.Intn(3) {
		case 0:
			return Cat(rand(depth-1), rand(depth-1))
		case 1:
			return Alt(rand(depth-1), rand(depth-1))
		default:
			return Kleene(rand(depth - 1))
		}
	}
	for i := 0; i < 300; i++ {
		re := rand(4)
		for j := 0; j < 4; j++ {
			seq := re.Sample(rng, 3)
			if !re.Match(seq) {
				t.Fatalf("%q rejects its own sample %v", re, seq)
			}
		}
	}
}
