package rx

import (
	"testing"

	"distreach/internal/gen"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		size int
	}{
		{"a", 1},
		{"a b", 3},
		{"a|b", 3},
		{"a*", 2},
		{"a+", 4}, // a(a*)
		{"a?", 3}, // a|ε
		{"()", 1}, // ε
		{"", 1},   // ε
		{"(a b)*", 4},
		{"DB*|HR*", 5},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if n.Size() != c.size {
			t.Errorf("Parse(%q).Size() = %d, want %d", c.in, n.Size(), c.size)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"(a", "a)", "*", "a | | b)(", "((("} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// Concatenation binds tighter than union; star tighter than both.
	n := MustParse("a b|c")
	if n.Kind != Union || n.Left.Kind != Concat {
		t.Fatalf("a b|c parsed as %v", n)
	}
	n = MustParse("a b*")
	if n.Kind != Concat || n.Right.Kind != Star {
		t.Fatalf("a b* parsed as %v", n)
	}
}

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		"":      true,
		"a":     false,
		"a*":    true,
		"a|()":  true,
		"a b":   false,
		"a* b*": true,
		"a? b?": true,
		"a+":    false,
	}
	for in, want := range cases {
		if got := MustParse(in).Nullable(); got != want {
			t.Errorf("Nullable(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := gen.NewRNG(1)
	labels := []string{"a", "b", "c"}
	var rand func(depth int) *Node
	rand = func(depth int) *Node {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(4) == 0 {
				return Eps()
			}
			return Lbl(labels[rng.Intn(3)])
		}
		switch rng.Intn(3) {
		case 0:
			return Cat(rand(depth-1), rand(depth-1))
		case 1:
			return Alt(rand(depth-1), rand(depth-1))
		default:
			return Kleene(rand(depth - 1))
		}
	}
	for i := 0; i < 200; i++ {
		n := rand(4)
		s := n.String()
		n2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", s, err)
		}
		if n2.String() != s {
			t.Fatalf("round trip not stable: %q -> %q", s, n2.String())
		}
	}
}

func TestSampleProducesOnlyKnownLabels(t *testing.T) {
	rng := gen.NewRNG(2)
	n := MustParse("a (b|c)* d?")
	for i := 0; i < 100; i++ {
		seq := n.Sample(rng, 4)
		if len(seq) == 0 || seq[0] != "a" {
			t.Fatalf("sample %v must start with a", seq)
		}
		for _, l := range seq {
			switch l {
			case "a", "b", "c", "d":
			default:
				t.Fatalf("unexpected label %q", l)
			}
		}
	}
}

func TestLabels(t *testing.T) {
	n := MustParse("a (b|_)* a")
	ls := n.Labels()
	if len(ls) != 2 {
		t.Fatalf("Labels = %v, want {a, b}", ls)
	}
}

func TestHelpersEmpty(t *testing.T) {
	if Cat().Kind != Empty || Alt().Kind != Empty {
		t.Fatal("empty Cat/Alt must be ε")
	}
	if got := Cat(Lbl("a"), Lbl("b"), Lbl("c")).Size(); got != 5 {
		t.Fatalf("Cat size = %d", got)
	}
}
