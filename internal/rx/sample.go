package rx

import "distreach/internal/gen"

// Sample generates a pseudo-random member string of the language of n,
// drawing randomness from rng. Star nodes repeat their body a geometrically
// distributed number of times (p = 1/2, capped at maxRep). Wildcard labels
// are emitted as rx.Wildcard; callers substituting concrete labels must
// handle them. Sample is used by property-based tests: every sampled string
// must be accepted by the query automaton built from n.
func (n *Node) Sample(rng *gen.RNG, maxRep int) []string {
	var out []string
	n.sample(rng, maxRep, &out)
	return out
}

func (n *Node) sample(rng *gen.RNG, maxRep int, out *[]string) {
	switch n.Kind {
	case Empty:
	case Label:
		*out = append(*out, n.Label)
	case Concat:
		n.Left.sample(rng, maxRep, out)
		n.Right.sample(rng, maxRep, out)
	case Union:
		if rng.Intn(2) == 0 {
			n.Left.sample(rng, maxRep, out)
		} else {
			n.Right.sample(rng, maxRep, out)
		}
	case Star:
		reps := 0
		for reps < maxRep && rng.Intn(2) == 0 {
			reps++
		}
		for i := 0; i < reps; i++ {
			n.Left.sample(rng, maxRep, out)
		}
	}
}

// Labels returns the set of distinct concrete labels mentioned in n,
// excluding the wildcard.
func (n *Node) Labels() []string {
	seen := map[string]bool{}
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.Kind == Label && m.Label != Wildcard {
			seen[m.Label] = true
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	return out
}
