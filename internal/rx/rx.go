// Package rx provides the regular expressions of regular reachability
// queries (Section 2.2 of the paper):
//
//	R ::= ε | a | RR | R ∪ R | R*
//
// where a is a node label. The concrete syntax accepted by Parse uses
// identifiers for labels, '|' for union, juxtaposition for concatenation,
// '*' for Kleene closure, plus the common abbreviations '+' (RR*),
// '?' (R ∪ ε), and '_' as the wildcard label that matches any node label
// (the paper's "wildcard" remark in Section 2.2). 'ε' may be written as
// "()" or as the empty string.
package rx

import (
	"fmt"
	"strings"
)

// Kind enumerates AST node kinds.
type Kind int

// AST node kinds.
const (
	Empty  Kind = iota // ε
	Label              // a single label; Wildcard matches any label
	Concat             // RR
	Union              // R ∪ R
	Star               // R*
)

// Wildcard is the label that matches any node label.
const Wildcard = "_"

// Node is a regular-expression AST node. Leaf kinds (Empty, Label) have nil
// children; Star uses only Left.
type Node struct {
	Kind  Kind
	Label string // for Kind == Label
	Left  *Node
	Right *Node
}

// Lbl returns a label leaf.
func Lbl(name string) *Node { return &Node{Kind: Label, Label: name} }

// Eps returns the ε node.
func Eps() *Node { return &Node{Kind: Empty} }

// Cat returns the concatenation of the given expressions (ε for none).
func Cat(xs ...*Node) *Node {
	if len(xs) == 0 {
		return Eps()
	}
	n := xs[0]
	for _, x := range xs[1:] {
		n = &Node{Kind: Concat, Left: n, Right: x}
	}
	return n
}

// Alt returns the union of the given expressions (ε for none).
func Alt(xs ...*Node) *Node {
	if len(xs) == 0 {
		return Eps()
	}
	n := xs[0]
	for _, x := range xs[1:] {
		n = &Node{Kind: Union, Left: n, Right: x}
	}
	return n
}

// Kleene returns x*.
func Kleene(x *Node) *Node { return &Node{Kind: Star, Left: x} }

// Size reports the number of AST nodes, the |R| of the paper's complexity
// bounds.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.Size() + n.Right.Size()
}

// Nullable reports whether ε is in the language of n.
func (n *Node) Nullable() bool {
	switch n.Kind {
	case Empty, Star:
		return true
	case Label:
		return false
	case Concat:
		return n.Left.Nullable() && n.Right.Nullable()
	case Union:
		return n.Left.Nullable() || n.Right.Nullable()
	}
	return false
}

// String renders the expression in the concrete syntax accepted by Parse.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

// precedence: Union=1, Concat=2, Star=3.
func (n *Node) render(b *strings.Builder, prec int) {
	switch n.Kind {
	case Empty:
		b.WriteString("()")
	case Label:
		b.WriteString(n.Label)
	case Concat:
		if prec > 2 {
			b.WriteByte('(')
		}
		n.Left.render(b, 2)
		b.WriteByte(' ')
		n.Right.render(b, 2)
		if prec > 2 {
			b.WriteByte(')')
		}
	case Union:
		if prec > 1 {
			b.WriteByte('(')
		}
		n.Left.render(b, 1)
		b.WriteByte('|')
		n.Right.render(b, 1)
		if prec > 1 {
			b.WriteByte(')')
		}
	case Star:
		n.Left.render(b, 3)
		b.WriteByte('*')
	}
}

// Parse parses the concrete syntax into an AST.
//
// Grammar:
//
//	expr   := term ('|' term)*
//	term   := factor*
//	factor := atom ('*' | '+' | '?')*
//	atom   := LABEL | '(' expr? ')'
//
// An empty term denotes ε; labels are runs of letters, digits, and '_'.
func Parse(s string) (*Node, error) {
	p := &parser{in: s}
	n := p.expr()
	p.skipSpace()
	if p.err == nil && p.pos != len(p.in) {
		return nil, fmt.Errorf("rx: unexpected %q at offset %d", p.in[p.pos], p.pos)
	}
	if p.err != nil {
		return nil, p.err
	}
	return n, nil
}

// MustParse is Parse but panics on error; for tests and constants.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	in  string
	pos int
	err error
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) expr() *Node {
	n := p.term()
	for p.peek() == '|' {
		p.pos++
		n = &Node{Kind: Union, Left: n, Right: p.term()}
	}
	return n
}

func (p *parser) term() *Node {
	var n *Node
	for {
		c := p.peek()
		if c == 0 || c == '|' || c == ')' {
			break
		}
		f := p.factor()
		if f == nil {
			break
		}
		if n == nil {
			n = f
		} else {
			n = &Node{Kind: Concat, Left: n, Right: f}
		}
	}
	if n == nil {
		return Eps()
	}
	return n
}

func (p *parser) factor() *Node {
	n := p.atom()
	if n == nil {
		return nil
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			n = &Node{Kind: Star, Left: n}
		case '+':
			p.pos++
			n = &Node{Kind: Concat, Left: n, Right: &Node{Kind: Star, Left: n}}
		case '?':
			p.pos++
			n = &Node{Kind: Union, Left: n, Right: Eps()}
		default:
			return n
		}
	}
}

func isLabelByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) atom() *Node {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		var n *Node
		if p.peek() == ')' {
			n = Eps()
		} else {
			n = p.expr()
		}
		if p.peek() != ')' {
			if p.err == nil {
				p.err = fmt.Errorf("rx: missing ')' at offset %d", p.pos)
			}
			return n
		}
		p.pos++
		return n
	case isLabelByte(c):
		start := p.pos
		for p.pos < len(p.in) && isLabelByte(p.in[p.pos]) {
			p.pos++
		}
		return Lbl(p.in[start:p.pos])
	default:
		if c != 0 && p.err == nil {
			p.err = fmt.Errorf("rx: unexpected %q at offset %d", c, p.pos)
			p.pos++ // make progress so parsing terminates
		}
		return nil
	}
}
