package rx

// Brzozowski-derivative matching: an independent decision procedure for
// membership of a label sequence in L(R). It exists primarily as an oracle
// for property-based tests of the query automaton (two very different
// constructions must agree on every string), and doubles as a simple
// matcher for callers that have a concrete path label in hand.

// Match reports whether the label sequence seq is in the language of n.
func (n *Node) Match(seq []string) bool {
	cur := n
	for _, l := range seq {
		cur = cur.Derivative(l)
		if isVoid(cur) {
			return false
		}
	}
	return cur.Nullable()
}

// voidNode represents the empty language ∅ (no strings at all), which is
// distinct from ε. It only arises inside derivative computation; Parse
// never produces it. We encode ∅ as Union with both children nil and a
// sentinel label, kept unexported behind isVoid.
var void = &Node{Kind: Label, Label: "\x00∅"}

func isVoid(n *Node) bool { return n.Kind == Label && n.Label == void.Label }

// Derivative returns the Brzozowski derivative of n with respect to label
// l: a regular expression denoting { w : l·w ∈ L(n) }. The result is
// simplified enough to keep repeated derivatives from exploding on the
// expression sizes used in queries.
func (n *Node) Derivative(l string) *Node {
	switch n.Kind {
	case Empty:
		return void
	case Label:
		if isVoid(n) {
			return void
		}
		if n.Label == Wildcard || n.Label == l {
			return Eps()
		}
		return void
	case Concat:
		// d(AB) = d(A)B | [A nullable] d(B)
		left := simplifyCat(n.Left.Derivative(l), n.Right)
		if n.Left.Nullable() {
			return simplifyAlt(left, n.Right.Derivative(l))
		}
		return left
	case Union:
		return simplifyAlt(n.Left.Derivative(l), n.Right.Derivative(l))
	case Star:
		// d(A*) = d(A) A*
		return simplifyCat(n.Left.Derivative(l), n)
	}
	return void
}

func simplifyCat(a, b *Node) *Node {
	if isVoid(a) || isVoid(b) {
		return void
	}
	if a.Kind == Empty {
		return b
	}
	if b.Kind == Empty {
		return a
	}
	return &Node{Kind: Concat, Left: a, Right: b}
}

func simplifyAlt(a, b *Node) *Node {
	if isVoid(a) {
		return b
	}
	if isVoid(b) {
		return a
	}
	if a == b {
		return a
	}
	return &Node{Kind: Union, Left: a, Right: b}
}
