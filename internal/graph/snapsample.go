package graph

import (
	"bytes"
	_ "embed"
)

// The checked-in sample dataset: a ~1000-node Gnutella-shaped edge list
// in SNAP format (sparse scrambled IDs, header comments), small enough to
// commit but real-shaped enough to exercise the loader's remapping and
// the CSR fragment layout. Tests, exp N7 and the CI bench trajectory all
// load this same file, so their numbers are comparable across machines.
//
//go:embed testdata/p2p-sample.txt
var sampleSNAP []byte

// SampleSNAP parses the embedded sample dataset, labeling nodes from the
// given alphabet (nil = unlabeled). Callers outside the repo tree get the
// same graph as `cmd/bench -snap internal/graph/testdata/p2p-sample.txt`.
func SampleSNAP(labels []string) (*Graph, error) {
	return ReadSNAP(bytes.NewReader(sampleSNAP), labels)
}
