// Package graph provides node-labeled directed graphs and the traversal
// primitives used throughout the distributed reachability library.
//
// A Graph is built with a Builder and thereafter supports in-place edge
// insertion and deletion, and — since the live-rebalancing work — node
// insertion and deletion as well. Nodes are identified by dense IDs in
// [0, NumNodes). DeleteNode removes the node's incident edges and leaves a
// tombstone: the ID slot stays allocated (so every other node keeps its
// ID) but reads as Deleted, and a later InsertNode reuses the lowest
// tombstoned slot before growing the ID space. Each node carries a label
// drawn from a finite alphabet; labels drive regular reachability queries,
// where the label of a path is the sequence of labels of its interior
// nodes.
//
// Storage is CSR-compact: the forward and reverse adjacencies live in
// csr.Store bases (one offsets array plus one flat targets array each,
// 4 bytes per node + 4 bytes per edge) with small copy-on-write overlays
// absorbing live mutations; Compact folds an overlay back into its base.
// This is what lets one site hold multi-million-node graphs in RAM.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"distreach/internal/csr"
)

// NodeID identifies a node within a Graph. IDs are dense: 0..NumNodes-1.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Graph is a node-labeled directed graph.
//
// Use a Builder to construct graphs. Read methods are safe for concurrent
// use; InsertEdge and DeleteEdge mutate the structure and require the
// caller to exclude all other readers and writers
// (internal/fragment.Fragmentation serializes this for the distributed
// runtime).
type Graph struct {
	labels []string
	adj    *csr.Store[NodeID] // out-adjacency, sorted per node
	m      int                // number of edges

	deleted []bool   // tombstones; nil when no node was ever deleted
	free    []NodeID // tombstoned slots, ascending; InsertNode reuses the lowest

	revMu sync.Mutex
	rev   *csr.Store[NodeID] // in-adjacency, built lazily; nil until first use
}

// NumNodes reports the number of node-ID slots in g, including tombstones
// left by DeleteNode. IDs are always in [0, NumNodes).
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumLive reports the number of live (non-deleted) nodes.
func (g *Graph) NumLive() int { return len(g.labels) - len(g.free) }

// Deleted reports whether node v is a tombstone left by DeleteNode.
func (g *Graph) Deleted(v NodeID) bool {
	return g.deleted != nil && g.deleted[v]
}

// NumEdges reports the number of directed edges in g.
func (g *Graph) NumEdges() int { return g.m }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string { return g.labels[v] }

// Labels returns the label slice indexed by NodeID. The caller must not
// modify the returned slice.
func (g *Graph) Labels() []string { return g.labels }

// Out returns the out-neighbors of v in ascending order. The caller must not
// modify the returned slice.
func (g *Graph) Out(v NodeID) []NodeID { return g.adj.Row(int32(v)) }

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return g.adj.RowLen(int32(v)) }

// In returns the in-neighbors of v. The reverse adjacency is built on first
// use and cached. The caller must not modify the returned slice.
func (g *Graph) In(v NodeID) []NodeID {
	g.buildReverse()
	return g.rev.Row(int32(v))
}

// InDegree reports the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	g.buildReverse()
	return g.rev.RowLen(int32(v))
}

func (g *Graph) buildReverse() {
	g.revMu.Lock()
	defer g.revMu.Unlock()
	if g.rev != nil {
		return
	}
	deg := make([]int32, len(g.labels))
	g.Edges(func(_, w NodeID) bool {
		deg[w]++
		return true
	})
	rev := make([][]NodeID, len(g.labels))
	for v := range rev {
		if deg[v] > 0 {
			rev[v] = make([]NodeID, 0, deg[v])
		}
	}
	g.Edges(func(v, w NodeID) bool {
		rev[w] = append(rev[w], v)
		return true
	})
	g.rev = csr.FromRows(rev)
}

// InsertEdge adds the directed edge (u, v) in place, reporting whether the
// graph changed (false when the edge already exists). Both endpoints must
// be existing nodes. The caller must exclude concurrent readers and
// writers for the duration of the call.
func (g *Graph) InsertEdge(u, v NodeID) bool {
	if !g.adj.InsertSorted(int32(u), v) {
		return false
	}
	g.m++
	if g.rev != nil {
		g.rev.InsertSorted(int32(v), u)
	}
	return true
}

// DeleteEdge removes the directed edge (u, v) in place, reporting whether
// the graph changed (false when the edge did not exist). The caller must
// exclude concurrent readers and writers for the duration of the call.
func (g *Graph) DeleteEdge(u, v NodeID) bool {
	if !g.adj.RemoveSorted(int32(u), v) {
		return false
	}
	g.m--
	if g.rev != nil {
		g.rev.RemoveSorted(int32(v), u)
	}
	return true
}

// InsertNode adds a node carrying label and returns its ID, reusing the
// lowest tombstoned slot when one exists (so the ID space does not grow
// without bound under node churn) and appending a fresh ID otherwise. The
// caller must exclude concurrent readers and writers for the duration of
// the call.
func (g *Graph) InsertNode(label string) NodeID {
	if len(g.free) > 0 {
		id := g.free[0]
		g.free = g.free[1:]
		g.labels[id] = label
		g.deleted[id] = false
		return id
	}
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, label)
	g.adj.AppendRow(nil)
	if g.deleted != nil {
		g.deleted = append(g.deleted, false)
	}
	if g.rev != nil {
		g.rev.AppendRow(nil)
	}
	return id
}

// DeleteNode removes node v in place: every incident edge (outgoing and
// incoming) is deleted and the slot becomes a tombstone that a later
// InsertNode may reuse. It reports whether the graph changed (false when v
// is out of range or already deleted). Other nodes keep their IDs. The
// caller must exclude concurrent readers and writers for the duration of
// the call.
func (g *Graph) DeleteNode(v NodeID) bool {
	if v < 0 || int(v) >= len(g.labels) || g.Deleted(v) {
		return false
	}
	// Incoming edges require the reverse adjacency; build it before
	// mutating so it stays maintained incrementally afterwards.
	g.buildReverse()
	for _, w := range append([]NodeID(nil), g.Out(v)...) {
		g.rev.RemoveSorted(int32(w), v)
		g.m--
	}
	g.adj.SetRow(int32(v), nil)
	for _, u := range append([]NodeID(nil), g.rev.Row(int32(v))...) {
		g.adj.RemoveSorted(int32(u), v)
		g.m--
	}
	g.rev.SetRow(int32(v), nil)
	if g.deleted == nil {
		g.deleted = make([]bool, len(g.labels))
	}
	g.deleted[v] = true
	g.labels[v] = ""
	g.free, _ = insertSortedIDs(g.free, v)
	return true
}

// insertSortedIDs adds v to the ascending slice s unless already present,
// reporting whether it inserted.
func insertSortedIDs(s []NodeID, v NodeID) ([]NodeID, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	nbrs := g.Out(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Edges calls fn for every directed edge (u, v); it stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < g.adj.NumRows(); u++ {
		for _, v := range g.adj.Row(int32(u)) {
			if !fn(NodeID(u), v) {
				return
			}
		}
	}
}

// Compact folds the forward and reverse adjacency overlays back into
// fresh CSR bases. Content is unchanged; the caller must exclude all
// readers and writers for the duration (the serving runtime compacts at
// rebalance and snapshot time, under the fragmentation write lock).
func (g *Graph) Compact() {
	g.adj.Compact()
	g.revMu.Lock()
	if g.rev != nil {
		g.rev.Compact()
	}
	g.revMu.Unlock()
}

// OverlayRows reports the graph's compaction debt: adjacency rows (forward
// and reverse) currently living outside the flat CSR bases. The
// fragmentation's overlay-threshold auto-compaction consults it.
func (g *Graph) OverlayRows() int {
	rows := g.adj.OverlayRows()
	g.revMu.Lock()
	if g.rev != nil {
		rows += g.rev.OverlayRows()
	}
	g.revMu.Unlock()
	return rows
}

// StorageBytes estimates the resident bytes of the graph's storage:
// adjacency bases and overlays, labels (headers plus content), and the
// tombstone bookkeeping.
func (g *Graph) StorageBytes() int64 {
	b := g.adj.Bytes()
	g.revMu.Lock()
	if g.rev != nil {
		b += g.rev.Bytes()
	}
	g.revMu.Unlock()
	b += int64(cap(g.labels)) * 16
	for _, l := range g.labels {
		b += int64(len(l))
	}
	b += int64(cap(g.deleted)) + int64(cap(g.free))*4
	return b
}

// Validate checks internal invariants and returns an error describing the
// first violation found, or nil. It is intended for tests and for data
// loaded from external sources.
func (g *Graph) Validate() error {
	n := NodeID(len(g.labels))
	count := 0
	for u := NodeID(0); u < n; u++ {
		nbrs := g.Out(u)
		for i, v := range nbrs {
			if v < 0 || v >= n {
				return fmt.Errorf("graph: edge (%d,%d) target out of range [0,%d)", u, v, n)
			}
			if i > 0 && nbrs[i-1] > v {
				return fmt.Errorf("graph: adjacency of node %d not sorted", u)
			}
			count++
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: edge count %d does not match stored m=%d", count, g.m)
	}
	// Tombstone consistency: the free list and the deleted flags must agree,
	// and a deleted node must have no incident edges.
	nDel := 0
	for v := NodeID(0); v < n; v++ {
		if !g.Deleted(v) {
			continue
		}
		nDel++
		if g.OutDegree(v) != 0 {
			return fmt.Errorf("graph: deleted node %d has out-edges", v)
		}
	}
	if nDel != len(g.free) {
		return fmt.Errorf("graph: %d deleted nodes but %d free slots", nDel, len(g.free))
	}
	for i, v := range g.free {
		if !g.Deleted(v) {
			return fmt.Errorf("graph: free slot %d is not deleted", v)
		}
		if i > 0 && g.free[i-1] >= v {
			return fmt.Errorf("graph: free list not sorted at %d", v)
		}
	}
	var bad error
	g.Edges(func(u, v NodeID) bool {
		if g.Deleted(v) {
			bad = fmt.Errorf("graph: edge (%d,%d) targets a deleted node", u, v)
			return false
		}
		return true
	})
	return bad
}

// Clone returns a deep copy of g. The copy shares no mutable state with g
// (the immutable CSR base is shared copy-on-write).
func (g *Graph) Clone() *Graph {
	return &Graph{
		labels:  append([]string(nil), g.labels...),
		adj:     g.adj.Clone(),
		m:       g.m,
		free:    append([]NodeID(nil), g.free...),
		deleted: append([]bool(nil), g.deleted...),
	}
}

// InducedSubgraph returns the subgraph of g induced by nodes, together with
// a mapping from new (dense) IDs back to the original IDs. Nodes may be in
// any order and must not contain duplicates.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID) {
	local := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		local[v] = NodeID(i)
		orig[i] = v
	}
	b := NewBuilder(len(nodes))
	for _, v := range nodes {
		b.AddNode(g.labels[v])
	}
	for i, v := range nodes {
		for _, w := range g.Out(v) {
			if lw, ok := local[w]; ok {
				b.AddEdge(NodeID(i), lw)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		// Induced subgraphs of a valid graph are always valid.
		panic("graph: induced subgraph build failed: " + err.Error())
	}
	return sub, orig
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	b := NewBuilder(g.NumNodes())
	for _, l := range g.labels {
		b.AddNode(l)
	}
	g.Edges(func(u, v NodeID) bool {
		b.AddEdge(v, u)
		return true
	})
	r, err := b.Build()
	if err != nil {
		panic("graph: reverse build failed: " + err.Error())
	}
	return r
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d, |E|=%d}", g.NumNodes(), g.NumEdges())
}

// Builder incrementally constructs a Graph. It is not safe for concurrent
// use. Duplicate edges are coalesced; self-loops are permitted (the paper
// places no constraints on graph shape).
type Builder struct {
	labels []string
	edges  [][2]NodeID
}

// NewBuilder returns a Builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{labels: make([]string, 0, n)}
}

// AddNode appends a node with the given label and returns its ID.
func (b *Builder) AddNode(label string) NodeID {
	b.labels = append(b.labels, label)
	return NodeID(len(b.labels) - 1)
}

// AddNodes appends n nodes all carrying label and returns the ID of the
// first one.
func (b *Builder) AddNodes(n int, label string) NodeID {
	first := NodeID(len(b.labels))
	for i := 0; i < n; i++ {
		b.labels = append(b.labels, label)
	}
	return first
}

// SetLabel overrides the label of an already-added node.
func (b *Builder) SetLabel(v NodeID, label string) { b.labels[v] = label }

// AddEdge records the directed edge (u, v). Endpoints must already exist by
// the time Build is called.
func (b *Builder) AddEdge(u, v NodeID) {
	b.edges = append(b.edges, [2]NodeID{u, v})
}

// NumNodes reports the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// Build finalizes the Builder into an immutable Graph. It sorts adjacency
// lists, removes duplicate edges, and validates endpoints.
func (b *Builder) Build() (*Graph, error) {
	n := NodeID(len(b.labels))
	for _, e := range b.edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references missing node (n=%d)", e[0], e[1], n)
		}
	}
	deg := make([]int32, n)
	for _, e := range b.edges {
		deg[e[0]]++
	}
	adj := make([][]NodeID, n)
	for v := range adj {
		if deg[v] > 0 {
			adj[v] = make([]NodeID, 0, deg[v])
		}
	}
	for _, e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	m := 0
	for v := range adj {
		nbrs := adj[v]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		// Deduplicate in place.
		out := nbrs[:0]
		for i, w := range nbrs {
			if i == 0 || nbrs[i-1] != w {
				out = append(out, w)
			}
		}
		adj[v] = out
		m += len(out)
	}
	return &Graph{labels: append([]string(nil), b.labels...), adj: csr.FromRows(adj), m: m}, nil
}

// MustBuild is like Build but panics on error. Intended for tests and
// generators whose inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
