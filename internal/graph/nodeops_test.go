package graph

import "testing"

// TestNodeInsertDelete exercises the tombstone lifecycle: deletion removes
// incident edges (including self-loops), the slot reads as deleted, and a
// later insert reuses the lowest free slot before growing the ID space.
func TestNodeInsertDelete(t *testing.T) {
	b := NewBuilder(4)
	a := b.AddNode("A")
	c := b.AddNode("B")
	d := b.AddNode("C")
	e := b.AddNode("A")
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	b.AddEdge(d, c)
	b.AddEdge(c, c) // self-loop
	b.AddEdge(e, c)
	g := b.MustBuild()

	if !g.DeleteNode(c) {
		t.Fatal("DeleteNode(c) reported no change")
	}
	if g.DeleteNode(c) {
		t.Fatal("double DeleteNode reported a change")
	}
	if !g.Deleted(c) || g.Deleted(a) {
		t.Fatalf("Deleted flags wrong: c=%v a=%v", g.Deleted(c), g.Deleted(a))
	}
	if g.NumEdges() != 0 {
		t.Fatalf("deleting c should remove all 5 edges, %d remain", g.NumEdges())
	}
	if g.NumNodes() != 4 || g.NumLive() != 3 {
		t.Fatalf("NumNodes=%d NumLive=%d, want 4/3", g.NumNodes(), g.NumLive())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Reuse: the freed slot comes back before the ID space grows.
	id := g.InsertNode("D")
	if id != c {
		t.Fatalf("InsertNode reused %d, want freed slot %d", id, c)
	}
	if g.Deleted(id) || g.Label(id) != "D" {
		t.Fatalf("reused slot not live with new label: deleted=%v label=%q", g.Deleted(id), g.Label(id))
	}
	if !g.InsertEdge(a, id) {
		t.Fatal("InsertEdge to reused node failed")
	}
	next := g.InsertNode("E")
	if int(next) != 4 {
		t.Fatalf("InsertNode grew to %d, want 4", next)
	}
	if g.NumNodes() != 5 || g.NumLive() != 5 {
		t.Fatalf("NumNodes=%d NumLive=%d, want 5/5", g.NumNodes(), g.NumLive())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteNodeIncoming deletes a node whose edges are mostly incoming and
// checks the reverse adjacency stays consistent for later traversals.
func TestDeleteNodeIncoming(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), 4)
	}
	g := b.MustBuild()
	_ = g.In(4) // force the reverse adjacency before mutating
	if !g.DeleteNode(4) {
		t.Fatal("DeleteNode reported no change")
	}
	for i := 0; i < 4; i++ {
		if g.OutDegree(NodeID(i)) != 0 {
			t.Fatalf("node %d still has out-edges after target deletion", i)
		}
	}
	id := g.InsertNode("B")
	if !g.InsertEdge(0, id) || len(g.In(id)) != 1 {
		t.Fatalf("reverse adjacency stale after reuse: in=%v", g.In(id))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneCopiesTombstones: clones must not share free-list state.
func TestCloneCopiesTombstones(t *testing.T) {
	b := NewBuilder(3)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("C")
	b.AddEdge(0, 1)
	g := b.MustBuild()
	g.DeleteNode(1)
	c := g.Clone()
	if !c.Deleted(1) || c.NumLive() != 2 {
		t.Fatalf("clone lost tombstone: deleted=%v live=%d", c.Deleted(1), c.NumLive())
	}
	if id := c.InsertNode("X"); id != 1 {
		t.Fatalf("clone reuse gave %d, want 1", id)
	}
	if !g.Deleted(1) {
		t.Fatal("insert on clone mutated the original's tombstone")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
