package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddNode("n")
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got |V|=%d |E|=%d, want 4/4", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(3, 3) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddNode("a")
	b.AddNode("b")
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edges not coalesced: |E|=%d", g.NumEdges())
	}
}

func TestBuilderRejectsBadEdge(t *testing.T) {
	b := NewBuilder(1)
	b.AddNode("a")
	b.AddEdge(0, 7)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoop(t *testing.T) {
	b := NewBuilder(1)
	b.AddNode("x")
	b.AddEdge(0, 0)
	g := b.MustBuild()
	if !g.HasEdge(0, 0) {
		t.Fatal("self loop lost")
	}
	if !g.Reachable(0, 0) {
		t.Fatal("node must reach itself")
	}
	if g.Dist(0, 0) != 0 {
		t.Fatal("dist(v,v) must be 0")
	}
}

func TestInNeighbors(t *testing.T) {
	g := diamond(t)
	in := g.In(3)
	if len(in) != 2 {
		t.Fatalf("in(3)=%v", in)
	}
	if g.InDegree(0) != 0 || g.OutDegree(0) != 2 {
		t.Fatal("degree wrong")
	}
}

func TestReachableAndDist(t *testing.T) {
	g := diamond(t)
	if !g.Reachable(0, 3) || g.Reachable(3, 0) {
		t.Fatal("reachability wrong")
	}
	if d := g.Dist(0, 3); d != 2 {
		t.Fatalf("dist(0,3)=%d want 2", d)
	}
	if d := g.Dist(3, 0); d != -1 {
		t.Fatalf("dist(3,0)=%d want -1", d)
	}
}

func TestDistancesFromPruned(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddNode("")
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g := b.MustBuild()
	d := g.DistancesFrom(0, 2)
	want := []int32{0, 1, 2, -1, -1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("pruned dist[%d]=%d want %d", i, d[i], w)
		}
	}
}

func TestBFSDepths(t *testing.T) {
	g := diamond(t)
	depths := map[NodeID]int{}
	g.BFS(0, func(v NodeID, d int) bool {
		depths[v] = d
		return true
	})
	if depths[0] != 0 || depths[3] != 2 || depths[1] != 1 || depths[2] != 1 {
		t.Fatalf("BFS depths wrong: %v", depths)
	}
}

func TestDescendants(t *testing.T) {
	g := diamond(t)
	d := g.Descendants(1)
	if !d[1] || !d[3] || d[0] || d[2] {
		t.Fatalf("descendants wrong: %v", d)
	}
}

func TestReverse(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if !r.HasEdge(3, 1) || !r.HasEdge(1, 0) || r.HasEdge(0, 1) {
		t.Fatal("reverse edges wrong")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t)
	sub, orig := g.InducedSubgraph([]NodeID{0, 1, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced: %v", sub)
	}
	if orig[0] != 0 || orig[2] != 3 {
		t.Fatalf("orig map wrong: %v", orig)
	}
}

func TestSCCOnCycle(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddNode("")
	}
	// 0 -> 1 -> 2 -> 0 cycle, plus chain 2 -> 3 -> 4.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("got %d SCCs, want 3 (comp=%v)", n, comp)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("cycle split across components")
	}
	if comp[3] == comp[0] || comp[4] == comp[3] {
		t.Fatal("chain merged into cycle")
	}
}

func TestCondensationTopologicalOrder(t *testing.T) {
	// Property: for every edge (u, v) across components, comp[u] < comp[v].
	check := func(seed uint64) bool {
		g := randomGraph(seed, 30, 90)
		comp, dag := g.Condensation()
		ok := true
		g.Edges(func(u, v NodeID) bool {
			if comp[u] != comp[v] && comp[u] > comp[v] {
				ok = false
				return false
			}
			return true
		})
		return ok && dag.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a deterministic pseudo-random graph without importing
// internal/gen (which would create an import cycle in tests).
func randomGraph(seed uint64, n, m int) *Graph {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddNode("")
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(next()%uint64(n)), NodeID(next()%uint64(n)))
	}
	return b.MustBuild()
}

func TestSCCMutualReachabilityProperty(t *testing.T) {
	// Property: comp[u] == comp[v] iff u and v reach each other.
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(seed, 12, 24)
		comp, _ := g.SCC()
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := NodeID(0); int(v) < g.NumNodes(); v++ {
				same := comp[u] == comp[v]
				mutual := g.Reachable(u, v) && g.Reachable(v, u)
				if same != mutual {
					t.Fatalf("seed %d: comp equal=%v mutual=%v for (%d,%d)", seed, same, mutual, u, v)
				}
			}
		}
	}
}

func TestRoundTripIO(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g2.Label(v) != g.Label(v) {
			t.Fatalf("label mismatch at %d", v)
		}
	}
	g.Edges(func(u, v NodeID) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "nodes x", "nodes 1\n0 a\nedges 1\n0", "nodes 1\n5 a\nedges 0"} {
		if _, err := Read(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestLabelsWithSpaces(t *testing.T) {
	b := NewBuilder(1)
	b.AddNode("database researcher")
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Label(0) != "database researcher" {
		t.Fatalf("label %q", g2.Label(0))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.NumEdges() != g.NumEdges() || c.NumNodes() != g.NumNodes() {
		t.Fatal("clone differs")
	}
}

func TestDFSPostorderCoversAllNodes(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 25, 50)
		post := g.DFSPostorder()
		if len(post) != g.NumNodes() {
			t.Fatalf("postorder has %d entries, want %d", len(post), g.NumNodes())
		}
		seen := make([]bool, g.NumNodes())
		for _, v := range post {
			if seen[v] {
				t.Fatalf("node %d repeated", v)
			}
			seen[v] = true
		}
	}
}

func TestEncodedSizeMonotone(t *testing.T) {
	small := randomGraph(1, 10, 20)
	large := randomGraph(1, 100, 400)
	if EncodedSize(small) >= EncodedSize(large) {
		t.Fatal("EncodedSize should grow with the graph")
	}
}

func TestInsertDeleteEdge(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(seed, 20, 40)
		// Mirror the edge set in a map and replay a mutation sequence.
		mirror := map[[2]NodeID]bool{}
		g.Edges(func(u, v NodeID) bool {
			mirror[[2]NodeID{u, v}] = true
			return true
		})
		if seed%2 == 0 {
			g.In(0) // build the reverse adjacency early: it must stay in sync
		}
		state := seed + 99
		next := func() uint64 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return z ^ (z >> 27)
		}
		for step := 0; step < 200; step++ {
			u := NodeID(next() % 20)
			v := NodeID(next() % 20)
			e := [2]NodeID{u, v}
			if next()%2 == 0 {
				if got, want := g.InsertEdge(u, v), !mirror[e]; got != want {
					t.Fatalf("seed %d step %d: InsertEdge(%d,%d)=%v want %v", seed, step, u, v, got, want)
				}
				mirror[e] = true
			} else {
				if got, want := g.DeleteEdge(u, v), mirror[e]; got != want {
					t.Fatalf("seed %d step %d: DeleteEdge(%d,%d)=%v want %v", seed, step, u, v, got, want)
				}
				delete(mirror, e)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.NumEdges() != len(mirror) {
			t.Fatalf("seed %d: %d edges, mirror has %d", seed, g.NumEdges(), len(mirror))
		}
		count := 0
		g.Edges(func(u, v NodeID) bool {
			if !mirror[[2]NodeID{u, v}] {
				t.Fatalf("seed %d: phantom edge (%d,%d)", seed, u, v)
			}
			count++
			return true
		})
		if count != len(mirror) {
			t.Fatalf("seed %d: iterated %d edges, mirror has %d", seed, count, len(mirror))
		}
		// The (incrementally maintained or fresh) reverse adjacency agrees.
		for v := NodeID(0); v < 20; v++ {
			for _, u := range g.In(v) {
				if !g.HasEdge(u, v) {
					t.Fatalf("seed %d: In(%d) lists %d but edge missing", seed, v, u)
				}
			}
			indeg := 0
			for e := range mirror {
				if e[1] == v {
					indeg++
				}
			}
			if indeg != g.InDegree(v) {
				t.Fatalf("seed %d: InDegree(%d)=%d want %d", seed, v, g.InDegree(v), indeg)
			}
		}
	}
}
