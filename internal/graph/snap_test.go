package graph

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadSNAPBasic(t *testing.T) {
	in := `# Directed graph: test
# Nodes: 4 Edges: 5

10	30
10 20
30	20
20	20
10	30
`
	g, err := ReadSNAP(strings.NewReader(in), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// Original IDs {10,20,30} sort to dense {0,1,2}.
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	// Duplicate (10,30) collapses; self-loop (20,20) is kept.
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	for _, e := range [][2]NodeID{{0, 2}, {0, 1}, {2, 1}, {1, 1}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	// Labels come from the ORIGINAL id mod alphabet: 10%3=1, 20%3=2, 30%3=0.
	for i, want := range []string{"b", "c", "a"} {
		if got := g.Label(NodeID(i)); got != want {
			t.Fatalf("label(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestReadSNAPMalformed(t *testing.T) {
	for _, in := range []string{
		"1\n",                      // one field
		"1 2 3\n",                  // three fields
		"1 x\n",                    // non-integer target
		"x 1\n",                    // non-integer source
		"-1 2\n",                   // negative id
		"1 -2\n",                   // negative id
		"99999999999999999999 1\n", // overflows int64
	} {
		if _, err := ReadSNAP(strings.NewReader(in), nil); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
	// Comments and blank lines alone are fine: an empty graph.
	g, err := ReadSNAP(strings.NewReader("# nothing\n\n  \n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input produced %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadSNAPDeterminism(t *testing.T) {
	a := "5 9\n9 1000\n1000 5\n7 5\n"
	b := "7 5\n1000 5\n5 9\n9 1000\n" // same edges, shuffled
	ga, err := ReadSNAP(strings.NewReader(a), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ReadSNAP(strings.NewReader(b), []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := Write(&wa, ga); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wb, gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatalf("edge order changed the loaded graph:\n%s\nvs\n%s", wa.String(), wb.String())
	}
}

func TestOpenSNAPGzipRoundTrip(t *testing.T) {
	in := "# gz test\n3 8\n8 12\n12 3\n"
	dir := t.TempDir()
	plain := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(plain, []byte(in), 0o644); err != nil {
		t.Fatal(err)
	}
	// The gzipped copy deliberately has NO .gz extension: detection is by
	// magic bytes.
	zipped := filepath.Join(dir, "g.bin")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write([]byte(in)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(zipped, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	gp, err := OpenSNAP(plain, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	gz, err := OpenSNAP(zipped, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	var wp, wz bytes.Buffer
	if err := Write(&wp, gp); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wz, gz); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wp.Bytes(), wz.Bytes()) {
		t.Fatal("gzip and plain loads differ")
	}
}

func TestOpenSNAPSampleDataset(t *testing.T) {
	g, err := OpenSNAP(filepath.Join("testdata", "p2p-sample.txt"), []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 900 || g.NumNodes() > 1100 {
		t.Fatalf("sample has %d nodes, want ~1000", g.NumNodes())
	}
	if g.NumEdges() < 2500 {
		t.Fatalf("sample has %d edges, want >= 2500", g.NumEdges())
	}
}

func FuzzSNAPLoader(f *testing.F) {
	f.Add("# c\n1 2\n2 3\n")
	f.Add("10\t30\n30\t10\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("5 5\n# trailing\n")
	f.Add("18446744073709551615 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadSNAP(strings.NewReader(in), []string{"a", "b"})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
	})
}
