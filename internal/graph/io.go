package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec serializes a labeled graph in a simple line-oriented
// format, close to the edge-list files used by SNAP datasets but with an
// explicit label section:
//
//	# optional comments
//	nodes <n>
//	<id> <label>          (n lines; ids must be 0..n-1 in order)
//	edges <m>
//	<u> <v>               (m lines)
//
// The format is self-describing enough for the CLIs and keeps parsing in the
// standard library.

// Write serializes g to w in the text format above.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "%d %s\n", v, g.labels[v])
	}
	fmt.Fprintf(bw, "edges %d\n", g.NumEdges())
	var err error
	g.Edges(func(u, v NodeID) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a graph in the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := func() (string, bool) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	hdr, ok := line()
	if !ok {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n int
	if _, err := fmt.Sscanf(hdr, "nodes %d", &n); err != nil {
		return nil, fmt.Errorf("graph: bad node header %q: %w", hdr, err)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		s, ok := line()
		if !ok {
			return nil, fmt.Errorf("graph: expected %d node lines, got %d", n, i)
		}
		fields := strings.SplitN(s, " ", 2)
		id, err := strconv.Atoi(fields[0])
		if err != nil || id != i {
			return nil, fmt.Errorf("graph: node line %d: expected id %d, got %q", i, i, s)
		}
		label := ""
		if len(fields) == 2 {
			label = fields[1]
		}
		b.AddNode(label)
	}
	hdr, ok = line()
	if !ok {
		return nil, fmt.Errorf("graph: missing edge header")
	}
	var m int
	if _, err := fmt.Sscanf(hdr, "edges %d", &m); err != nil {
		return nil, fmt.Errorf("graph: bad edge header %q: %w", hdr, err)
	}
	for i := 0; i < m; i++ {
		s, ok := line()
		if !ok {
			return nil, fmt.Errorf("graph: expected %d edge lines, got %d", m, i)
		}
		var u, v int
		if _, err := fmt.Sscanf(s, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", s, err)
		}
		b.AddEdge(NodeID(u), NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// EncodedSize estimates the number of bytes needed to ship g over the
// network: 8 bytes per edge (two 32-bit endpoints) plus the label bytes and
// a 4-byte length per node. This is the accounting model used when the naive
// baselines ship whole fragments to the coordinator.
func EncodedSize(g *Graph) int {
	size := 16 // header: node and edge counts
	for _, l := range g.labels {
		size += 4 + len(l)
	}
	size += 8 * g.NumEdges()
	return size
}
