package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SNAP edge-list loader. The Stanford SNAP collection (p2p-Gnutella,
// soc-Slashdot, twitter-combined, ...) distributes graphs as plain or
// gzipped text: '#'-prefixed comment lines followed by one directed edge
// per line, two integer node IDs separated by whitespace. Node IDs are
// arbitrary (sparse, unordered); this loader remaps them to the dense
// [0, n) space the rest of the system requires.
//
// The remap is deterministic and content-addressed: distinct original IDs
// are sorted ascending and assigned dense IDs in that order, so the same
// file always produces the same graph regardless of edge order, and the
// mapping can be recomputed by anyone holding the file. Duplicate edges
// collapse (the Builder deduplicates); self-loops are kept.
//
// SNAP files carry no labels. When a label alphabet is supplied, node
// labels are assigned deterministically from the ORIGINAL ID
// (labels[origID mod len]), so the labeling is stable under edge
// reordering too; an empty alphabet leaves every node unlabeled.

// snapMaxLine bounds a single input line; real SNAP files stay far below.
const snapMaxLine = 1 << 20

// ReadSNAP parses a SNAP edge list from r (plain text; use OpenSNAP for
// transparent gzip). labels may be nil for an unlabeled graph.
func ReadSNAP(r io.Reader, labels []string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), snapMaxLine)
	type edge struct{ u, v int64 }
	var edges []edge
	ids := make(map[int64]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: snap line %d: want 2 fields, got %d (%q)", lineNo, len(fields), s)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: snap line %d: bad source id %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: snap line %d: bad target id %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: snap line %d: negative node id", lineNo)
		}
		edges = append(edges, edge{u, v})
		ids[u] = struct{}{}
		ids[v] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: snap: %w", err)
	}
	// Deterministic dense remap: original IDs sorted ascending.
	order := make([]int64, 0, len(ids))
	for id := range ids {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	dense := make(map[int64]NodeID, len(order))
	b := NewBuilder(len(order))
	for i, id := range order {
		dense[id] = NodeID(i)
		label := ""
		if len(labels) > 0 {
			label = labels[id%int64(len(labels))]
		}
		b.AddNode(label)
	}
	for _, e := range edges {
		b.AddEdge(dense[e.u], dense[e.v])
	}
	return b.Build()
}

// OpenSNAP loads a SNAP edge list from path, transparently decompressing
// gzip (detected by magic bytes, not file extension).
func OpenSNAP(path string, labels []string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: snap %s: %w", path, err)
		}
		defer zr.Close()
		return ReadSNAP(zr, labels)
	}
	return ReadSNAP(br, labels)
}
