package graph

// This file contains the traversal primitives (BFS, DFS, reachability,
// unweighted shortest distance, strongly connected components) used by both
// the centralized baselines and the per-fragment local evaluation steps.

// Reachable reports whether t is reachable from s, using BFS.
func (g *Graph) Reachable(s, t NodeID) bool {
	if s == t {
		return true
	}
	seen := make([]bool, g.NumNodes())
	seen[s] = true
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if w == t {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// BFS runs a breadth-first search from s and calls visit(v, depth) for every
// reachable node, including s at depth 0. Traversal stops early if visit
// returns false.
func (g *Graph) BFS(s NodeID, visit func(v NodeID, depth int) bool) {
	seen := make([]bool, g.NumNodes())
	seen[s] = true
	type item struct {
		v NodeID
		d int
	}
	queue := []item{{s, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if !visit(it.v, it.d) {
			return
		}
		for _, w := range g.Out(it.v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{w, it.d + 1})
			}
		}
	}
}

// Descendants returns the set of nodes reachable from s (including s) as a
// boolean slice indexed by NodeID.
func (g *Graph) Descendants(s NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	seen[s] = true
	stack := []NodeID{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Dist returns the length of the shortest path from s to t (number of
// edges), or -1 if t is unreachable from s. Edges are unweighted, so BFS
// computes exact distances.
func (g *Graph) Dist(s, t NodeID) int {
	if s == t {
		return 0
	}
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if w == t {
					return int(dist[w])
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}

// DistancesFrom returns the BFS distance from s to every node, with -1 for
// unreachable nodes. If maxDepth >= 0 the search is pruned beyond that depth.
func (g *Graph) DistancesFrom(s NodeID, maxDepth int) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && int(dist[v]) >= maxDepth {
			continue
		}
		for _, w := range g.Out(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// DFSPostorder performs an iterative depth-first search over the whole graph
// (restarting from every unvisited node in ID order) and returns the nodes
// in postorder. It is a building block for SCC computation and for the
// interval reachability index.
func (g *Graph) DFSPostorder() []NodeID {
	n := g.NumNodes()
	seen := make([]bool, n)
	post := make([]NodeID, 0, n)
	type frame struct {
		v NodeID
		i int // next out-edge index to explore
	}
	var stack []frame
	for root := NodeID(0); int(root) < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack, frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(g.Out(f.v)) {
				w := g.Out(f.v)[f.i]
				f.i++
				if !seen[w] {
					seen[w] = true
					stack = append(stack, frame{w, 0})
				}
				continue
			}
			post = append(post, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	return post
}

// SCC computes strongly connected components using Kosaraju's algorithm.
// It returns comp, a slice mapping each node to its component index, and the
// number of components. Component indices are a reverse topological order of
// the condensation: if there is an edge from component a to component b with
// a != b, then comp values satisfy a > b... see TopoComponents for an
// explicit order.
func (g *Graph) SCC() (comp []int32, n int) {
	post := g.DFSPostorder()
	rg := g.Reverse()
	comp = make([]int32, g.NumNodes())
	for i := range comp {
		comp[i] = -1
	}
	var c int32
	// Process in reverse postorder of g; each DFS tree in rg is one SCC.
	for i := len(post) - 1; i >= 0; i-- {
		root := post[i]
		if comp[root] >= 0 {
			continue
		}
		stack := []NodeID{root}
		comp[root] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range rg.Out(v) {
				if comp[w] < 0 {
					comp[w] = c
					stack = append(stack, w)
				}
			}
		}
		c++
	}
	return comp, int(c)
}

// Condensation returns the DAG of strongly connected components: comp maps
// nodes to component IDs in topological order (edges go from lower to higher
// component IDs is NOT guaranteed by SCC alone, so this routine renumbers),
// and dag is the component graph with one node per SCC, labeled "".
func (g *Graph) Condensation() (comp []int32, dag *Graph) {
	comp, nc := g.SCC()
	// Kosaraju assigns component 0 to a source component of the condensation:
	// components are discovered in reverse topological order of the
	// condensation DAG reversed, i.e. comp IDs already form a topological
	// order (edges go from smaller IDs to larger IDs never happens; verify by
	// construction: an edge u->v across components means u's component was
	// discovered no later than v's). We renumber defensively by checking.
	b := NewBuilder(nc)
	b.AddNodes(nc, "")
	seen := make(map[int64]struct{})
	g.Edges(func(u, v NodeID) bool {
		cu, cv := comp[u], comp[v]
		if cu != cv {
			key := int64(cu)<<32 | int64(uint32(cv))
			if _, ok := seen[key]; !ok {
				seen[key] = struct{}{}
				b.AddEdge(NodeID(cu), NodeID(cv))
			}
		}
		return true
	})
	return comp, b.MustBuild()
}
