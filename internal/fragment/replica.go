package fragment

import (
	"errors"
	"fmt"
	"sync"
)

// ErrReplicaBehind reports that an update batch arrived with an LSN more
// than one past the replica's last applied LSN: the replica missed
// earlier batches (it restarted from stale files, or was unreachable when
// they were broadcast) and must catch up — by log replay or snapshot
// transfer — before it can apply new ones. The serving layer turns this
// into automatic catch-up replication.
var ErrReplicaBehind = errors.New("fragment: replica is behind the update log")

// Replica is a site's handle on the deployment's current fragmentation,
// tagged with the epoch that advances on every live re-fragmentation and
// the LSN of the last update batch applied. Sites resolve the state per
// request, so queries in flight across a rebalance keep evaluating
// against the fragmentation (and epoch) they started with — the swap is
// atomic and nothing blocks: zero-downtime redeploy.
//
// Update batches apply in LSN order: batch N+1 applies only once batch N
// has. The LSNs come from one sequencer per deployment (see
// internal/oplog), which gives every replica the same total order however
// many gateways write — the property that makes independently maintained
// replicas converge to the same fingerprint. Re-delivered batches (the
// broadcast to co-located sites sharing one Replica, or a retried frame)
// replay the recorded result instead of re-applying — node insertion,
// unlike edge ops, is not idempotent.
type Replica struct {
	mu    sync.Mutex
	fr    *Fragmentation
	epoch uint64
	lsn   uint64

	// Recently applied batches and their results, keyed by LSN, for
	// broadcast dedupe. Each entry remembers the submitter's nonce so a
	// *different* writer colliding on an LSN (two gateways that failed to
	// share a sequencer) fails loudly instead of silently swallowing a
	// batch.
	seqRes map[uint64]appliedBatch
	seqLog []uint64 // FIFO of live keys in seqRes

	// rebMu serializes rebalances so k co-located sites handling the same
	// broadcast frame do not rebuild k times.
	rebMu sync.Mutex
}

type appliedBatch struct {
	nonce uint64
	res   ApplyResult
	err   string // non-empty: the batch was rejected (deterministically)
}

// seqWindow bounds how many applied batch results a replica remembers for
// dedupe; far more than the frames of any plausible in-flight broadcast.
const seqWindow = 256

// NewReplica wraps fr at epoch 0, LSN 0 (a fresh deployment).
func NewReplica(fr *Fragmentation) *Replica { return NewReplicaAt(fr, 0, 0) }

// NewReplicaAt wraps fr at the given epoch and LSN — the state recovered
// from a snapshot plus local log replay.
func NewReplicaAt(fr *Fragmentation, epoch, lsn uint64) *Replica {
	return &Replica{fr: fr, epoch: epoch, lsn: lsn, seqRes: make(map[uint64]appliedBatch, seqWindow)}
}

// Current reports the fragmentation serving queries right now and its
// epoch.
func (r *Replica) Current() (*Fragmentation, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fr, r.epoch
}

// State reports the fragmentation, epoch and last applied LSN atomically.
func (r *Replica) State() (*Fragmentation, uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fr, r.epoch, r.lsn
}

// Epoch reports the current epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// LSN reports the last applied update batch's LSN.
func (r *Replica) LSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lsn
}

// ApplyLSN runs one sequenced update batch against the current
// fragmentation, enforcing the total order:
//
//   - lsn == LSN()+1 attempts the batch and advances the replica. A batch
//     the validator rejects still advances (and records its error): the
//     rejection is deterministic across replicas, so the slot becomes a
//     no-op of the total order rather than a hole no replica can cross;
//   - lsn <= LSN() is a re-delivery: the recorded outcome replays if the
//     nonce matches (nonce 0, used by log replay, matches anything); a
//     mismatched nonce or an LSN too old for the dedupe window errors —
//     a second writer is forking the order;
//   - lsn > LSN()+1 returns ErrReplicaBehind: the replica missed batches
//     and must catch up first.
//
// lsn 0 bypasses ordering entirely (apply directly, advance nothing) —
// the escape hatch for local, unsequenced mutation in tests and tools.
// advanced reports whether this call moved the replica's LSN (true even
// for a recorded rejection — the site must log the slot either way).
func (r *Replica) ApplyLSN(lsn, nonce uint64, ops []Op) (res ApplyResult, advanced bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if lsn == 0 {
		res, err = r.fr.Apply(ops)
		return res, false, err
	}
	if lsn <= r.lsn {
		if rec, ok := r.seqRes[lsn]; ok {
			if nonce == 0 || rec.nonce == 0 || nonce == rec.nonce {
				if rec.err != "" {
					return ApplyResult{}, false, errors.New(rec.err)
				}
				return rec.res, false, nil
			}
			return ApplyResult{}, false, fmt.Errorf("fragment: batch LSN %d was already applied by a different writer (deployments must share one sequencer)", lsn)
		}
		return ApplyResult{}, false, fmt.Errorf("fragment: stale batch LSN %d, replica is at %d (foreign sequencer?)", lsn, r.lsn)
	}
	if lsn != r.lsn+1 {
		return ApplyResult{}, false, fmt.Errorf("%w (batch LSN %d, replica at %d)", ErrReplicaBehind, lsn, r.lsn)
	}
	res, err = r.fr.Apply(ops)
	r.lsn = lsn
	rec := appliedBatch{nonce: nonce, res: res}
	if err != nil {
		rec.err = err.Error()
	}
	if len(r.seqLog) >= seqWindow {
		delete(r.seqRes, r.seqLog[0])
		r.seqLog = r.seqLog[1:]
	}
	r.seqRes[lsn] = rec
	r.seqLog = append(r.seqLog, lsn)
	return res, true, err
}

// Install atomically replaces the replica's whole state with a snapshot:
// fragmentation, epoch and LSN. Queries in flight keep draining against
// the state they started with. Going backward is refused (installed is
// false) so a stale snapshot frame re-delivered out of order cannot
// regress a replica that already caught up past it.
func (r *Replica) Install(fr *Fragmentation, epoch, lsn uint64) (installed bool) {
	r.mu.Lock()
	if lsn < r.lsn || (lsn == r.lsn && epoch <= r.epoch) {
		r.mu.Unlock()
		return false
	}
	old := r.fr
	r.fr, r.epoch, r.lsn = fr, epoch, lsn
	r.seqRes = make(map[uint64]appliedBatch, seqWindow)
	r.seqLog = nil
	r.mu.Unlock()
	// A snapshot's index section (oplog snapshot v2) may have adopted
	// ready indexes into fr already — only backfill the fragments that
	// did not get one. Otherwise inherit the configuration from the
	// replaced state and rebuild asynchronously; queries hitting the
	// fresh fragmentation fall back to direct evaluation meanwhile.
	if fr.ReachIndexBudget() > 0 {
		fr.KickReachIndexRebuilds()
	} else if b := old.ReachIndexBudget(); b > 0 {
		fr.SetReachIndexPolicy(old.ReachIndexPolicy())
		fr.EnableReachIndex(b)
	}
	return true
}

// Rebalance advances the replica to the given epoch by re-fragmenting the
// current graph with partitioner p: the new fragmentation is built while
// queries keep flowing (the rebuild holds only the old fragmentation's
// read lock, which excludes updates but not queries), then swapped in
// atomically. It reports whether this call performed the rebuild — false
// when the replica already reached (or passed) the epoch, the idempotent
// no-op the broadcast relies on. The fragment count is preserved: each
// site keeps serving the same fragment index of the new fragmentation.
// The LSN is untouched: re-fragmentation changes the assignment, not the
// graph, so the update order continues across the epoch switch.
func (r *Replica) Rebalance(epoch uint64, p Partitioner) (bool, error) {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	cur, curEpoch := r.Current()
	if epoch <= curEpoch {
		return false, nil // already there: another co-located site rebuilt
	}
	k := cur.Card()
	// Fold the graph's mutation overlay into its flat CSR base first — the
	// epoch swap is the designated compaction point, and the rebuild below
	// re-reads the whole graph anyway. The brief write lock gives the
	// exclusivity the base swap needs (the same exclusivity updates use).
	cur.mu.Lock()
	cur.g.Compact()
	cur.mu.Unlock()
	// Hold the read lock during the rebuild: updates (which need the write
	// lock) are excluded, so the graph is stable, while queries (fellow
	// read-lockers) keep draining against the old fragmentation.
	cur.mu.RLock()
	next, err := Partition(cur.g, p, k)
	cur.mu.RUnlock()
	if err != nil {
		return false, fmt.Errorf("fragment: rebalance to epoch %d: %w", epoch, err)
	}
	r.mu.Lock()
	r.fr, r.epoch = next, epoch
	r.mu.Unlock()
	// The rebuilt fragmentation inherits the index configuration; its
	// indexes build asynchronously while queries drain with direct
	// evaluation — the same swap-then-catch-up discipline as the epoch
	// switch itself.
	if b := cur.ReachIndexBudget(); b > 0 {
		next.SetReachIndexPolicy(cur.ReachIndexPolicy())
		next.EnableReachIndex(b)
	}
	return true, nil
}
