package fragment

import (
	"fmt"
	"sync"
)

// Replica is a site's handle on the deployment's current fragmentation,
// tagged with an epoch that advances on every live re-fragmentation. Sites
// resolve Current per request, so queries in flight across a rebalance
// keep evaluating against the fragmentation (and epoch) they started with
// — the swap is atomic and nothing blocks: zero-downtime redeploy.
//
// In-process deployments share one Replica across all their sites, which
// makes broadcast application idempotent: update frames are deduplicated
// by sequence number, and a rebalance frame rebuilds once (the first site
// to handle it) while the rest observe the epoch already reached.
// Separate-process sites each own a Replica; determinism of the
// partitioners makes their independent rebuilds agree.
type Replica struct {
	mu    sync.Mutex
	fr    *Fragmentation
	epoch uint64

	// Recently applied update-batch sequence numbers and their results,
	// for broadcast dedupe. A window (rather than just the last seq) keeps
	// dedupe correct when two coordinators' serialized update streams
	// interleave at the replica.
	seqRes map[uint64]ApplyResult
	seqLog []uint64 // FIFO of live keys in seqRes

	// rebMu serializes rebalances so k co-located sites handling the same
	// broadcast frame do not rebuild k times.
	rebMu sync.Mutex
}

// seqWindow bounds how many applied batch results a replica remembers for
// dedupe; far more than the frames of any plausible in-flight broadcast
// interleaving.
const seqWindow = 256

// NewReplica wraps fr at epoch 0.
func NewReplica(fr *Fragmentation) *Replica {
	return &Replica{fr: fr, seqRes: make(map[uint64]ApplyResult, seqWindow)}
}

// Current reports the fragmentation serving queries right now and its
// epoch.
func (r *Replica) Current() (*Fragmentation, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fr, r.epoch
}

// Epoch reports the current epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Apply runs one transactional update batch against the current
// fragmentation. A non-zero seq deduplicates broadcast delivery: when
// several sites share one Replica, the first frame applies the batch and
// the rest replay its recorded result instead of re-applying (node
// insertion is not idempotent, unlike edge ops). Coordinators draw their
// sequence numbers from random 64-bit bases, so two coordinators'
// streams neither collide nor evict each other's in-flight entries from
// the dedupe window. seq 0 always applies.
func (r *Replica) Apply(seq uint64, ops []Op) (ApplyResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq != 0 {
		if res, ok := r.seqRes[seq]; ok {
			return res, nil
		}
	}
	res, err := r.fr.Apply(ops)
	if err != nil {
		return res, err
	}
	if seq != 0 {
		if len(r.seqLog) >= seqWindow {
			delete(r.seqRes, r.seqLog[0])
			r.seqLog = r.seqLog[1:]
		}
		r.seqRes[seq] = res
		r.seqLog = append(r.seqLog, seq)
	}
	return res, nil
}

// Rebalance advances the replica to the given epoch by re-fragmenting the
// current graph with partitioner p: the new fragmentation is built while
// queries keep flowing (the rebuild holds only the old fragmentation's
// read lock, which excludes updates but not queries), then swapped in
// atomically. It reports whether this call performed the rebuild — false
// when the replica already reached (or passed) the epoch, the idempotent
// no-op the broadcast relies on. The fragment count is preserved: each
// site keeps serving the same fragment index of the new fragmentation.
func (r *Replica) Rebalance(epoch uint64, p Partitioner) (bool, error) {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	cur, curEpoch := r.Current()
	if epoch <= curEpoch {
		return false, nil // already there: another co-located site rebuilt
	}
	k := cur.Card()
	// Hold the read lock during the rebuild: updates (which need the write
	// lock) are excluded, so the graph is stable, while queries (fellow
	// read-lockers) keep draining against the old fragmentation.
	cur.mu.RLock()
	next, err := Partition(cur.g, p, k)
	cur.mu.RUnlock()
	if err != nil {
		return false, fmt.Errorf("fragment: rebalance to epoch %d: %w", epoch, err)
	}
	r.mu.Lock()
	r.fr, r.epoch = next, epoch
	r.mu.Unlock()
	return true, nil
}
