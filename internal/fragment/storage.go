package fragment

import (
	"sort"

	"distreach/internal/graph"
)

// Compact per-fragment storage. A fragment used to carry a
// map[graph.NodeID]int32 (global -> local), a []graph.NodeID (local ->
// global), a [][]int32 adjacency and a []string label column — roughly a
// hundred bytes per node before a single edge is stored, dominated by the
// map and the per-row slice allocations. The structures in this file
// replace all of that with flat arrays plus small mutation overlays, the
// same base+overlay discipline as internal/csr:
//
//   - idIndex keeps ONE array, the local->global column, laid out so it
//     doubles as the global->local index: the real prefix and the virtual
//     tail are each sorted by global ID, so a lookup is two binary
//     searches. Live mutations (which renumber slots by swapping) go to
//     small patch/override maps consulted first.
//   - labelTable interns labels: one byte per node referencing a
//     dictionary of distinct labels, with a spill map for the unbounded
//     case (more than 256 distinct labels).
//
// Both are restored to their flat form by compact(), which fragments run
// at rebalance and snapshot time alongside csr.Store.Compact.

// idIndex is the two-way local-slot <-> global-ID mapping.
//
// The base array is immutable between compactions: base[l] is the global
// ID of slot l as of the last compaction, with base[:baseReal] and
// base[baseReal:] each sorted ascending, so global->local needs no second
// array — two binary searches recover the slot. Mutations never touch
// base; they record slot reassignments in patch/tail (local->global) and
// moved or removed globals in over/dead (global->local). The caller (the
// swap choreography in update.go) is responsible for recording the fate
// of every displaced global, exactly as it maintained the two parallel
// structures before.
type idIndex struct {
	base     []graph.NodeID // slot -> global at last compaction
	baseReal int            // real/virtual split of base at last compaction
	n        int            // current slot count

	patch map[int32]graph.NodeID // slot overrides, slot < len(base)
	tail  []graph.NodeID         // slots appended past the base
	over  map[graph.NodeID]int32 // global -> slot overrides
	dead  map[graph.NodeID]bool  // globals whose base hit is stale
}

// newIDIndex wraps a base array whose real prefix [0,nReal) and virtual
// tail [nReal,len) are each sorted ascending by global ID.
func newIDIndex(base []graph.NodeID, nReal int) *idIndex {
	return &idIndex{base: base, baseReal: nReal, n: len(base)}
}

// len reports the current slot count.
func (ix *idIndex) len() int { return ix.n }

// global maps slot l to its global ID.
func (ix *idIndex) global(l int32) graph.NodeID {
	if int(l) >= len(ix.base) {
		return ix.tail[int(l)-len(ix.base)]
	}
	if v, ok := ix.patch[l]; ok {
		return v
	}
	return ix.base[l]
}

// searchBase finds v in the base array: two binary searches, one per
// sorted segment.
func (ix *idIndex) searchBase(v graph.NodeID) (int32, bool) {
	seg := ix.base[:ix.baseReal]
	if at := sort.Search(len(seg), func(i int) bool { return seg[i] >= v }); at < len(seg) && seg[at] == v {
		return int32(at), true
	}
	seg = ix.base[ix.baseReal:]
	if at := sort.Search(len(seg), func(i int) bool { return seg[i] >= v }); at < len(seg) && seg[at] == v {
		return int32(ix.baseReal + at), true
	}
	return 0, false
}

// local maps global ID v to its slot; ok is false when v is not mapped.
func (ix *idIndex) local(v graph.NodeID) (int32, bool) {
	if l, ok := ix.over[v]; ok {
		return l, true
	}
	if ix.dead[v] {
		return 0, false
	}
	if l, ok := ix.searchBase(v); ok {
		return l, true
	}
	return 0, false
}

// setGlobal rewrites the slot -> global direction only: slot l now reads
// back v. The previous occupant's global -> slot entry is untouched.
func (ix *idIndex) setGlobal(l int32, v graph.NodeID) {
	if int(l) >= len(ix.base) {
		ix.tail[int(l)-len(ix.base)] = v
		return
	}
	if ix.patch == nil {
		ix.patch = make(map[int32]graph.NodeID)
	}
	ix.patch[l] = v
}

// setLocal rewrites the global -> slot direction only: v now resolves to
// slot l.
func (ix *idIndex) setLocal(v graph.NodeID, l int32) {
	if ix.over == nil {
		ix.over = make(map[graph.NodeID]int32)
	}
	ix.over[v] = l
	delete(ix.dead, v)
}

// delLocal removes v from the global -> slot direction.
func (ix *idIndex) delLocal(v graph.NodeID) {
	delete(ix.over, v)
	if _, ok := ix.searchBase(v); ok {
		if ix.dead == nil {
			ix.dead = make(map[graph.NodeID]bool)
		}
		ix.dead[v] = true
	}
}

// append assigns v the next slot and records both directions.
func (ix *idIndex) append(v graph.NodeID) int32 {
	l := int32(ix.n)
	if ix.n < len(ix.base) {
		// A truncation shrank below the base; reuse the slot via patch.
		ix.setGlobal(l, v)
	} else {
		ix.tail = append(ix.tail, v)
	}
	ix.setLocal(v, l)
	ix.n++
	return l
}

// truncate drops every slot >= n. Globals occupying dropped slots must
// already have been delLocal'd (or moved) by the caller.
func (ix *idIndex) truncate(n int) {
	if keep := n - len(ix.base); keep < len(ix.tail) {
		if keep < 0 {
			keep = 0
		}
		ix.tail = ix.tail[:keep]
	}
	ix.n = n
}

// overlayEntries reports the compaction debt of the index.
func (ix *idIndex) overlayEntries() int {
	return len(ix.patch) + len(ix.tail) + len(ix.over) + len(ix.dead)
}

// bytes estimates resident bytes: exact for the base, ~48 bytes per map
// entry for the overlays.
func (ix *idIndex) bytes() int64 {
	return int64(cap(ix.base))*4 + int64(cap(ix.tail))*4 +
		48*int64(len(ix.patch)+len(ix.over)+len(ix.dead))
}

// labelTable stores one label per slot, interned: slots reference a
// dictionary of distinct labels through a one-byte id. Fragments carry
// few distinct labels (query alphabets are small), so the dictionary is
// tiny; if a workload ever exceeds 256 distinct labels the extras land in
// a spill map rather than growing the per-slot width.
type labelTable struct {
	dict  []string         // distinct labels, first 256 addressable by id
	ids   map[string]int   // label -> dict position
	of    []uint8          // slot -> dict id (ignored when spilled)
	spill map[int32]string // slots whose label did not fit the dictionary
}

func newLabelTable(n int) *labelTable {
	return &labelTable{ids: make(map[string]int), of: make([]uint8, 0, n)}
}

// len reports the slot count.
func (lt *labelTable) len() int { return len(lt.of) }

// get returns the label of slot l.
func (lt *labelTable) get(l int32) string {
	if s, ok := lt.spill[l]; ok {
		return s
	}
	return lt.dict[lt.of[l]]
}

// intern returns the dictionary id for s, or -1 when the dictionary is
// full and s is not in its addressable range.
func (lt *labelTable) intern(s string) int {
	if id, ok := lt.ids[s]; ok {
		if id < 256 {
			return id
		}
		return -1
	}
	lt.ids[s] = len(lt.dict)
	lt.dict = append(lt.dict, s)
	if len(lt.dict) <= 256 {
		return len(lt.dict) - 1
	}
	return -1
}

// set stores s as the label of existing slot l.
func (lt *labelTable) set(l int32, s string) {
	if id := lt.intern(s); id >= 0 {
		lt.of[l] = uint8(id)
		delete(lt.spill, l)
		return
	}
	if lt.spill == nil {
		lt.spill = make(map[int32]string)
	}
	lt.spill[l] = s
}

// append adds s as the label of the next slot.
func (lt *labelTable) append(s string) {
	lt.of = append(lt.of, 0)
	lt.set(int32(len(lt.of)-1), s)
}

// truncate drops every slot >= n.
func (lt *labelTable) truncate(n int) {
	for l := range lt.spill {
		if int(l) >= n {
			delete(lt.spill, l)
		}
	}
	lt.of = lt.of[:n]
}

// bytes estimates resident bytes: one byte per slot, string headers plus
// content for the dictionary, ~64 bytes per spill/index entry.
func (lt *labelTable) bytes() int64 {
	b := int64(cap(lt.of))
	for _, s := range lt.dict {
		b += 16 + int64(len(s)) + 48 // header+content plus the ids map entry
	}
	for _, s := range lt.spill {
		b += 64 + int64(len(s))
	}
	return b
}
