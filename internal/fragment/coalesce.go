package fragment

import (
	"fmt"

	"distreach/internal/graph"
)

// Coalesce maps a fragmentation onto fewer sites: placement[i] gives the
// site hosting fragment Fi, and the result is a new fragmentation with one
// (possibly disconnected) fragment per site. The paper observes that
// "multiple fragments may reside in a single site, and our algorithms can
// be easily adapted to accommodate this" — coalescing makes the adaptation
// literal: edges between co-located fragments become internal, shrinking
// |Vf| and the number of visits accordingly.
func Coalesce(fr *Fragmentation, placement []int, sites int) (*Fragmentation, error) {
	if len(placement) != fr.Card() {
		return nil, fmt.Errorf("fragment: placement covers %d fragments, have %d", len(placement), fr.Card())
	}
	if sites <= 0 {
		return nil, fmt.Errorf("fragment: site count %d must be positive", sites)
	}
	g := fr.Graph()
	assign := make([]int, g.NumNodes())
	for v := range assign {
		o := fr.Owner(graph.NodeID(v))
		if o < 0 {
			continue // tombstone: Build ignores its assignment
		}
		p := placement[o]
		if p < 0 || p >= sites {
			return nil, fmt.Errorf("fragment: placement %d out of range [0,%d)", p, sites)
		}
		assign[v] = p
	}
	return Build(g, assign, sites)
}
