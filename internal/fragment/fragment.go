// Package fragment implements graph fragmentations F = (F, Gf) as defined in
// Section 2.1 of the paper: a partition of the node set into fragments
// F1..Fk, where each fragment additionally carries
//
//   - Fi.O, its virtual nodes: one per node in another fragment that some
//     node of Fi has an edge to, together with the cross edges cEi;
//   - Fi.I, its in-nodes: the nodes of Fi that have an incoming cross edge
//     from another fragment.
//
// The fragment graph Gf collects all in-nodes, virtual nodes and cross
// edges. No constraints are placed on how the graph is fragmented: any
// assignment of nodes to fragments is legal (the paper's guarantees must
// hold for arbitrary fragmentations).
package fragment

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"distreach/internal/csr"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

// Fragmentation is a partition of a graph into fragments plus the derived
// fragment graph. The node-to-fragment assignment is fixed at Build time,
// but the edge set is live: InsertEdge and DeleteEdge mutate the global
// graph and the affected fragments in place, maintaining the virtual-node
// and in-node bookkeeping on both sides of a cross edge and reporting which
// fragments were dirtied (whose partial answers may have changed).
//
// Concurrency: mutations serialize internally; readers that must not
// observe a mutation mid-flight (the wire sites evaluating queries) hold
// RLock for the duration of their read. Purely in-process callers that
// never mutate concurrently may skip the lock.
type Fragmentation struct {
	mu    sync.RWMutex
	g     *graph.Graph
	frags []*Fragment
	owner []int32 // node -> fragment index; -1 for tombstoned nodes

	// Fragment graph Gf summary: all cross edges (u, v) where u and v live
	// in different fragments. CrossEdges is also the edge set of Gf.
	crossEdges int
	vf         int // |Vf|: number of distinct in-nodes plus virtual-node originals

	// part chooses the placement of live-inserted nodes and is reused by
	// rebalances; nil falls back to least-loaded placement.
	part Partitioner

	// Reachability-index lifecycle (reachidx.go): the per-fragment label
	// budget (<= 0: disabled), budget policy (reachindex.Policy), completed
	// rebuild count, last/total build wall time in nanoseconds, and the
	// WaitGroup WaitReachIndexes blocks on. Overlay auto-compaction
	// threshold for update batches (update.go); 0 means DefaultOverlayLimit.
	idxBudget     atomic.Int64
	idxPolicy     atomic.Int32
	idxRebuilds   atomic.Int64
	idxLastBuild  atomic.Int64
	idxTotalBuild atomic.Int64
	idxWG         sync.WaitGroup
	overlayLim    int
}

// SetPartitioner attaches the strategy that placed this fragmentation, so
// live node insertions and rebalances reuse it. Partition sets it
// automatically; fragmentations built from a raw assignment (Build,
// fragment.Read) default to balance-only placement.
func (fr *Fragmentation) SetPartitioner(p Partitioner) {
	fr.mu.Lock()
	fr.part = p
	fr.mu.Unlock()
}

// Partitioner reports the attached strategy (nil when none was set).
func (fr *Fragmentation) Partitioner() Partitioner {
	fr.mu.RLock()
	defer fr.mu.RUnlock()
	return fr.part
}

// RLock takes the fragmentation's read lock: queries evaluated concurrently
// with InsertEdge/DeleteEdge must hold it so an update never mutates a
// fragment mid-evaluation.
func (fr *Fragmentation) RLock() { fr.mu.RLock() }

// RUnlock releases RLock.
func (fr *Fragmentation) RUnlock() { fr.mu.RUnlock() }

// Fragment is one fragment Fi. Local node indices are dense:
//
//	0 .. NumLocal-1            real nodes of Vi (in global ID order),
//	NumLocal .. NumTotal-1     virtual nodes (Fi.O).
//
// Local adjacency includes both internal edges Ei and cross edges cEi (which
// always end at a virtual node). Virtual nodes have no outgoing edges within
// the fragment.
//
// Storage is CSR-compact: adjacency lives in a csr.Store (flat
// offsets/targets arrays plus a mutation overlay), the two-way local/global
// index is a single sorted array with an overlay (idIndex), and labels are
// interned (labelTable). Live mutations accumulate in the overlays; compact
// folds them back to the flat form and renumbers local indices to the
// canonical order above. All equations, partial answers and wire frames
// reference nodes by global ID, so renumbering is invisible outside the
// fragment.
type Fragment struct {
	ID int

	ids     *idIndex          // local slot <-> global ID
	adj     *csr.Store[int32] // local out-adjacency
	labs    *labelTable       // local labels (virtual nodes carry the remote label)
	nLocal  int               // count of real nodes
	inNodes []int32           // Fi.I as local indices (sorted)
	isIn    []bool            // local index -> member of Fi.I
	edges   int               // |Ei| + |cEi|

	// Lazily built derived views (the graph.Graph form of the fragment and
	// its local SCC decomposition), dropped whenever the fragment mutates.
	viewMu    sync.Mutex
	viewGraph *graph.Graph
	viewSCC   []int32

	// Reachability index (reachidx.go): installed by an async builder via
	// atomic swap, consulted lock-free by localEval, incrementally
	// invalidated under the write lock, retired whenever local slots
	// renumber. idxHits/idxFallbacks accumulate counters of retired
	// indexes per budget policy so stats stay cumulative across swaps;
	// idxHot is the decayed per-source hotness (keyed by global ID, so it
	// survives slot renumbering) that feeds PolicyHits builds.
	idx          atomic.Pointer[reachindex.Index]
	idxBuilding  atomic.Bool
	idxHits      [2]atomic.Int64
	idxFallbacks [2]atomic.Int64
	idxHotMu     sync.Mutex
	idxHot       map[graph.NodeID]int64
}

// NumLocal reports |Vi|, the number of real nodes stored in the fragment.
func (f *Fragment) NumLocal() int { return f.nLocal }

// NumVirtual reports |Fi.O|, the number of virtual nodes.
func (f *Fragment) NumVirtual() int { return f.ids.len() - f.nLocal }

// NumTotal reports the number of local indices (real + virtual).
func (f *Fragment) NumTotal() int { return f.ids.len() }

// NumEdges reports |Ei| + |cEi|, the edges stored at this fragment.
func (f *Fragment) NumEdges() int { return f.edges }

// Size reports the fragment size |Fi| = nodes + edges, the quantity the
// paper's complexity bounds call |Fm| for the largest fragment.
func (f *Fragment) Size() int { return f.NumTotal() + f.edges }

// Global maps a local index to the global node ID.
func (f *Fragment) Global(local int32) graph.NodeID { return f.ids.global(local) }

// Local maps a global node ID to its local index; ok is false if the node is
// neither stored in nor a virtual node of this fragment.
func (f *Fragment) Local(v graph.NodeID) (int32, bool) {
	return f.ids.local(v)
}

// HasLocal reports whether global node v is a real (non-virtual) node of
// this fragment.
func (f *Fragment) HasLocal(v graph.NodeID) bool {
	l, ok := f.ids.local(v)
	return ok && int(l) < f.nLocal
}

// IsVirtual reports whether local index l denotes a virtual node.
func (f *Fragment) IsVirtual(l int32) bool { return int(l) >= f.nLocal }

// Out returns the local out-neighbors of local node l. Callers must not
// modify the returned slice, nor hold it across a Compact.
func (f *Fragment) Out(l int32) []int32 { return f.adj.Row(l) }

// Label returns the label of local node l.
func (f *Fragment) Label(l int32) string { return f.labs.get(l) }

// InNodes returns Fi.I as local indices, sorted ascending. Callers must not
// modify the returned slice.
func (f *Fragment) InNodes() []int32 { return f.inNodes }

// IsInNode reports whether local index l is one of the fragment's in-nodes.
func (f *Fragment) IsInNode(l int32) bool { return f.isIn[l] }

// IsBoundary reports whether local index l is a boundary node of the
// fragment: a virtual node or an in-node. Boundary nodes carry Boolean
// variables in the partial answers, so local evaluation can stop expanding
// at them — the coordinator's equation system composes across them.
func (f *Fragment) IsBoundary(l int32) bool { return f.IsVirtual(l) || f.isIn[l] }

// VirtualNodes returns Fi.O as local indices (NumLocal..NumTotal-1).
func (f *Fragment) VirtualNodes() []int32 {
	out := make([]int32, 0, f.NumVirtual())
	for l := int32(f.nLocal); int(l) < f.ids.len(); l++ {
		out = append(out, l)
	}
	return out
}

// EncodedSize estimates the bytes needed to ship this fragment to another
// site (used by the naive baselines): label bytes plus 8 bytes per edge.
func (f *Fragment) EncodedSize() int {
	size := 16
	for l := int32(0); int(l) < f.ids.len(); l++ {
		size += 4 + len(f.labs.get(l))
	}
	size += 8 * f.edges
	return size
}

// StorageBytes estimates the resident bytes of the fragment's storage:
// exact for the flat bases, modeled for the overlays (~48 bytes per map
// entry). This is the quantity exp N7 charts against the legacy map-based
// layout.
func (f *Fragment) StorageBytes() int64 {
	return f.ids.bytes() + f.adj.Bytes() + f.labs.bytes() +
		int64(cap(f.isIn)) + int64(cap(f.inNodes))*4
}

// OverlayEntries reports the fragment's compaction debt: the number of
// rows, slots and index entries currently living outside the flat bases.
func (f *Fragment) OverlayEntries() int {
	return f.ids.overlayEntries() + f.adj.OverlayRows()
}

// compact folds every overlay back into flat arrays and renumbers local
// indices to the canonical order (real nodes sorted by global ID, then
// virtual nodes sorted by global ID) — the order Build produces, so a
// compacted fragment is indistinguishable from a freshly built one. Safe
// only while the caller excludes readers (the Fragmentation write lock).
func (f *Fragment) compact() {
	if f.OverlayEntries() == 0 {
		return
	}
	// Renumbering invalidates every slot reference the reachability index
	// holds; retire it (the owner reschedules a rebuild).
	f.retireReachIndex()
	nTotal := f.ids.len()
	order := make([]graph.NodeID, nTotal)
	for l := 0; l < nTotal; l++ {
		order[l] = f.ids.global(int32(l))
	}
	reals := append([]graph.NodeID(nil), order[:f.nLocal]...)
	virts := append([]graph.NodeID(nil), order[f.nLocal:]...)
	sort.Slice(reals, func(i, j int) bool { return reals[i] < reals[j] })
	sort.Slice(virts, func(i, j int) bool { return virts[i] < virts[j] })
	base := append(reals, virts...)
	newSlot := make(map[graph.NodeID]int32, nTotal)
	for l, v := range base {
		newSlot[v] = int32(l)
	}
	perm := make([]int32, nTotal) // old slot -> new slot
	for l := 0; l < nTotal; l++ {
		perm[l] = newSlot[order[l]]
	}
	rows := make([][]int32, nTotal)
	labels := make([]string, nTotal)
	isIn := make([]bool, nTotal)
	for l := 0; l < nTotal; l++ {
		nl := perm[l]
		old := f.adj.Row(int32(l))
		if len(old) > 0 {
			row := make([]int32, len(old))
			for i, w := range old {
				row[i] = perm[w]
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			rows[nl] = row
		}
		labels[nl] = f.labs.get(int32(l))
		isIn[nl] = f.isIn[l]
	}
	f.ids = newIDIndex(base, f.nLocal)
	f.adj = csr.FromRows(rows)
	f.labs = newLabelTable(nTotal)
	for _, s := range labels {
		f.labs.append(s)
	}
	f.isIn = isIn
	f.inNodes = f.inNodes[:0]
	for l, in := range isIn {
		if in {
			f.inNodes = append(f.inNodes, int32(l))
		}
	}
	f.invalidateViews()
}

// Graph returns the underlying global graph.
func (fr *Fragmentation) Graph() *graph.Graph { return fr.g }

// Fragments returns the fragments F1..Fk. Callers must not modify the slice.
func (fr *Fragmentation) Fragments() []*Fragment { return fr.frags }

// Card reports card(F), the number of fragments.
func (fr *Fragmentation) Card() int { return len(fr.frags) }

// Owner reports the index of the fragment that stores node v, or -1 when
// v is a tombstone left by DeleteNode.
func (fr *Fragmentation) Owner(v graph.NodeID) int { return int(fr.owner[v]) }

// CrossEdges reports the number of edges crossing fragments (|Ef|).
func (fr *Fragmentation) CrossEdges() int { return fr.crossEdges }

// Vf reports |Vf|, the number of nodes in the fragment graph Gf: the
// distinct nodes that are an in-node or the origin of a virtual node in some
// fragment. This is the quantity that bounds network traffic.
func (fr *Fragmentation) Vf() int { return fr.vf }

// MaxFragmentSize reports |Fm|, the size (nodes+edges) of the largest
// fragment, which bounds the parallel local-evaluation cost.
func (fr *Fragmentation) MaxFragmentSize() int {
	max := 0
	for _, f := range fr.frags {
		if s := f.Size(); s > max {
			max = s
		}
	}
	return max
}

// StorageBytes sums the fragments' StorageBytes.
func (fr *Fragmentation) StorageBytes() int64 {
	var b int64
	for _, f := range fr.frags {
		b += f.StorageBytes()
	}
	return b
}

// Compact folds every fragment's mutation overlay (and the global graph's)
// back into flat CSR arrays, renumbering local indices to the canonical
// Build order. It takes the write lock, so it must not run concurrently
// with a query evaluation that holds RLock across its whole read — the
// serving runtime calls it at the same epoch-swap points that install
// rebalances and snapshots. Cached rvsets and answer caches stay valid:
// they are keyed by global IDs, which compaction never changes.
func (fr *Fragmentation) Compact() {
	fr.mu.Lock()
	fr.g.Compact()
	for _, f := range fr.frags {
		f.compact()
	}
	fr.mu.Unlock()
	// compact() retires the fragments' reachability indexes (slots were
	// renumbered); rebuild them off the critical path.
	if fr.idxBudget.Load() > 0 {
		for _, f := range fr.frags {
			fr.rebuildReachIndexAsync(f)
		}
	}
}

// String summarizes the fragmentation.
func (fr *Fragmentation) String() string {
	return fmt.Sprintf("fragmentation{k=%d, |Vf|=%d, |Ef|=%d, |Fm|=%d}",
		fr.Card(), fr.Vf(), fr.CrossEdges(), fr.MaxFragmentSize())
}

// Build constructs a Fragmentation from an assignment of each node to a
// fragment in [0, k). Every fragment index in [0, k) is allowed to be empty
// (this arises when k exceeds the number of nodes).
func Build(g *graph.Graph, assign []int, k int) (*Fragmentation, error) {
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("fragment: assignment covers %d nodes, graph has %d", len(assign), g.NumNodes())
	}
	if k <= 0 {
		return nil, fmt.Errorf("fragment: fragment count %d must be positive", k)
	}
	owner := make([]int32, len(assign))
	for v, fi := range assign {
		if g.Deleted(graph.NodeID(v)) {
			owner[v] = -1 // tombstone: stored nowhere, assignment ignored
			continue
		}
		if fi < 0 || fi >= k {
			return nil, fmt.Errorf("fragment: node %d assigned to fragment %d, want [0,%d)", v, fi, k)
		}
		owner[v] = int32(fi)
	}
	// Build with plain slices and one transient map per fragment, then
	// freeze into the compact stores at the end.
	type build struct {
		globalOf []graph.NodeID
		localOf  map[graph.NodeID]int32
		adj      [][]int32
		labels   []string
		nLocal   int
		inNodes  []int32
		isIn     []bool
		edges    int
	}
	bs := make([]*build, k)
	for i := range bs {
		bs[i] = &build{localOf: make(map[graph.NodeID]int32)}
	}
	// First pass: register real nodes in global ID order so local indices
	// are deterministic (and the idIndex base real prefix is sorted).
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if owner[v] < 0 {
			continue
		}
		b := bs[owner[v]]
		b.localOf[v] = int32(len(b.globalOf))
		b.globalOf = append(b.globalOf, v)
		b.labels = append(b.labels, g.Label(v))
	}
	for _, b := range bs {
		b.nLocal = len(b.globalOf)
	}
	// Second pass: collect cross-edge targets, then register each
	// fragment's virtual nodes in ascending global-ID order (the idIndex
	// virtual tail must be sorted; the order is also what replicas derive
	// independently, so it must be a pure function of graph+assignment).
	crossEdges := 0
	isIn := make([]bool, g.NumNodes())   // node has an incoming cross edge
	isOrig := make([]bool, g.NumNodes()) // node is the original of some virtual node
	virtuals := make([][]graph.NodeID, k)
	g.Edges(func(u, v graph.NodeID) bool {
		if owner[u] == owner[v] {
			return true
		}
		crossEdges++
		isIn[v] = true
		isOrig[v] = true
		b := bs[owner[u]]
		if _, ok := b.localOf[v]; !ok {
			b.localOf[v] = -1 // placeholder: slot assigned after sorting
			virtuals[owner[u]] = append(virtuals[owner[u]], v)
		}
		return true
	})
	for i, b := range bs {
		vs := virtuals[i]
		sort.Slice(vs, func(x, y int) bool { return vs[x] < vs[y] })
		for _, v := range vs {
			b.localOf[v] = int32(len(b.globalOf))
			b.globalOf = append(b.globalOf, v)
			b.labels = append(b.labels, g.Label(v))
		}
	}
	// Third pass: build local adjacency (internal edges + cross edges).
	for _, b := range bs {
		b.adj = make([][]int32, len(b.globalOf))
	}
	g.Edges(func(u, v graph.NodeID) bool {
		b := bs[owner[u]]
		lu := b.localOf[u]
		lv := b.localOf[v] // exists: same-fragment or virtual registered above
		b.adj[lu] = append(b.adj[lu], lv)
		b.edges++
		return true
	})
	// Canonicalize rows by local index so a freshly built fragment and a
	// compacted one are bit-identical.
	for _, b := range bs {
		for _, row := range b.adj {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		}
	}
	// In-nodes per fragment.
	for _, b := range bs {
		b.isIn = make([]bool, len(b.globalOf))
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if isIn[v] {
			b := bs[owner[v]]
			b.inNodes = append(b.inNodes, b.localOf[v])
			b.isIn[b.localOf[v]] = true
		}
	}
	vf := 0
	for v := range isOrig {
		if isOrig[v] || isIn[v] {
			vf++
		}
	}
	// Freeze into compact fragments.
	frags := make([]*Fragment, k)
	for i, b := range bs {
		f := &Fragment{
			ID:      i,
			ids:     newIDIndex(b.globalOf, b.nLocal),
			adj:     csr.FromRows(b.adj),
			labs:    newLabelTable(len(b.globalOf)),
			nLocal:  b.nLocal,
			inNodes: b.inNodes,
			isIn:    b.isIn,
			edges:   b.edges,
		}
		for _, s := range b.labels {
			f.labs.append(s)
		}
		frags[i] = f
	}
	return &Fragmentation{g: g, frags: frags, owner: owner, crossEdges: crossEdges, vf: vf}, nil
}

// Validate checks the structural invariants of the fragmentation against its
// source graph: the fragments partition V; cross edges appear exactly once
// (at the source fragment, ending in a virtual node); in-node sets match;
// labels agree with the global graph. Returns the first violation found.
func (fr *Fragmentation) Validate() error {
	g := fr.g
	seen := make([]bool, g.NumNodes())
	totalLocal := 0
	for _, f := range fr.frags {
		for l := 0; l < f.nLocal; l++ {
			v := f.Global(int32(l))
			if seen[v] {
				return fmt.Errorf("fragment: node %d stored in more than one fragment", v)
			}
			seen[v] = true
			if f.Label(int32(l)) != g.Label(v) {
				return fmt.Errorf("fragment: node %d label mismatch", v)
			}
			if fr.owner[v] != int32(f.ID) {
				return fmt.Errorf("fragment: owner index inconsistent for node %d", v)
			}
			if got, ok := f.Local(v); !ok || got != int32(l) {
				return fmt.Errorf("fragment %d: index roundtrip broken for node %d", f.ID, v)
			}
		}
		totalLocal += f.nLocal
		// Virtual nodes must belong to other fragments and have no out-edges.
		for l := f.nLocal; l < f.NumTotal(); l++ {
			v := f.Global(int32(l))
			if fr.owner[v] == int32(f.ID) {
				return fmt.Errorf("fragment %d: virtual node %d is local", f.ID, v)
			}
			if f.adj.RowLen(int32(l)) != 0 {
				return fmt.Errorf("fragment %d: virtual node %d has out-edges", f.ID, v)
			}
			if f.Label(int32(l)) != g.Label(v) {
				return fmt.Errorf("fragment %d: virtual node %d label mismatch", f.ID, v)
			}
			if got, ok := f.Local(v); !ok || got != int32(l) {
				return fmt.Errorf("fragment %d: index roundtrip broken for virtual node %d", f.ID, v)
			}
		}
	}
	if totalLocal != g.NumLive() {
		return fmt.Errorf("fragment: fragments store %d nodes, graph has %d live", totalLocal, g.NumLive())
	}
	// Edge coverage: every global edge appears exactly once across fragments.
	edgeCount := 0
	for _, f := range fr.frags {
		for lu := 0; lu < f.NumTotal(); lu++ {
			u := f.Global(int32(lu))
			for _, lv := range f.adj.Row(int32(lu)) {
				v := f.Global(lv)
				if !g.HasEdge(u, v) {
					return fmt.Errorf("fragment %d: phantom edge (%d,%d)", f.ID, u, v)
				}
				edgeCount++
			}
		}
	}
	if edgeCount != g.NumEdges() {
		return fmt.Errorf("fragment: fragments carry %d edges, graph has %d", edgeCount, g.NumEdges())
	}
	// In-node correctness: v in Fi.I iff some cross edge enters v.
	wantIn := make(map[graph.NodeID]bool)
	g.Edges(func(u, v graph.NodeID) bool {
		if fr.owner[u] != fr.owner[v] {
			wantIn[v] = true
		}
		return true
	})
	gotIn := make(map[graph.NodeID]bool)
	for _, f := range fr.frags {
		for _, l := range f.inNodes {
			gotIn[f.Global(l)] = true
		}
	}
	if len(wantIn) != len(gotIn) {
		return fmt.Errorf("fragment: in-node count mismatch: want %d got %d", len(wantIn), len(gotIn))
	}
	for v := range wantIn {
		if !gotIn[v] {
			return fmt.Errorf("fragment: node %d should be an in-node", v)
		}
	}
	return nil
}
