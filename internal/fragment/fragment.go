// Package fragment implements graph fragmentations F = (F, Gf) as defined in
// Section 2.1 of the paper: a partition of the node set into fragments
// F1..Fk, where each fragment additionally carries
//
//   - Fi.O, its virtual nodes: one per node in another fragment that some
//     node of Fi has an edge to, together with the cross edges cEi;
//   - Fi.I, its in-nodes: the nodes of Fi that have an incoming cross edge
//     from another fragment.
//
// The fragment graph Gf collects all in-nodes, virtual nodes and cross
// edges. No constraints are placed on how the graph is fragmented: any
// assignment of nodes to fragments is legal (the paper's guarantees must
// hold for arbitrary fragmentations).
package fragment

import (
	"fmt"
	"sync"

	"distreach/internal/graph"
)

// Fragmentation is a partition of a graph into fragments plus the derived
// fragment graph. The node-to-fragment assignment is fixed at Build time,
// but the edge set is live: InsertEdge and DeleteEdge mutate the global
// graph and the affected fragments in place, maintaining the virtual-node
// and in-node bookkeeping on both sides of a cross edge and reporting which
// fragments were dirtied (whose partial answers may have changed).
//
// Concurrency: mutations serialize internally; readers that must not
// observe a mutation mid-flight (the wire sites evaluating queries) hold
// RLock for the duration of their read. Purely in-process callers that
// never mutate concurrently may skip the lock.
type Fragmentation struct {
	mu    sync.RWMutex
	g     *graph.Graph
	frags []*Fragment
	owner []int32 // node -> fragment index; -1 for tombstoned nodes

	// Fragment graph Gf summary: all cross edges (u, v) where u and v live
	// in different fragments. CrossEdges is also the edge set of Gf.
	crossEdges int
	vf         int // |Vf|: number of distinct in-nodes plus virtual-node originals

	// part chooses the placement of live-inserted nodes and is reused by
	// rebalances; nil falls back to least-loaded placement.
	part Partitioner
}

// SetPartitioner attaches the strategy that placed this fragmentation, so
// live node insertions and rebalances reuse it. Partition sets it
// automatically; fragmentations built from a raw assignment (Build,
// fragment.Read) default to balance-only placement.
func (fr *Fragmentation) SetPartitioner(p Partitioner) {
	fr.mu.Lock()
	fr.part = p
	fr.mu.Unlock()
}

// Partitioner reports the attached strategy (nil when none was set).
func (fr *Fragmentation) Partitioner() Partitioner {
	fr.mu.RLock()
	defer fr.mu.RUnlock()
	return fr.part
}

// RLock takes the fragmentation's read lock: queries evaluated concurrently
// with InsertEdge/DeleteEdge must hold it so an update never mutates a
// fragment mid-evaluation.
func (fr *Fragmentation) RLock() { fr.mu.RLock() }

// RUnlock releases RLock.
func (fr *Fragmentation) RUnlock() { fr.mu.RUnlock() }

// Fragment is one fragment Fi. Local node indices are dense:
//
//	0 .. NumLocal-1            real nodes of Vi (in global ID order),
//	NumLocal .. NumTotal-1     virtual nodes (Fi.O).
//
// Local adjacency includes both internal edges Ei and cross edges cEi (which
// always end at a virtual node). Virtual nodes have no outgoing edges within
// the fragment.
type Fragment struct {
	ID int

	globalOf []graph.NodeID         // local index -> global ID (real + virtual)
	localOf  map[graph.NodeID]int32 // global ID -> local index
	adj      [][]int32              // local out-adjacency
	labels   []string               // local labels (virtual nodes carry the remote label)
	nLocal   int                    // count of real nodes
	inNodes  []int32                // Fi.I as local indices (sorted)
	isIn     []bool                 // local index -> member of Fi.I
	edges    int                    // |Ei| + |cEi|

	// Lazily built derived views (the graph.Graph form of the fragment and
	// its local SCC decomposition), dropped whenever the fragment mutates.
	viewMu    sync.Mutex
	viewGraph *graph.Graph
	viewSCC   []int32
}

// NumLocal reports |Vi|, the number of real nodes stored in the fragment.
func (f *Fragment) NumLocal() int { return f.nLocal }

// NumVirtual reports |Fi.O|, the number of virtual nodes.
func (f *Fragment) NumVirtual() int { return len(f.globalOf) - f.nLocal }

// NumTotal reports the number of local indices (real + virtual).
func (f *Fragment) NumTotal() int { return len(f.globalOf) }

// NumEdges reports |Ei| + |cEi|, the edges stored at this fragment.
func (f *Fragment) NumEdges() int { return f.edges }

// Size reports the fragment size |Fi| = nodes + edges, the quantity the
// paper's complexity bounds call |Fm| for the largest fragment.
func (f *Fragment) Size() int { return f.NumTotal() + f.edges }

// Global maps a local index to the global node ID.
func (f *Fragment) Global(local int32) graph.NodeID { return f.globalOf[local] }

// Local maps a global node ID to its local index; ok is false if the node is
// neither stored in nor a virtual node of this fragment.
func (f *Fragment) Local(v graph.NodeID) (int32, bool) {
	l, ok := f.localOf[v]
	return l, ok
}

// HasLocal reports whether global node v is a real (non-virtual) node of
// this fragment.
func (f *Fragment) HasLocal(v graph.NodeID) bool {
	l, ok := f.localOf[v]
	return ok && int(l) < f.nLocal
}

// IsVirtual reports whether local index l denotes a virtual node.
func (f *Fragment) IsVirtual(l int32) bool { return int(l) >= f.nLocal }

// Out returns the local out-neighbors of local node l. Callers must not
// modify the returned slice.
func (f *Fragment) Out(l int32) []int32 { return f.adj[l] }

// Label returns the label of local node l.
func (f *Fragment) Label(l int32) string { return f.labels[l] }

// InNodes returns Fi.I as local indices, sorted ascending. Callers must not
// modify the returned slice.
func (f *Fragment) InNodes() []int32 { return f.inNodes }

// IsInNode reports whether local index l is one of the fragment's in-nodes.
func (f *Fragment) IsInNode(l int32) bool { return f.isIn[l] }

// IsBoundary reports whether local index l is a boundary node of the
// fragment: a virtual node or an in-node. Boundary nodes carry Boolean
// variables in the partial answers, so local evaluation can stop expanding
// at them — the coordinator's equation system composes across them.
func (f *Fragment) IsBoundary(l int32) bool { return f.IsVirtual(l) || f.isIn[l] }

// VirtualNodes returns Fi.O as local indices (NumLocal..NumTotal-1).
func (f *Fragment) VirtualNodes() []int32 {
	out := make([]int32, 0, f.NumVirtual())
	for l := int32(f.nLocal); int(l) < len(f.globalOf); l++ {
		out = append(out, l)
	}
	return out
}

// EncodedSize estimates the bytes needed to ship this fragment to another
// site (used by the naive baselines): label bytes plus 8 bytes per edge.
func (f *Fragment) EncodedSize() int {
	size := 16
	for _, l := range f.labels {
		size += 4 + len(l)
	}
	size += 8 * f.edges
	return size
}

// Graph returns the underlying global graph.
func (fr *Fragmentation) Graph() *graph.Graph { return fr.g }

// Fragments returns the fragments F1..Fk. Callers must not modify the slice.
func (fr *Fragmentation) Fragments() []*Fragment { return fr.frags }

// Card reports card(F), the number of fragments.
func (fr *Fragmentation) Card() int { return len(fr.frags) }

// Owner reports the index of the fragment that stores node v, or -1 when
// v is a tombstone left by DeleteNode.
func (fr *Fragmentation) Owner(v graph.NodeID) int { return int(fr.owner[v]) }

// CrossEdges reports the number of edges crossing fragments (|Ef|).
func (fr *Fragmentation) CrossEdges() int { return fr.crossEdges }

// Vf reports |Vf|, the number of nodes in the fragment graph Gf: the
// distinct nodes that are an in-node or the origin of a virtual node in some
// fragment. This is the quantity that bounds network traffic.
func (fr *Fragmentation) Vf() int { return fr.vf }

// MaxFragmentSize reports |Fm|, the size (nodes+edges) of the largest
// fragment, which bounds the parallel local-evaluation cost.
func (fr *Fragmentation) MaxFragmentSize() int {
	max := 0
	for _, f := range fr.frags {
		if s := f.Size(); s > max {
			max = s
		}
	}
	return max
}

// String summarizes the fragmentation.
func (fr *Fragmentation) String() string {
	return fmt.Sprintf("fragmentation{k=%d, |Vf|=%d, |Ef|=%d, |Fm|=%d}",
		fr.Card(), fr.Vf(), fr.CrossEdges(), fr.MaxFragmentSize())
}

// Build constructs a Fragmentation from an assignment of each node to a
// fragment in [0, k). Every fragment index in [0, k) is allowed to be empty
// (this arises when k exceeds the number of nodes).
func Build(g *graph.Graph, assign []int, k int) (*Fragmentation, error) {
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("fragment: assignment covers %d nodes, graph has %d", len(assign), g.NumNodes())
	}
	if k <= 0 {
		return nil, fmt.Errorf("fragment: fragment count %d must be positive", k)
	}
	owner := make([]int32, len(assign))
	for v, fi := range assign {
		if g.Deleted(graph.NodeID(v)) {
			owner[v] = -1 // tombstone: stored nowhere, assignment ignored
			continue
		}
		if fi < 0 || fi >= k {
			return nil, fmt.Errorf("fragment: node %d assigned to fragment %d, want [0,%d)", v, fi, k)
		}
		owner[v] = int32(fi)
	}
	frags := make([]*Fragment, k)
	for i := range frags {
		frags[i] = &Fragment{ID: i, localOf: make(map[graph.NodeID]int32)}
	}
	// First pass: register real nodes in global ID order so local indices
	// are deterministic.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if owner[v] < 0 {
			continue
		}
		f := frags[owner[v]]
		f.localOf[v] = int32(len(f.globalOf))
		f.globalOf = append(f.globalOf, v)
		f.labels = append(f.labels, g.Label(v))
	}
	for _, f := range frags {
		f.nLocal = len(f.globalOf)
	}
	// Second pass: add virtual nodes for cross-edge targets.
	crossEdges := 0
	isIn := make([]bool, g.NumNodes())   // node has an incoming cross edge
	isOrig := make([]bool, g.NumNodes()) // node is the original of some virtual node
	g.Edges(func(u, v graph.NodeID) bool {
		if owner[u] == owner[v] {
			return true
		}
		crossEdges++
		isIn[v] = true
		isOrig[v] = true
		f := frags[owner[u]]
		if _, ok := f.localOf[v]; !ok {
			f.localOf[v] = int32(len(f.globalOf))
			f.globalOf = append(f.globalOf, v)
			f.labels = append(f.labels, g.Label(v))
		}
		return true
	})
	// Third pass: build local adjacency (internal edges + cross edges).
	for _, f := range frags {
		f.adj = make([][]int32, len(f.globalOf))
	}
	g.Edges(func(u, v graph.NodeID) bool {
		f := frags[owner[u]]
		lu := f.localOf[u]
		lv := f.localOf[v] // exists: same-fragment or virtual registered above
		f.adj[lu] = append(f.adj[lu], lv)
		f.edges++
		return true
	})
	// In-nodes per fragment.
	for _, f := range frags {
		f.isIn = make([]bool, len(f.globalOf))
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if isIn[v] {
			f := frags[owner[v]]
			f.inNodes = append(f.inNodes, f.localOf[v])
			f.isIn[f.localOf[v]] = true
		}
	}
	vf := 0
	for v := range isOrig {
		if isOrig[v] || isIn[v] {
			vf++
		}
	}
	return &Fragmentation{g: g, frags: frags, owner: owner, crossEdges: crossEdges, vf: vf}, nil
}

// Validate checks the structural invariants of the fragmentation against its
// source graph: the fragments partition V; cross edges appear exactly once
// (at the source fragment, ending in a virtual node); in-node sets match;
// labels agree with the global graph. Returns the first violation found.
func (fr *Fragmentation) Validate() error {
	g := fr.g
	seen := make([]bool, g.NumNodes())
	totalLocal := 0
	for _, f := range fr.frags {
		for l := 0; l < f.nLocal; l++ {
			v := f.globalOf[l]
			if seen[v] {
				return fmt.Errorf("fragment: node %d stored in more than one fragment", v)
			}
			seen[v] = true
			if f.labels[l] != g.Label(v) {
				return fmt.Errorf("fragment: node %d label mismatch", v)
			}
			if fr.owner[v] != int32(f.ID) {
				return fmt.Errorf("fragment: owner index inconsistent for node %d", v)
			}
		}
		totalLocal += f.nLocal
		// Virtual nodes must belong to other fragments and have no out-edges.
		for l := f.nLocal; l < len(f.globalOf); l++ {
			v := f.globalOf[l]
			if fr.owner[v] == int32(f.ID) {
				return fmt.Errorf("fragment %d: virtual node %d is local", f.ID, v)
			}
			if len(f.adj[l]) != 0 {
				return fmt.Errorf("fragment %d: virtual node %d has out-edges", f.ID, v)
			}
			if f.labels[l] != g.Label(v) {
				return fmt.Errorf("fragment %d: virtual node %d label mismatch", f.ID, v)
			}
		}
	}
	if totalLocal != g.NumLive() {
		return fmt.Errorf("fragment: fragments store %d nodes, graph has %d live", totalLocal, g.NumLive())
	}
	// Edge coverage: every global edge appears exactly once across fragments.
	edgeCount := 0
	for _, f := range fr.frags {
		for lu, nbrs := range f.adj {
			u := f.globalOf[lu]
			for _, lv := range nbrs {
				v := f.globalOf[lv]
				if !g.HasEdge(u, v) {
					return fmt.Errorf("fragment %d: phantom edge (%d,%d)", f.ID, u, v)
				}
				edgeCount++
			}
		}
	}
	if edgeCount != g.NumEdges() {
		return fmt.Errorf("fragment: fragments carry %d edges, graph has %d", edgeCount, g.NumEdges())
	}
	// In-node correctness: v in Fi.I iff some cross edge enters v.
	wantIn := make(map[graph.NodeID]bool)
	g.Edges(func(u, v graph.NodeID) bool {
		if fr.owner[u] != fr.owner[v] {
			wantIn[v] = true
		}
		return true
	})
	gotIn := make(map[graph.NodeID]bool)
	for _, f := range fr.frags {
		for _, l := range f.inNodes {
			gotIn[f.globalOf[l]] = true
		}
	}
	if len(wantIn) != len(gotIn) {
		return fmt.Errorf("fragment: in-node count mismatch: want %d got %d", len(wantIn), len(gotIn))
	}
	for v := range wantIn {
		if !gotIn[v] {
			return fmt.Errorf("fragment: node %d should be an in-node", v)
		}
	}
	return nil
}
