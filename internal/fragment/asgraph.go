package fragment

import (
	"distreach/internal/graph"
)

// AsGraph returns the fragment's local structure (real nodes followed by
// virtual nodes, with internal and cross edges) as a graph.Graph whose
// node IDs are the fragment's local indices. The view is built on first
// use, cached on the fragment, and dropped whenever the fragment mutates
// (InsertEdge/DeleteEdge on its Fragmentation); it backs the pluggable
// reachability indexes of internal/reach used inside local evaluation.
func (f *Fragment) AsGraph() *graph.Graph {
	f.viewMu.Lock()
	defer f.viewMu.Unlock()
	if f.viewGraph != nil {
		return f.viewGraph
	}
	b := graph.NewBuilder(f.NumTotal())
	for l := 0; l < f.NumTotal(); l++ {
		b.AddNode(f.labs.get(int32(l)))
	}
	for lu := 0; lu < f.NumTotal(); lu++ {
		for _, lv := range f.adj.Row(int32(lu)) {
			b.AddEdge(graph.NodeID(lu), graph.NodeID(lv))
		}
	}
	f.viewGraph = b.MustBuild()
	return f.viewGraph
}

// LocalSCC returns the strongly-connected-component index of every local
// index of the fragment (including virtual nodes, which are always
// singleton components since they have no outgoing edges). The
// decomposition is query-independent; like AsGraph it is computed on first
// use, cached, and invalidated by mutation. It backs the equation-aliasing
// compression of local evaluation: in-nodes in the same local SCC reach
// exactly the same boundary nodes, so their Boolean equations are
// identical.
func (f *Fragment) LocalSCC() []int32 {
	f.viewMu.Lock()
	if f.viewSCC != nil {
		scc := f.viewSCC
		f.viewMu.Unlock()
		return scc
	}
	f.viewMu.Unlock()
	// Build outside viewMu: AsGraph takes it too.
	comp, _ := f.AsGraph().SCC()
	f.viewMu.Lock()
	f.viewSCC = comp
	scc := f.viewSCC
	f.viewMu.Unlock()
	return scc
}

// invalidateViews drops the cached derived views after a mutation.
func (f *Fragment) invalidateViews() {
	f.viewMu.Lock()
	f.viewGraph = nil
	f.viewSCC = nil
	f.viewMu.Unlock()
}
