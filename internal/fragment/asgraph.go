package fragment

import (
	"sync"

	"distreach/internal/graph"
)

// asGraph caches the graph.Graph view of a fragment.
var asGraphCache sync.Map // *Fragment -> *graph.Graph

// AsGraph returns the fragment's local structure (real nodes followed by
// virtual nodes, with internal and cross edges) as an immutable graph.Graph
// whose node IDs are the fragment's local indices. The view is built on
// first use and cached; it backs the pluggable reachability indexes of
// internal/reach used inside local evaluation.
func (f *Fragment) AsGraph() *graph.Graph {
	if g, ok := asGraphCache.Load(f); ok {
		return g.(*graph.Graph)
	}
	b := graph.NewBuilder(f.NumTotal())
	for l := 0; l < f.NumTotal(); l++ {
		b.AddNode(f.labels[l])
	}
	for lu, nbrs := range f.adj {
		for _, lv := range nbrs {
			b.AddEdge(graph.NodeID(lu), graph.NodeID(lv))
		}
	}
	g := b.MustBuild()
	actual, _ := asGraphCache.LoadOrStore(f, g)
	return actual.(*graph.Graph)
}

// sccCache caches the local SCC decomposition of a fragment.
var sccCache sync.Map // *Fragment -> []int32

// LocalSCC returns the strongly-connected-component index of every local
// index of the fragment (including virtual nodes, which are always
// singleton components since they have no outgoing edges). The
// decomposition is query-independent, computed on first use and cached; it
// backs the equation-aliasing compression of local evaluation: in-nodes in
// the same local SCC reach exactly the same boundary nodes, so their
// Boolean equations are identical.
func (f *Fragment) LocalSCC() []int32 {
	if c, ok := sccCache.Load(f); ok {
		return c.([]int32)
	}
	comp, _ := f.AsGraph().SCC()
	actual, _ := sccCache.LoadOrStore(f, comp)
	return actual.([]int32)
}
