package fragment

import (
	"fmt"

	"distreach/internal/graph"
)

// BalanceStats summarizes how healthy a fragmentation is with respect to
// the paper's complexity parameters: local work is bounded by the largest
// fragment |Fm| (MaxSize) and network traffic by the fragment-graph size
// |Vf| and its edge count |Ef| (CrossEdges). Live updates drift these —
// a hot fragment bloats, cross edges multiply — so the serving layer
// watches BalanceStats and triggers a re-fragmentation when Skew crosses
// its threshold.
type BalanceStats struct {
	Fragments  int    // card(F)
	MaxSize    int    // |Fm|: nodes+edges of the largest fragment
	MinSize    int    // size of the smallest fragment
	TotalSize  int64  // sum of fragment sizes (MeanSize derives from it)
	Vf         int    // |Vf|: nodes of the fragment graph
	CrossEdges int    // |Ef|: edges crossing fragments
	Epoch      uint64 // deployment epoch the stats describe (0 pre-rebalance)
}

// MeanSize is the average fragment size.
func (bs BalanceStats) MeanSize() float64 {
	if bs.Fragments == 0 {
		return 0
	}
	return float64(bs.TotalSize) / float64(bs.Fragments)
}

// Skew is MaxSize over MeanSize: 1.0 is perfectly balanced, and the value
// grows as one fragment accumulates a disproportionate share of the graph.
// A deployment whose skew crosses its configured threshold is due for a
// rebalance.
func (bs BalanceStats) Skew() float64 {
	mean := bs.MeanSize()
	if mean == 0 {
		return 1
	}
	return float64(bs.MaxSize) / mean
}

// String renders the stats compactly for logs and CLIs.
func (bs BalanceStats) String() string {
	return fmt.Sprintf("balance{k=%d, |Fm|=%d, mean=%.1f, skew=%.2f, |Vf|=%d, |Ef|=%d}",
		bs.Fragments, bs.MaxSize, bs.MeanSize(), bs.Skew(), bs.Vf, bs.CrossEdges)
}

// BalanceStats reports the current balance of the fragmentation. It takes
// the read lock, so it is safe to call concurrently with live updates.
func (fr *Fragmentation) BalanceStats() BalanceStats {
	fr.mu.RLock()
	defer fr.mu.RUnlock()
	return fr.balanceStatsLocked()
}

func (fr *Fragmentation) balanceStatsLocked() BalanceStats {
	bs := BalanceStats{Fragments: len(fr.frags), Vf: fr.vf, CrossEdges: fr.crossEdges}
	for i, f := range fr.frags {
		s := f.Size()
		bs.TotalSize += int64(s)
		if s > bs.MaxSize {
			bs.MaxSize = s
		}
		if i == 0 || s < bs.MinSize {
			bs.MinSize = s
		}
	}
	return bs
}

// Fingerprint digests the replica state a rebalance depends on — the
// graph (nodes, labels, tombstones, every edge) and the node-to-fragment
// assignment — into one FNV-1a hash. Replicas that rebuilt the same epoch
// must report the same fingerprint; a mismatch means a replica's state
// diverged (it restarted from stale files and missed updates), which
// would otherwise silently corrupt composed partial answers.
func (fr *Fragmentation) Fingerprint() uint64 {
	fr.mu.RLock()
	defer fr.mu.RUnlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime64
			x >>= 8
		}
	}
	g := fr.g
	mix(uint64(g.NumNodes()))
	mix(uint64(g.NumEdges()))
	for v := 0; v < g.NumNodes(); v++ {
		if g.Deleted(graph.NodeID(v)) {
			mix(^uint64(0))
			continue
		}
		mix(uint64(fr.owner[v]))
		for _, c := range []byte(g.Label(graph.NodeID(v))) {
			h ^= uint64(c)
			h *= prime64
		}
		h ^= 0xFE // label terminator
		h *= prime64
		for _, w := range g.Out(graph.NodeID(v)) {
			mix(uint64(w))
		}
		mix(^uint64(1)) // adjacency terminator
	}
	return h
}
