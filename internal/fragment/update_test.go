package fragment

import (
	"sort"
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

// edgeList snapshots the graph's edges for random deletion picks.
func edgeList(g *graph.Graph) [][2]graph.NodeID {
	var out [][2]graph.NodeID
	g.Edges(func(u, v graph.NodeID) bool {
		out = append(out, [2]graph.NodeID{u, v})
		return true
	})
	return out
}

// inNodeSet collects a fragment's in-nodes as global IDs.
func inNodeSet(f *Fragment) map[graph.NodeID]bool {
	out := map[graph.NodeID]bool{}
	for _, l := range f.InNodes() {
		out[f.Global(l)] = true
	}
	return out
}

// virtualSet collects a fragment's virtual nodes as global IDs.
func virtualSet(f *Fragment) map[graph.NodeID]bool {
	out := map[graph.NodeID]bool{}
	for _, l := range f.VirtualNodes() {
		out[f.Global(l)] = true
	}
	return out
}

// TestIncrementalMatchesRebuild replays random insert/delete sequences and
// checks, after every single update, that the incrementally maintained
// fragmentation is structurally identical to one rebuilt from scratch on
// the mutated graph: Validate passes, and cross-edge counts, |Vf|, and
// every fragment's edge/virtual/in-node bookkeeping agree.
func TestIncrementalMatchesRebuild(t *testing.T) {
	rng := gen.NewRNG(17)
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		m := n + rng.Intn(3*n)
		k := 1 + rng.Intn(5)
		g := testGraph(uint64(100+trial), n, m)
		fr, err := Random(g, k, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]int, n)
		for v := range assign {
			assign[v] = fr.Owner(graph.NodeID(v))
		}
		for step := 0; step < 12; step++ {
			var u, v graph.NodeID
			var dirty []int
			var changed bool
			del := rng.Intn(2) == 0 && g.NumEdges() > 0
			if del {
				e := edgeList(g)[rng.Intn(g.NumEdges())]
				u, v = e[0], e[1]
				dirty, changed, err = fr.DeleteEdge(u, v)
			} else {
				u = graph.NodeID(rng.Intn(n))
				v = graph.NodeID(rng.Intn(n))
				existed := g.HasEdge(u, v)
				dirty, changed, err = fr.InsertEdge(u, v)
				if changed == existed {
					t.Fatalf("trial %d step %d: insert(%d,%d) changed=%v but existed=%v",
						trial, step, u, v, changed, existed)
				}
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if changed {
				if len(dirty) == 0 {
					t.Fatalf("trial %d step %d: changed update dirtied nothing", trial, step)
				}
				wantOwner := assign[u]
				if i := sort.SearchInts(dirty, wantOwner); i >= len(dirty) || dirty[i] != wantOwner {
					t.Fatalf("trial %d step %d: dirty %v misses source owner %d", trial, step, dirty, wantOwner)
				}
			} else if len(dirty) != 0 {
				t.Fatalf("trial %d step %d: no-op update dirtied %v", trial, step, dirty)
			}
			if err := fr.Validate(); err != nil {
				t.Fatalf("trial %d step %d (del=%v %d->%d): %v", trial, step, del, u, v, err)
			}
			// Full structural comparison against a from-scratch Build on
			// the mutated graph with the same assignment.
			want, err := Build(g, assign, k)
			if err != nil {
				t.Fatal(err)
			}
			if fr.CrossEdges() != want.CrossEdges() || fr.Vf() != want.Vf() {
				t.Fatalf("trial %d step %d: |Ef|=%d |Vf|=%d, rebuild has %d/%d",
					trial, step, fr.CrossEdges(), fr.Vf(), want.CrossEdges(), want.Vf())
			}
			for i, f := range fr.Fragments() {
				wf := want.Fragments()[i]
				if f.NumLocal() != wf.NumLocal() || f.NumEdges() != wf.NumEdges() ||
					f.NumVirtual() != wf.NumVirtual() || len(f.InNodes()) != len(wf.InNodes()) {
					t.Fatalf("trial %d step %d fragment %d: local/edges/virtual/in = %d/%d/%d/%d, rebuild %d/%d/%d/%d",
						trial, step, i, f.NumLocal(), f.NumEdges(), f.NumVirtual(), len(f.InNodes()),
						wf.NumLocal(), wf.NumEdges(), wf.NumVirtual(), len(wf.InNodes()))
				}
				for v := range inNodeSet(wf) {
					if !inNodeSet(f)[v] {
						t.Fatalf("trial %d step %d fragment %d: in-node %d missing", trial, step, i, v)
					}
				}
				for v := range virtualSet(wf) {
					if !virtualSet(f)[v] {
						t.Fatalf("trial %d step %d fragment %d: virtual node %d missing", trial, step, i, v)
					}
				}
				// The derived views reflect the mutated structure.
				if f.AsGraph().NumEdges() != wf.AsGraph().NumEdges() {
					t.Fatalf("trial %d step %d fragment %d: AsGraph went stale", trial, step, i)
				}
			}
		}
	}
}

// TestUpdateRejectsBadEndpoints checks the range validation.
func TestUpdateRejectsBadEndpoints(t *testing.T) {
	g := testGraph(3, 10, 20)
	fr, err := Random(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]graph.NodeID{{-1, 0}, {0, 10}, {10, 10}} {
		if _, _, err := fr.InsertEdge(e[0], e[1]); err == nil {
			t.Fatalf("InsertEdge(%d,%d) accepted", e[0], e[1])
		}
		if _, _, err := fr.DeleteEdge(e[0], e[1]); err == nil {
			t.Fatalf("DeleteEdge(%d,%d) accepted", e[0], e[1])
		}
	}
}
