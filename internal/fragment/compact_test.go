package fragment

import (
	"reflect"
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestCompactMatchesFreshBuild replays random mixed mutation sequences
// (edge and node ops) with Compact interleaved at random points, and
// checks after every compaction that the fragmentation is bit-identical
// to one built from scratch on the mutated graph with the same
// assignment: same local numbering, same adjacency rows, same labels,
// same in-node sets — and that every overlay is empty. This is the
// correctness contract of the CSR storage: compaction renumbers local
// indices, but local indices never escape the fragment (equations and
// wire frames use global IDs), so the canonical Build order is always
// reachable.
func TestCompactMatchesFreshBuild(t *testing.T) {
	rng := gen.NewRNG(23)
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(40)
		m := n + rng.Intn(3*n)
		k := 1 + rng.Intn(5)
		g := testGraph(uint64(300+trial), n, m)
		fr, err := Random(g, k, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			switch rng.Intn(6) {
			case 0:
				if g.NumEdges() > 0 {
					e := edgeList(g)[rng.Intn(g.NumEdges())]
					if _, _, err := fr.DeleteEdge(e[0], e[1]); err != nil {
						t.Fatalf("trial %d step %d: %v", trial, step, err)
					}
				}
			case 1, 2:
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				v := graph.NodeID(rng.Intn(g.NumNodes()))
				if g.Deleted(u) || g.Deleted(v) {
					continue
				}
				if _, _, err := fr.InsertEdge(u, v); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			case 3:
				if _, _, err := fr.InsertNode("x", -1); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			case 4:
				v := graph.NodeID(rng.Intn(g.NumNodes()))
				if g.Deleted(v) {
					continue
				}
				if _, _, err := fr.DeleteNode(v); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			default:
				fr.Compact()
				checkCompact(t, fr, k, trial, step)
			}
			if err := fr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		fr.Compact()
		checkCompact(t, fr, k, trial, -1)
	}
}

// checkCompact asserts fr is overlay-free and bit-identical to a fresh
// Build on its current graph and assignment.
func checkCompact(t *testing.T, fr *Fragmentation, k, trial, step int) {
	t.Helper()
	g := fr.Graph()
	assign := make([]int, g.NumNodes())
	for v := range assign {
		assign[v] = fr.Owner(graph.NodeID(v))
	}
	want, err := Build(g, assign, k)
	if err != nil {
		t.Fatalf("trial %d step %d: rebuild: %v", trial, step, err)
	}
	for i, f := range fr.Fragments() {
		wf := want.Fragments()[i]
		if f.OverlayEntries() != 0 {
			t.Fatalf("trial %d step %d fragment %d: %d overlay entries after Compact",
				trial, step, i, f.OverlayEntries())
		}
		if f.NumLocal() != wf.NumLocal() || f.NumTotal() != wf.NumTotal() || f.NumEdges() != wf.NumEdges() {
			t.Fatalf("trial %d step %d fragment %d: shape %d/%d/%d, rebuild %d/%d/%d",
				trial, step, i, f.NumLocal(), f.NumTotal(), f.NumEdges(),
				wf.NumLocal(), wf.NumTotal(), wf.NumEdges())
		}
		for l := int32(0); int(l) < f.NumTotal(); l++ {
			if f.Global(l) != wf.Global(l) {
				t.Fatalf("trial %d step %d fragment %d slot %d: global %d, rebuild %d",
					trial, step, i, l, f.Global(l), wf.Global(l))
			}
			if f.Label(l) != wf.Label(l) {
				t.Fatalf("trial %d step %d fragment %d slot %d: label %q, rebuild %q",
					trial, step, i, l, f.Label(l), wf.Label(l))
			}
			if f.IsInNode(l) != wf.IsInNode(l) {
				t.Fatalf("trial %d step %d fragment %d slot %d: isIn mismatch", trial, step, i, l)
			}
			got, wantRow := f.Out(l), wf.Out(l)
			if len(got) != len(wantRow) || (len(got) > 0 && !reflect.DeepEqual(got, wantRow)) {
				t.Fatalf("trial %d step %d fragment %d slot %d: row %v, rebuild %v",
					trial, step, i, l, got, wantRow)
			}
			if back, ok := f.Local(f.Global(l)); !ok || back != l {
				t.Fatalf("trial %d step %d fragment %d slot %d: index roundtrip broken", trial, step, i, l)
			}
		}
		if len(f.InNodes()) != len(wf.InNodes()) ||
			(len(f.InNodes()) > 0 && !reflect.DeepEqual(f.InNodes(), wf.InNodes())) {
			t.Fatalf("trial %d step %d fragment %d: inNodes %v, rebuild %v",
				trial, step, i, f.InNodes(), wf.InNodes())
		}
	}
}

// TestCompactPreservesQueries checks that compaction is invisible to
// local evaluation: the fragment's derived graph view answers the same
// reachability questions before and after.
func TestCompactPreservesQueries(t *testing.T) {
	rng := gen.NewRNG(29)
	g := testGraph(77, 40, 120)
	fr, err := Random(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !g.Deleted(u) && !g.Deleted(v) {
			if _, _, err := fr.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Record reachability between all global pairs through fragment 0's view.
	f := fr.Fragments()[0]
	type pair struct{ u, v graph.NodeID }
	before := map[pair]bool{}
	view := f.AsGraph()
	for lu := int32(0); int(lu) < f.NumTotal(); lu++ {
		for lv := int32(0); int(lv) < f.NumTotal(); lv++ {
			before[pair{f.Global(lu), f.Global(lv)}] = view.Reachable(graph.NodeID(lu), graph.NodeID(lv))
		}
	}
	fr.Compact()
	view = f.AsGraph()
	for lu := int32(0); int(lu) < f.NumTotal(); lu++ {
		for lv := int32(0); int(lv) < f.NumTotal(); lv++ {
			p := pair{f.Global(lu), f.Global(lv)}
			if before[p] != view.Reachable(graph.NodeID(lu), graph.NodeID(lv)) {
				t.Fatalf("reachability %d->%d flipped across Compact", p.u, p.v)
			}
		}
	}
}
