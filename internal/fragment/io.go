package fragment

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"distreach/internal/graph"
)

// The fragmentation codec persists the node-to-fragment assignment (the
// graph itself is stored separately with graph.Write). Format:
//
//	fragmentation <k> <n>
//	<fragment of node 0>
//	...
//	<fragment of node n-1>
//
// one assignment per line, comments and blank lines permitted.

// Write serializes the assignment of fr to w.
func Write(w io.Writer, fr *Fragmentation) error {
	bw := bufio.NewWriter(w)
	n := fr.Graph().NumNodes()
	fmt.Fprintf(bw, "fragmentation %d %d\n", fr.Card(), n)
	for v := 0; v < n; v++ {
		o := fr.Owner(graph.NodeID(v))
		if o < 0 {
			o = 0 // tombstone: any in-range value; Build ignores it on reload
		}
		fmt.Fprintf(bw, "%d\n", o)
	}
	return bw.Flush()
}

// Read parses an assignment written by Write and rebuilds the
// fragmentation over g. The node count must match g.
func Read(r io.Reader, g *graph.Graph) (*Fragmentation, error) {
	sc := bufio.NewScanner(r)
	line := func() (string, bool) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	hdr, ok := line()
	if !ok {
		return nil, fmt.Errorf("fragment: empty input")
	}
	var k, n int
	if _, err := fmt.Sscanf(hdr, "fragmentation %d %d", &k, &n); err != nil {
		return nil, fmt.Errorf("fragment: bad header %q: %w", hdr, err)
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("fragment: assignment is for %d nodes, graph has %d", n, g.NumNodes())
	}
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		s, ok := line()
		if !ok {
			return nil, fmt.Errorf("fragment: expected %d assignment lines, got %d", n, v)
		}
		if _, err := fmt.Sscanf(s, "%d", &assign[v]); err != nil {
			return nil, fmt.Errorf("fragment: bad assignment line %q: %w", s, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(g, assign, k)
}
