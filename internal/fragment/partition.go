package fragment

import (
	"distreach/internal/gen"
	"distreach/internal/graph"
)

// Partitioning strategies. The paper randomly partitions its graphs ("we
// randomly partitioned real-life and synthetic graphs G into a set F of
// fragments") and stresses that the algorithms' guarantees hold no matter
// how G is fragmented. We provide random (the paper's default), hash, and a
// locality-aware greedy strategy so that the effect of |Vf| on traffic can
// be studied (DESIGN.md ablation 3).

// Random partitions g into k fragments by assigning each node independently
// and uniformly at random, then rebalancing so fragment sizes differ by at
// most one node (matching the paper's size(F) = |G|/card(F) setup).
func Random(g *graph.Graph, k int, seed uint64) (*Fragmentation, error) {
	n := g.NumNodes()
	rng := gen.NewRNG(seed)
	perm := rng.Perm(n)
	assign := make([]int, n)
	for i, v := range perm {
		assign[v] = i % k // balanced random: permutation + round robin
	}
	return Build(g, assign, k)
}

// Hash partitions g into k fragments by a deterministic hash of the node ID.
// This mirrors the default placement of key/value stores and of Hadoop's
// default partitioner (Section 6).
func Hash(g *graph.Graph, k int) (*Fragmentation, error) {
	n := g.NumNodes()
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		h := uint64(v) * 0x9e3779b97f4a7c15
		h ^= h >> 29
		assign[v] = int(h % uint64(k))
	}
	return Build(g, assign, k)
}

// Contiguous partitions g into k fragments of consecutive node IDs (node v
// goes to fragment v*k/n). Generators that emit locality-correlated IDs make
// this a cheap locality-aware baseline; for arbitrary IDs it behaves like a
// range partitioner.
func Contiguous(g *graph.Graph, k int) (*Fragmentation, error) {
	n := g.NumNodes()
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		f := v * k / n
		if f >= k {
			f = k - 1
		}
		assign[v] = f
	}
	return Build(g, assign, k)
}

// Greedy grows k fragments by parallel BFS from k random seeds over the
// undirected version of g, assigning each node to the first frontier that
// reaches it. Compared with Random it produces far fewer cross edges
// (smaller |Vf|), which lowers the traffic of all algorithms; the paper's
// guarantees are parameterized by |Vf| so both partitioners satisfy them.
func Greedy(g *graph.Graph, k int, seed uint64) (*Fragmentation, error) {
	n := g.NumNodes()
	rng := gen.NewRNG(seed)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Seed one BFS per fragment at distinct random nodes.
	perm := rng.Perm(n)
	queues := make([][]graph.NodeID, k)
	for i := 0; i < k && i < n; i++ {
		v := graph.NodeID(perm[i])
		assign[v] = i
		queues[i] = append(queues[i], v)
	}
	target := (n + k - 1) / k
	sizes := make([]int, k)
	for i := 0; i < k && i < n; i++ {
		sizes[i] = 1
	}
	remaining := n - min(k, n)
	for remaining > 0 {
		progress := false
		for i := 0; i < k; i++ {
			if len(queues[i]) == 0 || sizes[i] >= target+1 {
				continue
			}
			v := queues[i][0]
			queues[i] = queues[i][1:]
			expand := func(w graph.NodeID) {
				if assign[w] == -1 && sizes[i] <= target {
					assign[w] = i
					sizes[i]++
					remaining--
					progress = true
					queues[i] = append(queues[i], w)
				}
			}
			for _, w := range g.Out(v) {
				expand(w)
			}
			for _, w := range g.In(v) {
				expand(w)
			}
		}
		if !progress {
			// Frontiers exhausted (disconnected graph or size caps hit):
			// sweep remaining nodes into the currently smallest fragments.
			for v := 0; v < n && remaining > 0; v++ {
				if assign[v] != -1 {
					continue
				}
				best := 0
				for i := 1; i < k; i++ {
					if sizes[i] < sizes[best] {
						best = i
					}
				}
				assign[v] = best
				sizes[best]++
				remaining--
				queues[best] = append(queues[best], graph.NodeID(v))
			}
		}
	}
	return Build(g, assign, k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
