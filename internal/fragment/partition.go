package fragment

import (
	"fmt"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

// Partitioning strategies. The paper randomly partitions its graphs ("we
// randomly partitioned real-life and synthetic graphs G into a set F of
// fragments") and stresses that the algorithms' guarantees hold no matter
// how G is fragmented. Every strategy implements the Partitioner
// interface, so build-time fragmentation, node placement under live
// insertion, and live re-fragmentation all go through one abstraction; the
// original free functions (Random, Hash, ...) remain as wrappers.

// Partitioner chooses a node-to-fragment assignment. Implementations must
// be deterministic for a given configuration and graph state: sites
// holding independent replicas of a deployment re-run the same partitioner
// during a live rebalance and must all arrive at the same fragmentation.
type Partitioner interface {
	// Name identifies the strategy (the form ByName accepts).
	Name() string
	// Assign maps every node of g to a fragment in [0, k). Entries for
	// tombstoned (deleted) nodes are ignored by Build.
	Assign(g *graph.Graph, k int) ([]int, error)
	// Place picks the fragment for one newly inserted node, given the
	// current per-fragment real-node counts. The node has no edges yet, so
	// balance is the only signal; strategies with a structural placement
	// rule (Hash) may use the node ID instead.
	Place(v graph.NodeID, sizes []int) int
}

// Partition fragments g with the given partitioner and attaches the
// partitioner to the result, so live node insertions and rebalances reuse
// the same strategy.
func Partition(g *graph.Graph, p Partitioner, k int) (*Fragmentation, error) {
	assign, err := p.Assign(g, k)
	if err != nil {
		return nil, err
	}
	fr, err := Build(g, assign, k)
	if err != nil {
		return nil, err
	}
	fr.SetPartitioner(p)
	return fr, nil
}

// ByName resolves a partitioner from its textual name ("random", "hash",
// "contiguous", "greedy", "edgecut"); seed parameterizes the seeded
// strategies. This is how CLI flags and rebalance wire frames select a
// strategy.
func ByName(name string, seed uint64) (Partitioner, error) {
	switch name {
	case "random":
		return RandomPartitioner{Seed: seed}, nil
	case "hash":
		return HashPartitioner{}, nil
	case "contiguous":
		return ContiguousPartitioner{}, nil
	case "greedy":
		return GreedyPartitioner{Seed: seed}, nil
	case "edgecut":
		return EdgeCutPartitioner{Seed: seed}, nil
	default:
		return nil, fmt.Errorf("fragment: unknown partitioner %q (want random, hash, contiguous, greedy or edgecut)", name)
	}
}

// Describe is the inverse of ByName: the name and seed that reconstruct
// p. Snapshots record them so a replica seeded from a snapshot re-attaches
// the same strategy and live node placement stays deterministic across
// replicas. A nil (or foreign) partitioner describes as "", the
// least-loaded default.
func Describe(p Partitioner) (name string, seed uint64) {
	switch t := p.(type) {
	case RandomPartitioner:
		return t.Name(), t.Seed
	case HashPartitioner:
		return t.Name(), 0
	case ContiguousPartitioner:
		return t.Name(), 0
	case GreedyPartitioner:
		return t.Name(), t.Seed
	case EdgeCutPartitioner:
		return t.Name(), t.Seed
	}
	return "", 0
}

// leastLoaded is the default balance-aware placement: the fragment with
// the fewest real nodes, lowest index on ties (deterministic across
// replicas).
func leastLoaded(sizes []int) int {
	best := 0
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[best] {
			best = i
		}
	}
	return best
}

// RandomPartitioner assigns each node uniformly at random, rebalanced so
// fragment sizes differ by at most one node (the paper's size(F) =
// |G|/card(F) setup).
type RandomPartitioner struct{ Seed uint64 }

// Name implements Partitioner.
func (RandomPartitioner) Name() string { return "random" }

// Assign implements Partitioner.
func (p RandomPartitioner) Assign(g *graph.Graph, k int) ([]int, error) {
	n := g.NumNodes()
	rng := gen.NewRNG(p.Seed)
	perm := rng.Perm(n)
	assign := make([]int, n)
	for i, v := range perm {
		assign[v] = i % k // balanced random: permutation + round robin
	}
	return assign, nil
}

// Place implements Partitioner.
func (RandomPartitioner) Place(_ graph.NodeID, sizes []int) int { return leastLoaded(sizes) }

// HashPartitioner assigns by a deterministic hash of the node ID,
// mirroring the default placement of key/value stores and of Hadoop's
// default partitioner (Section 6).
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

func hashNode(v graph.NodeID, k int) int {
	h := uint64(v) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % uint64(k))
}

// Assign implements Partitioner.
func (HashPartitioner) Assign(g *graph.Graph, k int) ([]int, error) {
	n := g.NumNodes()
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		assign[v] = hashNode(graph.NodeID(v), k)
	}
	return assign, nil
}

// Place implements Partitioner: hash placement stays structural so a
// node's fragment is a pure function of its ID.
func (HashPartitioner) Place(v graph.NodeID, sizes []int) int { return hashNode(v, len(sizes)) }

// ContiguousPartitioner assigns consecutive node IDs to the same fragment
// (node v goes to fragment v*k/n). Generators that emit
// locality-correlated IDs make this a cheap locality-aware baseline.
type ContiguousPartitioner struct{}

// Name implements Partitioner.
func (ContiguousPartitioner) Name() string { return "contiguous" }

// Assign implements Partitioner.
func (ContiguousPartitioner) Assign(g *graph.Graph, k int) ([]int, error) {
	n := g.NumNodes()
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		f := v * k / n
		if f >= k {
			f = k - 1
		}
		assign[v] = f
	}
	return assign, nil
}

// Place implements Partitioner.
func (ContiguousPartitioner) Place(_ graph.NodeID, sizes []int) int { return leastLoaded(sizes) }

// GreedyPartitioner grows k fragments by parallel BFS from k random seeds
// over the undirected version of g, assigning each node to the first
// frontier that reaches it. Compared with Random it produces far fewer
// cross edges (smaller |Vf|), which lowers the traffic of all algorithms.
type GreedyPartitioner struct{ Seed uint64 }

// Name implements Partitioner.
func (GreedyPartitioner) Name() string { return "greedy" }

// Assign implements Partitioner.
func (p GreedyPartitioner) Assign(g *graph.Graph, k int) ([]int, error) {
	n := g.NumNodes()
	rng := gen.NewRNG(p.Seed)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Seed one BFS per fragment at distinct random nodes.
	perm := rng.Perm(n)
	queues := make([][]graph.NodeID, k)
	for i := 0; i < k && i < n; i++ {
		v := graph.NodeID(perm[i])
		assign[v] = i
		queues[i] = append(queues[i], v)
	}
	target := (n + k - 1) / k
	sizes := make([]int, k)
	for i := 0; i < k && i < n; i++ {
		sizes[i] = 1
	}
	remaining := n - min(k, n)
	for remaining > 0 {
		progress := false
		for i := 0; i < k; i++ {
			if len(queues[i]) == 0 || sizes[i] >= target+1 {
				continue
			}
			v := queues[i][0]
			queues[i] = queues[i][1:]
			expand := func(w graph.NodeID) {
				if assign[w] == -1 && sizes[i] <= target {
					assign[w] = i
					sizes[i]++
					remaining--
					progress = true
					queues[i] = append(queues[i], w)
				}
			}
			for _, w := range g.Out(v) {
				expand(w)
			}
			for _, w := range g.In(v) {
				expand(w)
			}
		}
		if !progress {
			// Frontiers exhausted (disconnected graph or size caps hit):
			// sweep remaining nodes into the currently smallest fragments.
			for v := 0; v < n && remaining > 0; v++ {
				if assign[v] != -1 {
					continue
				}
				best := 0
				for i := 1; i < k; i++ {
					if sizes[i] < sizes[best] {
						best = i
					}
				}
				assign[v] = best
				sizes[best]++
				remaining--
				queues[best] = append(queues[best], graph.NodeID(v))
			}
		}
	}
	return assign, nil
}

// Place implements Partitioner.
func (GreedyPartitioner) Place(_ graph.NodeID, sizes []int) int { return leastLoaded(sizes) }

// EdgeCutPartitioner is the balance-aware greedy edge-cut strategy used by
// live rebalancing: nodes stream in BFS order from seeded random roots (so
// neighborhoods arrive consecutively) and each goes to the fragment
// holding most of its (in- and out-) neighbors, discounted by how full
// that fragment already is — the linear deterministic greedy (LDG)
// objective score(i) = |N(v) ∩ Fi| · (1 − size(Fi)/C). Fullness is
// measured in the paper's fragment-size metric (nodes + incident edges,
// the quantity |Fm| bounds), not node count alone, so an edge-dense hot
// region gets split across fragments instead of bloating one. EdgeCut
// thus minimizes both |Vf| (few cross edges) and |Fm| — exactly the two
// parameters the paper's guarantees are parameterized by.
type EdgeCutPartitioner struct{ Seed uint64 }

// Name implements Partitioner.
func (EdgeCutPartitioner) Name() string { return "edgecut" }

// Assign implements Partitioner.
func (p EdgeCutPartitioner) Assign(g *graph.Graph, k int) ([]int, error) {
	n := g.NumNodes()
	rng := gen.NewRNG(p.Seed)
	assign := make([]int, n)
	weight := make([]int, n) // 1 + degree: v's contribution to |Fi|
	totalWeight := 0
	for i := range assign {
		assign[i] = -1
		if !g.Deleted(graph.NodeID(i)) {
			weight[i] = 1 + g.OutDegree(graph.NodeID(i)) + g.InDegree(graph.NodeID(i))
			totalWeight += weight[i]
		}
	}
	capacity := float64(totalWeight)*1.1/float64(k) + 1
	sizes := make([]int, k)

	// BFS stream order over the undirected graph from seeded random roots:
	// when a node comes up, most of its neighborhood has just been placed,
	// which is what lets the LDG score see (and keep) community structure.
	order := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for _, ri := range rng.Perm(n) {
		root := graph.NodeID(ri)
		if seen[root] || g.Deleted(root) {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			visit := func(w graph.NodeID) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
			for _, w := range g.Out(v) {
				visit(w)
			}
			for _, w := range g.In(v) {
				visit(w)
			}
		}
	}

	counts := make([]int, k)
	stamp := make([]int, k) // round tag so counts reset in O(deg), not O(k)
	round := 0
	for _, v := range order {
		round++
		tally := func(w graph.NodeID) {
			if f := assign[w]; f >= 0 {
				if stamp[f] != round {
					stamp[f] = round
					counts[f] = 0
				}
				counts[f]++
			}
		}
		for _, w := range g.Out(v) {
			tally(w)
		}
		for _, w := range g.In(v) {
			tally(w)
		}
		best, bestScore := -1, -1.0
		for i := 0; i < k; i++ {
			slack := 1 - float64(sizes[i])/capacity
			if slack < 0 {
				continue // fragment at capacity: balance forbids it
			}
			c := 0
			if stamp[i] == round {
				c = counts[i]
			}
			// +1 smooths the neighbor count so empty fragments with slack
			// still attract isolated nodes (pure balance fallback).
			score := float64(c+1) * slack
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			best = leastLoaded(sizes) // every fragment at capacity: balance wins
		}
		assign[v] = best
		sizes[best] += weight[v]
	}
	// Tombstoned slots still need a legal assignment value for Build's
	// bookkeeping path; park them on fragment 0 (Build ignores them).
	for v := 0; v < n; v++ {
		if assign[v] == -1 {
			assign[v] = 0
		}
	}
	return assign, nil
}

// Place implements Partitioner.
func (EdgeCutPartitioner) Place(_ graph.NodeID, sizes []int) int { return leastLoaded(sizes) }

// Random partitions g into k fragments by assigning each node
// independently and uniformly at random, then rebalancing so fragment
// sizes differ by at most one node.
func Random(g *graph.Graph, k int, seed uint64) (*Fragmentation, error) {
	return Partition(g, RandomPartitioner{Seed: seed}, k)
}

// Hash partitions g into k fragments by a deterministic hash of the node ID.
func Hash(g *graph.Graph, k int) (*Fragmentation, error) {
	return Partition(g, HashPartitioner{}, k)
}

// Contiguous partitions g into k fragments of consecutive node IDs.
func Contiguous(g *graph.Graph, k int) (*Fragmentation, error) {
	return Partition(g, ContiguousPartitioner{}, k)
}

// Greedy partitions g into k fragments grown by BFS from k random seeds.
func Greedy(g *graph.Graph, k int, seed uint64) (*Fragmentation, error) {
	return Partition(g, GreedyPartitioner{Seed: seed}, k)
}

// EdgeCut partitions g into k fragments with the balance-aware greedy
// edge-cut (LDG) strategy.
func EdgeCut(g *graph.Graph, k int, seed uint64) (*Fragmentation, error) {
	return Partition(g, EdgeCutPartitioner{Seed: seed}, k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
