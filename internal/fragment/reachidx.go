package fragment

import (
	"distreach/internal/reachindex"
)

// Per-fragment reachability index lifecycle. The index itself lives in
// internal/reachindex; this file owns when it is built, invalidated and
// swapped:
//
//   - EnableReachIndex sets the byte budget and kicks an asynchronous
//     build per fragment. Budget <= 0 disables indexing (and drops any
//     live indexes).
//   - Mutations (update.go) invalidate incrementally under the write
//     lock: an edge change marks the ancestor cone of its source slot
//     stale, and any operation that renumbers local slots (node ops,
//     virtual-node reclamation, compaction) retires the whole index.
//     Queries against stale or retired labels fall back to direct
//     evaluation — never a wrong answer, only a slower one.
//   - Apply/Rebalance/Install schedule asynchronous rebuilds for the
//     affected fragments. A rebuild holds the fragmentation's read lock
//     (excluding updates, not queries) while it computes the new index
//     from AsGraph/LocalSCC, then installs it with an atomic pointer
//     swap — the same serve-while-rebuilding discipline as the 'R'
//     rebalance frames. Single-flight per fragment: concurrent triggers
//     coalesce, and a mutation that lands between the install and the
//     builder's exit reschedules instead of leaving stale labels behind.

// EnableReachIndex sets the per-fragment label budget in bytes and
// asynchronously (re)builds every fragment's index. A budget <= 0 turns
// indexing off and retires the live indexes. Callers that need the
// indexes ready (tests, benchmarks) follow with WaitReachIndexes.
func (fr *Fragmentation) EnableReachIndex(budget int64) {
	fr.idxBudget.Store(budget)
	if budget <= 0 {
		for _, f := range fr.frags {
			f.retireReachIndex()
		}
		return
	}
	for _, f := range fr.frags {
		fr.rebuildReachIndexAsync(f)
	}
}

// ReachIndexBudget reports the configured budget (<= 0: disabled).
func (fr *Fragmentation) ReachIndexBudget() int64 { return fr.idxBudget.Load() }

// WaitReachIndexes blocks until every scheduled index rebuild has
// finished. Must not be called while holding the fragmentation's write
// lock (builders need the read lock).
func (fr *Fragmentation) WaitReachIndexes() { fr.idxWG.Wait() }

// ReachIndex returns the fragment's current index, or nil while none is
// installed (disabled, retired by a slot-renumbering mutation, or still
// building). The returned index may be concurrently marked stale; its
// Equation method degrades to !ok rather than misanswering.
func (f *Fragment) ReachIndex() *reachindex.Index { return f.idx.Load() }

// rebuildReachIndexAsync schedules one asynchronous index rebuild for f,
// coalescing with an already-running one.
func (fr *Fragmentation) rebuildReachIndexAsync(f *Fragment) {
	budget := fr.idxBudget.Load()
	if budget <= 0 {
		return
	}
	if !f.idxBuilding.CompareAndSwap(false, true) {
		return // a builder is already in flight; it rechecks on exit
	}
	fr.idxWG.Add(1)
	go func() {
		defer fr.idxWG.Done()
		fr.mu.RLock()
		f.buildReachIndexLocked(budget)
		fr.mu.RUnlock()
		fr.idxRebuilds.Add(1)
		f.idxBuilding.Store(false)
		// A mutation that landed after the install above but before the
		// Store(false) marked the fresh index stale and lost its own
		// reschedule to the CAS — catch it here so staleness never
		// outlives the last builder.
		if idx := f.idx.Load(); idx != nil && idx.AnyStale() {
			fr.rebuildReachIndexAsync(f)
		}
	}()
}

// buildReachIndexLocked computes and installs f's index from the cached
// local views. Caller holds at least the fragmentation's read lock.
func (f *Fragment) buildReachIndexLocked(budget int64) {
	g := f.AsGraph()
	comp := f.LocalSCC()
	nc := 0
	for _, c := range comp {
		if int(c)+1 > nc {
			nc = int(c) + 1
		}
	}
	idx := reachindex.Build(reachindex.Spec{
		Graph:    g,
		Comp:     comp,
		NC:       nc,
		Boundary: f.IsBoundary,
		Sources:  f.inNodes,
		Budget:   budget,
	})
	idx.PrecomputeGlobals(f.Global)
	if old := f.idx.Swap(idx); old != nil {
		idx.AddHits(old.Hits(), old.Fallbacks())
	}
}

// idxMarkDirty incrementally invalidates the labels affected by a
// mutation at slot l (the ancestor cone of l's SCC). Called under the
// fragmentation's write lock.
func (f *Fragment) idxMarkDirty(l int32) {
	if idx := f.idx.Load(); idx != nil {
		idx.MarkDirty(l)
	}
}

// retireReachIndex drops the fragment's index entirely — required by any
// mutation that renumbers local slots (the index speaks in slots). The
// retired counters move to the fragment so cumulative stats survive.
func (f *Fragment) retireReachIndex() {
	if old := f.idx.Swap(nil); old != nil {
		f.idxHits.Add(old.Hits())
		f.idxFallbacks.Add(old.Fallbacks())
	}
}

// ReachIndexStats aggregates the index state across fragments for /stats
// and bench -json.
type ReachIndexStats struct {
	Enabled     bool
	BudgetBytes int64
	LabelBytes  int64 // bytes held by the live indexes
	Fragments   int   // fragments with a live index installed
	Hits        int64 // Equation calls answered from an index (cumulative)
	Fallbacks   int64 // Equation calls that fell back to direct evaluation
	Rebuilds    int64 // asynchronous builds completed
}

// HitRate reports hits/(hits+fallbacks), 0 when no indexed query ran.
func (s ReachIndexStats) HitRate() float64 {
	if s.Hits+s.Fallbacks == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Fallbacks)
}

// ReachIndexStats reports the current aggregate index statistics.
func (fr *Fragmentation) ReachIndexStats() ReachIndexStats {
	st := ReachIndexStats{
		BudgetBytes: fr.idxBudget.Load(),
		Rebuilds:    fr.idxRebuilds.Load(),
	}
	st.Enabled = st.BudgetBytes > 0
	for _, f := range fr.frags {
		st.Hits += f.idxHits.Load()
		st.Fallbacks += f.idxFallbacks.Load()
		if idx := f.idx.Load(); idx != nil {
			st.Fragments++
			st.LabelBytes += idx.LabelBytes()
			st.Hits += idx.Hits()
			st.Fallbacks += idx.Fallbacks()
		}
	}
	return st
}
