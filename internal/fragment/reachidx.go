package fragment

import (
	"time"

	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

// Per-fragment reachability index lifecycle. The index itself lives in
// internal/reachindex; this file owns when it is built, invalidated and
// swapped:
//
//   - EnableReachIndex sets the byte budget and kicks an asynchronous
//     build per fragment. Budget <= 0 disables indexing (and drops any
//     live indexes). SetReachIndexPolicy picks the budget policy the
//     builders run under (postorder or hit-guided).
//   - Mutations (update.go) invalidate incrementally under the write
//     lock: an edge change marks the ancestor cone of its source slot
//     stale, and any operation that renumbers local slots (node ops,
//     virtual-node reclamation, compaction) retires the whole index.
//     Queries against stale or retired labels fall back to direct
//     evaluation — never a wrong answer, only a slower one.
//   - Apply/Rebalance/Install schedule asynchronous rebuilds for the
//     affected fragments. A rebuild holds the fragmentation's read lock
//     (excluding updates, not queries) while it computes the new index
//     from AsGraph/LocalSCC, then installs it with an atomic pointer
//     swap — the same serve-while-rebuilding discipline as the 'R'
//     rebalance frames. Single-flight per fragment: concurrent triggers
//     coalesce, and a mutation that lands between the install and the
//     builder's exit reschedules instead of leaving stale labels behind.
//   - Hit feedback: every index counts hits per source slot; whenever an
//     index is replaced or retired those counts drain into the
//     fragment's decayed hotness map (keyed by global ID, which survives
//     slot renumbering) and feed the next build's PolicyHits ordering.
//   - AdoptReachIndex installs an index decoded from a snapshot without
//     building, so a recovered replica serves indexed answers
//     immediately; KickReachIndexRebuilds backfills only the fragments
//     that did not get one.

// EnableReachIndex sets the per-fragment label budget in bytes and
// asynchronously (re)builds every fragment's index. A budget <= 0 turns
// indexing off and drops the live indexes. Callers that need the
// indexes ready (tests, benchmarks) follow with WaitReachIndexes.
func (fr *Fragmentation) EnableReachIndex(budget int64) {
	fr.idxBudget.Store(budget)
	if budget <= 0 {
		for _, f := range fr.frags {
			f.dropReachIndex()
		}
		return
	}
	for _, f := range fr.frags {
		fr.rebuildReachIndexAsync(f)
	}
}

// ReachIndexBudget reports the configured budget (<= 0: disabled).
func (fr *Fragmentation) ReachIndexBudget() int64 { return fr.idxBudget.Load() }

// SetReachIndexPolicy selects the budget policy future index builds run
// under. It does not rebuild by itself — the next rebuild (mutation,
// rebalance, EnableReachIndex) picks it up.
func (fr *Fragmentation) SetReachIndexPolicy(p reachindex.Policy) {
	fr.idxPolicy.Store(int32(p))
}

// ReachIndexPolicy reports the configured budget policy.
func (fr *Fragmentation) ReachIndexPolicy() reachindex.Policy {
	return reachindex.Policy(fr.idxPolicy.Load())
}

// ConfigureReachIndex records the budget and policy without scheduling
// any builds — for restore paths that adopt prebuilt indexes
// (AdoptReachIndex) and then backfill the rest via
// KickReachIndexRebuilds.
func (fr *Fragmentation) ConfigureReachIndex(budget int64, p reachindex.Policy) {
	fr.idxBudget.Store(budget)
	fr.idxPolicy.Store(int32(p))
}

// WaitReachIndexes blocks until every scheduled index rebuild has
// finished. Must not be called while holding the fragmentation's write
// lock (builders need the read lock).
func (fr *Fragmentation) WaitReachIndexes() { fr.idxWG.Wait() }

// ReachIndex returns the fragment's current index, or nil while none is
// installed (disabled, retired by a slot-renumbering mutation, or still
// building). The returned index may be concurrently marked stale; its
// Equation method degrades to !ok rather than misanswering.
func (f *Fragment) ReachIndex() *reachindex.Index { return f.idx.Load() }

// AdoptReachIndex installs a prebuilt index (decoded from a snapshot's
// index section) for the fragment with the given ID, bypassing the
// builder. The caller has already validated the index against the
// fragment (slot count, snapshot LSN/fingerprint); adoption maps its
// frontier lists to global IDs and swaps it in. Returns false when no
// fragment has that ID. Must not race with mutations — callers adopt
// during Recover/Install, before the replica serves.
func (fr *Fragmentation) AdoptReachIndex(fragID int, idx *reachindex.Index) bool {
	for _, f := range fr.frags {
		if f.ID != fragID {
			continue
		}
		idx.PrecomputeGlobals(f.Global)
		f.installReachIndex(idx)
		return true
	}
	return false
}

// KickReachIndexRebuilds schedules asynchronous rebuilds for exactly the
// fragments that need one — no index installed, or the installed one has
// gone stale. Fragments that adopted a fresh snapshot index are left
// serving it. No-op while indexing is disabled.
func (fr *Fragmentation) KickReachIndexRebuilds() {
	if fr.idxBudget.Load() <= 0 {
		return
	}
	for _, f := range fr.frags {
		if idx := f.idx.Load(); idx == nil || idx.AnyStale() {
			fr.rebuildReachIndexAsync(f)
		}
	}
}

// rebuildReachIndexAsync schedules one asynchronous index rebuild for f,
// coalescing with an already-running one.
func (fr *Fragmentation) rebuildReachIndexAsync(f *Fragment) {
	budget := fr.idxBudget.Load()
	if budget <= 0 {
		return
	}
	if !f.idxBuilding.CompareAndSwap(false, true) {
		return // a builder is already in flight; it rechecks on exit
	}
	fr.idxWG.Add(1)
	go func() {
		defer fr.idxWG.Done()
		policy := reachindex.Policy(fr.idxPolicy.Load())
		start := time.Now()
		fr.mu.RLock()
		f.buildReachIndexLocked(budget, policy)
		fr.mu.RUnlock()
		d := time.Since(start).Nanoseconds()
		fr.idxLastBuild.Store(d)
		fr.idxTotalBuild.Add(d)
		fr.idxRebuilds.Add(1)
		f.idxBuilding.Store(false)
		// A mutation that landed after the install above but before the
		// Store(false) marked the fresh index stale and lost its own
		// reschedule to the CAS — catch it here so staleness never
		// outlives the last builder.
		if idx := f.idx.Load(); idx != nil && idx.AnyStale() {
			fr.rebuildReachIndexAsync(f)
		}
	}()
}

// buildReachIndexLocked computes and installs f's index from the cached
// local views. Caller holds at least the fragmentation's read lock.
func (f *Fragment) buildReachIndexLocked(budget int64, policy reachindex.Policy) {
	g := f.AsGraph()
	comp := f.LocalSCC()
	nc := 0
	for _, c := range comp {
		if int(c)+1 > nc {
			nc = int(c) + 1
		}
	}
	hot := f.refreshHotness(policy)
	idx := reachindex.Build(reachindex.Spec{
		Graph:    g,
		Comp:     comp,
		NC:       nc,
		Boundary: f.IsBoundary,
		Sources:  f.inNodes,
		Budget:   budget,
		Policy:   policy,
		Hot:      hot,
	})
	idx.PrecomputeGlobals(f.Global)
	f.installReachIndex(idx)
}

// refreshHotness advances the fragment's decayed hotness one generation:
// halve every stored count (dropping zeros), fold in the live index's
// per-slot hits, and — for PolicyHits — materialize the map as a
// slot-indexed slice for Spec.Hot. The map is keyed by global ID, so
// hotness survives the slot renumbering that retires indexes. Caller
// holds at least the read lock (slots are stable).
func (f *Fragment) refreshHotness(policy reachindex.Policy) []int64 {
	f.idxHotMu.Lock()
	defer f.idxHotMu.Unlock()
	for v, h := range f.idxHot {
		if h >>= 1; h == 0 {
			delete(f.idxHot, v)
		} else {
			f.idxHot[v] = h
		}
	}
	if old := f.idx.Load(); old != nil {
		f.foldSourceHitsLocked(old)
	}
	if policy != reachindex.PolicyHits || len(f.idxHot) == 0 {
		return nil
	}
	hot := make([]int64, f.ids.len())
	for _, s := range f.inNodes {
		if h := f.idxHot[f.Global(s)]; h > 0 {
			hot[s] = h
		}
	}
	return hot
}

// foldSourceHitsLocked drains idx's per-slot hit counters into the
// hotness map. Caller holds idxHotMu, and idx's slots must still be the
// fragment's current slots (true for any live index: renumbering retires
// first).
func (f *Fragment) foldSourceHitsLocked(idx *reachindex.Index) {
	if f.idxHot == nil {
		f.idxHot = make(map[graph.NodeID]int64)
	}
	idx.DrainSourceHits(func(slot int32, hits int64) {
		f.idxHot[f.Global(slot)] += hits
	})
}

// installReachIndex swaps idx in, folding the replaced index's counters
// into the per-policy accumulators so cumulative stats survive the swap.
func (f *Fragment) installReachIndex(idx *reachindex.Index) {
	if old := f.idx.Swap(idx); old != nil {
		p := old.Policy()
		f.idxHits[p].Add(old.Hits())
		f.idxFallbacks[p].Add(old.Fallbacks())
	}
}

// idxMarkDirty incrementally invalidates the labels affected by a
// mutation at slot l (the ancestor cone of l's SCC). Called under the
// fragmentation's write lock.
func (f *Fragment) idxMarkDirty(l int32) {
	if idx := f.idx.Load(); idx != nil {
		idx.MarkDirty(l)
	}
}

// retireReachIndex drops the fragment's index entirely — required by any
// mutation that renumbers local slots (the index speaks in slots). The
// retired counters move to the per-policy accumulators and the per-slot
// hits into the hotness map (slots are still pre-renumbering here, so the
// slot-to-global mapping is the one the index was built on). Called under
// the fragmentation's write lock.
func (f *Fragment) retireReachIndex() {
	if old := f.idx.Swap(nil); old != nil {
		f.idxHotMu.Lock()
		f.foldSourceHitsLocked(old)
		f.idxHotMu.Unlock()
		p := old.Policy()
		f.idxHits[p].Add(old.Hits())
		f.idxFallbacks[p].Add(old.Fallbacks())
	}
}

// dropReachIndex is retireReachIndex without the hotness drain, for the
// disable path (EnableReachIndex <= 0), which runs without the write lock
// and must not read the slot mapping concurrently with mutations.
func (f *Fragment) dropReachIndex() {
	if old := f.idx.Swap(nil); old != nil {
		p := old.Policy()
		f.idxHits[p].Add(old.Hits())
		f.idxFallbacks[p].Add(old.Fallbacks())
	}
}

// PolicyCounters is one budget policy's share of the hit/fallback
// totals.
type PolicyCounters struct {
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
}

// ReachIndexStats aggregates the index state across fragments for /stats
// and bench -json.
type ReachIndexStats struct {
	Enabled     bool
	BudgetBytes int64
	Policy      string // configured budget policy (postorder|hits)
	LabelBytes  int64  // bytes held by the live indexes
	Fragments   int    // fragments with a live index installed
	Hits        int64  // Equation calls answered from an index (cumulative)
	Fallbacks   int64  // Equation calls that fell back to direct evaluation
	Rebuilds    int64  // asynchronous builds completed
	LastBuild   time.Duration
	TotalBuild  time.Duration
	// PerPolicy attributes the cumulative hit/fallback counters to the
	// policy of the index that served them (only policies that served at
	// least one call appear).
	PerPolicy map[string]PolicyCounters
}

// HitRate reports hits/(hits+fallbacks), 0 when no indexed query ran.
func (s ReachIndexStats) HitRate() float64 {
	if s.Hits+s.Fallbacks == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Fallbacks)
}

// ReachIndexStats reports the current aggregate index statistics.
func (fr *Fragmentation) ReachIndexStats() ReachIndexStats {
	st := ReachIndexStats{
		BudgetBytes: fr.idxBudget.Load(),
		Policy:      reachindex.Policy(fr.idxPolicy.Load()).String(),
		Rebuilds:    fr.idxRebuilds.Load(),
		LastBuild:   time.Duration(fr.idxLastBuild.Load()),
		TotalBuild:  time.Duration(fr.idxTotalBuild.Load()),
	}
	st.Enabled = st.BudgetBytes > 0
	var pol [2]PolicyCounters
	for _, f := range fr.frags {
		for p := range pol {
			pol[p].Hits += f.idxHits[p].Load()
			pol[p].Fallbacks += f.idxFallbacks[p].Load()
		}
		if idx := f.idx.Load(); idx != nil {
			st.Fragments++
			st.LabelBytes += idx.LabelBytes()
			pol[idx.Policy()].Hits += idx.Hits()
			pol[idx.Policy()].Fallbacks += idx.Fallbacks()
		}
	}
	for p, c := range pol {
		st.Hits += c.Hits
		st.Fallbacks += c.Fallbacks
		if c.Hits != 0 || c.Fallbacks != 0 {
			if st.PerPolicy == nil {
				st.PerPolicy = make(map[string]PolicyCounters, 2)
			}
			st.PerPolicy[reachindex.Policy(p).String()] = c
		}
	}
	return st
}
