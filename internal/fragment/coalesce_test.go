package fragment

import (
	"testing"

	"distreach/internal/gen"
)

func TestCoalesceBasics(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 240, Seed: 10})
	fr, err := Random(g, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Place fragments {0,1,2} on site 0 and {3,4,5} on site 1.
	co, err := Coalesce(fr, []int{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Validate(); err != nil {
		t.Fatal(err)
	}
	if co.Card() != 2 {
		t.Fatalf("card = %d", co.Card())
	}
	// Co-locating fragments can only internalize cross edges.
	if co.CrossEdges() > fr.CrossEdges() {
		t.Fatalf("coalescing increased cross edges: %d -> %d", fr.CrossEdges(), co.CrossEdges())
	}
	if co.Vf() > fr.Vf() {
		t.Fatalf("coalescing increased |Vf|: %d -> %d", fr.Vf(), co.Vf())
	}
}

func TestCoalesceIdentityPlacement(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 30, Edges: 90, Seed: 11})
	fr, err := Random(g, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Coalesce(fr, []int{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if co.CrossEdges() != fr.CrossEdges() || co.Vf() != fr.Vf() {
		t.Fatal("identity placement changed the fragment graph")
	}
}

func TestCoalesceErrors(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 10, Edges: 20, Seed: 12})
	fr, err := Random(g, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Coalesce(fr, []int{0, 1}, 2); err == nil {
		t.Fatal("short placement accepted")
	}
	if _, err := Coalesce(fr, []int{0, 1, 5}, 2); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
	if _, err := Coalesce(fr, []int{0, 0, 0}, 0); err == nil {
		t.Fatal("zero sites accepted")
	}
}
