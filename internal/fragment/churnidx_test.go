package fragment_test

import (
	"sync"
	"testing"

	"distreach/internal/core"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/reachindex"
)

func solveVia(fr *fragment.Fragmentation, s, t graph.NodeID, opt *core.Options) bool {
	partials := make([]*core.ReachPartial, 0, fr.Card())
	for _, f := range fr.Fragments() {
		partials = append(partials, core.LocalEvalReach(f, s, t, opt))
	}
	return core.SolveReach(partials, s)
}

// TestIndexAnswersUnderChurnAndRebalance is the end-to-end agreement
// check for the indexed path: across churn batches, live rebalances, and
// policy flips — with queries racing the async index rebuilds the whole
// time — the indexed evaluation must agree with direct evaluation on
// every query. Run under -race this also exercises install/retire vs
// Equation and the hotness drain.
func TestIndexAnswersUnderChurnAndRebalance(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 200, Edges: 700, Labels: []string{"A"}, Seed: 61})
	fr, err := fragment.Partition(g, fragment.EdgeCutPartitioner{Seed: 61}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fr.SetReachIndexPolicy(reachindex.PolicyHits)
	fr.EnableReachIndex(1 << 16) // tight enough that fallbacks happen too
	rep := fragment.NewReplica(fr)
	rng := gen.NewRNG(62)
	epoch := uint64(1)
	for round := 0; round < 12; round++ {
		cur, _ := rep.Current()
		// Churn: a burst of mutations that stale and retire indexes.
		for i := 0; i < 25; i++ {
			n := cur.Graph().NumNodes()
			var ops []fragment.Op
			switch rng.Intn(4) {
			case 0, 1:
				ops = []fragment.Op{{Kind: fragment.OpInsertEdge, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))}}
			case 2:
				ops = []fragment.Op{{Kind: fragment.OpDeleteEdge, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))}}
			case 3:
				ops = []fragment.Op{{Kind: fragment.OpInsertNode, Label: "A", Frag: -1}}
			}
			if _, err := cur.Apply(ops); err != nil {
				continue // tombstone reference: rejected atomically
			}
		}
		switch round % 4 {
		case 1:
			if ok, err := rep.Rebalance(epoch, fragment.EdgeCutPartitioner{Seed: uint64(round)}); !ok || err != nil {
				t.Fatalf("round %d: rebalance ok=%v err=%v", round, ok, err)
			}
			epoch++
			cur, _ = rep.Current()
		case 3:
			if round%8 == 3 {
				cur.SetReachIndexPolicy(reachindex.PolicyPostorder)
			} else {
				cur.SetReachIndexPolicy(reachindex.PolicyHits)
			}
		}
		// Queries race the async rebuilds the churn kicked off: stale
		// fragments must answer through the fallback path, fresh installs
		// must swap in without tearing a reader.
		var wg sync.WaitGroup
		var mu sync.Mutex
		var failures []string
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				qrng := gen.NewRNG(seed)
				n := cur.Graph().NumNodes()
				for q := 0; q < 40; q++ {
					s, tt := graph.NodeID(qrng.Intn(n)), graph.NodeID(qrng.Intn(n))
					indexed := solveVia(cur, s, tt, nil)
					direct := solveVia(cur, s, tt, &core.Options{NoFragmentIndex: true})
					if indexed != direct {
						mu.Lock()
						failures = append(failures, "")
						mu.Unlock()
						return
					}
				}
			}(uint64(100*round + w))
		}
		wg.Wait()
		if len(failures) > 0 {
			t.Fatalf("round %d: indexed evaluation disagreed with direct evaluation", round)
		}
	}
	cur, _ := rep.Current()
	cur.WaitReachIndexes()
	st := cur.ReachIndexStats()
	if st.Hits == 0 {
		t.Fatalf("no index hits recorded over the whole run: %+v", st)
	}
	if st.Rebuilds == 0 {
		t.Fatalf("no rebuilds recorded: %+v", st)
	}
	if err := cur.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
}
