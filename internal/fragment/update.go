package fragment

import (
	"fmt"
	"sort"

	"distreach/internal/graph"
)

// Live updates. The paper's conclusion sketches combining partial
// evaluation with incremental evaluation so a changing graph does not
// force recomputation from scratch; the precondition is a fragmentation
// that can change at all. Originally only the edge set was live; the
// online-rebalancing work made the node set live too, and turned single
// mutations into transactional batches: Apply takes a sequence of ops,
// applies them atomically under one write lock (ops are pre-validated, so
// a rejected batch changes nothing), and reports one unioned dirty set —
// the fragments whose partial answers (rvsets) may differ after the batch:
//
//   - an internal edge dirties only the fragment storing it;
//   - a cross edge dirties its source fragment (adjacency and virtual
//     nodes change) and, when the target's in-node status flips, the
//     target fragment too (its in-node set, hence its equation set,
//     changes);
//   - a node insertion dirties the fragment that receives the node;
//   - a node deletion cascades to its incident edges (dirtying as above)
//     and dirties the fragment that stored the node.
//
// The dirty set drives invalidation everywhere: core.Session drops the
// cached rvsets of dirtied fragments, and the gateway's answer cache
// evicts exactly the keys whose evaluation touched a dirtied fragment.
//
// All mutations below write through the fragments' overlay storage
// (idIndex patches, csr.Store overlay rows); the flat bases are only
// rewritten by compact().

// OpKind selects the mutation an Op performs.
type OpKind byte

// The four mutation kinds. The byte values double as the wire encoding of
// the multi-op update frame.
const (
	OpInsertEdge OpKind = 'i'
	OpDeleteEdge OpKind = 'd'
	OpInsertNode OpKind = 'n'
	OpDeleteNode OpKind = 'r'
)

// Op is one mutation of a transactional update batch.
type Op struct {
	Kind OpKind
	// U, V are the edge endpoints for OpInsertEdge/OpDeleteEdge; U is the
	// node for OpDeleteNode.
	U, V graph.NodeID
	// Label is the new node's label for OpInsertNode.
	Label string
	// Frag pins the new node's fragment for OpInsertNode; -1 lets the
	// fragmentation's partitioner place it (balance-aware by default).
	Frag int
}

// ApplyResult reports the effect of one update batch.
type ApplyResult struct {
	// Changed is false when every op was a no-op (inserting existing
	// edges, deleting missing ones, deleting already-deleted nodes).
	Changed bool
	// Dirty lists the fragments whose partial answers may have changed,
	// sorted ascending and deduplicated across the whole batch.
	Dirty []int
	// NewIDs holds the ID assigned to each OpInsertNode, in op order.
	NewIDs []graph.NodeID
}

// Apply runs a batch of mutations atomically: the whole batch is validated
// first (a rejected batch leaves the fragmentation untouched), then applied
// under the write lock readers exclude with RLock, so no query ever
// observes a half-applied batch. Safe for concurrent use with readers
// holding RLock.
//
// Validation is conservative about node reuse: ops may only reference
// nodes that are live when the batch starts, so an edge op cannot target a
// node inserted earlier in the same batch (its ID is not known to the
// caller anyway — it is reported in NewIDs).
func (fr *Fragmentation) Apply(ops []Op) (ApplyResult, error) {
	res, err := fr.applyLocked(ops)
	// Kick asynchronous reachability-index rebuilds for the dirtied
	// fragments, outside the write lock (builders take the read lock).
	// fr.frags is never reassigned after Build, so indexing it unlocked
	// is safe.
	if err == nil && res.Changed && fr.idxBudget.Load() > 0 {
		for _, fi := range res.Dirty {
			fr.rebuildReachIndexAsync(fr.frags[fi])
		}
	}
	return res, err
}

// DefaultOverlayLimit is the per-fragment overlay-entry threshold past
// which an update batch folds the overlays back into the flat CSR base
// before releasing the write lock. Without it, a long-lived site under
// churn grows its overlays unboundedly between epoch swaps (compaction
// otherwise only runs at rebalance/checkpoint/snapshot points).
const DefaultOverlayLimit = 4096

// SetOverlayLimit overrides the overlay auto-compaction threshold: n > 0
// sets the entry limit, n == 0 restores DefaultOverlayLimit, n < 0
// disables auto-compaction entirely.
func (fr *Fragmentation) SetOverlayLimit(n int) {
	fr.mu.Lock()
	fr.overlayLim = n
	fr.mu.Unlock()
}

// overlayLimitLocked resolves the effective threshold (<= 0: disabled).
func (fr *Fragmentation) overlayLimitLocked() int {
	switch {
	case fr.overlayLim > 0:
		return fr.overlayLim
	case fr.overlayLim < 0:
		return 0
	default:
		return DefaultOverlayLimit
	}
}

func (fr *Fragmentation) applyLocked(ops []Op) (ApplyResult, error) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if err := fr.validateOpsLocked(ops); err != nil {
		return ApplyResult{}, err
	}
	var res ApplyResult
	dirty := make(map[int]bool)
	for _, op := range ops {
		switch op.Kind {
		case OpInsertEdge:
			d, changed := fr.insertEdgeLocked(op.U, op.V)
			res.Changed = res.Changed || changed
			for _, f := range d {
				dirty[f] = true
			}
		case OpDeleteEdge:
			d, changed := fr.deleteEdgeLocked(op.U, op.V)
			res.Changed = res.Changed || changed
			for _, f := range d {
				dirty[f] = true
			}
		case OpInsertNode:
			id, f := fr.insertNodeLocked(op.Label, op.Frag)
			res.NewIDs = append(res.NewIDs, id)
			res.Changed = true
			dirty[f] = true
		case OpDeleteNode:
			d, changed := fr.deleteNodeLocked(op.U)
			res.Changed = res.Changed || changed
			for f := range d {
				dirty[f] = true
			}
		}
	}
	res.Dirty = make([]int, 0, len(dirty))
	for f := range dirty {
		res.Dirty = append(res.Dirty, f)
	}
	sort.Ints(res.Dirty)
	// Bounded overlays: fold a dirtied fragment's overlay back into its
	// flat base when it crosses the threshold, and likewise the global
	// graph's, while we still hold the write lock (the exclusivity
	// compaction needs anyway).
	if limit := fr.overlayLimitLocked(); limit > 0 {
		for _, fi := range res.Dirty {
			if f := fr.frags[fi]; f.OverlayEntries() > limit {
				f.compact()
			}
		}
		if fr.g.OverlayRows() > limit {
			fr.g.Compact()
		}
	}
	return res, nil
}

// validateOpsLocked rejects a batch whose application could fail midway,
// so Apply is all-or-nothing. It simulates node deletions (an op after
// "delete node v" may not reference v) but not insertions (new IDs are
// unknown to the caller until Apply returns).
func (fr *Fragmentation) validateOpsLocked(ops []Op) error {
	n := graph.NodeID(len(fr.owner))
	deletedInBatch := make(map[graph.NodeID]bool)
	live := func(v graph.NodeID) bool {
		return v >= 0 && v < n && fr.owner[v] >= 0 && !deletedInBatch[v]
	}
	for i, op := range ops {
		switch op.Kind {
		case OpInsertEdge, OpDeleteEdge:
			if !live(op.U) || !live(op.V) {
				return fmt.Errorf("fragment: op %d: edge (%d,%d) endpoint not a live node of [0,%d)", i, op.U, op.V, n)
			}
		case OpInsertNode:
			if op.Frag != -1 && (op.Frag < 0 || op.Frag >= len(fr.frags)) {
				return fmt.Errorf("fragment: op %d: node placement %d out of range [0,%d)", i, op.Frag, len(fr.frags))
			}
		case OpDeleteNode:
			if op.U < 0 || op.U >= n {
				return fmt.Errorf("fragment: op %d: node %d out of range [0,%d)", i, op.U, n)
			}
			deletedInBatch[op.U] = true // later ops may not reference it
		default:
			return fmt.Errorf("fragment: op %d: unknown kind %q", i, byte(op.Kind))
		}
	}
	return nil
}

// InsertEdge adds the directed edge (u, v) to the graph and its owning
// fragment(s), maintaining virtual-node and in-node bookkeeping. It
// reports the dirtied fragment IDs (sorted) and whether anything changed
// (false when the edge already existed). Safe for concurrent use with
// readers holding RLock.
func (fr *Fragmentation) InsertEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	res, err := fr.Apply([]Op{{Kind: OpInsertEdge, U: u, V: v}})
	return res.Dirty, res.Changed, err
}

// DeleteEdge removes the directed edge (u, v) from the graph and its
// owning fragment(s), dropping the source fragment's virtual node when its
// last referencing edge disappears and the target's in-node status when no
// cross edge enters it anymore. It reports the dirtied fragment IDs
// (sorted) and whether anything changed (false when the edge did not
// exist). Safe for concurrent use with readers holding RLock.
func (fr *Fragmentation) DeleteEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	res, err := fr.Apply([]Op{{Kind: OpDeleteEdge, U: u, V: v}})
	return res.Dirty, res.Changed, err
}

// InsertNode adds a node carrying label to the graph and places it in a
// fragment: the given one, or — when frag is -1 — the one the attached
// partitioner picks (least-loaded by default). It returns the new node's
// ID and the dirtied fragment. Safe for concurrent use with readers
// holding RLock.
func (fr *Fragmentation) InsertNode(label string, frag int) (graph.NodeID, []int, error) {
	res, err := fr.Apply([]Op{{Kind: OpInsertNode, Label: label, Frag: frag}})
	if err != nil {
		return graph.None, nil, err
	}
	return res.NewIDs[0], res.Dirty, nil
}

// DeleteNode removes node v: every incident edge is deleted first (with
// the usual virtual-node and in-node bookkeeping on both sides), then the
// node itself leaves its fragment and becomes a graph tombstone whose ID a
// later InsertNode may reuse. It reports the dirtied fragment IDs (sorted)
// and whether anything changed (false when v was already deleted). Safe
// for concurrent use with readers holding RLock.
func (fr *Fragmentation) DeleteNode(v graph.NodeID) (dirty []int, changed bool, err error) {
	res, err := fr.Apply([]Op{{Kind: OpDeleteNode, U: v}})
	return res.Dirty, res.Changed, err
}

// insertEdgeLocked adds edge (u, v); endpoints are validated live.
func (fr *Fragmentation) insertEdgeLocked(u, v graph.NodeID) (dirty []int, changed bool) {
	if !fr.g.InsertEdge(u, v) {
		return nil, false
	}
	a, b := int(fr.owner[u]), int(fr.owner[v])
	fa := fr.frags[a]
	lu, _ := fa.ids.local(u)
	if a == b {
		lv, _ := fa.ids.local(v)
		fa.addLocalEdge(lu, lv)
		fa.invalidateViews()
		fa.idxMarkDirty(lu)
		return []int{a}, true
	}
	// Cross edge: the source fragment gains the edge (ending at a virtual
	// node), the target fragment gains an in-node if v was not one yet.
	// Only u's ancestor cone gains reachability, so only it goes stale;
	// ensureVirtual may append a slot past the index's build range, which
	// Equation treats as unreachable until the cone rebuild lands — exact,
	// since the new slot is only reachable through the dirtied cone. The
	// target side gaining an in-node needs no invalidation: a frontier
	// that bypasses a new cut point is still a sound and complete cut.
	lv := fa.ensureVirtual(v, fr.g.Label(v))
	fa.addLocalEdge(lu, lv)
	fa.invalidateViews()
	fa.idxMarkDirty(lu)
	fr.crossEdges++
	dirty = []int{a}
	fb := fr.frags[b]
	if lb, _ := fb.ids.local(v); !fb.isIn[lb] {
		fb.addInNode(lb)
		fr.vf++
		dirty = append(dirty, b)
	}
	sort.Ints(dirty)
	return dirty, true
}

// deleteEdgeLocked removes edge (u, v); endpoints are validated live.
func (fr *Fragmentation) deleteEdgeLocked(u, v graph.NodeID) (dirty []int, changed bool) {
	if !fr.g.DeleteEdge(u, v) {
		return nil, false
	}
	a, b := int(fr.owner[u]), int(fr.owner[v])
	fa := fr.frags[a]
	lu, _ := fa.ids.local(u)
	lv, _ := fa.ids.local(v)
	fa.removeLocalEdge(lu, lv)
	fa.idxMarkDirty(lu)
	if a == b {
		fa.invalidateViews()
		return []int{a}, true
	}
	fr.crossEdges--
	fa.dropVirtualIfOrphan(lv)
	fa.invalidateViews()
	dirty = []int{a}
	// v stays an in-node of its fragment iff some cross edge still enters
	// it; the global graph (whose reverse adjacency is maintained
	// incrementally) answers that directly.
	still := false
	for _, w := range fr.g.In(v) {
		if fr.owner[w] != fr.owner[v] {
			still = true
			break
		}
	}
	if !still {
		fb := fr.frags[b]
		if lb, _ := fb.ids.local(v); fb.isIn[lb] {
			fb.removeInNode(lb)
			// v losing its in-node status removes its Boolean equation
			// from fb's rvset, so any precomputed frontier in fb that
			// lists v as a variable would go incomplete (the solver
			// defaults unknowns to false). Those frontiers belong to
			// exactly v's ancestor cone — invalidate it.
			fb.idxMarkDirty(lb)
			fr.vf--
			dirty = append(dirty, b)
		}
	}
	sort.Ints(dirty)
	return dirty, true
}

// insertNodeLocked adds a node and places it; frag -1 delegates to the
// partitioner (least-loaded when none is attached).
func (fr *Fragmentation) insertNodeLocked(label string, frag int) (graph.NodeID, int) {
	id := fr.g.InsertNode(label)
	if int(id) == len(fr.owner) {
		fr.owner = append(fr.owner, 0)
	}
	if frag < 0 {
		sizes := make([]int, len(fr.frags))
		for i, f := range fr.frags {
			sizes[i] = f.NumLocal()
		}
		if fr.part != nil {
			frag = fr.part.Place(id, sizes)
		} else {
			frag = leastLoaded(sizes)
		}
	}
	fr.owner[id] = int32(frag)
	f := fr.frags[frag]
	f.addRealNode(id, label)
	f.invalidateViews()
	return id, frag
}

// deleteNodeLocked removes node v: incident edges cascade through
// deleteEdgeLocked, then the (now isolated) node leaves its fragment and
// becomes a graph tombstone.
func (fr *Fragmentation) deleteNodeLocked(v graph.NodeID) (map[int]bool, bool) {
	if fr.owner[v] < 0 {
		return nil, false
	}
	dirty := make(map[int]bool)
	for _, w := range append([]graph.NodeID(nil), fr.g.Out(v)...) {
		d, _ := fr.deleteEdgeLocked(v, w)
		for _, f := range d {
			dirty[f] = true
		}
	}
	for _, u := range append([]graph.NodeID(nil), fr.g.In(v)...) {
		d, _ := fr.deleteEdgeLocked(u, v)
		for _, f := range d {
			dirty[f] = true
		}
	}
	fi := int(fr.owner[v])
	f := fr.frags[fi]
	f.removeRealNode(v)
	f.invalidateViews()
	fr.owner[v] = -1
	fr.g.DeleteNode(v) // edges are already gone; this leaves the tombstone
	dirty[fi] = true
	return dirty, true
}

// copyRow returns a private copy of a csr row view, so moving a row
// between slots never aliases the store's immutable base (in-place
// overlay mutations on the destination slot would otherwise corrupt it).
func copyRow(r []int32) []int32 {
	if len(r) == 0 {
		return nil
	}
	return append([]int32(nil), r...)
}

// addRealNode registers v as a new real node of the fragment. Real nodes
// occupy local indices [0, nLocal), so when virtual nodes exist the first
// one is relocated to a fresh tail slot to vacate index nLocal.
func (f *Fragment) addRealNode(v graph.NodeID, label string) {
	// Slot assignments shift (the relocated virtual, the new real slot at
	// the old virtual boundary): slot-addressed index state is void.
	f.retireReachIndex()
	slot := int32(f.nLocal)
	if f.NumVirtual() > 0 {
		moved := f.ids.global(slot)
		f.ids.append(moved) // records both directions for the relocated virtual
		f.labs.append(f.labs.get(slot))
		f.isIn = append(f.isIn, false)
		f.adj.AppendRow(nil) // virtual nodes have no out-edges
		f.remapRefs(slot, int32(f.ids.len()-1))
	} else {
		f.ids.append(v)
		f.labs.append("")
		f.isIn = append(f.isIn, false)
		f.adj.AppendRow(nil)
	}
	f.ids.setGlobal(slot, v)
	f.labs.set(slot, label)
	f.isIn[slot] = false
	f.adj.SetRow(slot, nil)
	f.ids.setLocal(v, slot)
	f.nLocal++
}

// removeRealNode deregisters real node v. Preconditions (established by
// deleteNodeLocked): v has no incident edges, so no adjacency list
// references it and it is not an in-node. The last real node swaps into
// the vacated slot, and the tail virtual node swaps into the freed
// boundary slot so the real/virtual split stays contiguous.
func (f *Fragment) removeRealNode(v graph.NodeID) {
	f.retireReachIndex() // swap-removal renumbers slots
	lv, _ := f.ids.local(v)
	last := int32(f.nLocal - 1)
	if lv != last {
		wasIn := f.isIn[last]
		if wasIn {
			f.removeInNode(last)
		}
		f.remapRefs(last, lv)
		moved := f.ids.global(last)
		f.ids.setGlobal(lv, moved)
		f.labs.set(lv, f.labs.get(last))
		f.adj.SetRow(lv, copyRow(f.adj.Row(last)))
		f.isIn[lv] = false
		f.ids.setLocal(moved, lv)
		if wasIn {
			f.addInNode(lv)
		}
	}
	f.nLocal--
	// Slot nLocal is now free; pull the tail virtual node (if any) into it
	// so virtual nodes keep occupying a contiguous tail.
	tail := int32(f.ids.len() - 1)
	if tail > int32(f.nLocal) {
		f.remapRefs(tail, int32(f.nLocal))
		movedV := f.ids.global(tail)
		f.ids.setGlobal(int32(f.nLocal), movedV)
		f.labs.set(int32(f.nLocal), f.labs.get(tail))
		f.isIn[f.nLocal] = false
		f.adj.SetRow(int32(f.nLocal), nil)
		f.ids.setLocal(movedV, int32(f.nLocal))
	}
	f.ids.truncate(int(tail))
	f.labs.truncate(int(tail))
	f.isIn = f.isIn[:tail]
	f.adj.Truncate(int(tail))
	f.ids.delLocal(v)
}

// remapRefs rewrites every adjacency reference from local index from to
// local index to.
func (f *Fragment) remapRefs(from, to int32) {
	f.adj.ReplaceAll(from, to)
}

// addLocalEdge appends the local edge (lu, lv). The global graph has
// already deduplicated, so the edge is known to be new.
func (f *Fragment) addLocalEdge(lu, lv int32) {
	f.adj.Append(lu, lv)
	f.edges++
}

// removeLocalEdge deletes the local edge (lu, lv).
func (f *Fragment) removeLocalEdge(lu, lv int32) {
	if f.adj.RemoveFirst(lu, lv) {
		f.edges--
	}
}

// ensureVirtual returns the local index of global node v, registering it
// as a new virtual node (with the given label) if absent.
func (f *Fragment) ensureVirtual(v graph.NodeID, label string) int32 {
	if l, ok := f.ids.local(v); ok {
		return l
	}
	l := f.ids.append(v)
	f.labs.append(label)
	f.isIn = append(f.isIn, false)
	f.adj.AppendRow(nil)
	return l
}

// dropVirtualIfOrphan removes virtual node lv when no fragment edge
// targets it anymore, so Fi.O stays exactly "targets of cross edges from
// Fi". The tail virtual node is swapped into the vacated slot (virtual
// nodes occupy the tail of the local index space and never appear in
// inNodes), and every adjacency reference to it is remapped.
func (f *Fragment) dropVirtualIfOrphan(lv int32) {
	if int(lv) < f.nLocal {
		return // real node; only virtual targets are reclaimed
	}
	if f.adj.Contains(lv) {
		return // still referenced
	}
	f.retireReachIndex() // the tail-swap below renumbers slots
	gone := f.ids.global(lv)
	last := int32(f.ids.len() - 1)
	if lv != last {
		moved := f.ids.global(last)
		f.remapRefs(last, lv)
		f.ids.setGlobal(lv, moved)
		f.labs.set(lv, f.labs.get(last))
		f.isIn[lv] = f.isIn[last]
		f.adj.SetRow(lv, copyRow(f.adj.Row(last)))
		f.ids.setLocal(moved, lv)
	}
	f.ids.truncate(int(last))
	f.labs.truncate(int(last))
	f.isIn = f.isIn[:last]
	f.adj.Truncate(int(last))
	f.ids.delLocal(gone)
}

// addInNode registers real local index l as an in-node, keeping inNodes
// sorted.
func (f *Fragment) addInNode(l int32) {
	f.isIn[l] = true
	i := sort.Search(len(f.inNodes), func(i int) bool { return f.inNodes[i] >= l })
	f.inNodes = append(f.inNodes, 0)
	copy(f.inNodes[i+1:], f.inNodes[i:])
	f.inNodes[i] = l
}

// removeInNode deregisters real local index l as an in-node.
func (f *Fragment) removeInNode(l int32) {
	f.isIn[l] = false
	i := sort.Search(len(f.inNodes), func(i int) bool { return f.inNodes[i] >= l })
	if i < len(f.inNodes) && f.inNodes[i] == l {
		f.inNodes = append(f.inNodes[:i], f.inNodes[i+1:]...)
	}
}
