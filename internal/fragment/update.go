package fragment

import (
	"fmt"
	"sort"

	"distreach/internal/graph"
)

// Live edge updates. The paper's conclusion sketches combining partial
// evaluation with incremental evaluation so a changing graph does not force
// recomputation from scratch; the precondition is a fragmentation that can
// change at all. InsertEdge and DeleteEdge mutate the global graph and the
// affected fragments in place and report the set of dirtied fragments —
// exactly the fragments whose partial answers (rvsets) may differ after the
// update:
//
//   - an internal edge dirties only the fragment storing it;
//   - a cross edge dirties its source fragment (adjacency and virtual
//     nodes change) and, when the target's in-node status flips, the
//     target fragment too (its in-node set, hence its equation set,
//     changes).
//
// The dirty set drives invalidation everywhere: core.Session drops the
// cached rvsets of dirtied fragments, and the gateway's answer cache
// evicts exactly the keys whose evaluation touched a dirtied fragment.

// checkEndpoints validates that u and v are nodes of the fragmented graph.
func (fr *Fragmentation) checkEndpoints(u, v graph.NodeID) error {
	n := graph.NodeID(len(fr.owner))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("fragment: edge (%d,%d) endpoint out of range [0,%d)", u, v, n)
	}
	return nil
}

// InsertEdge adds the directed edge (u, v) to the graph and its owning
// fragment(s), maintaining virtual-node and in-node bookkeeping. It
// reports the dirtied fragment IDs (sorted) and whether anything changed
// (false when the edge already existed). Safe for concurrent use with
// readers holding RLock.
func (fr *Fragmentation) InsertEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	if err := fr.checkEndpoints(u, v); err != nil {
		return nil, false, err
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if !fr.g.InsertEdge(u, v) {
		return nil, false, nil
	}
	a, b := int(fr.owner[u]), int(fr.owner[v])
	fa := fr.frags[a]
	lu := fa.localOf[u]
	if a == b {
		fa.addLocalEdge(lu, fa.localOf[v])
		fa.invalidateViews()
		return []int{a}, true, nil
	}
	// Cross edge: the source fragment gains the edge (ending at a virtual
	// node), the target fragment gains an in-node if v was not one yet.
	lv := fa.ensureVirtual(v, fr.g.Label(v))
	fa.addLocalEdge(lu, lv)
	fa.invalidateViews()
	fr.crossEdges++
	dirty = []int{a}
	fb := fr.frags[b]
	if lb := fb.localOf[v]; !fb.isIn[lb] {
		fb.addInNode(lb)
		fr.vf++
		dirty = append(dirty, b)
	}
	sort.Ints(dirty)
	return dirty, true, nil
}

// DeleteEdge removes the directed edge (u, v) from the graph and its
// owning fragment(s), dropping the source fragment's virtual node when its
// last referencing edge disappears and the target's in-node status when no
// cross edge enters it anymore. It reports the dirtied fragment IDs
// (sorted) and whether anything changed (false when the edge did not
// exist). Safe for concurrent use with readers holding RLock.
func (fr *Fragmentation) DeleteEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	if err := fr.checkEndpoints(u, v); err != nil {
		return nil, false, err
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if !fr.g.DeleteEdge(u, v) {
		return nil, false, nil
	}
	a, b := int(fr.owner[u]), int(fr.owner[v])
	fa := fr.frags[a]
	lu, lv := fa.localOf[u], fa.localOf[v]
	fa.removeLocalEdge(lu, lv)
	if a == b {
		fa.invalidateViews()
		return []int{a}, true, nil
	}
	fr.crossEdges--
	fa.dropVirtualIfOrphan(lv)
	fa.invalidateViews()
	dirty = []int{a}
	// v stays an in-node of its fragment iff some cross edge still enters
	// it; the global graph (whose reverse adjacency is maintained
	// incrementally) answers that directly.
	still := false
	for _, w := range fr.g.In(v) {
		if fr.owner[w] != fr.owner[v] {
			still = true
			break
		}
	}
	if !still {
		fb := fr.frags[b]
		if lb := fb.localOf[v]; fb.isIn[lb] {
			fb.removeInNode(lb)
			fr.vf--
			dirty = append(dirty, b)
		}
	}
	sort.Ints(dirty)
	return dirty, true, nil
}

// addLocalEdge appends the local edge (lu, lv). The global graph has
// already deduplicated, so the edge is known to be new.
func (f *Fragment) addLocalEdge(lu, lv int32) {
	f.adj[lu] = append(f.adj[lu], lv)
	f.edges++
}

// removeLocalEdge deletes the local edge (lu, lv).
func (f *Fragment) removeLocalEdge(lu, lv int32) {
	nbrs := f.adj[lu]
	for i, w := range nbrs {
		if w == lv {
			f.adj[lu] = append(nbrs[:i], nbrs[i+1:]...)
			f.edges--
			return
		}
	}
}

// ensureVirtual returns the local index of global node v, registering it
// as a new virtual node (with the given label) if absent.
func (f *Fragment) ensureVirtual(v graph.NodeID, label string) int32 {
	if l, ok := f.localOf[v]; ok {
		return l
	}
	l := int32(len(f.globalOf))
	f.localOf[v] = l
	f.globalOf = append(f.globalOf, v)
	f.labels = append(f.labels, label)
	f.isIn = append(f.isIn, false)
	f.adj = append(f.adj, nil)
	return l
}

// dropVirtualIfOrphan removes virtual node lv when no fragment edge
// targets it anymore, so Fi.O stays exactly "targets of cross edges from
// Fi". The tail virtual node is swapped into the vacated slot (virtual
// nodes occupy the tail of the local index space and never appear in
// inNodes), and every adjacency reference to it is remapped.
func (f *Fragment) dropVirtualIfOrphan(lv int32) {
	if int(lv) < f.nLocal {
		return // real node; only virtual targets are reclaimed
	}
	for _, nbrs := range f.adj {
		for _, w := range nbrs {
			if w == lv {
				return // still referenced
			}
		}
	}
	gone := f.globalOf[lv]
	last := int32(len(f.globalOf) - 1)
	if lv != last {
		moved := f.globalOf[last]
		for x := range f.adj {
			for i, w := range f.adj[x] {
				if w == last {
					f.adj[x][i] = lv
				}
			}
		}
		f.globalOf[lv] = moved
		f.labels[lv] = f.labels[last]
		f.isIn[lv] = f.isIn[last]
		f.adj[lv] = f.adj[last]
		f.localOf[moved] = lv
	}
	f.globalOf = f.globalOf[:last]
	f.labels = f.labels[:last]
	f.isIn = f.isIn[:last]
	f.adj = f.adj[:last]
	delete(f.localOf, gone)
}

// addInNode registers real local index l as an in-node, keeping inNodes
// sorted.
func (f *Fragment) addInNode(l int32) {
	f.isIn[l] = true
	i := sort.Search(len(f.inNodes), func(i int) bool { return f.inNodes[i] >= l })
	f.inNodes = append(f.inNodes, 0)
	copy(f.inNodes[i+1:], f.inNodes[i:])
	f.inNodes[i] = l
}

// removeInNode deregisters real local index l as an in-node.
func (f *Fragment) removeInNode(l int32) {
	f.isIn[l] = false
	i := sort.Search(len(f.inNodes), func(i int) bool { return f.inNodes[i] >= l })
	if i < len(f.inNodes) && f.inNodes[i] == l {
		f.inNodes = append(f.inNodes[:i], f.inNodes[i+1:]...)
	}
}
