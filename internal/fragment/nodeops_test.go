package fragment

import (
	"errors"
	"fmt"
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

// sameStructure compares a live-mutated fragmentation against one rebuilt
// from scratch over the same graph and assignment: every derived quantity
// the paper's guarantees depend on must agree.
func sameStructure(fr, scratch *Fragmentation) error {
	if fr.Vf() != scratch.Vf() {
		return fmt.Errorf("|Vf| drifted: live %d, scratch %d", fr.Vf(), scratch.Vf())
	}
	if fr.CrossEdges() != scratch.CrossEdges() {
		return fmt.Errorf("cross edges drifted: live %d, scratch %d", fr.CrossEdges(), scratch.CrossEdges())
	}
	for i, f := range fr.Fragments() {
		s := scratch.Fragments()[i]
		if f.NumLocal() != s.NumLocal() || f.NumVirtual() != s.NumVirtual() || f.NumEdges() != s.NumEdges() {
			return fmt.Errorf("fragment %d drifted: live |V|=%d |O|=%d |E|=%d, scratch %d/%d/%d",
				i, f.NumLocal(), f.NumVirtual(), f.NumEdges(), s.NumLocal(), s.NumVirtual(), s.NumEdges())
		}
		// In-node sets must match as global IDs (local indices may differ
		// after swap-removals).
		liveIn := make(map[graph.NodeID]bool)
		for _, l := range f.InNodes() {
			liveIn[f.Global(l)] = true
		}
		for _, l := range s.InNodes() {
			if !liveIn[s.Global(l)] {
				return fmt.Errorf("fragment %d: in-node %d missing live", i, s.Global(l))
			}
			delete(liveIn, s.Global(l))
		}
		if len(liveIn) != 0 {
			return fmt.Errorf("fragment %d: live has %d extra in-nodes", i, len(liveIn))
		}
	}
	return nil
}

// snapshotAssign captures the current node-to-fragment assignment so a
// from-scratch Build reproduces the live placement (tombstone entries are
// ignored by Build).
func snapshotAssign(fr *Fragmentation) []int {
	n := fr.Graph().NumNodes()
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		if o := fr.Owner(graph.NodeID(v)); o >= 0 {
			assign[v] = o
		}
	}
	return assign
}

// TestNodeMutationCrossCheck is the randomized acceptance check for
// node-level mutations: 50 random fragmented graphs, each hit with a
// random mix of edge inserts/deletes, node inserts and node deletes
// (single ops and transactional batches). After every batch the live
// fragmentation must validate and agree structurally with a from-scratch
// rebuild over the same (mutated) graph and assignment.
func TestNodeMutationCrossCheck(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := gen.NewRNG(417)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(60)
		e := n + rng.Intn(3*n)
		seed := uint64(9000 + trial)
		g := gen.Uniform(gen.Config{Nodes: n, Edges: e, Labels: labels, Seed: seed})
		k := 1 + rng.Intn(4)
		fr, err := Random(g, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			nn := graph.NodeID(g.NumNodes())
			pick := func() graph.NodeID { return graph.NodeID(rng.Intn(int(nn))) }
			batch := make([]Op, 1+rng.Intn(3))
			for i := range batch {
				switch rng.Intn(6) {
				case 0, 1:
					batch[i] = Op{Kind: OpInsertEdge, U: pick(), V: pick()}
				case 2, 3:
					batch[i] = Op{Kind: OpDeleteEdge, U: pick(), V: pick()}
				case 4:
					batch[i] = Op{Kind: OpInsertNode, Label: labels[rng.Intn(3)], Frag: -1}
				case 5:
					batch[i] = Op{Kind: OpDeleteNode, U: pick()}
				}
			}
			res, err := fr.Apply(batch)
			if err != nil {
				// The random batch referenced a tombstone or repeated a
				// delete: atomicity means nothing changed; verify and retry
				// with the next step.
				if verr := fr.Validate(); verr != nil {
					t.Fatalf("trial %d step %d: rejected batch left damage: %v (batch err: %v)", trial, step, verr, err)
				}
				continue
			}
			_ = res
			if err := fr.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			scratch, err := Build(g, snapshotAssign(fr), k)
			if err != nil {
				t.Fatalf("trial %d step %d: scratch rebuild: %v", trial, step, err)
			}
			if err := sameStructure(fr, scratch); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

// TestApplyAtomicity: a batch with an invalid op must change nothing, even
// when its earlier ops were valid.
func TestApplyAtomicity(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 20, Edges: 60, Labels: []string{"A"}, Seed: 5})
	fr, err := Random(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := fr.BalanceStats()
	edges := g.NumEdges()
	_, err = fr.Apply([]Op{
		{Kind: OpInsertEdge, U: 0, V: 7},                // valid
		{Kind: OpInsertEdge, U: 1, V: graph.NodeID(99)}, // out of range
	})
	if err == nil {
		t.Fatal("batch with an out-of-range endpoint must be rejected")
	}
	if g.NumEdges() != edges {
		t.Fatalf("rejected batch mutated the graph: %d edges, want %d", g.NumEdges(), edges)
	}
	if after := fr.BalanceStats(); after != before {
		t.Fatalf("rejected batch mutated the fragmentation: %v -> %v", before, after)
	}
	// A batch referencing a node deleted earlier in the same batch is
	// rejected up front.
	if _, err := fr.Apply([]Op{
		{Kind: OpDeleteNode, U: 3},
		{Kind: OpInsertEdge, U: 3, V: 4},
	}); err == nil {
		t.Fatal("batch referencing a node it deletes must be rejected")
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchUnionsDirty: one batch touching several fragments reports
// one deduplicated, sorted dirty set.
func TestApplyBatchUnionsDirty(t *testing.T) {
	// A path graph partitioned contiguously: cross edges are easy to aim.
	b := graph.NewBuilder(9)
	for i := 0; i < 9; i++ {
		b.AddNode("A")
	}
	g := b.MustBuild()
	fr, err := Contiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fr.Apply([]Op{
		{Kind: OpInsertEdge, U: 0, V: 1}, // internal to fragment 0
		{Kind: OpInsertEdge, U: 1, V: 3}, // cross 0 -> 1
		{Kind: OpInsertEdge, U: 4, V: 6}, // cross 1 -> 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed {
		t.Fatal("batch reported no change")
	}
	want := []int{0, 1, 2}
	if len(res.Dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", res.Dirty, want)
	}
	for i := range want {
		if res.Dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", res.Dirty, want)
		}
	}
}

// TestInsertNodePlacement: auto placement is balance-aware (least loaded)
// and deterministic; explicit placement is honored.
func TestInsertNodePlacement(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 9, Edges: 0, Labels: []string{"A"}, Seed: 1})
	// Skewed assignment: fragment 0 holds 7 nodes, fragment 1 holds 2.
	assign := []int{0, 0, 0, 0, 0, 0, 0, 1, 1}
	fr, err := Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	id, dirty, err := fr.InsertNode("B", -1)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Owner(id) != 1 {
		t.Fatalf("auto placement chose fragment %d, want least-loaded 1", fr.Owner(id))
	}
	if len(dirty) != 1 || dirty[0] != 1 {
		t.Fatalf("dirty = %v, want [1]", dirty)
	}
	id2, _, err := fr.InsertNode("C", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Owner(id2) != 0 {
		t.Fatalf("explicit placement landed on %d, want 0", fr.Owner(id2))
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaLSNOrder: broadcast delivery of one batch to sites sharing a
// replica applies once (node insertion is the op that makes this matter),
// the total order is enforced — a gap marks the replica behind, a foreign
// writer colliding on an applied LSN fails loudly — and log replay
// (nonce 0) deduplicates against live application.
func TestReplicaLSNOrder(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 10, Edges: 20, Labels: []string{"A"}, Seed: 2})
	fr, err := Random(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(fr)
	ops := []Op{{Kind: OpInsertNode, Label: "B", Frag: -1}}
	r1, adv, err := rep.ApplyLSN(1, 7, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !adv {
		t.Fatal("first delivery did not advance the replica")
	}
	r2, adv, err := rep.ApplyLSN(1, 7, ops) // duplicate delivery, same writer
	if err != nil {
		t.Fatal(err)
	}
	if adv {
		t.Fatal("duplicate delivery advanced the replica")
	}
	if len(r1.NewIDs) != 1 || len(r2.NewIDs) != 1 || r1.NewIDs[0] != r2.NewIDs[0] {
		t.Fatalf("duplicate delivery diverged: %v vs %v", r1.NewIDs, r2.NewIDs)
	}
	cur, _ := rep.Current()
	if cur.Graph().NumLive() != 11 {
		t.Fatalf("node inserted %d times, want once", cur.Graph().NumLive()-10)
	}
	// Log replay (nonce 0) of an applied LSN replays the recorded result.
	if r3, _, err := rep.ApplyLSN(1, 0, ops); err != nil || r3.NewIDs[0] != r1.NewIDs[0] {
		t.Fatalf("replay of applied LSN: res %v err %v", r3.NewIDs, err)
	}
	// A different writer colliding on the applied LSN fails loudly.
	if _, _, err := rep.ApplyLSN(1, 99, ops); err == nil {
		t.Fatal("foreign-writer collision on an applied LSN must error")
	}
	// The next LSN applies; a gap marks the replica behind.
	if _, _, err := rep.ApplyLSN(2, 8, ops); err != nil {
		t.Fatal(err)
	}
	if cur.Graph().NumLive() != 12 {
		t.Fatalf("next LSN did not apply: %d live nodes", cur.Graph().NumLive())
	}
	if _, _, err := rep.ApplyLSN(5, 9, ops); !errors.Is(err, ErrReplicaBehind) {
		t.Fatalf("gap returned %v, want ErrReplicaBehind", err)
	}
	if rep.LSN() != 2 {
		t.Fatalf("replica LSN = %d, want 2", rep.LSN())
	}
	// A deterministically rejected batch still advances the order (the slot
	// becomes a recorded no-op) and replays its rejection.
	bad := []Op{{Kind: OpInsertEdge, U: 0, V: 9999}}
	if _, adv, err := rep.ApplyLSN(3, 10, bad); err == nil || !adv {
		t.Fatalf("rejected batch: adv=%v err=%v, want advance with error", adv, err)
	}
	if _, adv, err := rep.ApplyLSN(3, 10, bad); err == nil || adv {
		t.Fatalf("replayed rejection: adv=%v err=%v, want recorded error without advance", adv, err)
	}
	if rep.LSN() != 3 {
		t.Fatalf("replica LSN = %d, want 3 after rejected slot", rep.LSN())
	}
}

// TestReplicaRebalance: the epoch gate makes rebalance idempotent, the
// graph is shared across epochs, and the rebuilt fragmentation reflects
// accumulated churn.
func TestReplicaRebalance(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 40, Edges: 160, Labels: []string{"A", "B"}, Seed: 3})
	fr, err := Random(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(fr)
	if _, _, err := rep.ApplyLSN(0, 0, []Op{{Kind: OpInsertEdge, U: 0, V: 39}}); err != nil {
		t.Fatal(err)
	}
	applied, err := rep.Rebalance(1, EdgeCutPartitioner{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("first rebalance did not apply")
	}
	applied, err = rep.Rebalance(1, EdgeCutPartitioner{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("duplicate rebalance applied twice")
	}
	cur, epoch := rep.Current()
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	if cur == fr {
		t.Fatal("rebalance did not swap the fragmentation")
	}
	if cur.Graph() != fr.Graph() {
		t.Fatal("rebalance must keep the same graph object")
	}
	if !cur.Graph().HasEdge(0, 39) {
		t.Fatal("pre-rebalance churn lost")
	}
	if err := cur.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeCutPartitioner: on a community graph the balance-aware edge-cut
// strategy must beat random partitioning on both |Vf| and cross edges
// while staying balanced.
func TestEdgeCutPartitioner(t *testing.T) {
	g := gen.Communities(gen.CommunitiesConfig{Communities: 4, Size: 100, InDegree: 4, Seed: 9})
	rand, err := Random(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := EdgeCut(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	if cut.CrossEdges() >= rand.CrossEdges() {
		t.Fatalf("edgecut cross edges %d not below random %d", cut.CrossEdges(), rand.CrossEdges())
	}
	if cut.Vf() >= rand.Vf() {
		t.Fatalf("edgecut |Vf| %d not below random %d", cut.Vf(), rand.Vf())
	}
	bs := cut.BalanceStats()
	if bs.Skew() > 1.6 {
		t.Fatalf("edgecut skew %.2f exceeds the capacity bound", bs.Skew())
	}
	// Determinism: same seed, same assignment (replicas rely on this).
	again, err := EdgeCut(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if cut.Owner(graph.NodeID(v)) != again.Owner(graph.NodeID(v)) {
			t.Fatalf("edgecut is not deterministic at node %d", v)
		}
	}
}
