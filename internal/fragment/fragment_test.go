package fragment

import (
	"testing"
	"testing/quick"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

func testGraph(seed uint64, n, m int) *graph.Graph {
	return gen.Uniform(gen.Config{Nodes: n, Edges: m, Labels: gen.LabelAlphabet(4), Seed: seed})
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := testGraph(1, 5, 10)
	if _, err := Build(g, []int{0, 0, 0}, 1); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Build(g, []int{0, 0, 0, 0, 9}, 2); err == nil {
		t.Fatal("out-of-range fragment accepted")
	}
	if _, err := Build(g, make([]int, 5), 0); err == nil {
		t.Fatal("zero fragments accepted")
	}
}

func TestSingleFragmentDegenerate(t *testing.T) {
	g := testGraph(2, 20, 60)
	fr, err := Build(g, make([]int, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.CrossEdges() != 0 || fr.Vf() != 0 {
		t.Fatalf("single fragment has cross structure: %v", fr)
	}
	f := fr.Fragments()[0]
	if f.NumVirtual() != 0 || len(f.InNodes()) != 0 {
		t.Fatal("single fragment must have no virtual or in-nodes")
	}
	if f.NumEdges() != g.NumEdges() {
		t.Fatal("edges lost")
	}
}

func TestMoreFragmentsThanNodes(t *testing.T) {
	g := testGraph(3, 3, 4)
	fr, err := Random(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.Card() != 10 {
		t.Fatalf("card = %d", fr.Card())
	}
}

func TestPartitionersProduceValidFragmentations(t *testing.T) {
	g := testGraph(4, 100, 400)
	cases := map[string]func() (*Fragmentation, error){
		"random":     func() (*Fragmentation, error) { return Random(g, 7, 11) },
		"hash":       func() (*Fragmentation, error) { return Hash(g, 7) },
		"contiguous": func() (*Fragmentation, error) { return Contiguous(g, 7) },
		"greedy":     func() (*Fragmentation, error) { return Greedy(g, 7, 11) },
	}
	for name, build := range cases {
		fr, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := fr.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		if fr.Card() != 7 {
			t.Fatalf("%s: card %d", name, fr.Card())
		}
	}
}

func TestRandomPartitionIsBalanced(t *testing.T) {
	g := testGraph(5, 103, 200)
	fr, err := Random(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fr.Fragments() {
		if f.NumLocal() < 25 || f.NumLocal() > 26 {
			t.Fatalf("unbalanced fragment: %d nodes", f.NumLocal())
		}
	}
}

func TestGreedyCutsFewerEdgesThanRandom(t *testing.T) {
	// Locality-aware partitioning should cut fewer edges on a graph with
	// strong community structure (a union of disjoint cliques).
	b := graph.NewBuilder(80)
	for i := 0; i < 80; i++ {
		b.AddNode("")
	}
	for c := 0; c < 4; c++ {
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				if i != j {
					b.AddEdge(graph.NodeID(c*20+i), graph.NodeID(c*20+j))
				}
			}
		}
	}
	g := b.MustBuild()
	rnd, err := Random(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := Greedy(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if grd.CrossEdges() >= rnd.CrossEdges() {
		t.Fatalf("greedy cut %d edges, random cut %d; expected fewer",
			grd.CrossEdges(), rnd.CrossEdges())
	}
}

func TestInNodeVirtualNodeDuality(t *testing.T) {
	// Property: every virtual node of a fragment is an in-node of its owner.
	check := func(seed uint64) bool {
		g := testGraph(seed, 40, 160)
		fr, err := Random(g, 5, seed)
		if err != nil {
			return false
		}
		for _, f := range fr.Fragments() {
			for _, o := range f.VirtualNodes() {
				gid := f.Global(o)
				owner := fr.Fragments()[fr.Owner(gid)]
				found := false
				for _, in := range owner.InNodes() {
					if owner.Global(in) == gid {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVfCountsBoundaryNodes(t *testing.T) {
	// Two fragments, one cross edge: Vf must be exactly... the source is a
	// virtual-node original? No: Vf counts in-nodes and originals of
	// virtual nodes; a single cross edge (u, v) contributes only v (it is
	// both an in-node of F2 and the original of F1's virtual node).
	b := graph.NewBuilder(2)
	b.AddNode("a")
	b.AddNode("b")
	b.AddEdge(0, 1)
	g := b.MustBuild()
	fr, err := Build(g, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Vf() != 1 {
		t.Fatalf("Vf = %d, want 1", fr.Vf())
	}
	if fr.CrossEdges() != 1 {
		t.Fatalf("crossEdges = %d, want 1", fr.CrossEdges())
	}
}

func TestLocalGlobalRoundTrip(t *testing.T) {
	g := testGraph(6, 50, 150)
	fr, err := Random(g, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fr.Fragments() {
		for l := int32(0); int(l) < f.NumTotal(); l++ {
			gid := f.Global(l)
			l2, ok := f.Local(gid)
			if !ok || l2 != l {
				t.Fatalf("round trip failed: local %d -> global %d -> local %d", l, gid, l2)
			}
			if f.Label(l) != g.Label(gid) {
				t.Fatalf("label mismatch at local %d", l)
			}
		}
	}
}

func TestAsGraphMatchesFragment(t *testing.T) {
	g := testGraph(7, 30, 120)
	fr, err := Random(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fr.Fragments() {
		lg := f.AsGraph()
		if lg.NumNodes() != f.NumTotal() || lg.NumEdges() != f.NumEdges() {
			t.Fatalf("AsGraph size mismatch: %v vs fragment %d/%d", lg, f.NumTotal(), f.NumEdges())
		}
		// Cached: second call returns the same object.
		if f.AsGraph() != lg {
			t.Fatal("AsGraph not cached")
		}
		for l := int32(0); int(l) < f.NumTotal(); l++ {
			if lg.Label(graph.NodeID(l)) != f.Label(l) {
				t.Fatal("AsGraph label mismatch")
			}
		}
	}
}

func TestFragmentSizesSumToGraph(t *testing.T) {
	g := testGraph(8, 60, 240)
	fr, err := Random(g, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	nodes := 0
	for _, f := range fr.Fragments() {
		edges += f.NumEdges()
		nodes += f.NumLocal()
	}
	if edges != g.NumEdges() || nodes != g.NumNodes() {
		t.Fatalf("fragments carry %d/%d, graph has %d/%d", nodes, edges, g.NumNodes(), g.NumEdges())
	}
}
