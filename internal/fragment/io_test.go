package fragment

import (
	"bytes"
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

func TestFragmentationRoundTrip(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 50, Edges: 200, Seed: 20})
	fr, err := Random(g, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, fr); err != nil {
		t.Fatal(err)
	}
	fr2, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Card() != fr.Card() || fr2.Vf() != fr.Vf() || fr2.CrossEdges() != fr.CrossEdges() {
		t.Fatalf("round trip changed structure: %v vs %v", fr2, fr)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if fr2.Owner(graph.NodeID(v)) != fr.Owner(graph.NodeID(v)) {
			t.Fatalf("owner of %d changed", v)
		}
	}
	if err := fr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationReadErrors(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 3, Edges: 3, Seed: 21})
	for _, in := range []string{
		"",
		"fragmentation x y",
		"fragmentation 2 5\n0\n1\n0\n1\n0", // node count mismatch with g
		"fragmentation 2 3\n0\n1",          // truncated
		"fragmentation 2 3\n0\n1\n9",       // out of range
	} {
		if _, err := Read(bytes.NewBufferString(in), g); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
