package fragment

import (
	"testing"

	"distreach/internal/gen"
	"distreach/internal/graph"
)

// TestOverlayAutoCompaction is the bounded-memory churn check: with an
// overlay threshold set, a long stream of single-op update batches must
// never let a fragment's (or the global graph's) overlay grow past the
// threshold plus one batch's worth of growth — the leak this fixes was
// overlays growing without bound until the next rebalance or snapshot.
func TestOverlayAutoCompaction(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 80, Edges: 240, Labels: []string{"A"}, Seed: 31})
	fr, err := Random(g, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 64
	fr.SetOverlayLimit(limit)
	rng := gen.NewRNG(32)
	// Slack: one batch can push past the threshold before the fold-back
	// runs, and ops cascade (node deletes touch many rows) — but growth
	// per batch is small, so 2x the limit is a comfortable ceiling that
	// an unbounded overlay blows through within a few hundred steps.
	const slack = 2 * limit
	for step := 0; step < 3000; step++ {
		n := g.NumNodes()
		var ops []Op
		switch rng.Intn(5) {
		case 0, 1:
			ops = []Op{{Kind: OpInsertEdge, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))}}
		case 2, 3:
			ops = []Op{{Kind: OpDeleteEdge, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))}}
		case 4:
			ops = []Op{{Kind: OpInsertNode, Label: "A", Frag: -1}, {Kind: OpDeleteNode, U: graph.NodeID(rng.Intn(n))}}
		}
		if _, err := fr.Apply(ops); err != nil {
			continue // tombstone reference: rejected atomically
		}
		for _, f := range fr.Fragments() {
			if o := f.OverlayEntries(); o > slack {
				t.Fatalf("step %d: fragment %d overlay grew to %d entries (limit %d)", step, f.ID, o, limit)
			}
		}
		if o := fr.Graph().OverlayRows(); o > slack {
			t.Fatalf("step %d: global graph overlay grew to %d rows (limit %d)", step, o, limit)
		}
	}
	if err := fr.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	// Negative limit disables the fold-back again.
	fr.SetOverlayLimit(-1)
	grew := false
	for step := 0; step < 500 && !grew; step++ {
		n := g.NumNodes()
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if _, err := fr.Apply([]Op{{Kind: OpInsertEdge, U: u, V: v}}); err != nil {
			continue
		}
		for _, f := range fr.Fragments() {
			if f.OverlayEntries() > limit {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("disabling the overlay limit should let overlays grow past it")
	}
}

// TestReachIndexLifecycle: enabling builds an index per fragment;
// mutations retire or stale it and the scheduled rebuild restores it;
// budget 0 disables and drops the indexes.
func TestReachIndexLifecycle(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 200, Labels: []string{"A"}, Seed: 41})
	fr, err := Random(g, 4, 41)
	if err != nil {
		t.Fatal(err)
	}
	fr.EnableReachIndex(1 << 20)
	fr.WaitReachIndexes()
	for _, f := range fr.Fragments() {
		if f.ReachIndex() == nil {
			t.Fatalf("fragment %d: no index after enable+wait", f.ID)
		}
	}
	st := fr.ReachIndexStats()
	if !st.Enabled || st.Fragments != fr.Card() || st.LabelBytes == 0 {
		t.Fatalf("bad stats after enable: %+v", st)
	}
	// Churn: every kind of mutation, then wait — fresh indexes must be
	// installed (not stale) for every dirtied fragment.
	rng := gen.NewRNG(42)
	for step := 0; step < 50; step++ {
		n := g.NumNodes()
		ops := []Op{
			{Kind: OpInsertEdge, U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))},
			{Kind: OpInsertNode, Label: "A", Frag: -1},
		}
		if _, err := fr.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	fr.WaitReachIndexes()
	for _, f := range fr.Fragments() {
		idx := f.ReachIndex()
		if idx == nil {
			t.Fatalf("fragment %d: index missing after churn+wait", f.ID)
		}
		if idx.AnyStale() {
			t.Fatalf("fragment %d: stale index survived the last rebuild", f.ID)
		}
	}
	if st := fr.ReachIndexStats(); st.Rebuilds == 0 {
		t.Fatalf("no rebuilds recorded: %+v", st)
	}
	fr.EnableReachIndex(0)
	for _, f := range fr.Fragments() {
		if f.ReachIndex() != nil {
			t.Fatalf("fragment %d: index survived disable", f.ID)
		}
	}
}

// TestReachIndexCarryover: the index configuration must survive the two
// whole-state swaps — live rebalance and snapshot install — with the new
// fragmentation rebuilt asynchronously.
func TestReachIndexCarryover(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 50, Edges: 150, Labels: []string{"A"}, Seed: 51})
	fr, err := Random(g, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	fr.EnableReachIndex(1 << 20)
	rep := NewReplica(fr)
	if ok, err := rep.Rebalance(1, EdgeCutPartitioner{Seed: 7}); !ok || err != nil {
		t.Fatalf("rebalance: ok=%v err=%v", ok, err)
	}
	cur, _ := rep.Current()
	if cur == fr {
		t.Fatal("rebalance did not swap the fragmentation")
	}
	if cur.ReachIndexBudget() != 1<<20 {
		t.Fatalf("budget not carried across rebalance: %d", cur.ReachIndexBudget())
	}
	cur.WaitReachIndexes()
	for _, f := range cur.Fragments() {
		if f.ReachIndex() == nil {
			t.Fatalf("fragment %d: no index after rebalance", f.ID)
		}
	}
	// Snapshot install: a freshly built fragmentation (no index state).
	g2 := gen.Uniform(gen.Config{Nodes: 50, Edges: 150, Labels: []string{"A"}, Seed: 52})
	fr2, err := Random(g2, 3, 52)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Install(fr2, 2, 10) {
		t.Fatal("install refused")
	}
	if fr2.ReachIndexBudget() != 1<<20 {
		t.Fatalf("budget not inherited on install: %d", fr2.ReachIndexBudget())
	}
	fr2.WaitReachIndexes()
	for _, f := range fr2.Fragments() {
		if f.ReachIndex() == nil {
			t.Fatalf("fragment %d: no index after install", f.ID)
		}
	}
}
