package core

import (
	"sync/atomic"
	"testing"

	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/reach"
)

// evalAll runs the full in-process evaluation (every fragment's partial
// plus the solve) under the given options.
func evalAll(fr *fragment.Fragmentation, s, t graph.NodeID, opt *Options) bool {
	if s == t {
		return true
	}
	partials := make([]*ReachPartial, 0, fr.Card())
	for _, f := range fr.Fragments() {
		partials = append(partials, LocalEvalReach(f, s, t, opt))
	}
	return SolveReach(partials, s)
}

// TestLocalEvalReachThreadsOptions is the regression test for the dropped
// options bug: LocalEvalReach used to hardcode &Options{}, so a caller's
// LocalIndex (and any other option) was silently ignored on the MapReduce
// and session paths. The counting wrapper proves the option now reaches
// localEval, and the answers stay correct either way.
func TestLocalEvalReachThreadsOptions(t *testing.T) {
	var consulted atomic.Int64
	cache := IndexCache(reach.KindTC)
	opt := &Options{LocalIndex: func(f *fragment.Fragment) reach.Index {
		consulted.Add(1)
		return cache(f)
	}}
	rng := gen.NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		got := evalAll(fr, s, tt, opt)
		if want := g.Reachable(s, tt); got != want {
			t.Fatalf("trial %d: indexed eval %v, want %v", trial, got, want)
		}
		// nil must mean defaults, not a crash.
		if got := evalAll(fr, s, tt, nil); got != g.Reachable(s, tt) {
			t.Fatalf("trial %d: nil-options eval diverged", trial)
		}
	}
	if consulted.Load() == 0 {
		t.Fatal("caller-supplied LocalIndex was never consulted — options are being dropped again")
	}
}

// TestFragmentIndexMatchesDirect pins the tentpole's core claim: with the
// per-fragment reachability index enabled, local evaluation through
// Equation lookups answers exactly like the direct frontier-cut BFS
// (forced via NoFragmentIndex) and like centralized BFS on the graph.
func TestFragmentIndexMatchesDirect(t *testing.T) {
	rng := gen.NewRNG(78)
	for trial := 0; trial < 100; trial++ {
		g, fr, _, _ := randomCase(rng, nil)
		budget := int64(1 << 20)
		if trial%3 == 0 {
			budget = 256 // starve the budget: mostly fallbacks, still correct
		}
		fr.EnableReachIndex(budget)
		fr.WaitReachIndexes()
		n := g.NumNodes()
		for q := 0; q < 20; q++ {
			s := graph.NodeID(rng.Intn(n))
			tt := graph.NodeID(rng.Intn(n))
			indexed := evalAll(fr, s, tt, nil)
			direct := evalAll(fr, s, tt, &Options{NoFragmentIndex: true})
			want := g.Reachable(s, tt)
			if indexed != want || direct != want {
				t.Fatalf("trial %d q(%d,%d): indexed=%v direct=%v want=%v (budget %d)",
					trial, s, tt, indexed, direct, want, budget)
			}
		}
	}
}

// TestFragmentIndexUsedAndCounted checks the hit accounting: on a static
// deployment with an ample budget, indexed evaluation must actually take
// the index path.
func TestFragmentIndexUsedAndCounted(t *testing.T) {
	g := gen.Uniform(gen.Config{Nodes: 60, Edges: 180, Seed: 9})
	fr, err := fragment.Random(g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	fr.EnableReachIndex(1 << 20)
	fr.WaitReachIndexes()
	rng := gen.NewRNG(10)
	for q := 0; q < 50; q++ {
		s := graph.NodeID(rng.Intn(60))
		tt := graph.NodeID(rng.Intn(60))
		if got, want := evalAll(fr, s, tt, nil), g.Reachable(s, tt); got != want {
			t.Fatalf("q(%d,%d)=%v want %v", s, tt, got, want)
		}
	}
	st := fr.ReachIndexStats()
	if st.Hits == 0 {
		t.Fatalf("no index hits recorded on a static deployment: %+v", st)
	}
	if st.Fragments == 0 || st.LabelBytes == 0 {
		t.Fatalf("index stats empty: %+v", st)
	}
}
