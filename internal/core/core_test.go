package core

import (
	"testing"

	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/gen"
	"distreach/internal/graph"
	"distreach/internal/reach"
	"distreach/internal/rx"
)

// figure1Graph builds the recommendation network of Fig. 1: nodes carry job
// labels, fragments F1..F3 match the paper's placement.
func figure1Graph(t *testing.T) (*graph.Graph, *fragment.Fragmentation, map[string]graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(10)
	names := []struct {
		name, label string
		frag        int
	}{
		{"Ann", "CTO", 0}, {"Bill", "DB", 0}, {"Walt", "HR", 0}, {"Fred", "HR", 0},
		{"Mat", "HR", 1}, {"Emmy", "HR", 1}, {"Jack", "MK", 1},
		{"Pat", "SE", 2}, {"Ross", "HR", 2}, {"Tom", "AI", 2}, {"Mark", "FA", 2},
	}
	ids := map[string]graph.NodeID{}
	assign := make([]int, 0, len(names))
	for _, n := range names {
		ids[n.name] = b.AddNode(n.label)
		assign = append(assign, n.frag)
	}
	edges := [][2]string{
		{"Ann", "Bill"}, {"Ann", "Walt"},
		{"Walt", "Mat"}, {"Bill", "Pat"}, {"Fred", "Emmy"},
		{"Mat", "Fred"}, {"Emmy", "Ross"}, {"Jack", "Emmy"}, {"Mat", "Jack"},
		{"Ross", "Mark"}, {"Pat", "Jack"}, {"Ross", "Tom"},
	}
	for _, e := range edges {
		b.AddEdge(ids[e[0]], ids[e[1]])
	}
	g := b.MustBuild()
	fr, err := fragment.Build(g, assign, 3)
	if err != nil {
		t.Fatalf("fragment.Build: %v", err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatalf("fragmentation invalid: %v", err)
	}
	return g, fr, ids
}

func TestDisReachFigure1(t *testing.T) {
	_, fr, ids := figure1Graph(t)
	cl := cluster.New(3, cluster.NetModel{})
	res := DisReach(cl, fr, ids["Ann"], ids["Mark"], nil)
	if !res.Answer {
		t.Fatal("Ann should reach Mark (Example 3)")
	}
	// Every site is visited exactly once.
	for i, v := range res.Report.Visits {
		if v != 1 {
			t.Errorf("site %d visited %d times, want 1", i, v)
		}
	}
	if res := DisReach(cl, fr, ids["Mark"], ids["Ann"], nil); res.Answer {
		t.Fatal("Mark must not reach Ann")
	}
	if res := DisReach(cl, fr, ids["Tom"], ids["Jack"], nil); res.Answer {
		t.Fatal("Tom is a sink; must not reach Jack")
	}
}

func TestDisDistFigure1(t *testing.T) {
	g, fr, ids := figure1Graph(t)
	cl := cluster.New(3, cluster.NetModel{})
	// Example 5: qbr(Ann, Mark, 6) is true with distance exactly 6.
	res := DisDist(cl, fr, ids["Ann"], ids["Mark"], 6, nil)
	if !res.Answer || res.Distance != 6 {
		t.Fatalf("qbr(Ann,Mark,6): got answer=%v dist=%d, want true/6", res.Answer, res.Distance)
	}
	if got := g.Dist(ids["Ann"], ids["Mark"]); got != 6 {
		t.Fatalf("oracle dist = %d, want 6", got)
	}
	if res := DisDist(cl, fr, ids["Ann"], ids["Mark"], 5, nil); res.Answer {
		t.Fatal("qbr(Ann,Mark,5) must be false")
	}
	for i, v := range res.Report.Visits {
		if v != 1 {
			t.Errorf("site %d visited %d times, want 1", i, v)
		}
	}
}

func TestDisRPQFigure1(t *testing.T) {
	_, fr, ids := figure1Graph(t)
	cl := cluster.New(3, cluster.NetModel{})
	// Example 1: R = (DB* ∪ HR*): a chain of DB people or of HR people.
	a := automaton.FromRegex(rx.MustParse("DB*|HR*"))
	res := DisRPQ(cl, fr, ids["Ann"], ids["Mark"], a, nil)
	if !res.Answer {
		t.Fatal("qrr(Ann, Mark, DB*|HR*) should hold via the HR chain")
	}
	for i, v := range res.Report.Visits {
		if v != 1 {
			t.Errorf("site %d visited %d times, want 1", i, v)
		}
	}
	// A DB-only chain does not exist.
	if res := DisRPQ(cl, fr, ids["Ann"], ids["Mark"], automaton.FromRegex(rx.MustParse("DB*")), nil); res.Answer {
		t.Fatal("qrr(Ann, Mark, DB*) must be false")
	}
	// Example 6's second query: qrr(Walt, Mark, (CTO DB*) ∪ HR*) — from
	// Walt the HR* branch applies (Walt -> Mat -> Fred -> Emmy -> Ross ->
	// Mark has interior labels HR HR HR HR).
	if res := DisRPQ(cl, fr, ids["Walt"], ids["Mark"], automaton.FromRegex(rx.MustParse("(CTO DB*)|HR*")), nil); !res.Answer {
		t.Fatal("qrr(Walt, Mark, (CTO DB*)|HR*) should hold")
	}
}

// randomCase produces a random graph, partition, and endpoints.
func randomCase(rng *gen.RNG, labels []string) (*graph.Graph, *fragment.Fragmentation, graph.NodeID, graph.NodeID) {
	n := 2 + rng.Intn(40)
	m := rng.Intn(4 * n)
	g := gen.Uniform(gen.Config{Nodes: n, Edges: m, Labels: labels, Seed: rng.Uint64()})
	k := 1 + rng.Intn(5)
	fr, err := fragment.Random(g, k, rng.Uint64())
	if err != nil {
		panic(err)
	}
	s := graph.NodeID(rng.Intn(n))
	t := graph.NodeID(rng.Intn(n))
	return g, fr, s, t
}

func TestDisReachMatchesCentralizedBFS(t *testing.T) {
	rng := gen.NewRNG(42)
	for trial := 0; trial < 400; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		got := DisReach(cl, fr, s, tt, nil).Answer
		want := g.Reachable(s, tt)
		if got != want {
			t.Fatalf("trial %d: disReach(%d,%d)=%v, BFS=%v on %v, %v",
				trial, s, tt, got, want, g, fr)
		}
	}
}

func TestDisReachWithIndexesMatchesBFS(t *testing.T) {
	for _, kind := range []reach.Kind{reach.KindTC, reach.KindInterval, reach.KindLandmark} {
		opt := &Options{LocalIndex: IndexCache(kind)}
		rng := gen.NewRNG(uint64(100 + int(kind)))
		for trial := 0; trial < 120; trial++ {
			g, fr, s, tt := randomCase(rng, nil)
			cl := cluster.New(fr.Card(), cluster.NetModel{})
			got := DisReach(cl, fr, s, tt, opt).Answer
			if want := g.Reachable(s, tt); got != want {
				t.Fatalf("kind %d trial %d: got %v want %v", kind, trial, got, want)
			}
		}
	}
}

func TestDisDistMatchesCentralizedDistance(t *testing.T) {
	rng := gen.NewRNG(7)
	for trial := 0; trial < 400; trial++ {
		g, fr, s, tt := randomCase(rng, nil)
		l := rng.Intn(12)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		res := DisDist(cl, fr, s, tt, l, nil)
		d := g.Dist(s, tt)
		want := d >= 0 && d <= l
		if res.Answer != want {
			t.Fatalf("trial %d: disDist(%d,%d,%d)=%v, oracle dist=%d on %v, %v",
				trial, s, tt, l, res.Answer, d, g, fr)
		}
		if want && res.Distance != int64(d) {
			t.Fatalf("trial %d: distance %d, oracle %d", trial, res.Distance, d)
		}
		if !want && res.Distance != bes.Inf && res.Distance <= int64(l) {
			t.Fatalf("trial %d: reported in-bound distance %d but oracle says %d", trial, res.Distance, d)
		}
	}
}

var testLabels = []string{"A", "B", "C"}

// randomRegex builds a small random regex over testLabels.
func randomRegex(rng *gen.RNG, depth int) *rx.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return rx.Eps()
		case 1:
			return rx.Lbl(rx.Wildcard)
		default:
			return rx.Lbl(testLabels[rng.Intn(len(testLabels))])
		}
	}
	switch rng.Intn(3) {
	case 0:
		return rx.Cat(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	case 1:
		return rx.Alt(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	default:
		return rx.Kleene(randomRegex(rng, depth-1))
	}
}

func TestDisRPQMatchesCentralizedProductBFS(t *testing.T) {
	rng := gen.NewRNG(99)
	for trial := 0; trial < 400; trial++ {
		g, fr, s, tt := randomCase(rng, testLabels)
		a := automaton.FromRegex(randomRegex(rng, 3))
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		got := DisRPQ(cl, fr, s, tt, a, nil).Answer
		want := automaton.Eval(g, s, tt, a)
		if got != want {
			t.Fatalf("trial %d: disRPQ(%d,%d)=%v, oracle=%v on %v, %v, %v",
				trial, s, tt, got, want, g, fr, a)
		}
	}
}

func TestDisRPQRandomAutomata(t *testing.T) {
	rng := gen.NewRNG(123)
	for trial := 0; trial < 300; trial++ {
		g, fr, s, tt := randomCase(rng, testLabels)
		a := automaton.Random(rng, 2+rng.Intn(8), 4+rng.Intn(16), testLabels)
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		got := DisRPQ(cl, fr, s, tt, a, nil).Answer
		want := automaton.Eval(g, s, tt, a)
		if got != want {
			t.Fatalf("trial %d: got %v want %v (s=%d t=%d, %v, %v)", trial, got, want, s, tt, g, fr)
		}
	}
}

func TestVisitGuaranteeHoldsOnEveryRun(t *testing.T) {
	rng := gen.NewRNG(5)
	for trial := 0; trial < 100; trial++ {
		_, fr, s, tt := randomCase(rng, testLabels)
		if s == tt {
			continue
		}
		cl := cluster.New(fr.Card(), cluster.NetModel{})
		for name, rep := range map[string]cluster.Report{
			"disReach": DisReach(cl, fr, s, tt, nil).Report,
			"disDist":  DisDist(cl, fr, s, tt, 5, nil).Report,
			"disRPQ": DisRPQ(cl, fr, s, tt,
				automaton.FromRegex(rx.MustParse("A*|B C*")), nil).Report,
		} {
			for site, v := range rep.Visits {
				if v != 1 {
					t.Fatalf("%s trial %d: site %d visited %d times", name, trial, site, v)
				}
			}
		}
	}
}

// TestTrafficIndependentOfGraphSize pins guarantee (2): with |Vf| held
// fixed, growing the fragment interiors must not grow the traffic.
func TestTrafficIndependentOfGraphSize(t *testing.T) {
	build := func(interior int) (*fragment.Fragmentation, graph.NodeID, graph.NodeID) {
		// Two fragments joined by a single cross edge bridge; each fragment
		// has `interior` extra nodes hanging off its bridge endpoint.
		b := graph.NewBuilder(2 + 2*interior)
		s := b.AddNode("") // fragment 0
		u := b.AddNode("") // fragment 1
		b.AddEdge(s, u)
		assign := []int{0, 1}
		for i := 0; i < interior; i++ {
			v := b.AddNode("")
			b.AddEdge(s, v)
			b.AddEdge(v, s)
			assign = append(assign, 0)
		}
		var last graph.NodeID = u
		for i := 0; i < interior; i++ {
			v := b.AddNode("")
			b.AddEdge(last, v)
			assign = append(assign, 1)
			last = v
		}
		g := b.MustBuild()
		fr, err := fragment.Build(g, assign, 2)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return fr, s, last
	}
	frSmall, s1, t1 := build(5)
	frLarge, s2, t2 := build(500)
	cl := cluster.New(2, cluster.NetModel{})
	small := DisReach(cl, frSmall, s1, t1, nil).Report
	large := DisReach(cl, frLarge, s2, t2, nil).Report
	if small.Bytes != large.Bytes {
		t.Fatalf("traffic grew with graph size: %d -> %d bytes (|Vf| fixed)", small.Bytes, large.Bytes)
	}
}
