package core

import (
	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// DistResult is the outcome of a bounded reachability evaluation. Distance
// is the exact dist(s, t) whenever it is at most the bound l (the partial
// answers are pruned beyond l, so larger distances are reported as
// bes.Inf / unreachable-within-bound).
type DistResult struct {
	Answer   bool
	Distance int64 // exact if <= l; bes.Inf if no path within the bound
	Report   cluster.Report
}

// distTerm is one candidate term of a min-equation: Xv <= Xvar + W, or
// Xv <= Const when the target was reached locally.
type distTerm struct {
	varNode graph.NodeID
	w       int64
	isConst bool
}

type distEq struct {
	node  graph.NodeID
	terms []distTerm
}

// DistPartial is Fi.rvset for a bounded reachability query: one
// min-equation per in-node (plus s when local). It is produced by
// LocalEvalDist and consumed by SolveDist.
type DistPartial struct {
	eqs []distEq
}

// LocalEvalDist is the exported form of procedure localEvald, used by the
// MapReduce adaptation. Pass s = graph.None to compute the in-node
// equations only.
func LocalEvalDist(f *fragment.Fragment, s, t graph.NodeID, l int) *DistPartial {
	return localEvalDist(f, s, t, l)
}

// SolveDist is procedure evalDGd: it assembles partial answers and returns
// the exact dist(s, t) when it is within the bound used during local
// evaluation, or bes.Inf.
func SolveDist(partials []*DistPartial, s graph.NodeID) int64 {
	sys := bes.NewWeighted[graph.NodeID]()
	for _, rv := range partials {
		if rv == nil {
			continue
		}
		for _, eq := range rv.eqs {
			for _, term := range eq.terms {
				if term.isConst {
					sys.AddConst(eq.node, term.w)
				} else {
					sys.AddTerm(eq.node, term.varNode, term.w)
				}
			}
		}
	}
	return sys.Solve(s)
}

// wireSize: each equation carries the in-node ID plus (variable ID,
// distance) pairs — the numeric analogue of the Boolean accounting, still
// bounded by O(|Fi.I|·|Fi.O|) words.
func (rv *DistPartial) wireSize() int {
	n := 0
	for _, eq := range rv.eqs {
		n += 4 + 8*len(eq.terms)
	}
	return n
}

// DisDist evaluates the bounded reachability query qbr(s, t, l): is
// dist(s, t) <= l? (algorithm disDist, Section 4). It has the same
// guarantees as DisReach: one visit per site, traffic in O(|Vf|²),
// and parallel local evaluation bounded by the largest fragment.
func DisDist(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, l int, opt *Options) DistResult {
	if opt == nil {
		opt = &Options{}
	}
	run := cl.NewRun()
	if s == t {
		return DistResult{Answer: l >= 0, Distance: 0, Report: run.Finish()}
	}
	if l <= 0 {
		// No path of positive length fits a non-positive bound.
		return DistResult{Answer: false, Distance: bes.Inf, Report: run.Finish()}
	}
	frags := fr.Fragments()

	// Phase 1: post qbr(s, t, l) to every site.
	for i := range frags {
		run.Post(i, querySize)
	}
	run.NetPhase(querySize)

	// Phase 2: local evaluation (procedure localEvald), in parallel.
	partial := make([]*DistPartial, len(frags))
	run.Parallel(func(site int) {
		partial[site] = localEvalDist(frags[site], s, t, l)
	})
	maxReply := 0
	for i, rv := range partial {
		b := rv.wireSize()
		run.Reply(i, b)
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Phase 3: assemble (procedure evalDGd) — build the weighted dependency
	// graph and run Dijkstra from Xs.
	var d int64
	run.Sequential(func() {
		sys := bes.NewWeighted[graph.NodeID]()
		for _, rv := range partial {
			for _, eq := range rv.eqs {
				for _, term := range eq.terms {
					if term.isConst {
						sys.AddConst(eq.node, term.w)
					} else {
						sys.AddTerm(eq.node, term.varNode, term.w)
					}
				}
			}
		}
		d = sys.Solve(s)
	})
	return DistResult{Answer: d <= int64(l), Distance: d, Report: run.Finish()}
}

// localEvalDist runs procedure localEvald on one fragment: for every
// in-node v (plus s if local) it computes the local BFS distances to the
// virtual nodes (and to t when t is stored here), keeping
//
//	Xv <= Xv' + dist(v, v')   for virtual v' with dist(v, v') < l,
//	Xv <= dist(v, t)          when t is reached locally within l.
//
// Terms at distance >= l cannot start a path of total length <= l unless
// they already end at t, matching the pruning in the paper.
func localEvalDist(f *fragment.Fragment, s, t graph.NodeID, l int) *DistPartial {
	iset := isetOf(f, s)
	rv := &DistPartial{eqs: make([]distEq, 0, len(iset))}
	if len(iset) == 0 {
		return rv
	}
	dist := make([]int32, f.NumTotal())
	queue := make([]int32, 0, f.NumTotal())
	for i := range dist {
		dist[i] = -1
	}
	touched := make([]int32, 0, f.NumTotal())
	for _, v := range iset {
		if f.Global(v) == t {
			// Xt is trivially 0 (dist(t, t) = 0); other equations may
			// reference it as a variable.
			rv.eqs = append(rv.eqs, distEq{node: t, terms: []distTerm{{isConst: true}}})
			continue
		}
		eq := distEq{node: f.Global(v)}
		// Bounded BFS from v, pruned at depth l.
		dist[v] = 0
		queue = append(queue[:0], v)
		touched = append(touched[:0], v)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			d := dist[x]
			if x != v {
				g := f.Global(x)
				switch {
				case g == t:
					// Local or virtual occurrence of the target; BFS finds
					// the local minimum distance first, so stop this branch.
					if int(d) <= l {
						eq.terms = append(eq.terms, distTerm{w: int64(d), isConst: true})
					}
					continue
				case f.IsBoundary(x):
					// Frontier cut (see localEval): the boundary node's own
					// min-equation continues the path, so emit Xg + d and
					// stop expanding here.
					if int(d) < l {
						eq.terms = append(eq.terms, distTerm{varNode: g, w: int64(d)})
					}
					continue
				}
			}
			if int(d) >= l {
				continue
			}
			for _, w := range f.Out(x) {
				if dist[w] < 0 {
					dist[w] = d + 1
					queue = append(queue, w)
					touched = append(touched, w)
				}
			}
		}
		for _, x := range touched {
			dist[x] = -1
		}
		rv.eqs = append(rv.eqs, eq)
	}
	return rv
}
