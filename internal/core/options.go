// Package core implements the paper's partial-evaluation algorithms:
// disReach for reachability queries (Section 3), disDist for bounded
// reachability queries (Section 4), and disRPQ for regular reachability
// queries (Section 5). Each runs in the three-phase scheme of Section 2.2:
//
//  1. the coordinator posts the query, as is, to every site;
//  2. every site partially evaluates the query on its fragment in parallel,
//     producing Boolean (or arithmetic, or vector) equations over variables
//     that stand for the unknown answers at virtual nodes;
//  3. the coordinator assembles the equations into a dependency graph and
//     solves the resulting — possibly recursive — equation system.
//
// The performance guarantees are enforced structurally: sites receive
// exactly one message each (the posted query), all further communication is
// replies to the coordinator, and the reply sizes depend only on the
// fragmentation (|Vf|) and the query, never on |G|.
package core

import (
	"sync"

	"distreach/internal/fragment"
	"distreach/internal/reach"
)

// Options tunes the evaluation algorithms. The zero value is ready to use.
type Options struct {
	// LocalIndex, if non-nil, supplies a reachability index for a fragment's
	// local graph; disReach then answers "v' ∈ des(v, Fi)" through the index
	// instead of running a fresh BFS per in-node. The paper notes any
	// centralized index (reachability matrix, 2-hop, ...) can slot in here.
	// Use IndexCache to memoize construction across queries.
	LocalIndex func(f *fragment.Fragment) reach.Index

	// NoFragmentIndex disables consulting the fragment's own reachability
	// index (fragment.ReachIndex) during local evaluation, forcing the
	// direct frontier-cut BFS. Cross-checks use it to compare the indexed
	// and direct paths on the same deployment.
	NoFragmentIndex bool

	// Cancel, if non-nil, is polled at cooperative checkpoints during local
	// evaluation (between in-node equations and periodically inside the
	// fallback BFS). When it returns true the evaluation abandons its work
	// and returns nil: the coordinator has already answered the query from
	// other sites' partials and broadcast a cancel frame. Must be safe for
	// concurrent use (it is typically an atomic load).
	Cancel func() bool

	// Metrics, if non-nil, receives per-equation counters from the local
	// evaluation — which path produced each in-node equation, and why the
	// fragment index was bypassed when it was. The struct is written by the
	// single evaluating goroutine with no synchronization; callers wanting
	// aggregates across queries must copy it out per evaluation (the traced
	// query path attaches it to the eval span).
	Metrics *EvalMetrics
}

// EvalMetrics counts, for one local evaluation, how each in-node equation
// was produced. Indexed + BFS + Alias + Const covers every equation; Stale
// and OverBudget are the subsets of BFS that had a fragment index installed
// but fell back anyway (the reachindex outcome tagging observability needs
// to tune index budgets in production).
type EvalMetrics struct {
	IndexedEqs    int64 // answered from the fragment reachability index (or a LocalIndex)
	BFSEqs        int64 // direct frontier-cut BFS
	AliasEqs      int64 // two-word alias to an SCC representative
	ConstEqs      int64 // trivially true (the in-node is the target)
	StaleEqs      int64 // BFS because the index entry was invalidated by a mutation
	OverBudgetEqs int64 // BFS because the label budget excluded the entry (or it is undecided mid-rebuild)
}

// cancelled reports whether a cooperative cancellation was requested. Safe
// on a nil receiver so the hot paths need no option-presence checks.
func (o *Options) cancelled() bool { return o != nil && o.Cancel != nil && o.Cancel() }

// IndexCache returns a LocalIndex function that builds one index of the
// given kind per fragment on first use and reuses it afterwards. It is safe
// for concurrent use.
func IndexCache(kind reach.Kind) func(f *fragment.Fragment) reach.Index {
	type entry struct {
		once sync.Once
		idx  reach.Index
	}
	var mu sync.Mutex
	cache := map[*fragment.Fragment]*entry{}
	return func(f *fragment.Fragment) reach.Index {
		mu.Lock()
		e, ok := cache[f]
		if !ok {
			e = &entry{}
			cache[f] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.idx = reach.Build(kind, f.AsGraph()) })
		return e.idx
	}
}
