package core

import (
	"sync"

	"distreach/internal/bes"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// Session amortizes partial evaluation across queries, the direction the
// paper's conclusion sketches ("combine partial evaluation and incremental
// computation"). The key observation: for a fixed target t, the in-node
// equations Fi.rvset of every fragment are independent of the source s —
// only s's own equation differs between queries. A Session therefore
//
//   - caches, per target t, the rvsets of all fragments (computed once
//     with the usual one-visit-per-site round), and
//   - answers subsequent qr(s, t) queries for any s by visiting only the
//     site that stores s, shipping one equation.
//
// Invalidate drops cached state when fragments change; a subsequent query
// recomputes only the invalidated fragments.
type Session struct {
	cl *cluster.Cluster
	fr *fragment.Fragmentation

	mu    sync.Mutex
	cache map[graph.NodeID]*targetCache // target -> per-fragment rvsets
}

type targetCache struct {
	partial []*ReachPartial
}

// NewSession creates a session over a fixed deployment.
func NewSession(cl *cluster.Cluster, fr *fragment.Fragmentation) *Session {
	return &Session{cl: cl, fr: fr, cache: make(map[graph.NodeID]*targetCache)}
}

// Reach answers qr(s, t). The first query for a target t costs one visit
// to every site; later queries for the same t cost one visit to s's site
// only (zero when s's equation is already in the cached rvset, i.e. when s
// is an in-node).
func (se *Session) Reach(s, t graph.NodeID) Result {
	run := se.cl.NewRun()
	if s == t {
		return Result{Answer: true, Report: run.Finish()}
	}
	frags := se.fr.Fragments()

	se.mu.Lock()
	tc := se.cache[t]
	se.mu.Unlock()

	if tc == nil {
		// Cold start: the usual three-phase round, but with the in-node
		// equations kept for reuse (they do not mention s).
		for i := range frags {
			run.Post(i, querySize)
		}
		run.NetPhase(querySize)
		partial := make([]*ReachPartial, len(frags))
		run.Parallel(func(site int) {
			partial[site] = LocalEvalReach(frags[site], graph.None, t, nil)
		})
		maxReply := 0
		for i, rv := range partial {
			b := rv.wireSize(frags[i].NumVirtual() + len(frags[i].InNodes()))
			run.Reply(i, b)
			if b > maxReply {
				maxReply = b
			}
		}
		run.NetPhase(maxReply)
		tc = &targetCache{partial: partial}
		se.mu.Lock()
		se.cache[t] = tc
		se.mu.Unlock()
	}

	// Refresh any fragments dropped by Invalidate.
	for i, rv := range tc.partial {
		if rv != nil {
			continue
		}
		run.Post(i, querySize)
		run.NetPhase(querySize)
		tc.partial[i] = LocalEvalReach(frags[i], graph.None, t, nil)
		b := tc.partial[i].wireSize(frags[i].NumVirtual() + len(frags[i].InNodes()))
		run.Reply(i, b)
		run.NetPhase(b)
	}

	// Source equation: only s's site works, and only when s is not already
	// an in-node (in-node equations are in the cached rvset).
	owner := se.fr.Owner(s)
	if owner < 0 {
		// s was deleted: nothing reaches anywhere from a tombstone.
		return Result{Answer: false, Report: run.Finish()}
	}
	f := frags[owner]
	var srcEq *ReachPartial
	ls, _ := f.Local(s)
	if !f.IsInNode(ls) {
		run.Post(owner, querySize)
		run.NetPhase(querySize)
		run.Sequential(func() {
			srcEq = LocalEvalReach(f, s, t, nil) // computes in-nodes too; ships only s's equation
		})
		b := 5 + 4*len(srcEq.eqs[len(srcEq.eqs)-1].vars)
		run.Reply(owner, b)
		run.NetPhase(b)
	}

	var ans bool
	run.Sequential(func() {
		sys := bes.New[graph.NodeID]()
		add := func(rv *ReachPartial) {
			for _, eq := range rv.eqs {
				sys.Add(eq.node, eq.constTrue, eq.vars...)
			}
		}
		for _, rv := range tc.partial {
			add(rv)
		}
		if srcEq != nil {
			eq := srcEq.eqs[len(srcEq.eqs)-1]
			sys.Add(eq.node, eq.constTrue, eq.vars...)
		}
		sol := sys.Solve()
		ans = sol[s]
	})
	return Result{Answer: ans, Report: run.Finish()}
}

// InsertEdge applies a live edge insertion to the session's fragmentation
// and invalidates the cached rvsets of exactly the dirtied fragments — the
// in-process twin of the wire path's Coordinator.Update followed by
// per-fragment cache eviction. The next query per cached target recomputes
// only those fragments.
func (se *Session) InsertEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	dirty, changed, err = se.fr.InsertEdge(u, v)
	se.invalidateAll(dirty)
	return dirty, changed, err
}

// DeleteEdge is InsertEdge for a live edge deletion.
func (se *Session) DeleteEdge(u, v graph.NodeID) (dirty []int, changed bool, err error) {
	dirty, changed, err = se.fr.DeleteEdge(u, v)
	se.invalidateAll(dirty)
	return dirty, changed, err
}

// InsertNode adds a node carrying label (placed by the fragmentation's
// partitioner) and invalidates the receiving fragment's cached rvsets.
func (se *Session) InsertNode(label string) (graph.NodeID, []int, error) {
	id, dirty, err := se.fr.InsertNode(label, -1)
	se.invalidateAll(dirty)
	return id, dirty, err
}

// DeleteNode removes node v, cascading to its incident edges, and
// invalidates every dirtied fragment's cached rvsets. Cached targets that
// mention v recompute against the node-less graph on their next query.
func (se *Session) DeleteNode(v graph.NodeID) (dirty []int, changed bool, err error) {
	dirty, changed, err = se.fr.DeleteNode(v)
	se.invalidateAll(dirty)
	se.mu.Lock()
	delete(se.cache, v) // a deleted target's rvsets are meaningless now
	se.mu.Unlock()
	return dirty, changed, err
}

// Apply runs a transactional mutation batch (fragment.Op) through the
// session, invalidating the union of dirtied fragments once.
func (se *Session) Apply(ops []fragment.Op) (fragment.ApplyResult, error) {
	res, err := se.fr.Apply(ops)
	se.invalidateAll(res.Dirty)
	for _, op := range ops {
		if op.Kind == fragment.OpDeleteNode {
			se.mu.Lock()
			delete(se.cache, op.U)
			se.mu.Unlock()
		}
	}
	return res, err
}

func (se *Session) invalidateAll(dirty []int) {
	for _, f := range dirty {
		se.Invalidate(f)
	}
}

// Invalidate drops the cached partial answers of one fragment (e.g. after
// its edges changed); every cached target refreshes just that fragment on
// its next query.
func (se *Session) Invalidate(fragmentID int) {
	se.mu.Lock()
	defer se.mu.Unlock()
	for _, tc := range se.cache {
		if fragmentID >= 0 && fragmentID < len(tc.partial) {
			tc.partial[fragmentID] = nil
		}
	}
}

// CachedTargets reports how many targets currently have cached rvsets.
func (se *Session) CachedTargets() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.cache)
}
