package core

import (
	"distreach/internal/automaton"
	"distreach/internal/bes"
	"distreach/internal/bitset"
	"distreach/internal/cluster"
	"distreach/internal/fragment"
	"distreach/internal/graph"
)

// rpqVar identifies the Boolean variable X(v,u): "node v matches automaton
// state u". Variables are keyed globally as node*|Vq|+state.
type rpqVar = int64

func rpqKey(v graph.NodeID, u, nq int) rpqVar { return int64(v)*int64(nq) + int64(u) }

// rpqEntry is one vector entry of an in-node: the Boolean formula for
// X(node, state), a disjunction of variables over virtual-node/state pairs
// plus an optional constant-true disjunct.
type rpqEntry struct {
	state     int
	constTrue bool
	vars      []rpqVar
}

type rpqEqs struct {
	node    graph.NodeID
	entries []rpqEntry
}

// RPQPartial is Fi.rvset for a regular reachability query: the vectors of
// Boolean formulas of one fragment's in-nodes. It is produced by
// LocalEvalRPQ at a site (or a mapper) and consumed by SolveRPQ at the
// coordinator (or the reducer).
type RPQPartial struct {
	eqs      []rpqEqs
	varSpace int // number of distinct (virtual, state) variables in scope
}

// WireSize follows the paper's accounting: O(|R|²·|Fi.I|·|Fi.O|) in the
// worst case — each in-node ships up to |Vq| entries, each encoded as the
// smaller of a bit vector over the fragment's (boundary node × state)
// variable space and an explicit variable list.
func (rv *RPQPartial) WireSize() int {
	dense := (rv.varSpace + 1 + 7) / 8
	n := 0
	for _, eq := range rv.eqs {
		n += 4
		for _, e := range eq.entries {
			sparse := 4 * len(e.vars)
			if sparse < dense {
				n += 3 + sparse
			} else {
				n += 3 + dense
			}
		}
	}
	return n
}

// addTo folds the partial answer's equations into the coordinator's system.
func (rv *RPQPartial) addTo(sys *bes.System[rpqVar], nq int) {
	for _, eq := range rv.eqs {
		for _, e := range eq.entries {
			sys.Add(rpqKey(eq.node, e.state, nq), e.constTrue, e.vars...)
		}
	}
}

// SolveRPQ is procedure evalDGr: it assembles the partial answers of all
// fragments into one Boolean equation system and reports whether X(s, us)
// holds, i.e. whether s matches the start state of the query automaton.
func SolveRPQ(partials []*RPQPartial, s graph.NodeID, a *automaton.Automaton) bool {
	nq := a.NumStates()
	sys := bes.New[rpqVar]()
	for _, rv := range partials {
		if rv != nil {
			rv.addTo(sys, nq)
		}
	}
	sol := sys.Solve()
	return sol[rpqKey(s, automaton.Start, nq)]
}

// DisRPQ evaluates the regular reachability query qrr(s, t, R) given the
// query automaton a = Gq(R) (algorithm disRPQ, Section 5). Guarantees: one
// visit per site, traffic in O(|R|²·|Vf|²), local evaluation in
// O(|Fm|·|R|²) per site in parallel, assembling in O(|R|²·|Vf|²).
func DisRPQ(cl *cluster.Cluster, fr *fragment.Fragmentation, s, t graph.NodeID, a *automaton.Automaton, opt *Options) Result {
	if opt == nil {
		opt = &Options{}
	}
	run := cl.NewRun()
	if s == t && a.AcceptsLabels(nil) {
		// The empty path from s to itself satisfies R (ε ∈ L(R)).
		return Result{Answer: true, Report: run.Finish()}
	}
	frags := fr.Fragments()

	// Phase 1: construct Gq(R) at the coordinator and post it to each site.
	qBytes := a.EncodedSize() + querySize
	for i := range frags {
		run.Post(i, qBytes)
	}
	run.NetPhase(qBytes)

	// Phase 2: local evaluation (procedure localEvalr), in parallel.
	partial := make([]*RPQPartial, len(frags))
	run.Parallel(func(site int) {
		partial[site] = LocalEvalRPQ(frags[site], s, t, a)
	})
	maxReply := 0
	for i, rv := range partial {
		b := rv.WireSize()
		run.Reply(i, b)
		if b > maxReply {
			maxReply = b
		}
	}
	run.NetPhase(maxReply)

	// Phase 3: assemble (procedure evalDGr): one Boolean equation per
	// (in-node, state) vector entry, solved by dependency-graph
	// reachability to the merged true node.
	var ans bool
	run.Sequential(func() {
		ans = SolveRPQ(partial, s, a)
	})
	return Result{Answer: ans, Report: run.Finish()}
}

// LocalEvalRPQ computes the vectors Fi.rvset of procedure localEvalr. The
// recursion of cmpRvec/cmposeVec is realized as a reverse-topological sweep
// over the strongly connected components of the fragment-local product
// graph (fragment node × automaton state), which handles cyclic fragments
// exactly where the naive recursion of Fig. 7 would not terminate:
//
//   - product node (v, u) exists when v can match u — L(v) = Lq(u) for a
//     position state, v = s for Start, v = t for Final;
//   - edge (v,u) -> (w,u') when (v,w) is a fragment edge and (u,u') ∈ Eq;
//   - leaves: (b, u) for a boundary node b (virtual node or another
//     in-node — the frontier cut of localEval applies here too, since
//     in-node entries have their own equations) contributes variable
//     X(b,u); (t, Final) contributes constant true;
//   - the formula of an in-node entry (v, u) is the disjunction of the
//     leaf contributions reachable from it through interior nodes.
func LocalEvalRPQ(f *fragment.Fragment, s, t graph.NodeID, a *automaton.Automaton) *RPQPartial {
	nq := a.NumStates()
	total := f.NumTotal()

	// validMid reports whether (l, u) can appear as an intermediate or
	// frontier product node: a position state whose label matches. Start
	// is only ever a source; Final is only ever the constant (t, Final).
	validMid := func(l int32, u int) bool {
		return u != automaton.Start && u != automaton.Final && a.MatchesLabel(u, f.Label(l))
	}

	// Variable IDs for boundary frontier pairs (boundary node × position
	// state). The constant (t, Final) is not a variable.
	varID := make([]int32, total*nq)
	for i := range varID {
		varID[i] = -1
	}
	type varMeta struct {
		g graph.NodeID
		u int32
	}
	var vars []varMeta
	for l := int32(0); int(l) < total; l++ {
		if !f.IsBoundary(l) {
			continue
		}
		for u := 0; u < nq; u++ {
			if validMid(l, u) {
				varID[int(l)*nq+u] = int32(len(vars))
				vars = append(vars, varMeta{f.Global(l), int32(u)})
			}
		}
	}

	// Interior product nodes: non-boundary fragment nodes at compatible
	// position states.
	pid := make([]int32, total*nq)
	for i := range pid {
		pid[i] = -1
	}
	type pnode struct {
		l int32
		u int32
	}
	var pnodes []pnode
	for l := int32(0); int(l) < total; l++ {
		if f.IsBoundary(l) {
			continue
		}
		for u := 0; u < nq; u++ {
			if validMid(l, u) {
				pid[int(l)*nq+u] = int32(len(pnodes))
				pnodes = append(pnodes, pnode{l, int32(u)})
			}
		}
	}

	// Per-interior-node direct leaf contributions and interior edges.
	leafConst := make([]bool, len(pnodes))
	leafVars := make([]bitset.Set, len(pnodes))
	b := graph.NewBuilder(len(pnodes))
	b.AddNodes(len(pnodes), "")
	// expand distributes the successors of fragment node l at state u into
	// const / boundary-var / interior-edge contributions for product node i
	// (i < 0 means "collect into a caller-provided sink", used for source
	// entries below).
	expand := func(l int32, u int, onConst func(), onVar func(v int32), onEdge func(q int32)) {
		for _, w := range f.Out(l) {
			for _, u2 := range a.Next(u) {
				if u2 == automaton.Final {
					if f.Global(w) == t {
						onConst()
					}
					continue
				}
				if u2 == automaton.Start {
					continue // no transitions enter Start
				}
				if !a.MatchesLabel(u2, f.Label(w)) {
					continue
				}
				if f.IsBoundary(w) {
					onVar(varID[int(w)*nq+u2])
					continue
				}
				if q := pid[int(w)*nq+u2]; q >= 0 {
					onEdge(q)
				}
			}
		}
	}
	for i, p := range pnodes {
		i32 := int32(i)
		expand(p.l, int(p.u),
			func() { leafConst[i32] = true },
			func(v int32) {
				if leafVars[i32] == nil {
					leafVars[i32] = bitset.New(len(vars))
				}
				leafVars[i32].Set(int(v))
			},
			func(q int32) { b.AddEdge(graph.NodeID(i32), graph.NodeID(q)) },
		)
	}
	pg := b.MustBuild()

	// Reverse-topological sweep over the interior SCCs, accumulating
	// per-component formulas as (const, bitset-of-variables).
	comp, dag := pg.Condensation()
	nc := dag.NumNodes()
	constOf := make([]bool, nc)
	setOf := make([]bitset.Set, nc)
	for i := range pnodes {
		c := comp[i]
		if leafConst[i] {
			constOf[c] = true
		}
		if leafVars[i] != nil {
			if setOf[c] == nil {
				setOf[c] = bitset.New(len(vars))
			}
			setOf[c].Or(leafVars[i])
		}
	}
	for c := nc - 1; c >= 0; c-- {
		for _, d := range dag.Out(graph.NodeID(c)) {
			if constOf[d] {
				constOf[c] = true
			}
			if setOf[d] != nil {
				if setOf[c] == nil {
					setOf[c] = bitset.New(len(vars))
				}
				setOf[c].Or(setOf[d])
			}
		}
	}

	// Emit the vector of every in-node (plus s when stored here): each
	// in-node is expanded as a source even though it is a frontier for
	// other sources.
	iset := isetOf(f, s)
	rv := &RPQPartial{varSpace: len(vars)}
	entryVars := bitset.New(len(vars))
	for _, v := range iset {
		gv := f.Global(v)
		eq := rpqEqs{node: gv}
		for u := 0; u < nq; u++ {
			// The source pair itself must be a plausible match: a matching
			// position state, Start at s, or Final at t (constant true).
			switch {
			case u == automaton.Final:
				if gv == t {
					eq.entries = append(eq.entries, rpqEntry{state: u, constTrue: true})
				}
				continue
			case u == automaton.Start:
				if gv != s {
					continue
				}
			default:
				if !a.MatchesLabel(u, f.Label(v)) {
					continue
				}
			}
			entry := rpqEntry{state: u}
			entryVars.Reset()
			expand(v, u,
				func() { entry.constTrue = true },
				func(id int32) { entryVars.Set(int(id)) },
				func(q int32) {
					c := comp[q]
					if constOf[c] {
						entry.constTrue = true
					}
					if setOf[c] != nil {
						entryVars.Or(setOf[c])
					}
				},
			)
			entryVars.ForEach(func(i int) {
				entry.vars = append(entry.vars, rpqKey(vars[i].g, int(vars[i].u), nq))
			})
			if entry.constTrue || len(entry.vars) > 0 {
				eq.entries = append(eq.entries, entry)
			}
		}
		// Emit the vector even when every entry is empty: the equation's
		// presence records that this fragment evaluated the node, which the
		// touched-fragment analysis (TouchedRPQ) relies on for sound cache
		// invalidation under live updates.
		rv.eqs = append(rv.eqs, eq)
	}
	return rv
}
